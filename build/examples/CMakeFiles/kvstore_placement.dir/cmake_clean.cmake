file(REMOVE_RECURSE
  "CMakeFiles/kvstore_placement.dir/kvstore_placement.cpp.o"
  "CMakeFiles/kvstore_placement.dir/kvstore_placement.cpp.o.d"
  "kvstore_placement"
  "kvstore_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
