# Empty dependencies file for kvstore_placement.
# This may be replaced when dependencies are built.
