file(REMOVE_RECURSE
  "CMakeFiles/fleet_tco.dir/fleet_tco.cpp.o"
  "CMakeFiles/fleet_tco.dir/fleet_tco.cpp.o.d"
  "fleet_tco"
  "fleet_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
