# Empty compiler generated dependencies file for fleet_tco.
# This may be replaced when dependencies are built.
