# Empty dependencies file for multitenant_isolation.
# This may be replaced when dependencies are built.
