file(REMOVE_RECURSE
  "CMakeFiles/multitenant_isolation.dir/multitenant_isolation.cpp.o"
  "CMakeFiles/multitenant_isolation.dir/multitenant_isolation.cpp.o.d"
  "multitenant_isolation"
  "multitenant_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitenant_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
