file(REMOVE_RECURSE
  "CMakeFiles/csd_capacity.dir/csd_capacity.cpp.o"
  "CMakeFiles/csd_capacity.dir/csd_capacity.cpp.o.d"
  "csd_capacity"
  "csd_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csd_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
