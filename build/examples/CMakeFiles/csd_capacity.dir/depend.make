# Empty dependencies file for csd_capacity.
# This may be replaced when dependencies are built.
