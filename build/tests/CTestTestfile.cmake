# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/codecs_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/virt_test[1]_include.cmake")
include("/root/repo/build/tests/dpzip_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/hw_queue_test[1]_include.cmake")
include("/root/repo/build/tests/format_vectors_test[1]_include.cmake")
