# Empty compiler generated dependencies file for ssd_test.
# This may be replaced when dependencies are built.
