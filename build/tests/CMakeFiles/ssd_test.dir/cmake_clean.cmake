file(REMOVE_RECURSE
  "CMakeFiles/ssd_test.dir/ssd_test.cc.o"
  "CMakeFiles/ssd_test.dir/ssd_test.cc.o.d"
  "ssd_test"
  "ssd_test.pdb"
  "ssd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
