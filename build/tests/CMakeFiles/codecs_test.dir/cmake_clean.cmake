file(REMOVE_RECURSE
  "CMakeFiles/codecs_test.dir/codecs_test.cc.o"
  "CMakeFiles/codecs_test.dir/codecs_test.cc.o.d"
  "codecs_test"
  "codecs_test.pdb"
  "codecs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codecs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
