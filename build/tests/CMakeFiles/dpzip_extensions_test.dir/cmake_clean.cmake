file(REMOVE_RECURSE
  "CMakeFiles/dpzip_extensions_test.dir/dpzip_extensions_test.cc.o"
  "CMakeFiles/dpzip_extensions_test.dir/dpzip_extensions_test.cc.o.d"
  "dpzip_extensions_test"
  "dpzip_extensions_test.pdb"
  "dpzip_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpzip_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
