# Empty dependencies file for dpzip_extensions_test.
# This may be replaced when dependencies are built.
