file(REMOVE_RECURSE
  "CMakeFiles/format_vectors_test.dir/format_vectors_test.cc.o"
  "CMakeFiles/format_vectors_test.dir/format_vectors_test.cc.o.d"
  "format_vectors_test"
  "format_vectors_test.pdb"
  "format_vectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
