# Empty dependencies file for format_vectors_test.
# This may be replaced when dependencies are built.
