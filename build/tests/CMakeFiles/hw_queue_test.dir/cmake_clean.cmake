file(REMOVE_RECURSE
  "CMakeFiles/hw_queue_test.dir/hw_queue_test.cc.o"
  "CMakeFiles/hw_queue_test.dir/hw_queue_test.cc.o.d"
  "hw_queue_test"
  "hw_queue_test.pdb"
  "hw_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
