# Empty compiler generated dependencies file for hw_queue_test.
# This may be replaced when dependencies are built.
