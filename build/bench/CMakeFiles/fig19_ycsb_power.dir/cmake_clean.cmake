file(REMOVE_RECURSE
  "CMakeFiles/fig19_ycsb_power.dir/fig19_ycsb_power.cc.o"
  "CMakeFiles/fig19_ycsb_power.dir/fig19_ycsb_power.cc.o.d"
  "fig19_ycsb_power"
  "fig19_ycsb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_ycsb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
