# Empty dependencies file for fig19_ycsb_power.
# This may be replaced when dependencies are built.
