file(REMOVE_RECURSE
  "CMakeFiles/fig11_latency_breakdown.dir/fig11_latency_breakdown.cc.o"
  "CMakeFiles/fig11_latency_breakdown.dir/fig11_latency_breakdown.cc.o.d"
  "fig11_latency_breakdown"
  "fig11_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
