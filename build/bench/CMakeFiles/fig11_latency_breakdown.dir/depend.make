# Empty dependencies file for fig11_latency_breakdown.
# This may be replaced when dependencies are built.
