file(REMOVE_RECURSE
  "CMakeFiles/table01_testbed.dir/table01_testbed.cc.o"
  "CMakeFiles/table01_testbed.dir/table01_testbed.cc.o.d"
  "table01_testbed"
  "table01_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
