# Empty compiler generated dependencies file for table01_testbed.
# This may be replaced when dependencies are built.
