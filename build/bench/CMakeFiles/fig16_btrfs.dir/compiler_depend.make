# Empty compiler generated dependencies file for fig16_btrfs.
# This may be replaced when dependencies are built.
