file(REMOVE_RECURSE
  "CMakeFiles/fig16_btrfs.dir/fig16_btrfs.cc.o"
  "CMakeFiles/fig16_btrfs.dir/fig16_btrfs.cc.o.d"
  "fig16_btrfs"
  "fig16_btrfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_btrfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
