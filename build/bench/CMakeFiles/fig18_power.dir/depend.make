# Empty dependencies file for fig18_power.
# This may be replaced when dependencies are built.
