file(REMOVE_RECURSE
  "CMakeFiles/fig18_power.dir/fig18_power.cc.o"
  "CMakeFiles/fig18_power.dir/fig18_power.cc.o.d"
  "fig18_power"
  "fig18_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
