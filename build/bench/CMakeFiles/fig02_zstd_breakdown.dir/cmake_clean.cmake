file(REMOVE_RECURSE
  "CMakeFiles/fig02_zstd_breakdown.dir/fig02_zstd_breakdown.cc.o"
  "CMakeFiles/fig02_zstd_breakdown.dir/fig02_zstd_breakdown.cc.o.d"
  "fig02_zstd_breakdown"
  "fig02_zstd_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_zstd_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
