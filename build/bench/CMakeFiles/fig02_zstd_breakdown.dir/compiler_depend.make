# Empty compiler generated dependencies file for fig02_zstd_breakdown.
# This may be replaced when dependencies are built.
