# Empty dependencies file for fig17_zfs_latency.
# This may be replaced when dependencies are built.
