# Empty compiler generated dependencies file for ablation_hash_table.
# This may be replaced when dependencies are built.
