file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash_table.dir/ablation_hash_table.cc.o"
  "CMakeFiles/ablation_hash_table.dir/ablation_hash_table.cc.o.d"
  "ablation_hash_table"
  "ablation_hash_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
