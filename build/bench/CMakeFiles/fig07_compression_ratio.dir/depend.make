# Empty dependencies file for fig07_compression_ratio.
# This may be replaced when dependencies are built.
