file(REMOVE_RECURSE
  "CMakeFiles/fig07_compression_ratio.dir/fig07_compression_ratio.cc.o"
  "CMakeFiles/fig07_compression_ratio.dir/fig07_compression_ratio.cc.o.d"
  "fig07_compression_ratio"
  "fig07_compression_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_compression_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
