file(REMOVE_RECURSE
  "CMakeFiles/ablation_huffman.dir/ablation_huffman.cc.o"
  "CMakeFiles/ablation_huffman.dir/ablation_huffman.cc.o.d"
  "ablation_huffman"
  "ablation_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
