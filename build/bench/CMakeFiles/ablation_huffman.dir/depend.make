# Empty dependencies file for ablation_huffman.
# This may be replaced when dependencies are built.
