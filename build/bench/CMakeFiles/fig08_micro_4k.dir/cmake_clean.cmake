file(REMOVE_RECURSE
  "CMakeFiles/fig08_micro_4k.dir/fig08_micro_4k.cc.o"
  "CMakeFiles/fig08_micro_4k.dir/fig08_micro_4k.cc.o.d"
  "fig08_micro_4k"
  "fig08_micro_4k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_micro_4k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
