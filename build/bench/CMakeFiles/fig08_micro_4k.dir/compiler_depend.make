# Empty compiler generated dependencies file for fig08_micro_4k.
# This may be replaced when dependencies are built.
