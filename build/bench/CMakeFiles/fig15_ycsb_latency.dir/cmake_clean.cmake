file(REMOVE_RECURSE
  "CMakeFiles/fig15_ycsb_latency.dir/fig15_ycsb_latency.cc.o"
  "CMakeFiles/fig15_ycsb_latency.dir/fig15_ycsb_latency.cc.o.d"
  "fig15_ycsb_latency"
  "fig15_ycsb_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ycsb_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
