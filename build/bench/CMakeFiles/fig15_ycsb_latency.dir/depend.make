# Empty dependencies file for fig15_ycsb_latency.
# This may be replaced when dependencies are built.
