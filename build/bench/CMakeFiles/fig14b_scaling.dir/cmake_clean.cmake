file(REMOVE_RECURSE
  "CMakeFiles/fig14b_scaling.dir/fig14b_scaling.cc.o"
  "CMakeFiles/fig14b_scaling.dir/fig14b_scaling.cc.o.d"
  "fig14b_scaling"
  "fig14b_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
