# Empty compiler generated dependencies file for fig14b_scaling.
# This may be replaced when dependencies are built.
