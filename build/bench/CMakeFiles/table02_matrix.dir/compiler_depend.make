# Empty compiler generated dependencies file for table02_matrix.
# This may be replaced when dependencies are built.
