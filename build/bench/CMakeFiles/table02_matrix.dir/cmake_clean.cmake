file(REMOVE_RECURSE
  "CMakeFiles/table02_matrix.dir/table02_matrix.cc.o"
  "CMakeFiles/table02_matrix.dir/table02_matrix.cc.o.d"
  "table02_matrix"
  "table02_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
