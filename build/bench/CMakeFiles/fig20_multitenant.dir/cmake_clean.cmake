file(REMOVE_RECURSE
  "CMakeFiles/fig20_multitenant.dir/fig20_multitenant.cc.o"
  "CMakeFiles/fig20_multitenant.dir/fig20_multitenant.cc.o.d"
  "fig20_multitenant"
  "fig20_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
