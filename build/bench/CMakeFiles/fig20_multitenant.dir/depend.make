# Empty dependencies file for fig20_multitenant.
# This may be replaced when dependencies are built.
