# Empty dependencies file for fig12_compressibility.
# This may be replaced when dependencies are built.
