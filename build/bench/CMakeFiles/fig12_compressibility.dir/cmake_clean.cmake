file(REMOVE_RECURSE
  "CMakeFiles/fig12_compressibility.dir/fig12_compressibility.cc.o"
  "CMakeFiles/fig12_compressibility.dir/fig12_compressibility.cc.o.d"
  "fig12_compressibility"
  "fig12_compressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
