file(REMOVE_RECURSE
  "CMakeFiles/ablation_dictionary.dir/ablation_dictionary.cc.o"
  "CMakeFiles/ablation_dictionary.dir/ablation_dictionary.cc.o.d"
  "ablation_dictionary"
  "ablation_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
