# Empty compiler generated dependencies file for ablation_dictionary.
# This may be replaced when dependencies are built.
