file(REMOVE_RECURSE
  "CMakeFiles/fig09_micro_64k.dir/fig09_micro_64k.cc.o"
  "CMakeFiles/fig09_micro_64k.dir/fig09_micro_64k.cc.o.d"
  "fig09_micro_64k"
  "fig09_micro_64k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_micro_64k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
