# Empty dependencies file for fig09_micro_64k.
# This may be replaced when dependencies are built.
