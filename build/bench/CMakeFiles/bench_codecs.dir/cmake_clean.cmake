file(REMOVE_RECURSE
  "CMakeFiles/bench_codecs.dir/bench_codecs.cc.o"
  "CMakeFiles/bench_codecs.dir/bench_codecs.cc.o.d"
  "bench_codecs"
  "bench_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
