file(REMOVE_RECURSE
  "CMakeFiles/cdpu_cli.dir/cdpu_cli.cc.o"
  "CMakeFiles/cdpu_cli.dir/cdpu_cli.cc.o.d"
  "cdpu_cli"
  "cdpu_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
