# Empty compiler generated dependencies file for cdpu_cli.
# This may be replaced when dependencies are built.
