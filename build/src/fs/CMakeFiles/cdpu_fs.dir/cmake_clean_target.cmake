file(REMOVE_RECURSE
  "libcdpu_fs.a"
)
