file(REMOVE_RECURSE
  "CMakeFiles/cdpu_fs.dir/btrfs_sim.cc.o"
  "CMakeFiles/cdpu_fs.dir/btrfs_sim.cc.o.d"
  "CMakeFiles/cdpu_fs.dir/zfs_sim.cc.o"
  "CMakeFiles/cdpu_fs.dir/zfs_sim.cc.o.d"
  "libcdpu_fs.a"
  "libcdpu_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
