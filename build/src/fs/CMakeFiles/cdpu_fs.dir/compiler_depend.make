# Empty compiler generated dependencies file for cdpu_fs.
# This may be replaced when dependencies are built.
