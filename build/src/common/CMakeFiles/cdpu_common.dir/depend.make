# Empty dependencies file for cdpu_common.
# This may be replaced when dependencies are built.
