file(REMOVE_RECURSE
  "libcdpu_common.a"
)
