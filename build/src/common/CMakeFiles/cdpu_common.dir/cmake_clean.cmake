file(REMOVE_RECURSE
  "CMakeFiles/cdpu_common.dir/crc32.cc.o"
  "CMakeFiles/cdpu_common.dir/crc32.cc.o.d"
  "CMakeFiles/cdpu_common.dir/stats.cc.o"
  "CMakeFiles/cdpu_common.dir/stats.cc.o.d"
  "CMakeFiles/cdpu_common.dir/status.cc.o"
  "CMakeFiles/cdpu_common.dir/status.cc.o.d"
  "libcdpu_common.a"
  "libcdpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
