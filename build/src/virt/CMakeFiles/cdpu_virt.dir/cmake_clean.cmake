file(REMOVE_RECURSE
  "CMakeFiles/cdpu_virt.dir/sriov.cc.o"
  "CMakeFiles/cdpu_virt.dir/sriov.cc.o.d"
  "libcdpu_virt.a"
  "libcdpu_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
