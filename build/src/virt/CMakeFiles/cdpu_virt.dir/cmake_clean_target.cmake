file(REMOVE_RECURSE
  "libcdpu_virt.a"
)
