# Empty compiler generated dependencies file for cdpu_virt.
# This may be replaced when dependencies are built.
