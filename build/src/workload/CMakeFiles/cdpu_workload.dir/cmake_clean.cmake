file(REMOVE_RECURSE
  "CMakeFiles/cdpu_workload.dir/datagen.cc.o"
  "CMakeFiles/cdpu_workload.dir/datagen.cc.o.d"
  "CMakeFiles/cdpu_workload.dir/ycsb.cc.o"
  "CMakeFiles/cdpu_workload.dir/ycsb.cc.o.d"
  "libcdpu_workload.a"
  "libcdpu_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
