# Empty compiler generated dependencies file for cdpu_workload.
# This may be replaced when dependencies are built.
