file(REMOVE_RECURSE
  "libcdpu_workload.a"
)
