
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dpzip_codec.cc" "src/core/CMakeFiles/cdpu_core.dir/dpzip_codec.cc.o" "gcc" "src/core/CMakeFiles/cdpu_core.dir/dpzip_codec.cc.o.d"
  "/root/repo/src/core/dpzip_huffman.cc" "src/core/CMakeFiles/cdpu_core.dir/dpzip_huffman.cc.o" "gcc" "src/core/CMakeFiles/cdpu_core.dir/dpzip_huffman.cc.o.d"
  "/root/repo/src/core/dpzip_lz77.cc" "src/core/CMakeFiles/cdpu_core.dir/dpzip_lz77.cc.o" "gcc" "src/core/CMakeFiles/cdpu_core.dir/dpzip_lz77.cc.o.d"
  "/root/repo/src/core/pipeline_model.cc" "src/core/CMakeFiles/cdpu_core.dir/pipeline_model.cc.o" "gcc" "src/core/CMakeFiles/cdpu_core.dir/pipeline_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codecs/CMakeFiles/cdpu_codecs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
