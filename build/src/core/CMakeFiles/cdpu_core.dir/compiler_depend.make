# Empty compiler generated dependencies file for cdpu_core.
# This may be replaced when dependencies are built.
