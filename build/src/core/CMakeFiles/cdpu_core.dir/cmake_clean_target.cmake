file(REMOVE_RECURSE
  "libcdpu_core.a"
)
