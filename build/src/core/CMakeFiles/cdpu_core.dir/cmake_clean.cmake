file(REMOVE_RECURSE
  "CMakeFiles/cdpu_core.dir/dpzip_codec.cc.o"
  "CMakeFiles/cdpu_core.dir/dpzip_codec.cc.o.d"
  "CMakeFiles/cdpu_core.dir/dpzip_huffman.cc.o"
  "CMakeFiles/cdpu_core.dir/dpzip_huffman.cc.o.d"
  "CMakeFiles/cdpu_core.dir/dpzip_lz77.cc.o"
  "CMakeFiles/cdpu_core.dir/dpzip_lz77.cc.o.d"
  "CMakeFiles/cdpu_core.dir/pipeline_model.cc.o"
  "CMakeFiles/cdpu_core.dir/pipeline_model.cc.o.d"
  "libcdpu_core.a"
  "libcdpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
