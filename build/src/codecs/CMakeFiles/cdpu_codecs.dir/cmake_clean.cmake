file(REMOVE_RECURSE
  "CMakeFiles/cdpu_codecs.dir/codec.cc.o"
  "CMakeFiles/cdpu_codecs.dir/codec.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/deflate_codec.cc.o"
  "CMakeFiles/cdpu_codecs.dir/deflate_codec.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/entropy.cc.o"
  "CMakeFiles/cdpu_codecs.dir/entropy.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/fse.cc.o"
  "CMakeFiles/cdpu_codecs.dir/fse.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/gzip_codec.cc.o"
  "CMakeFiles/cdpu_codecs.dir/gzip_codec.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/huffman_coder.cc.o"
  "CMakeFiles/cdpu_codecs.dir/huffman_coder.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/lz4_codec.cc.o"
  "CMakeFiles/cdpu_codecs.dir/lz4_codec.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/mini_zstd.cc.o"
  "CMakeFiles/cdpu_codecs.dir/mini_zstd.cc.o.d"
  "CMakeFiles/cdpu_codecs.dir/snappy_codec.cc.o"
  "CMakeFiles/cdpu_codecs.dir/snappy_codec.cc.o.d"
  "libcdpu_codecs.a"
  "libcdpu_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
