file(REMOVE_RECURSE
  "libcdpu_codecs.a"
)
