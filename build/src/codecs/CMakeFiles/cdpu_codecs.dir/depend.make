# Empty dependencies file for cdpu_codecs.
# This may be replaced when dependencies are built.
