
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codecs/codec.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/codec.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/codec.cc.o.d"
  "/root/repo/src/codecs/deflate_codec.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/deflate_codec.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/deflate_codec.cc.o.d"
  "/root/repo/src/codecs/entropy.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/entropy.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/entropy.cc.o.d"
  "/root/repo/src/codecs/fse.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/fse.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/fse.cc.o.d"
  "/root/repo/src/codecs/gzip_codec.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/gzip_codec.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/gzip_codec.cc.o.d"
  "/root/repo/src/codecs/huffman_coder.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/huffman_coder.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/huffman_coder.cc.o.d"
  "/root/repo/src/codecs/lz4_codec.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/lz4_codec.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/lz4_codec.cc.o.d"
  "/root/repo/src/codecs/mini_zstd.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/mini_zstd.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/mini_zstd.cc.o.d"
  "/root/repo/src/codecs/snappy_codec.cc" "src/codecs/CMakeFiles/cdpu_codecs.dir/snappy_codec.cc.o" "gcc" "src/codecs/CMakeFiles/cdpu_codecs.dir/snappy_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
