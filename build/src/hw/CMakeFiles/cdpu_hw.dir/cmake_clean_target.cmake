file(REMOVE_RECURSE
  "libcdpu_hw.a"
)
