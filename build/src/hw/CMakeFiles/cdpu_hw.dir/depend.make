# Empty dependencies file for cdpu_hw.
# This may be replaced when dependencies are built.
