
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cdpu_device.cc" "src/hw/CMakeFiles/cdpu_hw.dir/cdpu_device.cc.o" "gcc" "src/hw/CMakeFiles/cdpu_hw.dir/cdpu_device.cc.o.d"
  "/root/repo/src/hw/device_configs.cc" "src/hw/CMakeFiles/cdpu_hw.dir/device_configs.cc.o" "gcc" "src/hw/CMakeFiles/cdpu_hw.dir/device_configs.cc.o.d"
  "/root/repo/src/hw/interconnect.cc" "src/hw/CMakeFiles/cdpu_hw.dir/interconnect.cc.o" "gcc" "src/hw/CMakeFiles/cdpu_hw.dir/interconnect.cc.o.d"
  "/root/repo/src/hw/power.cc" "src/hw/CMakeFiles/cdpu_hw.dir/power.cc.o" "gcc" "src/hw/CMakeFiles/cdpu_hw.dir/power.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
