file(REMOVE_RECURSE
  "CMakeFiles/cdpu_hw.dir/cdpu_device.cc.o"
  "CMakeFiles/cdpu_hw.dir/cdpu_device.cc.o.d"
  "CMakeFiles/cdpu_hw.dir/device_configs.cc.o"
  "CMakeFiles/cdpu_hw.dir/device_configs.cc.o.d"
  "CMakeFiles/cdpu_hw.dir/interconnect.cc.o"
  "CMakeFiles/cdpu_hw.dir/interconnect.cc.o.d"
  "CMakeFiles/cdpu_hw.dir/power.cc.o"
  "CMakeFiles/cdpu_hw.dir/power.cc.o.d"
  "libcdpu_hw.a"
  "libcdpu_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
