file(REMOVE_RECURSE
  "libcdpu_kv.a"
)
