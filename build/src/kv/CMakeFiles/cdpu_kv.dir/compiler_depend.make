# Empty compiler generated dependencies file for cdpu_kv.
# This may be replaced when dependencies are built.
