file(REMOVE_RECURSE
  "CMakeFiles/cdpu_kv.dir/bloom.cc.o"
  "CMakeFiles/cdpu_kv.dir/bloom.cc.o.d"
  "CMakeFiles/cdpu_kv.dir/lsm.cc.o"
  "CMakeFiles/cdpu_kv.dir/lsm.cc.o.d"
  "CMakeFiles/cdpu_kv.dir/skiplist.cc.o"
  "CMakeFiles/cdpu_kv.dir/skiplist.cc.o.d"
  "CMakeFiles/cdpu_kv.dir/sstable.cc.o"
  "CMakeFiles/cdpu_kv.dir/sstable.cc.o.d"
  "CMakeFiles/cdpu_kv.dir/ycsb_runner.cc.o"
  "CMakeFiles/cdpu_kv.dir/ycsb_runner.cc.o.d"
  "libcdpu_kv.a"
  "libcdpu_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
