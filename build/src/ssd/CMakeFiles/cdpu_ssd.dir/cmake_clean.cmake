file(REMOVE_RECURSE
  "CMakeFiles/cdpu_ssd.dir/ftl.cc.o"
  "CMakeFiles/cdpu_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/cdpu_ssd.dir/nand.cc.o"
  "CMakeFiles/cdpu_ssd.dir/nand.cc.o.d"
  "CMakeFiles/cdpu_ssd.dir/scheme.cc.o"
  "CMakeFiles/cdpu_ssd.dir/scheme.cc.o.d"
  "CMakeFiles/cdpu_ssd.dir/ssd.cc.o"
  "CMakeFiles/cdpu_ssd.dir/ssd.cc.o.d"
  "libcdpu_ssd.a"
  "libcdpu_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpu_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
