file(REMOVE_RECURSE
  "libcdpu_ssd.a"
)
