# Empty compiler generated dependencies file for cdpu_ssd.
# This may be replaced when dependencies are built.
