#include "src/core/dpzip_codec.h"

#include "src/codecs/fse.h"
#include "src/common/bitstream.h"
#include "src/common/crc32.h"
#include "src/common/varint.h"
#include "src/trace/trace.h"

namespace cdpu {
namespace {

constexpr uint8_t kFlagCompressed = 0x01;
constexpr uint8_t kFlagDictionary = 0x02;
constexpr uint8_t kFlagFseLiterals = 0x04;

uint8_t BucketCode(uint32_t v) { return static_cast<uint8_t>(31 - __builtin_clz(v + 1)); }
uint32_t BucketBase(uint8_t code) { return (1u << code) - 1; }

}  // namespace

DpzipLz77Config DpzipLz77ConfigForLevel(int level) {
  DpzipLz77Config c;  // level 1: the silicon design point
  if (level >= 2) {
    c.first_fit = false;
    c.skip_on_miss = 2;
  }
  if (level >= 3) {
    c.skip_on_miss = 1;
    c.hash_buckets = 4096;
    c.ways = 8;
  }
  return c;
}

DpzipCodec::DpzipCodec(const DpzipCodecConfig& config)
    : config_(config), encoder_(config.lz77), decoder_(config.lz77) {
  if (!config_.dictionary.empty()) {
    dict_crc_ = Crc32(config_.dictionary);
  }
}

Result<size_t> DpzipCodec::Compress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  stats_ = DpzipBlockStats{};
  stats_.input_bytes = input.size();

  bool use_dict = !config_.dictionary.empty();
  bool use_fse = config_.entropy == DpzipEntropyMode::kFse;

  ByteVec frame;
  uint8_t flags = kFlagCompressed;
  if (use_dict) {
    flags |= kFlagDictionary;
  }
  if (use_fse) {
    flags |= kFlagFseLiterals;
  }
  frame.push_back(flags);
  PutVarint64(&frame, input.size());
  if (use_dict) {
    PutVarint32(&frame, dict_crc_);
  }

  std::vector<Lz77Token> tokens;
  std::vector<uint8_t> literals;
  {
    trace::CodecPhaseSpan lz77_span(trace::Phase::kCodecLz77);
    if (use_dict) {
      encoder_.EncodeWithDictionary(config_.dictionary, input, &tokens, &literals,
                                    &stats_.lz77);
    } else {
      encoder_.Encode(input, &tokens, &literals, &stats_.lz77);
    }
  }

  // Entropy phase: literal coding plus the FSE sequence streams; ends (via
  // reset) before the store-raw bypass decision.
  std::optional<trace::CodecPhaseSpan> entropy_span(std::in_place,
                                                    trace::Phase::kCodecEntropy);
  if (use_fse) {
    Status st = FseCompressBlock(literals, 11, &frame);
    if (!st.ok()) {
      return st;
    }
    // The canonicalisation schedule still runs for the sequence tables; the
    // FSE engine's table build is charged the same bounded schedule (§3.3).
    stats_.huffman.schedule_cycles = 256 + 10;
  } else {
    Status st = DpzipHuffmanEncode(literals, &frame, &stats_.huffman);
    if (!st.ok()) {
      return st;
    }
  }
  PutVarint64(&frame, literals.size());

  // Sequence streams (token fields), FSE-coded bucket codes + raw extra bits.
  PutVarint64(&frame, tokens.size());
  std::vector<uint8_t> ll_codes;
  std::vector<uint8_t> ml_codes;
  std::vector<uint8_t> of_codes;
  ByteVec extra;
  {
    BitWriter bw(&extra);
    for (const Lz77Token& t : tokens) {
      uint8_t lc = BucketCode(t.lit_len);
      ll_codes.push_back(lc);
      bw.Write(t.lit_len - BucketBase(lc), lc);
      uint8_t mc = BucketCode(t.match_len);
      ml_codes.push_back(mc);
      bw.Write(t.match_len - BucketBase(mc), mc);
      uint8_t oc = BucketCode(t.offset);
      of_codes.push_back(oc);
      bw.Write(t.offset - BucketBase(oc), oc);
    }
    bw.AlignToByte();
  }
  Status st = FseCompressBlock(ll_codes, 9, &frame);
  if (!st.ok()) {
    return st;
  }
  st = FseCompressBlock(ml_codes, 9, &frame);
  if (!st.ok()) {
    return st;
  }
  st = FseCompressBlock(of_codes, 9, &frame);
  if (!st.ok()) {
    return st;
  }
  PutVarint64(&frame, extra.size());
  frame.insert(frame.end(), extra.begin(), extra.end());
  entropy_span.reset();

  // Hardware bypass: store raw when compression does not pay.
  if (frame.size() >= input.size() + 2 + 9) {
    out->push_back(0);  // raw frame
    PutVarint64(out, input.size());
    out->insert(out->end(), input.begin(), input.end());
    stats_.stored_raw = true;
  } else {
    out->insert(out->end(), frame.begin(), frame.end());
  }
  stats_.output_bytes = out->size() - start_size;
  return out->size() - start_size;
}

Result<size_t> DpzipCodec::Decompress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  stats_ = DpzipBlockStats{};
  if (input.empty()) {
    return Status::CorruptData("dpzip: empty frame");
  }
  size_t pos = 0;
  uint8_t flags = input[pos++];
  std::optional<uint64_t> original = GetVarint64(input, &pos);
  if (!original.has_value()) {
    return Status::CorruptData("dpzip: bad frame header");
  }
  stats_.input_bytes = input.size();

  if ((flags & kFlagCompressed) == 0) {
    if (flags != 0) {
      return Status::CorruptData("dpzip: unknown frame flags");
    }
    if (pos + *original > input.size()) {
      return Status::CorruptData("dpzip: raw payload past end");
    }
    out->insert(out->end(), input.begin() + pos, input.begin() + pos + *original);
    stats_.stored_raw = true;
    stats_.output_bytes = *original;
    return out->size() - start_size;
  }

  bool use_dict = (flags & kFlagDictionary) != 0;
  bool use_fse = (flags & kFlagFseLiterals) != 0;
  if (use_dict) {
    std::optional<uint32_t> crc = GetVarint32(input, &pos);
    if (!crc.has_value()) {
      return Status::CorruptData("dpzip: truncated dictionary id");
    }
    if (config_.dictionary.empty() || *crc != dict_crc_) {
      return Status::InvalidArgument("dpzip: frame needs a different preset dictionary");
    }
  }

  // Literals. Entropy phase: literal + sequence-stream decode.
  std::optional<trace::CodecPhaseSpan> entropy_span(std::in_place,
                                                    trace::Phase::kCodecEntropy);
  std::vector<uint8_t> literals;
  if (use_fse) {
    size_t consumed = 0;
    CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &literals));
    pos += consumed;
    std::optional<uint64_t> lit_count = GetVarint64(input, &pos);
    if (!lit_count.has_value() || *lit_count != literals.size()) {
      return Status::CorruptData("dpzip: literal count mismatch");
    }
  } else {
    // The Huffman block is self-delimiting; lit_count follows it, so scan
    // the table+payload extent first.
    size_t table_pos = pos;
    {
      size_t p = pos;
      std::optional<uint32_t> last = GetVarint32(input, &p);
      if (!last.has_value() || *last > 256) {
        return Status::CorruptData("dpzip: bad literal table size");
      }
      p += (*last + 1) / 2;
      if (p > input.size()) {
        return Status::CorruptData("dpzip: truncated literal table");
      }
      std::optional<uint64_t> payload_len = GetVarint64(input, &p);
      if (!payload_len.has_value() || p + *payload_len > input.size()) {
        return Status::CorruptData("dpzip: bad literal payload length");
      }
      pos = p + *payload_len;
    }
    std::optional<uint64_t> lit_count = GetVarint64(input, &pos);
    if (!lit_count.has_value()) {
      return Status::CorruptData("dpzip: bad literal count");
    }
    size_t consumed = 0;
    CDPU_RETURN_IF_ERROR(
        DpzipHuffmanDecode(input.subspan(table_pos), *lit_count, &consumed, &literals));
  }

  std::optional<uint64_t> seq_count = GetVarint64(input, &pos);
  if (!seq_count.has_value()) {
    return Status::CorruptData("dpzip: bad sequence count");
  }
  std::vector<uint8_t> ll_codes;
  std::vector<uint8_t> ml_codes;
  std::vector<uint8_t> of_codes;
  size_t consumed = 0;
  CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &ll_codes));
  pos += consumed;
  CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &ml_codes));
  pos += consumed;
  CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &of_codes));
  pos += consumed;
  if (ll_codes.size() != *seq_count || ml_codes.size() != *seq_count ||
      of_codes.size() != *seq_count) {
    return Status::CorruptData("dpzip: sequence stream mismatch");
  }
  entropy_span.reset();
  std::optional<uint64_t> extra_len = GetVarint64(input, &pos);
  if (!extra_len.has_value() || pos + *extra_len > input.size()) {
    return Status::CorruptData("dpzip: bad extra-bit stream");
  }
  BitReader br(input.subspan(pos, *extra_len));

  // LZ77 phase: token reconstruction + match copy-back.
  trace::CodecPhaseSpan lz77_span(trace::Phase::kCodecLz77);
  std::vector<Lz77Token> tokens;
  tokens.reserve(*seq_count);
  for (uint64_t i = 0; i < *seq_count; ++i) {
    Lz77Token t;
    t.lit_len = BucketBase(ll_codes[i]) + static_cast<uint32_t>(br.Read(ll_codes[i]));
    t.match_len = BucketBase(ml_codes[i]) + static_cast<uint32_t>(br.Read(ml_codes[i]));
    t.offset = BucketBase(of_codes[i]) + static_cast<uint32_t>(br.Read(of_codes[i]));
    if (br.overflowed()) {
      return Status::CorruptData("dpzip: truncated extra bits");
    }
    tokens.push_back(t);
  }

  if (use_dict) {
    CDPU_RETURN_IF_ERROR(decoder_.DecodeWithDictionary(tokens, literals, config_.dictionary,
                                                       out, &stats_.lz77_decode));
  } else {
    CDPU_RETURN_IF_ERROR(decoder_.Decode(tokens, literals, out, &stats_.lz77_decode));
  }
  if (out->size() - start_size != *original) {
    return Status::CorruptData("dpzip: size mismatch after decode");
  }
  stats_.output_bytes = out->size() - start_size;
  return out->size() - start_size;
}

void DpzipCodec::RegisterWithFactory() {
  RegisterCodecFactory("dpzip", []() -> std::unique_ptr<Codec> {
    return std::make_unique<DpzipCodec>();
  });
}

}  // namespace cdpu
