#include "src/core/pipeline_model.h"

#include <cmath>

namespace cdpu {

DpzipPipelineModel::DpzipPipelineModel(const DpzipPipelineConfig& config) : config_(config) {}

DpzipTiming DpzipPipelineModel::CompressLatency(const DpzipBlockStats& stats) const {
  DpzipTiming t;
  uint64_t stream_cycles =
      (stats.input_bytes + config_.bytes_per_cycle - 1) / config_.bytes_per_cycle;

  // Stage-2 compares beyond the replicated match units stall the pipeline.
  // With dense matching most compares overlap streaming; only the excess
  // over one compare per group of match_units positions is charged.
  uint64_t hidden = stats.lz77.positions_processed / std::max(1u, config_.match_units);
  uint64_t excess =
      stats.lz77.candidate_compares > hidden ? stats.lz77.candidate_compares - hidden : 0;
  uint64_t stalls = static_cast<uint64_t>(
      std::llround(static_cast<double>(excess) * config_.compare_stall_cycles));

  // Dynamic Huffman canonicalisation runs once per block; the 3-stage
  // schedule is bounded at 256 + 10 + 8 cycles (§3.3). The incompressible
  // bypass still pays it: the hardware always attempts compression and the
  // raw/compressed selection happens at the output mux, which is what keeps
  // DPZip throughput flat across compressibility (Finding 5).
  uint64_t huffman_cycles = stats.huffman.schedule_cycles;

  t.stall_cycles = stalls;
  t.cycles = stream_cycles + config_.pipeline_depth + huffman_cycles + stalls;
  t.nanos = CyclesToNanos(t.cycles);
  return t;
}

DpzipTiming DpzipPipelineModel::DecompressLatency(const DpzipBlockStats& stats) const {
  DpzipTiming t;
  uint64_t out_bytes = stats.stored_raw ? stats.output_bytes
                                        : stats.lz77_decode.literal_bytes +
                                              stats.lz77_decode.match_bytes;
  uint64_t stream_cycles = (out_bytes + config_.bytes_per_cycle - 1) / config_.bytes_per_cycle;

  // SRAM-served match bytes (recent-buffer misses) pay dual-port SRAM read
  // latency; register hits are free (§3.2.4).
  uint64_t sram_bytes = stats.lz77_decode.sram_reads;
  if (!config_.model_recent_buffer) {
    sram_bytes += stats.lz77_decode.register_hits;  // ablation: no register buffer
  }
  uint64_t sram_groups = (sram_bytes + config_.bytes_per_cycle - 1) / config_.bytes_per_cycle;
  uint64_t stalls = static_cast<uint64_t>(
      std::llround(static_cast<double>(sram_groups) * config_.sram_stall_cycles));

  t.stall_cycles = stalls;
  t.cycles = stream_cycles + config_.pipeline_depth + stalls;
  t.nanos = CyclesToNanos(t.cycles);
  return t;
}

}  // namespace cdpu
