#include "src/core/dpzip_huffman.h"

#include <algorithm>
#include <array>
#include <queue>

#include "src/codecs/huffman_coder.h"
#include "src/common/bitstream.h"
#include "src/common/varint.h"

namespace cdpu {
namespace {

// Unbounded Huffman depths via the standard two-queue/heap merge. Returns
// raw depths (possibly > max) as the input to the canonicalisation pipeline.
std::vector<uint8_t> RawHuffmanDepths(std::span<const uint32_t> freqs) {
  struct Node {
    uint64_t freq;
    int symbol;
    int left;
    int right;
  };
  std::vector<Node> nodes;
  using Item = std::pair<uint64_t, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) {
      nodes.push_back(Node{freqs[i], static_cast<int>(i), -1, -1});
      heap.push({freqs[i], static_cast<int>(nodes.size() - 1)});
    }
  }
  std::vector<uint8_t> depths(freqs.size(), 0);
  if (heap.empty()) {
    return depths;
  }
  if (heap.size() == 1) {
    depths[static_cast<size_t>(nodes[0].symbol)] = 1;
    return depths;
  }
  while (heap.size() > 1) {
    auto [f1, a] = heap.top();
    heap.pop();
    auto [f2, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{f1 + f2, -1, a, b});
    heap.push({f1 + f2, static_cast<int>(nodes.size() - 1)});
  }
  struct Frame {
    int node;
    uint32_t depth;
  };
  std::vector<Frame> stack{{static_cast<int>(nodes.size() - 1), 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<size_t>(f.node)];
    if (nd.symbol >= 0) {
      depths[static_cast<size_t>(nd.symbol)] =
          static_cast<uint8_t>(std::min<uint32_t>(f.depth == 0 ? 1 : f.depth, 255));
    } else {
      stack.push_back({nd.left, f.depth + 1});
      stack.push_back({nd.right, f.depth + 1});
    }
  }
  return depths;
}

}  // namespace

std::vector<uint8_t> DpzipBuildLengths(std::span<const uint32_t> freqs, uint32_t max_bits,
                                       CanonicalizeStats* stats) {
  CanonicalizeStats local;
  std::vector<uint8_t> lengths = RawHuffmanDepths(freqs);

  uint32_t present = 0;
  for (uint8_t l : lengths) {
    if (l > 0) {
      ++present;
    }
  }
  if (present <= 1) {
    local.schedule_cycles = 256;
    if (stats != nullptr) {
      *stats = local;
    }
    return lengths;
  }

  // Kraft budget in units of 2^-max_bits: capacity is 2^max_bits.
  const int64_t capacity = int64_t{1} << max_bits;
  auto kraft_share = [&](uint32_t depth) { return int64_t{1} << (max_bits - depth); };

  // --- Stage 1: Leaf Scan & Cap -------------------------------------------
  // One streaming pass: clip deep leaves and accumulate the Kraft sum.
  int64_t kraft = 0;
  for (uint8_t& l : lengths) {
    if (l == 0) {
      continue;
    }
    if (l > max_bits) {
      l = static_cast<uint8_t>(max_bits);
      ++local.clipped_leaves;
    }
    kraft += kraft_share(l);
  }
  int64_t debt = kraft - capacity;  // > 0: oversubscribed after clipping

  // Per-level leaf counts for the FSM stages.
  std::vector<uint32_t> level_count(max_bits + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) {
      ++level_count[l];
    }
  }

  // --- Stage 2: Deterministic Redistribution ------------------------------
  // The FSM walks levels (max-1) .. 1, one cycle per level, demoting as
  // many leaves as the level can absorb in a single counter update
  // (arithmetic limited to shifts/increments). Demotions populate the next
  // level, so the walk repeats until the debt is gone; in practice almost
  // everything resolves at level max-1 (gain = 1 Kraft unit) on the first
  // pass. The final demotion may overshoot, flipping residual debt into
  // holes for stage 3.
  while (debt > 0) {
    bool changed = false;
    for (uint32_t d = max_bits - 1; d >= 1 && debt > 0; --d) {
      int64_t gain = int64_t{1} << (max_bits - d - 1);
      if (level_count[d] > 0) {
        // Batch: demote enough leaves to absorb the debt at this level,
        // rounding up once at the end (bounded overshoot < gain).
        int64_t want = (debt + gain - 1) / gain;
        int64_t m = std::min<int64_t>(want, level_count[d]);
        level_count[d] -= static_cast<uint32_t>(m);
        level_count[d + 1] += static_cast<uint32_t>(m);
        debt -= m * gain;
        local.demotions += static_cast<uint32_t>(m);
        changed = true;
      }
      if (d == 1) {
        break;
      }
    }
    if (!changed) {
      break;  // cannot happen when the alphabet fits 2^max_bits codes
    }
  }

  // --- Stage 3: Logarithmic Hole Repair -----------------------------------
  // holes = -debt > 0 means spare capacity. Each cycle promotes a batch of
  // leaves (d -> d-1, gain 2^(max-d) each) covering the largest power that
  // fits — the residual at least halves per cycle, so the loop terminates
  // in <= ceil(log2 holes) iterations (§3.3: <= 8 for a 256-symbol
  // alphabet's typical hole counts).
  int64_t holes = -debt;
  while (holes > 0) {
    ++local.repair_iterations;
    bool progressed = false;
    for (uint32_t d = 2; d <= max_bits; ++d) {
      int64_t gain = int64_t{1} << (max_bits - d);
      if (gain <= holes && level_count[d] > 0) {
        int64_t m = std::min<int64_t>(holes / gain, level_count[d]);
        level_count[d] -= static_cast<uint32_t>(m);
        level_count[d - 1] += static_cast<uint32_t>(m);
        holes -= m * gain;
        local.promotions += static_cast<uint32_t>(m);
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      break;  // no promotable leaf; holes stay (code remains prefix-valid)
    }
  }

  // Materialise lengths from the adjusted level histogram: most frequent
  // symbols take the shortest codes (canonical order).
  std::vector<int> symbols;
  for (size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) {
      symbols.push_back(static_cast<int>(i));
    }
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    if (freqs[static_cast<size_t>(a)] != freqs[static_cast<size_t>(b)]) {
      return freqs[static_cast<size_t>(a)] > freqs[static_cast<size_t>(b)];
    }
    return a < b;
  });
  size_t idx = 0;
  for (uint32_t d = 1; d <= max_bits; ++d) {
    for (uint32_t k = 0; k < level_count[d] && idx < symbols.size(); ++k) {
      lengths[static_cast<size_t>(symbols[idx++])] = static_cast<uint8_t>(d);
    }
  }

  local.schedule_cycles = 256 + (max_bits - 1) + local.repair_iterations;
  if (stats != nullptr) {
    *stats = local;
  }
  return lengths;
}

Status DpzipHuffmanEncode(std::span<const uint8_t> data, std::vector<uint8_t>* out,
                          CanonicalizeStats* stats) {
  std::array<uint32_t, 256> freqs{};
  for (uint8_t b : data) {
    ++freqs[b];
  }
  std::vector<uint8_t> lengths = DpzipBuildLengths(freqs, kDpzipMaxCodeBits, stats);
  std::vector<uint16_t> codes;
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(lengths, &codes));

  // Nibble-packed length table over [0, last_nonzero]: lengths are <= 11 so
  // each fits 4 bits; trailing symbols are implicitly absent. This mirrors
  // the compact code-length representation the hardware stores in SRAM.
  size_t last = 256;
  while (last > 0 && lengths[last - 1] == 0) {
    --last;
  }
  PutVarint32(out, static_cast<uint32_t>(last));
  for (size_t s = 0; s < last; s += 2) {
    uint8_t lo = lengths[s];
    uint8_t hi = s + 1 < last ? lengths[s + 1] : 0;
    out->push_back(static_cast<uint8_t>(lo | (hi << 4)));
  }

  std::vector<uint8_t> payload;
  BitWriter bw(&payload);
  for (uint8_t b : data) {
    if (lengths[b] == 0) {
      return Status::Internal("dpzip-huffman: symbol without code");
    }
    bw.Write(ReverseBits(codes[b], lengths[b]), lengths[b]);
  }
  bw.AlignToByte();
  PutVarint64(out, payload.size());
  out->insert(out->end(), payload.begin(), payload.end());
  return Status::Ok();
}

Status DpzipHuffmanDecode(std::span<const uint8_t> stream, size_t count, size_t* consumed,
                          std::vector<uint8_t>* out) {
  size_t pos = 0;
  std::vector<uint8_t> lengths(256, 0);
  std::optional<uint32_t> last = GetVarint32(stream, &pos);
  if (!last.has_value() || *last > 256) {
    return Status::CorruptData("dpzip-huffman: bad table size");
  }
  size_t nbytes = (*last + 1) / 2;
  if (pos + nbytes > stream.size()) {
    return Status::CorruptData("dpzip-huffman: truncated length table");
  }
  for (size_t s = 0; s < *last; ++s) {
    uint8_t packed = stream[pos + s / 2];
    lengths[s] = (s % 2 == 0) ? (packed & 0x0f) : (packed >> 4);
  }
  pos += nbytes;
  std::optional<uint64_t> payload_len = GetVarint64(stream, &pos);
  if (!payload_len.has_value() || pos + *payload_len > stream.size()) {
    return Status::CorruptData("dpzip-huffman: bad payload length");
  }

  HuffmanDecoder dec;
  CDPU_RETURN_IF_ERROR(dec.Init(lengths));
  BitReader br(stream.subspan(pos, *payload_len));
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    int sym = dec.Decode(static_cast<uint32_t>(br.Peek(dec.max_len())), &len);
    if (sym < 0 || br.overflowed()) {
      return Status::CorruptData("dpzip-huffman: bad symbol");
    }
    br.Skip(len);
    out->push_back(static_cast<uint8_t>(sym));
  }
  *consumed = pos + *payload_len;
  return Status::Ok();
}

}  // namespace cdpu
