// DPZip frame codec: the functional compressor/decompressor implemented by
// the DPZip ASIC (paper §3). Pipeline: hardware-model LZ77 (bounded FIFO
// hash table, two-level match, partial-lazy) -> dynamic canonical Huffman
// (11-bit cap) or FSE for literals (§3.1 lists both engines) -> FSE for the
// sequence bucket streams.
//
// Incompressible pages are stored raw behind a flags byte, mirroring the
// hardware bypass that keeps throughput stable on random data (Finding 5).
//
// Two §6 "remaining challenges" are implemented as options:
//  - preset dictionaries (the paper's earmarked future work): the encoder's
//    hash table and history are primed with a shared dictionary, recovering
//    cross-page redundancy lost to the 4 KB page granularity;
//  - multiple compression levels within the single algorithm
//    (DpzipLz77ConfigForLevel), trading match-search effort for ratio
//    without adding a second engine.
//
// Frame layout:
//   u8 flags (bit0 compressed, bit1 dictionary, bit2 fse-literals)
//   varint original_size
//   [dictionary: u32 dict crc]
//   raw: original bytes
//   compressed:
//     literal block (Huffman or FSE layout) + varint lit_count
//     varint sequence count, FSE blocks for LL/ML/OF codes, extra-bit stream

#ifndef SRC_CORE_DPZIP_CODEC_H_
#define SRC_CORE_DPZIP_CODEC_H_

#include "src/codecs/codec.h"
#include "src/core/dpzip_huffman.h"
#include "src/core/dpzip_lz77.h"

namespace cdpu {

enum class DpzipEntropyMode : uint8_t { kHuffman, kFse };

// §6: levels within one algorithm. 1 = the silicon design point (first-fit,
// skip-4); 2 = best-of-ways, skip-2; 3 = best-of-ways, skip-1, double table.
DpzipLz77Config DpzipLz77ConfigForLevel(int level);

struct DpzipCodecConfig {
  DpzipLz77Config lz77;
  DpzipEntropyMode entropy = DpzipEntropyMode::kHuffman;
  // Optional preset dictionary shared by compressor and decompressor.
  std::vector<uint8_t> dictionary;
};

// Observability for the pipeline timing model: everything the cycle model
// needs to charge the last (de)compression.
struct DpzipBlockStats {
  size_t input_bytes = 0;
  size_t output_bytes = 0;
  bool stored_raw = false;
  Lz77EncodeStats lz77;
  Lz77DecodeStats lz77_decode;
  CanonicalizeStats huffman;
};

class DpzipCodec : public Codec {
 public:
  explicit DpzipCodec(const DpzipLz77Config& config) : DpzipCodec(Wrap(config)) {}
  explicit DpzipCodec(const DpzipCodecConfig& config = {});

  std::string name() const override { return "dpzip"; }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;

  const DpzipBlockStats& last_stats() const { return stats_; }
  const DpzipLz77Config& config() const { return encoder_.config(); }
  const DpzipCodecConfig& codec_config() const { return config_; }

  // Registers "dpzip" with MakeCodec().
  static void RegisterWithFactory();

 private:
  static DpzipCodecConfig Wrap(const DpzipLz77Config& lz77) {
    DpzipCodecConfig c;
    c.lz77 = lz77;
    return c;
  }

  DpzipCodecConfig config_;
  DpzipLz77Encoder encoder_;
  DpzipLz77Decoder decoder_;
  uint32_t dict_crc_ = 0;
  DpzipBlockStats stats_;
};

}  // namespace cdpu

#endif  // SRC_CORE_DPZIP_CODEC_H_
