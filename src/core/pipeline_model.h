// Cycle-level timing model of the DPZip pipeline (paper §3.1, §3.3).
//
// The ASIC processes 8 bytes per cycle at 1 GHz (so 1 cycle = 1 ns),
// reaching ~16 GB/s peak and ~2 us for a 4 KB transfer. The model charges:
//  - streaming cycles: ceil(bytes / bytes_per_cycle)
//  - pipeline fill/drain: a fixed depth
//  - dynamic Huffman canonicalisation: the 3-stage schedule (<= 274 cycles)
//  - encoder stalls: candidate-compare conflicts beyond the replicated
//    match units
//  - decoder stalls: SRAM-served match bytes that miss the 256 B recent-data
//    register buffer (dual-port SRAM read latency)
//
// The model is deliberately analytic — it converts the functional codec's
// observed statistics into deterministic cycle counts, reproducing the
// *shape* of Figure 8/9/12 rather than silicon-exact numbers.

#ifndef SRC_CORE_PIPELINE_MODEL_H_
#define SRC_CORE_PIPELINE_MODEL_H_

#include <cstdint>

#include "src/core/dpzip_codec.h"
#include "src/sim/sim_time.h"

namespace cdpu {

struct DpzipPipelineConfig {
  double clock_ghz = 1.0;          // 12 nm closure at 1 GHz (§3.3)
  uint32_t bytes_per_cycle = 8;    // §3.1
  uint32_t pipeline_depth = 64;    // fill/drain overhead, cycles
  uint32_t match_units = 4;        // replicated match units (§3.2.2)
  // Extra cycles per stage-2 compare beyond what the match units hide.
  double compare_stall_cycles = 0.25;
  // Extra cycles per SRAM-served match byte group (8B) in the decoder when
  // the recent-data register buffer misses.
  double sram_stall_cycles = 0.5;
  bool model_recent_buffer = true;  // ablation: disable the 256B buffer
};

struct DpzipTiming {
  uint64_t cycles = 0;
  SimNanos nanos = 0;
  uint64_t stall_cycles = 0;
};

class DpzipPipelineModel {
 public:
  explicit DpzipPipelineModel(const DpzipPipelineConfig& config = {});

  // Latency of compressing a block with the observed stats.
  DpzipTiming CompressLatency(const DpzipBlockStats& stats) const;

  // Latency of decompressing a block with the observed stats.
  DpzipTiming DecompressLatency(const DpzipBlockStats& stats) const;

  // Peak streaming throughput in GB/s (no per-block overheads).
  double PeakThroughputGBps() const {
    return config_.clock_ghz * config_.bytes_per_cycle;
  }

  const DpzipPipelineConfig& config() const { return config_; }

 private:
  SimNanos CyclesToNanos(uint64_t cycles) const {
    return static_cast<SimNanos>(static_cast<double>(cycles) / config_.clock_ghz);
  }

  DpzipPipelineConfig config_;
};

}  // namespace cdpu

#endif  // SRC_CORE_PIPELINE_MODEL_H_
