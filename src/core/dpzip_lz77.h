// Hardware-model LZ77 encoder/decoder for DPZip (paper §3.2).
//
// Encoder (§3.2.3):
//  - SRAM-optimised hash table: a small bounded array of buckets, each
//    holding `ways` candidate positions managed as a circular FIFO, so old
//    entries age out without pointer-chasing.
//  - Two-level match processing: a cheap hash check selects candidates, then
//    a byte-wise compare confirms the match length (no false positives reach
//    the pipeline).
//  - Partial-lazy matching: on a miss the pipeline skips ahead `skip`
//    bytes (4 in silicon); on a hit it accepts the first valid match without
//    backtracking (first-fit policy).
//
// Decoder (§3.2.4):
//  - Dual-buffer design (literal vs history) with a small register-backed
//    recent-data buffer (256 B) serving short-offset matches without SRAM
//    latency. Functionally a plain copy; the model counts register hits vs
//    SRAM reads so the pipeline model can charge them differently.
//
// All parameters are exposed so the ablation benchmarks can vary them.

#ifndef SRC_CORE_DPZIP_LZ77_H_
#define SRC_CORE_DPZIP_LZ77_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace cdpu {

struct DpzipLz77Config {
  uint32_t hash_buckets = 2048;      // power of two; total SRAM ~ buckets*ways*4B
  uint32_t ways = 4;                 // candidate slots per bucket (FIFO)
  // §3.2.3: two hash functions (Hash0/Hash1) index two buckets per 4-byte
  // word, widening candidate selection without deeper buckets.
  bool dual_hash = true;
  uint32_t min_match = 4;
  uint32_t skip_on_miss = 4;         // partial-lazy skip distance
  uint32_t max_offset = 64 * 1024;   // window reachable by the offset field
  bool first_fit = true;             // accept first valid match (no backtrack)
  uint32_t recent_buffer_bytes = 256;  // decoder register buffer
};

// <LL, ML, Off> tuple (§3.2.3). A token with match_len == 0 terminates the
// stream carrying only trailing literals.
struct Lz77Token {
  uint32_t lit_len;
  uint32_t match_len;
  uint32_t offset;
};

struct Lz77EncodeStats {
  uint64_t positions_processed = 0;
  uint64_t hash_probes = 0;
  uint64_t candidate_compares = 0;  // stage-2 byte-verify invocations
  uint64_t matches_emitted = 0;
  uint64_t match_bytes = 0;
  uint64_t literal_bytes = 0;
  uint64_t skips = 0;               // miss-path skip-ahead events

  // Fraction of input bytes covered by matches.
  double MatchCoverage() const {
    uint64_t total = match_bytes + literal_bytes;
    return total == 0 ? 0.0 : static_cast<double>(match_bytes) / static_cast<double>(total);
  }
};

struct Lz77DecodeStats {
  uint64_t literal_bytes = 0;
  uint64_t match_bytes = 0;
  uint64_t register_hits = 0;  // short-offset bytes served by the 256B buffer
  uint64_t sram_reads = 0;     // bytes read from history SRAM
};

class DpzipLz77Encoder {
 public:
  explicit DpzipLz77Encoder(const DpzipLz77Config& config = {});

  // Parses `input` into tokens + a concatenated literal byte stream.
  // The encoder is stateless across calls (per-page operation, like the
  // hardware, which resets per 4 KB flash page).
  void Encode(std::span<const uint8_t> input, std::vector<Lz77Token>* tokens,
              std::vector<uint8_t>* literals, Lz77EncodeStats* stats);

  // Preset-dictionary variant (§6 future work): the hash table and history
  // window are primed with `dict`, so matches may reference it (offsets
  // reach back into the dictionary region). Tokens cover only `input`.
  void EncodeWithDictionary(std::span<const uint8_t> dict, std::span<const uint8_t> input,
                            std::vector<Lz77Token>* tokens, std::vector<uint8_t>* literals,
                            Lz77EncodeStats* stats);

  const DpzipLz77Config& config() const { return config_; }

 private:
  DpzipLz77Config config_;
  // Bucketed candidate store: bucket * ways + slot -> position + 1 (0=empty).
  std::vector<uint32_t> table_;
  std::vector<uint8_t> fifo_next_;  // per-bucket FIFO cursor
};

class DpzipLz77Decoder {
 public:
  explicit DpzipLz77Decoder(const DpzipLz77Config& config = {});

  // Reconstructs the original bytes from tokens + literals, appending to
  // `*out`. Validates offsets/literal bounds.
  Status Decode(std::span<const Lz77Token> tokens, std::span<const uint8_t> literals,
                std::vector<uint8_t>* out, Lz77DecodeStats* stats);

  // Preset-dictionary variant: the history buffer is preloaded with `dict`.
  Status DecodeWithDictionary(std::span<const Lz77Token> tokens,
                              std::span<const uint8_t> literals,
                              std::span<const uint8_t> dict, std::vector<uint8_t>* out,
                              Lz77DecodeStats* stats);

 private:
  DpzipLz77Config config_;
};

}  // namespace cdpu

#endif  // SRC_CORE_DPZIP_LZ77_H_
