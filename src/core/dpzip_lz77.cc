#include "src/core/dpzip_lz77.h"

#include <algorithm>
#include <cstring>

namespace cdpu {
namespace {

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

DpzipLz77Encoder::DpzipLz77Encoder(const DpzipLz77Config& config) : config_(config) {
  // Round buckets to a power of two for mask indexing.
  uint32_t b = 1;
  while (b < config_.hash_buckets) {
    b <<= 1;
  }
  config_.hash_buckets = b;
  table_.assign(static_cast<size_t>(config_.hash_buckets) * config_.ways, 0);
  fifo_next_.assign(config_.hash_buckets, 0);
}

void DpzipLz77Encoder::Encode(std::span<const uint8_t> input, std::vector<Lz77Token>* tokens,
                              std::vector<uint8_t>* literals, Lz77EncodeStats* stats) {
  EncodeWithDictionary({}, input, tokens, literals, stats);
}

void DpzipLz77Encoder::EncodeWithDictionary(std::span<const uint8_t> dict,
                                            std::span<const uint8_t> input,
                                            std::vector<Lz77Token>* tokens,
                                            std::vector<uint8_t>* literals,
                                            Lz77EncodeStats* stats) {
  std::fill(table_.begin(), table_.end(), 0);
  std::fill(fifo_next_.begin(), fifo_next_.end(), 0);
  Lz77EncodeStats local;

  // The dictionary occupies the low addresses of the window; input follows.
  std::vector<uint8_t> window;
  const uint8_t* base;
  size_t dict_len = dict.size();
  size_t n;
  if (dict_len > 0) {
    window.reserve(dict_len + input.size());
    window.insert(window.end(), dict.begin(), dict.end());
    window.insert(window.end(), input.begin(), input.end());
    base = window.data();
    n = window.size();
  } else {
    base = input.data();
    n = input.size();
  }
  uint32_t mask = config_.hash_buckets - 1;
  uint32_t min_match = std::max<uint32_t>(config_.min_match, 4);

  // Hash0/Hash1 (§3.2.3): two independent multiplicative hashes over the
  // same 4-byte word select two candidate buckets.
  auto hash0 = [&](size_t pos) { return (Load32(base + pos) * 2654435761u >> 16) & mask; };
  auto hash1 = [&](size_t pos) { return (Load32(base + pos) * 0x9e3779b1u >> 13) & mask; };

  auto insert_into = [&](uint32_t h, size_t pos) {
    uint32_t slot = fifo_next_[h];
    table_[static_cast<size_t>(h) * config_.ways + slot] = static_cast<uint32_t>(pos) + 1;
    fifo_next_[h] = static_cast<uint8_t>((slot + 1) % config_.ways);
  };
  auto insert = [&](size_t pos) {
    insert_into(hash0(pos), pos);
    if (config_.dual_hash) {
      // Both hash spaces track the position (dual-port SRAM banks); lookups
      // then see the union of recent candidates from two index functions.
      insert_into(hash1(pos), pos);
    }
  };

  // Prime the candidate table with the dictionary (one insert per 4 bytes,
  // matching the hardware's update granularity).
  for (size_t p = 0; p + min_match <= dict_len; p += 4) {
    insert(p);
  }

  size_t pos = dict_len;
  size_t lit_anchor = dict_len;

  while (pos + min_match <= n) {
    ++local.positions_processed;

    size_t best_len = 0;
    size_t best_off = 0;
    uint32_t cur32 = Load32(base + pos);
    uint32_t buckets[2] = {hash0(pos), config_.dual_hash ? hash1(pos) : hash0(pos)};
    uint32_t nbuckets = config_.dual_hash ? 2 : 1;
    bool accepted = false;
    for (uint32_t b = 0; b < nbuckets && !accepted; ++b) {
      uint32_t h = buckets[b];
      ++local.hash_probes;
      for (uint32_t w = 0; w < config_.ways; ++w) {
        uint32_t stored = table_[static_cast<size_t>(h) * config_.ways + w];
        if (stored == 0) {
          continue;
        }
        size_t cpos = stored - 1;
        if (cpos >= pos || pos - cpos > config_.max_offset) {
          continue;
        }
        // Stage 1: 4-byte check (the "fast hash check").
        if (Load32(base + cpos) != cur32) {
          continue;
        }
        // Stage 2: byte-wise history match.
        ++local.candidate_compares;
        size_t limit = n - pos;
        size_t len = 4;
        while (len < limit && base[cpos + len] == base[pos + len]) {
          ++len;
        }
        if (len >= min_match && len > best_len) {
          best_len = len;
          best_off = pos - cpos;
          if (config_.first_fit) {
            accepted = true;  // first-fit: accept without scanning further
            break;
          }
        }
      }
    }

    if (best_len >= min_match) {
      literals->insert(literals->end(), base + lit_anchor, base + pos);
      local.literal_bytes += pos - lit_anchor;
      tokens->push_back(Lz77Token{static_cast<uint32_t>(pos - lit_anchor),
                                  static_cast<uint32_t>(best_len),
                                  static_cast<uint32_t>(best_off)});
      ++local.matches_emitted;
      local.match_bytes += best_len;
      // The hardware updates the table as the match streams through, at a
      // 4-byte granularity (§3.2.3 "either per iteration or every 4 bytes").
      size_t end = pos + best_len;
      for (size_t p = pos; p + min_match <= n && p < end; p += 4) {
        insert(p);
      }
      pos = end;
      lit_anchor = pos;
    } else {
      insert(pos);
      // Partial-lazy: advance by skip distance on a miss, inserting the
      // intermediate positions (cheap in hardware: parallel hash units).
      size_t step = config_.skip_on_miss > 0 ? config_.skip_on_miss : 1;
      if (step > 1) {
        ++local.skips;
        for (size_t p = pos + 1; p < pos + step && p + min_match <= n; ++p) {
          insert(p);
        }
      }
      pos += step;
    }
  }

  literals->insert(literals->end(), base + lit_anchor, base + n);
  local.literal_bytes += n - lit_anchor;
  tokens->push_back(Lz77Token{static_cast<uint32_t>(n - lit_anchor), 0, 0});

  if (stats != nullptr) {
    *stats = local;
  }
}

DpzipLz77Decoder::DpzipLz77Decoder(const DpzipLz77Config& config) : config_(config) {}

Status DpzipLz77Decoder::Decode(std::span<const Lz77Token> tokens,
                                std::span<const uint8_t> literals, std::vector<uint8_t>* out,
                                Lz77DecodeStats* stats) {
  return DecodeWithDictionary(tokens, literals, {}, out, stats);
}

Status DpzipLz77Decoder::DecodeWithDictionary(std::span<const Lz77Token> tokens,
                                              std::span<const uint8_t> literals,
                                              std::span<const uint8_t> dict,
                                              std::vector<uint8_t>* out,
                                              Lz77DecodeStats* stats) {
  Lz77DecodeStats local;
  size_t start_size = out->size();
  size_t lit_pos = 0;

  for (const Lz77Token& t : tokens) {
    if (lit_pos + t.lit_len > literals.size()) {
      return Status::CorruptData("dpzip-lz77: literal stream overrun");
    }
    // Literal pipeline: direct byte transfer from the literal buffer.
    out->insert(out->end(), literals.begin() + lit_pos, literals.begin() + lit_pos + t.lit_len);
    lit_pos += t.lit_len;
    local.literal_bytes += t.lit_len;

    if (t.match_len == 0) {
      continue;  // terminator / literal-only token
    }
    size_t produced = out->size() - start_size;
    if (t.offset == 0 || t.offset > produced + dict.size()) {
      return Status::CorruptData("dpzip-lz77: offset out of range");
    }
    // Match pipeline: replication from the history buffer, which the preset
    // dictionary (if any) virtually prefixes. Short offsets are served by
    // the register-backed recent-data buffer (§3.2.4), avoiding dual-port
    // SRAM read latency; the model only counts the distinction.
    bool recent = t.offset <= config_.recent_buffer_bytes;
    for (uint32_t i = 0; i < t.match_len; ++i) {
      int64_t rel = static_cast<int64_t>(out->size() - start_size) -
                    static_cast<int64_t>(t.offset);
      uint8_t byte = rel < 0
                         ? dict[dict.size() - static_cast<size_t>(-rel)]
                         : (*out)[start_size + static_cast<size_t>(rel)];
      out->push_back(byte);
    }
    local.match_bytes += t.match_len;
    if (recent) {
      local.register_hits += t.match_len;
    } else {
      local.sram_reads += t.match_len;
    }
  }

  if (lit_pos != literals.size()) {
    return Status::CorruptData("dpzip-lz77: unconsumed literals");
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return Status::Ok();
}

}  // namespace cdpu
