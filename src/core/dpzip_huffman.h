// DPZip's dynamic Huffman engine (paper §3.3): canonical Huffman with a
// hardware-bounded 11-bit depth ceiling enforced by a three-stage,
// latency-stable canonicalisation pipeline:
//
//   1. Leaf Scan & Cap — one streaming pass clips leaves deeper than 11 bits
//      and tallies the Kraft deficit k.
//   2. Deterministic Redistribution — an FSM walks levels 10 -> 1 demoting
//      leaves (shift/increment arithmetic only) to absorb k.
//   3. Logarithmic Hole Repair — residual holes are repaired by promotions
//      whose gain halves each iteration; terminates in <= ceil(log2 k) <= 8
//      iterations for a 256-symbol alphabet.
//
// Worst-case schedule T_max = 256 (scan) + 10 (redistribute) + 8 (repair)
// = 274 cycles — the figure the pipeline model charges per block.

#ifndef SRC_CORE_DPZIP_HUFFMAN_H_
#define SRC_CORE_DPZIP_HUFFMAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace cdpu {

constexpr uint32_t kDpzipMaxCodeBits = 11;

struct CanonicalizeStats {
  uint32_t clipped_leaves = 0;      // stage 1: leaves deeper than the cap
  uint32_t demotions = 0;           // stage 2: leaves moved one level down
  uint32_t promotions = 0;          // stage 3: leaves moved up to fill holes
  uint32_t repair_iterations = 0;   // stage 3 loop trips
  uint32_t schedule_cycles = 0;     // modelled cycles: 256 + levels + repairs
};

// Builds code lengths for `freqs` (up to 256 symbols) capped at `max_bits`
// using the hardware three-stage procedure. The result satisfies Kraft
// equality whenever >= 2 symbols are present.
std::vector<uint8_t> DpzipBuildLengths(std::span<const uint32_t> freqs,
                                       uint32_t max_bits = kDpzipMaxCodeBits,
                                       CanonicalizeStats* stats = nullptr);

// Huffman-codes `data` with a dynamic canonical table built by
// DpzipBuildLengths. Stream layout: varint symbol count, nibble-packed code
// lengths, varint payload bytes, bit-packed codes.
Status DpzipHuffmanEncode(std::span<const uint8_t> data, std::vector<uint8_t>* out,
                          CanonicalizeStats* stats = nullptr);

// Inverse of DpzipHuffmanEncode. `count` is the number of original bytes.
Status DpzipHuffmanDecode(std::span<const uint8_t> stream, size_t count, size_t* consumed,
                          std::vector<uint8_t>* out);

}  // namespace cdpu

#endif  // SRC_CORE_DPZIP_HUFFMAN_H_
