// Bridges AdaptStats into the obs metric model, the same way
// src/svc/stats_export.h bridges ServiceStats. The serve CLI and bench
// experiments export these under "svc.adapt.*" so routing shares and model
// state land in BENCH_*.json.

#ifndef SRC_ADAPT_STATS_EXPORT_H_
#define SRC_ADAPT_STATS_EXPORT_H_

#include <string>

#include "src/adapt/policy.h"
#include "src/obs/metrics.h"

namespace cdpu {
namespace adapt {

// Exports every AdaptStats field under `prefix` (e.g. "svc.adapt."): the
// decision/bypass/feedback counters plus, per candidate codec, chosen and
// feedback counts and the live per-class throughput/ratio EWMAs under
// "<prefix>codec.<name>.".
void ExportAdaptStats(const AdaptStats& stats, const std::string& prefix,
                      obs::MetricSet* metrics);

}  // namespace adapt
}  // namespace cdpu

#endif  // SRC_ADAPT_STATS_EXPORT_H_
