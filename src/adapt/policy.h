// AdaptivePolicyEngine (ISSUE 9): per-request, data-aware codec policy.
//
// For every AUTO request the engine (1) profiles a bounded prefix of the
// payload (src/adapt/profile.h), (2) bypasses incompressible data with a
// STORE decision — no codec runs at all, the service echoes the payload with
// a wire-visible flag — and (3) picks codec+level for the rest from an
// online cost model: per-(codec, entropy-class) EWMAs of throughput
// (bytes/us) and achieved ratio, seeded from analytic priors and fed by
// completion telemetry the offload runtime already produces. A bias knob
// (global or per-tenant) tilts the utility score toward throughput or ratio.
//
// Threading: Decide() runs on submitter threads (the service event loop, or
// any caller of OffloadRuntime::Submit); OnCompletion() runs on runtime
// reaper threads. Payload profiling happens outside the lock — only the
// model read/update is serialised, so the critical section is a few dozen
// doubles.

#ifndef SRC_ADAPT_POLICY_H_
#define SRC_ADAPT_POLICY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/adapt/profile.h"
#include "src/common/iobuf.h"

namespace cdpu {
namespace adapt {

// Payload compressibility classes, keyed by sampled entropy. The cost model
// keeps one ratio/throughput EWMA pair per (codec, class) because a codec's
// achieved ratio on text says nothing about its ratio on near-random data.
inline constexpr uint8_t kNumEntropyClasses = 3;  // low / mid / high
inline constexpr uint8_t kEntropyClassNone = 0xFF;

uint8_t EntropyClassOf(double entropy_bits);
const char* EntropyClassName(uint8_t entropy_class);

enum class AdaptBias : uint8_t {
  kThroughput = 0,  // tilt toward bytes/us (latency-sensitive tenants)
  kBalanced = 1,
  kRatio = 2,  // tilt toward achieved ratio (capacity-sensitive tenants)
};

const char* AdaptBiasName(AdaptBias bias);
bool ParseAdaptBias(const std::string& name, AdaptBias* bias);

enum class AdaptMode : uint8_t {
  kAuto = 0,        // bypass + codec/level selection
  kBypassOnly = 1,  // bypass incompressible; everything else -> default codec
};

struct TenantBiasHint {
  uint32_t tenant = 0;
  AdaptBias bias = AdaptBias::kBalanced;
};

struct AdaptOptions {
  // Disabled: every AUTO request resolves to default_codec with the
  // PROFILE_SKIPPED flag — no profiling, no bypass, no model.
  bool enabled = true;
  AdaptMode mode = AdaptMode::kAuto;
  // Profile window (clamped to [kMinProbeBytes, kMaxProbeBytes]).
  size_t probe_bytes = 8 * 1024;
  // Payloads below this skip profiling entirely (the probe would cost a
  // meaningful fraction of such a request) and take default_codec with the
  // PROFILE_SKIPPED flag.
  size_t min_profile_bytes = 512;
  // STORE bypass gate: entropy at/above AND match rate at/below. Uniform
  // random data profiles at ~8.0 bits and ~0 match rate; real compressible
  // data fails at least one of the two.
  double bypass_entropy_bits = 7.2;
  double bypass_match_rate = 0.05;
  // Resolution for profile-skipped payloads and for kBypassOnly mode.
  std::string default_codec = "zstd-1";
  // Codec pool the cost model selects from. Names MakeCodec rejects are
  // dropped at construction; an empty surviving set falls back to
  // {default_codec}. (Layers with extra constraints — the service needs
  // wire-mappable names — validate before constructing the engine.)
  std::vector<std::string> candidates = {"lz4", "snappy", "zstd-1", "zstd-3"};
  AdaptBias bias = AdaptBias::kBalanced;
  std::vector<TenantBiasHint> tenant_bias;  // per-tenant override of `bias`
  // EWMA smoothing for completion feedback, in (0, 1]; higher = faster
  // adaptation to the live workload, lower = stickier priors.
  double ewma_alpha = 0.2;
};

enum class AdaptAction : uint8_t {
  kCompress = 0,
  kStore = 1,  // incompressible: pass through, no codec work
};

struct AdaptDecision {
  AdaptAction action = AdaptAction::kCompress;
  std::string codec;  // factory name; empty on kStore
  uint8_t entropy_class = kEntropyClassNone;
  bool profile_skipped = false;
  double entropy_bits = 0.0;
  double match_rate = 0.0;
  double ratio_estimate = 0.5;  // model's expected compressed/original
  uint64_t profile_ns = 0;
};

struct AdaptCodecStats {
  std::string codec;
  uint64_t chosen = 0;    // AUTO decisions routed to this codec
  uint64_t feedback = 0;  // completion samples absorbed
  double throughput_bytes_per_us[kNumEntropyClasses] = {0, 0, 0};
  double ratio[kNumEntropyClasses] = {0, 0, 0};
};

struct AdaptStats {
  uint64_t decisions = 0;        // Decide() calls
  uint64_t profiled = 0;         // decisions that ran the profile probe
  uint64_t profile_skipped = 0;  // disabled engine or sub-threshold payload
  uint64_t bypassed = 0;         // kStore decisions
  uint64_t bypass_bytes = 0;     // payload bytes answered via STORE
  uint64_t feedback = 0;         // OnCompletion samples absorbed
  uint64_t profile_ns_total = 0;
  std::vector<AdaptCodecStats> codecs;
};

class AdaptivePolicyEngine {
 public:
  explicit AdaptivePolicyEngine(const AdaptOptions& options);

  AdaptivePolicyEngine(const AdaptivePolicyEngine&) = delete;
  AdaptivePolicyEngine& operator=(const AdaptivePolicyEngine&) = delete;

  // Profiles `payload` and decides STORE vs codec+level. Thread-safe.
  AdaptDecision Decide(ByteSpan payload, uint32_t tenant = 0);

  // Completion telemetry: a compress job finished on `codec` turning
  // input_bytes into output_bytes over wall_ns. entropy_class is the class
  // the decision recorded (kEntropyClassNone for fixed-codec traffic, which
  // still feeds the throughput EWMAs of every class). Thread-safe; unknown
  // codec names are ignored.
  void OnCompletion(std::string_view codec, uint8_t entropy_class, uint64_t input_bytes,
                    uint64_t output_bytes, uint64_t wall_ns);

  AdaptStats Snapshot() const;
  const AdaptOptions& options() const { return options_; }

 private:
  struct Candidate {
    std::string name;
    double tput[kNumEntropyClasses] = {0, 0, 0};   // EWMA bytes/us
    double ratio[kNumEntropyClasses] = {0, 0, 0};  // EWMA compressed/original
    uint64_t chosen = 0;
    uint64_t feedback = 0;
  };

  AdaptBias BiasFor(uint32_t tenant) const;
  AdaptDecision DefaultDecision() const;
  size_t PickCandidateLocked(uint8_t entropy_class, AdaptBias bias) const;

  AdaptOptions options_;
  size_t default_index_ = 0;  // candidates_ slot backing default_codec

  mutable std::mutex mu_;
  std::vector<Candidate> candidates_;
  uint64_t decisions_ = 0;
  uint64_t profiled_ = 0;
  uint64_t profile_skipped_ = 0;
  uint64_t bypassed_ = 0;
  uint64_t bypass_bytes_ = 0;
  uint64_t feedback_ = 0;
  uint64_t profile_ns_total_ = 0;
};

}  // namespace adapt
}  // namespace cdpu

#endif  // SRC_ADAPT_POLICY_H_
