#include "src/adapt/stats_export.h"

namespace cdpu {
namespace adapt {

void ExportAdaptStats(const AdaptStats& stats, const std::string& prefix,
                      obs::MetricSet* metrics) {
  metrics->Count(prefix + "decisions", stats.decisions);
  metrics->Count(prefix + "profiled", stats.profiled);
  metrics->Count(prefix + "profile_skipped", stats.profile_skipped);
  metrics->Count(prefix + "bypassed", stats.bypassed);
  metrics->Count(prefix + "bypass_bytes", stats.bypass_bytes);
  metrics->Count(prefix + "feedback", stats.feedback);
  metrics->Count(prefix + "profile_ns_total", stats.profile_ns_total);
  for (const AdaptCodecStats& c : stats.codecs) {
    const std::string cp = prefix + "codec." + c.codec + ".";
    metrics->Count(cp + "chosen", c.chosen);
    metrics->Count(cp + "feedback", c.feedback);
    for (uint8_t k = 0; k < kNumEntropyClasses; ++k) {
      const std::string kp = cp + EntropyClassName(k) + ".";
      metrics->Gauge(kp + "throughput_bytes_per_us", c.throughput_bytes_per_us[k]);
      metrics->Gauge(kp + "ratio", c.ratio[k]);
    }
  }
}

}  // namespace adapt
}  // namespace cdpu
