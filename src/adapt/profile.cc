#include "src/adapt/profile.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/codecs/entropy.h"

namespace cdpu {
namespace adapt {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Probe stride 2: half the gram positions are sampled, which keeps the probe
// well under the entropy pass's cost while still seeing every match of
// length >= 5.
constexpr size_t kProbeStride = 2;
constexpr uint32_t kTableBits = 10;
constexpr uint32_t kEmptySlot = ~uint32_t{0};

}  // namespace

PayloadProfile ProfilePayload(ByteSpan payload, size_t probe_bytes) {
  PayloadProfile profile;
  const uint64_t t0 = NowNs();
  probe_bytes = std::clamp(probe_bytes, kMinProbeBytes, kMaxProbeBytes);
  const size_t n = std::min(payload.size(), probe_bytes);
  profile.sampled_bytes = n;
  if (n == 0) {
    profile.profile_ns = NowNs() - t0;
    return profile;
  }

  profile.entropy_bits = ShannonEntropy(payload.subspan(0, n));

  if (n >= 8) {
    // Fibonacci-hash each sampled 4-byte gram into a small position table; a
    // hit whose stored gram compares equal is (a prefix of) an LZ match.
    uint32_t table[1u << kTableBits];
    std::memset(table, 0xFF, sizeof(table));
    const uint8_t* base = payload.data();
    uint64_t probes = 0;
    uint64_t hits = 0;
    for (size_t i = 0; i + 4 <= n; i += kProbeStride) {
      const uint32_t gram = Load32(base + i);
      const uint32_t slot = (gram * 2654435761u) >> (32 - kTableBits);
      const uint32_t prev = table[slot];
      if (prev != kEmptySlot && Load32(base + prev) == gram) {
        ++hits;
      }
      table[slot] = static_cast<uint32_t>(i);
      ++probes;
    }
    if (probes > 0) {
      profile.match_rate = static_cast<double>(hits) / static_cast<double>(probes);
    }
  }
  profile.profile_ns = NowNs() - t0;
  return profile;
}

}  // namespace adapt
}  // namespace cdpu
