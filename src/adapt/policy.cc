#include "src/adapt/policy.h"

#include <algorithm>
#include <cmath>

#include "src/codecs/codec.h"

namespace cdpu {
namespace adapt {
namespace {

// Entropy-class boundaries (bits/byte). Text/db data profiles well under
// 3 bits; mixed binary sits in the middle band; near-random payloads that
// still fail the bypass gate land in the high band.
constexpr double kLowClassCeiling = 3.0;
constexpr double kHighClassFloor = 6.5;

// Analytic priors for the repo's software codecs, per entropy class:
// throughput in bytes/us and expected compressed/original ratio. These only
// have to rank codecs sensibly on a cold model — completion telemetry
// overwrites them via the EWMAs within a few dozen requests. Byte-shuffling
// codecs (lz4/snappy) are fast and match-hungry; the zstd levels trade
// throughput for entropy coding; deflate/gzip are the slow full-pipeline
// baselines.
struct CodecPrior {
  const char* prefix;  // matched against the factory name's stem
  double tput[kNumEntropyClasses];
  double ratio[kNumEntropyClasses];
};

constexpr CodecPrior kPriors[] = {
    {"lz4", {150.0, 120.0, 90.0}, {0.45, 0.70, 1.00}},
    {"snappy", {130.0, 105.0, 80.0}, {0.50, 0.72, 1.00}},
    {"zstd-1", {60.0, 50.0, 40.0}, {0.35, 0.60, 0.98}},
    {"zstd-2", {50.0, 42.0, 34.0}, {0.33, 0.58, 0.98}},
    {"zstd-3", {40.0, 34.0, 28.0}, {0.31, 0.56, 0.98}},
    {"zstd", {60.0, 50.0, 40.0}, {0.35, 0.60, 0.98}},
    {"dpzip", {45.0, 40.0, 35.0}, {0.34, 0.58, 0.98}},
    {"deflate", {18.0, 15.0, 12.0}, {0.33, 0.58, 0.99}},
    {"gzip", {18.0, 15.0, 12.0}, {0.33, 0.58, 0.99}},
};

// Generic fallback for names with no tabled prior.
constexpr CodecPrior kDefaultPrior = {"", {30.0, 25.0, 20.0}, {0.40, 0.65, 1.00}};

const CodecPrior& PriorFor(const std::string& name) {
  // Longest-prefix match so "zstd-3" beats "zstd".
  const CodecPrior* best = &kDefaultPrior;
  size_t best_len = 0;
  for (const CodecPrior& p : kPriors) {
    const size_t len = std::char_traits<char>::length(p.prefix);
    if (len > best_len && name.compare(0, len, p.prefix) == 0) {
      best = &p;
      best_len = len;
    }
  }
  return *best;
}

// Utility weights: score = w_tput * ln(bytes/us) + w_ratio * ln(1/ratio).
// In log space a 2x throughput gain and a 2x ratio gain are worth the same
// under kBalanced; the biased modes discount one axis to a quarter.
void BiasWeights(AdaptBias bias, double* w_tput, double* w_ratio) {
  switch (bias) {
    case AdaptBias::kThroughput:
      *w_tput = 1.0;
      *w_ratio = 0.25;
      return;
    case AdaptBias::kRatio:
      *w_tput = 0.25;
      *w_ratio = 1.0;
      return;
    case AdaptBias::kBalanced:
      break;
  }
  *w_tput = 1.0;
  *w_ratio = 1.0;
}

}  // namespace

uint8_t EntropyClassOf(double entropy_bits) {
  if (entropy_bits < kLowClassCeiling) {
    return 0;
  }
  return entropy_bits < kHighClassFloor ? 1 : 2;
}

const char* EntropyClassName(uint8_t entropy_class) {
  switch (entropy_class) {
    case 0:
      return "low";
    case 1:
      return "mid";
    case 2:
      return "high";
    default:
      return "none";
  }
}

const char* AdaptBiasName(AdaptBias bias) {
  switch (bias) {
    case AdaptBias::kThroughput:
      return "throughput";
    case AdaptBias::kRatio:
      return "ratio";
    case AdaptBias::kBalanced:
      break;
  }
  return "balanced";
}

bool ParseAdaptBias(const std::string& name, AdaptBias* bias) {
  if (name == "throughput") {
    *bias = AdaptBias::kThroughput;
    return true;
  }
  if (name == "balanced") {
    *bias = AdaptBias::kBalanced;
    return true;
  }
  if (name == "ratio") {
    *bias = AdaptBias::kRatio;
    return true;
  }
  return false;
}

AdaptivePolicyEngine::AdaptivePolicyEngine(const AdaptOptions& options) : options_(options) {
  options_.probe_bytes = std::clamp(options_.probe_bytes, kMinProbeBytes, kMaxProbeBytes);
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 0.01, 1.0);
  if (MakeCodec(options_.default_codec) == nullptr) {
    options_.default_codec = "zstd-1";
  }
  std::vector<std::string> pool = options_.candidates;
  pool.push_back(options_.default_codec);  // the default always has a model row
  for (const std::string& name : pool) {
    if (MakeCodec(name) == nullptr) {
      continue;
    }
    bool seen = false;
    for (const Candidate& c : candidates_) {
      seen = seen || c.name == name;
    }
    if (seen) {
      continue;
    }
    Candidate c;
    c.name = name;
    const CodecPrior& prior = PriorFor(name);
    for (uint8_t k = 0; k < kNumEntropyClasses; ++k) {
      c.tput[k] = prior.tput[k];
      c.ratio[k] = prior.ratio[k];
    }
    candidates_.push_back(std::move(c));
  }
  options_.candidates.clear();
  for (size_t i = 0; i < candidates_.size(); ++i) {
    options_.candidates.push_back(candidates_[i].name);
    if (candidates_[i].name == options_.default_codec) {
      default_index_ = i;
    }
  }
}

AdaptBias AdaptivePolicyEngine::BiasFor(uint32_t tenant) const {
  for (const TenantBiasHint& hint : options_.tenant_bias) {
    if (hint.tenant == tenant) {
      return hint.bias;
    }
  }
  return options_.bias;
}

AdaptDecision AdaptivePolicyEngine::DefaultDecision() const {
  AdaptDecision d;
  d.action = AdaptAction::kCompress;
  d.codec = options_.default_codec;
  d.profile_skipped = true;
  d.ratio_estimate = candidates_[default_index_].ratio[1];
  return d;
}

size_t AdaptivePolicyEngine::PickCandidateLocked(uint8_t entropy_class,
                                                 AdaptBias bias) const {
  double w_tput = 1.0;
  double w_ratio = 1.0;
  BiasWeights(bias, &w_tput, &w_ratio);
  size_t best = default_index_;
  double best_score = -1e300;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const Candidate& c = candidates_[i];
    const double tput = std::max(c.tput[entropy_class], 1e-6);
    const double ratio = std::clamp(c.ratio[entropy_class], 1e-3, 4.0);
    const double score = w_tput * std::log(tput) - w_ratio * std::log(ratio);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

AdaptDecision AdaptivePolicyEngine::Decide(ByteSpan payload, uint32_t tenant) {
  if (!options_.enabled || payload.size() < options_.min_profile_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ++decisions_;
    ++profile_skipped_;
    return DefaultDecision();
  }

  // Profile outside the lock: the probe is the expensive part and touches
  // only the caller's payload.
  const PayloadProfile profile = ProfilePayload(payload, options_.probe_bytes);

  AdaptDecision d;
  d.entropy_bits = profile.entropy_bits;
  d.match_rate = profile.match_rate;
  d.entropy_class = EntropyClassOf(profile.entropy_bits);
  d.profile_ns = profile.profile_ns;

  std::lock_guard<std::mutex> lock(mu_);
  ++decisions_;
  ++profiled_;
  profile_ns_total_ += profile.profile_ns;

  if (profile.entropy_bits >= options_.bypass_entropy_bits &&
      profile.match_rate <= options_.bypass_match_rate) {
    d.action = AdaptAction::kStore;
    d.ratio_estimate = 1.0;
    ++bypassed_;
    bypass_bytes_ += payload.size();
    return d;
  }

  const size_t pick = options_.mode == AdaptMode::kBypassOnly
                          ? default_index_
                          : PickCandidateLocked(d.entropy_class, BiasFor(tenant));
  Candidate& c = candidates_[pick];
  ++c.chosen;
  d.action = AdaptAction::kCompress;
  d.codec = c.name;
  d.ratio_estimate = std::clamp(c.ratio[d.entropy_class], 0.05, 1.5);
  return d;
}

void AdaptivePolicyEngine::OnCompletion(std::string_view codec, uint8_t entropy_class,
                                        uint64_t input_bytes, uint64_t output_bytes,
                                        uint64_t wall_ns) {
  if (input_bytes == 0 || output_bytes == 0 || wall_ns == 0) {
    return;
  }
  const double bytes_per_us =
      static_cast<double>(input_bytes) / (static_cast<double>(wall_ns) / 1e3);
  const double ratio = static_cast<double>(output_bytes) / static_cast<double>(input_bytes);

  std::lock_guard<std::mutex> lock(mu_);
  const double a = options_.ewma_alpha;
  for (Candidate& c : candidates_) {
    if (c.name != codec) {
      continue;
    }
    ++feedback_;
    ++c.feedback;
    if (entropy_class < kNumEntropyClasses) {
      c.tput[entropy_class] = (1 - a) * c.tput[entropy_class] + a * bytes_per_us;
      c.ratio[entropy_class] = (1 - a) * c.ratio[entropy_class] + a * ratio;
    } else {
      // Fixed-codec traffic carries no profile class: it still tells us how
      // fast this codec runs here, so nudge every class's throughput, but
      // leave the per-class ratios alone (mixing classes would corrupt them).
      for (uint8_t k = 0; k < kNumEntropyClasses; ++k) {
        c.tput[k] = (1 - a) * c.tput[k] + a * bytes_per_us;
      }
    }
    return;
  }
}

AdaptStats AdaptivePolicyEngine::Snapshot() const {
  AdaptStats s;
  std::lock_guard<std::mutex> lock(mu_);
  s.decisions = decisions_;
  s.profiled = profiled_;
  s.profile_skipped = profile_skipped_;
  s.bypassed = bypassed_;
  s.bypass_bytes = bypass_bytes_;
  s.feedback = feedback_;
  s.profile_ns_total = profile_ns_total_;
  s.codecs.reserve(candidates_.size());
  for (const Candidate& c : candidates_) {
    AdaptCodecStats cs;
    cs.codec = c.name;
    cs.chosen = c.chosen;
    cs.feedback = c.feedback;
    for (uint8_t k = 0; k < kNumEntropyClasses; ++k) {
      cs.throughput_bytes_per_us[k] = c.tput[k];
      cs.ratio[k] = c.ratio[k];
    }
    s.codecs.push_back(std::move(cs));
  }
  return s;
}

}  // namespace adapt
}  // namespace cdpu
