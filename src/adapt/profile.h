// Cheap online compressibility profiling (ISSUE 9). The paper's profiling
// insight is that the payoff of a compression offload depends on the data
// actually flowing through it; this probe estimates that payoff from a
// bounded prefix so the policy engine can decide *whether* and *how* to
// compress before any codec runs.
//
// Two signals, both O(probe_bytes) with small constants:
//   - sampled Shannon entropy (bits/byte) over the prefix: how hard the
//     entropy-coding stage will work. Uniform random data sits at ~8.0.
//   - LZ match rate: the fraction of probed 4-byte grams that hash-hit an
//     earlier identical gram in the prefix — a proxy for how much the match
//     stage can remove. Random data scores ~0; text scores high.
//
// The probe window is clamped to [kMinProbeBytes, kMaxProbeBytes] (the
// paper-motivated 4-16 KiB band) so profiling cost stays a small, bounded
// slice of request wall time regardless of payload size.

#ifndef SRC_ADAPT_PROFILE_H_
#define SRC_ADAPT_PROFILE_H_

#include <cstddef>
#include <cstdint>

#include "src/common/iobuf.h"

namespace cdpu {
namespace adapt {

inline constexpr size_t kMinProbeBytes = 4 * 1024;
inline constexpr size_t kMaxProbeBytes = 16 * 1024;

struct PayloadProfile {
  double entropy_bits = 0.0;  // sampled Shannon entropy, [0, 8]
  double match_rate = 0.0;    // 4-byte-gram hash-probe hit rate, [0, 1]
  size_t sampled_bytes = 0;   // prefix actually probed
  uint64_t profile_ns = 0;    // wall time spent profiling
};

// Profiles the first min(payload.size(), clamp(probe_bytes)) bytes.
// Empty payloads return an all-zero profile.
PayloadProfile ProfilePayload(ByteSpan payload, size_t probe_bytes);

}  // namespace adapt
}  // namespace cdpu

#endif  // SRC_ADAPT_PROFILE_H_
