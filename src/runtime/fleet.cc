#include "src/runtime/fleet.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace cdpu {

RuntimeStats MergeRuntimeStats(const std::vector<RuntimeStats>& parts) {
  RuntimeStats m;
  m.device_healthy = true;
  bool first_arrival_set = false;
  for (const RuntimeStats& s : parts) {
    m.jobs_submitted += s.jobs_submitted;
    m.jobs_completed += s.jobs_completed;
    m.jobs_canceled += s.jobs_canceled;
    m.jobs_failed += s.jobs_failed;
    m.bytes_in += s.bytes_in;
    m.bytes_out += s.bytes_out;
    m.doorbells += s.doorbells;
    m.max_inflight += s.max_inflight;  // members run concurrently: sum of HWMs
    m.ceiling_delays += s.ceiling_delays;
    m.faults_injected += s.faults_injected;
    for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
      m.faults_by_kind[k] += s.faults_by_kind[k];
    }
    m.retries += s.retries;
    m.fallbacks += s.fallbacks;
    m.unhealthy_transitions += s.unhealthy_transitions;
    m.reprobes += s.reprobes;
    m.device_healthy = m.device_healthy && s.device_healthy;
    m.wall_latency_us.Merge(s.wall_latency_us);
    m.device_latency_us.Merge(s.device_latency_us);
    m.engine_service_us.Merge(s.engine_service_us);
    m.wall_hist.Merge(s.wall_hist);
    m.device_hist.Merge(s.device_hist);
    m.queue_wait_hist.Merge(s.queue_wait_hist);
    if (s.jobs_submitted > 0) {
      if (!first_arrival_set || s.sim_first_arrival < m.sim_first_arrival) {
        m.sim_first_arrival = s.sim_first_arrival;
        first_arrival_set = true;
      }
    }
    m.sim_makespan = std::max(m.sim_makespan, s.sim_makespan);
  }
  return m;
}

// Completion feedback runs on the member's reaper thread: service-rate
// sample (bytes per wall-us) + the member's current health flag. A dead
// device's jobs complete via retries + CPU fallback with inflated wall
// latency, so its EWMA collapses and ewma-service-rate sheds its load.
// Installed once per member as the runtime's completion observer — the
// per-request path no longer wraps callbacks in a fresh std::function.
struct FleetRuntime::MemberFeedback {
  PlacementRouter* router = nullptr;
  OffloadRuntime* member = nullptr;  // set right after the member is built
  size_t slot = 0;
  // A caller-supplied observer from FleetOptions::base, chained after ours.
  void (*chained)(const OffloadResult&, void*) = nullptr;
  void* chained_ctx = nullptr;

  static void Observe(const OffloadResult& r, void* ctx) {
    auto* fb = static_cast<MemberFeedback*>(ctx);
    fb->router->OnComplete(fb->slot, r.input_bytes, r.wall_latency_ns,
                           fb->member->healthy());
    if (fb->chained != nullptr) {
      fb->chained(r, fb->chained_ctx);
    }
  }
};

FleetRuntime::FleetRuntime(const FleetOptions& options)
    : options_(options), router_(options.placement, options.devices) {
  assert(!options_.devices.empty() && options_.devices.size() <= kMaxFleetDevices);
  runtimes_.reserve(options_.devices.size());
  feedback_.reserve(options_.devices.size());
  for (size_t i = 0; i < options_.devices.size(); ++i) {
    const FleetDeviceSpec& spec = options_.devices[i];
    RuntimeOptions opt = options_.base;
    opt.device = spec.config;
    opt.fault_plan = spec.fault_plan;
    opt.engine_threads = spec.engine_threads;
    auto fb = std::make_unique<MemberFeedback>();
    fb->router = &router_;
    fb->slot = i;
    fb->chained = options_.base.completion_observer;
    fb->chained_ctx = options_.base.completion_observer_ctx;
    opt.completion_observer = &MemberFeedback::Observe;
    opt.completion_observer_ctx = fb.get();
    runtimes_.push_back(std::make_unique<OffloadRuntime>(opt));
    fb->member = runtimes_.back().get();  // no job can complete before this
    feedback_.push_back(std::move(fb));
  }
}

FleetRuntime::~FleetRuntime() { Shutdown(OffloadRuntime::ShutdownMode::kDrain); }

size_t FleetRuntime::RouteRequest(OffloadRequest& request) {
  size_t slot;
  if (request.device_slot != 0 && request.device_slot <= runtimes_.size()) {
    // Caller pinned a member (probe/test traffic); keep router accounting
    // symmetric with the routed path.
    slot = request.device_slot - 1;
    router_.NotePinned(slot);
  } else {
    uint64_t payload = !request.input.empty()    ? request.input.size()
                       : !request.input_buf.empty() ? request.input_buf.size()
                                                    : request.model_bytes;
    slot = router_.Route(payload);
  }
  request.device_slot = static_cast<uint8_t>(slot + 1);
  return slot;
}

std::future<OffloadResult> FleetRuntime::Submit(OffloadRequest request) {
  size_t slot = RouteRequest(request);
  return runtimes_[slot]->Submit(std::move(request));
}

void FleetRuntime::SubmitCallback(OffloadRequest request) {
  size_t slot = RouteRequest(request);
  runtimes_[slot]->SubmitCallback(std::move(request));
}

void FleetRuntime::Flush(uint32_t queue_pair) {
  for (auto& rt : runtimes_) {
    rt->Flush(queue_pair);
  }
}

void FleetRuntime::Drain() {
  for (auto& rt : runtimes_) {
    rt->Drain();
  }
}

void FleetRuntime::Shutdown(OffloadRuntime::ShutdownMode mode) {
  for (auto& rt : runtimes_) {
    rt->Shutdown(mode);
  }
}

FleetStats FleetRuntime::Snapshot() const {
  FleetStats fs;
  std::vector<PlacementDeviceView> views = router_.SnapshotViews();
  std::vector<RuntimeStats> parts;
  parts.reserve(runtimes_.size());
  for (size_t i = 0; i < runtimes_.size(); ++i) {
    FleetDeviceStats d;
    d.name = options_.devices[i].name;
    d.runtime = runtimes_[i]->Snapshot();
    d.router = views[i];
    parts.push_back(d.runtime);
    fs.devices.push_back(std::move(d));
  }
  fs.merged = MergeRuntimeStats(parts);
  return fs;
}

std::vector<std::string> FleetRuntime::DeviceNames() const {
  std::vector<std::string> names;
  names.reserve(options_.devices.size());
  for (const FleetDeviceSpec& spec : options_.devices) {
    names.push_back(spec.name);
  }
  return names;
}

bool FleetRuntime::SlotByName(const std::string& name, size_t* slot) const {
  for (size_t i = 0; i < options_.devices.size(); ++i) {
    if (options_.devices[i].name == name) {
      *slot = i;
      return true;
    }
  }
  return false;
}

uint64_t FleetRuntime::total_slots() const {
  uint64_t total = 0;
  for (const auto& rt : runtimes_) {
    const RuntimeOptions& opt = rt->options();
    uint64_t slots = opt.max_inflight > 0 ? opt.max_inflight : opt.device.queue_limit;
    if (slots == 0) {
      return std::numeric_limits<uint64_t>::max();  // an unbounded member
    }
    total += slots;
  }
  return total;
}

}  // namespace cdpu
