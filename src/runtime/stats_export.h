// Bridges the offload runtime's RuntimeStats into the obs metric model so
// runtime counters, latency distributions and fault/recovery tallies appear
// in experiment output (and therefore in BENCH_*.json) alongside the
// experiment's own tables.

#ifndef SRC_RUNTIME_STATS_EXPORT_H_
#define SRC_RUNTIME_STATS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/runtime/fleet.h"
#include "src/runtime/offload_runtime.h"

namespace cdpu {

// Exports every RuntimeStats field under `prefix` (e.g. "runtime.fair.").
// Counters go to counters, the latency RunningStats become summarised
// series, and derived rates (sim_gbps) become gauges. Fault/recovery
// counters are only exported when non-zero or when a fault plan ran, so
// fault-free experiments stay uncluttered.
void ExportRuntimeStats(const RuntimeStats& stats, const std::string& prefix,
                        obs::MetricSet* metrics);

// Fleet view: the merged totals under `prefix` plus, when the fleet has
// more than one member, per-device runtime stats under
// `prefix + "device.<name>."` and router-side placement gauges (routed
// share, outstanding, health, EWMA service rate).
void ExportFleetStats(const FleetStats& stats, const std::string& prefix,
                      obs::MetricSet* metrics);

// Buffer-pool view (ISSUE 8): headline hit/miss/oversize counters, slab
// inventory gauges and per-size-class occupancy under
// `prefix + "class.<bytes>."`. Skipped entirely when the pool was never
// touched, so pool-free runs stay uncluttered.
void ExportPoolStats(const PoolStats& stats, const std::string& prefix,
                     obs::MetricSet* metrics);

// Process-wide data-path counters (buffer allocations + staging copies).
void ExportMemPathCounters(const MemPathCounters& counters, const std::string& prefix,
                           obs::MetricSet* metrics);

}  // namespace cdpu

#endif  // SRC_RUNTIME_STATS_EXPORT_H_
