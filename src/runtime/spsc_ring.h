// Bounded single-producer/single-consumer ring buffer — the descriptor ring
// of one queue pair. Lock-free for the SPSC discipline the runtime enforces
// (the producer side of a queue pair is serialised by a small mutex so many
// client threads may share one pair; the consumer is always exactly one
// runtime thread). Capacity is rounded up to a power of two so index
// wrapping is a mask.

#ifndef SRC_RUNTIME_SPSC_RING_H_
#define SRC_RUNTIME_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdpu {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return slots_.size(); }

  // Producer side. Returns false when the ring is full.
  bool TryPush(T value) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy; exact when called from producer or consumer.
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
};

}  // namespace cdpu

#endif  // SRC_RUNTIME_SPSC_RING_H_
