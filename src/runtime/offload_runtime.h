// Parallel offload runtime: the host-side submission stack the paper's
// microbenchmarks exercise (QATzip-style), rebuilt so N real threads contend
// for one modelled CDPU instead of being replayed through a serial event
// loop.
//
//   client threads ──► queue pairs (SPSC descriptor rings + doorbells)
//                        │   batched admission, doorbell coalescing window
//                        ▼
//                   dispatcher ──► in-flight ceiling (queue_limit slots)
//                        ▼
//                   engine pool ──► SharedCdpuQueue simulated timeline
//                        │          + fault injection / retry / CPU fallback
//                        │          + real codec work (optional)
//                        ▼
//                     reaper ──► futures/callbacks + latency stats
//
// Two time domains coexist (src/sim/host_clock.h): wall-clock measures what
// the host actually did; the SharedCdpuQueue timeline says what the modelled
// hardware would have done with the same arrival pattern. Closed-loop
// simulation clients chain explicit arrivals (previous simulated completion);
// everyone else lets the runtime stamp arrivals from its HostClock.
//
// Fault handling (ISSUE 2): a seeded FaultPlan injects verify-CRC
// mismatches, descriptor completion timeouts, transient engine stalls and
// queue-pair resets. Recovery policy, per job:
//   1. retry the device with capped exponential backoff (max_retries times);
//      completion timeouts are detected against a HostClock deadline;
//   2. if retries are exhausted, complete the job on the in-process CPU
//      fallback codec (graceful degradation — the job still succeeds);
//   3. after unhealthy_threshold consecutive exhausted jobs the device is
//      marked unhealthy and bypassed entirely; it is re-probed with one job
//      every reprobe_backoff_ns until a probe succeeds.
// Faults on the simulated timeline (stalls, resets) are injected inside
// SharedCdpuQueue; retries resubmit to the timeline, so retry traffic also
// consumes simulated descriptor slots.

#ifndef SRC_RUNTIME_OFFLOAD_RUNTIME_H_
#define SRC_RUNTIME_OFFLOAD_RUNTIME_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/codecs/codec.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/hw/shared_queue.h"
#include "src/obs/hist.h"
#include "src/runtime/spsc_ring.h"
#include "src/sim/host_clock.h"
#include "src/trace/trace.h"

namespace cdpu {

namespace adapt {
class AdaptivePolicyEngine;
}  // namespace adapt

struct OffloadResult;

struct RuntimeOptions {
  CdpuConfig device;         // timing model; device.queue_limit is the ceiling
  std::string codec;         // codec for real byte work; empty = model-only
  uint32_t queue_pairs = 4;  // submission/completion ring pairs
  uint32_t ring_depth = 256;
  uint32_t batch_size = 8;                  // descriptors per doorbell
  uint64_t doorbell_window_ns = 50 * 1000;  // coalescing window (wall-clock)
  uint32_t engine_threads = 0;              // 0 = device.engines
  uint32_t max_inflight = 0;                // 0 = device.queue_limit (0 = unbounded)
  // Fair dispatch drains at most one batch per queue pair per sweep
  // (DP-CSD-style per-VF arbitration); unfair dispatch drains each pair
  // completely before moving on, letting early pairs capture the device
  // (the QAT behaviour Finding 15 measures).
  bool fair_dispatch = true;

  // Fault injection + recovery policy. The default plan injects nothing, and
  // with an all-zero plan every fault/retry/fallback counter stays exactly 0.
  FaultPlan fault_plan;
  uint32_t max_retries = 2;                     // device resubmissions per job
  uint64_t retry_backoff_ns = 50 * 1000;        // backoff base, doubled per retry
  uint64_t retry_backoff_cap_ns = 1000 * 1000;  // backoff ceiling
  uint64_t completion_timeout_ns = 200 * 1000;  // descriptor-dead deadline (wall)
  uint32_t unhealthy_threshold = 3;             // consecutive exhausted jobs
  uint64_t reprobe_backoff_ns = 5 * 1000 * 1000;  // degraded period before re-probe
  std::string fallback_codec;                     // CPU fallback; empty = same as `codec`

  // Optional per-request tracing (ISSUE 6). Not owned; must outlive the
  // runtime. When null every instrumentation site reduces to one branch on
  // a zero trace id — the fast path stays untouched. When set, sampled jobs
  // leave a contiguous span chain (queue_submit -> queue_engine -> device ->
  // codec -> complete) plus nested codec sub-phases, and the sink's
  // sample_rate decides which jobs are traced.
  trace::TraceSink* trace_sink = nullptr;

  // Pooled output buffers (ISSUE 8). When set, engine threads deliver codec
  // output in OffloadResult::output_buf (a refcounted pool segment) via the
  // pooled codec sink; when null the legacy ByteVec output is grown per job.
  // Not owned; must outlive the runtime.
  BufferPool* output_pool = nullptr;

  // Runtime-wide completion hook, invoked on the reaper thread for every
  // completed job before the job's own callbacks. Installed once at
  // construction (FleetRuntime's router feedback lives here) so the hot path
  // does not wrap each request callback in a fresh std::function. Not owned.
  void (*completion_observer)(const OffloadResult&, void*) = nullptr;
  void* completion_observer_ctx = nullptr;

  // Adaptive policy engine (ISSUE 9). Not owned; must outlive the runtime.
  // When set, a request naming the pseudo-codec "auto" is resolved in
  // PrepareJob — the engine profiles the payload and rewrites the request to
  // the codec it picks ("store" for incompressible payloads) — and every
  // successful compress completion feeds the engine's cost model from the
  // reaper thread. When null, "auto" falls back to RuntimeOptions::codec.
  adapt::AdaptivePolicyEngine* adapt_engine = nullptr;
};

struct OffloadResult {
  Status status;
  ByteVec output;            // real-codec mode, legacy (no output_pool) path
  IoBuf output_buf;          // real-codec mode with RuntimeOptions::output_pool
  // The produced bytes wherever they live. Callbacks that need to keep them
  // past the callback copy `output_buf` (a refcount bump) when non-empty.
  ByteSpan output_view() const {
    return output_buf.empty() ? ByteSpan(output.data(), output.size()) : output_buf.span();
  }
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  // Codec that served the job: the request's override after AUTO resolution
  // ("store" for bypassed payloads), or empty when the runtime default ran.
  // An AUTO caller decompresses with exactly this name.
  std::string codec_used;
  double ratio = 0.0;        // achieved compressed/original (compress jobs)
  SimNanos sim_arrival = 0;
  SimNanos sim_completion = 0;
  SimNanos device_latency_ns = 0;  // simulated submit-to-completion
  uint64_t wall_latency_ns = 0;    // measured submit-to-reap
  bool ceiling_delayed = false;
  uint32_t attempts = 0;     // device submissions (0 = device bypassed)
  bool fell_back = false;    // completed on the CPU fallback path
  // Fleet placement echo: the 1-based device slot that served the job
  // (copied from OffloadRequest::device_slot). 0 = single-runtime caller.
  uint8_t device_slot = 0;
};

using OffloadCallback = std::function<void(const OffloadResult&)>;

// OffloadRequest::trace_id sentinel: an upstream sampler already decided NOT
// to trace this request, so Submit() must not draw a fresh id for it.
inline constexpr uint64_t kTraceNone = ~uint64_t{0};

struct OffloadRequest {
  CdpuOp op = CdpuOp::kCompress;
  // Per-job codec override ("" = RuntimeOptions::codec). Lets one runtime
  // serve heterogeneous traffic — the network service dispatches whatever
  // codec each request names on the wire. Engine threads cache codec
  // instances by name, so mixing codecs costs one construction per
  // (engine, codec) pair.
  std::string codec;
  ByteSpan input{};          // real payload; may be empty in model-only jobs
  // Owning payload handle (ISSUE 8). When set, the runtime reads the input
  // from it (`input` may stay empty) and holds the refcount until the job's
  // completion hooks have run — the fault path can retry and fall back to
  // the CPU codec without the caller keeping the bytes alive.
  IoBuf input_buf;
  uint64_t model_bytes = 0;  // payload size for the timing model when input is empty
  double ratio_hint = 0.5;   // expected compressed/original for the model
  SimNanos arrival = kAutoArrival;  // explicit sim arrival, or auto (wall clock)
  uint32_t queue_pair = 0;
  OffloadCallback callback;  // optional; runs on the reaper thread
  // Allocation-free completion hook: runs on the reaper thread before
  // `callback`. Hot paths prefer this — a raw function pointer plus a caller
  // pooled context beats materialising a std::function closure per request.
  void (*on_complete)(const OffloadResult&, void*) = nullptr;
  void* on_complete_ctx = nullptr;
  // Tracing (ignored when RuntimeOptions::trace_sink is null). trace_id 0
  // asks the runtime to draw one from the sink's sampler in Submit();
  // callers that already opened a trace upstream (the network service spans
  // wire decode + admission) pass their id through so the whole request
  // shares one chain. `tenant` tags the breakdown's per-tenant grouping.
  uint64_t trace_id = 0;
  uint32_t tenant = 0;
  // Set by FleetRuntime (1-based fleet slot) before handing the request to a
  // member runtime: echoed into OffloadResult and stamped on every trace
  // span so the breakdown splits per placement. 0 = untagged.
  uint8_t device_slot = 0;
  // Entropy class the adaptive policy recorded for this payload
  // (adapt::kEntropyClassNone when nothing profiled it). Routed back with
  // the completion so the engine updates the right per-class EWMA. Set by
  // PrepareJob's AUTO resolution, or by the service when it decided
  // upstream.
  uint8_t adapt_class = 0xFF;
};

struct RuntimeStats {
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;  // includes canceled + failed
  uint64_t jobs_canceled = 0;
  uint64_t jobs_failed = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t doorbells = 0;       // doorbell rings observed by the dispatcher
  uint64_t max_inflight = 0;    // high-water mark of concurrently admitted jobs
  uint64_t ceiling_delays = 0;  // simulated admissions delayed by a full ring
  // Fault/recovery path. All exactly 0 when the fault plan is disabled.
  uint64_t faults_injected = 0;                    // total across all kinds
  uint64_t faults_by_kind[kNumFaultKinds] = {0};   // indexed by FaultKind
  uint64_t retries = 0;                            // device resubmissions
  uint64_t fallbacks = 0;                          // jobs completed on the CPU path
  uint64_t unhealthy_transitions = 0;              // healthy -> degraded flips
  uint64_t reprobes = 0;                           // probe jobs sent while degraded
  bool device_healthy = true;
  RunningStats wall_latency_us;    // measured submit-to-completion
  RunningStats device_latency_us;  // simulated submit-to-completion
  RunningStats engine_service_us;  // per-engine-thread codec time, merged
  // Always-on log-linear histograms (ISSUE 10), recorded in nanoseconds on
  // the runtime's own threads: submit-to-completion wall latency, simulated
  // device service time, and submit-to-engine-pickup queue wait. Mergeable
  // across fleet members; percentiles come from HistogramSnapshot.
  obs::HistogramSnapshot wall_hist;
  obs::HistogramSnapshot device_hist;
  obs::HistogramSnapshot queue_wait_hist;
  SimNanos sim_first_arrival = 0;
  SimNanos sim_makespan = 0;  // latest simulated completion
  // Simulated device throughput over the span covered by admitted requests.
  double sim_gbps() const {
    if (sim_makespan <= sim_first_arrival) {
      return 0.0;
    }
    return static_cast<double>(bytes_in) /
           static_cast<double>(sim_makespan - sim_first_arrival);
  }
};

class OffloadRuntime {
 public:
  explicit OffloadRuntime(const RuntimeOptions& options);
  ~OffloadRuntime();

  OffloadRuntime(const OffloadRuntime&) = delete;
  OffloadRuntime& operator=(const OffloadRuntime&) = delete;

  // Enqueues one job on the request's queue pair. Blocks while the
  // submission ring is full (backpressure). The future is fulfilled on the
  // reaper thread; after Shutdown() it resolves immediately with
  // kUnavailable.
  std::future<OffloadResult> Submit(OffloadRequest request);

  // Callback-only submission: completion is delivered solely through
  // on_complete / callback, no promise shared state is allocated, and the
  // job descriptor comes from (and returns to) an internal freelist — the
  // steady-state path touches no allocator. Same backpressure/shutdown
  // behaviour as Submit().
  void SubmitCallback(OffloadRequest request);

  // Rings the doorbell for descriptors accumulated below batch_size.
  void Flush(uint32_t queue_pair);

  // Blocks until every job submitted so far has completed (runtime stays up).
  void Drain();

  enum class ShutdownMode {
    kDrain,  // flush + finish everything already submitted
    kAbort,  // finish admitted jobs; cancel jobs still waiting in rings
  };
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  RuntimeStats Snapshot() const;
  const RuntimeOptions& options() const { return options_; }
  const HostClock& clock() const { return clock_; }

  // Cheap health/occupancy probes for placement routing (ISSUE 7). healthy()
  // reflects the degradation state machine; outstanding() is
  // submitted-but-not-yet-completed jobs (rings + in-flight + completion).
  bool healthy() const {
    std::lock_guard<std::mutex> lock(health_mu_);
    return device_healthy_;
  }
  uint64_t outstanding() const {
    // Loads may race with concurrent completions; clamp so a transient
    // completed > submitted read never wraps.
    uint64_t submitted = jobs_submitted_.load(std::memory_order_acquire);
    uint64_t completed = jobs_completed_.load(std::memory_order_acquire);
    return submitted > completed ? submitted - completed : 0;
  }

 private:
  struct Job;
  struct QueuePair;

  void RingDoorbellLocked(QueuePair& qp);  // requires qp.producer_mu
  // Job descriptor pool: Submit threads acquire, the reaper recycles after
  // delivery. Recycled jobs keep their ByteVec/string capacity, so a warm
  // freelist makes submission allocation-free.
  Job* PrepareJob(OffloadRequest&& request);
  void EnqueueJob(Job* job);  // ring push w/ backpressure; fails jobs on shutdown
  void FinishJob(Job* job);   // observer + callbacks + promise, then recycle
  void RecycleJob(Job* job);
  void DispatcherLoop();
  void EngineLoop(uint32_t engine_index);
  void ReaperLoop();
  void DispatchJob(Job* job);
  void CancelJob(Job* job);
  void PostCompletion(Job* job);
  bool AcquireInflightSlot();
  void ReleaseInflightSlot();

  // Device-path attempt loop with retry/backoff; fills the job's simulated
  // timing and fault disposition (attempts, fell_back). Runs on an engine
  // thread.
  void RunDeviceAttempts(Job* job);
  // Health gate: true if this job may use the device (possibly as the
  // re-probe job while degraded).
  bool AcquireDevice(bool* probing);
  void NoteDeviceSuccess();
  void NoteDeviceFailure();

  RuntimeOptions options_;
  uint32_t max_inflight_ = 0;  // resolved ceiling; 0 = unbounded
  HostClock clock_;
  FaultInjector injector_;
  SharedCdpuQueue timing_;

  std::vector<std::unique_ptr<QueuePair>> qps_;

  // In-flight ceiling (admitted, completion not yet posted).
  mutable std::mutex slots_mu_;
  std::condition_variable slots_cv_;
  uint32_t inflight_ = 0;
  uint64_t max_inflight_seen_ = 0;

  // Dispatcher wake-up.
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;

  // Engine work queue (jobs admitted to the device).
  std::mutex engine_mu_;
  std::condition_variable engine_cv_;
  std::deque<Job*> engine_queue_;
  bool engines_stopping_ = false;

  // Device health (graceful-degradation state machine).
  mutable std::mutex health_mu_;
  bool device_healthy_ = true;         // guarded by health_mu_
  uint32_t consecutive_failures_ = 0;  // guarded by health_mu_
  SimNanos reprobe_at_ = 0;            // guarded by health_mu_

  // Job descriptor freelist (bounded; overflow is deleted).
  std::mutex job_pool_mu_;
  std::vector<Job*> job_pool_;

  // Reaper wake-up + drain tracking.
  std::mutex reap_mu_;
  std::condition_variable reap_cv_;
  std::condition_variable drain_cv_;
  bool reaper_stopping_ = false;

  // Aggregate stats (guarded by stats_mu_) + lock-free tallies.
  mutable std::mutex stats_mu_;
  RuntimeStats stats_;
  bool first_arrival_set_ = false;  // guarded by stats_mu_
  AtomicThroughput throughput_;
  // Always-on latency histograms: wait-free relaxed-atomic recording, so the
  // reaper/engine hot paths touch them outside stats_mu_.
  obs::LatencyHistogram wall_hist_;
  obs::LatencyHistogram device_hist_;
  obs::LatencyHistogram queue_wait_hist_;
  std::atomic<uint64_t> jobs_submitted_{0};
  std::atomic<uint64_t> jobs_completed_{0};
  std::atomic<uint64_t> doorbells_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> unhealthy_transitions_{0};
  std::atomic<uint64_t> reprobes_{0};

  enum class State { kRunning, kDraining, kAborting, kStopped };
  std::atomic<State> state_{State::kRunning};
  std::mutex shutdown_mu_;  // serialises Shutdown() callers

  std::thread dispatcher_;
  std::vector<std::thread> engines_;
  std::thread reaper_;
};

}  // namespace cdpu

#endif  // SRC_RUNTIME_OFFLOAD_RUNTIME_H_
