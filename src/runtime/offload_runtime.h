// Parallel offload runtime: the host-side submission stack the paper's
// microbenchmarks exercise (QATzip-style), rebuilt so N real threads contend
// for one modelled CDPU instead of being replayed through a serial event
// loop.
//
//   client threads ──► queue pairs (SPSC descriptor rings + doorbells)
//                        │   batched admission, doorbell coalescing window
//                        ▼
//                   dispatcher ──► in-flight ceiling (queue_limit slots)
//                        │         + SharedCdpuQueue simulated timeline
//                        ▼
//                   engine pool ──► real codec work (optional) ──► completion
//                        │                                          rings
//                        ▼
//                     reaper ──► futures/callbacks + latency stats
//
// Two time domains coexist (src/sim/host_clock.h): wall-clock measures what
// the host actually did; the SharedCdpuQueue timeline says what the modelled
// hardware would have done with the same arrival pattern. Closed-loop
// simulation clients chain explicit arrivals (previous simulated completion);
// everyone else lets the runtime stamp arrivals from its HostClock.

#ifndef SRC_RUNTIME_OFFLOAD_RUNTIME_H_
#define SRC_RUNTIME_OFFLOAD_RUNTIME_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/codecs/codec.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/hw/shared_queue.h"
#include "src/runtime/spsc_ring.h"
#include "src/sim/host_clock.h"

namespace cdpu {

struct RuntimeOptions {
  CdpuConfig device;         // timing model; device.queue_limit is the ceiling
  std::string codec;         // codec for real byte work; empty = model-only
  uint32_t queue_pairs = 4;  // submission/completion ring pairs
  uint32_t ring_depth = 256;
  uint32_t batch_size = 8;            // descriptors per doorbell
  uint64_t doorbell_window_ns = 50 * 1000;  // coalescing window (wall-clock)
  uint32_t engine_threads = 0;        // 0 = device.engines
  uint32_t max_inflight = 0;          // 0 = device.queue_limit (0 = unbounded)
  // Fair dispatch drains at most one batch per queue pair per sweep
  // (DP-CSD-style per-VF arbitration); unfair dispatch drains each pair
  // completely before moving on, letting early pairs capture the device
  // (the QAT behaviour Finding 15 measures).
  bool fair_dispatch = true;
};

struct OffloadResult {
  Status status;
  ByteVec output;            // real-codec mode only
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  double ratio = 0.0;        // achieved compressed/original (compress jobs)
  SimNanos sim_arrival = 0;
  SimNanos sim_completion = 0;
  SimNanos device_latency_ns = 0;  // simulated submit-to-completion
  uint64_t wall_latency_ns = 0;    // measured submit-to-reap
  bool ceiling_delayed = false;
};

using OffloadCallback = std::function<void(const OffloadResult&)>;

struct OffloadRequest {
  CdpuOp op = CdpuOp::kCompress;
  ByteSpan input{};          // real payload; may be empty in model-only jobs
  uint64_t model_bytes = 0;  // payload size for the timing model when input is empty
  double ratio_hint = 0.5;   // expected compressed/original for the model
  SimNanos arrival = kAutoArrival;  // explicit sim arrival, or auto (wall clock)
  uint32_t queue_pair = 0;
  OffloadCallback callback;  // optional; runs on the reaper thread
};

struct RuntimeStats {
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;  // includes canceled + failed
  uint64_t jobs_canceled = 0;
  uint64_t jobs_failed = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t doorbells = 0;       // doorbell rings observed by the dispatcher
  uint64_t max_inflight = 0;    // high-water mark of concurrently admitted jobs
  uint64_t ceiling_delays = 0;  // simulated admissions delayed by a full ring
  RunningStats wall_latency_us;    // measured submit-to-completion
  RunningStats device_latency_us;  // simulated submit-to-completion
  RunningStats engine_service_us;  // per-engine-thread codec time, merged
  SimNanos sim_first_arrival = 0;
  SimNanos sim_makespan = 0;  // latest simulated completion
  // Simulated device throughput over the span covered by admitted requests.
  double sim_gbps() const {
    if (sim_makespan <= sim_first_arrival) {
      return 0.0;
    }
    return static_cast<double>(bytes_in) /
           static_cast<double>(sim_makespan - sim_first_arrival);
  }
};

class OffloadRuntime {
 public:
  explicit OffloadRuntime(const RuntimeOptions& options);
  ~OffloadRuntime();

  OffloadRuntime(const OffloadRuntime&) = delete;
  OffloadRuntime& operator=(const OffloadRuntime&) = delete;

  // Enqueues one job on the request's queue pair. Blocks while the
  // submission ring is full (backpressure). The future is fulfilled on the
  // reaper thread; after Shutdown() it resolves immediately with
  // kUnavailable.
  std::future<OffloadResult> Submit(OffloadRequest request);

  // Rings the doorbell for descriptors accumulated below batch_size.
  void Flush(uint32_t queue_pair);

  // Blocks until every job submitted so far has completed (runtime stays up).
  void Drain();

  enum class ShutdownMode {
    kDrain,  // flush + finish everything already submitted
    kAbort,  // finish admitted jobs; cancel jobs still waiting in rings
  };
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  RuntimeStats Snapshot() const;
  const RuntimeOptions& options() const { return options_; }
  const HostClock& clock() const { return clock_; }

 private:
  struct Job;
  struct QueuePair;

  void RingDoorbellLocked(QueuePair& qp);  // requires qp.producer_mu
  void DispatcherLoop();
  void EngineLoop(uint32_t engine_index);
  void ReaperLoop();
  void DispatchJob(Job* job);
  void CancelJob(Job* job);
  void PostCompletion(Job* job);
  bool AcquireInflightSlot();
  void ReleaseInflightSlot();

  RuntimeOptions options_;
  uint32_t max_inflight_ = 0;  // resolved ceiling; 0 = unbounded
  HostClock clock_;
  SharedCdpuQueue timing_;

  std::vector<std::unique_ptr<QueuePair>> qps_;

  // In-flight ceiling (admitted, completion not yet posted).
  mutable std::mutex slots_mu_;
  std::condition_variable slots_cv_;
  uint32_t inflight_ = 0;
  uint64_t max_inflight_seen_ = 0;

  // Dispatcher wake-up.
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;

  // Engine work queue (jobs admitted to the device).
  std::mutex engine_mu_;
  std::condition_variable engine_cv_;
  std::deque<Job*> engine_queue_;
  bool engines_stopping_ = false;

  // Reaper wake-up + drain tracking.
  std::mutex reap_mu_;
  std::condition_variable reap_cv_;
  std::condition_variable drain_cv_;
  bool reaper_stopping_ = false;

  // Aggregate stats (guarded by stats_mu_) + lock-free tallies.
  mutable std::mutex stats_mu_;
  RuntimeStats stats_;
  bool first_arrival_set_ = false;  // guarded by stats_mu_
  AtomicThroughput throughput_;
  std::atomic<uint64_t> jobs_submitted_{0};
  std::atomic<uint64_t> jobs_completed_{0};
  std::atomic<uint64_t> doorbells_{0};

  enum class State { kRunning, kDraining, kAborting, kStopped };
  std::atomic<State> state_{State::kRunning};
  std::mutex shutdown_mu_;  // serialises Shutdown() callers

  std::thread dispatcher_;
  std::vector<std::thread> engines_;
  std::thread reaper_;
};

}  // namespace cdpu

#endif  // SRC_RUNTIME_OFFLOAD_RUNTIME_H_
