#include "src/runtime/offload_runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "src/adapt/policy.h"

namespace cdpu {
namespace {

constexpr std::chrono::microseconds kPollSlice(500);

// Job-descriptor freelist ceiling: far above any realistic in-flight count
// (rings + slots), just a backstop against a pathological burst pinning
// memory forever.
constexpr size_t kJobPoolCap = 4096;

using trace::EmitSpan;

}  // namespace

struct OffloadRuntime::Job {
  OffloadRequest request;
  // Engaged only on the future-returning Submit() path; SubmitCallback jobs
  // skip the promise's shared-state allocation entirely.
  std::optional<std::promise<OffloadResult>> promise;
  OffloadResult result;
  uint64_t enqueue_wall = 0;
  uint64_t model_bytes = 0;  // payload size fed to the timing model
  bool canceled = false;
  // Tracing: phase-boundary timestamps in the trace::NowNs domain. Each
  // boundary is stamped by the thread that crosses it and read by the next
  // thread downstream; the completion-queue handoff orders those accesses.
  // All zero (and never read) when the job is untraced.
  uint16_t trace_label = 0;  // interned codec name; set on the engine thread
  uint64_t t_enqueue_ns = 0;   // Submit() accepted the descriptor
  uint64_t t_dispatch_ns = 0;  // dispatcher popped it from the submit ring
  uint64_t t_engine_ns = 0;    // engine thread picked it up
  uint64_t t_device_ns = 0;    // device-model attempts finished
  uint64_t t_codec_ns = 0;     // codec work finished (completion posted)
};

struct OffloadRuntime::QueuePair {
  explicit QueuePair(uint32_t depth) : submit_ring(depth) {}

  SpscRing<Job*> submit_ring;
  // Producer side: serialises client threads sharing this pair and guards the
  // doorbell-coalescing state below.
  std::mutex producer_mu;
  std::condition_variable space_cv;  // backpressure when the ring is full
  uint32_t unflushed = 0;            // descriptors written since the last doorbell
  uint64_t first_unflushed_wall = 0;
  // Descriptors the dispatcher is allowed to consume (doorbell has been rung).
  std::atomic<uint64_t> doorbell_avail{0};

  // Completion side: engine threads (and cancellation) post here; the single
  // reaper drains it.
  std::mutex complete_mu;
  std::deque<Job*> completions;
};

OffloadRuntime::OffloadRuntime(const RuntimeOptions& options)
    : options_(options), injector_(options.fault_plan), timing_(options.device) {
  options_.queue_pairs = std::max(1u, options_.queue_pairs);
  options_.batch_size = std::max(1u, options_.batch_size);
  options_.ring_depth = std::max(options_.batch_size, std::max(2u, options_.ring_depth));
  if (options_.engine_threads == 0) {
    options_.engine_threads = std::max(1u, options_.device.engines);
  }
  max_inflight_ =
      options_.max_inflight > 0 ? options_.max_inflight : options_.device.queue_limit;
  timing_.SetFaultInjector(&injector_);

  qps_.reserve(options_.queue_pairs);
  for (uint32_t i = 0; i < options_.queue_pairs; ++i) {
    qps_.push_back(std::make_unique<QueuePair>(options_.ring_depth));
  }

  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  engines_.reserve(options_.engine_threads);
  for (uint32_t i = 0; i < options_.engine_threads; ++i) {
    engines_.emplace_back([this, i] { EngineLoop(i); });
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
}

OffloadRuntime::~OffloadRuntime() {
  Shutdown(ShutdownMode::kDrain);
  // All worker threads are joined; recycled descriptors hold no buffers
  // (RecycleJob released them), so plain deletion is safe.
  for (Job* job : job_pool_) {
    delete job;
  }
  job_pool_.clear();
}

void OffloadRuntime::RingDoorbellLocked(QueuePair& qp) {
  if (qp.unflushed == 0) {
    return;
  }
  qp.doorbell_avail.fetch_add(qp.unflushed, std::memory_order_release);
  qp.unflushed = 0;
  doorbells_.fetch_add(1, std::memory_order_relaxed);
  dispatch_cv_.notify_one();
}

OffloadRuntime::Job* OffloadRuntime::PrepareJob(OffloadRequest&& request) {
  Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(job_pool_mu_);
    if (!job_pool_.empty()) {
      job = job_pool_.back();
      job_pool_.pop_back();
    }
  }
  if (job == nullptr) {
    job = new Job;
  }
  job->request = std::move(request);
  if (job->request.input.empty() && !job->request.input_buf.empty()) {
    job->request.input = job->request.input_buf.span();
  }

  // Resolve the "auto" pseudo-codec before the job enters any queue: the
  // engine profiles the payload on the submitter's thread and the job
  // carries a concrete codec from here on (incompressible payloads ride the
  // "store" passthrough). Without an engine, "auto" degrades to the
  // runtime's configured codec.
  if (job->request.codec == "auto") {
    if (options_.adapt_engine != nullptr && job->request.op == CdpuOp::kCompress) {
      const adapt::AdaptDecision d =
          options_.adapt_engine->Decide(job->request.input, job->request.tenant);
      job->request.adapt_class = d.entropy_class;
      if (d.action == adapt::AdaptAction::kStore) {
        job->request.codec = "store";
        job->request.ratio_hint = 1.0;
      } else {
        job->request.codec = d.codec;
        job->request.ratio_hint = d.ratio_estimate;
      }
    } else {
      job->request.codec.clear();
    }
  }
  job->result.codec_used = job->request.codec;

  uint32_t qpi = job->request.queue_pair % static_cast<uint32_t>(qps_.size());
  job->request.queue_pair = qpi;

  uint64_t payload = job->request.input.size();
  if (payload == 0) {
    payload = job->request.model_bytes;
  } else if (job->request.op == CdpuOp::kDecompress) {
    // The timing model is parameterised by the *original* (uncompressed)
    // size; estimate it from the compressed input and the ratio hint.
    double rr = std::clamp(job->request.ratio_hint, 0.05, 1.0);
    payload = static_cast<uint64_t>(
        std::llround(static_cast<double>(job->request.input.size()) / rr));
  }
  job->model_bytes = std::max<uint64_t>(payload, 1);
  job->enqueue_wall = clock_.Now();
  job->result.device_slot = job->request.device_slot;

  if (options_.trace_sink != nullptr) {
    if (job->request.trace_id == kTraceNone) {
      job->request.trace_id = 0;  // upstream sampler said no: stay untraced
    } else if (job->request.trace_id == 0) {
      job->request.trace_id = options_.trace_sink->StartRequest();
    }
    if (job->request.trace_id != 0) {
      job->t_enqueue_ns = trace::NowNs();
    }
  }
  return job;
}

void OffloadRuntime::FinishJob(Job* job) {
  // Completion telemetry for the adaptive cost model: every successful
  // compress job reports (codec, entropy class, bytes in/out, wall time)
  // from the reaper thread. This is the single feed point — the service
  // layer must not feed again for the same request.
  if (options_.adapt_engine != nullptr && !job->canceled && job->result.status.ok() &&
      job->request.op == CdpuOp::kCompress && job->result.output_bytes > 0) {
    const std::string& codec_used =
        !job->request.codec.empty()
            ? job->request.codec
            : (job->result.fell_back && !options_.fallback_codec.empty()
                   ? options_.fallback_codec
                   : options_.codec);
    if (!codec_used.empty()) {
      options_.adapt_engine->OnCompletion(codec_used, job->request.adapt_class,
                                          job->result.input_bytes, job->result.output_bytes,
                                          job->result.wall_latency_ns);
    }
  }
  if (options_.completion_observer != nullptr) {
    options_.completion_observer(job->result, options_.completion_observer_ctx);
  }
  if (job->request.on_complete != nullptr) {
    job->request.on_complete(job->result, job->request.on_complete_ctx);
  }
  if (job->request.callback) {
    job->request.callback(job->result);
  }
  if (job->promise.has_value()) {
    job->promise->set_value(std::move(job->result));
  }
  RecycleJob(job);
}

void OffloadRuntime::RecycleJob(Job* job) {
  // Reset to the default-constructed state but keep the big capacities
  // (result.output, request.codec) so the next job reuses them. The IoBuf
  // resets release the payload refcounts — this is the point where the
  // input buffer a retried/fallback job was pinning finally lets go.
  job->request.op = CdpuOp::kCompress;
  job->request.codec.clear();
  job->request.input = ByteSpan{};
  job->request.input_buf.Reset();
  job->request.model_bytes = 0;
  job->request.ratio_hint = 0.5;
  job->request.arrival = kAutoArrival;
  job->request.queue_pair = 0;
  job->request.callback = nullptr;
  job->request.on_complete = nullptr;
  job->request.on_complete_ctx = nullptr;
  job->request.trace_id = 0;
  job->request.tenant = 0;
  job->request.device_slot = 0;
  job->request.adapt_class = adapt::kEntropyClassNone;
  job->promise.reset();
  job->result.status = Status::Ok();
  job->result.output.clear();
  job->result.output_buf.Reset();
  job->result.codec_used.clear();
  job->result.input_bytes = 0;
  job->result.output_bytes = 0;
  job->result.ratio = 0.0;
  job->result.sim_arrival = 0;
  job->result.sim_completion = 0;
  job->result.device_latency_ns = 0;
  job->result.wall_latency_ns = 0;
  job->result.ceiling_delayed = false;
  job->result.attempts = 0;
  job->result.fell_back = false;
  job->result.device_slot = 0;
  job->enqueue_wall = 0;
  job->model_bytes = 0;
  job->canceled = false;
  job->trace_label = 0;
  job->t_enqueue_ns = 0;
  job->t_dispatch_ns = 0;
  job->t_engine_ns = 0;
  job->t_device_ns = 0;
  job->t_codec_ns = 0;
  {
    std::lock_guard<std::mutex> lock(job_pool_mu_);
    if (job_pool_.size() < kJobPoolCap) {
      job_pool_.push_back(job);
      return;
    }
  }
  delete job;
}

void OffloadRuntime::EnqueueJob(Job* job) {
  QueuePair& qp = *qps_[job->request.queue_pair];
  {
    std::unique_lock<std::mutex> lock(qp.producer_mu);
    for (;;) {
      if (state_.load() != State::kRunning) {
        lock.unlock();
        job->result.status = Status::Unavailable("offload runtime is shut down");
        FinishJob(job);
        return;
      }
      if (qp.submit_ring.TryPush(job)) {
        break;
      }
      qp.space_cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (qp.unflushed++ == 0) {
      qp.first_unflushed_wall = clock_.Now();
    }
    bool window_elapsed =
        clock_.Now() - qp.first_unflushed_wall >= options_.doorbell_window_ns;
    if (qp.unflushed >= options_.batch_size || window_elapsed) {
      RingDoorbellLocked(qp);
    }
  }
}

std::future<OffloadResult> OffloadRuntime::Submit(OffloadRequest request) {
  Job* job = PrepareJob(std::move(request));
  job->promise.emplace();
  std::future<OffloadResult> fut = job->promise->get_future();
  EnqueueJob(job);
  return fut;
}

void OffloadRuntime::SubmitCallback(OffloadRequest request) {
  EnqueueJob(PrepareJob(std::move(request)));
}

void OffloadRuntime::Flush(uint32_t queue_pair) {
  QueuePair& qp = *qps_[queue_pair % qps_.size()];
  std::lock_guard<std::mutex> lock(qp.producer_mu);
  RingDoorbellLocked(qp);
}

bool OffloadRuntime::AcquireInflightSlot() {
  std::unique_lock<std::mutex> lock(slots_mu_);
  slots_cv_.wait(lock, [this] { return max_inflight_ == 0 || inflight_ < max_inflight_; });
  ++inflight_;
  max_inflight_seen_ = std::max<uint64_t>(max_inflight_seen_, inflight_);
  return true;
}

void OffloadRuntime::ReleaseInflightSlot() {
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    --inflight_;
  }
  slots_cv_.notify_one();
}

void OffloadRuntime::DispatchJob(Job* job) {
  AcquireInflightSlot();
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_queue_.push_back(job);
  }
  engine_cv_.notify_one();
}

void OffloadRuntime::CancelJob(Job* job) {
  job->canceled = true;
  job->result.status = Status::Unavailable("canceled: runtime aborted with job queued");
  PostCompletion(job);
}

void OffloadRuntime::PostCompletion(Job* job) {
  QueuePair& qp = *qps_[job->request.queue_pair];
  {
    std::lock_guard<std::mutex> lock(qp.complete_mu);
    qp.completions.push_back(job);
  }
  reap_cv_.notify_one();
}

void OffloadRuntime::DispatcherLoop() {
  size_t sweep_origin = 0;
  const uint64_t window = options_.doorbell_window_ns;
  trace::TraceSink::Writer* tw =
      options_.trace_sink != nullptr ? options_.trace_sink->RegisterWriter("dispatcher")
                                     : nullptr;
  for (;;) {
    State st = state_.load();
    bool dispatched_any = false;
    for (size_t i = 0; i < qps_.size(); ++i) {
      QueuePair& qp = *qps_[(sweep_origin + i) % qps_.size()];
      {
        // Expire the coalescing window on partial batches the producers have
        // abandoned (or force-flush everything once shutdown begins).
        std::lock_guard<std::mutex> lock(qp.producer_mu);
        if (qp.unflushed > 0 &&
            (st != State::kRunning ||
             clock_.Now() - qp.first_unflushed_wall >= window)) {
          RingDoorbellLocked(qp);
        }
      }
      uint64_t avail = qp.doorbell_avail.load(std::memory_order_acquire);
      uint64_t take = options_.fair_dispatch ? std::min<uint64_t>(avail, options_.batch_size)
                                             : avail;
      for (uint64_t j = 0; j < take; ++j) {
        Job* job = nullptr;
        if (!qp.submit_ring.TryPop(&job)) {
          break;
        }
        qp.doorbell_avail.fetch_sub(1, std::memory_order_relaxed);
        qp.space_cv.notify_all();
        if (tw != nullptr && job->request.trace_id != 0) {
          job->t_dispatch_ns = trace::NowNs();
          EmitSpan(tw, job->request.trace_id, job->request.tenant, 0,
                   trace::Phase::kQueueSubmit, job->t_enqueue_ns, job->t_dispatch_ns,
                   job->request.device_slot);
        }
        if (st == State::kAborting) {
          CancelJob(job);
        } else {
          DispatchJob(job);
        }
        dispatched_any = true;
      }
    }
    sweep_origin = (sweep_origin + 1) % qps_.size();

    if (st != State::kRunning) {
      bool all_empty = true;
      for (auto& qp : qps_) {
        std::lock_guard<std::mutex> lock(qp->producer_mu);
        if (qp->unflushed > 0 || !qp->submit_ring.empty()) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) {
        break;
      }
      continue;
    }
    if (!dispatched_any) {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait_for(lock, kPollSlice);
    }
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engines_stopping_ = true;
  }
  engine_cv_.notify_all();
}

bool OffloadRuntime::AcquireDevice(bool* probing) {
  if (!injector_.enabled()) {
    return true;  // fault-free fast path: no health bookkeeping at all
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  if (device_healthy_) {
    return true;
  }
  if (clock_.Now() >= static_cast<uint64_t>(reprobe_at_)) {
    // Half-open probe: let exactly this job try the device; push the next
    // probe window out in case it fails too.
    reprobe_at_ = clock_.Now() + options_.reprobe_backoff_ns;
    reprobes_.fetch_add(1, std::memory_order_relaxed);
    *probing = true;
    return true;
  }
  return false;
}

void OffloadRuntime::NoteDeviceSuccess() {
  if (!injector_.enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  consecutive_failures_ = 0;
  device_healthy_ = true;
}

void OffloadRuntime::NoteDeviceFailure() {
  std::lock_guard<std::mutex> lock(health_mu_);
  ++consecutive_failures_;
  if (device_healthy_ && consecutive_failures_ >= options_.unhealthy_threshold) {
    device_healthy_ = false;
    reprobe_at_ = clock_.Now() + options_.reprobe_backoff_ns;
    unhealthy_transitions_.fetch_add(1, std::memory_order_relaxed);
  } else if (!device_healthy_) {
    // A failed probe: stay degraded and back the next probe off again.
    reprobe_at_ = clock_.Now() + options_.reprobe_backoff_ns;
  }
}

void OffloadRuntime::RunDeviceAttempts(Job* job) {
  SimNanos arrival =
      job->request.arrival == kAutoArrival ? clock_.Now() : job->request.arrival;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (!first_arrival_set_ || arrival < stats_.sim_first_arrival) {
      stats_.sim_first_arrival = arrival;
      first_arrival_set_ = true;
    }
  }

  bool probing = false;
  bool use_device = AcquireDevice(&probing);
  bool device_ok = false;
  uint32_t attempts = 0;
  SharedCdpuQueue::Completion c{};
  if (use_device) {
    for (;;) {
      ++attempts;
      c = timing_.Submit(job->request.op, job->model_bytes, job->request.ratio_hint, arrival);
      // The timeline injects stalls (late completion, not a failure) and
      // resets (descriptor dropped). The host-visible data-path faults are
      // drawn here: a completion that never arrives is detected against a
      // wall-clock deadline; a verify-CRC mismatch is detected at reap time.
      bool attempt_failed = false;
      if (c.reset_injected) {
        attempt_failed = true;
      } else if (injector_.ShouldInject(FaultKind::kCompletionTimeout)) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(options_.completion_timeout_ns));
        attempt_failed = true;
      } else if (injector_.ShouldInject(FaultKind::kVerifyMismatch)) {
        attempt_failed = true;
      }
      if (!attempt_failed) {
        device_ok = true;
        break;
      }
      if (attempts > options_.max_retries) {
        break;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      uint32_t shift = std::min(attempts - 1, 20u);
      uint64_t backoff =
          std::min(options_.retry_backoff_ns << shift, options_.retry_backoff_cap_ns);
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      // Closed-loop jobs re-arrive after the failed attempt's simulated
      // completion; wall-clock jobs re-arrive "now".
      arrival = job->request.arrival == kAutoArrival ? clock_.Now() : c.completion;
    }
  }

  job->result.attempts = attempts;
  if (device_ok) {
    NoteDeviceSuccess();
    job->result.sim_arrival = arrival;
    job->result.sim_completion = c.completion;
    job->result.device_latency_ns = c.completion - arrival;
    job->result.ceiling_delayed = c.ceiling_delayed;
  } else {
    if (use_device) {
      NoteDeviceFailure();
    }
    // Graceful degradation: the job completes on the in-process CPU codec.
    // No simulated device time is charged; the wall latency carries the cost.
    job->result.fell_back = true;
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    job->result.sim_arrival = arrival;
    job->result.sim_completion = arrival;
    job->result.device_latency_ns = 0;
  }
}

void OffloadRuntime::EngineLoop(uint32_t engine_index) {
  // Thread-local codec instances, keyed by factory name. Jobs name their own
  // codec (OffloadRequest::codec) or inherit the runtime default; a cached
  // nullptr records an unknown name so it is not re-resolved per job.
  std::unordered_map<std::string, std::unique_ptr<Codec>> codecs;
  auto resolve = [&codecs](const std::string& name) -> Codec* {
    auto it = codecs.find(name);
    if (it == codecs.end()) {
      it = codecs.emplace(name, MakeCodec(name)).first;
    }
    return it->second.get();
  };
  RunningStats local_service_us;  // thread-local; merged on exit

  trace::TraceSink* sink = options_.trace_sink;
  trace::TraceSink::Writer* tw =
      sink != nullptr ? sink->RegisterWriter("engine-" + std::to_string(engine_index))
                      : nullptr;
  // Per-thread label cache so interning (a mutex) happens once per codec
  // name, not once per traced job.
  std::unordered_map<std::string, uint16_t> label_ids;

  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(engine_mu_);
      engine_cv_.wait(lock, [this] { return engines_stopping_ || !engine_queue_.empty(); });
      if (engine_queue_.empty()) {
        break;  // engines_stopping_ and drained
      }
      job = engine_queue_.front();
      engine_queue_.pop_front();
    }

    {
      // Queue wait = submit to engine pickup, on the same clock the reaper
      // uses for wall latency. One clock read + a wait-free Record per job.
      const uint64_t picked_up = clock_.Now();
      queue_wait_hist_.Record(picked_up > job->enqueue_wall
                                  ? picked_up - job->enqueue_wall
                                  : 0);
    }
    const bool traced = tw != nullptr && job->request.trace_id != 0;
    if (traced) {
      job->t_engine_ns = trace::NowNs();
      EmitSpan(tw, job->request.trace_id, job->request.tenant, 0,
               trace::Phase::kQueueEngine, job->t_dispatch_ns, job->t_engine_ns,
               job->request.device_slot);
    }

    RunDeviceAttempts(job);

    if (traced) {
      job->t_device_ns = trace::NowNs();
      EmitSpan(tw, job->request.trace_id, job->request.tenant, 0, trace::Phase::kDevice,
               job->t_engine_ns, job->t_device_ns, job->request.device_slot);
    }

    uint64_t t0 = clock_.Now();
    uint64_t in_bytes = job->request.input.size();
    uint64_t out_bytes = 0;
    const std::string& job_codec =
        job->request.codec.empty() ? options_.codec : job->request.codec;
    if (!job_codec.empty()) {
      // The CPU fallback must emit the same stream format the caller asked
      // for, so a per-job codec falls back to itself; only the runtime
      // default codec may be substituted via RuntimeOptions::fallback_codec.
      const std::string& active_name =
          (job->result.fell_back && job->request.codec.empty() &&
           !options_.fallback_codec.empty())
              ? options_.fallback_codec
              : job_codec;
      Codec* active = resolve(active_name);
      if (traced) {
        auto lit = label_ids.find(active_name);
        if (lit == label_ids.end()) {
          lit = label_ids.emplace(active_name, sink->InternLabel(active_name)).first;
        }
        job->trace_label = lit->second;
      }
      if (active == nullptr) {
        job->result.status = Status::InvalidArgument("unknown codec: " + active_name);
      } else if (!job->request.input.empty()) {
        // Install the thread-local trace context so codec-internal hooks
        // (LZ77 / entropy sub-spans) attribute to this request.
        std::optional<trace::ScopedTraceContext> tctx;
        if (traced) {
          tctx.emplace(tw, job->request.trace_id, job->request.tenant, job->trace_label,
                       job->request.device_slot);
        }
        Result<size_t> r = size_t{0};
        if (options_.output_pool != nullptr) {
          // Pooled sink: output lands in a refcounted segment; at steady
          // state this recycles a warm segment instead of growing a ByteVec.
          r = job->request.op == CdpuOp::kCompress
                  ? active->Compress(job->request.input, options_.output_pool,
                                     &job->result.output_buf)
                  : active->Decompress(job->request.input, options_.output_pool,
                                       &job->result.output_buf);
        } else {
          r = job->request.op == CdpuOp::kCompress
                  ? active->Compress(job->request.input, &job->result.output)
                  : active->Decompress(job->request.input, &job->result.output);
        }
        if (r.ok()) {
          out_bytes = job->result.output_view().size();
        } else {
          job->result.status = r.status();
        }
      }
    }
    job->result.input_bytes = in_bytes > 0 ? in_bytes : job->model_bytes;
    job->result.output_bytes = out_bytes;
    if (job->request.op == CdpuOp::kCompress) {
      job->result.ratio = out_bytes > 0 && in_bytes > 0
                              ? static_cast<double>(out_bytes) / static_cast<double>(in_bytes)
                              : job->request.ratio_hint;
    }
    local_service_us.Add(static_cast<double>(clock_.Now() - t0) / 1e3);
    throughput_.Record(job->result.input_bytes, out_bytes);

    if (traced) {
      job->t_codec_ns = trace::NowNs();
      EmitSpan(tw, job->request.trace_id, job->request.tenant, job->trace_label,
               trace::Phase::kCodec, job->t_device_ns, job->t_codec_ns,
               job->request.device_slot);
    }

    PostCompletion(job);
    ReleaseInflightSlot();

    // Fold thread-local stats into the shared sink periodically so Snapshot()
    // stays fresh without taking stats_mu_ on every job.
    if (local_service_us.count() >= 64) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.engine_service_us.Merge(local_service_us);
      local_service_us = RunningStats();
    }
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.engine_service_us.Merge(local_service_us);
}

void OffloadRuntime::ReaperLoop() {
  trace::TraceSink::Writer* tw =
      options_.trace_sink != nullptr ? options_.trace_sink->RegisterWriter("reaper")
                                     : nullptr;
  for (;;) {
    bool reaped_any = false;
    for (auto& qp : qps_) {
      for (;;) {
        Job* job = nullptr;
        {
          std::lock_guard<std::mutex> lock(qp->complete_mu);
          if (qp->completions.empty()) {
            break;
          }
          job = qp->completions.front();
          qp->completions.pop_front();
        }
        job->result.wall_latency_ns = clock_.Now() - job->enqueue_wall;
        wall_hist_.Record(job->result.wall_latency_ns);
        if (!job->canceled && !job->result.fell_back) {
          device_hist_.Record(job->result.device_latency_ns);
        }
        // Canceled jobs never reached an engine (t_codec_ns == 0): their
        // lone queue_submit span leaves an incomplete chain by design.
        if (tw != nullptr && job->request.trace_id != 0 && job->t_codec_ns != 0) {
          EmitSpan(tw, job->request.trace_id, job->request.tenant, job->trace_label,
                   trace::Phase::kComplete, job->t_codec_ns, trace::NowNs(),
                   job->request.device_slot);
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.wall_latency_us.Add(static_cast<double>(job->result.wall_latency_ns) / 1e3);
          if (!job->canceled && !job->result.fell_back) {
            stats_.device_latency_us.Add(static_cast<double>(job->result.device_latency_ns) /
                                         1e3);
          }
          if (job->canceled) {
            ++stats_.jobs_canceled;
          } else if (!job->result.status.ok()) {
            ++stats_.jobs_failed;
          }
        }
        FinishJob(job);
        jobs_completed_.fetch_add(1, std::memory_order_relaxed);
        reaped_any = true;
      }
    }
    if (reaped_any) {
      drain_cv_.notify_all();
      continue;  // keep polling while completions are flowing
    }
    std::unique_lock<std::mutex> lock(reap_mu_);
    if (reaper_stopping_) {
      // Engine threads are joined before reaper_stopping_ is set, so no new
      // completion can arrive after an empty sweep.
      break;
    }
    reap_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  drain_cv_.notify_all();
}

void OffloadRuntime::Drain() {
  // Timed predicate wait: the reaper notifies without holding reap_mu_, so a
  // pure wait could miss the final wake-up.
  std::unique_lock<std::mutex> lock(reap_mu_);
  auto drained = [this] {
    return jobs_completed_.load(std::memory_order_relaxed) >=
           jobs_submitted_.load(std::memory_order_relaxed);
  };
  while (!drain_cv_.wait_for(lock, std::chrono::milliseconds(1), drained)) {
  }
}

void OffloadRuntime::Shutdown(ShutdownMode mode) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (state_.load() == State::kStopped) {
    return;
  }
  state_.store(mode == ShutdownMode::kDrain ? State::kDraining : State::kAborting);
  dispatch_cv_.notify_all();
  for (auto& qp : qps_) {
    qp->space_cv.notify_all();  // wake producers blocked on full rings
  }
  dispatcher_.join();
  engine_cv_.notify_all();
  for (std::thread& t : engines_) {
    t.join();
  }
  {
    std::lock_guard<std::mutex> lock(reap_mu_);
    reaper_stopping_ = true;
  }
  reap_cv_.notify_all();
  reaper_.join();
  state_.store(State::kStopped);
}

RuntimeStats OffloadRuntime::Snapshot() const {
  RuntimeStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  s.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  s.bytes_in = throughput_.bytes_in();
  s.bytes_out = throughput_.bytes_out();
  s.doorbells = doorbells_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    s.max_inflight = max_inflight_seen_;
  }
  s.ceiling_delays = timing_.ceiling_delays();
  s.sim_makespan = timing_.last_completion();
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    s.faults_by_kind[k] = injector_.injected(static_cast<FaultKind>(k));
  }
  s.faults_injected = injector_.total_injected();
  s.wall_hist = wall_hist_.Snapshot();
  s.device_hist = device_hist_.Snapshot();
  s.queue_wait_hist = queue_wait_hist_.Snapshot();
  s.retries = retries_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.unhealthy_transitions = unhealthy_transitions_.load(std::memory_order_relaxed);
  s.reprobes = reprobes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    s.device_healthy = device_healthy_;
  }
  return s;
}

}  // namespace cdpu
