#include "src/runtime/stats_export.h"

namespace cdpu {

void ExportRuntimeStats(const RuntimeStats& stats, const std::string& prefix,
                        obs::MetricSet* metrics) {
  metrics->Count(prefix + "jobs_submitted", stats.jobs_submitted);
  metrics->Count(prefix + "jobs_completed", stats.jobs_completed);
  metrics->Count(prefix + "jobs_canceled", stats.jobs_canceled);
  metrics->Count(prefix + "jobs_failed", stats.jobs_failed);
  metrics->Count(prefix + "bytes_in", stats.bytes_in);
  metrics->Count(prefix + "bytes_out", stats.bytes_out);
  metrics->Count(prefix + "doorbells", stats.doorbells);
  metrics->Count(prefix + "ceiling_delays", stats.ceiling_delays);
  metrics->Gauge(prefix + "max_inflight", static_cast<double>(stats.max_inflight));
  metrics->Gauge(prefix + "sim_gbps", stats.sim_gbps());
  metrics->Summary(prefix + "wall_latency_us", obs::SummarizeRunningStats(stats.wall_latency_us));
  metrics->Summary(prefix + "device_latency_us",
                   obs::SummarizeRunningStats(stats.device_latency_us));
  if (stats.engine_service_us.count() > 0) {
    metrics->Summary(prefix + "engine_service_us",
                     obs::SummarizeRunningStats(stats.engine_service_us));
  }

  bool fault_path_touched = stats.faults_injected > 0 || stats.retries > 0 ||
                            stats.fallbacks > 0 || stats.unhealthy_transitions > 0 ||
                            stats.reprobes > 0 || !stats.device_healthy;
  if (!fault_path_touched) {
    return;
  }
  metrics->Count(prefix + "faults_injected", stats.faults_injected);
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    metrics->Count(prefix + "faults." + FaultKindName(static_cast<FaultKind>(k)),
                   stats.faults_by_kind[k]);
  }
  metrics->Count(prefix + "retries", stats.retries);
  metrics->Count(prefix + "fallbacks", stats.fallbacks);
  metrics->Count(prefix + "unhealthy_transitions", stats.unhealthy_transitions);
  metrics->Count(prefix + "reprobes", stats.reprobes);
  metrics->Gauge(prefix + "device_healthy", stats.device_healthy ? 1.0 : 0.0);
}

}  // namespace cdpu
