#include "src/runtime/stats_export.h"

namespace cdpu {

void ExportRuntimeStats(const RuntimeStats& stats, const std::string& prefix,
                        obs::MetricSet* metrics) {
  metrics->Count(prefix + "jobs_submitted", stats.jobs_submitted);
  metrics->Count(prefix + "jobs_completed", stats.jobs_completed);
  metrics->Count(prefix + "jobs_canceled", stats.jobs_canceled);
  metrics->Count(prefix + "jobs_failed", stats.jobs_failed);
  metrics->Count(prefix + "bytes_in", stats.bytes_in);
  metrics->Count(prefix + "bytes_out", stats.bytes_out);
  metrics->Count(prefix + "doorbells", stats.doorbells);
  metrics->Count(prefix + "ceiling_delays", stats.ceiling_delays);
  metrics->Gauge(prefix + "max_inflight", static_cast<double>(stats.max_inflight));
  metrics->Gauge(prefix + "sim_gbps", stats.sim_gbps());
  metrics->Summary(prefix + "wall_latency_us", obs::SummarizeRunningStats(stats.wall_latency_us));
  metrics->Summary(prefix + "device_latency_us",
                   obs::SummarizeRunningStats(stats.device_latency_us));
  if (stats.engine_service_us.count() > 0) {
    metrics->Summary(prefix + "engine_service_us",
                     obs::SummarizeRunningStats(stats.engine_service_us));
  }
  // Histogram-sourced percentiles (ISSUE 10), rendered in microseconds (the
  // histograms record nanoseconds). Exported alongside the RunningStats
  // summaries: same count, but these add exact-bucket p50/p90/p99/p999.
  if (stats.wall_hist.count() > 0) {
    metrics->Summary(prefix + "wall_hist_us", stats.wall_hist.ToJson(1e3));
  }
  if (stats.device_hist.count() > 0) {
    metrics->Summary(prefix + "device_hist_us", stats.device_hist.ToJson(1e3));
  }
  if (stats.queue_wait_hist.count() > 0) {
    metrics->Summary(prefix + "queue_wait_hist_us",
                     stats.queue_wait_hist.ToJson(1e3));
  }

  bool fault_path_touched = stats.faults_injected > 0 || stats.retries > 0 ||
                            stats.fallbacks > 0 || stats.unhealthy_transitions > 0 ||
                            stats.reprobes > 0 || !stats.device_healthy;
  if (!fault_path_touched) {
    return;
  }
  metrics->Count(prefix + "faults_injected", stats.faults_injected);
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    metrics->Count(prefix + "faults." + FaultKindName(static_cast<FaultKind>(k)),
                   stats.faults_by_kind[k]);
  }
  metrics->Count(prefix + "retries", stats.retries);
  metrics->Count(prefix + "fallbacks", stats.fallbacks);
  metrics->Count(prefix + "unhealthy_transitions", stats.unhealthy_transitions);
  metrics->Count(prefix + "reprobes", stats.reprobes);
  metrics->Gauge(prefix + "device_healthy", stats.device_healthy ? 1.0 : 0.0);
}

void ExportFleetStats(const FleetStats& stats, const std::string& prefix,
                      obs::MetricSet* metrics) {
  ExportRuntimeStats(stats.merged, prefix, metrics);
  if (stats.devices.size() <= 1) {
    return;
  }
  uint64_t routed_total = 0;
  for (const FleetDeviceStats& d : stats.devices) {
    routed_total += d.router.routed;
  }
  for (const FleetDeviceStats& d : stats.devices) {
    const std::string dp = prefix + "device." + d.name + ".";
    ExportRuntimeStats(d.runtime, dp, metrics);
    metrics->Count(dp + "routed", d.router.routed);
    metrics->Gauge(dp + "routed_share",
                   routed_total > 0
                       ? static_cast<double>(d.router.routed) /
                             static_cast<double>(routed_total)
                       : 0.0);
    metrics->Gauge(dp + "outstanding", static_cast<double>(d.router.outstanding));
    metrics->Gauge(dp + "healthy", d.router.healthy ? 1.0 : 0.0);
    metrics->Gauge(dp + "ewma_bytes_per_us", d.router.ewma_bytes_per_us);
  }
}

void ExportPoolStats(const PoolStats& stats, const std::string& prefix,
                     obs::MetricSet* metrics) {
  if (!stats.touched()) {
    return;
  }
  metrics->Count(prefix + "hits", stats.hits);
  metrics->Count(prefix + "misses", stats.misses);
  metrics->Count(prefix + "oversize", stats.oversize);
  metrics->Gauge(prefix + "hit_rate",
                 stats.hits + stats.misses > 0
                     ? static_cast<double>(stats.hits) /
                           static_cast<double>(stats.hits + stats.misses)
                     : 0.0);
  metrics->Gauge(prefix + "slabs", static_cast<double>(stats.slabs));
  metrics->Gauge(prefix + "slab_bytes", static_cast<double>(stats.slab_bytes));
  metrics->Gauge(prefix + "outstanding_buffers",
                 static_cast<double>(stats.outstanding_buffers));
  metrics->Gauge(prefix + "outstanding_bytes", static_cast<double>(stats.outstanding_bytes));
  for (const PoolClassStats& c : stats.classes) {
    if (c.hits + c.misses == 0) {
      continue;  // untouched size classes would dominate the export
    }
    const std::string cp = prefix + "class." + std::to_string(c.segment_bytes) + ".";
    metrics->Count(cp + "hits", c.hits);
    metrics->Count(cp + "misses", c.misses);
    metrics->Gauge(cp + "free_segments", static_cast<double>(c.free_segments));
    metrics->Gauge(cp + "outstanding", static_cast<double>(c.outstanding));
  }
}

void ExportMemPathCounters(const MemPathCounters& counters, const std::string& prefix,
                           obs::MetricSet* metrics) {
  metrics->Count(prefix + "buffer_allocs", counters.buffer_allocs);
  metrics->Count(prefix + "buffer_alloc_bytes", counters.buffer_alloc_bytes);
  metrics->Count(prefix + "payload_copies", counters.payload_copies);
  metrics->Count(prefix + "payload_copy_bytes", counters.payload_copy_bytes);
}

}  // namespace cdpu
