// FleetRuntime: a heterogeneous fleet of OffloadRuntime instances behind a
// PlacementRouter (ISSUE 7).
//
// Each fleet member is a full OffloadRuntime around one device model — its
// own queue pairs, doorbells, engine/reaper threads, fault plan, and
// unhealthy/re-probe health machine — so everything PR 1/2 built for a
// single device applies per member unchanged. The fleet adds exactly one
// decision on top: which member serves each job. Submit() asks the router
// for a slot, stamps the 1-based slot into OffloadRequest::device_slot (so
// trace spans and results carry the placement dimension), and wraps the
// completion callback to feed service-rate + health observations back into
// the router from the member's reaper thread.
//
// A single-device fleet behaves exactly like the wrapped runtime (the
// router degenerates to slot 0; overhead is one mutexed counter bump per
// job), so the service layer always runs on a fleet and the single-device
// default path is just a fleet of one.

#ifndef SRC_RUNTIME_FLEET_H_
#define SRC_RUNTIME_FLEET_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/offload_runtime.h"
#include "src/runtime/placement.h"

namespace cdpu {

struct FleetOptions {
  // Shared runtime knobs (codec, queue pairs, ring depth, retry policy,
  // trace sink, ...). Per-member fields — device, fault_plan,
  // engine_threads — are overridden from each FleetDeviceSpec; base.device
  // and base.fault_plan are ignored.
  RuntimeOptions base;
  std::vector<FleetDeviceSpec> devices;  // >= 1, <= kMaxFleetDevices
  PlacementOptions placement;
};

struct FleetDeviceStats {
  std::string name;
  RuntimeStats runtime;
  PlacementDeviceView router;  // routed/outstanding/health/ewma view
};

struct FleetStats {
  std::vector<FleetDeviceStats> devices;
  RuntimeStats merged;  // all members combined (counters summed, stats merged)
};

// Combines per-member runtime stats: counters summed, RunningStats merged,
// sim span widened, device_healthy = all healthy. Exposed for stats export
// and tests.
RuntimeStats MergeRuntimeStats(const std::vector<RuntimeStats>& parts);

class FleetRuntime {
 public:
  explicit FleetRuntime(const FleetOptions& options);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  // Routes and submits one job. request.device_slot is overwritten with the
  // chosen slot + 1; an explicit nonzero request.device_slot (1-based) pins
  // the job to that member, bypassing the router (used by probes/tests).
  std::future<OffloadResult> Submit(OffloadRequest request);

  // Callback-only routed submission (no future; see
  // OffloadRuntime::SubmitCallback). Router feedback is delivered through a
  // per-member completion observer installed at construction, so neither
  // path wraps the request callback in a per-job std::function.
  void SubmitCallback(OffloadRequest request);

  // Flushes the given queue pair on every member (a routed job may sit in
  // any member's ring).
  void Flush(uint32_t queue_pair);

  void Drain();
  void Shutdown(OffloadRuntime::ShutdownMode mode = OffloadRuntime::ShutdownMode::kDrain);

  FleetStats Snapshot() const;

  size_t device_count() const { return runtimes_.size(); }
  std::vector<std::string> DeviceNames() const;
  // Slot resolution for --fault-device style targeting; returns false when
  // no member has that name.
  bool SlotByName(const std::string& name, size_t* slot) const;

  const FleetOptions& options() const { return options_; }
  OffloadRuntime& runtime(size_t slot) { return *runtimes_[slot]; }
  const OffloadRuntime& runtime(size_t slot) const { return *runtimes_[slot]; }
  PlacementRouter& router() { return router_; }

  // Total admission capacity across members: sum of each member's in-flight
  // ceiling (max_inflight or device queue_limit). The service layer clamps
  // its admission ceiling against this so Submit never blocks its loop.
  uint64_t total_slots() const;

 private:
  // Per-member completion-observer context: routes service-rate + health
  // feedback into the router from the member's reaper thread. One instance
  // per member for the fleet's lifetime — no per-request state.
  struct MemberFeedback;

  size_t RouteRequest(OffloadRequest& request);

  FleetOptions options_;
  PlacementRouter router_;
  std::vector<std::unique_ptr<MemberFeedback>> feedback_;
  std::vector<std::unique_ptr<OffloadRuntime>> runtimes_;
};

}  // namespace cdpu

#endif  // SRC_RUNTIME_FLEET_H_
