#include "src/runtime/placement.h"

#include <algorithm>
#include <cassert>

#include "src/hw/device_configs.h"

namespace cdpu {

bool ParsePlacementPolicy(const std::string& name, PlacementPolicy* out) {
  if (name == "static") {
    *out = PlacementPolicy::kStatic;
  } else if (name == "size-threshold") {
    *out = PlacementPolicy::kSizeThreshold;
  } else if (name == "least-outstanding") {
    *out = PlacementPolicy::kLeastOutstanding;
  } else if (name == "ewma-service-rate") {
    *out = PlacementPolicy::kEwmaServiceRate;
  } else {
    return false;
  }
  return true;
}

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kStatic:
      return "static";
    case PlacementPolicy::kSizeThreshold:
      return "size-threshold";
    case PlacementPolicy::kLeastOutstanding:
      return "least-outstanding";
    case PlacementPolicy::kEwmaServiceRate:
      return "ewma-service-rate";
  }
  return "unknown";
}

bool FleetDeviceByName(const std::string& name, CdpuConfig* out) {
  if (name == "qat8970") {
    *out = Qat8970Config();
  } else if (name == "qat4xxx") {
    *out = Qat4xxxConfig();
  } else if (name == "dpzip") {
    *out = DpzipCdpuConfig();
  } else if (name == "csd2000") {
    *out = Csd2000CdpuConfig();
  } else if (name == "cpu" || name == "cpu-deflate") {
    *out = CpuSoftwareConfig("deflate");
  } else if (name == "cpu-zstd") {
    *out = CpuSoftwareConfig("zstd");
  } else if (name == "cpu-snappy") {
    *out = CpuSoftwareConfig("snappy");
  } else if (name == "cpu-lz4") {
    *out = CpuSoftwareConfig("lz4");
  } else {
    return false;
  }
  return true;
}

Status ParseDeviceList(const std::string& spec, std::vector<FleetDeviceSpec>* out) {
  out->clear();
  if (spec.empty()) {
    return Status::InvalidArgument("empty device list");
  }
  struct Entry {
    std::string preset;
    uint64_t count = 1;
  };
  std::vector<Entry> entries;
  size_t pos = 0;
  uint64_t total = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      return Status::InvalidArgument("empty device entry in list: " + spec);
    }
    Entry e;
    size_t colon = item.find(':');
    if (colon == std::string::npos) {
      e.preset = item;
    } else {
      e.preset = item.substr(0, colon);
      std::string count_str = item.substr(colon + 1);
      if (count_str.empty() ||
          count_str.find_first_not_of("0123456789") != std::string::npos) {
        return Status::InvalidArgument("bad device count in entry: " + item);
      }
      e.count = std::stoull(count_str);
      if (e.count == 0) {
        return Status::InvalidArgument("device count must be >= 1: " + item);
      }
    }
    CdpuConfig probe;
    if (!FleetDeviceByName(e.preset, &probe)) {
      return Status::InvalidArgument(
          "unknown device: " + e.preset +
          " (want qat8970|qat4xxx|dpzip|csd2000|cpu[-deflate|-zstd|-snappy|-lz4])");
    }
    total += e.count;
    if (total > kMaxFleetDevices) {
      return Status::InvalidArgument("too many devices (max " +
                                     std::to_string(kMaxFleetDevices) + ")");
    }
    entries.push_back(std::move(e));
  }

  // Instances keep the bare preset name unless the preset appears more than
  // once across the whole list; then every instance gets a ".<i>" suffix so
  // names stay unique and stable.
  std::vector<std::pair<std::string, uint64_t>> preset_totals;
  for (const Entry& e : entries) {
    auto it = std::find_if(preset_totals.begin(), preset_totals.end(),
                           [&e](const auto& p) { return p.first == e.preset; });
    if (it == preset_totals.end()) {
      preset_totals.emplace_back(e.preset, e.count);
    } else {
      it->second += e.count;
    }
  }
  std::vector<std::pair<std::string, uint64_t>> next_index = preset_totals;
  for (auto& p : next_index) {
    p.second = 0;
  }
  for (const Entry& e : entries) {
    auto total_it = std::find_if(preset_totals.begin(), preset_totals.end(),
                                 [&e](const auto& p) { return p.first == e.preset; });
    auto idx_it = std::find_if(next_index.begin(), next_index.end(),
                               [&e](const auto& p) { return p.first == e.preset; });
    for (uint64_t i = 0; i < e.count; ++i) {
      FleetDeviceSpec d;
      FleetDeviceByName(e.preset, &d.config);
      d.name = total_it->second > 1 ? e.preset + "." + std::to_string(idx_it->second)
                                    : e.preset;
      ++idx_it->second;
      out->push_back(std::move(d));
    }
  }
  return Status::Ok();
}

PlacementRouter::PlacementRouter(const PlacementOptions& options,
                                 const std::vector<FleetDeviceSpec>& devices)
    : options_(options), rng_(options.seed) {
  assert(!devices.empty() && devices.size() <= kMaxFleetDevices);
  devices_.reserve(devices.size());
  for (const FleetDeviceSpec& spec : devices) {
    DeviceState st;
    st.name = spec.name;
    st.placement = spec.config.placement;
    // Analytic cold-start prior: aggregate streaming rate in bytes/us
    // (1 GB/s ~= 1000 bytes/us), so ewma-service-rate starts out spreading
    // load roughly proportionally to modelled capacity.
    double engines = std::max<double>(spec.config.engines, 1);
    st.prior_bytes_per_us = std::max(spec.config.compress_gbps * engines * 1000.0, 1.0);
    devices_.push_back(std::move(st));
  }
  if (!options_.static_device.empty()) {
    for (size_t i = 0; i < devices_.size(); ++i) {
      if (devices_[i].name == options_.static_device) {
        static_slot_ = i;
        break;
      }
    }
  }
}

std::vector<size_t> PlacementRouter::HealthyLocked() const {
  std::vector<size_t> healthy;
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].healthy) {
      healthy.push_back(i);
    }
  }
  return healthy;
}

size_t PlacementRouter::LeastOutstandingLocked(const std::vector<size_t>& candidates) {
  size_t best = candidates.front();
  uint64_t best_out = devices_[best].outstanding;
  // Rotate the scan start so perfect ties spread round-robin instead of
  // always landing on the lowest slot.
  size_t start = rr_tiebreak_++ % candidates.size();
  for (size_t k = 0; k < candidates.size(); ++k) {
    size_t i = candidates[(start + k) % candidates.size()];
    if (k == 0 || devices_[i].outstanding < best_out) {
      best = i;
      best_out = devices_[i].outstanding;
    }
  }
  return best;
}

size_t PlacementRouter::RouteLocked(uint64_t payload_bytes) {
  switch (options_.policy) {
    case PlacementPolicy::kStatic: {
      // Pin while the named device is healthy; fail over to the least
      // loaded healthy member while it is degraded (the pin re-engages as
      // soon as the health machine re-probes successfully).
      if (devices_[static_slot_].healthy) {
        return static_slot_;
      }
      std::vector<size_t> healthy = HealthyLocked();
      if (!healthy.empty()) {
        return LeastOutstandingLocked(healthy);
      }
      break;
    }

    case PlacementPolicy::kSizeThreshold: {
      bool want_low_latency = payload_bytes < options_.size_threshold_bytes;
      std::vector<size_t> in_class;
      std::vector<size_t> out_of_class;
      for (size_t i = 0; i < devices_.size(); ++i) {
        if (!devices_[i].healthy) {
          continue;
        }
        if (IsLowLatencyClass(devices_[i].placement) == want_low_latency) {
          in_class.push_back(i);
        } else {
          out_of_class.push_back(i);
        }
      }
      if (!in_class.empty()) {
        return LeastOutstandingLocked(in_class);
      }
      if (!out_of_class.empty()) {
        return LeastOutstandingLocked(out_of_class);
      }
      break;  // nothing healthy: fall through to the any-device path
    }

    case PlacementPolicy::kLeastOutstanding: {
      std::vector<size_t> healthy = HealthyLocked();
      if (!healthy.empty()) {
        return LeastOutstandingLocked(healthy);
      }
      break;
    }

    case PlacementPolicy::kEwmaServiceRate: {
      // Weighted random by measured service rate, with a weight floor so
      // unhealthy / collapsed devices still see probe traffic and can earn
      // their share back after recovery.
      std::vector<double> weights(devices_.size());
      double sum = 0;
      double max_rate = 0;
      for (const DeviceState& d : devices_) {
        max_rate = std::max(
            max_rate, d.ewma_bytes_per_us > 0 ? d.ewma_bytes_per_us : d.prior_bytes_per_us);
      }
      double floor = std::max(max_rate * options_.min_weight_fraction, 1e-9);
      for (size_t i = 0; i < devices_.size(); ++i) {
        const DeviceState& d = devices_[i];
        double rate = d.ewma_bytes_per_us > 0 ? d.ewma_bytes_per_us : d.prior_bytes_per_us;
        if (!d.healthy) {
          rate = 0;  // floor-only probe traffic while degraded
        }
        weights[i] = std::max(rate, floor);
        sum += weights[i];
      }
      double draw = std::uniform_real_distribution<double>(0.0, sum)(rng_);
      for (size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw <= 0) {
          return i;
        }
      }
      return weights.size() - 1;
    }
  }

  // Fallback (no healthy device): least-outstanding over everyone, so load
  // at least spreads while every member is degraded.
  std::vector<size_t> all(devices_.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return LeastOutstandingLocked(all);
}

size_t PlacementRouter::Route(uint64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t slot = RouteLocked(payload_bytes);
  ++devices_[slot].outstanding;
  ++devices_[slot].routed;
  return slot;
}

void PlacementRouter::OnComplete(size_t slot, uint64_t bytes, uint64_t wall_latency_ns,
                                 bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= devices_.size()) {
    return;
  }
  DeviceState& d = devices_[slot];
  if (d.outstanding > 0) {
    --d.outstanding;
  }
  d.healthy = healthy;
  double us = static_cast<double>(wall_latency_ns) / 1e3;
  if (us > 0) {
    double rate = static_cast<double>(std::max<uint64_t>(bytes, 1)) / us;
    d.ewma_bytes_per_us = d.ewma_bytes_per_us > 0
                              ? options_.ewma_alpha * rate +
                                    (1 - options_.ewma_alpha) * d.ewma_bytes_per_us
                              : rate;
  }
}

void PlacementRouter::NotePinned(size_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot < devices_.size()) {
    ++devices_[slot].outstanding;
    ++devices_[slot].routed;
  }
}

void PlacementRouter::SetHealthy(size_t slot, bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot < devices_.size()) {
    devices_[slot].healthy = healthy;
  }
}

std::vector<PlacementDeviceView> PlacementRouter::SnapshotViews() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlacementDeviceView> views;
  views.reserve(devices_.size());
  for (const DeviceState& d : devices_) {
    PlacementDeviceView v;
    v.name = d.name;
    v.placement = d.placement;
    v.healthy = d.healthy;
    v.outstanding = d.outstanding;
    v.routed = d.routed;
    v.ewma_bytes_per_us = d.ewma_bytes_per_us;
    views.push_back(std::move(v));
  }
  return views;
}

}  // namespace cdpu
