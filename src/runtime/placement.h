// Placement-aware routing across a heterogeneous device fleet (ISSUE 7).
//
// The paper's central claim is that *placement* — in-storage DPZip vs
// peripheral QAT 8970 vs on-chip QAT 4xxx vs CPU software — decides which
// engine wins at each payload size and load level (Figs 8-11). The
// PlacementRouter makes that a runtime scheduling decision instead of a
// build-time constant: FleetRuntime (src/runtime/fleet.h) asks it for a
// device slot per job and feeds back dispatch/completion events so the
// policies can react to live load and health.
//
// Policies:
//   static            pin every job to one named device (baseline / A-B runs)
//   size-threshold    payloads below the Fig 8/9 crossover go to the low-
//                     setup-cost class (on-chip / CPU); larger payloads go to
//                     the high-throughput ASIC class (peripheral/in-storage);
//                     least-outstanding within the class
//   least-outstanding join the healthy device with the fewest jobs in flight
//   ewma-service-rate weighted-random by measured per-device service rate
//                     (EWMA of bytes per wall-microsecond), so a degraded or
//                     faulted device organically sheds load onto healthy ones
//
// The router is thread-safe (one mutex; routing is a few dozen ns of work
// per multi-microsecond job) and deterministic for a fixed seed + event
// order.

#ifndef SRC_RUNTIME_PLACEMENT_H_
#define SRC_RUNTIME_PLACEMENT_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/hw/cdpu_device.h"

namespace cdpu {

enum class PlacementPolicy : uint8_t {
  kStatic = 0,
  kSizeThreshold,
  kLeastOutstanding,
  kEwmaServiceRate,
};

// "static" / "size-threshold" / "least-outstanding" / "ewma-service-rate".
bool ParsePlacementPolicy(const std::string& name, PlacementPolicy* out);
const char* PlacementPolicyName(PlacementPolicy policy);

// One member of a device fleet: a named instance of a hardware preset (or
// the CPU engine) with its own fault plan and engine-thread count.
struct FleetDeviceSpec {
  std::string name;  // unique instance name, e.g. "dpzip" or "qat8970.1"
  CdpuConfig config;
  FaultPlan fault_plan;         // per-device; default-constructed = no faults
  uint32_t engine_threads = 0;  // 0 = config.engines
};

// Resolves a fleet device preset name to its CdpuConfig. Accepts the
// hardware presets ("qat8970", "qat4xxx", "dpzip", "csd2000") plus the CPU
// engine ("cpu" = cpu-deflate, and "cpu-deflate" / "cpu-zstd" /
// "cpu-snappy" / "cpu-lz4").
bool FleetDeviceByName(const std::string& name, CdpuConfig* out);

// Parses a --devices list: "name[:count][,name[:count]...]", e.g.
// "dpzip:2,qat4xxx,cpu". Count defaults to 1; instance names get a ".<i>"
// suffix whenever the same preset appears more than once overall. At most
// kMaxFleetDevices instances total.
Status ParseDeviceList(const std::string& spec, std::vector<FleetDeviceSpec>* out);

// Slots are uint8 (1-based in trace spans / OffloadRequest::device_slot).
inline constexpr size_t kMaxFleetDevices = 64;

struct PlacementOptions {
  PlacementPolicy policy = PlacementPolicy::kLeastOutstanding;
  // kStatic: instance name to pin to ("" = slot 0).
  std::string static_device;
  // kSizeThreshold: the Fig 8/9 crossover. Below this the setup-dominated
  // regime favours on-chip/CPU placement; at/above it the streaming regime
  // favours the ASIC paths.
  uint64_t size_threshold_bytes = 16 * 1024;
  // kEwmaServiceRate: smoothing factor for the per-device bytes/us EWMA and
  // the weight floor that keeps probe traffic flowing to unhealthy/slow
  // devices (so recovery is observable).
  double ewma_alpha = 0.2;
  double min_weight_fraction = 0.01;
  uint64_t seed = 1;  // weighted-random draws (deterministic per seed)
};

// Live per-device view the router maintains (snapshot for stats/tests).
struct PlacementDeviceView {
  std::string name;
  Placement placement = Placement::kPeripheral;
  bool healthy = true;
  uint64_t outstanding = 0;  // dispatched, not yet completed
  uint64_t routed = 0;       // total jobs this router sent here
  double ewma_bytes_per_us = 0.0;  // 0 until the first completion
};

class PlacementRouter {
 public:
  // `devices` supplies the static attributes (name, placement class, and an
  // analytic service-rate prior so ewma-service-rate has sane cold-start
  // weights). Must be non-empty and at most kMaxFleetDevices entries.
  PlacementRouter(const PlacementOptions& options,
                  const std::vector<FleetDeviceSpec>& devices);

  // Picks a 0-based slot for a job of `payload_bytes` and counts it as
  // dispatched (outstanding++). Thread-safe.
  size_t Route(uint64_t payload_bytes);

  // Completion feedback from the fleet: updates outstanding, the service-
  // rate EWMA (bytes / wall-us), and the health flag the fleet read from the
  // member runtime's degradation state machine.
  void OnComplete(size_t slot, uint64_t bytes, uint64_t wall_latency_ns, bool healthy);

  // Pinned dispatch (caller chose the slot, bypassing Route); keeps
  // outstanding/routed accounting symmetric with OnComplete.
  void NotePinned(size_t slot);

  // Direct health override for callers that observe device state outside
  // the completion path (tests, admin probes).
  void SetHealthy(size_t slot, bool healthy);

  std::vector<PlacementDeviceView> SnapshotViews() const;
  const PlacementOptions& options() const { return options_; }
  size_t device_count() const { return devices_.size(); }

  // True for the placement classes that win the small-payload (setup-
  // dominated) regime in Figs 8/9; the complement is the ASIC/offload class
  // that wins once payloads amortise the submission path.
  static bool IsLowLatencyClass(Placement p) {
    return p == Placement::kOnChip || p == Placement::kCpuSoftware;
  }

 private:
  struct DeviceState {
    std::string name;
    Placement placement = Placement::kPeripheral;
    bool healthy = true;
    uint64_t outstanding = 0;
    uint64_t routed = 0;
    double ewma_bytes_per_us = 0.0;  // 0 = no completion yet; use prior
    double prior_bytes_per_us = 1.0;  // analytic engines x gbps cold-start
  };

  size_t RouteLocked(uint64_t payload_bytes);
  size_t LeastOutstandingLocked(const std::vector<size_t>& candidates);
  std::vector<size_t> HealthyLocked() const;

  PlacementOptions options_;
  size_t static_slot_ = 0;

  mutable std::mutex mu_;
  std::vector<DeviceState> devices_;  // guarded by mu_
  std::mt19937_64 rng_;               // guarded by mu_
  uint64_t rr_tiebreak_ = 0;          // guarded by mu_
};

}  // namespace cdpu

#endif  // SRC_RUNTIME_PLACEMENT_H_
