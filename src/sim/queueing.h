// Analytic FIFO multi-server queue. Devices with k parallel engines and a
// bounded submission queue are modelled by tracking each engine's next-free
// time; Submit() returns the request's start/completion times directly.
//
// This reproduces the first-order queueing behaviour the paper attributes to
// CDPU hardware (QAT's 64-entry concurrency ceiling, Finding 6) without a
// full event loop.

#ifndef SRC_SIM_QUEUEING_H_
#define SRC_SIM_QUEUEING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/sim_time.h"

namespace cdpu {

struct ServiceOutcome {
  SimNanos start;       // when an engine began working on the request
  SimNanos completion;  // when the result was ready
  bool rejected;        // true if the bounded queue was full at arrival
};

class MultiServerQueue {
 public:
  // `servers`: parallel engines; `queue_limit`: max requests admitted but not
  // yet started at any instant (0 = unbounded).
  explicit MultiServerQueue(uint32_t servers, uint32_t queue_limit = 0)
      : free_at_(servers, 0), queue_limit_(queue_limit) {}

  // Submits a request arriving at `arrival` needing `service` ns of engine
  // time. Requests must be submitted in non-decreasing arrival order.
  ServiceOutcome Submit(SimNanos arrival, SimNanos service) {
    // Pick the engine that frees up earliest.
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    SimNanos start = std::max(arrival, *it);
    if (queue_limit_ != 0) {
      // Count requests admitted but not yet started at `arrival`.
      uint32_t backlog = 0;
      for (SimNanos f : pending_starts_) {
        if (f > arrival) {
          ++backlog;
        }
      }
      if (backlog >= queue_limit_) {
        ++rejected_;
        return ServiceOutcome{arrival, arrival, true};
      }
      pending_starts_.push_back(start);
      if (pending_starts_.size() > 4096) {
        CompactPending(arrival);
      }
    }
    SimNanos completion = start + service;
    *it = completion;
    ++completed_;
    busy_ns_ += service;
    last_completion_ = std::max(last_completion_, completion);
    return ServiceOutcome{start, completion, false};
  }

  uint64_t completed() const { return completed_; }
  uint64_t rejected() const { return rejected_; }
  SimNanos last_completion() const { return last_completion_; }
  // Aggregate engine-busy time; busy_ns/ (servers * makespan) = utilisation.
  SimNanos busy_ns() const { return busy_ns_; }
  uint32_t servers() const { return static_cast<uint32_t>(free_at_.size()); }

  void Reset() {
    std::fill(free_at_.begin(), free_at_.end(), 0);
    pending_starts_.clear();
    completed_ = 0;
    rejected_ = 0;
    busy_ns_ = 0;
    last_completion_ = 0;
  }

 private:
  void CompactPending(SimNanos arrival) {
    std::erase_if(pending_starts_, [arrival](SimNanos s) { return s <= arrival; });
  }

  std::vector<SimNanos> free_at_;
  std::vector<SimNanos> pending_starts_;
  uint32_t queue_limit_;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  SimNanos busy_ns_ = 0;
  SimNanos last_completion_ = 0;
};

}  // namespace cdpu

#endif  // SRC_SIM_QUEUEING_H_
