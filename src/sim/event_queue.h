// Minimal discrete-event simulator: a time-ordered queue of callbacks.
// Ties are broken by insertion order so runs are fully deterministic.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/sim_time.h"

namespace cdpu {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  SimNanos now() const { return now_; }

  // Schedules `fn` at absolute simulated time `at` (>= now).
  void ScheduleAt(SimNanos at, Handler fn) {
    events_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
  }

  void ScheduleAfter(SimNanos delay, Handler fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs events until the queue is empty (or `until` is reached, if nonzero).
  // Returns the number of events dispatched.
  uint64_t Run(SimNanos until = 0) {
    uint64_t dispatched = 0;
    while (!events_.empty()) {
      const Event& top = events_.top();
      if (until != 0 && top.at > until) {
        now_ = until;
        break;
      }
      now_ = top.at;
      Handler fn = std::move(const_cast<Event&>(top).fn);
      events_.pop();
      fn();
      ++dispatched;
    }
    return dispatched;
  }

  bool empty() const { return events_.empty(); }

 private:
  struct Event {
    SimNanos at;
    uint64_t seq;
    Handler fn;

    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  SimNanos now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace cdpu

#endif  // SRC_SIM_EVENT_QUEUE_H_
