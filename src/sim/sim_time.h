// Simulated time vocabulary. All device/interconnect models operate in
// simulated nanoseconds (uint64), independent of wall-clock time.

#ifndef SRC_SIM_SIM_TIME_H_
#define SRC_SIM_SIM_TIME_H_

#include <cstdint>

namespace cdpu {

using SimNanos = uint64_t;

constexpr SimNanos kNanosPerMicro = 1000;
constexpr SimNanos kNanosPerMilli = 1000 * 1000;
constexpr SimNanos kNanosPerSec = 1000ull * 1000 * 1000;

constexpr SimNanos Micros(uint64_t us) { return us * kNanosPerMicro; }
constexpr SimNanos Millis(uint64_t ms) { return ms * kNanosPerMilli; }
constexpr SimNanos Seconds(uint64_t s) { return s * kNanosPerSec; }

inline double ToMicrosF(SimNanos ns) { return static_cast<double>(ns) / 1e3; }
inline double ToMillisF(SimNanos ns) { return static_cast<double>(ns) / 1e6; }
inline double ToSecondsF(SimNanos ns) { return static_cast<double>(ns) / 1e9; }

// Throughput helper: bytes moved over a simulated duration, in GB/s (1e9 B/s).
inline double GbPerSec(uint64_t bytes, SimNanos elapsed) {
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / static_cast<double>(elapsed);
}

}  // namespace cdpu

#endif  // SRC_SIM_SIM_TIME_H_
