// Bridges monotonic wall-clock time into the simulated-nanosecond domain so
// real threads can drive the analytic device models. The discrete-event code
// paths advance SimNanos explicitly; threaded callers instead stamp requests
// with HostClock::Now(), a monotonic wall-clock offset from the clock's
// creation. Both domains share the SimNanos vocabulary, so a device model fed
// wall-clock arrivals returns completions comparable against later Now()
// readings.

#ifndef SRC_SIM_HOST_CLOCK_H_
#define SRC_SIM_HOST_CLOCK_H_

#include <chrono>

#include "src/sim/sim_time.h"

namespace cdpu {

// Monotonic wall-clock source expressed in SimNanos since construction.
// Thread-safe: Now() only reads the immutable origin.
class HostClock {
 public:
  HostClock() : origin_(std::chrono::steady_clock::now()) {}

  SimNanos Now() const {
    auto delta = std::chrono::steady_clock::now() - origin_;
    return static_cast<SimNanos>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

// Sentinel arrival meaning "stamp with the runtime's HostClock at submission".
// Closed-loop simulation clients instead pass explicit virtual arrivals
// (typically the simulated completion of their previous request).
constexpr SimNanos kAutoArrival = ~SimNanos{0};

}  // namespace cdpu

#endif  // SRC_SIM_HOST_CLOCK_H_
