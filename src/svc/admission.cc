#include "src/svc/admission.h"

#include <algorithm>

namespace cdpu {
namespace svc {

AdmissionController::AdmissionController(const AdmissionOptions& options) : options_(options) {
  if (options_.arbitration == VfArbitration::kWeightedFair) {
    per_tenant_limit_ = options_.per_tenant_inflight;
    if (per_tenant_limit_ == 0 && options_.max_inflight > 0) {
      per_tenant_limit_ =
          std::max(1u, options_.max_inflight / std::max(1u, options_.expected_tenants));
    }
    if (!options_.tenant_weights.empty() && options_.max_inflight > 0) {
      double weight_sum = 0;
      for (const auto& [tenant, w] : options_.tenant_weights) {
        weight_sum += std::max(w, 0.0);
      }
      if (weight_sum > 0) {
        for (const auto& [tenant, w] : options_.tenant_weights) {
          double share = std::max(w, 0.0) / weight_sum;
          weighted_limits_[tenant] = std::max(
              1u, static_cast<uint32_t>(share * options_.max_inflight + 0.5));
        }
      }
    }
  }
}

uint32_t AdmissionController::LimitFor(uint32_t tenant) const {
  auto it = weighted_limits_.find(tenant);
  return it != weighted_limits_.end() ? it->second : per_tenant_limit_;
}

Status AdmissionController::TryAdmit(uint32_t tenant, uint64_t bytes_in) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantSnapshot& t = tenants_[tenant];
  t.tenant = tenant;
  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    ++t.rejected;
    return Status::ResourceExhausted("service at in-flight ceiling");
  }
  uint32_t limit = LimitFor(tenant);
  if (limit > 0 && t.inflight >= limit) {
    ++t.rejected;
    return Status::ResourceExhausted("tenant at fair-share ceiling");
  }
  ++inflight_;
  ++t.inflight;
  ++t.admitted;
  t.bytes_in += bytes_in;
  return Status::Ok();
}

void AdmissionController::Complete(uint32_t tenant, uint64_t bytes_out, uint64_t wall_ns,
                                   bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantSnapshot& t = tenants_[tenant];
  if (inflight_ > 0) {
    --inflight_;
  }
  if (t.inflight > 0) {
    --t.inflight;
  }
  ++t.completed;
  if (!ok) {
    ++t.failed;
  }
  t.bytes_out += bytes_out;
  t.wall_latency_us.Add(static_cast<double>(wall_ns) / 1e3);
}

uint32_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::vector<TenantSnapshot> AdmissionController::Snapshot() const {
  std::vector<TenantSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) {
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TenantSnapshot& a, const TenantSnapshot& b) { return a.tenant < b.tenant; });
  return out;
}

}  // namespace svc
}  // namespace cdpu
