#include "src/svc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/svc/stats_export.h"

namespace cdpu {
namespace svc {
namespace {

// epoll user-data sentinels; session ids start at 1.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = UINT64_MAX;

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

ServiceServer::ServiceServer(const ServerOptions& options)
    : options_(options), pool_(options.pool) {}

ServiceServer::~ServiceServer() {
  Stop();
  for (RequestCtx* ctx : ctx_pool_) {
    delete ctx;
  }
  ctx_pool_.clear();
}

ServiceServer::RequestCtx* ServiceServer::AcquireCtx() {
  {
    std::lock_guard<std::mutex> lock(ctx_pool_mu_);
    if (!ctx_pool_.empty()) {
      RequestCtx* ctx = ctx_pool_.back();
      ctx_pool_.pop_back();
      return ctx;
    }
  }
  auto* ctx = new RequestCtx;
  ctx->server = this;
  return ctx;
}

void ServiceServer::RecycleCtx(RequestCtx* ctx) {
  ctx->meta = Completion{};
  std::lock_guard<std::mutex> lock(ctx_pool_mu_);
  ctx_pool_.push_back(ctx);
}

// Runs on a member runtime's reaper thread.
void ServiceServer::OnOffloadComplete(const OffloadResult& result, void* vctx) {
  auto* ctx = static_cast<RequestCtx*>(vctx);
  ServiceServer* self = ctx->server;
  Completion c = std::move(ctx->meta);
  self->RecycleCtx(ctx);
  c.status = result.status;
  if (!result.output_buf.empty()) {
    c.output = result.output_buf;  // refcount bump; no copy
  } else if (!result.output.empty()) {
    // Legacy ByteVec output (runtime without an output pool).
    c.output = IoBuf::Copy(result.output_view(), &self->pool_);
  }
  self->PostCompletion(std::move(c));
}

const std::string* ServiceServer::ResolveCodecName(uint8_t codec, uint8_t level) {
  const uint16_t key = static_cast<uint16_t>((codec << 8) | level);
  auto it = codec_names_.find(key);
  if (it == codec_names_.end()) {
    std::string name = WireCodecToName(codec, level);
    if (!name.empty() && MakeCodec(name) == nullptr) {
      name.clear();  // wire-valid but not buildable: cache as invalid
    }
    it = codec_names_.emplace(key, std::move(name)).first;
  }
  return it->second.empty() ? nullptr : &it->second;
}

namespace {
constexpr uint16_t kInvalidWireId = 0xFFFF;
}  // namespace

bool ServiceServer::WireIdForName(const std::string& name, uint8_t* codec, uint8_t* level) {
  auto it = wire_ids_.find(name);
  if (it == wire_ids_.end()) {
    uint8_t c = 0;
    uint8_t l = 0;
    const uint16_t packed = WireCodecFromName(name, &c, &l)
                                ? static_cast<uint16_t>((c << 8) | l)
                                : kInvalidWireId;
    it = wire_ids_.emplace(name, packed).first;
  }
  if (it->second == kInvalidWireId) {
    return false;
  }
  *codec = static_cast<uint8_t>(it->second >> 8);
  *level = static_cast<uint8_t>(it->second & 0xFF);
  return true;
}

Status ServiceServer::Start() {
  if (running_.load() || loop_.joinable()) {
    return Status::Internal("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind " + options_.bind_address + ":" + std::to_string(options_.port));
    Stop();
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st = Errno("listen");
    Stop();
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Errno("getsockname");
    Stop();
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Errno("epoll_create1/eventfd");
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // One sink traces the whole path: service-side spans come from the event
  // loop, runtime spans from the runtime's own threads, all on one chain.
  if (options_.trace_sink != nullptr && options_.runtime.trace_sink == nullptr) {
    options_.runtime.trace_sink = options_.trace_sink;
  }
  // Adaptive policy engine: construct with only wire-mappable, buildable
  // candidates — a decision must be expressible as a response (codec, level)
  // pair. The engine itself additionally drops MakeCodec-invalid names.
  {
    adapt::AdaptOptions aopts = options_.adapt;
    uint8_t wc = 0;
    uint8_t wl = 0;
    std::vector<std::string> mappable;
    for (const std::string& name : aopts.candidates) {
      if (WireCodecFromName(name, &wc, &wl) && name != "auto") {
        mappable.push_back(name);
      }
    }
    aopts.candidates = std::move(mappable);
    if (!WireCodecFromName(aopts.default_codec, &wc, &wl) || aopts.default_codec == "auto") {
      aopts.default_codec = "zstd-1";
    }
    adapt_ = std::make_unique<adapt::AdaptivePolicyEngine>(aopts);
  }

  // The backing runtime is always a fleet; the pre-fleet single-device
  // server is just a fleet of one built from options_.runtime.device.
  FleetOptions fleet_opts;
  fleet_opts.base = options_.runtime;
  // Reaper threads feed completion telemetry back into the cost model; the
  // server resolves AUTO itself, so members never see the "auto" name.
  fleet_opts.base.adapt_engine = adapt_.get();
  if (fleet_opts.base.output_pool == nullptr) {
    // Engine threads write codec output into the server's pool so the
    // response path can hand the same segment to sendmsg without a copy.
    fleet_opts.base.output_pool = &pool_;
  }
  fleet_opts.placement = options_.placement;
  if (options_.devices.empty()) {
    FleetDeviceSpec spec;
    spec.name = options_.runtime.device.name.empty() ? "device"
                                                     : options_.runtime.device.name;
    spec.config = options_.runtime.device;
    spec.fault_plan = options_.runtime.fault_plan;
    spec.engine_threads = options_.runtime.engine_threads;
    fleet_opts.devices.push_back(std::move(spec));
  } else {
    fleet_opts.devices = options_.devices;
  }
  runtime_ = std::make_unique<FleetRuntime>(fleet_opts);

  // Clamp the admission ceiling below what the fleet can absorb without
  // Submit() blocking. The worst case (e.g. `static` placement, or every
  // other member unhealthy) sends all admitted work to one member, so the
  // bound is the *smallest* member capacity: its in-flight slots plus one
  // submission ring. An unbounded member (queue_limit 0) doesn't constrain
  // the bound, but a fully unbounded fleet still gets a finite service
  // ceiling — "the server never queues unboundedly" is the service contract.
  uint64_t min_capacity = 0;
  uint64_t min_slots = 0;
  for (size_t i = 0; i < runtime_->device_count(); ++i) {
    const RuntimeOptions& ro = runtime_->runtime(i).options();
    uint64_t slots = ro.max_inflight > 0 ? ro.max_inflight : ro.device.queue_limit;
    if (slots == 0) {
      continue;  // unbounded member
    }
    if (min_capacity == 0 || slots + ro.ring_depth < min_capacity) {
      min_capacity = slots + ro.ring_depth;
      min_slots = slots;
    }
  }
  admission_ceiling_ = options_.admission.max_inflight;
  if (admission_ceiling_ == 0) {
    admission_ceiling_ = min_slots > 0 ? static_cast<uint32_t>(min_slots) : 1024;
  }
  if (min_capacity > 0) {
    admission_ceiling_ =
        std::min<uint64_t>(admission_ceiling_, min_capacity);
  }
  AdmissionOptions resolved = options_.admission;
  resolved.max_inflight = admission_ceiling_;
  admission_ = std::make_unique<AdmissionController>(resolved);

  stopping_.store(false);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

void ServiceServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stopping_.store(true);
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (loop_.joinable()) {
    loop_.join();
  }
  running_.store(false, std::memory_order_release);
  if (runtime_ != nullptr) {
    runtime_->Shutdown(OffloadRuntime::ShutdownMode::kDrain);
  }
  // Completions that raced the shutdown have no session to go to.
  std::vector<Completion> leftover;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    leftover.swap(completions_);
  }
  for (Completion& c : leftover) {
    if (admission_ != nullptr) {
      admission_->Complete(c.tenant_id, c.output.size(), NowNs() - c.enqueue_wall,
                           c.status.ok());
    }
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.responses_dropped;
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void ServiceServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  if (options_.trace_sink != nullptr) {
    trace_writer_ = options_.trace_sink->RegisterWriter("svc-loop");
  }
  // Prime the snapshot ring cursor so the first window delta starts here.
  window_start_ns_ = NowNs();
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    // The epoll timeout bounds capture jitter to ~100ms past the window.
    MaybeCaptureStatsWindow(NowNs());
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = sessions_.find(tag);
      if (it == sessions_.end()) {
        continue;  // closed earlier in this batch
      }
      Session* session = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseSession(tag, /*protocol_error=*/false);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        FlushOutbox(session);
        if (sessions_.find(tag) == sessions_.end()) {
          continue;  // write error closed it
        }
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(session);
      }
    }
  }
  // Drop every session; in-flight completions are counted as dropped by
  // Stop() once the runtime drains.
  std::vector<uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    ids.push_back(id);
  }
  for (uint64_t id : ids) {
    CloseSession(id, /*protocol_error=*/false);
  }
}

void ServiceServer::HandleAccept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or transient error; epoll will re-arm
    }
    if (sessions_.size() >= options_.max_sessions) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sessions_rejected;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_session_id_.fetch_add(1);
    // Legacy (pooling-off) mode also restores the pre-pool copy-out parse so
    // the mem_path experiment's baseline arm measures the old copy count.
    auto session = std::make_unique<Session>(options_.max_payload, &pool_,
                                             /*copy_payloads=*/!pool_.options().pooling);
    session->id = id;
    session->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    sessions_.emplace(id, std::move(session));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_accepted;
  }
}

void ServiceServer::HandleReadable(Session* session) {
  // recv() lands directly in the parser's pooled receive segment; decoded
  // payloads become refcounted views into it, so the socket -> runtime path
  // never stages bytes through a stack buffer. Frames are drained after
  // every recv so the read cursor advances while the burst streams in — the
  // segment recycles in place instead of accumulating the whole burst.
  constexpr size_t kRecvChunk = 16 * 1024;
  const uint64_t id = session->id;
  for (;;) {
    uint8_t* tail = session->parser.WritableTail(kRecvChunk);
    ssize_t n = ::recv(session->fd, tail, session->parser.writable(), 0);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_rx += static_cast<uint64_t>(n);
      }
      session->parser.Commit(static_cast<size_t>(n));
      for (;;) {
        uint64_t decode_start = trace_writer_ != nullptr ? trace::NowNs() : 0;
        Frame frame;
        FrameParser::Event ev = session->parser.Next(&frame);
        if (ev == FrameParser::Event::kNeedMore) {
          break;
        }
        if (ev == FrameParser::Event::kError) {
          CloseSession(id, /*protocol_error=*/true);
          return;
        }
        uint64_t decode_end = trace_writer_ != nullptr ? trace::NowNs() : 0;
        HandleRequest(session, std::move(frame), decode_start, decode_end);
        if (sessions_.find(id) == sessions_.end()) {
          return;  // request handling closed the session
        }
      }
      continue;
    }
    if (n == 0) {
      CloseSession(id, /*protocol_error=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseSession(id, /*protocol_error=*/false);
    return;
  }
}

void ServiceServer::HandleRequest(Session* session, Frame&& frame, uint64_t decode_start,
                                  uint64_t decode_end) {
  if (frame.type == FrameType::kStatsRequest) {
    HandleStatsRequest(session, frame);
    return;
  }
  if (frame.type != FrameType::kRequest) {
    // Structurally valid but semantically impossible from a client (servers
    // never receive response frames); treat it like a protocol violation
    // rather than guessing at intent.
    CloseSession(session->id, /*protocol_error=*/true);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_received;
  }

  // Sampling decision for the whole request chain: the id drawn here rides
  // the OffloadRequest so runtime spans join the service-side ones.
  uint64_t trace_id = 0;
  if (trace_writer_ != nullptr) {
    trace_id = options_.trace_sink->StartRequest();
    if (trace_id != 0) {
      trace::EmitSpan(trace_writer_, trace_id, frame.tenant_id, 0,
                      trace::Phase::kWireDecode, decode_start, decode_end);
    }
  }

  const bool decompress = (frame.flags & kFlagDecompress) != 0;

  // STOREd payloads decompress to themselves: a decompress request carrying
  // kFlagStored is answered from the event loop with the payload echoed
  // verbatim (refcount bump) — no codec, no runtime job.
  if (decompress && (frame.flags & kFlagStored) != 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_ok;
      ++stats_.stored_passthrough;
    }
    Respond(session, frame.request_id, frame.tenant_id, frame.codec, frame.level, frame.flags,
            StatusCode::kOk, std::move(frame.payload));
    return;
  }
  if ((frame.flags & kFlagStored) != 0) {
    // kFlagStored is meaningless on a compress request.
    Respond(session, frame.request_id, frame.tenant_id, frame.codec, frame.level, frame.flags,
            StatusCode::kInvalidArgument, {});
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_failed;
    return;
  }

  // What the response will echo; AUTO rewrites these to the selected codec.
  uint8_t wire_codec = frame.codec;
  uint8_t wire_level = frame.level;
  uint16_t response_flags = frame.flags;
  uint8_t adapt_class = adapt::kEntropyClassNone;
  double ratio_hint = 0.0;  // 0 = leave the runtime default
  std::string auto_codec;   // factory name the policy picked (AUTO only)

  if (frame.codec == static_cast<uint8_t>(WireCodec::kAuto)) {
    if (decompress || frame.level != 0) {
      // AUTO names no concrete stream format, so it cannot decompress, and
      // it carries no levels — the engine picks those.
      Respond(session, frame.request_id, frame.tenant_id, frame.codec, frame.level,
              frame.flags, StatusCode::kInvalidArgument, {});
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_failed;
      return;
    }
    const uint64_t adapt_start = trace_id != 0 ? trace::NowNs() : 0;
    adapt::AdaptDecision decision = adapt_->Decide(frame.payload.span(), frame.tenant_id);
    if (trace_id != 0) {
      trace::EmitSpan(trace_writer_, trace_id, frame.tenant_id, 0,
                      trace::Phase::kAdaptProfile, adapt_start, trace::NowNs());
    }
    if (decision.action == adapt::AdaptAction::kStore) {
      // Incompressible: answer immediately with the payload echoed and the
      // STORE flag set — zero codec work, zero runtime jobs; the only
      // wire-visible expansion is the fixed response header.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests_ok;
        ++stats_.requests_stored;
      }
      Respond(session, frame.request_id, frame.tenant_id, frame.codec, 0,
              static_cast<uint16_t>(frame.flags | kFlagStored), StatusCode::kOk,
              std::move(frame.payload));
      return;
    }
    if (!WireIdForName(decision.codec, &wire_codec, &wire_level)) {
      // Candidates are wire-validated at Start(); reaching this is a bug.
      Respond(session, frame.request_id, frame.tenant_id, frame.codec, frame.level,
              frame.flags, StatusCode::kInternal, {});
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests_failed;
      return;
    }
    if (decision.profile_skipped) {
      response_flags |= kFlagProfileSkipped;
    }
    adapt_class = decision.entropy_class;
    ratio_hint = decision.ratio_estimate;
    auto_codec = std::move(decision.codec);
  }

  const std::string* codec_name =
      !auto_codec.empty() ? &auto_codec : ResolveCodecName(wire_codec, wire_level);
  if (codec_name == nullptr) {
    Respond(session, frame.request_id, frame.tenant_id, frame.codec, frame.level, frame.flags,
            StatusCode::kInvalidArgument, {});
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_failed;
    return;
  }

  uint64_t admit_start = trace_id != 0 ? trace::NowNs() : 0;
  Status admit = admission_->TryAdmit(frame.tenant_id, frame.payload.size());
  if (trace_id != 0) {
    trace::EmitSpan(trace_writer_, trace_id, frame.tenant_id, 0, trace::Phase::kAdmission,
                    admit_start, trace::NowNs());
  }
  if (!admit.ok()) {
    Respond(session, frame.request_id, frame.tenant_id, frame.codec, frame.level, frame.flags,
            StatusCode::kResourceExhausted, {});
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_busy;
    return;
  }

  RequestCtx* ctx = AcquireCtx();
  ctx->meta.session_id = session->id;
  ctx->meta.request_id = frame.request_id;
  ctx->meta.tenant_id = frame.tenant_id;
  ctx->meta.codec = wire_codec;
  ctx->meta.level = wire_level;
  ctx->meta.flags = response_flags;
  ctx->meta.enqueue_wall = NowNs();
  ctx->meta.trace_id = trace_id;

  OffloadRequest req;
  req.op = decompress ? CdpuOp::kDecompress : CdpuOp::kCompress;
  // The payload view keeps the parser segment alive by refcount through
  // queueing, device retries and CPU fallback — no heap parking, no copy.
  req.input_buf = std::move(frame.payload);
  req.codec = *codec_name;
  req.adapt_class = adapt_class;
  if (ratio_hint > 0.0) {
    req.ratio_hint = ratio_hint;  // the model sizes timing off the estimate
  }
  req.queue_pair =
      static_cast<uint32_t>(session->id % runtime_->options().base.queue_pairs);
  if (trace_writer_ != nullptr) {
    // An unsampled request must stay unsampled downstream, not be re-rolled
    // by the runtime's own sampler.
    req.trace_id = trace_id != 0 ? trace_id : kTraceNone;
  }
  req.tenant = frame.tenant_id;
  req.on_complete = &ServiceServer::OnOffloadComplete;
  req.on_complete_ctx = ctx;
  uint32_t qp = req.queue_pair;
  runtime_->SubmitCallback(std::move(req));
  if (options_.flush_every_request) {
    runtime_->Flush(qp);
  }
}

void ServiceServer::PostCompletion(Completion&& completion) {
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    completions_.push_back(std::move(completion));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void ServiceServer::DrainCompletions() {
  std::vector<Completion>& batch = drain_scratch_;
  batch.clear();  // destroys last round's entries, keeps capacity
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    const uint64_t e2e_ns = NowNs() - c.enqueue_wall;
    e2e_hist_.Record(e2e_ns);
    admission_->Complete(c.tenant_id, c.output.size(), e2e_ns, c.status.ok());
    auto it = sessions_.find(c.session_id);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (c.status.ok()) {
        ++stats_.requests_ok;
      } else {
        ++stats_.requests_failed;
      }
      if (it == sessions_.end()) {
        ++stats_.responses_dropped;
      }
    }
    if (it != sessions_.end()) {
      uint64_t respond_start =
          (c.trace_id != 0 && trace_writer_ != nullptr) ? trace::NowNs() : 0;
      Respond(it->second.get(), c.request_id, c.tenant_id, c.codec, c.level, c.flags,
              c.status.ok() ? StatusCode::kOk : c.status.code(), std::move(c.output));
      if (respond_start != 0) {
        trace::EmitSpan(trace_writer_, c.trace_id, c.tenant_id, 0, trace::Phase::kResponse,
                        respond_start, trace::NowNs());
      }
    }
  }
  batch.clear();  // release output refcounts now, not at the next drain
}

void ServiceServer::MaybeCaptureStatsWindow(uint64_t now_ns) {
  const uint64_t window_ns = uint64_t{options_.stats_window_ms} * 1000000ull;
  if (window_ns == 0 || now_ns - window_start_ns_ < window_ns) {
    return;
  }
  ServiceStats snap = Snapshot();
  // Current cumulative values for the delta cursor.
  StatsWindow cum;
  cum.start_ns = window_start_ns_;
  cum.end_ns = now_ns;
  cum.requests_ok = snap.requests_ok;
  cum.requests_failed = snap.requests_failed;
  cum.requests_busy = snap.requests_busy;
  cum.bytes_rx = snap.bytes_rx;
  cum.bytes_tx = snap.bytes_tx;
  cum.e2e = snap.e2e_hist;

  StatsWindow delta;
  delta.start_ns = window_start_ns_;
  delta.end_ns = now_ns;
  delta.requests_ok = cum.requests_ok - window_prev_.requests_ok;
  delta.requests_failed = cum.requests_failed - window_prev_.requests_failed;
  delta.requests_busy = cum.requests_busy - window_prev_.requests_busy;
  delta.bytes_rx = cum.bytes_rx - window_prev_.bytes_rx;
  delta.bytes_tx = cum.bytes_tx - window_prev_.bytes_tx;
  delta.e2e = cum.e2e.DeltaSince(window_prev_.e2e);
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    windows_.push_back(std::move(delta));
    const size_t keep = std::max<uint32_t>(1, options_.stats_windows);
    while (windows_.size() > keep) {
      windows_.pop_front();
    }
  }
  window_prev_ = std::move(cum);
  window_start_ns_ = now_ns;
}

const std::string& ServiceServer::StatsJson() {
  // Memoise the rendered document briefly so a scrape storm (or `top` with a
  // short refresh) costs one render per 50ms, not one per request.
  constexpr uint64_t kMemoNs = 50ull * 1000 * 1000;
  const uint64_t now = NowNs();
  if (!stats_json_.empty() && now - stats_json_ns_ < kMemoNs) {
    return stats_json_;
  }
  // Cumulative counters are snapshotted fresh at render time (we are on the
  // event loop; Snapshot() is a handful of mutexed copies) — only the
  // short-window rates come from the tick-driven ring.
  ServiceStats snap = Snapshot();
  const uint64_t captured_ns = now;
  std::vector<StatsWindow> windows;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    windows.assign(windows_.begin(), windows_.end());
  }
  obs::MetricSet metrics;
  ExportServiceStats(snap, "svc.", &metrics);
  obs::Json doc = obs::Json::Object();
  doc["schema"] = "cdpu.svc.stats.v1";
  doc["wire_version"] = static_cast<uint64_t>(kWireVersion);
  doc["captured_ns"] = captured_ns;
  doc["age_ms"] = captured_ns > 0 ? static_cast<double>(now - captured_ns) / 1e6 : 0.0;
  doc["window_ms"] = static_cast<uint64_t>(options_.stats_window_ms);
  doc["metrics"] = metrics.ToJson();
  obs::Json warr = obs::Json::Array();
  for (const StatsWindow& w : windows) {
    obs::Json jw = obs::Json::Object();
    const double secs =
        w.end_ns > w.start_ns ? static_cast<double>(w.end_ns - w.start_ns) / 1e9 : 0.0;
    jw["seconds"] = secs;
    jw["requests_ok"] = w.requests_ok;
    jw["requests_failed"] = w.requests_failed;
    jw["requests_busy"] = w.requests_busy;
    jw["rps"] = secs > 0 ? static_cast<double>(w.requests_ok) / secs : 0.0;
    jw["rx_mbps"] = secs > 0 ? static_cast<double>(w.bytes_rx) / 1e6 / secs : 0.0;
    jw["tx_mbps"] = secs > 0 ? static_cast<double>(w.bytes_tx) / 1e6 / secs : 0.0;
    if (w.e2e.count() > 0) {
      jw["e2e_us"] = w.e2e.ToJson(1e3);
    }
    warr.push_back(std::move(jw));
  }
  doc["windows"] = std::move(warr);
  stats_json_ = doc.Dump();
  stats_json_ns_ = now;
  return stats_json_;
}

void ServiceServer::HandleStatsRequest(Session* session, const Frame& frame) {
  // Semantic checks: a stats request carries nothing but its request id and
  // tenant. Violations get an error stats response, not a session drop —
  // the frame was structurally sound, so the session survives.
  if (!frame.payload.empty() || frame.flags != 0 || frame.codec != 0 ||
      frame.level != 0 || frame.status != 0) {
    RespondStats(session, frame.request_id, frame.tenant_id,
                 StatusCode::kInvalidArgument, {});
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.stats_requests;
  }
  const std::string& json = StatsJson();
  IoBuf payload = IoBuf::Copy(
      ByteSpan(reinterpret_cast<const uint8_t*>(json.data()), json.size()), &pool_);
  RespondStats(session, frame.request_id, frame.tenant_id, StatusCode::kOk,
               std::move(payload));
}

void ServiceServer::Respond(Session* session, uint64_t request_id, uint32_t tenant_id,
                            uint8_t codec, uint8_t level, uint16_t flags, StatusCode code,
                            IoBuf payload) {
  Frame response;
  response.type = FrameType::kResponse;
  response.codec = codec;
  response.level = level;
  response.status = static_cast<uint8_t>(code);
  response.flags = flags;
  response.request_id = request_id;
  response.tenant_id = tenant_id;
  // Queue the header + a refcounted handle on the payload segment; the
  // socket write gathers both without ever flattening them into one buffer.
  session->outbox.emplace_back();
  OutMsg& msg = session->outbox.back();
  EncodeFrameHeader(response, payload.span(), msg.header.data());
  msg.payload = std::move(payload);
  FlushOutbox(session);
}

void ServiceServer::RespondStats(Session* session, uint64_t request_id, uint32_t tenant_id,
                                 StatusCode code, IoBuf payload) {
  Frame response;
  response.type = FrameType::kStatsResponse;
  response.status = static_cast<uint8_t>(code);
  response.request_id = request_id;
  response.tenant_id = tenant_id;
  session->outbox.emplace_back();
  OutMsg& msg = session->outbox.back();
  EncodeFrameHeader(response, payload.span(), msg.header.data());
  msg.payload = std::move(payload);
  FlushOutbox(session);
}

void ServiceServer::FlushOutbox(Session* session) {
  while (!session->outbox.empty()) {
    const OutMsg& front = session->outbox.front();
    const size_t off = session->outbox_offset;
    iovec iov[2];
    int iovcnt = 0;
    if (off < kHeaderBytes) {
      iov[iovcnt].iov_base = const_cast<uint8_t*>(front.header.data()) + off;
      iov[iovcnt].iov_len = kHeaderBytes - off;
      ++iovcnt;
      if (!front.payload.empty()) {
        iov[iovcnt].iov_base = const_cast<uint8_t*>(front.payload.data());
        iov[iovcnt].iov_len = front.payload.size();
        ++iovcnt;
      }
    } else {
      const size_t poff = off - kHeaderBytes;
      iov[iovcnt].iov_base = const_cast<uint8_t*>(front.payload.data()) + poff;
      iov[iovcnt].iov_len = front.payload.size() - poff;
      ++iovcnt;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = ::sendmsg(session->fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_tx += static_cast<uint64_t>(n);
      }
      session->outbox_offset += static_cast<size_t>(n);
      if (session->outbox_offset == front.size()) {
        session->outbox.pop_front();
        session->outbox_offset = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!session->want_write) {
        session->want_write = true;
        UpdateEpoll(session);
      }
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseSession(session->id, /*protocol_error=*/false);
    return;
  }
  if (session->want_write) {
    session->want_write = false;
    UpdateEpoll(session);
  }
}

void ServiceServer::UpdateEpoll(Session* session) {
  epoll_event ev{};
  ev.events = EPOLLIN | (session->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = session->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev);
}

void ServiceServer::CloseSession(uint64_t session_id, bool protocol_error) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  sessions_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sessions_closed;
  if (protocol_error) {
    ++stats_.protocol_errors;
  }
}

ServiceStats ServiceServer::Snapshot() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  if (admission_ != nullptr) {
    s.tenants = admission_->Snapshot();
  }
  if (runtime_ != nullptr) {
    s.fleet = runtime_->Snapshot();
    s.runtime = s.fleet.merged;
  }
  s.pool = pool_.Snapshot();
  s.mem_path = MemPathSnapshot();
  if (adapt_ != nullptr) {
    s.adapt = adapt_->Snapshot();
  }
  s.e2e_hist = e2e_hist_.Snapshot();
  if (options_.trace_sink != nullptr) {
    s.trace_enabled = true;
    s.trace_counters = options_.trace_sink->counters();
  }
  return s;
}

}  // namespace svc
}  // namespace cdpu
