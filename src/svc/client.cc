#include "src/svc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace cdpu {
namespace svc {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

Status FromWireStatus(uint8_t code) {
  if (code == 0) {
    return Status::Ok();
  }
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Internal("unknown wire status " + std::to_string(code));
  }
  StatusCode sc = static_cast<StatusCode>(code);
  return Status(sc, std::string("server: ") + StatusCodeName(sc));
}

}  // namespace

ServiceConnection::~ServiceConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<ServiceConnection>> ServiceConnection::Dial(const std::string& host,
                                                                   uint16_t port,
                                                                   uint64_t io_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host must be an IPv4 literal: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable("connect " + host + ":" + std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return std::unique_ptr<ServiceConnection>(new ServiceConnection(fd));
}

Status ServiceConnection::Call(const Frame& request, ByteSpan payload, Frame* response) {
  if (!healthy_) {
    return Status::Unavailable("connection poisoned by an earlier error");
  }
  uint8_t header[kHeaderBytes];
  EncodeFrameHeader(request, payload, header);
  const size_t total = kHeaderBytes + payload.size();
  size_t sent = 0;
  while (sent < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (sent < kHeaderBytes) {
      iov[iovcnt].iov_base = header + sent;
      iov[iovcnt].iov_len = kHeaderBytes - sent;
      ++iovcnt;
      if (!payload.empty()) {
        iov[iovcnt].iov_base = const_cast<uint8_t*>(payload.data());
        iov[iovcnt].iov_len = payload.size();
        ++iovcnt;
      }
    } else {
      size_t off = sent - kHeaderBytes;
      iov[iovcnt].iov_base = const_cast<uint8_t*>(payload.data()) + off;
      iov[iovcnt].iov_len = payload.size() - off;
      ++iovcnt;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      healthy_ = false;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  for (;;) {
    Frame frame;
    FrameParser::Event ev = parser_.Next(&frame);
    if (ev == FrameParser::Event::kError) {
      healthy_ = false;
      return parser_.error();
    }
    if (ev == FrameParser::Event::kFrame) {
      // A stats request must come back as a stats response; anything else
      // pairs with the ordinary response type.
      const FrameType want = request.type == FrameType::kStatsRequest
                                 ? FrameType::kStatsResponse
                                 : FrameType::kResponse;
      if (frame.type != want || frame.request_id != request.request_id) {
        healthy_ = false;
        return Status::Internal("response does not match request " +
                                std::to_string(request.request_id));
      }
      *response = std::move(frame);
      return Status::Ok();
    }
    uint8_t* tail = parser_.WritableTail(16 * 1024);
    ssize_t n = ::recv(fd_, tail, parser_.writable(), 0);
    if (n > 0) {
      parser_.Commit(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    healthy_ = false;
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

CallResult ServiceClient::Compress(const std::string& codec_name, ByteSpan payload) {
  return Call(/*decompress=*/false, codec_name, payload);
}

CallResult ServiceClient::Decompress(const std::string& codec_name, ByteSpan payload) {
  return Call(/*decompress=*/true, codec_name, payload);
}

CallResult ServiceClient::Call(bool decompress, const std::string& codec_name,
                               ByteSpan payload) {
  CallResult result;
  Frame request;
  request.type = FrameType::kRequest;
  if (!WireCodecFromName(codec_name, &request.codec, &request.level)) {
    result.status = Status::InvalidArgument("unknown codec: " + codec_name);
    return result;
  }
  request.flags = decompress ? kFlagDecompress : 0;
  return DoCall(request, payload);
}

Result<std::string> ServiceClient::FetchStats() {
  Frame request;
  request.type = FrameType::kStatsRequest;
  request.tenant_id = options_.tenant;
  Result<std::unique_ptr<ServiceConnection>> conn = Acquire();
  if (!conn.ok()) {
    return conn.status();
  }
  std::unique_ptr<ServiceConnection> connection = std::move(conn.value());
  request.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  Frame response;
  Status transport = connection->Call(request, ByteSpan(), &response);
  if (!transport.ok()) {
    return transport;  // connection is poisoned; do not pool it
  }
  Status server = FromWireStatus(response.status);
  if (!server.ok()) {
    Release(std::move(connection));
    return server;
  }
  std::string json(reinterpret_cast<const char*>(response.payload.data()),
                   response.payload.size());
  Release(std::move(connection));
  return json;
}

CallResult ServiceClient::DecompressStored(ByteSpan payload) {
  Frame request;
  request.type = FrameType::kRequest;
  request.codec = static_cast<uint8_t>(WireCodec::kAuto);
  request.flags = kFlagDecompress | kFlagStored;
  return DoCall(request, payload);
}

CallResult ServiceClient::DoCall(Frame& request, ByteSpan payload) {
  CallResult result;
  request.tenant_id = options_.tenant;
  // The payload rides as the caller's span for the whole call (including
  // BUSY retries) — the request path stages no client-side copy of it.

  uint64_t t0 = NowNs();
  Result<std::unique_ptr<ServiceConnection>> conn = Acquire();
  if (!conn.ok()) {
    result.status = conn.status();
    return result;
  }
  std::unique_ptr<ServiceConnection> connection = std::move(conn.value());

  for (uint32_t attempt = 0;; ++attempt) {
    request.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    Frame response;
    Status transport = connection->Call(request, payload, &response);
    if (!transport.ok()) {
      result.status = transport;  // connection is poisoned; do not pool it
      result.wall_ns = NowNs() - t0;
      return result;
    }
    Status server = FromWireStatus(response.status);
    if (server.code() == StatusCode::kResourceExhausted && attempt < options_.busy_retries) {
      ++result.busy_retries;
      uint32_t shift = std::min(attempt, 20u);
      uint64_t backoff_us =
          std::min(options_.busy_backoff_us << shift, options_.busy_backoff_cap_us);
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      continue;
    }
    result.status = server;
    result.output = std::move(response.payload);
    result.codec = response.codec;
    result.level = response.level;
    result.flags = response.flags;
    result.wall_ns = NowNs() - t0;
    Release(std::move(connection));
    return result;
  }
}

Result<std::unique_ptr<ServiceConnection>> ServiceClient::Acquire() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!idle_.empty()) {
      std::unique_ptr<ServiceConnection> c = std::move(idle_.back());
      idle_.pop_back();
      return c;
    }
  }
  return ServiceConnection::Dial(options_.host, options_.port, options_.io_timeout_ms);
}

void ServiceClient::Release(std::unique_ptr<ServiceConnection> connection) {
  if (connection == nullptr || !connection->healthy()) {
    return;  // discarded: destructor closes the socket
  }
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (idle_.size() < options_.max_connections) {
    idle_.push_back(std::move(connection));
  }
}

}  // namespace svc
}  // namespace cdpu
