#include "src/svc/stats_export.h"

#include "src/adapt/stats_export.h"
#include "src/runtime/stats_export.h"

namespace cdpu {
namespace svc {

void ExportServiceStats(const ServiceStats& stats, const std::string& prefix,
                        obs::MetricSet* metrics) {
  metrics->Count(prefix + "sessions_accepted", stats.sessions_accepted);
  metrics->Count(prefix + "sessions_closed", stats.sessions_closed);
  metrics->Count(prefix + "sessions_rejected", stats.sessions_rejected);
  metrics->Count(prefix + "protocol_errors", stats.protocol_errors);
  metrics->Count(prefix + "requests_received", stats.requests_received);
  metrics->Count(prefix + "requests_ok", stats.requests_ok);
  metrics->Count(prefix + "requests_busy", stats.requests_busy);
  metrics->Count(prefix + "requests_failed", stats.requests_failed);
  metrics->Count(prefix + "responses_dropped", stats.responses_dropped);
  metrics->Count(prefix + "requests_stored", stats.requests_stored);
  metrics->Count(prefix + "stored_passthrough", stats.stored_passthrough);
  metrics->Count(prefix + "stats_requests", stats.stats_requests);
  metrics->Count(prefix + "bytes_rx", stats.bytes_rx);
  metrics->Count(prefix + "bytes_tx", stats.bytes_tx);
  // Always-on e2e latency histogram (ISSUE 10), nanoseconds on the wire,
  // exported in microseconds next to the per-tenant RunningStats summaries.
  if (stats.e2e_hist.count() > 0) {
    metrics->Summary(prefix + "e2e_hist_us", stats.e2e_hist.ToJson(1e3));
  }
  // Trace-plane loss telemetry: collector drops were previously visible only
  // inside src/trace. Exported whenever a sink is wired, even at zero, so
  // dashboards can alert on the counter existing-and-rising.
  if (stats.trace_enabled) {
    const trace::TraceCounters& tc = stats.trace_counters;
    metrics->Count(prefix + "trace.spans_emitted", tc.emitted);
    metrics->Count(prefix + "trace.spans_dropped", tc.dropped_ring + tc.dropped_buffer);
    metrics->Count(prefix + "trace.spans_dropped_ring", tc.dropped_ring);
    metrics->Count(prefix + "trace.spans_dropped_buffer", tc.dropped_buffer);
    metrics->Count(prefix + "trace.spans_collected", tc.collected);
    metrics->Count(prefix + "trace.requests_sampled", tc.sampled);
    metrics->Count(prefix + "trace.requests_unsampled", tc.unsampled);
    metrics->Gauge(prefix + "trace.buffer_high_water",
                   static_cast<double>(tc.buffer_high_water));
  }
  adapt::ExportAdaptStats(stats.adapt, prefix + "adapt.", metrics);
  for (const TenantSnapshot& t : stats.tenants) {
    const std::string tp = prefix + "tenant" + std::to_string(t.tenant) + ".";
    metrics->Count(tp + "admitted", t.admitted);
    metrics->Count(tp + "rejected", t.rejected);
    metrics->Count(tp + "completed", t.completed);
    metrics->Count(tp + "failed", t.failed);
    metrics->Count(tp + "bytes_in", t.bytes_in);
    metrics->Count(tp + "bytes_out", t.bytes_out);
    metrics->Summary(tp + "wall_latency_us", obs::SummarizeRunningStats(t.wall_latency_us));
  }
  // Fleet export covers the merged runtime view plus, on multi-device
  // fleets, per-device counters and router occupancy under
  // runtime.device.<name>.* . A default-constructed fleet (no members) can
  // only mean stats came from a pre-Start snapshot; fall back to `runtime`.
  if (stats.fleet.devices.empty()) {
    ExportRuntimeStats(stats.runtime, prefix + "runtime.", metrics);
  } else {
    ExportFleetStats(stats.fleet, prefix + "runtime.", metrics);
  }
  ExportPoolStats(stats.pool, prefix + "pool.", metrics);
  ExportMemPathCounters(stats.mem_path, prefix + "mem_path.", metrics);
}

}  // namespace svc
}  // namespace cdpu
