// Bridges ServiceStats (per-session and per-tenant service counters) into
// the obs metric model, the same way src/runtime/stats_export.h bridges
// RuntimeStats. Experiments and the serve CLI use this so service telemetry
// lands in the Reporter's BENCH_*.json alongside runtime counters.

#ifndef SRC_SVC_STATS_EXPORT_H_
#define SRC_SVC_STATS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/svc/server.h"

namespace cdpu {
namespace svc {

// Exports every ServiceStats field under `prefix` (e.g. "svc."): session and
// request counters, byte tallies, and one summary + counter set per tenant
// under "<prefix>tenant<id>.". The embedded RuntimeStats are exported via
// ExportRuntimeStats under "<prefix>runtime.".
void ExportServiceStats(const ServiceStats& stats, const std::string& prefix,
                        obs::MetricSet* metrics);

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_STATS_EXPORT_H_
