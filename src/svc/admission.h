// Admission control for the compression service: queue-depth backpressure
// plus per-tenant accounting. This is the service-level twin of the SR-IOV
// arbitration study (src/virt, paper Figure 20): an unarbitrated endpoint
// lets one greedy tenant capture every in-flight slot (QAT-style), while
// weighted-fair admission holds each tenant to its share so equal offered
// load means equal admitted throughput (DP-CSD-style front-end QoS).
//
// The controller never queues: a request either takes an in-flight slot
// immediately or is rejected with kResourceExhausted (the wire-visible
// retryable BUSY). Bounding the server to slot-or-reject is what keeps the
// epoll loop non-blocking and the server's memory use independent of
// offered load.

#ifndef SRC_SVC_ADMISSION_H_
#define SRC_SVC_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/virt/sriov.h"

namespace cdpu {
namespace svc {

struct AdmissionOptions {
  // Global in-flight ceiling across all tenants (0 = unbounded). The server
  // clamps this so admitted work can never block the event loop.
  uint32_t max_inflight = 64;
  // kWeightedFair: each tenant is additionally capped at its share;
  // kUnarbitrated: only the global ceiling applies (first come, all served).
  VfArbitration arbitration = VfArbitration::kWeightedFair;
  // Fair-mode per-tenant cap. 0 derives max(1, max_inflight /
  // expected_tenants) — the equal-share split of the device queue depth.
  uint32_t per_tenant_inflight = 0;
  uint32_t expected_tenants = 4;
  // Weighted-fair shares: tenant id -> relative weight (> 0). When
  // non-empty, each listed tenant's cap is max(1, max_inflight * w / sum(w))
  // — its proportional slice of the global ceiling — and unlisted tenants
  // fall back to the equal-share cap above. Ignored in kUnarbitrated mode.
  std::unordered_map<uint32_t, double> tenant_weights;
};

struct TenantSnapshot {
  uint32_t tenant = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;   // BUSY responses
  uint64_t completed = 0;
  uint64_t failed = 0;     // completed with a non-OK status
  uint64_t bytes_in = 0;   // request payload bytes admitted
  uint64_t bytes_out = 0;  // response payload bytes
  uint32_t inflight = 0;
  RunningStats wall_latency_us;  // admit-to-completion, server side
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  // Takes an in-flight slot for `tenant` or returns kResourceExhausted.
  Status TryAdmit(uint32_t tenant, uint64_t bytes_in);

  // Releases the slot taken by TryAdmit and records the outcome.
  void Complete(uint32_t tenant, uint64_t bytes_out, uint64_t wall_ns, bool ok);

  uint32_t inflight() const;
  uint32_t per_tenant_limit() const { return per_tenant_limit_; }
  // The effective cap for one tenant (weighted slice when configured,
  // equal-share otherwise; 0 = uncapped).
  uint32_t LimitFor(uint32_t tenant) const;
  const AdmissionOptions& options() const { return options_; }

  // Tenants sorted by id.
  std::vector<TenantSnapshot> Snapshot() const;

 private:
  AdmissionOptions options_;
  uint32_t per_tenant_limit_ = 0;  // 0 = uncapped (greedy mode)
  std::unordered_map<uint32_t, uint32_t> weighted_limits_;  // precomputed caps

  mutable std::mutex mu_;
  uint32_t inflight_ = 0;
  std::unordered_map<uint32_t, TenantSnapshot> tenants_;
};

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_ADMISSION_H_
