// Client library for the compression service: blocking request/response
// connections, a small connection pool, and a retry loop for the server's
// admission BUSY. This is the library an application links instead of the
// codec suite when compression runs behind a service endpoint.
//
// Threading: ServiceClient is safe to call from many threads — each call
// checks a connection out of the pool (dialling a new one when the pool is
// empty and under max_connections) and returns it on success. Connections
// that see a transport error are discarded, never reused.
//
// BUSY handling: a response carrying kResourceExhausted is the server's
// backpressure signal, not a failure. Call() retries it with capped
// exponential backoff up to busy_retries times; the terminal BUSY (or
// busy_retries = 0) surfaces to the caller, who owns the final policy.

#ifndef SRC_SVC_CLIENT_H_
#define SRC_SVC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/svc/wire.h"

namespace cdpu {
namespace svc {

// One blocking TCP connection speaking the frame protocol.
class ServiceConnection {
 public:
  ~ServiceConnection();
  ServiceConnection(const ServiceConnection&) = delete;
  ServiceConnection& operator=(const ServiceConnection&) = delete;

  static Result<std::unique_ptr<ServiceConnection>> Dial(const std::string& host, uint16_t port,
                                                         uint64_t io_timeout_ms = 30'000);

  // Writes `request` with `payload` as its body and blocks for the matching
  // response (the protocol is strictly request/response per connection). The
  // header is encoded into a stack buffer and sent together with the
  // caller's payload span via scatter/gather — no flattened wire copy. Any
  // transport or framing failure poisons the connection.
  //
  // The response frame's payload is a refcounted view into this connection's
  // pooled receive segment; it stays valid after the connection is returned
  // to the pool (the parser re-homes around live views).
  Status Call(const Frame& request, ByteSpan payload, Frame* response);

  bool healthy() const { return healthy_; }

 private:
  explicit ServiceConnection(int fd) : fd_(fd) {}

  int fd_;
  bool healthy_ = true;
  // Receive scratch: the parser's pooled segment persists for the life of
  // the connection, so pooled connections reuse it across calls instead of
  // filling (and discarding) a fresh stack buffer per response.
  FrameParser parser_;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t tenant = 0;
  uint32_t max_connections = 4;
  // BUSY retry policy: exponential backoff from busy_backoff_us, doubled per
  // attempt, capped at busy_backoff_cap_us. 0 retries = surface BUSY.
  uint32_t busy_retries = 8;
  uint64_t busy_backoff_us = 200;
  uint64_t busy_backoff_cap_us = 20'000;
  uint64_t io_timeout_ms = 30'000;
};

struct CallResult {
  Status status;             // OK, the server's error, or a transport error
  // Refcounted view of the connection's receive buffer (zero-copy; converts
  // to ByteSpan). Holding it pins one pool segment — callers that archive
  // results long-term should copy out.
  IoBuf output;
  // Response header echo. For AUTO requests `codec`/`level` name the codec
  // the server's policy actually ran (kAuto if STOREd); stored() means the
  // payload came back verbatim and must be decompressed via
  // DecompressStored(), not a codec.
  uint8_t codec = 0;
  uint8_t level = 0;
  uint16_t flags = 0;
  bool stored() const { return (flags & kFlagStored) != 0; }
  bool profile_skipped() const { return (flags & kFlagProfileSkipped) != 0; }
  uint32_t busy_retries = 0;  // BUSY responses absorbed before this outcome
  uint64_t wall_ns = 0;       // first submit to final response
};

class ServiceClient {
 public:
  explicit ServiceClient(const ClientOptions& options) : options_(options) {}
  ~ServiceClient() = default;

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // `codec_name` is a factory name ("zstd-3", "lz4", ...) or "auto" to let
  // the server's adaptive policy pick (compress only; check
  // CallResult::stored() on the way back).
  CallResult Compress(const std::string& codec_name, ByteSpan payload);
  CallResult Decompress(const std::string& codec_name, ByteSpan payload);

  // Recovers the original bytes of a STOREd compress result (one whose
  // response carried kFlagStored): the server echoes the payload verbatim.
  CallResult DecompressStored(ByteSpan payload);

  // One-shot telemetry scrape (ISSUE 10): sends an in-band kStatsRequest and
  // returns the server's JSON snapshot document (global + per-tenant +
  // per-device + adapt + pool + trace gauges, plus the window ring). BUSY
  // never applies — the server answers from its event loop.
  Result<std::string> FetchStats();

  const ClientOptions& options() const { return options_; }

 private:
  CallResult Call(bool decompress, const std::string& codec_name, ByteSpan payload);
  CallResult DoCall(Frame& request, ByteSpan payload);
  Result<std::unique_ptr<ServiceConnection>> Acquire();
  void Release(std::unique_ptr<ServiceConnection> connection);

  ClientOptions options_;
  std::atomic<uint64_t> next_request_id_{1};

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<ServiceConnection>> idle_;
};

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_CLIENT_H_
