// Wire protocol for the compression service (src/svc): length-prefixed
// binary frames over TCP, QATzip-endpoint style. Every frame is a fixed
// 40-byte header followed by `payload_len` payload bytes:
//
//   offset  size  field
//   0       4     magic        0x5A504443 ("CDPZ", little-endian)
//   4       1     version      kWireVersion
//   5       1     type         1 = request, 2 = response
//   6       1     codec        WireCodec id (echoed in responses)
//   7       1     level        codec level, 0 = codec default
//   8       1     status       StatusCode (responses; 0 in requests)
//   9       1     reserved     must be 0
//   10      2     flags        bit 0 = decompress (default is compress)
//   12      8     request_id   client-chosen, echoed verbatim
//   20      4     tenant_id    admission/accounting identity
//   24      4     payload_len  payload bytes following the header
//   28      4     payload_crc  CRC-32 (ISO-HDLC) of the payload
//   32      4     header_crc   CRC-32 of header bytes [0, 32)
//   36      4     reserved2    must be 0 (future: deadline/priority)
//   40            payload
//
// All multi-byte fields are little-endian. The header CRC lets the parser
// reject a corrupted or misaligned header before trusting payload_len; the
// payload CRC catches payload corruption end-to-end. A frame that fails any
// structural check (magic, version, type, reserved bytes, oversized
// payload, either CRC) is a *protocol error*: the server drops the session,
// because nothing downstream of a bad length field can be trusted. A
// well-formed request the server cannot satisfy (unknown codec, admission
// BUSY, codec failure) gets a response frame carrying a non-OK status
// instead.

#ifndef SRC_SVC_WIRE_H_
#define SRC_SVC_WIRE_H_

#include <cstdint>
#include <string>

#include "src/codecs/codec.h"
#include "src/common/status.h"

namespace cdpu {
namespace svc {

inline constexpr uint32_t kWireMagic = 0x5A504443;  // "CDPZ"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderBytes = 40;
// Hard payload ceiling; ServerOptions/FrameParser may tighten it further.
inline constexpr size_t kMaxPayloadBytes = 64u * 1024 * 1024;

enum class FrameType : uint8_t { kRequest = 1, kResponse = 2 };

// Stable wire ids for the codec suite. Levels ride in the separate `level`
// byte so e.g. deflate-1 and deflate-9 share an id.
enum class WireCodec : uint8_t {
  kDeflate = 0,
  kGzip = 1,
  kZstd = 2,
  kLz4 = 3,
  kSnappy = 4,
  kDpzip = 5,
};
inline constexpr uint8_t kNumWireCodecs = 6;

// Request flag bits.
inline constexpr uint16_t kFlagDecompress = 1u << 0;

// Maps a factory codec name ("zstd-3", "deflate", "lz4", ...) to its wire
// (codec, level) pair. Returns false for names MakeCodec would reject.
bool WireCodecFromName(const std::string& name, uint8_t* codec, uint8_t* level);

// Inverse mapping; returns "" for out-of-range codec ids. level 0 yields
// the bare codec name (the factory default level).
std::string WireCodecToName(uint8_t codec, uint8_t level);

// One decoded frame. `status` carries a StatusCode value on responses.
struct Frame {
  FrameType type = FrameType::kRequest;
  uint8_t codec = 0;
  uint8_t level = 0;
  uint8_t status = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t tenant_id = 0;
  ByteVec payload;
};

// Serialises `frame` (computing both CRCs) and appends it to `*out`.
void AppendFrame(const Frame& frame, ByteVec* out);
ByteVec EncodeFrame(const Frame& frame);

// Incremental frame decoder for a non-blocking byte stream. Feed() raw
// socket bytes, then call Next() until it stops returning kFrame. Once a
// structural error is detected the parser is poisoned: every subsequent
// Next() returns kError and the session must be dropped.
class FrameParser {
 public:
  explicit FrameParser(size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload < kMaxPayloadBytes ? max_payload : kMaxPayloadBytes) {}

  void Feed(ByteSpan data);

  enum class Event { kFrame, kNeedMore, kError };
  Event Next(Frame* out);

  const Status& error() const { return error_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  ByteVec buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status error_;
};

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_WIRE_H_
