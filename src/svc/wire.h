// Wire protocol for the compression service (src/svc): length-prefixed
// binary frames over TCP, QATzip-endpoint style. Every frame is a fixed
// 40-byte header followed by `payload_len` payload bytes:
//
//   offset  size  field
//   0       4     magic        0x5A504443 ("CDPZ", little-endian)
//   4       1     version      in [kMinWireVersion, kWireVersion]
//   5       1     type         1 = request, 2 = response,
//                              3 = stats request, 4 = stats response
//   6       1     codec        WireCodec id (echoed in responses)
//   7       1     level        codec level, 0 = codec default
//   8       1     status       StatusCode (responses; 0 in requests)
//   9       1     reserved     must be 0
//   10      2     flags        bit 0 = decompress, bit 1 = stored,
//                              bit 2 = profile skipped; others must be 0
//   12      8     request_id   client-chosen, echoed verbatim
//   20      4     tenant_id    admission/accounting identity
//   24      4     payload_len  payload bytes following the header
//   28      4     payload_crc  CRC-32 (ISO-HDLC) of the payload
//   32      4     header_crc   CRC-32 of header bytes [0, 32)
//   36      4     reserved2    must be 0 (future: deadline/priority)
//   40            payload
//
// All multi-byte fields are little-endian. The header CRC lets the parser
// reject a corrupted or misaligned header before trusting payload_len; the
// payload CRC catches payload corruption end-to-end. A frame that fails any
// structural check (magic, version, type, reserved bytes, unknown flag
// bits, oversized payload, either CRC) is a *protocol error*: the server
// drops the session,
// because nothing downstream of a bad length field can be trusted. A
// well-formed request the server cannot satisfy (unknown codec, admission
// BUSY, codec failure) gets a response frame carrying a non-OK status
// instead.
//
// Memory path (ISSUE 8): the parser accumulates socket bytes in refcounted
// pool segments and hands each decoded payload out as an IoBuf *view* into
// the segment it arrived in — no per-frame copy. Callers recv() straight
// into WritableTail()/Commit() to skip the staging copy entirely; Feed()
// remains as the copying compatibility path. On the encode side
// EncodeFrameHeader() emits just the 40-byte header so responses can be
// written with scatter/gather I/O from the buffer the payload already
// occupies.

#ifndef SRC_SVC_WIRE_H_
#define SRC_SVC_WIRE_H_

#include <cstdint>
#include <string>

#include "src/codecs/codec.h"
#include "src/common/iobuf.h"
#include "src/common/status.h"

namespace cdpu {
namespace svc {

inline constexpr uint32_t kWireMagic = 0x5A504443;  // "CDPZ"
// v2 (ISSUE 9): AUTO codec id, STORE/PROFILE_SKIPPED response flags, and a
// known-flags structural check (unknown flag bits poison the session the
// same way nonzero reserved bytes do).
// v3 (ISSUE 10): in-band stats introspection — the kStatsRequest /
// kStatsResponse frame pair. The header layout is unchanged, so the parser
// accepts the whole [kMinWireVersion, kWireVersion] range and v2 clients
// keep working untouched; v1 frames are still a structural error.
inline constexpr uint8_t kWireVersion = 3;
inline constexpr uint8_t kMinWireVersion = 2;
inline constexpr size_t kHeaderBytes = 40;
// Hard payload ceiling; ServerOptions/FrameParser may tighten it further.
inline constexpr size_t kMaxPayloadBytes = 64u * 1024 * 1024;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  // v3: live telemetry. A stats request carries no payload (codec/level/
  // flags/status must all be 0 — violations get an error kStatsResponse,
  // not a session drop); the response payload is a JSON snapshot document.
  kStatsRequest = 3,
  kStatsResponse = 4,
};

// Stable wire ids for the codec suite. Levels ride in the separate `level`
// byte so e.g. deflate-1 and deflate-9 share an id.
enum class WireCodec : uint8_t {
  kDeflate = 0,
  kGzip = 1,
  kZstd = 2,
  kLz4 = 3,
  kSnappy = 4,
  kDpzip = 5,
  // v2: "pick for me". The server's adaptive policy engine profiles the
  // payload and either compresses with the codec it selects (echoed in the
  // response codec/level bytes) or stores it verbatim with kFlagStored set.
  // Only valid on compress requests with level 0.
  kAuto = 6,
};
inline constexpr uint8_t kNumWireCodecs = 7;

// Flag bits. kFlagDecompress is a request flag; kFlagStored travels both
// ways (responses mark STORE-bypassed payloads with it, and a decompress
// request carrying it asks for the stored payload back verbatim);
// kFlagProfileSkipped is response-only telemetry. Any other bit set is a
// structural protocol error (v2).
inline constexpr uint16_t kFlagDecompress = 1u << 0;
inline constexpr uint16_t kFlagStored = 1u << 1;
inline constexpr uint16_t kFlagProfileSkipped = 1u << 2;
inline constexpr uint16_t kKnownFlagsMask = kFlagDecompress | kFlagStored | kFlagProfileSkipped;

// Maps a codec name ("zstd-3", "deflate", "lz4", ..., or the pseudo-codec
// "auto") to its wire (codec, level) pair. Returns false for any other name.
bool WireCodecFromName(const std::string& name, uint8_t* codec, uint8_t* level);

// Inverse mapping; returns "" for out-of-range codec ids. level 0 yields
// the bare codec name (the factory default level).
std::string WireCodecToName(uint8_t codec, uint8_t level);

// One decoded frame. `status` carries a StatusCode value on responses.
// `payload` is a refcounted view into the parser's receive segment (or an
// owned buffer on the encode side); holding it keeps the backing segment
// alive, so the bytes stay valid across queueing, offload retries and the
// response write without ever being copied.
struct Frame {
  FrameType type = FrameType::kRequest;
  uint8_t codec = 0;
  uint8_t level = 0;
  uint8_t status = 0;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t tenant_id = 0;
  IoBuf payload;
};

// Serialises the fixed header for `frame` over the given payload bytes
// (computing both CRCs) into out[0, kHeaderBytes). The payload itself is
// not written — pair the header with the payload via writev().
void EncodeFrameHeader(const Frame& frame, ByteSpan payload, uint8_t* out);

// Serialises `frame` (header + payload) and appends it to `*out`.
void AppendFrame(const Frame& frame, ByteVec* out);
ByteVec EncodeFrame(const Frame& frame);

// Incremental frame decoder for a non-blocking byte stream. Ingest bytes
// either zero-copy (recv into WritableTail(), then Commit()) or via the
// copying Feed(); then call Next() until it stops returning kFrame. Once a
// structural error is detected the parser is poisoned: every subsequent
// Next() returns kError and the session must be dropped.
//
// Buffering is an offset cursor over one pooled segment: consuming a frame
// advances the read cursor (O(1), never an erase), the segment is reused in
// place once every outstanding payload view has been released, and when a
// frame outgrows the remaining tail the unconsumed remainder (at most one
// partial frame) is re-homed into a fresh segment — so a burst of pipelined
// frames costs O(bytes), not O(frames * bytes).
class FrameParser {
 public:
  explicit FrameParser(size_t max_payload = kMaxPayloadBytes, BufferPool* pool = nullptr,
                       bool copy_payloads = false);

  void Feed(ByteSpan data);

  // Zero-copy ingest: returns a pointer to at least min(min_bytes,
  // max-frame-size) writable bytes, growing or re-homing the segment as
  // needed; write into it and Commit() what was actually produced.
  uint8_t* WritableTail(size_t min_bytes);
  size_t writable() const;
  void Commit(size_t n);

  enum class Event { kFrame, kNeedMore, kError };
  Event Next(Frame* out);

  const Status& error() const { return error_; }
  size_t buffered() const { return wpos_ - rpos_; }

 private:
  void EnsureWritable(size_t min_bytes);

  size_t max_payload_;
  BufferPool* pool_;
  bool copy_payloads_;  // legacy mode: copy payloads out instead of viewing
  IoBuf buf_;           // current receive segment (len == full capacity)
  size_t rpos_ = 0;     // consumed prefix
  size_t wpos_ = 0;     // committed bytes
  Status error_;
};

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_WIRE_H_
