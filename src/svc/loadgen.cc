#include "src/svc/loadgen.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "src/codecs/codec.h"
#include "src/svc/client.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace svc {
namespace {

struct WorkerOutcome {
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t verify_failures = 0;
  uint64_t busy = 0;
  uint64_t stored = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t calls = 0;  // measured wire calls (compress + verify decompress)
  SampleSet latency_us;
  uint32_t tenant = 0;
};

}  // namespace

Result<LoadGenReport> RunClosedLoop(const LoadGenOptions& options) {
  if (options.clients == 0 || options.requests_per_client == 0) {
    return Status::InvalidArgument("clients and requests_per_client must be positive");
  }
  // Wire-name validation (not MakeCodec): the server resolves the codec, and
  // the pseudo-codec "auto" is a valid request even though no local codec
  // instance backs it.
  {
    uint8_t wc = 0;
    uint8_t wl = 0;
    if (!WireCodecFromName(options.codec, &wc, &wl)) {
      return Status::InvalidArgument("unknown codec: " + options.codec);
    }
  }

  // Fail fast if the server is unreachable, before spawning threads.
  {
    Result<std::unique_ptr<ServiceConnection>> probe =
        ServiceConnection::Dial(options.host, options.port);
    if (!probe.ok()) {
      return probe.status();
    }
  }

  std::vector<WorkerOutcome> outcomes(options.clients);
  // One shared always-on histogram for the measured phase: recording is a
  // couple of relaxed fetch_adds, so all workers write into it directly.
  obs::LatencyHistogram latency_hist;
  std::vector<std::thread> workers;
  workers.reserve(options.clients);
  // Two barriers bracket the measured phase: the main thread snapshots the
  // mem-path counters and starts the clock after every worker has finished
  // warm-up, and before any worker issues a measured request.
  std::barrier warmup_done(static_cast<std::ptrdiff_t>(options.clients) + 1);
  std::barrier measure_start(static_cast<std::ptrdiff_t>(options.clients) + 1);
  for (uint32_t w = 0; w < options.clients; ++w) {
    workers.emplace_back([&, w] {
      WorkerOutcome& out = outcomes[w];
      out.tenant = w % std::max(1u, options.tenants);

      ClientOptions copts;
      copts.host = options.host;
      copts.port = options.port;
      copts.tenant = out.tenant;
      copts.max_connections = 1;  // closed loop: one connection per client
      copts.busy_retries = options.busy_retries;
      copts.busy_backoff_us = options.busy_backoff_us;
      ServiceClient client(copts);

      ByteVec payload =
          GenerateWithRatio(options.target_ratio, options.payload_bytes, options.seed + w);
      // Verify with what the server actually did: STOREd results round-trip
      // through the passthrough, AUTO results through the echoed codec.
      auto verify_decompress = [&](const CallResult& c) {
        if (c.stored()) {
          return client.DecompressStored(c.output);
        }
        std::string echoed = WireCodecToName(c.codec, c.level);
        return client.Decompress(echoed.empty() ? options.codec : echoed, c.output);
      };

      for (uint64_t i = 0; i < options.warmup_requests_per_client; ++i) {
        CallResult c = client.Compress(options.codec, payload);
        if (c.status.ok() && options.verify) {
          verify_decompress(c);
        }
      }
      warmup_done.arrive_and_wait();
      measure_start.arrive_and_wait();
      for (uint64_t i = 0; i < options.requests_per_client; ++i) {
        CallResult c = client.Compress(options.codec, payload);
        ++out.calls;
        out.busy += c.busy_retries;
        if (!c.status.ok()) {
          ++out.failed;
          continue;
        }
        out.latency_us.Add(static_cast<double>(c.wall_ns) / 1e3);
        latency_hist.Record(c.wall_ns);
        out.bytes_in += payload.size();
        out.bytes_out += c.output.size();
        if (c.stored()) {
          ++out.stored;
        }
        if (options.verify) {
          CallResult d = verify_decompress(c);
          ++out.calls;
          out.busy += d.busy_retries;
          if (!d.status.ok()) {
            ++out.failed;
            continue;
          }
          if (d.output.size() != payload.size() ||
              !std::equal(d.output.begin(), d.output.end(), payload.begin())) {
            ++out.verify_failures;
            continue;
          }
        }
        ++out.ok;
      }
    });
  }
  warmup_done.arrive_and_wait();
  MemPathCounters mem0 = MemPathSnapshot();
  auto t0 = std::chrono::steady_clock::now();
  measure_start.arrive_and_wait();
  for (std::thread& w : workers) {
    w.join();
  }

  LoadGenReport report;
  report.latency_hist = latency_hist.Snapshot();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  MemPathCounters mem1 = MemPathSnapshot();
  report.mem_path.buffer_allocs = mem1.buffer_allocs - mem0.buffer_allocs;
  report.mem_path.buffer_alloc_bytes = mem1.buffer_alloc_bytes - mem0.buffer_alloc_bytes;
  report.mem_path.payload_copies = mem1.payload_copies - mem0.payload_copies;
  report.mem_path.payload_copy_bytes = mem1.payload_copy_bytes - mem0.payload_copy_bytes;
  std::map<uint32_t, TenantLoadStats> tenants;
  for (WorkerOutcome& out : outcomes) {
    report.requests_ok += out.ok;
    report.requests_failed += out.failed;
    report.verify_failures += out.verify_failures;
    report.busy_rejections += out.busy;
    report.requests_stored += out.stored;
    report.bytes_in += out.bytes_in;
    report.bytes_out += out.bytes_out;
    report.measured_calls += out.calls;
    TenantLoadStats& t = tenants[out.tenant];
    t.tenant = out.tenant;
    t.ok += out.ok;
    t.bytes_in += out.bytes_in;
    for (double sample : out.latency_us.samples()) {
      report.latency_us.Add(sample);
      t.latency_us.Add(sample);
    }
  }
  report.tenants.reserve(tenants.size());
  for (auto& [id, t] : tenants) {
    report.tenants.push_back(std::move(t));
  }
  return report;
}

}  // namespace svc
}  // namespace cdpu
