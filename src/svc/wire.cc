#include "src/svc/wire.h"

#include <algorithm>
#include <cstring>

#include "src/common/crc32.h"

namespace cdpu {
namespace svc {
namespace {

// Default receive-segment size: big enough that a quick-preset request
// (4 KB / 64 KB payloads) plus pipelined successors usually fit in one
// segment, small enough that idle sessions don't pin much pool memory.
constexpr size_t kParserSegmentBytes = 64 * 1024;

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

struct CodecNameEntry {
  WireCodec codec;
  const char* base;   // factory base name
  bool has_levels;    // accepts a "-<level>" suffix
  uint8_t min_level;
  uint8_t max_level;
};

constexpr CodecNameEntry kCodecNames[] = {
    {WireCodec::kDeflate, "deflate", true, 1, 9},
    {WireCodec::kGzip, "gzip", true, 1, 9},
    {WireCodec::kZstd, "zstd", true, 1, 12},
    {WireCodec::kLz4, "lz4", false, 0, 0},
    {WireCodec::kSnappy, "snappy", false, 0, 0},
    {WireCodec::kDpzip, "dpzip", false, 0, 0},
    {WireCodec::kAuto, "auto", false, 0, 0},  // pseudo-codec, not a factory name
};

}  // namespace

bool WireCodecFromName(const std::string& name, uint8_t* codec, uint8_t* level) {
  for (const CodecNameEntry& e : kCodecNames) {
    std::string base(e.base);
    if (name == base) {
      *codec = static_cast<uint8_t>(e.codec);
      *level = 0;
      return true;
    }
    if (e.has_levels && name.size() > base.size() + 1 && name.compare(0, base.size(), base) == 0 &&
        name[base.size()] == '-') {
      const std::string digits = name.substr(base.size() + 1);
      if (digits.empty() || digits.size() > 2) {
        return false;
      }
      unsigned parsed = 0;
      for (char c : digits) {
        if (c < '0' || c > '9') {
          return false;
        }
        parsed = parsed * 10 + static_cast<unsigned>(c - '0');
      }
      if (parsed < e.min_level || parsed > e.max_level) {
        return false;
      }
      *codec = static_cast<uint8_t>(e.codec);
      *level = static_cast<uint8_t>(parsed);
      return true;
    }
  }
  return false;
}

std::string WireCodecToName(uint8_t codec, uint8_t level) {
  for (const CodecNameEntry& e : kCodecNames) {
    if (static_cast<uint8_t>(e.codec) != codec) {
      continue;
    }
    if (level == 0 || !e.has_levels) {
      return e.base;
    }
    if (level < e.min_level || level > e.max_level) {
      return "";
    }
    return std::string(e.base) + "-" + std::to_string(level);
  }
  return "";
}

void EncodeFrameHeader(const Frame& frame, ByteSpan payload, uint8_t* out) {
  std::memset(out, 0, kHeaderBytes);
  PutU32(out + 0, kWireMagic);
  out[4] = kWireVersion;
  out[5] = static_cast<uint8_t>(frame.type);
  out[6] = frame.codec;
  out[7] = frame.level;
  out[8] = frame.status;
  out[9] = 0;
  PutU16(out + 10, frame.flags);
  PutU64(out + 12, frame.request_id);
  PutU32(out + 20, frame.tenant_id);
  PutU32(out + 24, static_cast<uint32_t>(payload.size()));
  PutU32(out + 28, Crc32(payload));
  PutU32(out + 32, Crc32(ByteSpan(out, 32)));
  PutU32(out + 36, 0);
}

void AppendFrame(const Frame& frame, ByteVec* out) {
  uint8_t header[kHeaderBytes];
  EncodeFrameHeader(frame, frame.payload.span(), header);
  out->insert(out->end(), header, header + kHeaderBytes);
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

ByteVec EncodeFrame(const Frame& frame) {
  ByteVec out;
  out.reserve(kHeaderBytes + frame.payload.size());
  AppendFrame(frame, &out);
  return out;
}

FrameParser::FrameParser(size_t max_payload, BufferPool* pool, bool copy_payloads)
    : max_payload_(max_payload),
      pool_(pool != nullptr ? pool : &BufferPool::Default()),
      copy_payloads_(copy_payloads) {}

void FrameParser::EnsureWritable(size_t min_bytes) {
  const size_t live = buffered();
  // Fast paths: the tail already fits, or the whole segment is consumed and
  // no outstanding payload view pins it — rewind the cursors in place.
  if (buf_.capacity() != 0) {
    if (live == 0 && buf_.unique()) {
      rpos_ = 0;
      wpos_ = 0;
    }
    if (buf_.capacity() - wpos_ >= min_bytes) {
      return;
    }
  }
  // Re-home: move the unconsumed remainder (at most one partial frame) into
  // a fresh segment sized for the whole frame when the header already tells
  // us how big it will be. The old segment stays alive — refcounted — until
  // the last payload view into it is released.
  size_t need = live + std::max(min_bytes, kParserSegmentBytes);
  if (live >= kHeaderBytes) {
    const uint8_t* h = buf_.data() + rpos_;
    if (GetU32(h) == kWireMagic && h[4] >= kMinWireVersion && h[4] <= kWireVersion) {
      const uint64_t frame_len =
          kHeaderBytes + std::min<uint64_t>(GetU32(h + 24), max_payload_);
      need = std::max<size_t>(need, static_cast<size_t>(frame_len));
    }
  }
  IoBuf next = pool_->Allocate(need);
  next.Resize(next.capacity());  // the parser addresses the full segment
  if (live > 0) {
    std::memcpy(next.data(), buf_.data() + rpos_, live);
    NotePayloadCopy(live);  // re-home copies count against the memory path
  }
  buf_ = std::move(next);
  rpos_ = 0;
  wpos_ = live;
}

uint8_t* FrameParser::WritableTail(size_t min_bytes) {
  EnsureWritable(std::max<size_t>(min_bytes, 1));
  return buf_.data() + wpos_;
}

size_t FrameParser::writable() const {
  return buf_.capacity() > wpos_ ? buf_.capacity() - wpos_ : 0;
}

void FrameParser::Commit(size_t n) { wpos_ += std::min(n, writable()); }

void FrameParser::Feed(ByteSpan data) {
  if (!error_.ok() || data.empty()) {
    return;  // poisoned parsers drop everything
  }
  std::memcpy(WritableTail(data.size()), data.data(), data.size());
  Commit(data.size());
}

FrameParser::Event FrameParser::Next(Frame* out) {
  if (!error_.ok()) {
    return Event::kError;
  }
  if (buffered() < kHeaderBytes) {
    return Event::kNeedMore;
  }
  const uint8_t* h = buf_.data() + rpos_;
  if (GetU32(h) != kWireMagic) {
    error_ = Status::CorruptData("bad frame magic");
    return Event::kError;
  }
  if (h[4] < kMinWireVersion || h[4] > kWireVersion) {
    error_ = Status::InvalidArgument("unsupported wire version " + std::to_string(h[4]));
    return Event::kError;
  }
  const uint8_t type = h[5];
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kStatsResponse)) {
    error_ = Status::InvalidArgument("unknown frame type " + std::to_string(type));
    return Event::kError;
  }
  if (h[9] != 0 || GetU32(h + 36) != 0) {
    error_ = Status::InvalidArgument("nonzero reserved header bytes");
    return Event::kError;
  }
  const uint16_t flags = GetU16(h + 10);
  if ((flags & ~kKnownFlagsMask) != 0) {
    error_ = Status::InvalidArgument("unknown flag bits " + std::to_string(flags));
    return Event::kError;
  }
  const uint32_t payload_len = GetU32(h + 24);
  if (payload_len > max_payload_) {
    error_ = Status::ResourceExhausted("frame payload " + std::to_string(payload_len) +
                                       " exceeds limit " + std::to_string(max_payload_));
    return Event::kError;
  }
  if (GetU32(h + 32) != Crc32(ByteSpan(h, 32))) {
    error_ = Status::CorruptData("header CRC mismatch");
    return Event::kError;
  }
  if (buffered() < kHeaderBytes + payload_len) {
    return Event::kNeedMore;
  }
  const uint8_t* payload = h + kHeaderBytes;
  if (GetU32(h + 28) != Crc32(ByteSpan(payload, payload_len))) {
    error_ = Status::CorruptData("payload CRC mismatch");
    return Event::kError;
  }

  out->type = static_cast<FrameType>(type);
  out->codec = h[6];
  out->level = h[7];
  out->status = h[8];
  out->flags = flags;
  out->request_id = GetU64(h + 12);
  out->tenant_id = GetU32(h + 20);
  if (copy_payloads_) {
    out->payload = IoBuf::Copy(ByteSpan(payload, payload_len), pool_);
  } else {
    out->payload = buf_.View(rpos_ + kHeaderBytes, payload_len);
  }
  rpos_ += kHeaderBytes + payload_len;
  return Event::kFrame;
}

}  // namespace svc
}  // namespace cdpu
