// Closed-loop load generator for the compression service: N client threads,
// each with its own connection, each keeping exactly one request in flight
// (YCSB-style closed loop). Every compress is optionally verified by a
// decompress round trip and a byte comparison, so the loadgen doubles as an
// end-to-end correctness oracle — under fault injection the count of
// verified round trips must still equal the offered count.

#ifndef SRC_SVC_LOADGEN_H_
#define SRC_SVC_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/iobuf.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/obs/hist.h"

namespace cdpu {
namespace svc {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t clients = 4;          // closed-loop threads
  uint32_t tenants = 2;          // client i presents as tenant i % tenants
  uint64_t requests_per_client = 64;
  size_t payload_bytes = 65536;
  std::string codec = "zstd-1";
  double target_ratio = 0.4;     // payload compressibility dial
  bool verify = true;            // decompress + compare every round trip
  uint64_t seed = 0x10adULL;
  uint32_t busy_retries = 64;    // generous: closed-loop clients wait out BUSY
  uint64_t busy_backoff_us = 100;
  // Unmeasured requests per client issued before the measured phase, so pool
  // freelists / job freelists / codec scratch reach steady state first. The
  // mem-path counters below are snapshotted after every client finishes
  // warm-up (barrier) and again after the measured phase.
  uint64_t warmup_requests_per_client = 0;
};

struct TenantLoadStats {
  uint32_t tenant = 0;
  uint64_t ok = 0;
  uint64_t bytes_in = 0;
  SampleSet latency_us;  // client-observed compress latency
};

struct LoadGenReport {
  uint64_t requests_ok = 0;       // verified (or completed, if !verify) round trips
  uint64_t requests_failed = 0;   // terminal errors (incl. terminal BUSY)
  uint64_t verify_failures = 0;   // decompressed bytes differed
  uint64_t busy_rejections = 0;   // BUSY responses absorbed by retries
  uint64_t requests_stored = 0;   // responses carrying the STORE bypass flag
  uint64_t bytes_in = 0;          // original payload bytes offered
  uint64_t bytes_out = 0;         // compressed bytes received
  double wall_seconds = 0;        // measured phase only (excludes warm-up)
  SampleSet latency_us;           // per-compress client-observed latency
  // Histogram view of the same compress latencies (ISSUE 10), recorded in
  // nanoseconds into one shared lock-free histogram as the workers run —
  // the tail percentiles (p999) come from here, exact to the bucket bound,
  // instead of from the sample vector.
  obs::HistogramSnapshot latency_hist;
  std::vector<TenantLoadStats> tenants;

  // Process-wide data-path counter deltas across the measured phase, and the
  // wire calls (compress + verify decompress) that produced them. Only
  // meaningful when server and loadgen share the process (loopback benches).
  MemPathCounters mem_path;
  uint64_t measured_calls = 0;

  double throughput_mbps() const {
    return wall_seconds > 0 ? static_cast<double>(bytes_in) / 1e6 / wall_seconds : 0;
  }
  double allocs_per_request() const {
    return measured_calls > 0
               ? static_cast<double>(mem_path.buffer_allocs) / static_cast<double>(measured_calls)
               : 0;
  }
  double copies_per_request() const {
    return measured_calls > 0
               ? static_cast<double>(mem_path.payload_copies) / static_cast<double>(measured_calls)
               : 0;
  }
};

// Runs the closed loop to completion. Fails only on setup errors (bad codec
// name, unreachable server); per-request failures are reported as counts.
Result<LoadGenReport> RunClosedLoop(const LoadGenOptions& options);

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_LOADGEN_H_
