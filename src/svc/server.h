// Compression-as-a-service endpoint: an epoll-based TCP server fronting the
// parallel offload runtime, the way QATzip-style deployments front the
// accelerator with a service socket instead of linking it in-process.
//
//   clients ──TCP──► epoll loop ──► FrameParser ──► AdmissionController
//                      ▲                               │ slot or BUSY
//                      │ eventfd                       ▼
//                  completion queue ◄── reaper ◄── OffloadRuntime
//                                                  (faults / retries /
//                                                   CPU fallback intact)
//
// One event-loop thread owns every socket: non-blocking accept, read,
// frame parsing, admission and response writes all happen there, so session
// state needs no locking. Accepted requests are submitted to the
// OffloadRuntime (whose dispatcher/engine/reaper threads do the work); the
// completion callback runs on the runtime's reaper thread and hands the
// result back to the loop through a mutex-guarded queue plus an eventfd
// wake-up. A session that dies with requests in flight just loses its
// responses — the admission slot is still released when the job completes,
// and no other session is disturbed.
//
// Backpressure contract: the server never queues a request it cannot start.
// The admission ceiling is clamped below the runtime's own capacity
// (in-flight slots + one submission ring), so OffloadRuntime::Submit can
// never block the event loop; anything beyond the ceiling is answered
// immediately with a retryable BUSY (kResourceExhausted on the wire).

#ifndef SRC_SVC_SERVER_H_
#define SRC_SVC_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/adapt/policy.h"
#include "src/runtime/fleet.h"
#include "src/runtime/offload_runtime.h"
#include "src/svc/admission.h"
#include "src/svc/wire.h"

namespace cdpu {
namespace svc {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
  uint32_t max_sessions = 256;
  size_t max_payload = kMaxPayloadBytes;
  // Request-path buffer pool (ISSUE 8): sizes the server-owned BufferPool
  // that backs parser receive segments, request payloads and codec output.
  // Setting pool.pooling=false keeps the identical code path but sends every
  // buffer to the heap — the legacy arm of the mem_path experiment (payloads
  // are then also copied out of the receive buffer, pre-pool behaviour).
  PoolOptions pool;
  AdmissionOptions admission;
  // Ring the runtime doorbell after every submission instead of waiting for
  // a full batch or the coalescing window. A service answering closed-loop
  // clients wants the doorbell immediately; batch-oriented callers can turn
  // this off to recover doorbell coalescing.
  bool flush_every_request = true;
  // Device model, engine threads, fault plan and recovery policy for the
  // backing runtime. `runtime.codec` is a default only — every request
  // names its own codec on the wire. With a multi-device fleet (below),
  // these are the shared per-member knobs; runtime.device / runtime.
  // fault_plan are overridden per member.
  RuntimeOptions runtime;
  // Device fleet (ISSUE 7). Empty = a fleet of one built from
  // runtime.device, which behaves exactly like the pre-fleet server. With
  // more than one member, `placement` decides which device serves each
  // request and per-device occupancy appears in ServiceStats::fleet.
  std::vector<FleetDeviceSpec> devices;
  PlacementOptions placement;
  // Adaptive compression policy (ISSUE 9) for requests naming the AUTO
  // wire codec: payload profiling, incompressible STORE bypass and online
  // codec/level selection. The engine is always constructed; adapt.enabled
  // = false degrades AUTO to adapt.default_codec with the PROFILE_SKIPPED
  // response flag. Candidate codecs that are not wire-mappable are dropped
  // at Start() (a STORE response must be able to echo a concrete codec id).
  adapt::AdaptOptions adapt;
  // Optional end-to-end tracing (not owned; must outlive the server). The
  // event loop draws the trace id at frame decode, brackets the service-side
  // phases (wire_decode / admission / response), and passes the id through
  // the OffloadRequest so the runtime's spans join the same chain. Also
  // propagated to runtime.trace_sink if that is unset.
  trace::TraceSink* trace_sink = nullptr;
  // Telemetry snapshot ring (ISSUE 10): the event loop captures a stats
  // window every stats_window_ms into a ring of the last stats_windows
  // deltas (request/byte rates + an e2e latency histogram delta), and
  // refreshes the cached cumulative snapshot that in-band kStatsRequest
  // frames are answered from — a scrape never reaches past the event loop.
  uint32_t stats_window_ms = 500;
  uint32_t stats_windows = 16;
};

struct ServiceStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_closed = 0;
  uint64_t sessions_rejected = 0;  // over max_sessions
  uint64_t protocol_errors = 0;    // sessions dropped for malformed frames
  uint64_t requests_received = 0;  // well-formed request frames
  uint64_t requests_ok = 0;
  uint64_t requests_busy = 0;      // admission rejections (wire BUSY)
  uint64_t requests_failed = 0;    // non-OK completions (bad codec, codec error)
  uint64_t responses_dropped = 0;  // session closed before its completion
  uint64_t requests_stored = 0;      // AUTO requests answered via STORE bypass
  uint64_t stored_passthrough = 0;   // decompress requests for STOREd payloads
  uint64_t stats_requests = 0;     // in-band kStatsRequest frames served
  uint64_t bytes_rx = 0;           // raw socket bytes in
  uint64_t bytes_tx = 0;           // raw socket bytes out
  // Always-on end-to-end latency histogram (admission -> response queue,
  // nanoseconds), recorded as completions drain on the event loop.
  obs::HistogramSnapshot e2e_hist;
  // Trace-plane drop/overflow telemetry (zeroes + disabled when no
  // TraceSink is wired), so collector losses are visible in stats_export
  // instead of only inside src/trace internals.
  bool trace_enabled = false;
  trace::TraceCounters trace_counters;
  std::vector<TenantSnapshot> tenants;
  adapt::AdaptStats adapt;  // policy-engine counters + live cost model
  RuntimeStats runtime;  // merged counters across the backing fleet
  FleetStats fleet;      // per-device runtime stats + router occupancy views
  PoolStats pool;        // server-owned buffer pool (hits/misses/occupancy)
  MemPathCounters mem_path;  // process-wide data-path alloc/copy counters
};

class ServiceServer {
 public:
  explicit ServiceServer(const ServerOptions& options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds + listens and spawns the event-loop thread. Not restartable.
  Status Start();

  // Stops accepting, closes every session, drains the runtime. Idempotent.
  void Stop();

  // Valid after a successful Start(); resolves port 0 to the bound port.
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServiceStats Snapshot() const;
  const ServerOptions& options() const { return options_; }

 private:
  // One queued response: 40-byte header on the message itself, payload as a
  // refcounted pool buffer. FlushOutbox writes both with one sendmsg
  // (scatter/gather) — the response path never flattens header + payload
  // into a staging ByteVec.
  struct OutMsg {
    std::array<uint8_t, kHeaderBytes> header;
    IoBuf payload;
    size_t size() const { return kHeaderBytes + payload.size(); }
  };

  struct Session {
    uint64_t id = 0;
    int fd = -1;
    FrameParser parser;
    std::deque<OutMsg> outbox;  // pending writes; front may be partially sent
    size_t outbox_offset = 0;
    bool want_write = false;

    Session(size_t max_payload, BufferPool* pool, bool copy_payloads)
        : parser(max_payload, pool, copy_payloads) {}
  };

  // A completed offload job travelling reaper thread -> event loop. The
  // output IoBuf shares the engine's pooled output segment (refcount bump,
  // no copy).
  struct Completion {
    uint64_t session_id = 0;
    uint64_t request_id = 0;
    uint32_t tenant_id = 0;
    uint8_t codec = 0;
    uint8_t level = 0;
    uint16_t flags = 0;
    uint64_t enqueue_wall = 0;
    uint64_t trace_id = 0;  // 0 = request not sampled
    Status status;
    IoBuf output;
  };

  // Pooled per-request context for the runtime's raw completion hook —
  // replaces the per-request std::function closure (and its heap-parked
  // payload copy) the pre-pool server allocated.
  struct RequestCtx {
    ServiceServer* server = nullptr;
    Completion meta;
  };
  static void OnOffloadComplete(const OffloadResult& result, void* vctx);
  RequestCtx* AcquireCtx();
  void RecycleCtx(RequestCtx* ctx);

  // One captured telemetry window: counter deltas plus an e2e histogram
  // delta over [start_ns, end_ns). The ring holds the most recent
  // options_.stats_windows of these.
  struct StatsWindow {
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    uint64_t requests_ok = 0;
    uint64_t requests_failed = 0;
    uint64_t requests_busy = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
    obs::HistogramSnapshot e2e;
  };

  void EventLoop();
  void HandleAccept();
  void HandleReadable(Session* session);
  // decode_start/decode_end bracket this frame's parse (header/payload CRC +
  // copy) in the trace::NowNs domain; both 0 when tracing is off.
  void HandleRequest(Session* session, Frame&& frame, uint64_t decode_start,
                     uint64_t decode_end);
  // In-band telemetry (ISSUE 10): semantic validation + JSON snapshot
  // response for a kStatsRequest frame. Event-loop thread only.
  void HandleStatsRequest(Session* session, const Frame& frame);
  // Captures a StatsWindow + refreshes the cached cumulative snapshot when
  // the current window has elapsed. Event-loop thread only.
  void MaybeCaptureStatsWindow(uint64_t now_ns);
  // Renders the stats JSON document from the cached snapshot + window ring
  // (never touching runtime threads); memoised for ~50ms so scrape storms
  // cost one render. Event-loop thread only.
  const std::string& StatsJson();
  void Respond(Session* session, uint64_t request_id, uint32_t tenant_id, uint8_t codec,
               uint8_t level, uint16_t flags, StatusCode code, IoBuf payload);
  // Queues a kStatsResponse frame (JSON payload, or empty on error).
  void RespondStats(Session* session, uint64_t request_id, uint32_t tenant_id,
                    StatusCode code, IoBuf payload);
  void FlushOutbox(Session* session);
  void UpdateEpoll(Session* session);
  void CloseSession(uint64_t session_id, bool protocol_error);
  void DrainCompletions();
  void PostCompletion(Completion&& completion);
  // Event-loop-only cache of wire (codec, level) -> factory name/validity,
  // so the hot path neither rebuilds the name string nor constructs a codec
  // instance per request.
  const std::string* ResolveCodecName(uint8_t codec, uint8_t level);
  // Inverse cache for AUTO decisions: factory name -> packed
  // (codec << 8 | level). Returns false for non-wire-mappable names (the
  // engine's candidates are pre-validated, so that indicates a bug upstream).
  bool WireIdForName(const std::string& name, uint8_t* codec, uint8_t* level);

  ServerOptions options_;
  // Declared before the runtime/sessions that carve buffers from it:
  // members are destroyed in reverse order, so the pool outlives every IoBuf.
  BufferPool pool_;
  uint32_t admission_ceiling_ = 0;  // resolved + clamped global ceiling
  std::unique_ptr<AdmissionController> admission_;
  // Declared before the fleet: member runtimes hold a raw adapt_engine
  // pointer and feed it from their reaper threads until destroyed.
  std::unique_ptr<adapt::AdaptivePolicyEngine> adapt_;
  std::unique_ptr<FleetRuntime> runtime_;

  // RequestCtx freelist (Acquire on the event loop, Recycle on reapers).
  std::mutex ctx_pool_mu_;
  std::vector<RequestCtx*> ctx_pool_;

  // (codec << 8 | level) -> factory name; empty string = invalid combo.
  std::unordered_map<uint16_t, std::string> codec_names_;  // event-loop only
  // factory name -> packed (codec << 8 | level); kInvalidWireId = unmappable.
  std::unordered_map<std::string, uint16_t> wire_ids_;  // event-loop only

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions + Stop() both kick the loop
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_session_id_{1};

  // Owned by the event-loop thread exclusively.
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  trace::TraceSink::Writer* trace_writer_ = nullptr;  // event-loop thread only

  // Reaper -> event loop handoff. drain_scratch_ is the event loop's
  // swap-back buffer: DrainCompletions exchanges it with completions_ under
  // the lock, so both vectors keep their capacity and the steady-state
  // handoff allocates nothing.
  std::mutex completion_mu_;
  std::vector<Completion> completions_;
  std::vector<Completion> drain_scratch_;  // event-loop thread only

  // Counters shared with Snapshot().
  mutable std::mutex stats_mu_;
  ServiceStats stats_;

  // Always-on e2e latency histogram: recorded on the event loop as
  // completions drain (wait-free, outside stats_mu_).
  obs::LatencyHistogram e2e_hist_;

  // Snapshot ring of short-window deltas. Written by the event loop at
  // window boundaries; ring_mu_ lets readers on other threads copy the ring
  // without racing the capture.
  mutable std::mutex ring_mu_;
  std::deque<StatsWindow> windows_;       // guarded by ring_mu_
  // Event-loop-only capture cursor (previous cumulative values) + JSON memo.
  uint64_t window_start_ns_ = 0;
  StatsWindow window_prev_;               // cumulative counters at last capture
  std::string stats_json_;
  uint64_t stats_json_ns_ = 0;

  std::thread loop_;
  std::mutex stop_mu_;  // serialises Stop() callers
};

}  // namespace svc
}  // namespace cdpu

#endif  // SRC_SVC_SERVER_H_
