// SR-IOV multi-tenant sharing model (paper §5.5.2, Figure 20): one CDPU
// partitioned into 24 virtual functions, each assigned to a VM running an
// independent closed-loop workload.
//
// Two arbitration disciplines:
//  - kUnarbitrated (QAT-style): the device drains VF rings in order with no
//    per-VF rate limiting. A VF that gets served refills its ring
//    immediately and keeps capturing service batches, while starved VFs'
//    guests back off — the positive feedback behind the paper's sustained
//    oscillations (CV > 50%).
//  - kWeightedFair (DP-CSD-style): front-end QoS serves backlogged VFs
//    round-robin one request at a time with per-VF queue accounting, so
//    equal backlog means equal throughput (CV < 0.5%).

#ifndef SRC_VIRT_SRIOV_H_
#define SRC_VIRT_SRIOV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace cdpu {

enum class VfArbitration : uint8_t { kUnarbitrated, kWeightedFair };

struct SriovConfig {
  std::string name = "device";
  uint32_t vfs = 24;
  VfArbitration arbitration = VfArbitration::kWeightedFair;
  double device_gbps = 5.0;        // aggregate engine throughput
  uint64_t request_bytes = 65536;  // per-VM IO size
  uint32_t initial_ring_depth = 4;
  uint32_t max_ring_depth = 64;    // hardware ring size
  // Batch the arbiter drains per ring visit before moving on. Reads drain
  // larger batches (faster service), amplifying capture.
  uint32_t drain_batch = 8;
  uint64_t seed = 99;
  // Optional per-VF QoS weights (kWeightedFair only). Empty = equal shares.
  // A VF with weight w is served w slots per round.
  std::vector<uint32_t> weights;
};

struct TenantOutcome {
  uint32_t vm = 0;
  uint64_t requests_served = 0;
  double gbps = 0;
};

struct MultiTenantResult {
  std::vector<TenantOutcome> tenants;
  double total_gbps = 0;
  double cv_percent = 0;  // coefficient of variation across tenants
};

// Runs `epochs` scheduling epochs of `epoch_us` each; every VM keeps its
// ring refilled (closed loop).
MultiTenantResult RunMultiTenant(const SriovConfig& config, uint32_t epochs = 400,
                                 double epoch_us = 250);

}  // namespace cdpu

#endif  // SRC_VIRT_SRIOV_H_
