#include "src/virt/sriov.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace cdpu {

MultiTenantResult RunMultiTenant(const SriovConfig& config, uint32_t epochs,
                                 double epoch_us) {
  Rng rng(config.seed);
  uint32_t n = config.vfs;
  std::vector<uint64_t> ring(n, config.initial_ring_depth);
  std::vector<uint64_t> served_total(n, 0);
  std::vector<uint64_t> served_last(n, 0);

  // Requests the device can complete per epoch.
  double epoch_ns = epoch_us * 1000.0;
  double reqs_per_epoch_f =
      config.device_gbps * epoch_ns / static_cast<double>(config.request_bytes);
  uint64_t capacity = std::max<uint64_t>(1, static_cast<uint64_t>(reqs_per_epoch_f));

  uint32_t poll_start = 0;  // unarbitrated: ring-polling origin (random walk)
  uint32_t rr_cursor = 0;   // weighted-fair: persists across epochs

  for (uint32_t e = 0; e < epochs; ++e) {
    std::fill(served_last.begin(), served_last.end(), 0);
    uint64_t cap = capacity;

    if (config.arbitration == VfArbitration::kUnarbitrated) {
      // The device drains VF rings in polling order, a batch per visit,
      // until epoch capacity is gone. The polling origin drifts slowly
      // (interrupt/doorbell timing), so the same neighbourhood of VFs
      // captures service for long stretches while the rest starve — the
      // sustained oscillation of Figure 20.
      poll_start = (poll_start + n + static_cast<uint32_t>(rng.Uniform(3)) - 1) % n;
      bool progress = true;
      while (cap > 0 && progress) {
        progress = false;
        for (uint32_t k = 0; k < n && cap > 0; ++k) {
          uint32_t i = (poll_start + k) % n;
          uint64_t take = std::min<uint64_t>({ring[i], cap, config.drain_batch});
          if (take > 0) {
            ring[i] -= take;
            served_last[i] += take;
            cap -= take;
            progress = true;
          }
        }
      }
    } else {
      // Weighted-fair: serve weight[i] requests per VF per round, with the
      // cursor carried across epochs so no VF is systematically first.
      while (cap > 0) {
        uint32_t scanned = 0;
        while (scanned < n && ring[rr_cursor] == 0) {
          rr_cursor = (rr_cursor + 1) % n;
          ++scanned;
        }
        if (ring[rr_cursor] == 0) {
          break;  // nothing backlogged
        }
        uint64_t quantum =
            rr_cursor < config.weights.size() ? config.weights[rr_cursor] : 1;
        uint64_t take = std::min<uint64_t>({quantum, ring[rr_cursor], cap});
        ring[rr_cursor] -= take;
        served_last[rr_cursor] += take;
        cap -= take;
        rr_cursor = (rr_cursor + 1) % n;
      }
    }

    // Closed-loop refill. A VF whose requests completed resubmits
    // immediately (ring grows with its service rate); a starved VF's guest
    // times out and trickles in one request per epoch.
    for (uint32_t i = 0; i < n; ++i) {
      served_total[i] += served_last[i];
      uint64_t refill = std::max<uint64_t>(1, served_last[i]);
      ring[i] = std::min<uint64_t>(config.max_ring_depth, ring[i] + refill);
    }
  }

  MultiTenantResult result;
  double span_s = static_cast<double>(epochs) * epoch_ns / 1e9;
  SampleSet per_tenant;
  for (uint32_t i = 0; i < n; ++i) {
    TenantOutcome t;
    t.vm = i;
    t.requests_served = served_total[i];
    t.gbps = static_cast<double>(served_total[i]) *
             static_cast<double>(config.request_bytes) / (span_s * 1e9);
    per_tenant.Add(t.gbps);
    result.total_gbps += t.gbps;
    result.tenants.push_back(t);
  }
  result.cv_percent = per_tenant.CvPercent();
  return result;
}

}  // namespace cdpu
