#include "src/ssd/ftl.h"

#include <algorithm>

namespace cdpu {

CompressionFtl::CompressionFtl(const FtlConfig& config) : config_(config) {
  uint64_t physical_pages = config_.nand.TotalPages();
  if (config_.logical_pages == 0) {
    config_.logical_pages = physical_pages * 9 / 10;  // 10% overprovisioning
  }
  l2p_.resize(config_.logical_pages);
  page_residents_.resize(physical_pages);
  uint64_t num_blocks = physical_pages / config_.nand.pages_per_block;
  blocks_.resize(num_blocks);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    free_list_.push_back(b);
  }
}

Status CompressionFtl::EnsureOpenBlock() {
  if (has_open_page_) {
    return Status::Ok();
  }
  if (free_list_.empty()) {
    return Status::ResourceExhausted("ftl: no free blocks");
  }
  open_block_ = free_list_.front();
  free_list_.pop_front();
  blocks_[open_block_].free = false;
  blocks_[open_block_].open = true;
  write_ppa_ = FirstPpaOf(open_block_);
  write_offset_ = 0;
  has_open_page_ = true;
  return Status::Ok();
}

Status CompressionFtl::Append(uint64_t lpn, uint32_t len, bool page_aligned, Mapping* mapping,
                              FtlWriteResult* result) {
  uint32_t page_bytes = config_.nand.page_bytes;
  CDPU_RETURN_IF_ERROR(EnsureOpenBlock());

  if (page_aligned && write_offset_ > 0) {
    // Close the partial page so the uncompressed page starts aligned.
    result->programmed_pages.push_back(write_ppa_);
    ++pages_programmed_;
    if (write_ppa_ + 1 < FirstPpaOf(open_block_) + config_.nand.pages_per_block) {
      ++write_ppa_;
      write_offset_ = 0;
    } else {
      blocks_[open_block_].open = false;
      has_open_page_ = false;
      CDPU_RETURN_IF_ERROR(EnsureOpenBlock());
    }
  }

  mapping->valid = true;
  mapping->pieces = 0;
  uint32_t remaining = len;
  while (remaining > 0) {
    CDPU_RETURN_IF_ERROR(EnsureOpenBlock());
    uint32_t avail = page_bytes - write_offset_;
    uint32_t take = std::min(avail, remaining);
    if (mapping->pieces >= 2) {
      return Status::Internal("ftl: segment split into more than two pieces");
    }
    SegmentLocation& seg = mapping->seg[mapping->pieces];
    seg.ppa = write_ppa_;
    seg.offset = write_offset_;
    seg.len = take;
    page_residents_[write_ppa_].push_back(Resident{lpn, write_offset_, take, mapping->pieces});
    blocks_[open_block_].valid_bytes += take;
    ++mapping->pieces;
    write_offset_ += take;
    remaining -= take;

    if (write_offset_ == page_bytes) {
      result->programmed_pages.push_back(write_ppa_);
      ++pages_programmed_;
      if (write_ppa_ + 1 < FirstPpaOf(open_block_) + config_.nand.pages_per_block) {
        ++write_ppa_;
        write_offset_ = 0;
      } else {
        blocks_[open_block_].open = false;
        has_open_page_ = false;
      }
    }
  }
  return Status::Ok();
}

void CompressionFtl::Invalidate(const Mapping& mapping) {
  if (!mapping.valid) {
    return;
  }
  for (uint8_t p = 0; p < mapping.pieces; ++p) {
    const SegmentLocation& seg = mapping.seg[p];
    blocks_[BlockOf(seg.ppa)].valid_bytes -= seg.len;
    auto& residents = page_residents_[seg.ppa];
    std::erase_if(residents, [&](const Resident& r) {
      return r.offset == seg.offset && r.len == seg.len;
    });
  }
}

Result<FtlWriteResult> CompressionFtl::Write(uint64_t lpn, uint32_t stored_len) {
  if (lpn >= config_.logical_pages) {
    return Status::OutOfRange("ftl: lpn beyond exposed capacity");
  }
  uint32_t page_bytes = config_.nand.page_bytes;
  if (stored_len == 0 || stored_len > page_bytes) {
    return Status::InvalidArgument("ftl: stored length must be in (0, page]");
  }

  FtlWriteResult result;
  host_bytes_ += page_bytes;
  stored_bytes_ += stored_len;

  Invalidate(l2p_[lpn]);
  Mapping m;
  CDPU_RETURN_IF_ERROR(Append(lpn, stored_len, stored_len == page_bytes, &m, &result));
  l2p_[lpn] = m;
  for (uint8_t p = 0; p < m.pieces; ++p) {
    result.segments.push_back(m.seg[p]);
  }
  result.split = m.pieces > 1;

  MaybeGc(&result);
  return result;
}

Result<FtlReadResult> CompressionFtl::Read(uint64_t lpn) const {
  if (lpn >= config_.logical_pages) {
    return Status::OutOfRange("ftl: lpn beyond exposed capacity");
  }
  const Mapping& m = l2p_[lpn];
  if (!m.valid) {
    return Status::Unavailable("ftl: logical page never written");
  }
  FtlReadResult r;
  for (uint8_t p = 0; p < m.pieces; ++p) {
    r.segments.push_back(m.seg[p]);
  }
  return r;
}

std::vector<uint64_t> CompressionFtl::Flush() {
  std::vector<uint64_t> programmed;
  if (has_open_page_ && write_offset_ > 0) {
    programmed.push_back(write_ppa_);
    ++pages_programmed_;
    if (write_ppa_ + 1 < FirstPpaOf(open_block_) + config_.nand.pages_per_block) {
      ++write_ppa_;
      write_offset_ = 0;
    } else {
      blocks_[open_block_].open = false;
      has_open_page_ = false;
    }
  }
  return programmed;
}

void CompressionFtl::Trim(uint64_t lpn) {
  if (lpn >= config_.logical_pages) {
    return;
  }
  Invalidate(l2p_[lpn]);
  l2p_[lpn] = Mapping{};
}

void CompressionFtl::MaybeGc(FtlWriteResult* result) {
  if (in_gc_ || free_list_.size() >= config_.gc_low_watermark) {
    return;
  }
  in_gc_ = true;
  uint64_t block_bytes =
      static_cast<uint64_t>(config_.nand.pages_per_block) * config_.nand.page_bytes;

  while (free_list_.size() < config_.gc_high_watermark) {
    // Victim: sealed block with the least valid data.
    uint64_t victim = blocks_.size();
    uint64_t best_valid = block_bytes;
    for (uint64_t b = 0; b < blocks_.size(); ++b) {
      if (blocks_[b].free || blocks_[b].open) {
        continue;
      }
      if (blocks_[b].valid_bytes < best_valid) {
        best_valid = blocks_[b].valid_bytes;
        victim = b;
      }
    }
    if (victim == blocks_.size() || best_valid >= block_bytes) {
      break;  // nothing reclaimable
    }

    // Relocate every live logical page touching the victim, whole-LPN at a
    // time so the two-piece invariant is preserved (GC re-packs segments).
    uint64_t first = FirstPpaOf(victim);
    for (uint64_t ppa = first; ppa < first + config_.nand.pages_per_block; ++ppa) {
      while (!page_residents_[ppa].empty()) {
        uint64_t lpn = page_residents_[ppa].front().lpn;
        const Mapping old = l2p_[lpn];
        uint32_t stored_len = 0;
        for (uint8_t p = 0; p < old.pieces; ++p) {
          result->gc_read_pages.push_back(old.seg[p].ppa);
          stored_len += old.seg[p].len;
        }
        Invalidate(old);
        Mapping fresh;
        Status st = Append(lpn, stored_len, stored_len == config_.nand.page_bytes, &fresh,
                           result);
        if (!st.ok()) {
          in_gc_ = false;
          return;  // out of space mid-GC; surface via later writes
        }
        l2p_[lpn] = fresh;
        ++gc_relocations_;
      }
    }
    blocks_[victim].free = true;
    blocks_[victim].valid_bytes = 0;
    free_list_.push_back(victim);
    result->erased_blocks.push_back(victim);
    ++gc_erases_;
  }
  in_gc_ = false;
}

}  // namespace cdpu
