// NAND flash timing model: channels x dies, per-die read/program/erase
// occupancy plus per-channel transfer occupancy. Consecutive physical pages
// stripe round-robin across all dies (superblock layout), the arrangement
// enterprise controllers use to parallelise sequential IO.

#ifndef SRC_SSD_NAND_H_
#define SRC_SSD_NAND_H_

#include <cstdint>
#include <vector>

#include "src/sim/sim_time.h"

namespace cdpu {

struct NandConfig {
  uint32_t channels = 8;
  uint32_t dies_per_channel = 8;
  uint32_t page_bytes = 4096;
  uint32_t pages_per_block = 256;
  uint32_t blocks_per_die = 1024;
  double read_us = 50.0;       // tR
  double program_us = 150.0;   // effective tProg/4KB with multi-plane programming
  double suspend_us = 8.0;     // program-suspend-read penalty
  double erase_us = 3000.0;
  double channel_gbps = 1.2;  // ONFI transfer rate per channel

  uint64_t TotalPages() const {
    return static_cast<uint64_t>(channels) * dies_per_channel * blocks_per_die *
           pages_per_block;
  }
  uint64_t PagesPerDie() const {
    return static_cast<uint64_t>(blocks_per_die) * pages_per_block;
  }
};

// Occupancy-tracking NAND array. Operations are submitted in non-decreasing
// arrival order (the FTL serialises per command), and the model returns the
// completion time accounting for die and channel contention.
class NandArray {
 public:
  explicit NandArray(const NandConfig& config);

  const NandConfig& config() const { return config_; }

  // die = ppa % total_dies (striped); channel = die % channels.
  uint32_t DieOf(uint64_t ppa) const;
  uint32_t ChannelOf(uint64_t ppa) const;

  SimNanos Read(uint64_t ppa, SimNanos arrival);
  SimNanos Program(uint64_t ppa, SimNanos arrival);
  SimNanos EraseBlock(uint64_t first_ppa, SimNanos arrival);

  uint64_t reads() const { return reads_; }
  uint64_t programs() const { return programs_; }
  uint64_t erases() const { return erases_; }
  // Aggregate die-busy time (for utilisation/power accounting).
  SimNanos busy_ns() const { return busy_ns_; }

 private:
  SimNanos TransferOut(uint32_t channel, SimNanos ready);

  NandConfig config_;
  std::vector<SimNanos> die_free_;       // program/erase occupancy
  std::vector<SimNanos> die_read_free_;  // read occupancy (suspend-capable)
  std::vector<SimNanos> channel_free_;
  uint64_t reads_ = 0;
  uint64_t programs_ = 0;
  uint64_t erases_ = 0;
  SimNanos busy_ns_ = 0;
};

}  // namespace cdpu

#endif  // SRC_SSD_NAND_H_
