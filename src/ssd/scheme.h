// Compression placement schemes: the five end-to-end configurations the
// paper evaluates in RocksDB and the filesystems (Figures 14-19) — OFF,
// CPU Deflate, QAT 8970 (peripheral), QAT 4xxx (on-chip), all over a plain
// SSD, and DP-CSD (application-transparent in-storage compression).
//
// A CompressionBackend bundles the functional codec (what the bytes look
// like) with the shared device timing queue (what it costs and who you
// contend with). Used by the LSM store's SSTable blocks and the filesystem
// simulators' extents/records.

#ifndef SRC_SSD_SCHEME_H_
#define SRC_SSD_SCHEME_H_

#include <memory>
#include <string>

#include "src/codecs/codec.h"
#include "src/hw/cdpu_queue.h"
#include "src/ssd/ssd.h"

namespace cdpu {

enum class CompressionScheme : uint8_t {
  kOff,       // no compression anywhere
  kCpu,       // Deflate on host CPU, plain SSD
  kQat8970,   // peripheral QAT card, plain SSD
  kQat4xxx,   // on-chip QAT, plain SSD
  kCsd2000,   // app-transparent FPGA CSD
  kDpCsd,     // app-transparent: DPZip-compressing SSD
};

const char* SchemeName(CompressionScheme scheme);

struct CompressionBackend {
  std::string name = "off";
  std::shared_ptr<Codec> codec;       // nullptr = no app-level compression
  std::shared_ptr<CdpuQueue> device;  // timing queue; nullptr = free
};

// App-layer backend for the scheme. kOff/kDpCsd/kCsd2000 are empty (their
// compression, if any, happens inside the SSD).
CompressionBackend MakeSchemeBackend(CompressionScheme scheme);

// SSD personality for the scheme. `logical_pages` sizes exposed capacity.
SsdConfig MakeSchemeSsdConfig(CompressionScheme scheme, uint64_t logical_pages = 1 << 20);

}  // namespace cdpu

#endif  // SRC_SSD_SCHEME_H_
