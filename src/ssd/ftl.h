// Compression-aware log-structured FTL (paper §4.2, Figure 5).
//
// Host pages are compressed before flash write. Compressed segments are
// packed into the open flash page; a segment that does not fit is split and
// continued on the next page (at most two pieces for a 4 KB logical page).
// Incompressible pages are stored uncompressed, page-aligned, to avoid
// management overhead. The in-DRAM L2P table maps each logical page to its
// segment location(s); obsolete locations are invalidated for GC. GC picks
// the fullest-invalid block, relocates live segments through the normal
// write path, and erases.
//
// The FTL is a placement/accounting engine: it decides *where* bytes go and
// which NAND operations happen; the controller (ssd.h) charges their timing
// and holds the actual data.

#ifndef SRC_SSD_FTL_H_
#define SRC_SSD_FTL_H_

#include <cstdint>
#include <list>
#include <vector>

#include "src/common/status.h"
#include "src/ssd/nand.h"

namespace cdpu {

struct FtlConfig {
  NandConfig nand;
  uint64_t logical_pages = 0;      // exposed capacity; 0 = physical * 0.9
  uint32_t gc_low_watermark = 4;   // free blocks triggering GC
  uint32_t gc_high_watermark = 8;  // GC target
};

struct SegmentLocation {
  uint64_t ppa = 0;
  uint32_t offset = 0;  // byte offset within the flash page
  uint32_t len = 0;
};

struct FtlWriteResult {
  // Where the logical page now lives (1 segment, or 2 when split).
  std::vector<SegmentLocation> segments;
  // Flash pages closed (programmed) by this write, including GC relocations.
  std::vector<uint64_t> programmed_pages;
  // Flash pages read by GC relocations triggered by this write.
  std::vector<uint64_t> gc_read_pages;
  // Blocks erased by GC.
  std::vector<uint64_t> erased_blocks;
  bool split = false;
};

struct FtlReadResult {
  std::vector<SegmentLocation> segments;  // flash pages to read (1 or 2)
};

class CompressionFtl {
 public:
  explicit CompressionFtl(const FtlConfig& config);

  // Records a host write of logical page `lpn` whose stored (compressed)
  // size is `stored_len` bytes (== page size when incompressible).
  Result<FtlWriteResult> Write(uint64_t lpn, uint32_t stored_len);

  // Looks up the current location(s) of `lpn`.
  Result<FtlReadResult> Read(uint64_t lpn) const;

  // Commits the open partial page (power-loss flush / shutdown). Returns
  // the page programmed, if any.
  std::vector<uint64_t> Flush();

  // NVMe deallocate: drops the mapping so GC can reclaim the segments.
  void Trim(uint64_t lpn);

  // --- statistics ---------------------------------------------------------
  uint64_t host_bytes_written() const { return host_bytes_; }
  uint64_t flash_pages_programmed() const { return pages_programmed_; }
  uint64_t flash_bytes_programmed() const {
    return pages_programmed_ * config_.nand.page_bytes;
  }
  uint64_t gc_relocated_segments() const { return gc_relocations_; }
  uint64_t gc_erased_blocks() const { return gc_erases_; }
  double WriteAmplification() const {
    return host_bytes_ == 0 ? 0.0
                            : static_cast<double>(flash_bytes_programmed()) /
                                  static_cast<double>(host_bytes_);
  }
  // Stored (compressed) bytes / host bytes: < 1 for compressible data.
  double PhysicalSpaceRatio() const {
    return host_bytes_ == 0
               ? 0.0
               : static_cast<double>(stored_bytes_) / static_cast<double>(host_bytes_);
  }
  uint32_t free_blocks() const { return static_cast<uint32_t>(free_list_.size()); }
  const FtlConfig& config() const { return config_; }

 private:
  struct Mapping {
    bool valid = false;
    SegmentLocation seg[2];
    uint8_t pieces = 0;
  };
  struct Resident {  // a live segment piece within a physical page
    uint64_t lpn;
    uint32_t offset;
    uint32_t len;
    uint8_t piece;  // 0 or 1
  };
  struct BlockState {
    uint64_t valid_bytes = 0;
    bool open = false;
    bool free = true;
  };

  uint64_t BlockOf(uint64_t ppa) const { return ppa / config_.nand.pages_per_block; }
  uint64_t FirstPpaOf(uint64_t block) const { return block * config_.nand.pages_per_block; }

  Status EnsureOpenBlock();
  // Appends `len` bytes at the write pointer; fills `pieces`. Closes pages
  // into `result` as they fill. `page_aligned` forces a fresh page.
  Status Append(uint64_t lpn, uint32_t len, bool page_aligned, Mapping* mapping,
                FtlWriteResult* result);
  void Invalidate(const Mapping& mapping);
  void MaybeGc(FtlWriteResult* result);

  FtlConfig config_;
  std::vector<Mapping> l2p_;
  std::vector<std::vector<Resident>> page_residents_;  // per physical page
  std::vector<BlockState> blocks_;
  std::list<uint64_t> free_list_;
  uint64_t open_block_ = 0;
  uint64_t write_ppa_ = 0;     // current open page
  uint32_t write_offset_ = 0;  // byte offset within the open page
  bool has_open_page_ = false;

  uint64_t host_bytes_ = 0;
  uint64_t stored_bytes_ = 0;
  uint64_t pages_programmed_ = 0;
  uint64_t gc_relocations_ = 0;
  uint64_t gc_erases_ = 0;
  bool in_gc_ = false;
};

}  // namespace cdpu

#endif  // SRC_SSD_FTL_H_
