#include "src/ssd/ssd.h"

#include <algorithm>
#include <cmath>

namespace cdpu {

SsdConfig::SsdConfig() : host_link(Pcie5x4Link()), fpga_link(FpgaAxiLink()) {}

SimSsd::SimSsd(const SsdConfig& config)
    : config_(config), host_link_(config.host_link), fpga_link_(config.fpga_link),
      ftl_(config.ftl), nand_(config.ftl.nand), dpzip_(config.lz77),
      pipeline_(config.pipeline), cdpu_queue_(std::max(1u, config.cdpu_engines)) {
  if (config_.compression == SsdCompressionMode::kFpgaGzip) {
    fpga_codec_ = MakeCodec("gzip-1");  // CSD 2000 implements Gzip (Table 1)
  }
}

Result<SsdIoResult> SimSsd::CompressForStore(ByteSpan data, ByteVec* stored, bool* raw) {
  SsdIoResult io;
  uint32_t page_bytes = config_.ftl.nand.page_bytes;
  *raw = false;

  switch (config_.compression) {
    case SsdCompressionMode::kNone: {
      stored->assign(data.begin(), data.end());
      io.stored_len = page_bytes;
      io.ratio = 1.0;
      *raw = true;
      return io;
    }
    case SsdCompressionMode::kDpzip: {
      Result<size_t> r = dpzip_.Compress(data, stored);
      if (!r.ok()) {
        return r.status();
      }
      DpzipTiming t = pipeline_.CompressLatency(dpzip_.last_stats());
      io.completion = t.nanos;  // engine service time; caller queues it
      if (stored->size() >= page_bytes) {
        // Doesn't pay: store the original page uncompressed.
        stored->assign(data.begin(), data.end());
        *raw = true;
        io.stored_len = page_bytes;
        io.ratio = 1.0;
        ++bypass_pages_;
      } else {
        io.stored_len = static_cast<uint32_t>(stored->size());
        io.ratio = static_cast<double>(stored->size()) / static_cast<double>(data.size());
        ++compressed_pages_;
      }
      return io;
    }
    case SsdCompressionMode::kFpgaGzip: {
      Result<size_t> r = fpga_codec_->Compress(data, stored);
      if (!r.ok()) {
        return r.status();
      }
      // FPGA engine: data crosses the internal AXI in and out, plus the
      // engine's streaming rate.
      double engine_ns = static_cast<double>(data.size()) / config_.fpga_compress_gbps;
      io.completion = fpga_link_.TransferLatency(data.size()) +
                      static_cast<SimNanos>(std::llround(engine_ns)) +
                      fpga_link_.TransferLatency(stored->size());
      if (stored->size() >= page_bytes) {
        stored->assign(data.begin(), data.end());
        *raw = true;
        io.stored_len = page_bytes;
        io.ratio = 1.0;
        ++bypass_pages_;
      } else {
        io.stored_len = static_cast<uint32_t>(stored->size());
        io.ratio = static_cast<double>(stored->size()) / static_cast<double>(data.size());
        ++compressed_pages_;
      }
      return io;
    }
  }
  return Status::Internal("ssd: unknown compression mode");
}

SimNanos SimSsd::DecompressServiceNs(uint32_t stored_len, uint32_t original_len, bool raw) {
  if (raw || config_.compression == SsdCompressionMode::kNone) {
    return 0;
  }
  if (config_.compression == SsdCompressionMode::kDpzip) {
    return pipeline_.DecompressLatency(dpzip_.last_stats()).nanos;
  }
  double engine_ns = static_cast<double>(original_len) / config_.fpga_decompress_gbps;
  return fpga_link_.TransferLatency(stored_len) +
         static_cast<SimNanos>(std::llround(engine_ns)) +
         fpga_link_.TransferLatency(original_len);
}

SimNanos SimSsd::CachedNandRead(uint64_t ppa, SimNanos arrival, ReadContext* ctx) {
  // Intra-command coalescing: within one host command the controller reads
  // each flash page into the SBM once and serves every segment from it —
  // essential for packed segments, where logical pages share flash pages.
  if (ctx != nullptr) {
    auto it = ctx->fetched.find(ppa);
    if (it != ctx->fetched.end()) {
      return std::max(arrival, it->second);
    }
  }
  // Optional cross-command read buffer (off by default; Finding 8 shows the
  // real device exposes no such benefit to hosts).
  if (config_.read_cache_pages > 0) {
    auto it = read_cache_.find(ppa);
    if (it != read_cache_.end()) {
      return std::max(arrival, it->second);
    }
  }
  SimNanos done = nand_.Read(ppa, arrival);
  if (ctx != nullptr) {
    ctx->fetched[ppa] = done;
  }
  if (config_.read_cache_pages > 0) {
    read_cache_[ppa] = done;
    read_cache_fifo_.push_back(ppa);
    while (read_cache_fifo_.size() > config_.read_cache_pages) {
      read_cache_.erase(read_cache_fifo_.front());
      read_cache_fifo_.pop_front();
    }
  }
  return done;
}

Result<SsdIoResult> SimSsd::Write(uint64_t lpn, ByteSpan data, SimNanos arrival) {
  uint32_t page_bytes = config_.ftl.nand.page_bytes;
  if (data.size() != page_bytes) {
    return Status::InvalidArgument("ssd: write must be exactly one page");
  }

  ByteVec stored;
  bool raw = false;
  Result<SsdIoResult> comp = CompressForStore(data, &stored, &raw);
  if (!comp.ok()) {
    return comp.status();
  }
  SsdIoResult io = *comp;

  Result<FtlWriteResult> fw = ftl_.Write(lpn, io.stored_len);
  if (!fw.ok()) {
    return fw.status();
  }
  io.split = fw->split;

  // Host-visible timeline: QM -> host DMA -> inline compression (shared
  // engine pool) -> SBM staging.
  SimNanos t = arrival + static_cast<SimNanos>(std::llround(config_.queue_manager_ns));
  t += host_link_.TransferLatency(page_bytes);
  ServiceOutcome eng = cdpu_queue_.Submit(t, io.completion);
  cdpu_busy_ns_ += io.completion;
  t = eng.completion + static_cast<SimNanos>(std::llround(config_.sbm_ns));

  // NAND programs + GC traffic proceed asynchronously after the buffer ack,
  // but the power-protected SBM has finite slots: when the program backlog
  // exceeds them, the ack stalls until a slot frees (write backpressure).
  for (uint64_t ppa : fw->gc_read_pages) {
    nand_.Read(ppa, t);
  }
  for (uint64_t ppa : fw->programmed_pages) {
    sbm_backlog_.push_back(nand_.Program(ppa, t));
  }
  for (uint64_t block : fw->erased_blocks) {
    nand_.EraseBlock(block * config_.ftl.nand.pages_per_block, t);
  }
  while (sbm_backlog_.size() > config_.sbm_buffer_pages) {
    t = std::max(t, sbm_backlog_.front());
    sbm_backlog_.pop_front();
  }
  io.completion = t;

  if (config_.store_payloads) {
    contents_[lpn] = StoredPage{std::move(stored), raw};
  }
  return io;
}

Result<SsdIoResult> SimSsd::Read(uint64_t lpn, ByteVec* out, SimNanos arrival) {
  ReadContext ctx;
  return ReadInternal(lpn, out, arrival, &ctx);
}

Result<SsdIoResult> SimSsd::ReadInternal(uint64_t lpn, ByteVec* out, SimNanos arrival,
                                         ReadContext* ctx) {
  uint32_t page_bytes = config_.ftl.nand.page_bytes;
  SsdIoResult io;

  SimNanos t = arrival + static_cast<SimNanos>(std::llround(config_.queue_manager_ns));
  Result<FtlReadResult> fr = ftl_.Read(lpn);
  if (!fr.ok()) {
    if (fr.status().code() == StatusCode::kUnavailable) {
      // Unwritten page: NVMe returns zeros without touching NAND.
      out->insert(out->end(), page_bytes, 0);
      io.completion = t + host_link_.TransferLatency(page_bytes);
      return io;
    }
    return fr.status();
  }

  // Fetch every flash page holding a piece of this logical page; pieces on
  // different dies overlap, so the slowest read gates decompression.
  SimNanos nand_done = t;
  uint32_t stored_len = 0;
  for (const SegmentLocation& seg : fr->segments) {
    nand_done = std::max(nand_done, CachedNandRead(seg.ppa, t, ctx));
    stored_len += seg.len;
  }
  io.flash_reads = static_cast<uint32_t>(fr->segments.size());
  io.split = fr->segments.size() > 1;
  io.stored_len = stored_len;

  SimNanos decomp_service = 0;
  if (config_.store_payloads) {
    auto it = contents_.find(lpn);
    if (it == contents_.end()) {
      return Status::Internal("ssd: mapping exists but payload missing");
    }
    if (it->second.raw || config_.compression == SsdCompressionMode::kNone) {
      out->insert(out->end(), it->second.payload.begin(), it->second.payload.end());
      decomp_service = DecompressServiceNs(stored_len, page_bytes, true);
    } else if (config_.compression == SsdCompressionMode::kDpzip) {
      Result<size_t> r = dpzip_.Decompress(it->second.payload, out);
      if (!r.ok()) {
        return r.status();
      }
      decomp_service = DecompressServiceNs(stored_len, page_bytes, false);
    } else {
      Result<size_t> r = fpga_codec_->Decompress(it->second.payload, out);
      if (!r.ok()) {
        return r.status();
      }
      decomp_service = DecompressServiceNs(stored_len, page_bytes, false);
    }
    io.ratio = static_cast<double>(stored_len) / static_cast<double>(page_bytes);
  } else {
    decomp_service = DecompressServiceNs(stored_len, page_bytes, false);
    out->insert(out->end(), page_bytes, 0);
  }

  SimNanos after_decomp = nand_done;
  if (decomp_service > 0) {
    ServiceOutcome eng = cdpu_queue_.Submit(nand_done, decomp_service);
    cdpu_busy_ns_ += decomp_service;
    after_decomp = eng.completion;
  }
  io.completion = after_decomp + static_cast<SimNanos>(std::llround(config_.sbm_ns)) +
                  host_link_.TransferLatency(page_bytes);
  return io;
}

Result<SsdIoResult> SimSsd::WriteMulti(uint64_t first_lpn, ByteSpan data, SimNanos arrival) {
  uint32_t page_bytes = config_.ftl.nand.page_bytes;
  if (data.size() % page_bytes != 0 || data.empty()) {
    return Status::InvalidArgument("ssd: multi-write must be whole pages");
  }
  SsdIoResult total;
  uint32_t pages = static_cast<uint32_t>(data.size() / page_bytes);
  uint64_t stored = 0;
  // Pages of one command pipeline through QM/DMA/engines: issue them at the
  // host link's streaming rate and let the shared queues (engines, NAND)
  // provide backpressure via each page's completion time.
  SimNanos spacing = static_cast<SimNanos>(
      static_cast<double>(page_bytes) / host_link_.EffectiveGbps());
  for (uint32_t p = 0; p < pages; ++p) {
    ByteSpan page(data.data() + static_cast<size_t>(p) * page_bytes, page_bytes);
    Result<SsdIoResult> r = Write(first_lpn + p, page, arrival + p * spacing);
    if (!r.ok()) {
      return r.status();
    }
    total.completion = std::max(total.completion, r->completion);
    total.split = total.split || r->split;
    stored += r->stored_len;
  }
  total.stored_len = static_cast<uint32_t>(std::min<uint64_t>(stored, UINT32_MAX));
  total.ratio = static_cast<double>(stored) / static_cast<double>(data.size());
  return total;
}

Result<SsdIoResult> SimSsd::ReadMulti(uint64_t first_lpn, uint32_t pages, ByteVec* out,
                                      SimNanos arrival) {
  SsdIoResult total;
  uint64_t stored = 0;
  ReadContext ctx;  // one command: coalesce same-flash-page segment reads
  for (uint32_t p = 0; p < pages; ++p) {
    Result<SsdIoResult> r = ReadInternal(first_lpn + p, out, arrival, &ctx);
    if (!r.ok()) {
      return r.status();
    }
    total.completion = std::max(total.completion, r->completion);
    total.split = total.split || r->split;
    total.flash_reads += r->flash_reads;
    stored += r->stored_len;
  }
  total.stored_len = static_cast<uint32_t>(std::min<uint64_t>(stored, UINT32_MAX));
  total.ratio = static_cast<double>(stored) /
                (static_cast<double>(pages) * config_.ftl.nand.page_bytes);
  return total;
}

void SimSsd::Trim(uint64_t lpn) {
  ftl_.Trim(lpn);
  contents_.erase(lpn);
}

double SimSsd::EffectiveCapacityGain() const {
  double ratio = ftl_.PhysicalSpaceRatio();
  return ratio <= 0 ? 1.0 : 1.0 / ratio;
}

}  // namespace cdpu
