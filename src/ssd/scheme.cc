#include "src/ssd/scheme.h"

#include "src/hw/device_configs.h"

namespace cdpu {

const char* SchemeName(CompressionScheme scheme) {
  switch (scheme) {
    case CompressionScheme::kOff:
      return "OFF";
    case CompressionScheme::kCpu:
      return "CPU-Deflate";
    case CompressionScheme::kQat8970:
      return "QAT-8970";
    case CompressionScheme::kQat4xxx:
      return "QAT-4xxx";
    case CompressionScheme::kCsd2000:
      return "CSD-2000";
    case CompressionScheme::kDpCsd:
      return "DP-CSD";
  }
  return "?";
}

CompressionBackend MakeSchemeBackend(CompressionScheme scheme) {
  CompressionBackend b;
  switch (scheme) {
    case CompressionScheme::kOff:
    case CompressionScheme::kDpCsd:
    case CompressionScheme::kCsd2000:
      b.name = "off";
      break;
    case CompressionScheme::kCpu:
      b.name = "cpu-deflate";
      b.codec = MakeCodec("deflate-1");
      b.device = std::make_shared<CdpuQueue>(CpuSoftwareConfig("deflate", 4));  // flush/compaction threads
      break;
    case CompressionScheme::kQat8970:
      b.name = "qat-8970";
      b.codec = MakeCodec("deflate-1");
      b.device = std::make_shared<CdpuQueue>(Qat8970Config());
      break;
    case CompressionScheme::kQat4xxx:
      b.name = "qat-4xxx";
      b.codec = MakeCodec("deflate-1");
      b.device = std::make_shared<CdpuQueue>(Qat4xxxConfig());
      break;
  }
  return b;
}

SsdConfig MakeSchemeSsdConfig(CompressionScheme scheme, uint64_t logical_pages) {
  SsdConfig c;
  switch (scheme) {
    case CompressionScheme::kDpCsd:
      c.compression = SsdCompressionMode::kDpzip;
      c.name = "dp-csd";
      break;
    case CompressionScheme::kCsd2000:
      c.compression = SsdCompressionMode::kFpgaGzip;
      c.name = "csd-2000";
      c.host_link = Pcie3x4Link();
      c.cdpu_engines = 1;  // single FPGA engine (Finding 7)
      break;
    default:
      c.compression = SsdCompressionMode::kNone;
      c.name = "plain-nvme";
      break;
  }
  // Room for the logical space plus 25% overprovisioning so benchmarks
  // exercise packing rather than GC thrash.
  NandConfig n;
  n.channels = 8;
  n.dies_per_channel = 8;
  n.pages_per_block = 256;
  uint64_t pages_needed = logical_pages + logical_pages / 4;
  n.blocks_per_die = static_cast<uint32_t>(pages_needed / (8ull * 8 * 256) + 1);
  c.ftl.nand = n;
  c.ftl.logical_pages = logical_pages;
  return c;
}

}  // namespace cdpu
