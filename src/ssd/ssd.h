// SSD controller simulator (paper §4, Figure 4): NVMe-ish front end with a
// queue manager, host DMA into the shared buffer memory (SBM), optional
// inline (de)compression in the IO path, the compression-aware FTL, and the
// NAND array.
//
// Three personalities cover the paper's in-storage devices:
//   kNone     — plain NVMe SSD (the "OFF" baseline device)
//   kDpzip    — DP-CSD: DPZip ASIC inline at 8 B/cycle (functional DpzipCodec
//               + cycle-model timing)
//   kFpgaGzip — CSD 2000-style FPGA engine behind a ~2.5 GB/s internal AXI
//
// Writes complete once data is compressed and staged in the SBM (enterprise
// SSDs acknowledge at the power-protected buffer, sub-10 us); NAND programs
// proceed asynchronously but still occupy dies/channels, so reads and GC
// feel the pressure.

#ifndef SRC_SSD_SSD_H_
#define SRC_SSD_SSD_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/hw/interconnect.h"
#include "src/sim/queueing.h"
#include "src/ssd/ftl.h"

namespace cdpu {

enum class SsdCompressionMode : uint8_t { kNone, kDpzip, kFpgaGzip };

struct SsdConfig {
  std::string name = "dp-csd";
  SsdCompressionMode compression = SsdCompressionMode::kDpzip;
  FtlConfig ftl;
  LinkConfig host_link;                // defaults to PCIe 5.0 x4 in ctor
  DpzipPipelineConfig pipeline;        // DPZip timing (kDpzip)
  DpzipLz77Config lz77;                // DPZip functional config
  double fpga_compress_gbps = 2.5;     // kFpgaGzip engine rate
  double fpga_decompress_gbps = 3.0;
  LinkConfig fpga_link;                // internal AXI (kFpgaGzip)
  double queue_manager_ns = 800;       // NVMe command fetch + parse (QM)
  double sbm_ns = 200;                 // SRAM staging
  uint32_t cdpu_engines = 2;           // parallel (de)compression pipelines
  uint32_t sbm_buffer_pages = 512;     // write-buffer slots before backpressure (2 MiB)
  uint32_t read_cache_pages = 0;       // same-page read coalescing (0 = off)
  bool store_payloads = true;          // keep functional data for reads
  double active_power_w = 11.0;        // whole-drive active (incl. DPZip 2.5W)
  double idle_power_w = 4.0;

  SsdConfig();
};

struct SsdIoResult {
  SimNanos completion = 0;     // host-visible completion time
  uint32_t stored_len = 0;     // bytes stored after compression
  double ratio = 1.0;          // stored/original
  bool split = false;          // segment spans two flash pages
  uint32_t flash_reads = 0;    // pages touched (read amplification)
};

class SimSsd {
 public:
  explicit SimSsd(const SsdConfig& config);

  // Writes one logical page (must be exactly page_bytes long).
  Result<SsdIoResult> Write(uint64_t lpn, ByteSpan data, SimNanos arrival);

  // Reads one logical page into *out (appends page_bytes). Unwritten pages
  // read back as zeros.
  Result<SsdIoResult> Read(uint64_t lpn, ByteVec* out, SimNanos arrival);

  // Multi-page helpers for larger IO sizes (64 KB = 16 pages). The DPZip
  // engine still operates at fixed 4 KB granularity (Finding 1).
  Result<SsdIoResult> WriteMulti(uint64_t first_lpn, ByteSpan data, SimNanos arrival);
  Result<SsdIoResult> ReadMulti(uint64_t first_lpn, uint32_t pages, ByteVec* out,
                                SimNanos arrival);

  // NVMe deallocate: releases the logical page (mapping + payload).
  void Trim(uint64_t lpn);

  // Flash pages already fetched within one host command: the controller
  // reads a flash page into the SBM once and serves every segment of the
  // command from it (intra-command coalescing).
  struct ReadContext {
    std::unordered_map<uint64_t, SimNanos> fetched;  // ppa -> data-ready time
  };

  const SsdConfig& config() const { return config_; }
  const CompressionFtl& ftl() const { return ftl_; }
  const NandArray& nand() const { return nand_; }

  // Effective capacity multiplier achieved so far (1 / stored ratio).
  double EffectiveCapacityGain() const;

  uint64_t compressed_pages() const { return compressed_pages_; }
  uint64_t bypass_pages() const { return bypass_pages_; }
  // Cumulative busy time of the inline compression engine.
  SimNanos cdpu_busy_ns() const { return cdpu_busy_ns_; }

 private:
  struct StoredPage {
    ByteVec payload;  // compressed (or raw) bytes, exactly stored_len long
    bool raw;
  };

  // Compresses `data`, returning stored bytes + engine service time.
  Result<SsdIoResult> CompressForStore(ByteSpan data, ByteVec* stored, bool* raw);
  SimNanos DecompressServiceNs(uint32_t stored_len, uint32_t original_len, bool raw);
  // Reads one flash page with intra-command (and optional cross-command)
  // read coalescing.
  SimNanos CachedNandRead(uint64_t ppa, SimNanos arrival, ReadContext* ctx);
  Result<SsdIoResult> ReadInternal(uint64_t lpn, ByteVec* out, SimNanos arrival,
                                   ReadContext* ctx);

  SsdConfig config_;
  Link host_link_;
  Link fpga_link_;
  CompressionFtl ftl_;
  NandArray nand_;
  DpzipCodec dpzip_;
  DpzipPipelineModel pipeline_;
  std::unique_ptr<Codec> fpga_codec_;
  std::unordered_map<uint64_t, StoredPage> contents_;
  MultiServerQueue cdpu_queue_;        // shared inline compression engines
  std::deque<SimNanos> sbm_backlog_;   // outstanding NAND program completions
  std::unordered_map<uint64_t, SimNanos> read_cache_;  // ppa -> data-ready time
  std::deque<uint64_t> read_cache_fifo_;
  uint64_t compressed_pages_ = 0;
  uint64_t bypass_pages_ = 0;
  SimNanos cdpu_busy_ns_ = 0;
};

}  // namespace cdpu

#endif  // SRC_SSD_SSD_H_
