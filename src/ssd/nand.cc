#include "src/ssd/nand.h"

#include <algorithm>
#include <cmath>

namespace cdpu {

NandArray::NandArray(const NandConfig& config)
    : config_(config),
      die_free_(static_cast<size_t>(config.channels) * config.dies_per_channel, 0),
      die_read_free_(static_cast<size_t>(config.channels) * config.dies_per_channel, 0),
      channel_free_(config.channels, 0) {}

uint32_t NandArray::DieOf(uint64_t ppa) const {
  // Consecutive pages stripe round-robin across all dies (superblock
  // layout), which is how controllers get multi-die parallelism on
  // sequential IO.
  return static_cast<uint32_t>(ppa % die_free_.size());
}

uint32_t NandArray::ChannelOf(uint64_t ppa) const { return DieOf(ppa) % config_.channels; }

SimNanos NandArray::TransferOut(uint32_t channel, SimNanos ready) {
  SimNanos xfer = static_cast<SimNanos>(
      std::llround(static_cast<double>(config_.page_bytes) / config_.channel_gbps));
  SimNanos start = std::max(ready, channel_free_[channel]);
  SimNanos done = start + xfer;
  channel_free_[channel] = done;
  return done;
}

SimNanos NandArray::Read(uint64_t ppa, SimNanos arrival) {
  ++reads_;
  uint32_t die = DieOf(ppa);
  uint32_t ch = ChannelOf(ppa);
  // Reads serialise against other reads on the die; in-flight programs are
  // suspended (program-suspend-read), costing a small penalty instead of
  // waiting out the full tProg.
  SimNanos start = std::max(arrival, die_read_free_[die]);
  SimNanos suspend = 0;
  if (die_free_[die] > start) {
    suspend = static_cast<SimNanos>(std::llround(config_.suspend_us * 1000));
  }
  SimNanos cell_done =
      start + suspend + static_cast<SimNanos>(std::llround(config_.read_us * 1000));
  SimNanos done = TransferOut(ch, cell_done);
  die_read_free_[die] = done;
  busy_ns_ += done - start;
  return done;
}

SimNanos NandArray::Program(uint64_t ppa, SimNanos arrival) {
  ++programs_;
  uint32_t die = DieOf(ppa);
  uint32_t ch = ChannelOf(ppa);
  // Programs wait for prior programs/erases and for in-flight reads.
  SimNanos start = std::max({arrival, die_free_[die], die_read_free_[die]});
  SimNanos cell_done =
      start + static_cast<SimNanos>(std::llround(config_.program_us * 1000));
  SimNanos done = TransferOut(ch, cell_done);
  die_free_[die] = done;
  busy_ns_ += done - start;
  return done;
}

SimNanos NandArray::EraseBlock(uint64_t first_ppa, SimNanos arrival) {
  ++erases_;
  uint32_t die = DieOf(first_ppa);
  SimNanos start = std::max(arrival, die_free_[die]);
  SimNanos done = start + static_cast<SimNanos>(std::llround(config_.erase_us * 1000));
  die_free_[die] = done;
  busy_ns_ += done - start;
  return done;
}

}  // namespace cdpu
