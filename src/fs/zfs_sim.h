// ZFS-style filesystem simulator (paper §5.3.2, Figure 17): inline
// synchronous compression at a configurable record size (4K-128K). Reads
// fetch and decompress exactly one record; writes compress the record
// before it reaches the SSD. The record size is the experiment's knob —
// larger records compress better but amplify small random IO.

#ifndef SRC_FS_ZFS_SIM_H_
#define SRC_FS_ZFS_SIM_H_

#include <cstdint>
#include <map>

#include "src/ssd/scheme.h"

namespace cdpu {

struct ZfsConfig {
  size_t record_bytes = 128 * 1024;  // 4K .. 128K
  double vfs_overhead_ns = 2500;     // ARC/DMU path per op
};

class ZfsSim {
 public:
  ZfsSim(const ZfsConfig& config, SimSsd* ssd, CompressionBackend backend);

  // Writes one full record at record-aligned `offset`.
  Result<SimNanos> WriteRecord(uint64_t offset, ByteSpan data, SimNanos arrival);

  struct ReadOutcome {
    SimNanos completion = 0;
    uint64_t record_bytes_fetched = 0;
    ByteVec data;
  };
  // Reads `len` bytes at `offset`; fetches the containing record.
  Result<ReadOutcome> Read(uint64_t offset, uint64_t len, SimNanos arrival);

  uint64_t stored_bytes() const { return stored_bytes_; }
  uint64_t logical_bytes() const { return logical_bytes_; }
  const ZfsConfig& config() const { return config_; }

 private:
  struct Record {
    uint64_t base_lpn;
    uint32_t pages;
    uint32_t stored_len;
    uint32_t logical_len;
    bool compressed;
  };

  ZfsConfig config_;
  SimSsd* ssd_;
  CompressionBackend backend_;
  uint64_t next_lpn_ = 0;
  std::map<uint64_t, Record> records_;  // record-aligned offset -> record
  uint64_t stored_bytes_ = 0;
  uint64_t logical_bytes_ = 0;
};

}  // namespace cdpu

#endif  // SRC_FS_ZFS_SIM_H_
