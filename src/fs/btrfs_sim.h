// Btrfs-style filesystem simulator (paper §5.3.2).
//
// Semantics modelled:
//  - Buffered writes land in the page cache and return quickly.
//  - Writeback compresses dirty ranges asynchronously in extents of up to
//    128 KB, checksums them (mandatory once compression is on), and writes
//    them to the SSD. The extra memory copy + async handoff of the
//    filesystem compression path (Finding 11) is charged per extent.
//  - A read of any 4 KB inside a compressed extent must fetch and
//    decompress the whole extent — the read amplification of Finding 9.
//
// One simulated file occupies a flat logical byte space.

#ifndef SRC_FS_BTRFS_SIM_H_
#define SRC_FS_BTRFS_SIM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/ssd/scheme.h"

namespace cdpu {

struct BtrfsConfig {
  size_t max_extent_bytes = 128 * 1024;  // Btrfs compressed-extent cap
  bool checksum = true;                  // forced on with compression
  double writeback_copy_ns_per_kb = 80;  // buffered-IO memory copy cost
  double async_handoff_ns = 3000;        // queue to writeback worker
  double metadata_flush_ns = 12000;      // transaction commit overhead
  uint32_t writeback_threads = 4;
};

class BtrfsSim {
 public:
  BtrfsSim(const BtrfsConfig& config, SimSsd* ssd, CompressionBackend backend);

  // Buffered write at `offset`. Returns host-visible completion (fast).
  Result<SimNanos> Write(uint64_t offset, ByteSpan data, SimNanos arrival);

  // Flushes dirty data through compression to the SSD; returns when the
  // last extent and metadata land.
  Result<SimNanos> Sync(SimNanos arrival);

  struct ReadOutcome {
    SimNanos completion = 0;
    uint64_t extent_bytes_fetched = 0;  // read amplification numerator
    ByteVec data;
  };
  // Reads `len` bytes at `offset` (after Sync; cold cache).
  Result<ReadOutcome> Read(uint64_t offset, uint64_t len, SimNanos arrival);

  uint64_t stored_bytes() const { return stored_bytes_; }
  uint64_t logical_bytes() const { return logical_bytes_; }
  uint64_t extents_written() const { return extents_written_; }
  double checksum_overhead_ns() const { return checksum_ns_total_; }

 private:
  struct Extent {
    uint64_t logical_off;
    uint32_t logical_len;
    uint64_t base_lpn;
    uint32_t pages;
    uint32_t stored_len;
    bool compressed;
  };

  BtrfsConfig config_;
  SimSsd* ssd_;
  CompressionBackend backend_;
  uint64_t next_lpn_ = 0;

  std::map<uint64_t, ByteVec> dirty_;     // offset -> pending buffered data
  std::map<uint64_t, Extent> extents_;    // logical_off -> extent
  MultiServerQueue writeback_;
  uint64_t stored_bytes_ = 0;
  uint64_t logical_bytes_ = 0;
  uint64_t extents_written_ = 0;
  double checksum_ns_total_ = 0;
};

}  // namespace cdpu

#endif  // SRC_FS_BTRFS_SIM_H_
