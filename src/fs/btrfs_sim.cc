#include "src/fs/btrfs_sim.h"

#include <algorithm>
#include <cmath>

#include "src/common/crc32.h"

namespace cdpu {
namespace {

constexpr uint32_t kPageBytes = 4096;
constexpr double kChecksumNsPerKb = 25;  // crc32c-style rate

}  // namespace

BtrfsSim::BtrfsSim(const BtrfsConfig& config, SimSsd* ssd, CompressionBackend backend)
    : config_(config), ssd_(ssd), backend_(std::move(backend)),
      writeback_(config.writeback_threads) {}

Result<SimNanos> BtrfsSim::Write(uint64_t offset, ByteSpan data, SimNanos arrival) {
  if (offset % kPageBytes != 0 || data.size() % kPageBytes != 0 || data.empty()) {
    return Status::InvalidArgument("btrfs: page-aligned writes only");
  }
  // Page-cache copy; dirty data waits for writeback.
  dirty_[offset] = ByteVec(data.begin(), data.end());
  logical_bytes_ += data.size();
  double copy_ns =
      config_.writeback_copy_ns_per_kb * (static_cast<double>(data.size()) / 1024.0);
  return arrival + static_cast<SimNanos>(std::llround(copy_ns));
}

Result<SimNanos> BtrfsSim::Sync(SimNanos arrival) {
  // Coalesce adjacent dirty ranges into extents up to the cap.
  SimNanos last = arrival;
  while (!dirty_.empty()) {
    auto it = dirty_.begin();
    uint64_t ext_off = it->first;
    ByteVec ext_data = std::move(it->second);
    dirty_.erase(it);
    while (ext_data.size() < config_.max_extent_bytes) {
      auto next = dirty_.find(ext_off + ext_data.size());
      if (next == dirty_.end()) {
        break;
      }
      size_t room = config_.max_extent_bytes - ext_data.size();
      if (next->second.size() > room) {
        break;  // keep extents aligned to whole buffered writes
      }
      ext_data.insert(ext_data.end(), next->second.begin(), next->second.end());
      dirty_.erase(next);
    }

    // Async handoff to a writeback worker.
    SimNanos t = arrival + static_cast<SimNanos>(std::llround(config_.async_handoff_ns));

    Extent ext;
    ext.logical_off = ext_off;
    ext.logical_len = static_cast<uint32_t>(ext_data.size());

    ByteVec stored;
    if (backend_.codec != nullptr) {
      Result<size_t> r = backend_.codec->Compress(ext_data, &stored);
      if (!r.ok()) {
        return r.status();
      }
      if (stored.size() < ext_data.size()) {
        ext.compressed = true;
      } else {
        stored = ext_data;
        ext.compressed = false;
      }
      if (backend_.device != nullptr) {
        double ratio =
            static_cast<double>(stored.size()) / static_cast<double>(ext_data.size());
        t = backend_.device->Submit(CdpuOp::kCompress, ext_data.size(), ratio, t);
      }
    } else {
      stored = ext_data;
      ext.compressed = false;
    }

    if (config_.checksum) {
      (void)Crc32(stored);
      double csum_ns = kChecksumNsPerKb * (static_cast<double>(stored.size()) / 1024.0);
      checksum_ns_total_ += csum_ns;
      t += static_cast<SimNanos>(std::llround(csum_ns));
    }

    // Writeback worker occupancy: the extra buffered-IO copy serialises on
    // the limited worker pool (writeback bottleneck, Finding 11).
    double copy_ns =
        config_.writeback_copy_ns_per_kb * (static_cast<double>(stored.size()) / 1024.0);
    ServiceOutcome wb = writeback_.Submit(t, static_cast<SimNanos>(std::llround(copy_ns)));
    t = wb.completion;

    ext.stored_len = static_cast<uint32_t>(stored.size());
    ext.pages = static_cast<uint32_t>((stored.size() + kPageBytes - 1) / kPageBytes);
    ext.base_lpn = next_lpn_;
    next_lpn_ += ext.pages;
    stored.resize(static_cast<size_t>(ext.pages) * kPageBytes, 0);

    Result<SsdIoResult> w = ssd_->WriteMulti(ext.base_lpn, stored, t);
    if (!w.ok()) {
      return w.status();
    }
    t = w->completion;

    // Drop any extent this one fully replaces (simplified CoW supersede).
    auto old = extents_.find(ext.logical_off);
    if (old != extents_.end() && old->second.logical_len <= ext.logical_len) {
      for (uint32_t p = 0; p < old->second.pages; ++p) {
        ssd_->Trim(old->second.base_lpn + p);
      }
      extents_.erase(old);
    }
    stored_bytes_ += ext.stored_len;
    ++extents_written_;
    extents_[ext.logical_off] = ext;
    last = std::max(last, t);
  }
  return last + static_cast<SimNanos>(std::llround(config_.metadata_flush_ns));
}

Result<BtrfsSim::ReadOutcome> BtrfsSim::Read(uint64_t offset, uint64_t len,
                                             SimNanos arrival) {
  ReadOutcome out;
  // Find the extent containing `offset`.
  auto it = extents_.upper_bound(offset);
  if (it == extents_.begin()) {
    return Status::OutOfRange("btrfs: offset not written");
  }
  --it;
  const Extent& ext = it->second;
  if (offset < ext.logical_off || offset + len > ext.logical_off + ext.logical_len) {
    return Status::OutOfRange("btrfs: read crosses extent hole");
  }

  SimNanos t = arrival;
  uint64_t inner = offset - ext.logical_off;
  if (ext.compressed) {
    // The whole compressed extent must be fetched and decompressed, however
    // small the read (Finding 9).
    ByteVec raw;
    Result<SsdIoResult> r = ssd_->ReadMulti(ext.base_lpn, ext.pages, &raw, arrival);
    if (!r.ok()) {
      return r.status();
    }
    t = r->completion;
    out.extent_bytes_fetched = static_cast<uint64_t>(ext.pages) * kPageBytes;
    ByteSpan stored(raw.data(), ext.stored_len);
    ByteVec plain;
    Result<size_t> d = backend_.codec->Decompress(stored, &plain);
    if (!d.ok()) {
      return d.status();
    }
    if (backend_.device != nullptr) {
      double ratio = static_cast<double>(ext.stored_len) / ext.logical_len;
      t = backend_.device->Submit(CdpuOp::kDecompress, ext.logical_len, ratio, t);
    }
    out.data.assign(plain.begin() + inner, plain.begin() + inner + len);
  } else {
    // Uncompressed extents have no read amplification: fetch only the pages
    // covering the requested range.
    uint64_t first_page = inner / kPageBytes;
    uint64_t last_page = (inner + len - 1) / kPageBytes;
    uint32_t pages = static_cast<uint32_t>(last_page - first_page + 1);
    ByteVec raw;
    Result<SsdIoResult> r =
        ssd_->ReadMulti(ext.base_lpn + first_page, pages, &raw, arrival);
    if (!r.ok()) {
      return r.status();
    }
    t = r->completion;
    out.extent_bytes_fetched = static_cast<uint64_t>(pages) * kPageBytes;
    uint64_t in_page = inner - first_page * kPageBytes;
    out.data.assign(raw.begin() + in_page, raw.begin() + in_page + len);
  }
  out.completion = t;
  return out;
}

}  // namespace cdpu
