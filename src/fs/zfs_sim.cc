#include "src/fs/zfs_sim.h"

#include <cmath>

namespace cdpu {
namespace {

constexpr uint32_t kPageBytes = 4096;

}  // namespace

ZfsSim::ZfsSim(const ZfsConfig& config, SimSsd* ssd, CompressionBackend backend)
    : config_(config), ssd_(ssd), backend_(std::move(backend)) {}

Result<SimNanos> ZfsSim::WriteRecord(uint64_t offset, ByteSpan data, SimNanos arrival) {
  if (offset % config_.record_bytes != 0 || data.size() != config_.record_bytes) {
    return Status::InvalidArgument("zfs: whole record-aligned writes only");
  }
  SimNanos t = arrival + static_cast<SimNanos>(std::llround(config_.vfs_overhead_ns));

  Record rec;
  rec.logical_len = static_cast<uint32_t>(data.size());
  ByteVec stored;
  if (backend_.codec != nullptr) {
    Result<size_t> r = backend_.codec->Compress(data, &stored);
    if (!r.ok()) {
      return r.status();
    }
    rec.compressed = stored.size() < data.size();
    if (!rec.compressed) {
      stored.assign(data.begin(), data.end());
    }
    if (backend_.device != nullptr) {
      double ratio = static_cast<double>(stored.size()) / static_cast<double>(data.size());
      t = backend_.device->Submit(CdpuOp::kCompress, data.size(), ratio, t);
    }
  } else {
    stored.assign(data.begin(), data.end());
    rec.compressed = false;
  }

  rec.stored_len = static_cast<uint32_t>(stored.size());
  rec.pages = static_cast<uint32_t>((stored.size() + kPageBytes - 1) / kPageBytes);
  rec.base_lpn = next_lpn_;
  next_lpn_ += rec.pages;
  stored.resize(static_cast<size_t>(rec.pages) * kPageBytes, 0);

  Result<SsdIoResult> w = ssd_->WriteMulti(rec.base_lpn, stored, t);
  if (!w.ok()) {
    return w.status();
  }

  auto old = records_.find(offset);
  if (old != records_.end()) {
    for (uint32_t p = 0; p < old->second.pages; ++p) {
      ssd_->Trim(old->second.base_lpn + p);
    }
    stored_bytes_ -= old->second.stored_len;
    logical_bytes_ -= old->second.logical_len;
  }
  stored_bytes_ += rec.stored_len;
  logical_bytes_ += rec.logical_len;
  records_[offset] = rec;
  return w->completion;
}

Result<ZfsSim::ReadOutcome> ZfsSim::Read(uint64_t offset, uint64_t len, SimNanos arrival) {
  uint64_t rec_off = offset - offset % config_.record_bytes;
  auto it = records_.find(rec_off);
  if (it == records_.end()) {
    return Status::OutOfRange("zfs: record not written");
  }
  const Record& rec = it->second;
  if (offset + len > rec_off + rec.logical_len) {
    return Status::OutOfRange("zfs: read beyond record");
  }

  SimNanos t = arrival + static_cast<SimNanos>(std::llround(config_.vfs_overhead_ns));
  ByteVec raw;
  Result<SsdIoResult> r = ssd_->ReadMulti(rec.base_lpn, rec.pages, &raw, t);
  if (!r.ok()) {
    return r.status();
  }
  t = r->completion;

  ReadOutcome out;
  out.record_bytes_fetched = static_cast<uint64_t>(rec.pages) * kPageBytes;

  ByteVec plain;
  if (rec.compressed) {
    ByteSpan stored(raw.data(), rec.stored_len);
    Result<size_t> d = backend_.codec->Decompress(stored, &plain);
    if (!d.ok()) {
      return d.status();
    }
    if (backend_.device != nullptr) {
      double ratio = static_cast<double>(rec.stored_len) / rec.logical_len;
      t = backend_.device->Submit(CdpuOp::kDecompress, rec.logical_len, ratio, t);
    }
  } else {
    plain.assign(raw.begin(), raw.begin() + rec.logical_len);
  }

  uint64_t inner = offset - rec_off;
  out.data.assign(plain.begin() + inner, plain.begin() + inner + len);
  out.completion = t;
  return out;
}

}  // namespace cdpu
