#include "src/codecs/lz4_codec.h"

#include <cstring>

namespace cdpu {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMaxOffset = 65535;
// LZ4 spec: the last 5 bytes are always literals, and a match must not start
// within the last 12 bytes of the block.
constexpr size_t kLastLiterals = 5;
constexpr size_t kMatchGuard = 12;

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

void WriteLength(ByteVec* out, size_t len) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

// Emits one sequence: literals [lit_begin, lit_end), then a match of `mlen`
// at `offset`. mlen==0 means the terminating literal-only sequence.
void EmitSequence(ByteVec* out, const uint8_t* lit_begin, size_t lit_len, size_t offset,
                  size_t mlen) {
  size_t token_lit = lit_len < 15 ? lit_len : 15;
  size_t token_match = 0;
  if (mlen > 0) {
    size_t m = mlen - kMinMatch;
    token_match = m < 15 ? m : 15;
  }
  out->push_back(static_cast<uint8_t>((token_lit << 4) | token_match));
  if (token_lit == 15) {
    WriteLength(out, lit_len - 15);
  }
  out->insert(out->end(), lit_begin, lit_begin + lit_len);
  if (mlen > 0) {
    out->push_back(static_cast<uint8_t>(offset & 0xff));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    if (token_match == 15) {
      WriteLength(out, mlen - kMinMatch - 15);
    }
  }
}

}  // namespace

Result<size_t> Lz4Codec::Compress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  const uint8_t* base = input.data();
  size_t n = input.size();

  if (n == 0) {
    return size_t{0};
  }
  if (n < kMatchGuard + 1) {
    // Too short for any match: single literal run.
    EmitSequence(out, base, n, 0, 0);
    return out->size() - start_size;
  }

  table_.assign(kHashSize, 0);  // position+1; 0 = empty
  std::vector<uint32_t>& table = table_;
  size_t anchor = 0;
  size_t pos = 0;
  size_t match_limit = n - kMatchGuard;

  while (pos < match_limit) {
    uint32_t h = Hash4(Load32(base + pos));
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);
    size_t cpos = cand == 0 ? SIZE_MAX : cand - 1;

    if (cpos != SIZE_MAX && pos - cpos <= kMaxOffset &&
        Load32(base + cpos) == Load32(base + pos)) {
      // Extend the match forward.
      size_t mlen = kMinMatch;
      size_t scan_limit = n - kLastLiterals;
      while (pos + mlen < scan_limit && base[cpos + mlen] == base[pos + mlen]) {
        ++mlen;
      }
      EmitSequence(out, base + anchor, pos - anchor, pos - cpos, mlen);
      pos += mlen;
      anchor = pos;
      // Prime the table at a couple of positions inside the match so
      // subsequent matches can reference it.
      if (pos < match_limit) {
        table[Hash4(Load32(base + pos - 2))] = static_cast<uint32_t>(pos - 2 + 1);
      }
    } else {
      ++pos;
    }
  }

  // Trailing literals.
  EmitSequence(out, base + anchor, n - anchor, 0, 0);
  return out->size() - start_size;
}

Result<size_t> Lz4Codec::Decompress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  size_t pos = 0;
  size_t n = input.size();

  if (n == 0) {
    return size_t{0};
  }

  while (pos < n) {
    uint8_t token = input[pos++];
    size_t lit_len = token >> 4;
    if (lit_len == 15) {
      uint8_t b;
      do {
        if (pos >= n) {
          return Status::CorruptData("lz4: truncated literal length");
        }
        b = input[pos++];
        lit_len += b;
      } while (b == 255);
    }
    if (pos + lit_len > n) {
      return Status::CorruptData("lz4: literal run past end");
    }
    out->insert(out->end(), input.begin() + pos, input.begin() + pos + lit_len);
    pos += lit_len;
    if (pos >= n) {
      break;  // terminating literal-only sequence
    }

    if (pos + 2 > n) {
      return Status::CorruptData("lz4: truncated offset");
    }
    size_t offset = input[pos] | (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out->size() - start_size) {
      return Status::CorruptData("lz4: offset out of range");
    }

    size_t mlen = (token & 0x0f);
    if (mlen == 15) {
      uint8_t b;
      do {
        if (pos >= n) {
          return Status::CorruptData("lz4: truncated match length");
        }
        b = input[pos++];
        mlen += b;
      } while (b == 255);
    }
    mlen += kMinMatch;

    // Byte-wise copy handles overlapping matches (offset < mlen).
    size_t src = out->size() - offset;
    for (size_t i = 0; i < mlen; ++i) {
      out->push_back((*out)[src + i]);
    }
  }
  return out->size() - start_size;
}

}  // namespace cdpu
