#include "src/codecs/snappy_codec.h"

#include <cstring>

#include "src/common/varint.h"

namespace cdpu {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMaxOffset = 65535;

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash4(uint32_t v) { return (v * 0x1e35a7bdu) >> (32 - kHashBits); }

void EmitLiteral(ByteVec* out, const uint8_t* p, size_t len) {
  while (len > 0) {
    size_t chunk = len;
    size_t l = chunk - 1;
    if (l < 60) {
      out->push_back(static_cast<uint8_t>(l << 2));
    } else if (l < 256) {
      out->push_back(60 << 2);
      out->push_back(static_cast<uint8_t>(l));
    } else if (l < 65536) {
      out->push_back(61 << 2);
      out->push_back(static_cast<uint8_t>(l & 0xff));
      out->push_back(static_cast<uint8_t>(l >> 8));
    } else {
      // Cap one element at 64 KB of literals and loop.
      chunk = 65536;
      l = chunk - 1;
      out->push_back(61 << 2);
      out->push_back(static_cast<uint8_t>(l & 0xff));
      out->push_back(static_cast<uint8_t>(l >> 8));
    }
    out->insert(out->end(), p, p + chunk);
    p += chunk;
    len -= chunk;
  }
}

// Emits copy elements covering `len` bytes at `offset`, splitting into legal
// element sizes (copy-2 carries 1..64 bytes).
void EmitCopy(ByteVec* out, size_t offset, size_t len) {
  // Prefer the compact copy-1 form (4..11 bytes, offset < 2048).
  while (len >= 4) {
    if (offset < 2048 && len < 12) {
      out->push_back(static_cast<uint8_t>(0x01 | ((len - 4) << 2) | ((offset >> 8) << 5)));
      out->push_back(static_cast<uint8_t>(offset & 0xff));
      return;
    }
    size_t chunk = len > 64 ? 64 : len;
    if (len - chunk > 0 && len - chunk < 4) {
      chunk = len - 4;  // keep the remainder emit-able
    }
    out->push_back(static_cast<uint8_t>(0x02 | ((chunk - 1) << 2)));
    out->push_back(static_cast<uint8_t>(offset & 0xff));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    len -= chunk;
  }
}

}  // namespace

Result<size_t> SnappyCodec::Compress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  PutVarint64(out, input.size());

  const uint8_t* base = input.data();
  size_t n = input.size();
  if (n < kMinMatch + 4) {
    if (n > 0) {
      EmitLiteral(out, base, n);
    }
    return out->size() - start_size;
  }

  std::vector<uint32_t> table(kHashSize, 0);
  size_t anchor = 0;
  size_t pos = 0;
  size_t limit = n - 4;  // need 4 loadable bytes

  while (pos < limit) {
    uint32_t h = Hash4(Load32(base + pos));
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);
    size_t cpos = cand == 0 ? SIZE_MAX : cand - 1;

    if (cpos != SIZE_MAX && pos - cpos <= kMaxOffset &&
        Load32(base + cpos) == Load32(base + pos)) {
      size_t mlen = kMinMatch;
      while (pos + mlen < n && base[cpos + mlen] == base[pos + mlen]) {
        ++mlen;
      }
      if (pos > anchor) {
        EmitLiteral(out, base + anchor, pos - anchor);
      }
      EmitCopy(out, pos - cpos, mlen);
      pos += mlen;
      anchor = pos;
    } else {
      ++pos;
    }
  }
  if (anchor < n) {
    EmitLiteral(out, base + anchor, n - anchor);
  }
  return out->size() - start_size;
}

Result<size_t> SnappyCodec::Decompress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  size_t pos = 0;
  std::optional<uint64_t> expected = GetVarint64(input, &pos);
  if (!expected.has_value()) {
    return Status::CorruptData("snappy: bad length preamble");
  }

  size_t n = input.size();
  while (pos < n) {
    uint8_t tag = input[pos++];
    switch (tag & 0x03) {
      case 0x00: {  // literal
        size_t len = (tag >> 2) + 1;
        if (len > 60) {
          size_t extra = len - 60;  // 1..4 length bytes
          if (pos + extra > n) {
            return Status::CorruptData("snappy: truncated literal length");
          }
          len = 0;
          for (size_t i = 0; i < extra; ++i) {
            len |= static_cast<size_t>(input[pos + i]) << (8 * i);
          }
          len += 1;
          pos += extra;
        }
        if (pos + len > n) {
          return Status::CorruptData("snappy: literal past end");
        }
        out->insert(out->end(), input.begin() + pos, input.begin() + pos + len);
        pos += len;
        break;
      }
      case 0x01: {  // copy, 1-byte offset
        if (pos >= n) {
          return Status::CorruptData("snappy: truncated copy-1");
        }
        size_t len = 4 + ((tag >> 2) & 0x07);
        size_t offset = (static_cast<size_t>(tag >> 5) << 8) | input[pos++];
        if (offset == 0 || offset > out->size() - start_size) {
          return Status::CorruptData("snappy: copy-1 offset out of range");
        }
        size_t src = out->size() - offset;
        for (size_t i = 0; i < len; ++i) {
          out->push_back((*out)[src + i]);
        }
        break;
      }
      case 0x02: {  // copy, 2-byte offset
        if (pos + 2 > n) {
          return Status::CorruptData("snappy: truncated copy-2");
        }
        size_t len = (tag >> 2) + 1;
        size_t offset = input[pos] | (static_cast<size_t>(input[pos + 1]) << 8);
        pos += 2;
        if (offset == 0 || offset > out->size() - start_size) {
          return Status::CorruptData("snappy: copy-2 offset out of range");
        }
        size_t src = out->size() - offset;
        for (size_t i = 0; i < len; ++i) {
          out->push_back((*out)[src + i]);
        }
        break;
      }
      default: {  // copy, 4-byte offset (decode-only)
        if (pos + 4 > n) {
          return Status::CorruptData("snappy: truncated copy-4");
        }
        size_t len = (tag >> 2) + 1;
        size_t offset = 0;
        for (size_t i = 0; i < 4; ++i) {
          offset |= static_cast<size_t>(input[pos + i]) << (8 * i);
        }
        pos += 4;
        if (offset == 0 || offset > out->size() - start_size) {
          return Status::CorruptData("snappy: copy-4 offset out of range");
        }
        size_t src = out->size() - offset;
        for (size_t i = 0; i < len; ++i) {
          out->push_back((*out)[src + i]);
        }
        break;
      }
    }
  }
  if (out->size() - start_size != *expected) {
    return Status::CorruptData("snappy: length mismatch after decode");
  }
  return out->size() - start_size;
}

}  // namespace cdpu
