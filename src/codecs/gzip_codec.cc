#include "src/codecs/gzip_codec.h"

#include "src/common/crc32.h"

namespace cdpu {
namespace {

constexpr uint8_t kId1 = 0x1f;
constexpr uint8_t kId2 = 0x8b;
constexpr uint8_t kCmDeflate = 8;

void PutLe32(ByteVec* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out->push_back(static_cast<uint8_t>((v >> 24) & 0xff));
}

uint32_t GetLe32(ByteSpan data, size_t pos) {
  return static_cast<uint32_t>(data[pos]) | (static_cast<uint32_t>(data[pos + 1]) << 8) |
         (static_cast<uint32_t>(data[pos + 2]) << 16) |
         (static_cast<uint32_t>(data[pos + 3]) << 24);
}

}  // namespace

Result<size_t> GzipCodec::Compress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  // Header: magic, method, flags, mtime(4, zero), XFL, OS (255 = unknown).
  out->insert(out->end(), {kId1, kId2, kCmDeflate, 0, 0, 0, 0, 0, 0, 255});
  Result<size_t> r = deflate_.Compress(input, out);
  if (!r.ok()) {
    return r.status();
  }
  PutLe32(out, Crc32(input));
  PutLe32(out, static_cast<uint32_t>(input.size() & 0xffffffff));
  return out->size() - start_size;
}

Result<size_t> GzipCodec::Decompress(ByteSpan input, ByteVec* out) {
  if (input.size() < 18) {
    return Status::CorruptData("gzip: stream too short");
  }
  if (input[0] != kId1 || input[1] != kId2 || input[2] != kCmDeflate) {
    return Status::CorruptData("gzip: bad magic or method");
  }
  uint8_t flg = input[3];
  size_t pos = 10;
  if (flg & 0x04) {  // FEXTRA
    if (pos + 2 > input.size()) {
      return Status::CorruptData("gzip: truncated FEXTRA");
    }
    size_t xlen = input[pos] | (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2 + xlen;
  }
  for (uint8_t bit : {uint8_t{0x08}, uint8_t{0x10}}) {  // FNAME, FCOMMENT
    if (flg & bit) {
      while (pos < input.size() && input[pos] != 0) {
        ++pos;
      }
      ++pos;  // NUL
    }
  }
  if (flg & 0x02) {  // FHCRC
    pos += 2;
  }
  if (pos + 8 > input.size()) {
    return Status::CorruptData("gzip: truncated stream");
  }

  size_t body_len = input.size() - pos - 8;
  size_t out_start = out->size();
  Result<size_t> r = deflate_.Decompress(input.subspan(pos, body_len), out);
  if (!r.ok()) {
    return r.status();
  }
  uint32_t want_crc = GetLe32(input, input.size() - 8);
  uint32_t want_isize = GetLe32(input, input.size() - 4);
  ByteSpan produced(out->data() + out_start, out->size() - out_start);
  if (Crc32(produced) != want_crc) {
    return Status::CorruptData("gzip: CRC mismatch");
  }
  if (static_cast<uint32_t>(produced.size() & 0xffffffff) != want_isize) {
    return Status::CorruptData("gzip: ISIZE mismatch");
  }
  return produced.size();
}

}  // namespace cdpu
