// Finite State Entropy (tANS) encoder/decoder, following the construction
// used by Zstd/FSE: normalised power-of-two frequency tables, the standard
// symbol spread, per-symbol state transition tables, and a backward-read bit
// stream. The paper's DPZip FSE engine is "fully compatible with the software
// implementation in Zstd" (§3.3), so src/core reuses this implementation and
// wraps it in the hardware timing model.

#ifndef SRC_CODECS_FSE_H_
#define SRC_CODECS_FSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace cdpu {

constexpr uint32_t kFseMinTableLog = 5;
constexpr uint32_t kFseMaxTableLog = 12;

// Normalises raw symbol frequencies so they sum to 2^table_log, every present
// symbol keeping a count >= 1 (largest-remainder method). Returns an empty
// vector if no symbol is present.
std::vector<uint32_t> FseNormalize(std::span<const uint32_t> freqs, uint32_t table_log);

// Picks a table_log for an alphabet: large enough to give every present
// symbol a slot, bounded by [kFseMinTableLog, kFseMaxTableLog].
uint32_t FseChooseTableLog(std::span<const uint32_t> freqs, uint32_t max_log = 9);

class FseEncoder {
 public:
  // `normalized` must sum to 2^table_log.
  Status Init(std::span<const uint32_t> normalized, uint32_t table_log);

  // Encodes `symbols` appending the FSE stream (with end marker) to `*out`.
  // Every symbol must have a nonzero normalised count.
  Status Encode(std::span<const uint8_t> symbols, std::vector<uint8_t>* out) const;

 private:
  struct SymbolTransform {
    uint32_t delta_nb_bits;
    int32_t delta_find_state;
  };

  uint32_t table_log_ = 0;
  uint32_t table_size_ = 0;
  std::vector<uint16_t> state_table_;          // next-state table
  std::vector<SymbolTransform> transforms_;    // per symbol
  std::vector<uint32_t> normalized_;
};

class FseDecoder {
 public:
  Status Init(std::span<const uint32_t> normalized, uint32_t table_log);

  // Decodes exactly `count` symbols from `data` (a stream produced by
  // FseEncoder::Encode with the same table), appending to `*out`.
  Status Decode(std::span<const uint8_t> data, size_t count, std::vector<uint8_t>* out) const;

 private:
  struct Cell {
    uint8_t symbol;
    uint8_t nb_bits;
    uint16_t new_state_base;
  };

  uint32_t table_log_ = 0;
  std::vector<Cell> cells_;
};

// Convenience one-shot helpers used by tests and the MiniZstd coder: build a
// table from the data's own histogram, serialise the normalised counts, and
// encode; and the inverse. Stream layout:
//   varint alphabet_size, u8 table_log, varint normalized[alphabet_size],
//   varint symbol_count, FSE payload.
Status FseCompressBlock(std::span<const uint8_t> symbols, uint32_t max_log,
                        std::vector<uint8_t>* out);
Status FseDecompressBlock(std::span<const uint8_t> data, size_t* consumed,
                          std::vector<uint8_t>* out);

}  // namespace cdpu

#endif  // SRC_CODECS_FSE_H_
