#include "src/codecs/deflate_codec.h"

#include <array>
#include <cstring>
#include <optional>

#include "src/codecs/huffman_coder.h"
#include "src/common/bitstream.h"
#include "src/trace/trace.h"

namespace cdpu {
namespace {

constexpr size_t kWindowSize = 32768;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 258;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kEndOfBlock = 256;
constexpr size_t kNumLitLen = 288;
constexpr size_t kNumDist = 30;

// RFC 1951 §3.2.5: length codes 257..285.
constexpr uint16_t kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19, 23,
                                      27, 31, 35, 43, 51, 59, 67, 83, 99,  115, 131, 163, 195, 227,
                                      258};
constexpr uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                      2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
// Distance codes 0..29.
constexpr uint16_t kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,     13,   17,   25,
                                    33,   49,   65,   97,   129,  193,   257,   385,  513,  769,
                                    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr uint8_t kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
                                    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};
// Order in which code-length code lengths are transmitted (§3.2.7).
constexpr uint8_t kClcOrder[19] = {16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

int LengthToCode(size_t len) {
  for (int i = 28; i >= 0; --i) {
    if (len >= kLengthBase[i]) {
      return i;
    }
  }
  return 0;
}

int DistToCode(size_t dist) {
  for (int i = 29; i >= 0; --i) {
    if (dist >= kDistBase[i]) {
      return i;
    }
  }
  return 0;
}

uint32_t Hash3(const uint8_t* p) {
  uint32_t v = p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Token {
  uint16_t length;  // 0 = literal
  uint16_t dist;
  uint8_t literal;
};

// Fixed Huffman lengths (§3.2.6).
std::vector<uint8_t> FixedLitLenLengths() {
  std::vector<uint8_t> l(kNumLitLen);
  for (size_t i = 0; i <= 143; ++i) {
    l[i] = 8;
  }
  for (size_t i = 144; i <= 255; ++i) {
    l[i] = 9;
  }
  for (size_t i = 256; i <= 279; ++i) {
    l[i] = 7;
  }
  for (size_t i = 280; i <= 287; ++i) {
    l[i] = 8;
  }
  return l;
}

// All 32 5-bit distance codes exist in the fixed tree (30/31 are reserved
// but participate in the code space, keeping the code complete — §3.2.6).
std::vector<uint8_t> FixedDistLengths() { return std::vector<uint8_t>(32, 5); }

class Lz77Parser {
 public:
  // The prev ring must be a power of two (indexed by pos & (size-1)) and at
  // least twice the window so in-window chain entries are never clobbered.
  Lz77Parser(ByteSpan input, uint32_t max_chain, bool lazy)
      : in_(input), max_chain_(max_chain), lazy_(lazy), head_(kHashSize, -1),
        prev_(size_t{1} << 16, -1) {}

  std::vector<Token> Parse() {
    std::vector<Token> tokens;
    size_t n = in_.size();
    size_t pos = 0;
    while (pos < n) {
      size_t best_len = 0;
      size_t best_dist = 0;
      if (pos + kMinMatch <= n) {
        FindMatch(pos, &best_len, &best_dist);
      }
      if (lazy_ && best_len >= kMinMatch && best_len < 64 && pos + 1 + kMinMatch <= n) {
        // One-step lazy evaluation: if the next position has a longer match,
        // emit this byte as a literal instead.
        Insert(pos);
        size_t next_len = 0;
        size_t next_dist = 0;
        FindMatch(pos + 1, &next_len, &next_dist);
        if (next_len > best_len) {
          tokens.push_back(Token{0, 0, in_[pos]});
          ++pos;
          continue;  // the longer match is found again next iteration
        }
        if (best_len >= kMinMatch) {
          tokens.push_back(
              Token{static_cast<uint16_t>(best_len), static_cast<uint16_t>(best_dist), 0});
          for (size_t i = 1; i < best_len && pos + i + kMinMatch <= n; ++i) {
            Insert(pos + i);
          }
          pos += best_len;
          continue;
        }
      }
      if (best_len >= kMinMatch) {
        tokens.push_back(
            Token{static_cast<uint16_t>(best_len), static_cast<uint16_t>(best_dist), 0});
        for (size_t i = 0; i < best_len && pos + i + kMinMatch <= n; ++i) {
          Insert(pos + i);
        }
        pos += best_len;
      } else {
        if (pos + kMinMatch <= n) {
          Insert(pos);
        }
        tokens.push_back(Token{0, 0, in_[pos]});
        ++pos;
      }
    }
    return tokens;
  }

 private:
  void Insert(size_t pos) {
    uint32_t h = Hash3(in_.data() + pos);
    prev_[pos & (prev_.size() - 1)] = head_[h];
    head_[h] = static_cast<int64_t>(pos);
  }

  void FindMatch(size_t pos, size_t* best_len, size_t* best_dist) {
    uint32_t h = Hash3(in_.data() + pos);
    int64_t cand = head_[h];
    uint32_t chain = max_chain_;
    size_t limit = std::min(in_.size() - pos, kMaxMatch);
    while (cand >= 0 && chain-- > 0) {
      size_t cpos = static_cast<size_t>(cand);
      size_t dist = pos - cpos;
      if (dist > kWindowSize) {
        break;
      }
      size_t len = 0;
      while (len < limit && in_[cpos + len] == in_[pos + len]) {
        ++len;
      }
      if (len > *best_len) {
        *best_len = len;
        *best_dist = dist;
        if (len >= limit) {
          break;
        }
      }
      int64_t nxt = prev_[cpos & (prev_.size() - 1)];
      if (nxt >= cand) {
        break;  // ring wrapped; stale entry
      }
      cand = nxt;
    }
  }

  ByteSpan in_;
  uint32_t max_chain_;
  bool lazy_;
  std::vector<int64_t> head_;
  std::vector<int64_t> prev_;
};

// Encodes the dynamic-Huffman table header (§3.2.7): code lengths for the
// litlen+dist alphabets, RLE-compressed with symbols 16/17/18, themselves
// Huffman coded.
void WriteDynamicHeader(BitWriter* bw, std::span<const uint8_t> ll_lengths,
                        std::span<const uint8_t> d_lengths) {
  size_t hlit = kNumLitLen;
  while (hlit > 257 && ll_lengths[hlit - 1] == 0) {
    --hlit;
  }
  size_t hdist = kNumDist;
  while (hdist > 1 && d_lengths[hdist - 1] == 0) {
    --hdist;
  }

  // Concatenate and RLE-encode.
  std::vector<uint8_t> all(ll_lengths.begin(), ll_lengths.begin() + hlit);
  all.insert(all.end(), d_lengths.begin(), d_lengths.begin() + hdist);

  struct ClcSym {
    uint8_t sym;
    uint8_t extra_bits;
    uint8_t extra_val;
  };
  std::vector<ClcSym> rle;
  for (size_t i = 0; i < all.size();) {
    uint8_t v = all[i];
    size_t run = 1;
    while (i + run < all.size() && all[i + run] == v) {
      ++run;
    }
    i += run;
    if (v == 0) {
      while (run >= 3) {
        size_t take = std::min(run, size_t{138});
        if (take <= 10) {
          rle.push_back({17, 3, static_cast<uint8_t>(take - 3)});
        } else {
          rle.push_back({18, 7, static_cast<uint8_t>(take - 11)});
        }
        run -= take;
      }
      for (size_t k = 0; k < run; ++k) {
        rle.push_back({0, 0, 0});
      }
    } else {
      rle.push_back({v, 0, 0});
      --run;
      while (run >= 3) {
        size_t take = std::min(run, size_t{6});
        rle.push_back({16, 2, static_cast<uint8_t>(take - 3)});
        run -= take;
      }
      for (size_t k = 0; k < run; ++k) {
        rle.push_back({v, 0, 0});
      }
    }
  }

  std::array<uint32_t, 19> clc_freq{};
  for (const ClcSym& s : rle) {
    ++clc_freq[s.sym];
  }
  std::vector<uint8_t> clc_lengths = BuildHuffmanLengths(clc_freq, 7);
  std::vector<uint16_t> clc_codes;
  Status st = AssignCanonicalCodes(clc_lengths, &clc_codes);
  (void)st;

  size_t hclen = 19;
  while (hclen > 4 && clc_lengths[kClcOrder[hclen - 1]] == 0) {
    --hclen;
  }

  bw->Write(hlit - 257, 5);
  bw->Write(hdist - 1, 5);
  bw->Write(hclen - 4, 4);
  for (size_t i = 0; i < hclen; ++i) {
    bw->Write(clc_lengths[kClcOrder[i]], 3);
  }
  for (const ClcSym& s : rle) {
    bw->Write(ReverseBits(clc_codes[s.sym], clc_lengths[s.sym]), clc_lengths[s.sym]);
    if (s.extra_bits > 0) {
      bw->Write(s.extra_val, s.extra_bits);
    }
  }
}

// Writes the token stream with the given codes.
void WriteTokens(BitWriter* bw, const std::vector<Token>& tokens,
                 std::span<const uint8_t> ll_lengths, std::span<const uint16_t> ll_codes,
                 std::span<const uint8_t> d_lengths, std::span<const uint16_t> d_codes) {
  for (const Token& t : tokens) {
    if (t.length == 0) {
      bw->Write(ReverseBits(ll_codes[t.literal], ll_lengths[t.literal]), ll_lengths[t.literal]);
    } else {
      int lc = LengthToCode(t.length);
      int sym = 257 + lc;
      bw->Write(ReverseBits(ll_codes[sym], ll_lengths[sym]), ll_lengths[sym]);
      if (kLengthExtra[lc] > 0) {
        bw->Write(t.length - kLengthBase[lc], kLengthExtra[lc]);
      }
      int dc = DistToCode(t.dist);
      bw->Write(ReverseBits(d_codes[dc], d_lengths[dc]), d_lengths[dc]);
      if (kDistExtra[dc] > 0) {
        bw->Write(t.dist - kDistBase[dc], kDistExtra[dc]);
      }
    }
  }
  bw->Write(ReverseBits(ll_codes[kEndOfBlock], ll_lengths[kEndOfBlock]),
            ll_lengths[kEndOfBlock]);
}

// Cost in bits of coding `tokens` with the given lengths (excluding header).
uint64_t TokenCost(const std::vector<Token>& tokens, std::span<const uint8_t> ll_lengths,
                   std::span<const uint8_t> d_lengths) {
  uint64_t bits = 0;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      bits += ll_lengths[t.literal];
    } else {
      int lc = LengthToCode(t.length);
      bits += ll_lengths[257 + lc] + kLengthExtra[lc];
      int dc = DistToCode(t.dist);
      bits += d_lengths[dc] + kDistExtra[dc];
    }
  }
  bits += ll_lengths[kEndOfBlock];
  return bits;
}

}  // namespace

DeflateCodec::DeflateCodec(int level) : level_(level) {
  if (level <= 1) {
    max_chain_ = 8;
    lazy_ = false;
  } else if (level <= 6) {
    max_chain_ = 128;
    lazy_ = true;
  } else {
    max_chain_ = 1024;
    lazy_ = true;
  }
}

Result<size_t> DeflateCodec::Compress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();

  Lz77Parser parser(input, max_chain_, lazy_);
  std::vector<Token> tokens;
  {
    trace::CodecPhaseSpan lz77_span(trace::Phase::kCodecLz77);
    tokens = parser.Parse();
  }

  // Entropy phase: frequency counting, tree builds and token coding; ends
  // (via reset) before the stored-block fallback comparison.
  std::optional<trace::CodecPhaseSpan> entropy_span(std::in_place,
                                                    trace::Phase::kCodecEntropy);
  std::array<uint32_t, kNumLitLen> ll_freq{};
  std::array<uint32_t, kNumDist> d_freq{};
  ll_freq[kEndOfBlock] = 1;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++ll_freq[t.literal];
    } else {
      ++ll_freq[static_cast<size_t>(257 + LengthToCode(t.length))];
      ++d_freq[static_cast<size_t>(DistToCode(t.dist))];
    }
  }

  std::vector<uint8_t> dyn_ll = BuildHuffmanLengths(ll_freq, 15);
  std::vector<uint8_t> dyn_d = BuildHuffmanLengths(d_freq, 15);
  // Deflate requires at least one distance code length when HDIST >= 1; a
  // single-code tree is legal, zero codes encoded as one zero length.
  std::vector<uint16_t> dyn_ll_codes;
  std::vector<uint16_t> dyn_d_codes;
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(dyn_ll, &dyn_ll_codes));
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(dyn_d, &dyn_d_codes));

  std::vector<uint8_t> fix_ll = FixedLitLenLengths();
  std::vector<uint8_t> fix_d = FixedDistLengths();
  std::vector<uint16_t> fix_ll_codes;
  std::vector<uint16_t> fix_d_codes;
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(fix_ll, &fix_ll_codes));
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(fix_d, &fix_d_codes));

  uint64_t dyn_cost = TokenCost(tokens, dyn_ll, dyn_d) + 200;  // ~header estimate
  uint64_t fix_cost = TokenCost(tokens, fix_ll, fix_d);
  uint64_t stored_cost = (input.size() + (input.size() / 65535 + 1) * 5) * 8;

  ByteVec coded;
  {
    BitWriter bw(&coded);
    if (dyn_cost <= fix_cost) {
      bw.Write(1, 1);  // BFINAL
      bw.Write(2, 2);  // dynamic
      WriteDynamicHeader(&bw, dyn_ll, dyn_d);
      WriteTokens(&bw, tokens, dyn_ll, dyn_ll_codes, dyn_d, dyn_d_codes);
    } else {
      bw.Write(1, 1);
      bw.Write(1, 2);  // fixed
      WriteTokens(&bw, tokens, fix_ll, fix_ll_codes, fix_d, fix_d_codes);
    }
    bw.AlignToByte();
  }
  entropy_span.reset();

  if (coded.size() * 8 < stored_cost) {
    out->insert(out->end(), coded.begin(), coded.end());
  } else {
    // Stored blocks, 65535-byte max each.
    ByteVec stored;
    BitWriter bw(&stored);
    size_t pos = 0;
    do {
      size_t chunk = std::min(input.size() - pos, size_t{65535});
      bool final_block = pos + chunk == input.size();
      bw.Write(final_block ? 1 : 0, 1);
      bw.Write(0, 2);
      bw.AlignToByte();
      stored.push_back(static_cast<uint8_t>(chunk & 0xff));
      stored.push_back(static_cast<uint8_t>(chunk >> 8));
      stored.push_back(static_cast<uint8_t>(~chunk & 0xff));
      stored.push_back(static_cast<uint8_t>((~chunk >> 8) & 0xff));
      stored.insert(stored.end(), input.begin() + pos, input.begin() + pos + chunk);
      pos += chunk;
    } while (pos < input.size());
    out->insert(out->end(), stored.begin(), stored.end());
  }
  return out->size() - start_size;
}

Result<size_t> DeflateCodec::Decompress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  // Inflate interleaves Huffman decode with match copy-back per token, so the
  // whole pass is attributed to the entropy sub-phase (the decode dominates).
  trace::CodecPhaseSpan entropy_span(trace::Phase::kCodecEntropy);
  BitReader br(input);

  for (;;) {
    uint32_t bfinal = static_cast<uint32_t>(br.Read(1));
    uint32_t btype = static_cast<uint32_t>(br.Read(2));
    if (br.overflowed()) {
      return Status::CorruptData("deflate: truncated block header");
    }

    if (btype == 0) {  // stored
      br.AlignToByte();
      uint32_t len = static_cast<uint32_t>(br.Read(16));
      uint32_t nlen = static_cast<uint32_t>(br.Read(16));
      if (br.overflowed() || (len ^ nlen) != 0xffff) {
        return Status::CorruptData("deflate: bad stored header");
      }
      for (uint32_t i = 0; i < len; ++i) {
        uint64_t b = br.Read(8);
        if (br.overflowed()) {
          return Status::CorruptData("deflate: truncated stored data");
        }
        out->push_back(static_cast<uint8_t>(b));
      }
    } else if (btype == 1 || btype == 2) {
      HuffmanDecoder ll_dec;
      HuffmanDecoder d_dec;
      if (btype == 1) {
        std::vector<uint8_t> fl = FixedLitLenLengths();
        std::vector<uint8_t> fd = FixedDistLengths();
        CDPU_RETURN_IF_ERROR(ll_dec.Init(fl));
        CDPU_RETURN_IF_ERROR(d_dec.Init(fd));
      } else {
        size_t hlit = static_cast<size_t>(br.Read(5)) + 257;
        size_t hdist = static_cast<size_t>(br.Read(5)) + 1;
        size_t hclen = static_cast<size_t>(br.Read(4)) + 4;
        if (br.overflowed() || hlit > 286 || hdist > 30) {
          return Status::CorruptData("deflate: bad dynamic counts");
        }
        std::vector<uint8_t> clc_lengths(19, 0);
        for (size_t i = 0; i < hclen; ++i) {
          clc_lengths[kClcOrder[i]] = static_cast<uint8_t>(br.Read(3));
        }
        HuffmanDecoder clc_dec;
        CDPU_RETURN_IF_ERROR(clc_dec.Init(clc_lengths));

        std::vector<uint8_t> all(hlit + hdist, 0);
        size_t i = 0;
        while (i < all.size()) {
          uint32_t len = 0;
          int sym = clc_dec.Decode(static_cast<uint32_t>(br.Peek(clc_dec.max_len())), &len);
          if (sym < 0 || br.overflowed()) {
            return Status::CorruptData("deflate: bad code-length symbol");
          }
          br.Skip(len);
          if (sym < 16) {
            all[i++] = static_cast<uint8_t>(sym);
          } else if (sym == 16) {
            if (i == 0) {
              return Status::CorruptData("deflate: repeat with no previous length");
            }
            size_t run = 3 + br.Read(2);
            uint8_t v = all[i - 1];
            while (run-- > 0 && i < all.size()) {
              all[i++] = v;
            }
          } else if (sym == 17) {
            size_t run = 3 + br.Read(3);
            while (run-- > 0 && i < all.size()) {
              all[i++] = 0;
            }
          } else {
            size_t run = 11 + br.Read(7);
            while (run-- > 0 && i < all.size()) {
              all[i++] = 0;
            }
          }
        }
        std::vector<uint8_t> ll(all.begin(), all.begin() + hlit);
        std::vector<uint8_t> dd(all.begin() + hlit, all.end());
        CDPU_RETURN_IF_ERROR(ll_dec.Init(ll));
        CDPU_RETURN_IF_ERROR(d_dec.Init(dd));
      }

      for (;;) {
        uint32_t len = 0;
        int sym = ll_dec.Decode(static_cast<uint32_t>(br.Peek(ll_dec.max_len())), &len);
        if (sym < 0 || br.overflowed()) {
          return Status::CorruptData("deflate: bad literal/length symbol");
        }
        br.Skip(len);
        if (sym < 256) {
          out->push_back(static_cast<uint8_t>(sym));
        } else if (sym == kEndOfBlock) {
          break;
        } else {
          size_t lc = static_cast<size_t>(sym - 257);
          if (lc >= 29) {
            return Status::CorruptData("deflate: bad length code");
          }
          size_t mlen = kLengthBase[lc] + br.Read(kLengthExtra[lc]);
          uint32_t dlen = 0;
          int dsym = d_dec.Decode(static_cast<uint32_t>(br.Peek(d_dec.max_len())), &dlen);
          if (dsym < 0 || static_cast<size_t>(dsym) >= 30 || br.overflowed()) {
            return Status::CorruptData("deflate: bad distance symbol");
          }
          br.Skip(dlen);
          size_t dist = kDistBase[dsym] + br.Read(kDistExtra[dsym]);
          if (dist > out->size() - start_size) {
            return Status::CorruptData("deflate: distance past start");
          }
          size_t src = out->size() - dist;
          for (size_t k = 0; k < mlen; ++k) {
            out->push_back((*out)[src + k]);
          }
        }
      }
    } else {
      return Status::CorruptData("deflate: reserved block type");
    }

    if (bfinal) {
      break;
    }
  }
  return out->size() - start_size;
}

}  // namespace cdpu
