#include "src/codecs/entropy.h"

#include <cmath>

namespace cdpu {

std::array<uint32_t, 256> ByteHistogram(std::span<const uint8_t> data) {
  std::array<uint32_t, 256> hist{};
  for (uint8_t b : data) {
    ++hist[b];
  }
  return hist;
}

double ShannonEntropy(std::span<const uint8_t> data) {
  if (data.empty()) {
    return 0.0;
  }
  std::array<uint32_t, 256> hist = ByteHistogram(data);
  double n = static_cast<double>(data.size());
  double h = 0.0;
  for (uint32_t c : hist) {
    if (c != 0) {
      double p = static_cast<double>(c) / n;
      h -= p * std::log2(p);
    }
  }
  return h;
}

}  // namespace cdpu
