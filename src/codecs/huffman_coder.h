// Canonical Huffman building blocks shared by the Deflate and MiniZstd
// coders: length-limited code construction, canonical code assignment, and a
// flat table decoder. The DPZip hardware canonicaliser (§3.3) lives in
// src/core and is a different, latency-bounded algorithm over the same
// canonical representation.

#ifndef SRC_CODECS_HUFFMAN_CODER_H_
#define SRC_CODECS_HUFFMAN_CODER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace cdpu {

// Builds Huffman code lengths for `freqs`, limited to `max_bits`. Symbols
// with zero frequency get length 0. If only one symbol has nonzero frequency
// it is assigned length 1. Uses a heap-built Huffman tree followed by
// zlib-style overflow repair; the result always satisfies Kraft equality when
// >= 2 symbols are present.
std::vector<uint8_t> BuildHuffmanLengths(std::span<const uint32_t> freqs, uint32_t max_bits);

// Assigns canonical codes (numerically increasing within each length, shorter
// lengths first) for the given lengths. codes[i] is MSB-first. Returns
// kInvalidArgument if the lengths oversubscribe the code space.
Status AssignCanonicalCodes(std::span<const uint8_t> lengths, std::vector<uint16_t>* codes);

// Reverses the low `len` bits of `code` (Deflate transmits codes LSB-first).
uint16_t ReverseBits(uint16_t code, uint32_t len);

// Adjusts a per-level leaf histogram (level_count[d] = leaves with code
// length d, d in [1, max_bits]) so the Kraft sum equals exactly 2^max_bits,
// by demoting/promoting leaves between adjacent levels. Exposed for the
// DPZip hardware canonicaliser, which runs the same repair with bounded
// stage scheduling.
void RepairLengthHistogram(std::vector<uint32_t>& level_count, uint32_t max_bits);

// Flat single-level decode table: index by the next `max_len` bits
// (LSB-first, i.e. already bit-reversed stream order) to get symbol+length.
class HuffmanDecoder {
 public:
  // Builds from canonical code lengths. Incomplete codes are rejected except
  // for the degenerate 0/1-symbol cases.
  Status Init(std::span<const uint8_t> lengths);

  // Decodes one symbol from `peeked` low bits; sets *len to bits consumed.
  // Returns -1 if the prefix is invalid.
  int Decode(uint32_t peeked, uint32_t* len) const {
    if (max_len_ == 0) {
      return -1;
    }
    const Entry& e = table_[peeked & mask_];
    *len = e.len;
    return e.len == 0 ? -1 : e.symbol;
  }

  uint32_t max_len() const { return max_len_; }

 private:
  struct Entry {
    int16_t symbol = -1;
    uint8_t len = 0;
  };

  std::vector<Entry> table_;
  uint32_t max_len_ = 0;
  uint32_t mask_ = 0;
};

}  // namespace cdpu

#endif  // SRC_CODECS_HUFFMAN_CODER_H_
