// MiniZstd: a Zstd-shaped codec built from this repo's own primitives —
// LZ77 parsing with level-controlled search depth, Huffman-coded literals,
// and FSE-coded sequence streams (literal-length / match-length / offset
// buckets with raw extra bits).
//
// It reproduces Zstd's *structure* so the Figure 2 stage breakdown (LZ77 vs
// Huffman vs FSE cost as a function of chunk size, level and entropy) can be
// measured on real code. Each stage is instrumented with wall-clock timers.

#ifndef SRC_CODECS_MINI_ZSTD_H_
#define SRC_CODECS_MINI_ZSTD_H_

#include "src/codecs/codec.h"

namespace cdpu {

// Wall-clock nanoseconds spent per pipeline stage during the last call.
struct ZstdStageTimings {
  uint64_t lz77_ns = 0;
  uint64_t huffman_ns = 0;
  uint64_t fse_ns = 0;

  uint64_t total_ns() const { return lz77_ns + huffman_ns + fse_ns; }
};

class MiniZstdCodec : public Codec {
 public:
  // Levels control LZ77 match-search depth and lazy matching, mirroring
  // Zstd's speed/ratio dial: 1 (fastest) .. 12 (deepest search here).
  explicit MiniZstdCodec(int level = 1);

  std::string name() const override { return "zstd-" + std::to_string(level_); }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;

  const ZstdStageTimings& last_timings() const { return timings_; }
  int level() const { return level_; }

 private:
  int level_;
  uint32_t max_chain_;
  bool lazy_;
  ZstdStageTimings timings_;
};

}  // namespace cdpu

#endif  // SRC_CODECS_MINI_ZSTD_H_
