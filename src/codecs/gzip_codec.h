// Gzip framing (RFC 1952) around the Deflate codec: 10-byte header, Deflate
// body, CRC-32 + ISIZE trailer. This is the algorithm the CSD 2000's FPGA
// engine implements (Table 1: "Gzip, 20/24 Gbps"), and the trailer gives the
// storage stack end-to-end payload integrity checking.

#ifndef SRC_CODECS_GZIP_CODEC_H_
#define SRC_CODECS_GZIP_CODEC_H_

#include "src/codecs/deflate_codec.h"

namespace cdpu {

class GzipCodec : public Codec {
 public:
  explicit GzipCodec(int level = 1) : deflate_(level) {}

  std::string name() const override { return "gzip-" + std::to_string(deflate_.level()); }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;

  // The CRC-32 + ISIZE trailer is verified on every decompression.
  bool checks_integrity() const override { return true; }

 private:
  DeflateCodec deflate_;
};

}  // namespace cdpu

#endif  // SRC_CODECS_GZIP_CODEC_H_
