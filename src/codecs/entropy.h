// Shannon entropy and byte-histogram utilities (paper §2.2, footnote 2).

#ifndef SRC_CODECS_ENTROPY_H_
#define SRC_CODECS_ENTROPY_H_

#include <array>
#include <cstdint>
#include <span>

namespace cdpu {

// Byte-frequency histogram of `data`.
std::array<uint32_t, 256> ByteHistogram(std::span<const uint8_t> data);

// Shannon entropy in bits per byte, in [0, 8]. Returns 0 for empty input.
double ShannonEntropy(std::span<const uint8_t> data);

}  // namespace cdpu

#endif  // SRC_CODECS_ENTROPY_H_
