// From-scratch implementation of the LZ4 block format (the lightweight
// dictionary codec the paper benchmarks as "LZ4"). Greedy single-probe hash
// matching, 64 KB offsets, token/extended-length encoding compatible with the
// LZ4 block spec.

#ifndef SRC_CODECS_LZ4_CODEC_H_
#define SRC_CODECS_LZ4_CODEC_H_

#include <vector>

#include "src/codecs/codec.h"

namespace cdpu {

class Lz4Codec : public Codec {
 public:
  std::string name() const override { return "lz4"; }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;

 private:
  // Hash-table scratch reused across Compress calls (codec instances are
  // single-threaded; engine threads each own one), so the per-call 256 KiB
  // allocation disappears from the offload hot path.
  std::vector<uint32_t> table_;
};

}  // namespace cdpu

#endif  // SRC_CODECS_LZ4_CODEC_H_
