// From-scratch implementation of the LZ4 block format (the lightweight
// dictionary codec the paper benchmarks as "LZ4"). Greedy single-probe hash
// matching, 64 KB offsets, token/extended-length encoding compatible with the
// LZ4 block spec.

#ifndef SRC_CODECS_LZ4_CODEC_H_
#define SRC_CODECS_LZ4_CODEC_H_

#include "src/codecs/codec.h"

namespace cdpu {

class Lz4Codec : public Codec {
 public:
  std::string name() const override { return "lz4"; }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;
};

}  // namespace cdpu

#endif  // SRC_CODECS_LZ4_CODEC_H_
