// From-scratch implementation of the Snappy format (the other lightweight
// baseline in the paper). Varint length preamble; literal / copy-1 / copy-2
// tagged elements; greedy single-probe hash matching.

#ifndef SRC_CODECS_SNAPPY_CODEC_H_
#define SRC_CODECS_SNAPPY_CODEC_H_

#include "src/codecs/codec.h"

namespace cdpu {

class SnappyCodec : public Codec {
 public:
  std::string name() const override { return "snappy"; }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;
};

}  // namespace cdpu

#endif  // SRC_CODECS_SNAPPY_CODEC_H_
