#include "src/codecs/huffman_coder.h"

#include <algorithm>
#include <queue>

namespace cdpu {
namespace {

struct Node {
  uint64_t freq;
  int symbol;  // -1 for internal
  int left;
  int right;
};

}  // namespace

std::vector<uint8_t> BuildHuffmanLengths(std::span<const uint32_t> freqs, uint32_t max_bits) {
  size_t n = freqs.size();
  std::vector<uint8_t> lengths(n, 0);

  std::vector<Node> nodes;
  using HeapItem = std::pair<uint64_t, int>;  // (freq, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) {
      nodes.push_back(Node{freqs[i], static_cast<int>(i), -1, -1});
      heap.push({freqs[i], static_cast<int>(nodes.size() - 1)});
    }
  }

  if (heap.empty()) {
    return lengths;
  }
  if (heap.size() == 1) {
    lengths[static_cast<size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    auto [f1, a] = heap.top();
    heap.pop();
    auto [f2, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{f1 + f2, -1, a, b});
    heap.push({f1 + f2, static_cast<int>(nodes.size() - 1)});
  }

  // Depth-first traversal to assign raw depths.
  struct Frame {
    int node;
    uint32_t depth;
  };
  std::vector<Frame> stack{{static_cast<int>(nodes.size() - 1), 0}};
  bool overflow = false;
  std::vector<uint32_t> length_count(max_bits + 2, 0);
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<size_t>(f.node)];
    if (node.symbol >= 0) {
      uint32_t d = f.depth == 0 ? 1 : f.depth;
      if (d > max_bits) {
        overflow = true;
        d = max_bits;
      }
      lengths[static_cast<size_t>(node.symbol)] = static_cast<uint8_t>(d);
      ++length_count[d];
    } else {
      stack.push_back({node.left, f.depth + 1});
      stack.push_back({node.right, f.depth + 1});
    }
  }

  if (overflow) {
    RepairLengthHistogram(length_count, max_bits);
    // Reassign lengths by frequency order: most frequent symbols get the
    // shortest lengths, matching the adjusted length histogram.
    std::vector<int> symbols;
    for (size_t i = 0; i < n; ++i) {
      if (freqs[i] > 0) {
        symbols.push_back(static_cast<int>(i));
      }
    }
    std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
      if (freqs[static_cast<size_t>(a)] != freqs[static_cast<size_t>(b)]) {
        return freqs[static_cast<size_t>(a)] > freqs[static_cast<size_t>(b)];
      }
      return a < b;
    });
    size_t idx = 0;
    for (uint32_t bits = 1; bits <= max_bits; ++bits) {
      for (uint32_t k = 0; k < length_count[bits]; ++k) {
        lengths[static_cast<size_t>(symbols[idx++])] = static_cast<uint8_t>(bits);
      }
    }
  }
  return lengths;
}

void RepairLengthHistogram(std::vector<uint32_t>& level_count, uint32_t max_bits) {
  const int64_t capacity = int64_t{1} << max_bits;
  int64_t kraft = 0;
  for (uint32_t d = 1; d <= max_bits; ++d) {
    kraft += static_cast<int64_t>(level_count[d]) << (max_bits - d);
  }
  int64_t debt = kraft - capacity;

  // Oversubscribed: demote leaves from the deepest populated shallow level
  // (smallest Kraft release first), overshooting at most once.
  while (debt > 0) {
    uint32_t pick = 0;
    for (uint32_t d = max_bits - 1; d >= 1; --d) {
      if (level_count[d] > 0) {
        pick = d;
        break;
      }
      if (d == 1) {
        break;
      }
    }
    if (pick == 0) {
      break;  // nothing demotable (cannot happen for feasible alphabets)
    }
    --level_count[pick];
    ++level_count[pick + 1];
    debt -= int64_t{1} << (max_bits - pick - 1);
  }

  // Holes: promote leaves, largest gain that fits first (binary
  // decomposition of the hole count).
  int64_t holes = -debt;
  while (holes > 0) {
    bool progressed = false;
    for (uint32_t d = 2; d <= max_bits; ++d) {
      int64_t gain = int64_t{1} << (max_bits - d);
      if (gain <= holes && level_count[d] > 0) {
        --level_count[d];
        ++level_count[d - 1];
        holes -= gain;
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      break;
    }
  }
}

Status AssignCanonicalCodes(std::span<const uint8_t> lengths, std::vector<uint16_t>* codes) {
  uint32_t max_len = 0;
  for (uint8_t l : lengths) {
    max_len = std::max<uint32_t>(max_len, l);
  }
  codes->assign(lengths.size(), 0);
  if (max_len == 0) {
    return Status::Ok();
  }
  if (max_len > 15) {
    return Status::InvalidArgument("huffman: code length > 15");
  }

  std::vector<uint32_t> bl_count(max_len + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) {
      ++bl_count[l];
    }
  }
  // Kraft check: sum 2^(max-l) must not exceed 2^max.
  uint64_t kraft = 0;
  for (uint32_t bits = 1; bits <= max_len; ++bits) {
    kraft += static_cast<uint64_t>(bl_count[bits]) << (max_len - bits);
  }
  if (kraft > (uint64_t{1} << max_len)) {
    return Status::InvalidArgument("huffman: oversubscribed code lengths");
  }

  std::vector<uint16_t> next_code(max_len + 1, 0);
  uint16_t code = 0;
  for (uint32_t bits = 1; bits <= max_len; ++bits) {
    code = static_cast<uint16_t>((code + bl_count[bits - 1]) << 1);
    next_code[bits] = code;
  }
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      (*codes)[i] = next_code[lengths[i]]++;
    }
  }
  return Status::Ok();
}

uint16_t ReverseBits(uint16_t code, uint32_t len) {
  uint16_t r = 0;
  for (uint32_t i = 0; i < len; ++i) {
    r = static_cast<uint16_t>((r << 1) | ((code >> i) & 1));
  }
  return r;
}

Status HuffmanDecoder::Init(std::span<const uint8_t> lengths) {
  max_len_ = 0;
  uint32_t nonzero = 0;
  for (uint8_t l : lengths) {
    max_len_ = std::max<uint32_t>(max_len_, l);
    if (l > 0) {
      ++nonzero;
    }
  }
  if (max_len_ == 0) {
    table_.clear();
    mask_ = 0;
    return Status::Ok();
  }
  if (max_len_ > 15) {
    return Status::InvalidArgument("huffman: decoder length > 15");
  }

  std::vector<uint16_t> codes;
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(lengths, &codes));

  // Completeness: a prefix code used for decoding must fill the space
  // (except the degenerate single-symbol case, mirroring Deflate's
  // tolerance for one-code distance trees).
  if (nonzero >= 2) {
    uint64_t kraft = 0;
    for (uint8_t l : lengths) {
      if (l > 0) {
        kraft += uint64_t{1} << (max_len_ - l);
      }
    }
    if (kraft != (uint64_t{1} << max_len_)) {
      return Status::InvalidArgument("huffman: incomplete code");
    }
  }

  mask_ = (1u << max_len_) - 1;
  table_.assign(size_t{1} << max_len_, Entry{});
  for (size_t i = 0; i < lengths.size(); ++i) {
    uint8_t len = lengths[i];
    if (len == 0) {
      continue;
    }
    // The stream is read LSB-first, so the table is indexed by the reversed
    // code, replicated across all suffixes.
    uint32_t rev = ReverseBits(codes[i], len);
    uint32_t step = 1u << len;
    for (uint32_t idx = rev; idx <= mask_; idx += step) {
      table_[idx].symbol = static_cast<int16_t>(i);
      table_[idx].len = len;
    }
  }
  return Status::Ok();
}

}  // namespace cdpu
