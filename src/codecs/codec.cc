#include "src/codecs/codec.h"

#include <map>

#include "src/codecs/deflate_codec.h"
#include "src/codecs/gzip_codec.h"
#include "src/codecs/lz4_codec.h"
#include "src/codecs/mini_zstd.h"
#include "src/codecs/snappy_codec.h"

namespace cdpu {
namespace {

std::map<std::string, std::unique_ptr<Codec> (*)()>& Registry() {
  static std::map<std::string, std::unique_ptr<Codec> (*)()> registry;
  return registry;
}

}  // namespace

double Codec::MeasureRatio(ByteSpan input) {
  if (input.empty()) {
    return 1.0;
  }
  ByteVec out;
  Result<size_t> r = Compress(input, &out);
  if (!r.ok()) {
    return 1.0;
  }
  return static_cast<double>(*r) / static_cast<double>(input.size());
}

std::unique_ptr<Codec> MakeCodec(const std::string& name) {
  if (name == "deflate" || name == "deflate-1") {
    return std::make_unique<DeflateCodec>(1);
  }
  if (name == "deflate-6") {
    return std::make_unique<DeflateCodec>(6);
  }
  if (name == "deflate-9") {
    return std::make_unique<DeflateCodec>(9);
  }
  if (name.rfind("gzip", 0) == 0) {
    int level = 1;
    if (name.size() > 5 && name[4] == '-') {
      level = std::stoi(name.substr(5));
    }
    return std::make_unique<GzipCodec>(level);
  }
  if (name == "lz4") {
    return std::make_unique<Lz4Codec>();
  }
  if (name == "snappy") {
    return std::make_unique<SnappyCodec>();
  }
  if (name.rfind("zstd", 0) == 0) {
    int level = 1;
    if (name.size() > 5 && name[4] == '-') {
      level = std::stoi(name.substr(5));
    }
    return std::make_unique<MiniZstdCodec>(level);
  }
  auto it = Registry().find(name);
  if (it != Registry().end()) {
    return it->second();
  }
  return nullptr;
}

void RegisterCodecFactory(const std::string& name, std::unique_ptr<Codec> (*factory)()) {
  Registry()[name] = factory;
}

}  // namespace cdpu
