#include "src/codecs/codec.h"

#include <cstring>
#include <map>

#include "src/codecs/deflate_codec.h"
#include "src/codecs/gzip_codec.h"
#include "src/codecs/lz4_codec.h"
#include "src/codecs/mini_zstd.h"
#include "src/codecs/snappy_codec.h"
#include "src/trace/trace.h"

namespace cdpu {
namespace {

std::map<std::string, std::unique_ptr<Codec> (*)()>& Registry() {
  static std::map<std::string, std::unique_ptr<Codec> (*)()> registry;
  return registry;
}

}  // namespace

namespace {

// Shared staging buffer for the pooled sinks. Thread-local so concurrent
// engine threads never contend; its capacity survives across calls, which is
// what makes the pooled path allocation-free at steady state.
thread_local ByteVec g_codec_scratch;

Result<size_t> StageIntoPool(Result<size_t> produced, BufferPool* pool, IoBuf* out) {
  if (!produced.ok()) {
    return produced;
  }
  if (pool == nullptr) {
    pool = &BufferPool::Default();
  }
  // A miss here means the output pool had no free segment and the request
  // paid for slab growth (or an oversize heap block) inline; traced requests
  // record that stall so it shows up in the latency breakdown.
  const trace::ThreadTraceContext* tctx = trace::CurrentThreadTrace();
  const uint64_t t0 = tctx->writer != nullptr ? trace::NowNs() : 0;
  bool missed = false;
  *out = pool->Allocate(g_codec_scratch.size(), &missed);
  if (missed && t0 != 0) {
    trace::EmitSpan(tctx->writer, tctx->request_id, tctx->tenant, tctx->label,
                    trace::Phase::kAllocStall, t0, trace::NowNs(), tctx->device);
  }
  if (!g_codec_scratch.empty()) {
    std::memcpy(out->data(), g_codec_scratch.data(), g_codec_scratch.size());
    NotePayloadCopy(g_codec_scratch.size());
  }
  return produced;
}

// Passthrough codec backing STORE bypass decisions (ISSUE 9): "compression"
// is an identity copy at ratio 1.0. It exists so the offload runtime can
// route an incompressible payload through the normal job path (device model,
// retries, telemetry) without any match/entropy work. Deliberately has no
// wire id — on the wire STORE is a response *flag*, not a codec.
class StoreCodec final : public Codec {
 public:
  std::string name() const override { return "store"; }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override {
    out->insert(out->end(), input.begin(), input.end());
    return input.size();
  }

  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override {
    out->insert(out->end(), input.begin(), input.end());
    return input.size();
  }
};

}  // namespace

Result<size_t> Codec::Compress(ByteSpan input, BufferPool* pool, IoBuf* out) {
  g_codec_scratch.clear();
  return StageIntoPool(Compress(input, &g_codec_scratch), pool, out);
}

Result<size_t> Codec::Decompress(ByteSpan input, BufferPool* pool, IoBuf* out) {
  g_codec_scratch.clear();
  return StageIntoPool(Decompress(input, &g_codec_scratch), pool, out);
}

double Codec::MeasureRatio(ByteSpan input) {
  if (input.empty()) {
    return 1.0;
  }
  ByteVec out;
  Result<size_t> r = Compress(input, &out);
  if (!r.ok()) {
    return 1.0;
  }
  return static_cast<double>(*r) / static_cast<double>(input.size());
}

std::unique_ptr<Codec> MakeCodec(const std::string& name) {
  if (name == "deflate" || name == "deflate-1") {
    return std::make_unique<DeflateCodec>(1);
  }
  if (name == "deflate-6") {
    return std::make_unique<DeflateCodec>(6);
  }
  if (name == "deflate-9") {
    return std::make_unique<DeflateCodec>(9);
  }
  if (name.rfind("gzip", 0) == 0) {
    int level = 1;
    if (name.size() > 5 && name[4] == '-') {
      level = std::stoi(name.substr(5));
    }
    return std::make_unique<GzipCodec>(level);
  }
  if (name == "lz4") {
    return std::make_unique<Lz4Codec>();
  }
  if (name == "store") {
    return std::make_unique<StoreCodec>();
  }
  if (name == "snappy") {
    return std::make_unique<SnappyCodec>();
  }
  if (name.rfind("zstd", 0) == 0) {
    int level = 1;
    if (name.size() > 5 && name[4] == '-') {
      level = std::stoi(name.substr(5));
    }
    return std::make_unique<MiniZstdCodec>(level);
  }
  auto it = Registry().find(name);
  if (it != Registry().end()) {
    return it->second();
  }
  return nullptr;
}

void RegisterCodecFactory(const std::string& name, std::unique_ptr<Codec> (*factory)()) {
  Registry()[name] = factory;
}

}  // namespace cdpu
