// Common interface for all (de)compressors in the repository: the software
// baselines (Deflate, LZ4-style, Snappy-style, MiniZstd) and the DPZip
// hardware-model codec. Compression ratio follows the paper's definition:
// compressed_size / original_size (smaller is better).

#ifndef SRC_CODECS_CODEC_H_
#define SRC_CODECS_CODEC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/iobuf.h"
#include "src/common/status.h"

namespace cdpu {

using ByteVec = std::vector<uint8_t>;

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string name() const = 0;

  // Compresses `input`, appending to `*out`. Returns the number of bytes
  // appended. Implementations must accept empty input.
  virtual Result<size_t> Compress(ByteSpan input, ByteVec* out) = 0;

  // Decompresses `input` (one full compressed stream produced by Compress),
  // appending to `*out`. Returns the number of bytes appended.
  virtual Result<size_t> Decompress(ByteSpan input, ByteVec* out) = 0;

  // Pooled-storage variants (non-virtual sinks over the ByteVec API): the
  // result lands in a refcounted pool segment instead of a fresh ByteVec, so
  // at steady state the call touches no allocator — the output is staged
  // through a reused thread-local scratch (codecs size their output as they
  // go, so a fixed-capacity segment cannot be the direct target) and copied
  // once into `*out`. Returns the number of bytes produced.
  Result<size_t> Compress(ByteSpan input, BufferPool* pool, IoBuf* out);
  Result<size_t> Decompress(ByteSpan input, BufferPool* pool, IoBuf* out);

  // True if the stream format carries a payload checksum that Decompress
  // verifies (e.g. the gzip CRC-32 trailer). Formats without one may return
  // ok() with wrong bytes on a corrupted stream; integrity-checked formats
  // must not. The robustness fuzzers key off this.
  virtual bool checks_integrity() const { return false; }

  // compressed/original, in [0, >1]. Returns 1.0 for empty input.
  double MeasureRatio(ByteSpan input);
};

// Factory for the codecs used throughout the benchmarks. Names: "deflate",
// "lz4", "snappy", "zstd" (MiniZstd level 1), "zstd-<level>", "dpzip" is
// registered by the core library via RegisterCodecFactory.
std::unique_ptr<Codec> MakeCodec(const std::string& name);

// Extension hook so higher layers (src/core) can expose their codecs through
// MakeCodec without a dependency cycle.
void RegisterCodecFactory(const std::string& name,
                          std::unique_ptr<Codec> (*factory)());

}  // namespace cdpu

#endif  // SRC_CODECS_CODEC_H_
