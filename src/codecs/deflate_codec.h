// From-scratch RFC 1951 Deflate implementation: 32 KB sliding-window LZ77
// with hash chains and optional lazy matching, plus stored / fixed-Huffman /
// dynamic-Huffman block coding chosen by cost.
//
// This is the algorithm both QAT devices implement in hardware and the CPU
// software baseline in the paper (run at level 1 to align with DPZip).

#ifndef SRC_CODECS_DEFLATE_CODEC_H_
#define SRC_CODECS_DEFLATE_CODEC_H_

#include "src/codecs/codec.h"

namespace cdpu {

class DeflateCodec : public Codec {
 public:
  // Levels mirror zlib's speed/ratio dial:
  //   1: short hash chains, greedy parse (the paper's configuration)
  //   6: deeper chains, lazy matching
  //   9: deepest chains, lazy matching
  explicit DeflateCodec(int level = 1);

  std::string name() const override { return "deflate-" + std::to_string(level_); }

  Result<size_t> Compress(ByteSpan input, ByteVec* out) override;
  Result<size_t> Decompress(ByteSpan input, ByteVec* out) override;

  int level() const { return level_; }

 private:
  int level_;
  uint32_t max_chain_;
  bool lazy_;
};

}  // namespace cdpu

#endif  // SRC_CODECS_DEFLATE_CODEC_H_
