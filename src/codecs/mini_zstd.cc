#include "src/codecs/mini_zstd.h"

#include <chrono>
#include <cstring>

#include "src/codecs/fse.h"
#include "src/codecs/huffman_coder.h"
#include "src/common/bitstream.h"
#include "src/common/varint.h"

namespace cdpu {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxWindow = 128 * 1024;
constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr uint32_t kHuffMaxBits = 11;  // Zstd caps literal codes at 11 bits

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

struct Sequence {
  uint32_t lit_len;
  uint32_t match_len;  // >= kMinMatch
  uint32_t offset;     // >= 1
};

// Log2 bucket coding: value v -> code HighBit(v+1); `code` extra bits carry
// (v+1) - 2^code. Alphabet size <= 18 for values < 256 KiB.
uint8_t BucketCode(uint32_t v) { return static_cast<uint8_t>(31 - __builtin_clz(v + 1)); }
uint32_t BucketBase(uint8_t code) { return (1u << code) - 1; }

struct ParseResult {
  std::vector<uint8_t> literals;
  std::vector<Sequence> sequences;
};

ParseResult ParseLz77(ByteSpan input, uint32_t max_chain, bool lazy) {
  ParseResult r;
  const uint8_t* base = input.data();
  size_t n = input.size();
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(size_t{1} << 18, -1);
  size_t prev_mask = prev.size() - 1;

  auto insert = [&](size_t pos) {
    uint32_t h = Hash4(Load32(base + pos));
    prev[pos & prev_mask] = head[h];
    head[h] = static_cast<int64_t>(pos);
  };

  auto find = [&](size_t pos, size_t* best_len, size_t* best_off) {
    uint32_t h = Hash4(Load32(base + pos));
    int64_t cand = head[h];
    uint32_t chain = max_chain;
    size_t limit = n - pos;
    while (cand >= 0 && chain-- > 0) {
      size_t cpos = static_cast<size_t>(cand);
      size_t off = pos - cpos;
      if (off > kMaxWindow) {
        break;
      }
      if (Load32(base + cpos) == Load32(base + pos)) {
        size_t len = kMinMatch;
        while (len < limit && base[cpos + len] == base[pos + len]) {
          ++len;
        }
        if (len > *best_len) {
          *best_len = len;
          *best_off = off;
        }
      }
      int64_t nxt = prev[cpos & prev_mask];
      if (nxt >= cand) {
        break;
      }
      cand = nxt;
    }
  };

  size_t pos = 0;
  size_t lit_anchor = 0;
  while (pos + kMinMatch <= n) {
    size_t len = 0;
    size_t off = 0;
    find(pos, &len, &off);
    if (len >= kMinMatch && lazy && pos + 1 + kMinMatch <= n) {
      insert(pos);
      size_t len2 = 0;
      size_t off2 = 0;
      find(pos + 1, &len2, &off2);
      if (len2 > len) {
        ++pos;  // defer; the better match is taken next round
        continue;
      }
    }
    if (len >= kMinMatch) {
      r.literals.insert(r.literals.end(), base + lit_anchor, base + pos);
      r.sequences.push_back(Sequence{static_cast<uint32_t>(pos - lit_anchor),
                                     static_cast<uint32_t>(len), static_cast<uint32_t>(off)});
      size_t end = pos + len;
      size_t insert_limit = n >= kMinMatch ? n - kMinMatch : 0;
      for (size_t p = pos; p < end && p <= insert_limit; ++p) {
        insert(p);
      }
      pos = end;
      lit_anchor = pos;
    } else {
      insert(pos);
      ++pos;
    }
  }
  r.literals.insert(r.literals.end(), base + lit_anchor, base + n);
  return r;
}

// Literals section: mode byte (0 raw, 1 huffman), varint count, payload.
// Huffman mode stores RLE'd code lengths then a bit-packed code stream.
Status WriteLiterals(const std::vector<uint8_t>& lits, ByteVec* out) {
  std::array<uint32_t, 256> freq{};
  for (uint8_t b : lits) {
    ++freq[b];
  }
  std::vector<uint8_t> lengths = BuildHuffmanLengths(freq, kHuffMaxBits);
  std::vector<uint16_t> codes;
  CDPU_RETURN_IF_ERROR(AssignCanonicalCodes(lengths, &codes));

  uint64_t coded_bits = 0;
  for (size_t s = 0; s < 256; ++s) {
    coded_bits += static_cast<uint64_t>(freq[s]) * lengths[s];
  }
  // Length table cost: RLE pairs.
  size_t table_bytes = 0;
  for (size_t s = 0; s < 256;) {
    size_t run = 1;
    while (s + run < 256 && lengths[s + run] == lengths[s]) {
      ++run;
    }
    table_bytes += 2;
    s += run;
  }

  bool use_huffman = !lits.empty() && (coded_bits / 8 + table_bytes + 8) < lits.size();
  out->push_back(use_huffman ? 1 : 0);
  PutVarint64(out, lits.size());
  if (!use_huffman) {
    out->insert(out->end(), lits.begin(), lits.end());
    return Status::Ok();
  }

  // RLE code lengths: (run-1, value) byte pairs covering all 256 symbols.
  for (size_t s = 0; s < 256;) {
    size_t run = 1;
    while (s + run < 256 && lengths[s + run] == lengths[s] && run < 256) {
      ++run;
    }
    out->push_back(static_cast<uint8_t>(run - 1));
    out->push_back(lengths[s]);
    s += run;
  }

  ByteVec payload;
  BitWriter bw(&payload);
  for (uint8_t b : lits) {
    bw.Write(ReverseBits(codes[b], lengths[b]), lengths[b]);
  }
  bw.AlignToByte();
  PutVarint64(out, payload.size());
  out->insert(out->end(), payload.begin(), payload.end());
  return Status::Ok();
}

Status ReadLiterals(ByteSpan data, size_t* pos, std::vector<uint8_t>* lits) {
  if (*pos >= data.size()) {
    return Status::CorruptData("zstd: missing literals mode");
  }
  uint8_t mode = data[(*pos)++];
  std::optional<uint64_t> count = GetVarint64(data, pos);
  if (!count.has_value()) {
    return Status::CorruptData("zstd: bad literal count");
  }
  if (mode == 0) {
    if (*pos + *count > data.size()) {
      return Status::CorruptData("zstd: raw literals past end");
    }
    lits->assign(data.begin() + *pos, data.begin() + *pos + *count);
    *pos += *count;
    return Status::Ok();
  }

  std::vector<uint8_t> lengths(256, 0);
  size_t s = 0;
  while (s < 256) {
    if (*pos + 2 > data.size()) {
      return Status::CorruptData("zstd: truncated length table");
    }
    size_t run = static_cast<size_t>(data[*pos]) + 1;
    uint8_t v = data[*pos + 1];
    *pos += 2;
    if (s + run > 256) {
      return Status::CorruptData("zstd: length table overrun");
    }
    for (size_t k = 0; k < run; ++k) {
      lengths[s++] = v;
    }
  }

  std::optional<uint64_t> payload_len = GetVarint64(data, pos);
  if (!payload_len.has_value() || *pos + *payload_len > data.size()) {
    return Status::CorruptData("zstd: bad literal payload");
  }
  HuffmanDecoder dec;
  CDPU_RETURN_IF_ERROR(dec.Init(lengths));
  BitReader br(data.subspan(*pos, *payload_len));
  lits->reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    uint32_t len = 0;
    int sym = dec.Decode(static_cast<uint32_t>(br.Peek(dec.max_len())), &len);
    if (sym < 0 || br.overflowed()) {
      return Status::CorruptData("zstd: bad literal symbol");
    }
    br.Skip(len);
    lits->push_back(static_cast<uint8_t>(sym));
  }
  *pos += *payload_len;
  return Status::Ok();
}

}  // namespace

MiniZstdCodec::MiniZstdCodec(int level) : level_(level) {
  if (level <= 1) {
    max_chain_ = 4;
    lazy_ = false;
  } else if (level <= 3) {
    max_chain_ = 32;
    lazy_ = false;
  } else if (level <= 6) {
    max_chain_ = 128;
    lazy_ = true;
  } else if (level <= 9) {
    max_chain_ = 1024;
    lazy_ = true;
  } else {
    max_chain_ = 4096;
    lazy_ = true;
  }
}

Result<size_t> MiniZstdCodec::Compress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  timings_ = ZstdStageTimings{};

  PutVarint64(out, input.size());
  if (input.empty()) {
    return out->size() - start_size;
  }

  uint64_t t0 = NowNs();
  ParseResult parsed = ParseLz77(input, max_chain_, lazy_);
  uint64_t t1 = NowNs();
  timings_.lz77_ns = t1 - t0;

  CDPU_RETURN_IF_ERROR(WriteLiterals(parsed.literals, out));
  uint64_t t2 = NowNs();
  timings_.huffman_ns = t2 - t1;

  // Sequences: three bucket-code streams (FSE) + a shared raw extra-bit
  // stream, in sequence order (ll, ml, of per sequence).
  PutVarint64(out, parsed.sequences.size());
  std::vector<uint8_t> ll_codes;
  std::vector<uint8_t> ml_codes;
  std::vector<uint8_t> of_codes;
  ByteVec extra;
  {
    BitWriter bw(&extra);
    for (const Sequence& q : parsed.sequences) {
      uint8_t lc = BucketCode(q.lit_len);
      uint8_t mc = BucketCode(q.match_len - kMinMatch);
      uint8_t oc = BucketCode(q.offset - 1);
      ll_codes.push_back(lc);
      ml_codes.push_back(mc);
      of_codes.push_back(oc);
      bw.Write(q.lit_len - BucketBase(lc), lc);
      bw.Write((q.match_len - kMinMatch) - BucketBase(mc), mc);
      bw.Write((q.offset - 1) - BucketBase(oc), oc);
    }
    bw.AlignToByte();
  }
  CDPU_RETURN_IF_ERROR(FseCompressBlock(ll_codes, 9, out));
  CDPU_RETURN_IF_ERROR(FseCompressBlock(ml_codes, 9, out));
  CDPU_RETURN_IF_ERROR(FseCompressBlock(of_codes, 9, out));
  PutVarint64(out, extra.size());
  out->insert(out->end(), extra.begin(), extra.end());
  timings_.fse_ns = NowNs() - t2;

  return out->size() - start_size;
}

Result<size_t> MiniZstdCodec::Decompress(ByteSpan input, ByteVec* out) {
  size_t start_size = out->size();
  timings_ = ZstdStageTimings{};

  size_t pos = 0;
  std::optional<uint64_t> original = GetVarint64(input, &pos);
  if (!original.has_value()) {
    return Status::CorruptData("zstd: bad frame header");
  }
  if (*original == 0) {
    return size_t{0};
  }

  uint64_t t0 = NowNs();
  std::vector<uint8_t> literals;
  CDPU_RETURN_IF_ERROR(ReadLiterals(input, &pos, &literals));
  uint64_t t1 = NowNs();
  timings_.huffman_ns = t1 - t0;

  std::optional<uint64_t> seq_count = GetVarint64(input, &pos);
  if (!seq_count.has_value()) {
    return Status::CorruptData("zstd: bad sequence count");
  }
  std::vector<uint8_t> ll_codes;
  std::vector<uint8_t> ml_codes;
  std::vector<uint8_t> of_codes;
  size_t consumed = 0;
  CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &ll_codes));
  pos += consumed;
  CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &ml_codes));
  pos += consumed;
  CDPU_RETURN_IF_ERROR(FseDecompressBlock(input.subspan(pos), &consumed, &of_codes));
  pos += consumed;
  if (ll_codes.size() != *seq_count || ml_codes.size() != *seq_count ||
      of_codes.size() != *seq_count) {
    return Status::CorruptData("zstd: sequence stream count mismatch");
  }
  std::optional<uint64_t> extra_len = GetVarint64(input, &pos);
  if (!extra_len.has_value() || pos + *extra_len > input.size()) {
    return Status::CorruptData("zstd: bad extra-bit stream");
  }
  BitReader br(input.subspan(pos, *extra_len));
  uint64_t t2 = NowNs();
  timings_.fse_ns = t2 - t1;

  // Replay sequences.
  size_t lit_pos = 0;
  out->reserve(out->size() + *original);
  for (uint64_t i = 0; i < *seq_count; ++i) {
    uint8_t lc = ll_codes[i];
    uint8_t mc = ml_codes[i];
    uint8_t oc = of_codes[i];
    uint32_t lit_len = BucketBase(lc) + static_cast<uint32_t>(br.Read(lc));
    uint32_t match_len =
        BucketBase(mc) + static_cast<uint32_t>(br.Read(mc)) + static_cast<uint32_t>(kMinMatch);
    uint32_t offset = BucketBase(oc) + static_cast<uint32_t>(br.Read(oc)) + 1;
    if (br.overflowed()) {
      return Status::CorruptData("zstd: truncated extra bits");
    }
    if (lit_pos + lit_len > literals.size()) {
      return Status::CorruptData("zstd: literal overrun");
    }
    out->insert(out->end(), literals.begin() + lit_pos, literals.begin() + lit_pos + lit_len);
    lit_pos += lit_len;
    if (offset > out->size() - start_size) {
      return Status::CorruptData("zstd: offset past start");
    }
    size_t src = out->size() - offset;
    for (uint32_t k = 0; k < match_len; ++k) {
      out->push_back((*out)[src + k]);
    }
  }
  out->insert(out->end(), literals.begin() + lit_pos, literals.end());
  timings_.lz77_ns = NowNs() - t2;

  if (out->size() - start_size != *original) {
    return Status::CorruptData("zstd: size mismatch after decode");
  }
  return out->size() - start_size;
}

}  // namespace cdpu
