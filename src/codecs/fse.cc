#include "src/codecs/fse.h"

#include <algorithm>
#include <numeric>

#include "src/common/bitstream.h"
#include "src/common/varint.h"

namespace cdpu {
namespace {

uint32_t HighBit(uint32_t v) { return 31 - static_cast<uint32_t>(__builtin_clz(v)); }

// The standard FSE symbol spread: a co-prime step walks the table, giving
// each symbol `normalized[s]` cells roughly evenly distributed.
std::vector<uint8_t> SpreadSymbols(std::span<const uint32_t> normalized, uint32_t table_size) {
  std::vector<uint8_t> spread(table_size);
  uint32_t step = (table_size >> 1) + (table_size >> 3) + 3;
  uint32_t mask = table_size - 1;
  uint32_t pos = 0;
  for (size_t s = 0; s < normalized.size(); ++s) {
    for (uint32_t i = 0; i < normalized[s]; ++i) {
      spread[pos] = static_cast<uint8_t>(s);
      pos = (pos + step) & mask;
    }
  }
  return spread;
}

}  // namespace

uint32_t FseChooseTableLog(std::span<const uint32_t> freqs, uint32_t max_log) {
  uint32_t present = 0;
  for (uint32_t f : freqs) {
    if (f > 0) {
      ++present;
    }
  }
  uint32_t need = 1;
  while ((1u << need) < present) {
    ++need;
  }
  uint32_t log = std::clamp(need + 2, kFseMinTableLog, std::min(max_log, kFseMaxTableLog));
  if ((1u << log) < present) {
    log = need;  // alphabet bigger than 2^(min+2): give every symbol a slot
  }
  return std::min(log, kFseMaxTableLog);
}

std::vector<uint32_t> FseNormalize(std::span<const uint32_t> freqs, uint32_t table_log) {
  uint64_t total = std::accumulate(freqs.begin(), freqs.end(), uint64_t{0});
  if (total == 0) {
    return {};
  }
  uint32_t table_size = 1u << table_log;
  std::vector<uint32_t> norm(freqs.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;
  uint64_t assigned = 0;

  for (size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) {
      continue;
    }
    double exact = static_cast<double>(freqs[s]) * table_size / static_cast<double>(total);
    uint32_t floor_v = std::max<uint32_t>(1, static_cast<uint32_t>(exact));
    norm[s] = floor_v;
    assigned += floor_v;
    remainders.push_back({exact - static_cast<double>(floor_v), s});
  }

  if (assigned < table_size) {
    // Hand remaining slots to symbols with the largest fractional parts.
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    uint64_t left = table_size - assigned;
    size_t i = 0;
    while (left > 0) {
      norm[remainders[i % remainders.size()].second] += 1;
      ++i;
      --left;
    }
  } else if (assigned > table_size) {
    // Steal from the largest counts (never below 1).
    uint64_t excess = assigned - table_size;
    while (excess > 0) {
      size_t biggest = 0;
      for (size_t s = 1; s < norm.size(); ++s) {
        if (norm[s] > norm[biggest]) {
          biggest = s;
        }
      }
      uint32_t take = static_cast<uint32_t>(
          std::min<uint64_t>(excess, norm[biggest] > 1 ? norm[biggest] - 1 : 0));
      if (take == 0) {
        return {};  // more present symbols than table cells
      }
      norm[biggest] -= take;
      excess -= take;
    }
  }
  return norm;
}

Status FseEncoder::Init(std::span<const uint32_t> normalized, uint32_t table_log) {
  if (table_log < kFseMinTableLog || table_log > kFseMaxTableLog) {
    return Status::InvalidArgument("fse: table_log out of range");
  }
  table_log_ = table_log;
  table_size_ = 1u << table_log;
  uint64_t sum = std::accumulate(normalized.begin(), normalized.end(), uint64_t{0});
  if (sum != table_size_) {
    return Status::InvalidArgument("fse: normalized counts do not sum to table size");
  }
  if (normalized.size() > 256) {
    return Status::InvalidArgument("fse: alphabet too large");
  }
  normalized_.assign(normalized.begin(), normalized.end());

  std::vector<uint8_t> spread = SpreadSymbols(normalized, table_size_);

  // stateTable: for each symbol, its cells in spread order map to successive
  // state values tableSize+u.
  std::vector<uint32_t> cumul(normalized.size() + 1, 0);
  for (size_t s = 0; s < normalized.size(); ++s) {
    cumul[s + 1] = cumul[s] + normalized[s];
  }
  state_table_.assign(table_size_, 0);
  {
    std::vector<uint32_t> cursor(cumul.begin(), cumul.end() - 1);
    for (uint32_t u = 0; u < table_size_; ++u) {
      uint8_t s = spread[u];
      state_table_[cursor[s]++] = static_cast<uint16_t>(table_size_ + u);
    }
  }

  transforms_.assign(normalized.size(), SymbolTransform{0, 0});
  uint32_t total = 0;
  for (size_t s = 0; s < normalized.size(); ++s) {
    uint32_t count = normalized[s];
    if (count == 0) {
      continue;
    }
    uint32_t max_bits_out = table_log_ - HighBit(count);
    uint32_t min_state_plus = count << max_bits_out;
    transforms_[s].delta_nb_bits = (max_bits_out << 16) - min_state_plus;
    transforms_[s].delta_find_state = static_cast<int32_t>(total) - static_cast<int32_t>(count);
    total += count;
  }
  return Status::Ok();
}

Status FseEncoder::Encode(std::span<const uint8_t> symbols, std::vector<uint8_t>* out) const {
  if (table_size_ == 0) {
    return Status::Internal("fse: encoder not initialised");
  }
  MarkedBitWriter bw(out);
  if (symbols.empty()) {
    bw.Finish();
    return Status::Ok();
  }
  for (uint8_t s : symbols) {
    if (s >= normalized_.size() || normalized_[s] == 0) {
      return Status::InvalidArgument("fse: symbol not in table");
    }
  }

  // tANS encodes back-to-front; the decoder then emits front-to-back.
  size_t i = symbols.size();
  uint8_t last = symbols[--i];
  const SymbolTransform& lt = transforms_[last];
  uint32_t nb_bits = (lt.delta_nb_bits + (1u << 15)) >> 16;
  uint32_t value = (nb_bits << 16) - lt.delta_nb_bits;
  uint32_t state =
      state_table_[static_cast<uint32_t>(static_cast<int32_t>(value >> nb_bits) +
                                         lt.delta_find_state)];

  while (i > 0) {
    uint8_t s = symbols[--i];
    const SymbolTransform& t = transforms_[s];
    uint32_t bits_out = (state + t.delta_nb_bits) >> 16;
    bw.Write(state & ((1u << bits_out) - 1), bits_out);
    state = state_table_[static_cast<uint32_t>(static_cast<int32_t>(state >> bits_out) +
                                               t.delta_find_state)];
  }
  // Flush final state (the decoder's initial state).
  bw.Write(state - table_size_, table_log_);
  bw.Finish();
  return Status::Ok();
}

Status FseDecoder::Init(std::span<const uint32_t> normalized, uint32_t table_log) {
  if (table_log < kFseMinTableLog || table_log > kFseMaxTableLog) {
    return Status::InvalidArgument("fse: table_log out of range");
  }
  table_log_ = table_log;
  uint32_t table_size = 1u << table_log;
  uint64_t sum = std::accumulate(normalized.begin(), normalized.end(), uint64_t{0});
  if (sum != table_size) {
    return Status::InvalidArgument("fse: normalized counts do not sum to table size");
  }

  std::vector<uint8_t> spread = SpreadSymbols(normalized, table_size);
  std::vector<uint32_t> symbol_next(normalized.begin(), normalized.end());

  cells_.assign(table_size, Cell{});
  for (uint32_t u = 0; u < table_size; ++u) {
    uint8_t s = spread[u];
    uint32_t next_state = symbol_next[s]++;
    uint8_t nb_bits = static_cast<uint8_t>(table_log - HighBit(next_state));
    cells_[u] = Cell{s, nb_bits,
                     static_cast<uint16_t>((next_state << nb_bits) - table_size)};
  }
  return Status::Ok();
}

Status FseDecoder::Decode(std::span<const uint8_t> data, size_t count,
                          std::vector<uint8_t>* out) const {
  if (cells_.empty()) {
    return Status::Internal("fse: decoder not initialised");
  }
  if (count == 0) {
    return Status::Ok();
  }
  if (data.empty() || data.back() == 0) {
    return Status::CorruptData("fse: missing stream end marker");
  }
  BackwardBitReader br(data);
  uint32_t state = static_cast<uint32_t>(br.Read(table_log_));
  if (br.overflowed()) {
    return Status::CorruptData("fse: truncated initial state");
  }
  for (size_t k = 0; k < count; ++k) {
    const Cell& c = cells_[state];
    out->push_back(c.symbol);
    if (k + 1 < count) {
      state = c.new_state_base + static_cast<uint32_t>(br.Read(c.nb_bits));
      if (br.overflowed()) {
        return Status::CorruptData("fse: truncated stream");
      }
      if (state >= cells_.size()) {
        return Status::CorruptData("fse: state out of range");
      }
    }
  }
  return Status::Ok();
}

Status FseCompressBlock(std::span<const uint8_t> symbols, uint32_t max_log,
                        std::vector<uint8_t>* out) {
  std::vector<uint32_t> freqs(256, 0);
  size_t max_sym = 0;
  for (uint8_t s : symbols) {
    ++freqs[s];
    max_sym = std::max<size_t>(max_sym, s);
  }
  freqs.resize(symbols.empty() ? 1 : max_sym + 1);

  uint32_t table_log = FseChooseTableLog(freqs, max_log);
  std::vector<uint32_t> norm = FseNormalize(freqs, table_log);

  PutVarint32(out, static_cast<uint32_t>(freqs.size()));
  out->push_back(static_cast<uint8_t>(table_log));
  if (norm.empty()) {
    norm.assign(freqs.size(), 0);  // empty input: all-zero table, no payload
  }
  for (uint32_t c : norm) {
    PutVarint32(out, c);
  }
  PutVarint64(out, symbols.size());
  if (symbols.empty()) {
    PutVarint64(out, 0);
    return Status::Ok();
  }

  FseEncoder enc;
  CDPU_RETURN_IF_ERROR(enc.Init(norm, table_log));
  std::vector<uint8_t> payload;
  CDPU_RETURN_IF_ERROR(enc.Encode(symbols, &payload));
  PutVarint64(out, payload.size());
  out->insert(out->end(), payload.begin(), payload.end());
  return Status::Ok();
}

Status FseDecompressBlock(std::span<const uint8_t> data, size_t* consumed,
                          std::vector<uint8_t>* out) {
  size_t pos = 0;
  std::optional<uint32_t> alphabet = GetVarint32(data, &pos);
  if (!alphabet.has_value() || pos >= data.size()) {
    return Status::CorruptData("fse: bad block header");
  }
  uint32_t table_log = data[pos++];
  std::vector<uint32_t> norm(*alphabet);
  for (uint32_t i = 0; i < *alphabet; ++i) {
    std::optional<uint32_t> c = GetVarint32(data, &pos);
    if (!c.has_value()) {
      return Status::CorruptData("fse: truncated counts");
    }
    norm[i] = *c;
  }
  std::optional<uint64_t> count = GetVarint64(data, &pos);
  std::optional<uint64_t> payload_len = GetVarint64(data, &pos);
  if (!count.has_value() || !payload_len.has_value()) {
    return Status::CorruptData("fse: truncated count/payload length");
  }
  if (pos + *payload_len > data.size()) {
    return Status::CorruptData("fse: payload past end");
  }
  *consumed = pos + *payload_len;
  if (*count == 0) {
    return Status::Ok();
  }

  FseDecoder dec;
  CDPU_RETURN_IF_ERROR(dec.Init(norm, table_log));
  CDPU_RETURN_IF_ERROR(dec.Decode(data.subspan(pos, *payload_len), *count, out));
  return Status::Ok();
}

}  // namespace cdpu
