#include "src/kv/skiplist.h"

namespace cdpu {

int Skiplist::RandomHeight() {
  int h = 1;
  while (h < kMaxHeight && (rng_.Next() & 3) == 0) {  // p = 1/4
    ++h;
  }
  return h;
}

Skiplist::Node* Skiplist::FindGreaterOrEqual(const std::string& key, Node** prev) const {
  Node* x = head_.get();
  int level = height_ - 1;
  for (;;) {
    Node* next = x->next[level];
    if (next != nullptr && next->entry.key < key) {
      x = next;
    } else {
      if (prev != nullptr) {
        prev[level] = x;
      }
      if (level == 0) {
        return next;
      }
      --level;
    }
  }
}

void Skiplist::Put(const std::string& key, const std::string& value, bool tombstone) {
  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) {
    prev[i] = head_.get();
  }
  Node* existing = FindGreaterOrEqual(key, prev);
  if (existing != nullptr && existing->entry.key == key) {
    bytes_ += value.size() - existing->entry.value.size();
    existing->entry.value = value;
    existing->entry.tombstone = tombstone;
    return;
  }

  int h = RandomHeight();
  if (h > height_) {
    height_ = h;
  }
  nodes_.push_back(std::make_unique<Node>(key, value, tombstone, h));
  Node* node = nodes_.back().get();
  for (int i = 0; i < h; ++i) {
    node->next[i] = prev[i]->next[i];
    prev[i]->next[i] = node;
  }
  ++count_;
  bytes_ += key.size() + value.size() + 24;
}

const Skiplist::Entry* Skiplist::Get(const std::string& key) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && node->entry.key == key) {
    return &node->entry;
  }
  return nullptr;
}

std::vector<Skiplist::Entry> Skiplist::Drain() const {
  std::vector<Entry> out;
  out.reserve(count_);
  for (Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    out.push_back(n->entry);
  }
  return out;
}

}  // namespace cdpu
