#include "src/kv/ycsb_runner.h"

#include <algorithm>

#include "src/common/stats.h"

namespace cdpu {

Status YcsbLoad(LsmDb* db, const YcsbWorkload& workload, SimNanos* clock) {
  SimNanos t = *clock;
  for (uint64_t k = 0; k < workload.record_count(); ++k) {
    std::vector<uint8_t> v = workload.MakeValue(k);
    Result<SimNanos> w =
        db->Put(YcsbWorkload::KeyString(k), std::string(v.begin(), v.end()), t);
    if (!w.ok()) {
      return w.status();
    }
    t = *w;
  }
  CDPU_RETURN_IF_ERROR(db->FlushMemtable(t));
  *clock = t;
  return Status::Ok();
}

Result<YcsbRunResult> YcsbRun(LsmDb* db, YcsbWorkload* workload, uint32_t threads,
                              uint64_t total_ops, SimNanos start) {
  YcsbRunResult result;
  if (threads == 0 || total_ops == 0) {
    return result;
  }
  std::vector<SimNanos> clock(threads, start);
  SampleSet read_latencies;

  for (uint64_t i = 0; i < total_ops; ++i) {
    uint32_t tid = static_cast<uint32_t>(i % threads);
    YcsbRequest req = workload->NextRequest();
    std::string key = YcsbWorkload::KeyString(req.key);

    switch (req.op) {
      case YcsbOp::kRead: {
        Result<LsmDb::GetOutcome> g = db->Get(key, clock[tid]);
        if (!g.ok()) {
          return g.status();
        }
        read_latencies.Add(static_cast<double>(g->completion - clock[tid]) / 1e3);
        ++result.reads;
        result.read_hits += g->found ? 1 : 0;
        clock[tid] = g->completion;
        break;
      }
      case YcsbOp::kUpdate:
      case YcsbOp::kInsert: {
        std::vector<uint8_t> v = workload->MakeValue(req.key);
        Result<SimNanos> w = db->Put(key, std::string(v.begin(), v.end()), clock[tid]);
        if (!w.ok()) {
          return w.status();
        }
        clock[tid] = *w;
        break;
      }
      case YcsbOp::kReadModifyWrite: {
        Result<LsmDb::GetOutcome> g = db->Get(key, clock[tid]);
        if (!g.ok()) {
          return g.status();
        }
        read_latencies.Add(static_cast<double>(g->completion - clock[tid]) / 1e3);
        ++result.reads;
        result.read_hits += g->found ? 1 : 0;
        std::vector<uint8_t> v = workload->MakeValue(req.key);
        Result<SimNanos> w = db->Put(key, std::string(v.begin(), v.end()), g->completion);
        if (!w.ok()) {
          return w.status();
        }
        clock[tid] = *w;
        break;
      }
    }
    ++result.ops;
  }

  SimNanos end = start;
  for (SimNanos t : clock) {
    end = std::max(end, t);
  }
  result.makespan = end - start;
  if (result.makespan > 0) {
    result.kops = static_cast<double>(result.ops) / ToSecondsF(result.makespan) / 1e3;
  }
  if (!read_latencies.empty()) {
    result.mean_read_latency_us = read_latencies.Mean();
    result.p99_read_latency_us = read_latencies.Percentile(99);
  }
  return result;
}

}  // namespace cdpu
