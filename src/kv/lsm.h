// Leveled LSM-tree key-value store (the RocksDB stand-in for §5.3.1).
//
// Writes land in a skiplist memtable; full memtables flush to L0 SSTables
// (the write path of Figure 13, where application-layer compression runs);
// L0 reaching its trigger merges into L1, and oversized levels push one
// table at a time into the next level. Point reads check the memtable, then
// L0 newest-first, then one range-matching table per deeper level, with
// bloom filters short-circuiting misses.
//
// Timing: Put returns after the memtable insert, plus the flush it
// triggered (synchronous flush couples compression speed to write
// throughput, the effect Figure 14 measures). Compaction work advances the
// shared device/SSD queues (contention) but is not added to any client's
// completion time — RocksDB runs it in background threads, which is why the
// paper observes compression placement effects on reads (Finding 8).

#ifndef SRC_KV_LSM_H_
#define SRC_KV_LSM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kv/sstable.h"

namespace cdpu {

struct LsmConfig {
  size_t memtable_bytes = 256 * 1024;
  size_t block_bytes = 4096;
  size_t block_cache_bytes = 8 * 1024 * 1024;  // 0 disables the cache
  size_t sstable_data_bytes = 512 * 1024;  // split runs into tables this size
  int l0_compaction_trigger = 4;
  uint64_t level1_bytes = 2 * 1024 * 1024;  // stored-file-byte budget for L1
  double level_multiplier = 4.0;
  int max_levels = 7;
};

struct LsmStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t tables_built = 0;
  uint64_t bloom_rejections = 0;
  uint64_t data_blocks_read = 0;
};

class LsmDb {
 public:
  LsmDb(const LsmConfig& config, SimSsd* ssd, KvCompressionBackend backend);

  // Inserts; returns the host-visible completion time.
  Result<SimNanos> Put(const std::string& key, const std::string& value, SimNanos arrival);
  Result<SimNanos> Delete(const std::string& key, SimNanos arrival);

  struct GetOutcome {
    bool found = false;
    std::string value;
    SimNanos completion = 0;
    uint32_t tables_probed = 0;
    uint32_t pages_read = 0;
  };
  Result<GetOutcome> Get(const std::string& key, SimNanos arrival);

  // Forces the memtable out (test/bench hook). No-op when empty.
  Status FlushMemtable(SimNanos arrival);

  // --- observability -------------------------------------------------------
  const BlockCache* block_cache() const { return cache_.get(); }
  int DepthUsed() const;            // number of non-empty levels (+ L0)
  uint64_t TotalFileBytes() const;  // stored footprint after app compression
  uint64_t TotalDataBytes() const;  // logical KV bytes in tables
  size_t TableCount() const;
  const LsmStats& stats() const { return stats_; }
  const KvCompressionBackend& backend() const { return backend_; }

 private:
  using TablePtr = std::shared_ptr<SsTable>;

  Result<SimNanos> WriteEntry(const std::string& key, const std::string& value,
                              bool tombstone, SimNanos arrival);
  // Builds tables of ~sstable_data_bytes from sorted entries.
  Status BuildTables(const std::vector<Skiplist::Entry>& entries, SimNanos arrival,
                     std::vector<TablePtr>* out, SimNanos* completion);
  Status MaybeCompact(SimNanos arrival);
  Status CompactL0(SimNanos arrival);
  Status CompactLevel(size_t level, SimNanos arrival);

  LsmConfig config_;
  SimSsd* ssd_;
  KvCompressionBackend backend_;
  LpnAllocator lpns_;
  std::unique_ptr<BlockCache> cache_;
  SsTable::BuildContext build_ctx_;

  std::unique_ptr<Skiplist> memtable_;
  std::vector<TablePtr> l0_;                      // newest first
  std::vector<std::vector<TablePtr>> levels_;     // L1.. sorted by first_key
  LsmStats stats_;
};

}  // namespace cdpu

#endif  // SRC_KV_LSM_H_
