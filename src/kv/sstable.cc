#include "src/kv/sstable.h"

#include <algorithm>
#include <atomic>

#include "src/common/varint.h"

namespace cdpu {
namespace {

// Monotonic table-id source shared by every DB in the process. Ids are never
// reused, so block-cache keys stay unique even after a table is destroyed
// and its heap address is recycled.
std::atomic<uint64_t> g_next_table_id{1};

void AppendEntry(ByteVec* buf, const Skiplist::Entry& e) {
  PutVarint32(buf, static_cast<uint32_t>(e.key.size()));
  PutVarint32(buf, static_cast<uint32_t>(e.value.size()));
  buf->push_back(e.tombstone ? 1 : 0);
  buf->insert(buf->end(), e.key.begin(), e.key.end());
  buf->insert(buf->end(), e.value.begin(), e.value.end());
}

Status ParseEntries(ByteSpan data, std::vector<Skiplist::Entry>* out) {
  size_t pos = 0;
  while (pos < data.size()) {
    std::optional<uint32_t> klen = GetVarint32(data, &pos);
    std::optional<uint32_t> vlen = GetVarint32(data, &pos);
    if (!klen.has_value() || !vlen.has_value() || pos >= data.size()) {
      return Status::CorruptData("sstable: bad entry header");
    }
    bool tomb = data[pos++] != 0;
    if (pos + *klen + *vlen > data.size()) {
      return Status::CorruptData("sstable: entry past block end");
    }
    Skiplist::Entry e;
    e.key.assign(reinterpret_cast<const char*>(data.data() + pos), *klen);
    pos += *klen;
    e.value.assign(reinterpret_cast<const char*>(data.data() + pos), *vlen);
    pos += *vlen;
    e.tombstone = tomb;
    out->push_back(std::move(e));
  }
  return Status::Ok();
}

constexpr uint32_t kPageBytes = 4096;
constexpr double kBloomCheckNs = 200;
constexpr double kIndexSearchNs = 300;
constexpr double kCacheHitNs = 900;  // block-cache lookup + memcpy

}  // namespace

Result<SsTable::BuildOutcome> SsTable::Build(const std::vector<Skiplist::Entry>& entries,
                                             const BuildContext& ctx, SimNanos arrival) {
  if (entries.empty()) {
    return Status::InvalidArgument("sstable: no entries");
  }
  auto table = std::make_shared<SsTable>();
  table->ssd_ = ctx.ssd;
  table->backend_ = ctx.backend;
  table->cache_ = ctx.cache;
  table->table_id_ = g_next_table_id.fetch_add(1, std::memory_order_relaxed);
  table->first_key_ = entries.front().key;
  table->last_key_ = entries.back().key;
  table->bloom_ = std::make_unique<BloomFilter>(entries.size());

  ByteVec file;
  ByteVec block;
  std::string block_first = entries.front().key;
  SimNanos compress_done = arrival;

  auto close_block = [&]() -> Status {
    if (block.empty()) {
      return Status::Ok();
    }
    BlockMeta meta;
    meta.first_key = block_first;
    meta.offset = file.size();
    meta.usize = static_cast<uint32_t>(block.size());
    table->data_bytes_ += block.size();

    if (ctx.backend->codec != nullptr) {
      ByteVec compressed;
      Result<size_t> r = ctx.backend->codec->Compress(block, &compressed);
      if (!r.ok()) {
        return r.status();
      }
      if (compressed.size() < block.size()) {
        meta.csize = static_cast<uint32_t>(compressed.size());
        meta.compressed = true;
        file.insert(file.end(), compressed.begin(), compressed.end());
      } else {
        meta.csize = meta.usize;
        meta.compressed = false;
        file.insert(file.end(), block.begin(), block.end());
      }
      if (ctx.backend->device != nullptr) {
        double ratio = static_cast<double>(meta.csize) / meta.usize;
        compress_done = std::max(
            compress_done,
            ctx.backend->device->Submit(CdpuOp::kCompress, meta.usize, ratio, arrival));
      }
    } else {
      meta.csize = meta.usize;
      meta.compressed = false;
      file.insert(file.end(), block.begin(), block.end());
    }
    table->blocks_.push_back(std::move(meta));
    block.clear();
    return Status::Ok();
  };

  for (const Skiplist::Entry& e : entries) {
    if (block.empty()) {
      block_first = e.key;
    }
    table->bloom_->Add(e.key);
    AppendEntry(&block, e);
    if (block.size() >= ctx.block_bytes) {
      CDPU_RETURN_IF_ERROR(close_block());
    }
  }
  CDPU_RETURN_IF_ERROR(close_block());

  table->file_bytes_ = file.size();
  table->file_pages_ = (file.size() + kPageBytes - 1) / kPageBytes;
  file.resize(table->file_pages_ * kPageBytes, 0);
  table->base_lpn_ = ctx.lpns->Allocate(table->file_pages_);

  Result<SsdIoResult> w = ctx.ssd->WriteMulti(table->base_lpn_, file, compress_done);
  if (!w.ok()) {
    return w.status();
  }
  return BuildOutcome{table, w->completion};
}

Result<std::vector<Skiplist::Entry>> SsTable::LoadBlock(const BlockMeta& meta, SimNanos arrival,
                                                        SimNanos* completion) const {
  uint64_t first_page = meta.offset / kPageBytes;
  uint64_t last_page = (meta.offset + meta.csize - 1) / kPageBytes;
  uint32_t pages = static_cast<uint32_t>(last_page - first_page + 1);

  ByteVec raw;
  Result<SsdIoResult> r =
      ssd_->ReadMulti(base_lpn_ + first_page, pages, &raw, arrival);
  if (!r.ok()) {
    return r.status();
  }
  SimNanos t = r->completion;

  size_t in_page_off = meta.offset % kPageBytes;
  ByteSpan stored(raw.data() + in_page_off, meta.csize);
  ByteVec plain;
  if (meta.compressed) {
    Result<size_t> d = backend_->codec->Decompress(stored, &plain);
    if (!d.ok()) {
      return d.status();
    }
    if (backend_->device != nullptr) {
      double ratio = static_cast<double>(meta.csize) / meta.usize;
      t = backend_->device->Submit(CdpuOp::kDecompress, meta.usize, ratio, t);
    }
  } else {
    plain.assign(stored.begin(), stored.end());
  }

  std::vector<Skiplist::Entry> entries;
  CDPU_RETURN_IF_ERROR(ParseEntries(plain, &entries));
  *completion = t;
  return entries;
}

Result<SsTable::GetOutcome> SsTable::Get(const std::string& key, SimNanos arrival) const {
  GetOutcome out;
  SimNanos t = arrival + static_cast<SimNanos>(kBloomCheckNs);
  if (!bloom_->MayContain(key)) {
    out.bloom_rejected = true;
    out.completion = t;
    return out;
  }
  t += static_cast<SimNanos>(kIndexSearchNs);

  // Last block whose first_key <= key.
  auto it = std::upper_bound(blocks_.begin(), blocks_.end(), key,
                             [](const std::string& k, const BlockMeta& m) {
                               return k < m.first_key;
                             });
  if (it == blocks_.begin()) {
    out.completion = t;
    return out;
  }
  --it;
  size_t block_index = static_cast<size_t>(it - blocks_.begin());

  // Block cache: hot blocks are served from memory (the RocksDB block
  // cache), which is what keeps zipfian reads off the flash path.
  const std::vector<Skiplist::Entry>* entries = nullptr;
  std::vector<Skiplist::Entry> loaded;
  SimNanos done = t;
  if (cache_ != nullptr) {
    entries = cache_->Get(BlockCache::MakeKey(table_id_, block_index));
  }
  if (entries != nullptr) {
    done = t + static_cast<SimNanos>(kCacheHitNs);
  } else {
    Result<std::vector<Skiplist::Entry>> r = LoadBlock(*it, t, &done);
    if (!r.ok()) {
      return r.status();
    }
    loaded = std::move(*r);
    if (cache_ != nullptr) {
      cache_->Insert(BlockCache::MakeKey(table_id_, block_index), loaded, it->usize);
    }
    entries = &loaded;
    uint64_t first_page = it->offset / kPageBytes;
    uint64_t last_page = (it->offset + it->csize - 1) / kPageBytes;
    out.pages_read = static_cast<uint32_t>(last_page - first_page + 1);
  }
  out.completion = done;

  for (const Skiplist::Entry& e : *entries) {
    if (e.key == key) {
      out.found = true;
      out.tombstone = e.tombstone;
      out.value = e.value;
      break;
    }
  }
  return out;
}

Result<std::vector<Skiplist::Entry>> SsTable::ReadAll(SimNanos arrival,
                                                      SimNanos* completion) const {
  std::vector<Skiplist::Entry> all;
  SimNanos t = arrival;
  for (const BlockMeta& meta : blocks_) {
    SimNanos done = t;
    Result<std::vector<Skiplist::Entry>> entries = LoadBlock(meta, t, &done);
    if (!entries.ok()) {
      return entries.status();
    }
    t = done;
    all.insert(all.end(), entries->begin(), entries->end());
  }
  *completion = t;
  return all;
}

void SsTable::Release() {
  if (cache_ != nullptr) {
    cache_->EraseTable(table_id_, blocks_.size());
  }
  if (ssd_ != nullptr) {
    for (uint64_t p = 0; p < file_pages_; ++p) {
      ssd_->Trim(base_lpn_ + p);
    }
  }
}

}  // namespace cdpu
