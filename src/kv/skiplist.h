// Skiplist memtable (the RocksDB default memtable structure). String keys
// and values; a deletion is stored as a tombstone entry.

#ifndef SRC_KV_SKIPLIST_H_
#define SRC_KV_SKIPLIST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace cdpu {

class Skiplist {
 public:
  static constexpr int kMaxHeight = 12;

  struct Entry {
    std::string key;
    std::string value;
    bool tombstone;
  };

  Skiplist() : rng_(0x5eed), head_(new Node("", "", false, kMaxHeight)) {}

  // Inserts or overwrites `key`.
  void Put(const std::string& key, const std::string& value, bool tombstone = false);

  // Returns the entry if present (including tombstones).
  const Entry* Get(const std::string& key) const;

  // In-order entries for flushing.
  std::vector<Entry> Drain() const;

  size_t entry_count() const { return count_; }
  size_t approximate_bytes() const { return bytes_; }
  bool empty() const { return count_ == 0; }

 private:
  struct Node {
    Entry entry;
    std::vector<Node*> next;

    Node(std::string k, std::string v, bool tomb, int height)
        : entry{std::move(k), std::move(v), tomb}, next(height, nullptr) {}
  };

  int RandomHeight();
  Node* FindGreaterOrEqual(const std::string& key, Node** prev) const;

  Rng rng_;
  std::unique_ptr<Node> head_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int height_ = 1;
  size_t count_ = 0;
  size_t bytes_ = 0;
};

}  // namespace cdpu

#endif  // SRC_KV_SKIPLIST_H_
