#include "src/kv/bloom.h"

#include <algorithm>

namespace cdpu {

BloomFilter::BloomFilter(size_t expected_keys, uint32_t bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 7) / 8, 0);
  // k = ln2 * bits/keys, clamped to a sane range.
  probes_ = std::clamp<uint32_t>(static_cast<uint32_t>(bits_per_key * 0.69), 1, 12);
}

uint64_t BloomFilter::Hash(const std::string& key) {
  // FNV-1a 64.
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void BloomFilter::Add(const std::string& key) {
  uint64_t h = Hash(key);
  uint64_t delta = (h >> 33) | (h << 31);  // double hashing
  size_t nbits = bits_.size() * 8;
  for (uint32_t i = 0; i < probes_; ++i) {
    size_t bit = h % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    h += delta;
  }
}

bool BloomFilter::MayContain(const std::string& key) const {
  uint64_t h = Hash(key);
  uint64_t delta = (h >> 33) | (h << 31);
  size_t nbits = bits_.size() * 8;
  for (uint32_t i = 0; i < probes_; ++i) {
    size_t bit = h % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace cdpu
