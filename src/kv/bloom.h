// Bloom filter over SSTable keys (RocksDB-style, double hashing), ~10 bits
// per key for a ~1% false-positive rate.

#ifndef SRC_KV_BLOOM_H_
#define SRC_KV_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdpu {

class BloomFilter {
 public:
  // `expected_keys` sizes the bit array at bits_per_key bits each.
  explicit BloomFilter(size_t expected_keys, uint32_t bits_per_key = 10);

  void Add(const std::string& key);
  bool MayContain(const std::string& key) const;

  size_t bit_count() const { return bits_.size() * 8; }

 private:
  static uint64_t Hash(const std::string& key);

  std::vector<uint8_t> bits_;
  uint32_t probes_;
};

}  // namespace cdpu

#endif  // SRC_KV_BLOOM_H_
