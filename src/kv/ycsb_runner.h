// Multi-client YCSB driver over an LsmDb (paper §5.3.1, Figures 14/15/19).
//
// `threads` logical clients each keep one request outstanding against the
// shared database; per-client simulated clocks advance with each operation's
// completion time, and shared-resource contention (compression device
// queues, NAND dies) emerges from the underlying models. Requests are issued
// round-robin across clients so clocks advance together.

#ifndef SRC_KV_YCSB_RUNNER_H_
#define SRC_KV_YCSB_RUNNER_H_

#include "src/kv/lsm.h"
#include "src/workload/ycsb.h"

namespace cdpu {

struct YcsbRunResult {
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t read_hits = 0;
  SimNanos makespan = 0;
  double kops = 0;                  // thousand operations per second
  double mean_read_latency_us = 0;  // cold-ish read path latency
  double p99_read_latency_us = 0;
};

// Loads `workload->record_count()` records (single client), then flushes.
Status YcsbLoad(LsmDb* db, const YcsbWorkload& workload, SimNanos* clock);

// Runs `total_ops` operations across `threads` clients starting at `start`.
Result<YcsbRunResult> YcsbRun(LsmDb* db, YcsbWorkload* workload, uint32_t threads,
                              uint64_t total_ops, SimNanos start);

}  // namespace cdpu

#endif  // SRC_KV_YCSB_RUNNER_H_
