// LRU block cache (the RocksDB block cache): caches decompressed SSTable
// data blocks so hot zipfian reads are served from memory instead of flash.
// Keys are (table id, block index) — the id is a monotonic per-table serial,
// never a pointer, so recycled allocations cannot alias cached blocks.
// Capacity is in data bytes.

#ifndef SRC_KV_BLOCK_CACHE_H_
#define SRC_KV_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/kv/skiplist.h"

namespace cdpu {

class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes = 8 * 1024 * 1024)
      : capacity_(capacity_bytes) {}

  using Key = uint64_t;

  // Table ids must be unique for the cache's lifetime (SsTable draws them
  // from a monotonic counter). A pointer is NOT a valid identity here: the
  // allocator reuses freed addresses, so a recycled table would silently
  // alias a dead table's cached blocks.
  static Key MakeKey(uint64_t table_id, size_t block_index) {
    return (table_id << 32) | (static_cast<uint64_t>(block_index) & 0xffffffffULL);
  }

  // Returns the cached block or nullptr.
  const std::vector<Skiplist::Entry>* Get(Key key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return &it->second.entries;
  }

  void Insert(Key key, std::vector<Skiplist::Entry> entries, size_t bytes) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      return;  // already cached
    }
    lru_.push_front(key);
    map_[key] = Slot{std::move(entries), bytes, lru_.begin()};
    used_ += bytes;
    while (used_ > capacity_ && !lru_.empty()) {
      Key victim = lru_.back();
      lru_.pop_back();
      auto vit = map_.find(victim);
      used_ -= vit->second.bytes;
      map_.erase(vit);
    }
  }

  // Drops every block of the table (called when compaction releases it).
  void EraseTable(uint64_t table_id, size_t block_count) {
    for (size_t b = 0; b < block_count; ++b) {
      auto it = map_.find(MakeKey(table_id, b));
      if (it != map_.end()) {
        used_ -= it->second.bytes;
        lru_.erase(it->second.lru_pos);
        map_.erase(it);
      }
    }
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t used_bytes() const { return used_; }

 private:
  struct Slot {
    std::vector<Skiplist::Entry> entries;
    size_t bytes;
    std::list<Key>::iterator lru_pos;
  };

  size_t capacity_;
  size_t used_ = 0;
  std::list<Key> lru_;
  std::unordered_map<Key, Slot> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace cdpu

#endif  // SRC_KV_BLOCK_CACHE_H_
