// Block-based SSTable with a per-block compression hook (the RocksDB
// structure of Figure 13): sorted entries are packed into ~4 KB blocks, each
// block is compressed by the configured application-layer backend (CPU
// Deflate or a QAT device) or stored uncompressed (OFF / DP-CSD-transparent),
// and the concatenated file image is written to the simulated SSD.
//
// The in-memory index (first key + offset per block) and bloom filter follow
// RocksDB; a point lookup bloom-checks, binary-searches the index, reads the
// 1-2 flash pages covering the block's byte range, decompresses, and scans.

#ifndef SRC_KV_SSTABLE_H_
#define SRC_KV_SSTABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/codecs/codec.h"
#include "src/hw/cdpu_queue.h"
#include "src/kv/block_cache.h"
#include "src/kv/bloom.h"
#include "src/kv/skiplist.h"
#include "src/ssd/scheme.h"
#include "src/ssd/ssd.h"

namespace cdpu {

// Application-layer compression backend shared by all tables of a DB.
using KvCompressionBackend = CompressionBackend;

// Monotonic logical-page allocator for SSTable files on the shared SSD.
struct LpnAllocator {
  uint64_t next = 0;

  uint64_t Allocate(uint64_t pages) {
    uint64_t base = next;
    next += pages;
    return base;
  }
};

class SsTable {
 public:
  struct BuildContext {
    SimSsd* ssd;
    LpnAllocator* lpns;
    KvCompressionBackend* backend;
    BlockCache* cache = nullptr;  // optional shared block cache
    size_t block_bytes = 4096;
  };

  struct BuildOutcome {
    std::shared_ptr<SsTable> table;
    SimNanos completion;  // when the file image (incl. compression) landed
  };

  // Builds from sorted, de-duplicated entries. Entries must be non-empty.
  static Result<BuildOutcome> Build(const std::vector<Skiplist::Entry>& entries,
                                    const BuildContext& ctx, SimNanos arrival);

  struct GetOutcome {
    bool found = false;
    bool tombstone = false;
    std::string value;
    SimNanos completion = 0;
    uint32_t pages_read = 0;
    bool bloom_rejected = false;
  };

  // Point lookup through the storage stack.
  Result<GetOutcome> Get(const std::string& key, SimNanos arrival) const;

  const std::string& first_key() const { return first_key_; }
  const std::string& last_key() const { return last_key_; }
  // Uncompressed KV payload bytes (logical size).
  uint64_t data_bytes() const { return data_bytes_; }
  // Stored file bytes after app-level compression (physical footprint on a
  // plain SSD; DP-CSD compresses further, invisibly).
  uint64_t file_bytes() const { return file_bytes_; }
  uint64_t base_lpn() const { return base_lpn_; }
  uint64_t file_pages() const { return file_pages_; }
  size_t block_count() const { return blocks_.size(); }
  // Process-unique monotonic serial; the block cache keys on it.
  uint64_t table_id() const { return table_id_; }

  // Re-reads every entry (for compaction merges). Charges SSD/device time;
  // returns entries in key order.
  Result<std::vector<Skiplist::Entry>> ReadAll(SimNanos arrival, SimNanos* completion) const;

  // Releases the table's pages on the SSD.
  void Release();

 private:
  struct BlockMeta {
    std::string first_key;
    uint64_t offset;   // byte offset within the file image
    uint32_t csize;    // stored (possibly compressed) size
    uint32_t usize;    // uncompressed size
    bool compressed;
  };

  Result<std::vector<Skiplist::Entry>> LoadBlock(const BlockMeta& meta, SimNanos arrival,
                                                 SimNanos* completion) const;

  SimSsd* ssd_ = nullptr;
  KvCompressionBackend* backend_ = nullptr;
  BlockCache* cache_ = nullptr;
  std::vector<BlockMeta> blocks_;
  std::unique_ptr<BloomFilter> bloom_;
  std::string first_key_;
  std::string last_key_;
  uint64_t base_lpn_ = 0;
  uint64_t file_pages_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t data_bytes_ = 0;
  uint64_t table_id_ = 0;
};

}  // namespace cdpu

#endif  // SRC_KV_SSTABLE_H_
