#include "src/kv/lsm.h"

#include <algorithm>
#include <map>

namespace cdpu {
namespace {

constexpr double kMemtableInsertNs = 800;  // skiplist insert + WAL append

}  // namespace

LsmDb::LsmDb(const LsmConfig& config, SimSsd* ssd, KvCompressionBackend backend)
    : config_(config), ssd_(ssd), backend_(std::move(backend)),
      memtable_(std::make_unique<Skiplist>()) {
  if (config_.block_cache_bytes > 0) {
    cache_ = std::make_unique<BlockCache>(config_.block_cache_bytes);
  }
  build_ctx_.ssd = ssd_;
  build_ctx_.lpns = &lpns_;
  build_ctx_.backend = &backend_;
  build_ctx_.cache = cache_.get();
  build_ctx_.block_bytes = config_.block_bytes;
  levels_.resize(static_cast<size_t>(config_.max_levels));
}

Result<SimNanos> LsmDb::Put(const std::string& key, const std::string& value,
                            SimNanos arrival) {
  ++stats_.puts;
  return WriteEntry(key, value, false, arrival);
}

Result<SimNanos> LsmDb::Delete(const std::string& key, SimNanos arrival) {
  return WriteEntry(key, "", true, arrival);
}

Result<SimNanos> LsmDb::WriteEntry(const std::string& key, const std::string& value,
                                   bool tombstone, SimNanos arrival) {
  memtable_->Put(key, value, tombstone);
  SimNanos t = arrival + static_cast<SimNanos>(kMemtableInsertNs);

  if (memtable_->approximate_bytes() >= config_.memtable_bytes) {
    // Synchronous flush: the writer stalls until the SSTable (and its
    // compression) lands — the coupling Figure 14 measures.
    std::vector<Skiplist::Entry> entries = memtable_->Drain();
    memtable_ = std::make_unique<Skiplist>();
    std::vector<TablePtr> tables;
    SimNanos flush_done = t;
    CDPU_RETURN_IF_ERROR(BuildTables(entries, t, &tables, &flush_done));
    for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
      l0_.insert(l0_.begin(), *it);  // newest first
    }
    ++stats_.flushes;
    t = flush_done;
    CDPU_RETURN_IF_ERROR(MaybeCompact(t));
  }
  return t;
}

Status LsmDb::BuildTables(const std::vector<Skiplist::Entry>& entries, SimNanos arrival,
                          std::vector<TablePtr>* out, SimNanos* completion) {
  if (entries.empty()) {
    return Status::Ok();
  }
  SimNanos done = arrival;
  std::vector<Skiplist::Entry> chunk;
  size_t chunk_bytes = 0;
  auto emit = [&]() -> Status {
    if (chunk.empty()) {
      return Status::Ok();
    }
    Result<SsTable::BuildOutcome> b = SsTable::Build(chunk, build_ctx_, arrival);
    if (!b.ok()) {
      return b.status();
    }
    out->push_back(b->table);
    done = std::max(done, b->completion);
    ++stats_.tables_built;
    chunk.clear();
    chunk_bytes = 0;
    return Status::Ok();
  };
  for (const Skiplist::Entry& e : entries) {
    chunk.push_back(e);
    chunk_bytes += e.key.size() + e.value.size() + 8;
    if (chunk_bytes >= config_.sstable_data_bytes) {
      CDPU_RETURN_IF_ERROR(emit());
    }
  }
  CDPU_RETURN_IF_ERROR(emit());
  *completion = done;
  return Status::Ok();
}

Status LsmDb::MaybeCompact(SimNanos arrival) {
  if (l0_.size() >= static_cast<size_t>(config_.l0_compaction_trigger)) {
    CDPU_RETURN_IF_ERROR(CompactL0(arrival));
  }
  uint64_t budget = config_.level1_bytes;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    uint64_t bytes = 0;
    for (const TablePtr& t : levels_[level]) {
      bytes += t->file_bytes();
    }
    if (bytes > budget) {
      CDPU_RETURN_IF_ERROR(CompactLevel(level, arrival));
    }
    budget = static_cast<uint64_t>(static_cast<double>(budget) * config_.level_multiplier);
  }
  return Status::Ok();
}

Status LsmDb::CompactL0(SimNanos arrival) {
  ++stats_.compactions;
  // Merge all of L0 with every overlapping L1 table. L0 tables overlap each
  // other, so the whole tier merges at once (RocksDB L0->L1).
  std::map<std::string, Skiplist::Entry> merged;  // oldest first, newer wins

  std::vector<TablePtr> inputs;
  std::string lo;
  std::string hi;
  for (const TablePtr& t : l0_) {
    lo = lo.empty() ? t->first_key() : std::min(lo, t->first_key());
    hi = hi.empty() ? t->last_key() : std::max(hi, t->last_key());
  }
  std::vector<TablePtr> l1_keep;
  for (const TablePtr& t : levels_[0]) {
    if (t->last_key() < lo || t->first_key() > hi) {
      l1_keep.push_back(t);
    } else {
      inputs.push_back(t);  // overlapping L1, oldest data
    }
  }
  // Apply oldest -> newest so newer entries overwrite.
  SimNanos t_read = arrival;
  for (const TablePtr& t : inputs) {
    SimNanos done = t_read;
    Result<std::vector<Skiplist::Entry>> entries = t->ReadAll(t_read, &done);
    if (!entries.ok()) {
      return entries.status();
    }
    for (Skiplist::Entry& e : *entries) {
      merged[e.key] = std::move(e);
    }
  }
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {  // oldest L0 first
    SimNanos done = t_read;
    Result<std::vector<Skiplist::Entry>> entries = (*it)->ReadAll(t_read, &done);
    if (!entries.ok()) {
      return entries.status();
    }
    for (Skiplist::Entry& e : *entries) {
      merged[e.key] = std::move(e);
    }
  }

  std::vector<Skiplist::Entry> flat;
  flat.reserve(merged.size());
  bool bottom = true;
  for (size_t l = 1; l < levels_.size(); ++l) {
    if (!levels_[l].empty()) {
      bottom = false;
      break;
    }
  }
  for (auto& [k, e] : merged) {
    if (bottom && e.tombstone) {
      continue;  // drop tombstones when nothing deeper can hold the key
    }
    flat.push_back(std::move(e));
  }

  std::vector<TablePtr> outputs;
  SimNanos done = arrival;
  if (!flat.empty()) {
    CDPU_RETURN_IF_ERROR(BuildTables(flat, arrival, &outputs, &done));
  }
  for (const TablePtr& t : inputs) {
    t->Release();
  }
  for (const TablePtr& t : l0_) {
    t->Release();
  }
  l0_.clear();
  l1_keep.insert(l1_keep.end(), outputs.begin(), outputs.end());
  std::sort(l1_keep.begin(), l1_keep.end(),
            [](const TablePtr& a, const TablePtr& b) { return a->first_key() < b->first_key(); });
  levels_[0] = std::move(l1_keep);
  return Status::Ok();
}

Status LsmDb::CompactLevel(size_t level, SimNanos arrival) {
  if (levels_[level].empty() || level + 1 >= levels_.size()) {
    return Status::Ok();
  }
  ++stats_.compactions;
  // Move one table (round-robin by key order: pick the first) down a level,
  // merging with overlapping tables there.
  TablePtr victim = levels_[level].front();
  levels_[level].erase(levels_[level].begin());

  std::vector<TablePtr> next_keep;
  std::vector<TablePtr> overlapping;
  for (const TablePtr& t : levels_[level + 1]) {
    if (t->last_key() < victim->first_key() || t->first_key() > victim->last_key()) {
      next_keep.push_back(t);
    } else {
      overlapping.push_back(t);
    }
  }

  std::map<std::string, Skiplist::Entry> merged;
  SimNanos done = arrival;
  for (const TablePtr& t : overlapping) {  // older data first
    Result<std::vector<Skiplist::Entry>> entries = t->ReadAll(arrival, &done);
    if (!entries.ok()) {
      return entries.status();
    }
    for (Skiplist::Entry& e : *entries) {
      merged[e.key] = std::move(e);
    }
  }
  {
    Result<std::vector<Skiplist::Entry>> entries = victim->ReadAll(arrival, &done);
    if (!entries.ok()) {
      return entries.status();
    }
    for (Skiplist::Entry& e : *entries) {
      merged[e.key] = std::move(e);
    }
  }

  bool bottom = true;
  for (size_t l = level + 2; l < levels_.size(); ++l) {
    if (!levels_[l].empty()) {
      bottom = false;
      break;
    }
  }
  std::vector<Skiplist::Entry> flat;
  flat.reserve(merged.size());
  for (auto& [k, e] : merged) {
    if (bottom && e.tombstone) {
      continue;
    }
    flat.push_back(std::move(e));
  }

  std::vector<TablePtr> outputs;
  if (!flat.empty()) {
    CDPU_RETURN_IF_ERROR(BuildTables(flat, arrival, &outputs, &done));
  }
  victim->Release();
  for (const TablePtr& t : overlapping) {
    t->Release();
  }
  next_keep.insert(next_keep.end(), outputs.begin(), outputs.end());
  std::sort(next_keep.begin(), next_keep.end(),
            [](const TablePtr& a, const TablePtr& b) { return a->first_key() < b->first_key(); });
  levels_[level + 1] = std::move(next_keep);
  return Status::Ok();
}

Result<LsmDb::GetOutcome> LsmDb::Get(const std::string& key, SimNanos arrival) {
  ++stats_.gets;
  GetOutcome out;
  SimNanos t = arrival + static_cast<SimNanos>(kMemtableInsertNs / 2);

  const Skiplist::Entry* m = memtable_->Get(key);
  if (m != nullptr) {
    out.found = !m->tombstone;
    out.value = m->value;
    out.completion = t;
    return out;
  }

  auto probe = [&](const TablePtr& table) -> Result<bool> {
    ++out.tables_probed;
    Result<SsTable::GetOutcome> g = table->Get(key, t);
    if (!g.ok()) {
      return g.status();
    }
    t = g->completion;
    out.pages_read += g->pages_read;
    if (g->bloom_rejected) {
      ++stats_.bloom_rejections;
      return false;
    }
    if (g->pages_read > 0) {
      ++stats_.data_blocks_read;
    }
    if (g->found) {
      out.found = !g->tombstone;
      out.value = g->value;
      return true;
    }
    return false;
  };

  for (const TablePtr& table : l0_) {
    if (key < table->first_key() || key > table->last_key()) {
      continue;
    }
    Result<bool> hit = probe(table);
    if (!hit.ok()) {
      return hit.status();
    }
    if (*hit) {
      out.completion = t;
      return out;
    }
  }
  for (const std::vector<TablePtr>& level : levels_) {
    // Non-overlapping: binary search for the table covering `key`.
    auto it = std::upper_bound(level.begin(), level.end(), key,
                               [](const std::string& k, const TablePtr& tb) {
                                 return k < tb->first_key();
                               });
    if (it == level.begin()) {
      continue;
    }
    --it;
    if (key > (*it)->last_key()) {
      continue;
    }
    Result<bool> hit = probe(*it);
    if (!hit.ok()) {
      return hit.status();
    }
    if (*hit) {
      out.completion = t;
      return out;
    }
  }
  out.completion = t;
  return out;
}

Status LsmDb::FlushMemtable(SimNanos arrival) {
  if (memtable_->empty()) {
    return Status::Ok();
  }
  std::vector<Skiplist::Entry> entries = memtable_->Drain();
  memtable_ = std::make_unique<Skiplist>();
  std::vector<TablePtr> tables;
  SimNanos done = arrival;
  CDPU_RETURN_IF_ERROR(BuildTables(entries, arrival, &tables, &done));
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    l0_.insert(l0_.begin(), *it);
  }
  ++stats_.flushes;
  return MaybeCompact(done);
}

int LsmDb::DepthUsed() const {
  int depth = l0_.empty() ? 0 : 1;
  for (const auto& level : levels_) {
    if (!level.empty()) {
      ++depth;
    }
  }
  return depth;
}

uint64_t LsmDb::TotalFileBytes() const {
  uint64_t total = 0;
  for (const TablePtr& t : l0_) {
    total += t->file_bytes();
  }
  for (const auto& level : levels_) {
    for (const TablePtr& t : level) {
      total += t->file_bytes();
    }
  }
  return total;
}

uint64_t LsmDb::TotalDataBytes() const {
  uint64_t total = 0;
  for (const TablePtr& t : l0_) {
    total += t->data_bytes();
  }
  for (const auto& level : levels_) {
    for (const TablePtr& t : level) {
      total += t->data_bytes();
    }
  }
  return total;
}

size_t LsmDb::TableCount() const {
  size_t count = l0_.size();
  for (const auto& level : levels_) {
    count += level.size();
  }
  return count;
}

}  // namespace cdpu
