#include "src/workload/ycsb.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/workload/datagen.h"

namespace cdpu {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  double v = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(v);
  return result >= n_ ? n_ - 1 : result;
}

YcsbWorkload::YcsbWorkload(const YcsbConfig& config)
    : config_(config), zipf_(config.record_count, 0.99, config.seed),
      op_rng_(config.seed ^ 0xabcdef) {}

YcsbRequest YcsbWorkload::NextRequest() {
  double p = op_rng_.NextDouble();
  switch (config_.workload) {
    case 'B':  // 95% read / 5% update, zipfian
      return YcsbRequest{p < 0.95 ? YcsbOp::kRead : YcsbOp::kUpdate, zipf_.Next()};
    case 'C':  // 100% read, zipfian
      return YcsbRequest{YcsbOp::kRead, zipf_.Next()};
    case 'D': {  // 95% read-latest / 5% insert
      if (p < 0.05) {
        uint64_t key = config_.record_count + inserted_;
        ++inserted_;
        return YcsbRequest{YcsbOp::kInsert, key};
      }
      // Read-latest: zipfian over recency — rank 0 is the newest key.
      uint64_t total = config_.record_count + inserted_;
      uint64_t back = zipf_.Next() % total;
      return YcsbRequest{YcsbOp::kRead, total - 1 - back};
    }
    case 'F':  // 50% read / 50% read-modify-write
      return YcsbRequest{p < 0.5 ? YcsbOp::kRead : YcsbOp::kReadModifyWrite, zipf_.Next()};
    case 'A':
    default:  // 50% read / 50% update
      return YcsbRequest{p < 0.5 ? YcsbOp::kRead : YcsbOp::kUpdate, zipf_.Next()};
  }
}

std::vector<uint8_t> YcsbWorkload::MakeValue(uint64_t key) const {
  return GenerateTextLike(config_.value_size, config_.seed * 1315423911ull + key);
}

std::string YcsbWorkload::KeyString(uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%016llu", static_cast<unsigned long long>(key));
  return std::string(buf);
}

}  // namespace cdpu
