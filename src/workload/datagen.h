// Synthetic data generators.
//
// The paper evaluates on the Silesia corpus (12 files spanning text, database
// tables, executables, XML and medical images) plus an entropy-controlled
// sweep for the compressibility experiments (Figure 12). We cannot ship
// Silesia, so SilesiaLikeCorpus() synthesises the same *family* of patterns;
// GenerateWithRatio() provides the compressibility dial.

#ifndef SRC_WORKLOAD_DATAGEN_H_
#define SRC_WORKLOAD_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdpu {

struct CorpusFile {
  std::string name;     // e.g. "dickens-like"
  std::string category; // "text", "db", "binary", "xml", "image", "source"
  std::vector<uint8_t> data;
};

// Deterministic Silesia-style corpus: 12 files, `file_size` bytes each.
std::vector<CorpusFile> SilesiaLikeCorpus(size_t file_size = 256 * 1024, uint64_t seed = 42);

// Generates `size` bytes whose *achievable* compression ratio under a
// mid-strength dictionary coder is approximately `target_ratio`
// (compressed/original, 0 < target_ratio <= 1). target_ratio >= 1 yields
// incompressible (uniform random) data.
std::vector<uint8_t> GenerateWithRatio(double target_ratio, size_t size, uint64_t seed = 1);

// Generates `size` bytes with Shannon entropy close to `bits_per_byte`
// (in [0, 8]) by drawing from a geometric-ish symbol distribution. This
// controls entropy-coding difficulty independent of match structure.
std::vector<uint8_t> GenerateWithEntropy(double bits_per_byte, size_t size, uint64_t seed = 1);

// Individual pattern generators (also used directly by tests).
std::vector<uint8_t> GenerateTextLike(size_t size, uint64_t seed);
std::vector<uint8_t> GenerateDbTableLike(size_t size, uint64_t seed);
std::vector<uint8_t> GenerateBinaryLike(size_t size, uint64_t seed);
std::vector<uint8_t> GenerateXmlLike(size_t size, uint64_t seed);
std::vector<uint8_t> GenerateImageLike(size_t size, uint64_t seed);
std::vector<uint8_t> GenerateSourceLike(size_t size, uint64_t seed);

}  // namespace cdpu

#endif  // SRC_WORKLOAD_DATAGEN_H_
