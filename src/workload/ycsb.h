// YCSB workload generator (Cooper et al., SoCC'10). The paper uses
// Workload A (50% read / 50% update, zipfian) and F (50% read / 50%
// read-modify-write); B (95/5), C (read-only) and D (read-latest with
// inserts) are included for completeness. Values are compressible field
// payloads so database compression has something to do.

#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace cdpu {

// Gray et al. zipfian generator over [0, n) with theta = 0.99 (YCSB default).
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 7);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Rng rng_;
};

enum class YcsbOp : uint8_t {
  kRead,
  kUpdate,
  kInsert,
  kReadModifyWrite,
};

struct YcsbRequest {
  YcsbOp op;
  uint64_t key;
};

struct YcsbConfig {
  char workload = 'A';          // 'A','B','C','D','F'
  uint64_t record_count = 10000;
  size_t value_size = 1000;     // YCSB default: 10 fields x 100 B
  uint64_t seed = 7;
};

class YcsbWorkload {
 public:
  explicit YcsbWorkload(const YcsbConfig& config);

  // The load phase key sequence is simply 0..record_count-1.
  uint64_t record_count() const { return config_.record_count; }

  YcsbRequest NextRequest();

  // Total records including workload-D inserts issued so far.
  uint64_t current_record_count() const { return config_.record_count + inserted_; }

  // Deterministic compressible value for `key` (text-like field payload).
  std::vector<uint8_t> MakeValue(uint64_t key) const;

  static std::string KeyString(uint64_t key);

 private:
  YcsbConfig config_;
  ZipfianGenerator zipf_;
  Rng op_rng_;
  uint64_t inserted_ = 0;  // workload D grows the keyspace
};

}  // namespace cdpu

#endif  // SRC_WORKLOAD_YCSB_H_
