#include "src/workload/datagen.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/rng.h"

namespace cdpu {
namespace {

const char* const kWords[] = {
    "the",     "of",      "and",     "storage", "data",     "system",   "compression",
    "device",  "which",   "their",   "from",    "latency",  "through",  "hardware",
    "page",    "block",   "write",   "read",    "flash",    "memory",   "buffer",
    "engine",  "channel", "request", "host",    "driver",   "queue",    "table",
    "entry",   "record",  "stream",  "value",   "during",   "between",  "design",
    "under",   "against", "because", "without", "result",   "pattern",  "window",
    "offset",  "length",  "match",   "symbol",  "encode",   "decode",   "ratio",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

const char* const kNames[] = {"alice", "bob",   "carol", "dave",  "erin",
                              "frank", "grace", "heidi", "ivan",  "judy"};
const char* const kCities[] = {"shenzhen", "edinburgh", "seattle", "zurich", "tokyo"};

// Zipf-ish word pick: low ranks much more likely.
size_t ZipfWord(Rng* rng, size_t n) {
  double u = rng->NextDouble();
  double x = std::pow(u, 2.2);  // skew toward 0
  size_t idx = static_cast<size_t>(x * static_cast<double>(n));
  return std::min(idx, n - 1);
}

void AppendStr(std::vector<uint8_t>* out, const char* s) {
  out->insert(out->end(), s, s + std::strlen(s));
}

void AppendNum(std::vector<uint8_t>* out, uint64_t v) {
  char buf[24];
  int len = std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->insert(out->end(), buf, buf + len);
}

}  // namespace

std::vector<uint8_t> GenerateTextLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(size + 64);
  size_t line_len = 0;
  while (out.size() < size) {
    const char* w = kWords[ZipfWord(&rng, kNumWords)];
    AppendStr(&out, w);
    line_len += std::strlen(w) + 1;
    if (rng.Uniform(12) == 0) {
      out.push_back('.');
    }
    if (line_len > 60) {
      out.push_back('\n');
      line_len = 0;
    } else {
      out.push_back(' ');
    }
  }
  out.resize(size);
  return out;
}

std::vector<uint8_t> GenerateDbTableLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(size + 128);
  uint64_t id = 100000;
  while (out.size() < size) {
    AppendNum(&out, id++);
    out.push_back('|');
    AppendStr(&out, kNames[rng.Uniform(10)]);
    out.push_back('|');
    AppendStr(&out, kCities[rng.Uniform(5)]);
    out.push_back('|');
    AppendNum(&out, 1000 + rng.Uniform(9000));
    out.push_back('|');
    AppendStr(&out, "2026-0");
    AppendNum(&out, 1 + rng.Uniform(9));
    out.push_back('-');
    AppendNum(&out, 10 + rng.Uniform(19));
    out.push_back('|');
    AppendStr(&out, rng.Uniform(2) ? "ACTIVE" : "CLOSED");
    out.push_back('\n');
  }
  out.resize(size);
  return out;
}

std::vector<uint8_t> GenerateBinaryLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(size + 64);
  // Instruction-stream flavour: common "opcodes" with small operand fields,
  // periodic zero padding and embedded string-table fragments.
  const uint8_t opcodes[] = {0x48, 0x89, 0x8b, 0xe8, 0xc3, 0x55, 0x5d, 0x0f};
  while (out.size() < size) {
    uint64_t mode = rng.Uniform(10);
    if (mode < 6) {
      out.push_back(opcodes[rng.Uniform(8)]);
      out.push_back(static_cast<uint8_t>(rng.Uniform(64)));
      if (rng.Uniform(3) == 0) {
        uint32_t imm = static_cast<uint32_t>(rng.Uniform(1024));
        out.push_back(static_cast<uint8_t>(imm & 0xff));
        out.push_back(static_cast<uint8_t>(imm >> 8));
        out.push_back(0);
        out.push_back(0);
      }
    } else if (mode < 8) {
      for (int i = 0; i < 16; ++i) {
        out.push_back(0);
      }
    } else {
      AppendStr(&out, kWords[ZipfWord(&rng, kNumWords)]);
      out.push_back(0);
    }
  }
  out.resize(size);
  return out;
}

std::vector<uint8_t> GenerateXmlLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(size + 256);
  const char* tags[] = {"record", "field", "item", "entry", "meta"};
  while (out.size() < size) {
    const char* tag = tags[rng.Uniform(5)];
    AppendStr(&out, "<");
    AppendStr(&out, tag);
    AppendStr(&out, " id=\"");
    AppendNum(&out, rng.Uniform(100000));
    AppendStr(&out, "\">");
    AppendStr(&out, kWords[ZipfWord(&rng, kNumWords)]);
    out.push_back(' ');
    AppendStr(&out, kWords[ZipfWord(&rng, kNumWords)]);
    AppendStr(&out, "</");
    AppendStr(&out, tag);
    AppendStr(&out, ">\n");
  }
  out.resize(size);
  return out;
}

std::vector<uint8_t> GenerateImageLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  // Medical-image flavour (x-ray/mr): smooth 12-bit samples with noise —
  // high local correlation, high byte-level entropy. Nearly incompressible
  // for byte-oriented LZ, like the real files.
  int32_t level = 2048;
  for (size_t i = 0; i < size; i += 2) {
    level += static_cast<int32_t>(rng.Uniform(65)) - 32;
    level = std::clamp(level, 0, 4095);
    int32_t sample = level + static_cast<int32_t>(rng.Uniform(17)) - 8;
    sample = std::clamp(sample, 0, 4095);
    out[i] = static_cast<uint8_t>(sample & 0xff);
    if (i + 1 < size) {
      out[i + 1] = static_cast<uint8_t>((sample >> 8) & 0x0f);
    }
  }
  return out;
}

std::vector<uint8_t> GenerateSourceLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(size + 128);
  const char* stmts[] = {
      "  if (status != 0) {\n    return status;\n  }\n",
      "  for (size_t i = 0; i < count; ++i) {\n",
      "  buffer[offset] = value;\n",
      "  static const uint32_t mask = 0x",
      "}\n\n",
      "  memcpy(dst, src, length);\n",
      "  // update the mapping table entry\n",
  };
  while (out.size() < size) {
    AppendStr(&out, stmts[rng.Uniform(7)]);
    if (rng.Uniform(4) == 0) {
      AppendNum(&out, rng.Uniform(65536));
      out.push_back('\n');
    }
  }
  out.resize(size);
  return out;
}

std::vector<CorpusFile> SilesiaLikeCorpus(size_t file_size, uint64_t seed) {
  std::vector<CorpusFile> corpus;
  corpus.push_back({"dickens-like", "text", GenerateTextLike(file_size, seed + 1)});
  corpus.push_back({"webster-like", "text", GenerateTextLike(file_size, seed + 2)});
  corpus.push_back({"reymont-like", "text", GenerateTextLike(file_size, seed + 3)});
  corpus.push_back({"osdb-like", "db", GenerateDbTableLike(file_size, seed + 4)});
  corpus.push_back({"nci-like", "db", GenerateDbTableLike(file_size, seed + 5)});
  corpus.push_back({"mozilla-like", "binary", GenerateBinaryLike(file_size, seed + 6)});
  corpus.push_back({"ooffice-like", "binary", GenerateBinaryLike(file_size, seed + 7)});
  corpus.push_back({"sao-like", "binary", GenerateBinaryLike(file_size, seed + 8)});
  corpus.push_back({"xml-like", "xml", GenerateXmlLike(file_size, seed + 9)});
  corpus.push_back({"samba-like", "source", GenerateSourceLike(file_size, seed + 10)});
  corpus.push_back({"x-ray-like", "image", GenerateImageLike(file_size, seed + 11)});
  corpus.push_back({"mr-like", "image", GenerateImageLike(file_size, seed + 12)});
  return corpus;
}

std::vector<uint8_t> GenerateWithRatio(double target_ratio, size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  if (target_ratio >= 1.0) {
    for (auto& b : out) {
      b = rng.NextByte();
    }
    return out;
  }
  target_ratio = std::max(target_ratio, 0.02);

  // Interleave incompressible random runs with highly compressible repeated
  // phrases. A random fraction r of the bytes costs ~r of the output; the
  // repeated remainder costs ~3% (tokens). Solve for the random fraction.
  double random_frac = std::clamp((target_ratio - 0.03) / 0.97, 0.0, 1.0);
  const char phrase[] = "compression accelerators for storage systems ";
  constexpr size_t kPhraseLen = sizeof(phrase) - 1;
  constexpr size_t kRunLen = 64;

  size_t pos = 0;
  size_t phrase_pos = 0;
  while (pos < size) {
    bool random_run = rng.NextDouble() < random_frac;
    size_t run = std::min(kRunLen, size - pos);
    if (random_run) {
      for (size_t i = 0; i < run; ++i) {
        out[pos + i] = rng.NextByte();
      }
    } else {
      for (size_t i = 0; i < run; ++i) {
        out[pos + i] = static_cast<uint8_t>(phrase[phrase_pos]);
        phrase_pos = (phrase_pos + 1) % kPhraseLen;
      }
    }
    pos += run;
  }
  return out;
}

std::vector<uint8_t> GenerateWithEntropy(double bits_per_byte, size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(size);
  bits_per_byte = std::clamp(bits_per_byte, 0.0, 8.0);
  if (bits_per_byte >= 7.99) {
    for (auto& b : out) {
      b = rng.NextByte();
    }
    return out;
  }
  // Draw from 2^ceil(H) symbols with a skew tuned so the realised Shannon
  // entropy approaches the target: mix a uniform draw over 2^k symbols
  // (entropy k) with a constant symbol, with mixing weight from H.
  uint32_t k = static_cast<uint32_t>(std::ceil(bits_per_byte));
  k = std::max(1u, k);
  uint32_t alphabet = 1u << k;
  // H(mix) ~= w * k for small alphabets; refine w by binary search on the
  // binary-entropy-corrected estimate.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 40; ++iter) {
    double w = (lo + hi) / 2;
    // Distribution: P(const) = 1-w + w/alphabet, others w/alphabet.
    double p0 = 1.0 - w + w / alphabet;
    double pi = w / alphabet;
    double h = -p0 * std::log2(p0);
    if (pi > 0) {
      h -= (alphabet - 1) * pi * std::log2(pi);
    }
    if (h < bits_per_byte) {
      lo = w;
    } else {
      hi = w;
    }
  }
  double w = (lo + hi) / 2;
  for (auto& b : out) {
    if (rng.NextDouble() < w) {
      b = static_cast<uint8_t>(rng.Uniform(alphabet));
    } else {
      b = 0;
    }
  }
  return out;
}

std::vector<MixedChunk> GenerateMixedCorpus(size_t chunks, size_t chunk_bytes, uint64_t seed) {
  // Entropy dial covering all three policy classes; 8.0 is uniform random so
  // the incompressible-bypass path always has work.
  static constexpr double kDial[] = {0.8, 2.4, 4.0, 5.6, 8.0};
  static constexpr size_t kDialLen = sizeof(kDial) / sizeof(kDial[0]);
  std::vector<MixedChunk> out;
  out.reserve(chunks);
  for (size_t i = 0; i < chunks; ++i) {
    MixedChunk chunk;
    chunk.entropy_bits = kDial[i % kDialLen];
    chunk.klass = chunk.entropy_bits < 3.0 ? "low" : (chunk.entropy_bits < 6.5 ? "mid" : "high");
    chunk.data = GenerateWithEntropy(chunk.entropy_bits, chunk_bytes, seed + i);
    out.push_back(std::move(chunk));
  }
  return out;
}

}  // namespace cdpu
