#include "src/fault/fault_plan.h"

namespace cdpu {
namespace {

// SplitMix64 finaliser: a full-avalanche hash of (seed, kind, draw index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVerifyMismatch:
      return "verify";
    case FaultKind::kCompletionTimeout:
      return "timeout";
    case FaultKind::kEngineStall:
      return "stall";
    case FaultKind::kQueueReset:
      return "reset";
  }
  return "unknown";
}

bool ParseFaultKind(const std::string& name, FaultKind* out) {
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool FaultInjector::ShouldInject(FaultKind kind) {
  uint32_t k = static_cast<uint32_t>(kind);
  if (plan_.rate[k] <= 0.0 && plan_.period[k] == 0) {
    return false;
  }
  uint64_t n = draws_[k].fetch_add(1, std::memory_order_relaxed);
  bool inject;
  if (plan_.period[k] > 0) {
    inject = (n % plan_.period[k]) == plan_.period[k] - 1;
  } else {
    uint64_t h = Mix(plan_.seed ^ (static_cast<uint64_t>(k + 1) << 56) ^ n);
    // Top 53 bits as a double in [0, 1).
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    inject = u < plan_.rate[k];
  }
  if (inject) {
    injected_[k].fetch_add(1, std::memory_order_relaxed);
  }
  return inject;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    total += injected_[k].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cdpu
