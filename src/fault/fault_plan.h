// Deterministic, seeded fault injection for the offload path.
//
// Hardware offload fails in the field — bit rot past ECC flips verify CRCs,
// firmware bugs wedge descriptors, engines stall transiently, and queue
// pairs get reset out from under their tenants. The paper's CDPUs ship a
// compress-then-verify pipeline precisely because of this, and the SR-IOV
// study assumes tenants survive each other's failures. A FaultPlan makes
// those failure modes reproducible: every injection decision is a pure
// function of (seed, kind, draw index), so a run with the same plan injects
// the same fault sequence regardless of thread interleaving.
//
// Two trigger modes per kind:
//   - probability: inject on each draw with probability rate[kind];
//   - schedule:    inject on every period[kind]-th draw (overrides rate).
//
// The FaultInjector is the shared runtime object: SharedCdpuQueue consults
// it for timeline faults (engine stalls, queue-pair resets) and
// OffloadRuntime consults it for data-path faults (verify-CRC mismatches,
// descriptor completion timeouts). Counters are lock-free and read at
// Snapshot() time.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace cdpu {

enum class FaultKind : uint8_t {
  kVerifyMismatch = 0,   // hardware verify pass flags corrupt compressed output
  kCompletionTimeout,    // descriptor completion never arrives
  kEngineStall,          // transient stall: completion arrives late
  kQueueReset,           // queue pair reset: in-flight descriptors dropped
};

inline constexpr uint32_t kNumFaultKinds = 4;

// Stable lower-case name, e.g. "verify", "timeout", "stall", "reset".
const char* FaultKindName(FaultKind kind);

// Parses a FaultKindName back into its kind; returns false on unknown names.
bool ParseFaultKind(const std::string& name, FaultKind* out);

struct FaultPlan {
  // Per-kind injection probability in [0, 1], drawn once per consultation.
  double rate[kNumFaultKinds] = {0, 0, 0, 0};
  // Per-kind deterministic schedule: when > 0, inject on every period-th
  // draw of that kind (1 = every draw) and ignore the probability.
  uint64_t period[kNumFaultKinds] = {0, 0, 0, 0};
  uint64_t seed = 0x5eedULL;

  // Timeline cost of the timing-model faults.
  uint64_t stall_ns = 200 * 1000;          // extra service time per stall
  uint64_t reset_quiesce_ns = 1000 * 1000;  // ring dead time after a reset

  bool enabled() const {
    for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
      if (rate[k] > 0.0 || period[k] > 0) {
        return true;
      }
    }
    return false;
  }

  void SetAllRates(double r) {
    for (double& v : rate) {
      v = r;
    }
  }

  double rate_of(FaultKind k) const { return rate[static_cast<uint32_t>(k)]; }
  uint64_t period_of(FaultKind k) const { return period[static_cast<uint32_t>(k)]; }
};

// Thread-safe decision source + tally. Draws are deterministic per
// (seed, kind, draw index); the per-kind draw index is a relaxed atomic, so
// under concurrency the *set* of decisions is reproducible even though their
// assignment to jobs follows the scheduler.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Draws the next decision for `kind`. Never injects when the plan leaves
  // the kind disabled (rate 0, no period).
  bool ShouldInject(FaultKind kind);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<uint32_t>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t total_injected() const;

 private:
  FaultPlan plan_;
  std::atomic<uint64_t> draws_[kNumFaultKinds] = {};
  std::atomic<uint64_t> injected_[kNumFaultKinds] = {};
};

}  // namespace cdpu

#endif  // SRC_FAULT_FAULT_PLAN_H_
