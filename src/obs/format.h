// Shared numeric formatting helpers, deduplicated from the bench binaries
// and cdpu_cli. Everything renders into std::string so call sites can
// compose cells for the table renderer.

#ifndef SRC_OBS_FORMAT_H_
#define SRC_OBS_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace cdpu {

// Fixed-precision decimal, e.g. Fmt(3.14159, 2) == "3.14".
inline std::string Fmt(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// Signed fixed-precision decimal: always carries a leading + or -.
inline std::string FmtSigned(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%+.*f", precision, v);
  return buf;
}

// Fraction (0..1) rendered as a percentage: FmtPercent(0.45) == "45%".
inline std::string FmtPercent(double fraction, int precision = 0) {
  return Fmt(fraction * 100.0, precision) + "%";
}

// Bytes-per-second quantities.
inline std::string FmtGbps(double gbps, int precision = 2) { return Fmt(gbps, precision); }
inline std::string FmtMbps(double bytes, double seconds, int precision = 1) {
  return Fmt(seconds > 0 ? bytes / 1e6 / seconds : 0.0, precision);
}

// Byte counts with a binary-ish human unit, e.g. "4 KB", "2.5 MB".
inline std::string FmtBytes(uint64_t bytes) {
  if (bytes < 1024) {
    return std::to_string(bytes) + " B";
  }
  if (bytes < 1024 * 1024) {
    double kb = static_cast<double>(bytes) / 1024.0;
    return Fmt(kb, bytes % 1024 == 0 ? 0 : 1) + " KB";
  }
  double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  return Fmt(mb, bytes % (1024 * 1024) == 0 ? 0 : 1) + " MB";
}

}  // namespace cdpu

#endif  // SRC_OBS_FORMAT_H_
