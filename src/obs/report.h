// Reporter: collects one experiment run's metadata, tables and metrics and
// serialises them to the sinks — an aligned-table stream for humans and a
// schema-versioned JSON document (BENCH_<name>.json) for machines. Both
// sinks render from the same structured rows.
//
// JSON schema (kSchemaVersion):
//   {
//     "schema_version": 1,
//     "experiment":  "<registry name>",
//     "title":       "<paper artefact, e.g. 'Figure 8'>",
//     "description": "<one-line summary>",
//     "preset":      "quick" | "paper",
//     "meta":        { free-form string/number pairs, insertion-ordered },
//     "tables":      [ {name, title?, columns, rows, notes?}, ... ],
//     "metrics":     { counters?, gauges?, timers_us?, series? },   // optional
//     "notes":       [ "...", ... ]                                 // optional
//   }
// Non-finite doubles are serialised as null ("not measured").

#ifndef SRC_OBS_REPORT_H_
#define SRC_OBS_REPORT_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/table.h"

namespace cdpu {
namespace obs {

inline constexpr int kSchemaVersion = 1;

class Reporter {
 public:
  Reporter() = default;
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  // Run identity, surfaced both in the JSON header and the table stream.
  void SetRun(std::string experiment, std::string title, std::string description,
              std::string preset);

  // Extra metadata key/value pairs under "meta" (insertion-ordered).
  void Meta(const std::string& key, Json value);

  // Declares a new table; the returned reference stays valid for the
  // Reporter's lifetime. Tables appear in both sinks in creation order.
  Table& AddTable(std::string name, std::string title, std::vector<Column> columns);

  // Run-level free-text note (printed after the tables, stored under "notes").
  void Note(std::string note);

  MetricSet& metrics() { return metrics_; }

  const std::vector<std::unique_ptr<Table>>& tables() const { return tables_; }

  // Human sink: banner header, every table, then the notes.
  void PrintHuman(std::FILE* out = stdout) const;

  // Machine sink.
  Json ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  std::string experiment_;
  std::string title_;
  std::string description_;
  std::string preset_;
  Json meta_ = Json::Object();
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::string> notes_;
  MetricSet metrics_;
};

}  // namespace obs
}  // namespace cdpu

#endif  // SRC_OBS_REPORT_H_
