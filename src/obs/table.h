// Structured result tables: the single source of truth for both the
// human-readable output (columns sized to content, unlike the old
// fixed-14-char PrintRow) and the machine-readable rows in BENCH_*.json.
//
// A Table declares typed columns (key + display label + render hints), then
// collects rows of JSON values. Cells may be numbers (rendered with the
// column's precision/suffix) or strings (rendered verbatim, e.g.
// "n/a (sockets)"); the JSON sink always receives the typed value.

#ifndef SRC_OBS_TABLE_H_
#define SRC_OBS_TABLE_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace cdpu {
namespace obs {

struct Column {
  std::string key;     // JSON field name, e.g. "c_gbps"
  std::string label;   // table header, e.g. "C GB/s"; defaults to key
  int precision = 2;   // decimals for double cells
  std::string suffix;  // appended to rendered numeric cells, e.g. "%", "x"
  bool show_plus = false;  // render numeric cells with an explicit sign

  Column(std::string k) : key(std::move(k)), label(key) {}  // NOLINT
  Column(std::string k, std::string l, int prec = 2, std::string suf = "", bool plus = false)
      : key(std::move(k)),
        label(l.empty() ? key : std::move(l)),
        precision(prec),
        suffix(std::move(suf)),
        show_plus(plus) {}
};

class Table {
 public:
  Table(std::string name, std::string title, std::vector<Column> columns)
      : name_(std::move(name)), title_(std::move(title)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::string& title() const { return title_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t row_count() const { return rows_.size(); }

  // Positional row: one value per declared column.
  void AddRow(std::vector<Json> cells);

  // Free-text context printed under the table and carried in the JSON.
  void AddNote(std::string note) { notes_.push_back(std::move(note)); }

  // Renders one cell the way the table renderer would (precision/suffix).
  std::string RenderCell(const Json& cell, const Column& col) const;

  // Human-readable rendering; every column is sized to its widest cell.
  std::string Render() const;
  void Print(std::FILE* out = stdout) const;

  // {"name":..., "title":..., "columns":[...], "rows":[{col:val,...}], "notes":[...]}
  Json ToJson() const;

 private:
  std::string name_;
  std::string title_;
  std::vector<Column> columns_;
  std::vector<std::vector<Json>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace obs
}  // namespace cdpu

#endif  // SRC_OBS_TABLE_H_
