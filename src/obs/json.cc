#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cdpu {
namespace obs {

Json& Json::operator[](const std::string& key) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      return v;
    }
  }
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";  // JSON has no NaN/inf; null means "not measured"
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that still round-trips.
  char shorter[40];
  std::snprintf(shorter, sizeof(shorter), "%.15g", v);
  if (std::strtod(shorter, nullptr) == v) {
    *out += shorter;
  } else {
    *out += buf;
  }
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent < 0) {
    return;
  }
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kUint:
      *out += std::to_string(uint_);
      break;
    case Kind::kDouble:
      AppendDouble(out, double_);
      break;
    case Kind::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        AppendNewlineIndent(out, indent, depth);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendNewlineIndent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(k);
        *out += indent < 0 ? "\":" : "\": ";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) {
        AppendNewlineIndent(out, indent, depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    Json root;
    CDPU_RETURN_IF_ERROR(ParseValue(&root));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return root;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::CorruptData("json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t len = std::string(w).size();
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      std::string s;
      CDPU_RETURN_IF_ERROR(ParseString(&s));
      *out = Json(std::move(s));
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      *out = Json();
      return Status::Ok();
    }
    if (ConsumeWord("true")) {
      *out = Json(true);
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      *out = Json(false);
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) {
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      std::string key;
      CDPU_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' in object");
      }
      if (out->Find(key) != nullptr) {
        return Fail("duplicate object key \"" + key + "\"");
      }
      CDPU_RETURN_IF_ERROR(ParseValue(&(*out)[key]));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Status::Ok();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) {
      return Status::Ok();
    }
    while (true) {
      Json v;
      CDPU_RETURN_IF_ERROR(ParseValue(&v));
      out->push_back(std::move(v));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Status::Ok();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return Fail("unescaped control character in string");
        }
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are not emitted by us).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    bool negative = Consume('-');
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (negative && pos_ == start + 1)) {
      return Fail("invalid number");
    }
    std::string token = text_.substr(start, pos_ - start);
    if (is_double) {
      char* end = nullptr;
      double v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) {
        return Fail("invalid number \"" + token + "\"");
      }
      *out = Json(v);
      return Status::Ok();
    }
    if (negative) {
      *out = Json(static_cast<int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    } else {
      *out = Json(static_cast<uint64_t>(std::strtoull(token.c_str(), nullptr, 10)));
    }
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) { return Parser(text).Parse(); }

}  // namespace obs
}  // namespace cdpu
