#include "src/obs/report.h"

#include <fstream>

namespace cdpu {
namespace obs {

void Reporter::SetRun(std::string experiment, std::string title, std::string description,
                      std::string preset) {
  experiment_ = std::move(experiment);
  title_ = std::move(title);
  description_ = std::move(description);
  preset_ = std::move(preset);
}

void Reporter::Meta(const std::string& key, Json value) { meta_[key] = std::move(value); }

Table& Reporter::AddTable(std::string name, std::string title, std::vector<Column> columns) {
  tables_.push_back(
      std::make_unique<Table>(std::move(name), std::move(title), std::move(columns)));
  return *tables_.back();
}

void Reporter::Note(std::string note) { notes_.push_back(std::move(note)); }

void Reporter::PrintHuman(std::FILE* out) const {
  std::fprintf(out, "================================================================\n");
  std::fprintf(out, "%s — %s\n", title_.c_str(), description_.c_str());
  std::fprintf(out, "================================================================\n");
  for (const auto& table : tables_) {
    std::fputc('\n', out);
    table->Print(out);
  }
  if (!notes_.empty()) {
    std::fputc('\n', out);
    for (const std::string& note : notes_) {
      std::fprintf(out, "%s\n", note.c_str());
    }
  }
}

Json Reporter::ToJson() const {
  Json j = Json::Object();
  j["schema_version"] = kSchemaVersion;
  j["experiment"] = experiment_;
  j["title"] = title_;
  j["description"] = description_;
  j["preset"] = preset_;
  if (meta_.size() > 0) {
    j["meta"] = meta_;
  }
  Json& tables = j["tables"] = Json::Array();
  for (const auto& table : tables_) {
    tables.push_back(table->ToJson());
  }
  if (!metrics_.empty()) {
    j["metrics"] = metrics_.ToJson();
  }
  if (!notes_.empty()) {
    Json& notes = j["notes"] = Json::Array();
    for (const std::string& n : notes_) {
      notes.push_back(n);
    }
  }
  return j;
}

Status Reporter::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  out << ToJson().Dump(2) << '\n';
  out.flush();
  if (!out.good()) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace cdpu
