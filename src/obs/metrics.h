// Metric model for the experiment harness: named counters (monotonic
// tallies), gauges (point-in-time doubles), timers (accumulated wall-clock
// nanoseconds) and series (sample distributions summarised via
// src/common/stats). Experiments and the offload runtime write into a
// MetricSet; the Reporter serialises it under the "metrics" key of every
// BENCH_*.json.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/json.h"

namespace cdpu {
namespace obs {

// Summarises an online accumulator into an ordered JSON object
// (count/mean/stddev/min/max). This is how RunningStats-based telemetry
// (e.g. RuntimeStats latency distributions) enters the metric model.
Json SummarizeRunningStats(const RunningStats& stats);

// Summarises a full sample set, adding percentiles (p50/p90/p99).
Json SummarizeSampleSet(SampleSet* samples);

class MetricSet {
 public:
  // Monotonic counter; creates the counter at 0 on first use.
  void Count(const std::string& name, uint64_t delta = 1);
  // Point-in-time value; overwrites.
  void Gauge(const std::string& name, double value);
  // Accumulates wall-clock nanoseconds under `name`.
  void AddTimerNs(const std::string& name, uint64_t nanos);
  // Adds one observation to the named series.
  void Observe(const std::string& series, double value);
  // Attaches a pre-summarised distribution (e.g. from RunningStats).
  void Summary(const std::string& name, Json summary);

  // RAII wall-clock timer accumulating into AddTimerNs(name) on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(MetricSet* set, std::string name)
        : set_(set), name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      set_->AddTimerNs(
          name_,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    MetricSet* set_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };
  ScopedTimer Time(std::string name) { return ScopedTimer(this, std::move(name)); }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && timers_.empty() && series_.empty() &&
           summaries_.empty();
  }

  // {"counters": {...}, "gauges": {...}, "timers_us": {...}, "series": {...}}
  // with every section in first-touch order; empty sections are omitted.
  Json ToJson() const;

 private:
  template <typename T>
  using NamedVec = std::vector<std::pair<std::string, T>>;

  template <typename T>
  static T* FindOrNull(NamedVec<T>& vec, const std::string& name) {
    for (auto& [k, v] : vec) {
      if (k == name) {
        return &v;
      }
    }
    return nullptr;
  }

  NamedVec<uint64_t> counters_;
  NamedVec<double> gauges_;
  NamedVec<uint64_t> timers_;  // nanoseconds
  NamedVec<SampleSet> series_;
  NamedVec<Json> summaries_;
};

}  // namespace obs
}  // namespace cdpu

#endif  // SRC_OBS_METRICS_H_
