// Minimal JSON document model for the experiment harness: a writer with
// deterministic (insertion-order) object keys and a strict parser used to
// validate emitted BENCH_*.json files without external dependencies.
//
// Non-finite doubles cannot be represented in JSON; Dump() serialises NaN
// and +/-inf as null, which is the documented schema behaviour (consumers
// treat null cells as "not measured").

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace cdpu {
namespace obs {

class Json {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kInt,     // int64
    kUint,    // uint64 (kept separate so large counters round-trip exactly)
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}                   // NOLINT
  Json(int64_t v) : kind_(Kind::kInt), int_(v) {}               // NOLINT
  Json(uint32_t v) : kind_(Kind::kUint), uint_(v) {}            // NOLINT
  Json(uint64_t v) : kind_(Kind::kUint), uint_(v) {}            // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}          // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}     // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT

  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return kind_ == Kind::kUint ? static_cast<int64_t>(uint_)
           : kind_ == Kind::kDouble ? static_cast<int64_t>(double_)
                                    : int_;
  }
  uint64_t AsUint() const {
    return kind_ == Kind::kInt ? static_cast<uint64_t>(int_)
           : kind_ == Kind::kDouble ? static_cast<uint64_t>(double_)
                                    : uint_;
  }
  double AsDouble() const {
    return kind_ == Kind::kInt    ? static_cast<double>(int_)
           : kind_ == Kind::kUint ? static_cast<double>(uint_)
                                  : double_;
  }
  const std::string& AsString() const { return string_; }

  // Array access.
  void push_back(Json v) { array_.push_back(std::move(v)); }
  size_t size() const { return kind_ == Kind::kObject ? members_.size() : array_.size(); }
  const std::vector<Json>& items() const { return array_; }
  const Json& at(size_t i) const { return array_[i]; }

  // Object access; insertion order is preserved and is the serialised order.
  Json& operator[](const std::string& key);
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  // Serialises the document. indent < 0 = compact single line; otherwise
  // pretty-printed with `indent` spaces per level.
  std::string Dump(int indent = -1) const;

  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Escapes a string for embedding in a JSON document (adds no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace cdpu

#endif  // SRC_OBS_JSON_H_
