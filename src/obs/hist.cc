#include "src/obs/hist.h"

#include <algorithm>
#include <cmath>

namespace cdpu {
namespace obs {

namespace {

// Bucket representative: midpoint, which halves the worst-case error vs
// reporting either edge. Exact (width-1) buckets return the value itself.
uint64_t BucketMid(size_t idx) {
  const uint64_t low = HistBucketing::BucketLow(idx);
  const uint64_t high = HistBucketing::BucketHigh(idx);
  return low + (high - low) / 2;
}

}  // namespace

size_t HistogramSnapshot::nonzero_buckets() const {
  size_t n = 0;
  for (uint64_t c : counts_) n += (c != 0) ? 1 : 0;
  return n;
}

uint64_t HistogramSnapshot::min_value() const {
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) return BucketMid(i);
  }
  return 0;
}

uint64_t HistogramSnapshot::max_value() const {
  for (size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] != 0) return BucketMid(i - 1);
  }
  return 0;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the target sample, 1-based: the smallest k with
  // cumulative(k) >= ceil(p/100 * count), clamped into [1, count].
  uint64_t target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::min(count_, std::max<uint64_t>(1, target));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return BucketMid(i);
  }
  return max_value();
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.count_ = count_ >= earlier.count_ ? count_ - earlier.count_ : 0;
  d.sum_ = sum_ >= earlier.sum_ ? sum_ - earlier.sum_ : 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    d.counts_[i] =
        counts_[i] >= earlier.counts_[i] ? counts_[i] - earlier.counts_[i] : 0;
  }
  return d;
}

Json HistogramSnapshot::ToJson(double scale_divisor) const {
  const double s = scale_divisor > 0 ? scale_divisor : 1.0;
  Json j = Json::Object();
  j["count"] = count_;
  j["sum"] = static_cast<double>(sum_) / s;
  j["mean"] = mean() / s;
  j["p50"] = static_cast<double>(Percentile(50)) / s;
  j["p90"] = static_cast<double>(Percentile(90)) / s;
  j["p99"] = static_cast<double>(Percentile(99)) / s;
  j["p999"] = static_cast<double>(Percentile(99.9)) / s;
  j["max"] = static_cast<double>(max_value()) / s;
  j["nonzero_buckets"] = static_cast<uint64_t>(nonzero_buckets());
  return j;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t total = 0;
  for (size_t i = 0; i < HistBucketing::kNumBuckets; ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    snap.counts_[i] = c;
    total += c;
  }
  // Derive count from the bucket totals (not the count_ atomic) so the
  // snapshot is internally consistent for Percentile() even while recorders
  // are mid-Record.
  snap.count_ = total;
  snap.sum_ = sum_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace obs
}  // namespace cdpu
