#include "src/obs/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/format.h"

namespace cdpu {
namespace obs {

void Table::AddRow(std::vector<Json> cells) {
  assert(cells.size() == columns_.size() && "row width must match declared columns");
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::RenderCell(const Json& cell, const Column& col) const {
  switch (cell.kind()) {
    case Json::Kind::kNull:
      return "-";
    case Json::Kind::kBool:
      return cell.AsBool() ? "yes" : "no";
    case Json::Kind::kString:
      return cell.AsString();
    case Json::Kind::kInt:
    case Json::Kind::kUint:
    case Json::Kind::kDouble: {
      double v = cell.AsDouble();
      if (!std::isfinite(v)) {
        return "-";
      }
      std::string s = col.show_plus ? FmtSigned(v, col.precision) : Fmt(v, col.precision);
      return s + col.suffix;
    }
    default:
      return cell.Dump();
  }
}

std::string Table::Render() const {
  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  // Size every column to its widest rendered cell (or its header).
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].label.size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(RenderCell(row[c], columns_[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto append_line = [&out, &widths](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const Column& col : columns_) {
    header.push_back(col.label);
  }
  append_line(header);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& cells : rendered) {
    append_line(cells);
  }
  for (const std::string& note : notes_) {
    out += note;
    out += '\n';
  }
  return out;
}

void Table::Print(std::FILE* out) const { std::fputs(Render().c_str(), out); }

Json Table::ToJson() const {
  Json j = Json::Object();
  j["name"] = name_;
  if (!title_.empty()) {
    j["title"] = title_;
  }
  Json& cols = j["columns"] = Json::Array();
  for (const Column& col : columns_) {
    cols.push_back(col.key);
  }
  Json& rows = j["rows"] = Json::Array();
  for (const auto& row : rows_) {
    Json r = Json::Object();
    for (size_t c = 0; c < columns_.size(); ++c) {
      r[columns_[c].key] = row[c];
    }
    rows.push_back(std::move(r));
  }
  if (!notes_.empty()) {
    Json& notes = j["notes"] = Json::Array();
    for (const std::string& n : notes_) {
      notes.push_back(n);
    }
  }
  return j;
}

}  // namespace obs
}  // namespace cdpu
