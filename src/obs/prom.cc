#include "src/obs/prom.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

namespace cdpu {
namespace obs {

namespace {

struct Sample {
  std::string labels;  // rendered, e.g. tenant="7" (no braces), may be empty
  std::string suffix;  // appended to the family name, e.g. "_count"
  std::string value;
};

struct Family {
  std::string name;
  std::string type;  // "counter" | "gauge" | "summary"
  std::vector<Sample> samples;
};

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string FormatValue(const Json& v) {
  if (v.kind() == Json::Kind::kUint || v.kind() == Json::Kind::kInt) {
    char buf[32];
    if (v.kind() == Json::Kind::kUint) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(v.AsUint()));
    } else {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(v.AsInt()));
    }
    return buf;
  }
  return FormatDouble(v.AsDouble());
}

void SplitDotted(const std::string& dotted, std::vector<std::string>* out) {
  std::string cur;
  for (char c : dotted) {
    if (c == '.') {
      out->push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out->push_back(cur);
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Splits a dotted metric path into a family name + rendered label pairs,
// lifting the well-known id-carrying segments into labels (see prom.h).
void ExtractLabels(const std::string& dotted, std::string* family,
                   std::string* labels) {
  std::vector<std::string> segs;
  SplitDotted(dotted, &segs);
  std::vector<std::string> kept;
  std::vector<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < segs.size(); ++i) {
    const std::string& s = segs[i];
    const bool has_metric_after = i + 1 < segs.size();
    if (s.size() > 6 && s.rfind("tenant", 0) == 0 &&
        AllDigits(s.substr(6))) {
      kept.push_back("tenant");
      pairs.emplace_back("tenant", s.substr(6));
      continue;
    }
    // "<selector>.<id>.<more...>": the id segment becomes a label.
    if (has_metric_after && i + 2 < segs.size()) {
      if (s == "device" || (s == "codec" && i > 0 && segs[i - 1] == "adapt")) {
        kept.push_back(s);
        pairs.emplace_back(s, segs[i + 1]);
        ++i;
        continue;
      }
      if (s == "class" && AllDigits(segs[i + 1])) {
        kept.push_back(s);
        pairs.emplace_back("class", segs[i + 1]);
        ++i;
        continue;
      }
    }
    kept.push_back(s);
  }
  std::string joined;
  for (size_t i = 0; i < kept.size(); ++i) {
    if (i) joined.push_back('.');
    joined += kept[i];
  }
  *family = PromName(joined);
  labels->clear();
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i) labels->push_back(',');
    *labels += pairs[i].first + "=\"" + EscapeLabelValue(pairs[i].second) + "\"";
  }
}

Family* FindOrAddFamily(std::vector<Family>* families, const std::string& name,
                        const std::string& type) {
  for (Family& f : *families) {
    if (f.name == name) return &f;
  }
  families->push_back(Family{name, type, {}});
  return &families->back();
}

// "p50" -> "0.5", "p999" -> "0.999"; empty when not a quantile field.
std::string QuantileOf(const std::string& field) {
  if (field.size() < 2 || field[0] != 'p' || !AllDigits(field.substr(1))) {
    return "";
  }
  std::string q = "0.";
  q += field.substr(1);
  // Trim trailing zeros ("p50" -> 0.5, not 0.50) but keep one digit.
  while (q.size() > 3 && q.back() == '0') q.pop_back();
  return q;
}

void AddSummary(const std::string& dotted, const Json& obj,
                std::vector<Family>* families) {
  std::string family, labels;
  ExtractLabels(dotted, &family, &labels);
  Family* f = FindOrAddFamily(families, family, "summary");
  bool have_sum = false;
  double count = 0, mean = 0;
  bool have_count = false, have_mean = false;
  for (const auto& [field, v] : obj.members()) {
    if (v.is_null()) continue;
    const std::string q = QuantileOf(field);
    if (!q.empty()) {
      std::string ql = labels.empty() ? "" : labels + ",";
      ql += "quantile=\"" + q + "\"";
      f->samples.push_back(Sample{ql, "", FormatValue(v)});
      continue;
    }
    if (field == "count") {
      have_count = true;
      count = v.AsDouble();
      f->samples.push_back(Sample{labels, "_count", FormatValue(v)});
      continue;
    }
    if (field == "sum") {
      have_sum = true;
      f->samples.push_back(Sample{labels, "_sum", FormatValue(v)});
      continue;
    }
    if (field == "mean") {
      have_mean = true;
      mean = v.AsDouble();
    }
    // Auxiliary fields (mean/stddev/min/max/nonzero_buckets) become their
    // own gauge families so the summary family stays spec-clean.
    Family* aux = FindOrAddFamily(families, family + "_" + field, "gauge");
    aux->samples.push_back(Sample{labels, "", FormatValue(v)});
  }
  if (!have_sum && have_count && have_mean && std::isfinite(mean)) {
    f->samples.push_back(Sample{labels, "_sum", FormatDouble(mean * count)});
  }
  if (!have_count) {
    f->samples.push_back(Sample{labels, "_count", "0"});
  }
}

void AddScalarSection(const Json* section, const std::string& type,
                      std::vector<Family>* families) {
  if (section == nullptr || !section->is_object()) return;
  for (const auto& [name, v] : section->members()) {
    if (v.is_null() || !v.is_number()) continue;
    std::string family, labels;
    ExtractLabels(name, &family, &labels);
    Family* f = FindOrAddFamily(families, family, type);
    f->samples.push_back(Sample{labels, "", FormatValue(v)});
  }
}

}  // namespace

std::string PromName(const std::string& dotted) {
  std::string out;
  out.reserve(dotted.size());
  for (char c : dotted) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out.empty() ? "_" : out;
}

std::string RenderPrometheus(const Json& metrics) {
  if (!metrics.is_object()) return "";
  std::vector<Family> families;
  AddScalarSection(metrics.Find("counters"), "counter", &families);
  AddScalarSection(metrics.Find("gauges"), "gauge", &families);
  AddScalarSection(metrics.Find("timers_us"), "gauge", &families);
  if (const Json* series = metrics.Find("series");
      series != nullptr && series->is_object()) {
    for (const auto& [name, obj] : series->members()) {
      if (obj.is_object()) AddSummary(name, obj, &families);
    }
  }
  std::string out;
  for (const Family& f : families) {
    if (f.samples.empty()) continue;
    out += "# TYPE " + f.name + " " + f.type + "\n";
    for (const Sample& s : f.samples) {
      out += f.name + s.suffix;
      if (!s.labels.empty()) out += "{" + s.labels + "}";
      out += " " + s.value + "\n";
    }
  }
  return out;
}

}  // namespace obs
}  // namespace cdpu
