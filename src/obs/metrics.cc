#include "src/obs/metrics.h"

namespace cdpu {
namespace obs {

Json SummarizeRunningStats(const RunningStats& stats) {
  Json j = Json::Object();
  j["count"] = stats.count();
  j["mean"] = stats.mean();
  j["stddev"] = stats.stddev();
  j["min"] = stats.count() > 0 ? Json(stats.min()) : Json();
  j["max"] = stats.count() > 0 ? Json(stats.max()) : Json();
  return j;
}

Json SummarizeSampleSet(SampleSet* samples) {
  Json j = Json::Object();
  j["count"] = static_cast<uint64_t>(samples->count());
  if (samples->empty()) {
    return j;
  }
  j["mean"] = samples->Mean();
  j["stddev"] = samples->Stddev();
  j["min"] = samples->Min();
  j["p50"] = samples->Percentile(50);
  j["p90"] = samples->Percentile(90);
  j["p99"] = samples->Percentile(99);
  j["p999"] = samples->Percentile(99.9);
  j["max"] = samples->Max();
  return j;
}

void MetricSet::Count(const std::string& name, uint64_t delta) {
  if (uint64_t* c = FindOrNull(counters_, name)) {
    *c += delta;
  } else {
    counters_.emplace_back(name, delta);
  }
}

void MetricSet::Gauge(const std::string& name, double value) {
  if (double* g = FindOrNull(gauges_, name)) {
    *g = value;
  } else {
    gauges_.emplace_back(name, value);
  }
}

void MetricSet::AddTimerNs(const std::string& name, uint64_t nanos) {
  if (uint64_t* t = FindOrNull(timers_, name)) {
    *t += nanos;
  } else {
    timers_.emplace_back(name, nanos);
  }
}

void MetricSet::Observe(const std::string& series, double value) {
  if (SampleSet* s = FindOrNull(series_, series)) {
    s->Add(value);
  } else {
    series_.emplace_back(series, SampleSet());
    series_.back().second.Add(value);
  }
}

void MetricSet::Summary(const std::string& name, Json summary) {
  if (Json* s = FindOrNull(summaries_, name)) {
    *s = std::move(summary);
  } else {
    summaries_.emplace_back(name, std::move(summary));
  }
}

Json MetricSet::ToJson() const {
  Json j = Json::Object();
  if (!counters_.empty()) {
    Json& c = j["counters"] = Json::Object();
    for (const auto& [k, v] : counters_) {
      c[k] = v;
    }
  }
  if (!gauges_.empty()) {
    Json& g = j["gauges"] = Json::Object();
    for (const auto& [k, v] : gauges_) {
      g[k] = v;
    }
  }
  if (!timers_.empty()) {
    Json& t = j["timers_us"] = Json::Object();
    for (const auto& [k, v] : timers_) {
      t[k] = static_cast<double>(v) / 1e3;
    }
  }
  if (!series_.empty() || !summaries_.empty()) {
    Json& s = j["series"] = Json::Object();
    for (auto& [k, v] : series_) {
      SampleSet copy = v;  // Percentile() sorts; keep the stored set intact
      s[k] = SummarizeSampleSet(&copy);
    }
    for (const auto& [k, v] : summaries_) {
      s[k] = v;
    }
  }
  return j;
}

}  // namespace obs
}  // namespace cdpu
