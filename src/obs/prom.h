// Prometheus text exposition (format v0.0.4) for MetricSet JSON documents.
//
// RenderPrometheus() consumes the {"counters","gauges","timers_us","series"}
// document produced by MetricSet::ToJson() (and served over the wire by the
// svc stats frame) and renders one sample family per metric:
//   - dotted names are sanitised to [a-zA-Z0-9_:] (dots become underscores)
//   - well-known path segments become labels instead of name fragments:
//       svc.tenant7.bytes_in            -> svc_tenant_bytes_in{tenant="7"}
//       svc.runtime.device.qat.jobs_ok  -> svc_runtime_device_jobs_ok{device="qat"}
//       svc.adapt.codec.lz4.chosen      -> svc_adapt_codec_chosen{codec="lz4"}
//       svc.pool.class.4096.hits        -> svc_pool_class_hits{class="4096"}
//   - counters render as TYPE counter, gauges/timers as TYPE gauge
//   - series/summary objects render as TYPE summary with quantile-labelled
//     samples (p50 -> quantile="0.5", ...), plus _count/_sum and auxiliary
//     _mean/_min/_max gauge families.
// Samples of one family are grouped under a single # TYPE header, as the
// format requires.

#ifndef SRC_OBS_PROM_H_
#define SRC_OBS_PROM_H_

#include <string>

#include "src/obs/json.h"

namespace cdpu {
namespace obs {

// Sanitises a dotted metric path into a legal Prometheus metric name.
std::string PromName(const std::string& dotted);

// Renders a MetricSet::ToJson() document (optionally wrapped beneath other
// keys — only the four known sections are consumed) as exposition text.
// Returns "" when `metrics` carries none of the known sections.
std::string RenderPrometheus(const Json& metrics);

}  // namespace obs
}  // namespace cdpu

#endif  // SRC_OBS_PROM_H_
