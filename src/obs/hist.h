// Always-on, lock-free log-linear latency histograms (HdrHistogram-style
// bucketing). A LatencyHistogram is a fixed-size array of relaxed atomic
// counters: Record() is two fetch_adds and never allocates, so it is cheap
// enough to leave armed on every hot path (per-request e2e latency,
// per-device service time, queue wait). Snapshot() produces a plain-value
// HistogramSnapshot that can be merged across threads/devices, diffed into
// per-window deltas for the snapshot ring, and queried for percentiles.
//
// Bucket geometry: values below kSubBuckets (= 2^kSubBucketBits) map to a
// bucket of width 1 (exact). Above that, each power-of-two range is split
// into kSubBuckets/2 equal sub-buckets, so the relative quantization error
// is bounded by 2^(1-kSubBucketBits) (~1.6% with 7 sub-bucket bits).
// Values are unit-agnostic; the svc/runtime hot paths record nanoseconds.

#ifndef SRC_OBS_HIST_H_
#define SRC_OBS_HIST_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/json.h"

namespace cdpu {
namespace obs {

// Shared bucket geometry for LatencyHistogram and HistogramSnapshot.
struct HistBucketing {
  static constexpr uint32_t kSubBucketBits = 7;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 128
  static constexpr uint64_t kSubBucketHalf = kSubBuckets / 2;
  // bucket_index (the power-of-two group) ranges over [0, 64 - bits]; group 0
  // holds the kSubBuckets exact values, every later group contributes
  // kSubBuckets/2 sub-buckets.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBucketHalf;
  // Worst-case relative error of a bucket representative vs the true value.
  static constexpr double kMaxRelativeError =
      1.0 / static_cast<double>(kSubBucketHalf);

  // Maps a value to its bucket slot. Total order preserving: v1 <= v2 implies
  // BucketIndex(v1) <= BucketIndex(v2).
  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const uint32_t group =
        static_cast<uint32_t>(std::bit_width(v)) - kSubBucketBits;
    const uint64_t sub = v >> group;  // in [kSubBucketHalf, kSubBuckets)
    return static_cast<size_t>(kSubBuckets + (group - 1) * kSubBucketHalf +
                               (sub - kSubBucketHalf));
  }

  // Smallest value mapping to bucket `idx`.
  static constexpr uint64_t BucketLow(size_t idx) {
    if (idx < kSubBuckets) return idx;
    const uint64_t group = (idx - kSubBuckets) / kSubBucketHalf + 1;
    const uint64_t sub = (idx - kSubBuckets) % kSubBucketHalf + kSubBucketHalf;
    return sub << group;
  }

  // Largest value mapping to bucket `idx`.
  static constexpr uint64_t BucketHigh(size_t idx) {
    if (idx < kSubBuckets) return idx;
    const uint64_t group = (idx - kSubBuckets) / kSubBucketHalf + 1;
    const uint64_t sub = (idx - kSubBuckets) % kSubBucketHalf + kSubBucketHalf;
    const uint64_t low = sub << group;
    const uint64_t width = 1ull << group;
    // Saturate at the top of the 64-bit range instead of wrapping.
    return (low > ~uint64_t{0} - (width - 1)) ? ~uint64_t{0} : low + width - 1;
  }
};

// Immutable point-in-time copy of a histogram: plain uint64 counts, safe to
// copy, merge, diff, and query off the recording threads.
class HistogramSnapshot {
 public:
  HistogramSnapshot() : counts_(HistBucketing::kNumBuckets, 0) {}

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  const std::vector<uint64_t>& counts() const { return counts_; }

  // Number of buckets with at least one recording (the `hist_buckets`
  // sanity gauge: 0 means nothing was recorded, huge means unit confusion).
  size_t nonzero_buckets() const;

  // Smallest / largest nonzero bucket representative; 0 when empty.
  uint64_t min_value() const;
  uint64_t max_value() const;

  // Percentile in [0, 100]; returns the representative (midpoint) of the
  // bucket containing the p-th ranked recording, accurate to within
  // HistBucketing::kMaxRelativeError of the true sample. 0 when empty.
  uint64_t Percentile(double p) const;

  // Accumulates `other` into this snapshot (associative + commutative).
  void Merge(const HistogramSnapshot& other);

  // Returns this - earlier (per-bucket saturating), for windowed deltas in
  // the snapshot ring. `earlier` must be an older snapshot of the same
  // histogram (counts are monotone).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;

  // {"count":..,"sum":..,"p50":..,"p90":..,"p99":..,"p999":..,"max":..,
  //  "nonzero_buckets":..} — values scaled by 1/scale_divisor (e.g. 1000.0
  // renders nanosecond recordings as microseconds). Sum/percentiles become
  // doubles under scaling.
  Json ToJson(double scale_divisor = 1.0) const;

 private:
  friend class LatencyHistogram;

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  std::vector<uint64_t> counts_;
};

// The live, recordable histogram. Fixed memory (~30 KiB), no locks: Record()
// is wait-free and safe from any number of threads concurrently with
// Snapshot(). Not copyable; share by pointer.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value) {
    counts_[HistBucketing::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Relaxed-load copy of the current state. Concurrent recorders may be
  // mid-Record, so count()/sum() and the bucket totals can transiently
  // disagree by in-flight recordings; each recording is never lost or
  // double-counted across successive snapshots.
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> counts_[HistBucketing::kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace obs
}  // namespace cdpu

#endif  // SRC_OBS_HIST_H_
