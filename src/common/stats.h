// Descriptive statistics used by the profiling harnesses: running mean and
// variance (Welford), percentile extraction, and coefficient of variation —
// the metric Finding 15 uses for multi-tenant isolation.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace cdpu {

// Welford online accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) {
      min_ = x;
    }
    if (n_ == 1 || x > max_) {
      max_ = x;
    }
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  // Coefficient of variation as a percentage (stddev/mean * 100).
  double cv_percent() const { return mean_ != 0.0 ? stddev() / mean_ * 100.0 : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Holds all samples; supports arbitrary percentiles. Used for latency
// distributions (p50/p99) and the ratio distributions of Figure 7.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Stddev() const;
  double CvPercent() const;

  // Linear-interpolated percentile, p in [0,100]. Requires non-empty set.
  double Percentile(double p);

  double Min() { return Percentile(0); }
  double Median() { return Percentile(50); }
  double Max() { return Percentile(100); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace cdpu

#endif  // SRC_COMMON_STATS_H_
