// Descriptive statistics used by the profiling harnesses: running mean and
// variance (Welford), percentile extraction, and coefficient of variation —
// the metric Finding 15 uses for multi-tenant isolation.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cdpu {

// Welford online accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) {
      min_ = x;
    }
    if (n_ == 1 || x > max_) {
      max_ = x;
    }
  }

  // Folds another accumulator into this one (Chan et al. parallel variance
  // combine). Lets worker threads keep uncontended thread-local stats and
  // merge them into a shared sink at snapshot/shutdown time.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) {
      return;
    }
    if (n_ == 0) {
      *this = other;
      return;
    }
    uint64_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = n;
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  // Coefficient of variation as a percentage (stddev/mean * 100).
  double cv_percent() const { return mean_ != 0.0 ? stddev() / mean_ * 100.0 : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Holds all samples; supports arbitrary percentiles. Used for latency
// distributions (p50/p99) and the ratio distributions of Figure 7.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Stddev() const;
  double CvPercent() const;

  // Linear-interpolated percentile, p in [0,100]. Requires non-empty set.
  double Percentile(double p);

  double Min() { return Percentile(0); }
  double Median() { return Percentile(50); }
  double Max() { return Percentile(100); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = false;
};

// Lock-free byte/operation counters shared across worker threads. Relaxed
// ordering is sufficient: the counters are monotonic tallies read after a
// synchronising join/drain, never used for inter-thread handoff.
class AtomicThroughput {
 public:
  void Record(uint64_t bytes_in, uint64_t bytes_out) {
    ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(bytes_in, std::memory_order_relaxed);
    bytes_out_.fetch_add(bytes_out, std::memory_order_relaxed);
  }

  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  uint64_t bytes_in() const { return bytes_in_.load(std::memory_order_relaxed); }
  uint64_t bytes_out() const { return bytes_out_.load(std::memory_order_relaxed); }

  void Reset() {
    ops_.store(0, std::memory_order_relaxed);
    bytes_in_.store(0, std::memory_order_relaxed);
    bytes_out_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

// Monotonic high-water mark maintained with a CAS loop; used to audit the
// runtime's in-flight ceiling (never exceeds the device queue depth).
class AtomicHighWater {
 public:
  void Observe(uint64_t value) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> max_{0};
};

}  // namespace cdpu

#endif  // SRC_COMMON_STATS_H_
