// Lightweight error-handling vocabulary used across the repository.
//
// Hot paths (codecs, device models, FTL) do not use exceptions; fallible
// operations return Status or Result<T>. The set of codes is deliberately
// small: callers almost always either propagate or abort.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace cdpu {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kOutOfRange,        // offset/length outside the addressable range
  kCorruptData,       // compressed stream failed validation
  kResourceExhausted, // buffer/queue/capacity limit hit
  kUnavailable,       // device busy or not present
  kInternal,          // invariant violation inside the library
};

// Returns a stable human-readable name, e.g. "CORRUPT_DATA".
const char* StatusCodeName(StatusCode code);

// Value-type status. Ok statuses carry no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status CorruptData(std::string m) {
    return Status(StatusCode::kCorruptData, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) { return Status(StatusCode::kUnavailable, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

// Propagates a non-OK status to the caller.
#define CDPU_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::cdpu::Status _st = (expr);          \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

}  // namespace cdpu

#endif  // SRC_COMMON_STATUS_H_
