// Pooled, refcounted request buffers: the host-side answer to the paper's
// data-movement findings (Figs 10/11 — for small blocks the offload cost is
// dominated by staging around the accelerator, not the kernel). Every layer
// of the request path (wire parse -> admission -> runtime -> codec ->
// response write) used to copy the payload into a freshly allocated buffer;
// this module gives them one slab-backed allocation to share instead.
//
//   BufferPool  — size-class freelists carved from slabs. Thread-safe:
//                 a segment allocated on the epoll thread can be released by
//                 an engine or reaper thread. Misses (slab growth) and
//                 oversize fall-through allocations are counted so the
//                 steady-state invariant ("the hot path never touches the
//                 allocator") is observable, not aspirational.
//   IoBuf       — refcounted handle over one contiguous segment. Copying an
//                 IoBuf bumps a refcount; View() derives a cheap sub-range
//                 sharing the same segment (how a parsed frame's payload
//                 aliases the receive buffer). The last handle standing
//                 returns the segment to its freelist.
//
// Lifetime contract: a BufferPool must outlive every IoBuf carved from it.
// Components that own a pool declare it before the threads/objects that hold
// buffers (members are destroyed in reverse order). BufferPool::Default()
// is a process-lifetime pool for callers without a natural owner (client
// connections, tests).

#ifndef SRC_COMMON_IOBUF_H_
#define SRC_COMMON_IOBUF_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace cdpu {

using ByteSpan = std::span<const uint8_t>;

class BufferPool;

namespace internal {

// Control block for one contiguous buffer. Pool-backed segments return to
// their freelist on the last release; heap segments (oversize requests, or a
// pool with pooling disabled) are freed outright. `refs` is the only field
// mutated after allocation, so concurrent readers need no lock.
struct Segment {
  uint8_t* data = nullptr;
  size_t capacity = 0;
  std::atomic<uint32_t> refs{0};
  BufferPool* pool = nullptr;   // owner; never null
  uint32_t size_class = 0;      // kHeapClass = not pooled
  static constexpr uint32_t kHeapClass = ~0u;
};

}  // namespace internal

// Refcounted view/handle over a Segment sub-range. Copy = refcount bump;
// destruction of the last handle releases the segment. Default-constructed
// IoBufs are empty and never touch a pool.
class IoBuf {
 public:
  IoBuf() = default;
  IoBuf(const IoBuf& other) : seg_(other.seg_), offset_(other.offset_), len_(other.len_) {
    if (seg_ != nullptr) {
      seg_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  IoBuf& operator=(const IoBuf& other) {
    if (this != &other) {
      IoBuf tmp(other);
      Swap(tmp);
    }
    return *this;
  }
  IoBuf(IoBuf&& other) noexcept
      : seg_(other.seg_), offset_(other.offset_), len_(other.len_) {
    other.seg_ = nullptr;
    other.offset_ = 0;
    other.len_ = 0;
  }
  IoBuf& operator=(IoBuf&& other) noexcept {
    if (this != &other) {
      Reset();
      Swap(other);
    }
    return *this;
  }
  ~IoBuf() { Reset(); }

  // Releases this handle's reference. The segment returns to its pool when
  // the last handle lets go, from whichever thread that happens to be.
  void Reset();

  // Allocates from `pool` (Default() when null) and copies `bytes` in.
  static IoBuf Copy(ByteSpan bytes, BufferPool* pool = nullptr);

  const uint8_t* data() const { return seg_ != nullptr ? seg_->data + offset_ : nullptr; }
  uint8_t* data() { return seg_ != nullptr ? seg_->data + offset_ : nullptr; }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  // Writable room from this handle's offset to the end of the segment
  // (>= size(); the size-class rounds allocations up).
  size_t capacity() const { return seg_ != nullptr ? seg_->capacity - offset_ : 0; }

  ByteSpan span() const { return ByteSpan(data(), len_); }
  operator ByteSpan() const { return span(); }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + len_; }

  // Shrinks/extends the view in place; `n` must be <= capacity().
  void Resize(size_t n) { len_ = n <= capacity() ? n : capacity(); }

  // Sub-range sharing this segment's refcount. offset/len are clamped to
  // this handle's view.
  IoBuf View(size_t offset, size_t len) const;

  // True when this handle is the only reference (safe to rewrite in place).
  bool unique() const {
    return seg_ != nullptr && seg_->refs.load(std::memory_order_acquire) == 1;
  }

 private:
  friend class BufferPool;
  IoBuf(internal::Segment* seg, size_t offset, size_t len)
      : seg_(seg), offset_(offset), len_(len) {}
  void Swap(IoBuf& other) {
    std::swap(seg_, other.seg_);
    std::swap(offset_, other.offset_);
    std::swap(len_, other.len_);
  }

  internal::Segment* seg_ = nullptr;
  size_t offset_ = 0;
  size_t len_ = 0;
};

struct PoolClassStats {
  size_t segment_bytes = 0;
  uint64_t hits = 0;        // freelist pops
  uint64_t misses = 0;      // slab growth allocations
  uint32_t free_segments = 0;
  uint32_t outstanding = 0;  // segments currently held by IoBufs
};

struct PoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;             // pooled-class allocations that grew a slab
  uint64_t oversize = 0;           // direct heap segments above the largest class
  uint64_t slabs = 0;
  uint64_t slab_bytes = 0;         // total backing memory owned by the pool
  uint64_t outstanding_buffers = 0;
  uint64_t outstanding_bytes = 0;  // capacity held by live IoBufs
  std::vector<PoolClassStats> classes;
  bool touched() const { return hits + misses + oversize > 0; }
};

struct PoolOptions {
  size_t min_segment_bytes = 4 * 1024;
  size_t max_segment_bytes = 1024 * 1024;  // above this: direct heap, counted
  uint32_t segments_per_slab = 16;
  // When false every allocation goes straight to the heap (and every release
  // frees). This is the "legacy" arm of the mem_path experiment: identical
  // code path, pre-pool allocator behaviour.
  bool pooling = true;
};

class BufferPool {
 public:
  explicit BufferPool(const PoolOptions& options = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a buffer with size() == bytes and capacity() >= bytes (rounded
  // up to the size class). `missed` reports whether the allocator was
  // touched (slab growth or oversize) — callers on a traced hot path emit an
  // alloc-stall span when it fires. bytes == 0 yields an empty IoBuf.
  IoBuf Allocate(size_t bytes, bool* missed = nullptr);

  PoolStats Snapshot() const;
  const PoolOptions& options() const { return options_; }

  // Process-lifetime pool for callers without a natural owner.
  static BufferPool& Default();

 private:
  friend class IoBuf;
  struct SizeClass {
    size_t bytes = 0;
    mutable std::mutex mu;
    std::vector<internal::Segment*> free;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  void Release(internal::Segment* seg);
  internal::Segment* NewHeapSegment(size_t bytes);

  PoolOptions options_;
  std::vector<std::unique_ptr<SizeClass>> classes_;

  mutable std::mutex slabs_mu_;
  std::vector<std::unique_ptr<uint8_t[]>> slabs_;  // data backing
  std::vector<std::unique_ptr<internal::Segment[]>> slab_segments_;
  std::atomic<uint64_t> slab_bytes_{0};
  std::atomic<uint64_t> oversize_{0};
  std::atomic<uint64_t> outstanding_buffers_{0};
  std::atomic<uint64_t> outstanding_bytes_{0};
};

// Process-wide data-path accounting, independent of which pool (or none) a
// buffer came from. `buffer_allocs` counts acquisitions that touched the
// allocator (pool misses, oversize and unpooled segments); `payload_copies`
// counts the staging copies the layers still perform (parser re-home, codec
// sink staging, legacy-mode frame copy-out). svc_closed_loop divides deltas
// of these by measured requests to report allocs_per_request — the metric
// the bench-smoke gate holds at the steady-state floor.
struct MemPathCounters {
  uint64_t buffer_allocs = 0;
  uint64_t buffer_alloc_bytes = 0;
  uint64_t payload_copies = 0;
  uint64_t payload_copy_bytes = 0;
};
MemPathCounters MemPathSnapshot();
void NoteBufferAlloc(uint64_t bytes);
void NotePayloadCopy(uint64_t bytes);

}  // namespace cdpu

#endif  // SRC_COMMON_IOBUF_H_
