// CRC-32 (ISO-HDLC polynomial, as used by gzip and Btrfs-style checksums).
// Table-driven, byte at a time; fast enough for simulation payloads.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace cdpu {

// One-shot CRC of `data`. Chain calls by passing the prior result as `seed`.
uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace cdpu

#endif  // SRC_COMMON_CRC32_H_
