// Deterministic fast RNG (xoshiro256**) for workload generation. All
// benchmarks and tests seed explicitly so runs are reproducible.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace cdpu {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  uint8_t NextByte() { return static_cast<uint8_t>(Next() & 0xff); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace cdpu

#endif  // SRC_COMMON_RNG_H_
