// LSB-first bit stream reader/writer (Deflate bit order).
//
// BitWriter accumulates bits into a 64-bit register and spills whole bytes to
// an output vector; BitReader refills a 64-bit register from the input span.
// Both are used by the Deflate, Huffman and FSE coders. FSE writes LSB-first
// as well but reads the stream backwards; BackwardBitReader covers that case.

#ifndef SRC_COMMON_BITSTREAM_H_
#define SRC_COMMON_BITSTREAM_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace cdpu {

class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}

  // Appends the low `count` bits of `bits` (count <= 57 per call).
  void Write(uint64_t bits, uint32_t count) {
    assert(count <= 57);
    assert(count == 64 || (bits >> count) == 0);
    acc_ |= bits << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_->push_back(static_cast<uint8_t>(acc_ & 0xff));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  // Pads with zero bits to the next byte boundary and flushes.
  void AlignToByte() {
    if (filled_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_ & 0xff));
      acc_ = 0;
      filled_ = 0;
    }
  }

  // Total bits written so far (including unflushed).
  uint64_t bit_count() const { return out_->size() * 8 + filled_; }

 private:
  std::vector<uint8_t>* out_;
  uint64_t acc_ = 0;
  uint32_t filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const uint8_t> data) : data_(data) {}

  // Reads `count` bits (count <= 57). Reading past the end yields zero bits
  // and sets overflowed().
  uint64_t Read(uint32_t count) {
    assert(count <= 57);
    Refill();
    if (count > filled_) {
      overflowed_ = true;
      // Zero-pad: decoder loops detect overflow via overflowed().
      uint64_t v = acc_ & ((count < 64 ? (uint64_t{1} << count) : 0) - 1);
      acc_ = 0;
      filled_ = 0;
      return v;
    }
    uint64_t v = acc_ & ((uint64_t{1} << count) - 1);
    acc_ >>= count;
    filled_ -= count;
    return v;
  }

  // Peeks at up to `count` bits without consuming them.
  uint64_t Peek(uint32_t count) {
    assert(count <= 57);
    Refill();
    if (count >= 64) {
      return acc_;
    }
    return acc_ & ((uint64_t{1} << count) - 1);
  }

  // Consumes `count` bits previously peeked. Skipping past the end of the
  // stream (a peek zero-padded a truncated buffer) flags overflow so decode
  // loops terminate on corrupt input.
  void Skip(uint32_t count) {
    if (count > filled_) {
      overflowed_ = true;
      acc_ = 0;
      filled_ = 0;
      return;
    }
    acc_ >>= count;
    filled_ -= count;
  }

  // Discards buffered bits up to the next byte boundary.
  void AlignToByte() {
    uint32_t drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  bool overflowed() const { return overflowed_; }

  // Bits still available (buffered + unread bytes).
  uint64_t BitsRemaining() const { return filled_ + (data_.size() - pos_) * 8; }

 private:
  void Refill() {
    while (filled_ <= 56 && pos_ < data_.size()) {
      acc_ |= uint64_t{data_[pos_++]} << filled_;
      filled_ += 8;
    }
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  uint32_t filled_ = 0;
  bool overflowed_ = false;
};

// Reads bits starting from the *end* of the buffer, as FSE/tANS decoding
// requires (the encoder writes forward; the decoder consumes in reverse).
// The final byte contains a 1-marker bit above the last payload bit.
class BackwardBitReader {
 public:
  // `data` must be non-empty and its last byte non-zero (the marker).
  explicit BackwardBitReader(std::span<const uint8_t> data) : data_(data) {
    pos_ = data_.size();
    Refill();
    // Drop the marker bit: the highest set bit of the last byte.
    if (filled_ > 0) {
      uint32_t marker = 63 - static_cast<uint32_t>(__builtin_clzll(acc_));
      filled_ = marker;
      acc_ &= (marker < 64 ? (uint64_t{1} << marker) : 0) - 1;
    }
  }

  // Reads the top `count` bits (the bits written most recently before the
  // current position).
  uint64_t Read(uint32_t count) {
    assert(count <= 56);
    if (count > filled_) {
      Refill();
    }
    if (count > filled_) {
      overflowed_ = true;
      uint64_t v = filled_ > 0 ? acc_ << (count - filled_) : 0;
      filled_ = 0;
      acc_ = 0;
      return v & ((uint64_t{1} << count) - 1);
    }
    filled_ -= count;
    uint64_t v = acc_ >> filled_;
    acc_ &= (filled_ < 64 ? (uint64_t{1} << filled_) : 0) - 1;
    return v;
  }

  bool overflowed() const { return overflowed_; }
  uint64_t BitsRemaining() const { return filled_ + pos_ * 8; }

 private:
  void Refill() {
    while (filled_ <= 56 && pos_ > 0) {
      acc_ = (acc_ << 8) | data_[--pos_];
      filled_ += 8;
    }
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  uint32_t filled_ = 0;
  bool overflowed_ = false;
};

// Writer counterpart for BackwardBitReader: writes LSB-first forward, then
// appends a marker bit so the reader can find the stream end.
class MarkedBitWriter {
 public:
  explicit MarkedBitWriter(std::vector<uint8_t>* out) : w_(out) {}

  void Write(uint64_t bits, uint32_t count) { w_.Write(bits, count); }

  // Terminates the stream with the 1-marker and byte-aligns.
  void Finish() {
    w_.Write(1, 1);
    w_.AlignToByte();
  }

 private:
  BitWriter w_;
};

}  // namespace cdpu

#endif  // SRC_COMMON_BITSTREAM_H_
