#include "src/common/iobuf.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cdpu {
namespace {

std::atomic<uint64_t> g_buffer_allocs{0};
std::atomic<uint64_t> g_buffer_alloc_bytes{0};
std::atomic<uint64_t> g_payload_copies{0};
std::atomic<uint64_t> g_payload_copy_bytes{0};

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

MemPathCounters MemPathSnapshot() {
  MemPathCounters c;
  c.buffer_allocs = g_buffer_allocs.load(std::memory_order_relaxed);
  c.buffer_alloc_bytes = g_buffer_alloc_bytes.load(std::memory_order_relaxed);
  c.payload_copies = g_payload_copies.load(std::memory_order_relaxed);
  c.payload_copy_bytes = g_payload_copy_bytes.load(std::memory_order_relaxed);
  return c;
}

void NoteBufferAlloc(uint64_t bytes) {
  g_buffer_allocs.fetch_add(1, std::memory_order_relaxed);
  g_buffer_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void NotePayloadCopy(uint64_t bytes) {
  g_payload_copies.fetch_add(1, std::memory_order_relaxed);
  g_payload_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void IoBuf::Reset() {
  if (seg_ == nullptr) {
    return;
  }
  internal::Segment* seg = seg_;
  seg_ = nullptr;
  offset_ = 0;
  len_ = 0;
  // Release order matters: acq_rel makes every write through this handle
  // visible to whichever thread performs the final release and recycles the
  // memory (the classic shared_ptr fence).
  if (seg->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    seg->pool->Release(seg);
  }
}

IoBuf IoBuf::Copy(ByteSpan bytes, BufferPool* pool) {
  if (pool == nullptr) {
    pool = &BufferPool::Default();
  }
  IoBuf buf = pool->Allocate(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(buf.data(), bytes.data(), bytes.size());
    NotePayloadCopy(bytes.size());
  }
  return buf;
}

IoBuf IoBuf::View(size_t offset, size_t len) const {
  if (seg_ == nullptr) {
    return IoBuf();
  }
  offset = std::min(offset, len_);
  len = std::min(len, len_ - offset);
  seg_->refs.fetch_add(1, std::memory_order_relaxed);
  return IoBuf(seg_, offset_ + offset, len);
}

BufferPool::BufferPool(const PoolOptions& options) : options_(options) {
  options_.min_segment_bytes = std::max<size_t>(64, RoundUpPow2(options_.min_segment_bytes));
  options_.max_segment_bytes =
      std::max(options_.min_segment_bytes, RoundUpPow2(options_.max_segment_bytes));
  options_.segments_per_slab = std::max(1u, options_.segments_per_slab);
  for (size_t bytes = options_.min_segment_bytes; bytes <= options_.max_segment_bytes;
       bytes <<= 1) {
    auto cls = std::make_unique<SizeClass>();
    cls->bytes = bytes;
    classes_.push_back(std::move(cls));
  }
}

BufferPool::~BufferPool() {
  // All IoBufs must be gone by now (see the lifetime contract in the
  // header). The slab/segment arrays free themselves; this assert catches
  // ordering bugs in debug builds before they become use-after-frees.
  assert(outstanding_buffers_.load(std::memory_order_acquire) == 0);
}

internal::Segment* BufferPool::NewHeapSegment(size_t bytes) {
  auto* seg = new internal::Segment;
  seg->data = new uint8_t[bytes];
  seg->capacity = bytes;
  seg->pool = this;
  seg->size_class = internal::Segment::kHeapClass;
  NoteBufferAlloc(bytes);
  return seg;
}

IoBuf BufferPool::Allocate(size_t bytes, bool* missed) {
  if (missed != nullptr) {
    *missed = false;
  }
  if (bytes == 0) {
    return IoBuf();
  }

  internal::Segment* seg = nullptr;
  if (!options_.pooling || bytes > options_.max_segment_bytes) {
    if (options_.pooling) {
      oversize_.fetch_add(1, std::memory_order_relaxed);
    }
    seg = NewHeapSegment(bytes);
    if (missed != nullptr) {
      *missed = true;
    }
  } else {
    size_t ci = 0;
    while (classes_[ci]->bytes < bytes) {
      ++ci;
    }
    SizeClass& cls = *classes_[ci];
    {
      std::lock_guard<std::mutex> lock(cls.mu);
      if (!cls.free.empty()) {
        seg = cls.free.back();
        cls.free.pop_back();
        ++cls.hits;
      } else {
        ++cls.misses;
      }
    }
    if (seg == nullptr) {
      // Slab growth: carve segments_per_slab fresh segments, keep one, bank
      // the rest. One backing allocation amortises across the whole batch.
      const uint32_t n = options_.segments_per_slab;
      auto data = std::make_unique<uint8_t[]>(cls.bytes * n);
      auto segs = std::make_unique<internal::Segment[]>(n);
      for (uint32_t i = 0; i < n; ++i) {
        segs[i].data = data.get() + static_cast<size_t>(i) * cls.bytes;
        segs[i].capacity = cls.bytes;
        segs[i].pool = this;
        segs[i].size_class = static_cast<uint32_t>(ci);
      }
      seg = &segs[0];
      {
        std::lock_guard<std::mutex> lock(cls.mu);
        for (uint32_t i = 1; i < n; ++i) {
          cls.free.push_back(&segs[i]);
        }
      }
      {
        std::lock_guard<std::mutex> lock(slabs_mu_);
        slabs_.push_back(std::move(data));
        slab_segments_.push_back(std::move(segs));
      }
      slab_bytes_.fetch_add(static_cast<uint64_t>(cls.bytes) * n,
                            std::memory_order_relaxed);
      NoteBufferAlloc(static_cast<uint64_t>(cls.bytes) * n);
      if (missed != nullptr) {
        *missed = true;
      }
    }
  }

  seg->refs.store(1, std::memory_order_relaxed);
  outstanding_buffers_.fetch_add(1, std::memory_order_relaxed);
  outstanding_bytes_.fetch_add(seg->capacity, std::memory_order_relaxed);
  return IoBuf(seg, 0, bytes);
}

void BufferPool::Release(internal::Segment* seg) {
  outstanding_buffers_.fetch_sub(1, std::memory_order_relaxed);
  outstanding_bytes_.fetch_sub(seg->capacity, std::memory_order_relaxed);
  if (seg->size_class == internal::Segment::kHeapClass) {
    delete[] seg->data;
    delete seg;
    return;
  }
  SizeClass& cls = *classes_[seg->size_class];
  std::lock_guard<std::mutex> lock(cls.mu);
  cls.free.push_back(seg);
}

PoolStats BufferPool::Snapshot() const {
  PoolStats s;
  s.oversize = oversize_.load(std::memory_order_relaxed);
  s.slab_bytes = slab_bytes_.load(std::memory_order_relaxed);
  s.outstanding_buffers = outstanding_buffers_.load(std::memory_order_relaxed);
  s.outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slabs_mu_);
    s.slabs = slabs_.size();
  }
  s.classes.reserve(classes_.size());
  for (const auto& cls : classes_) {
    PoolClassStats c;
    c.segment_bytes = cls->bytes;
    std::lock_guard<std::mutex> lock(cls->mu);
    c.hits = cls->hits;
    c.misses = cls->misses;
    c.free_segments = static_cast<uint32_t>(cls->free.size());
    c.outstanding = static_cast<uint32_t>(
        cls->misses * options_.segments_per_slab >= cls->free.size()
            ? cls->misses * options_.segments_per_slab - cls->free.size()
            : 0);
    s.hits += c.hits;
    s.misses += c.misses;
    s.classes.push_back(c);
  }
  // Oversize allocations touched the heap too; fold them into the headline
  // miss tally so hits/(hits+misses) reads as the true pool hit rate.
  s.misses += s.oversize;
  return s;
}

BufferPool& BufferPool::Default() {
  static BufferPool* pool = new BufferPool();  // leaked: outlives all users
  return *pool;
}

}  // namespace cdpu
