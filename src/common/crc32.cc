#include "src/common/crc32.h"

#include <array>

namespace cdpu {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t c = seed ^ 0xffffffffu;
  for (uint8_t b : data) {
    c = kTable[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace cdpu
