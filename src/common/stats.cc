#include "src/common/stats.h"

#include <algorithm>
#include <cassert>

namespace cdpu {

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double m2 = 0.0;
  for (double s : samples_) {
    m2 += (s - mean) * (s - mean);
  }
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::CvPercent() const {
  double mean = Mean();
  return mean != 0.0 ? Stddev() / mean * 100.0 : 0.0;
}

double SampleSet::Percentile(double p) {
  assert(!samples_.empty());
  EnsureSorted();
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void SampleSet::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

}  // namespace cdpu
