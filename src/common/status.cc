#include "src/common/status.h"

namespace cdpu {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace cdpu
