// LEB128-style variable-length integers, used by the Snappy-like codec and
// on-disk metadata records (SSTable blocks, FTL journal).

#ifndef SRC_COMMON_VARINT_H_
#define SRC_COMMON_VARINT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cdpu {

inline void PutVarint32(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

inline void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

// Decodes a varint32 at data[*pos], advancing *pos. Returns nullopt on
// truncation or >5-byte encodings.
inline std::optional<uint32_t> GetVarint32(std::span<const uint8_t> data, size_t* pos) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && *pos < data.size(); shift += 7) {
    uint8_t byte = data[(*pos)++];
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
  }
  return std::nullopt;
}

inline std::optional<uint64_t> GetVarint64(std::span<const uint8_t> data, size_t* pos) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && *pos < data.size(); shift += 7) {
    uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
  }
  return std::nullopt;
}

}  // namespace cdpu

#endif  // SRC_COMMON_VARINT_H_
