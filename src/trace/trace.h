// Low-overhead per-request tracing: the live counterpart of the paper's
// profiling methodology. Every traced request leaves a chain of timestamped
// span records as it crosses layers — wire decode, admission, submission
// ring, engine queue, device model, codec phases (LZ77 / entropy), reaper,
// response encode — so the fig11-style latency breakdown can be computed
// from what the runtime actually did instead of from the analytic model.
//
// Design constraints, in order:
//  1. Tracing off (no TraceSink wired) must cost nothing on the hot path —
//     every instrumentation site is gated on a per-job trace id.
//  2. Tracing on must be safe to leave enabled under load: writer threads
//     push fixed-size records into private SPSC rings (the descriptor-ring
//     pattern from src/runtime/spsc_ring.h) and never block; a full ring
//     drops the record and counts the drop.
//  3. A background collector drains the rings into one bounded in-memory
//     buffer (drop-counted too), preserving per-writer emit order.
//
// Span timestamps use a single process-wide monotonic base (trace::NowNs),
// so spans emitted by the service event loop, the runtime threads and codec
// instrumentation hooks all land on one comparable timeline.

#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/spsc_ring.h"

namespace cdpu {
namespace trace {

// Monotonic nanoseconds on the process-wide steady clock. All spans share
// this base regardless of which layer emitted them.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Request lifecycle phases. The kQueueSubmit..kComplete phases are contiguous
// per request (each starts where the previous ended), so their per-request
// sum equals the measured submit-to-reap wall latency exactly. kWireDecode /
// kAdmission / kResponse bracket the runtime phases on the service side, and
// the kCodec* phases are sub-spans nested inside kCodec.
enum class Phase : uint8_t {
  kWireDecode = 0,  // service: frame parse (header/payload CRC + copy)
  kAdmission,       // service: admission-controller decision
  kAdaptProfile,    // service: adaptive-policy payload probe + decision
  kQueueSubmit,     // submit ring + doorbell coalescing wait
  kQueueEngine,     // in-flight slot wait + engine work-queue wait
  kDevice,          // device-model attempts incl. retry backoff (wall time)
  kCodec,           // real codec work on the engine thread
  kCodecLz77,       // codec sub-span: match search
  kCodecEntropy,    // codec sub-span: Huffman/FSE coding
  kComplete,        // completion queue wait until the reaper posts the result
  kResponse,        // service: response encode + socket write
  kAllocStall,      // nested: a pool miss forced a slab/heap allocation
  kNumPhases,
};

inline constexpr uint32_t kNumPhases = static_cast<uint32_t>(Phase::kNumPhases);

const char* PhaseName(Phase phase);

// The contiguous wall-clock phases whose per-request sum is the end-to-end
// runtime latency (submit -> reap).
bool IsRuntimePhase(Phase phase);

// Fixed-size span record written by instrumentation sites. 32 bytes.
struct SpanRecord {
  uint64_t request_id = 0;  // nonzero; 0 marks "not sampled" at call sites
  uint64_t start_ns = 0;    // trace::NowNs() domain
  uint64_t end_ns = 0;
  uint32_t tenant = 0;
  uint16_t label = 0;       // interned label (codec name etc.); 0 = none
  Phase phase = Phase::kQueueSubmit;
  // Placement dimension: 1-based fleet device slot (ISSUE 7), so the
  // Figure-11 breakdown can split per device. 0 = single-device / untagged.
  uint8_t device = 0;
};
static_assert(sizeof(SpanRecord) == 32, "span records are copied in bulk");

struct TraceSinkOptions {
  size_t ring_capacity = 4096;      // records per writer ring
  size_t buffer_capacity = 1 << 20; // central buffer ceiling (records)
  double sample_rate = 1.0;         // fraction of requests traced, [0,1]
  // Collector sweep period. 2ms keeps the collector to ~500 wakeups/sec —
  // cheap even on a single core — while a 4096-entry ring per writer gives
  // each thread millisecond-scale headroom before spans drop.
  uint64_t collect_interval_us = 2000;
  bool start_collector = true;      // tests drain manually with CollectOnce
};

struct TraceCounters {
  uint64_t emitted = 0;         // records accepted by writer rings
  uint64_t dropped_ring = 0;    // records lost to a full writer ring
  uint64_t dropped_buffer = 0;  // records lost to the full central buffer
  uint64_t collected = 0;       // records moved into the central buffer
  uint64_t sampled = 0;         // requests that drew a trace id
  uint64_t unsampled = 0;       // requests skipped by the sampler
  // Peak central-buffer occupancy (records) seen by any collector sweep:
  // how close the bounded buffer came to dropping under this run's load.
  uint64_t buffer_high_water = 0;
};

class TraceSink {
 public:
  explicit TraceSink(const TraceSinkOptions& options = {});
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // One writer per emitting thread (SPSC: that thread is the only producer).
  // The returned pointer stays valid for the sink's lifetime; writers are
  // never unregistered. Thread-safe.
  class Writer {
   public:
    void Emit(const SpanRecord& record) {
      if (ring_.TryPush(record)) {
        emitted_.fetch_add(1, std::memory_order_relaxed);
      } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const std::string& name() const { return name_; }

   private:
    friend class TraceSink;
    Writer(std::string name, size_t capacity) : name_(std::move(name)), ring_(capacity) {}

    std::string name_;
    SpscRing<SpanRecord> ring_;
    std::atomic<uint64_t> emitted_{0};
    std::atomic<uint64_t> dropped_{0};
  };
  Writer* RegisterWriter(std::string name);

  // Draws a trace id for a new request: nonzero (unique, monotonic) when the
  // request is sampled, 0 otherwise. The decision is deterministic in the
  // id, so a given sample rate reproduces the same subset across runs.
  uint64_t StartRequest();

  // Interns a small label (codec name, experiment tag) into a 16-bit id for
  // embedding in fixed-size records. Idempotent; call sites should cache.
  uint16_t InternLabel(const std::string& label);
  std::string LabelName(uint16_t id) const;  // "" for 0/unknown

  // One collector sweep over all writer rings; safe from any single thread
  // at a time (the background collector or a test driving collection by
  // hand after Stop()). Returns records moved.
  size_t CollectOnce();

  // Stops the background collector (if any) and performs a final drain so
  // Snapshot() sees every record emitted before the call. Idempotent.
  void Stop();

  // Copy of the central buffer in collection order (per-writer emit order is
  // preserved within the buffer).
  std::vector<SpanRecord> Snapshot() const;

  TraceCounters counters() const;
  double sample_rate() const { return options_.sample_rate; }

 private:
  void CollectorLoop();

  TraceSinkOptions options_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> unsampled_{0};

  mutable std::mutex writers_mu_;
  std::vector<std::unique_ptr<Writer>> writers_;

  mutable std::mutex labels_mu_;
  std::vector<std::string> labels_;  // id = index + 1; 0 = "no label"

  mutable std::mutex buffer_mu_;
  std::vector<SpanRecord> buffer_;
  uint64_t dropped_buffer_ = 0;     // guarded by buffer_mu_
  uint64_t collected_ = 0;          // guarded by buffer_mu_
  uint64_t buffer_high_water_ = 0;  // guarded by buffer_mu_

  std::mutex collect_mu_;  // serialises CollectOnce callers
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // guarded by collect_mu_
  std::thread collector_;
};

// Convenience for instrumentation sites that already know the span bounds.
inline void EmitSpan(TraceSink::Writer* w, uint64_t request_id, uint32_t tenant,
                     uint16_t label, Phase phase, uint64_t start_ns, uint64_t end_ns,
                     uint8_t device = 0) {
  SpanRecord r;
  r.request_id = request_id;
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  r.tenant = tenant;
  r.label = label;
  r.phase = phase;
  r.device = device;
  w->Emit(r);
}

// ---------------------------------------------------------------------------
// Thread-local trace context: lets instrumentation hooks buried inside codec
// implementations emit sub-spans for the request currently being processed
// on this thread without threading a sink through every signature.

struct ThreadTraceContext {
  TraceSink::Writer* writer = nullptr;  // null = tracing inactive
  uint64_t request_id = 0;
  uint32_t tenant = 0;
  uint16_t label = 0;
  uint8_t device = 0;  // 1-based fleet device slot; 0 = untagged
};

// The calling thread's context slot (never null; writer null when inactive).
ThreadTraceContext* CurrentThreadTrace();

// RAII: installs a context for the duration of a codec call, restoring the
// previous one on destruction (contexts may nest).
class ScopedTraceContext {
 public:
  ScopedTraceContext(TraceSink::Writer* writer, uint64_t request_id, uint32_t tenant,
                     uint16_t label, uint8_t device = 0) {
    ThreadTraceContext* slot = CurrentThreadTrace();
    saved_ = *slot;
    slot->writer = writer;
    slot->request_id = request_id;
    slot->tenant = tenant;
    slot->label = label;
    slot->device = device;
  }
  ~ScopedTraceContext() { *CurrentThreadTrace() = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  ThreadTraceContext saved_;
};

// RAII codec-phase span: emits [construction, destruction] under the current
// thread context. A no-op (one branch, no clock read) when no context is
// installed — this is the only cost codec hooks add to untraced calls.
class CodecPhaseSpan {
 public:
  explicit CodecPhaseSpan(Phase phase) : phase_(phase) {
    const ThreadTraceContext* ctx = CurrentThreadTrace();
    if (ctx->writer != nullptr) {
      start_ = NowNs();
    }
  }
  ~CodecPhaseSpan() {
    if (start_ == 0) {
      return;
    }
    const ThreadTraceContext* ctx = CurrentThreadTrace();
    SpanRecord r;
    r.request_id = ctx->request_id;
    r.start_ns = start_;
    r.end_ns = NowNs();
    r.tenant = ctx->tenant;
    r.label = ctx->label;
    r.phase = phase_;
    r.device = ctx->device;
    ctx->writer->Emit(r);
  }

  CodecPhaseSpan(const CodecPhaseSpan&) = delete;
  CodecPhaseSpan& operator=(const CodecPhaseSpan&) = delete;

 private:
  Phase phase_;
  uint64_t start_ = 0;
};

}  // namespace trace
}  // namespace cdpu

#endif  // SRC_TRACE_TRACE_H_
