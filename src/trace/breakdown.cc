#include "src/trace/breakdown.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace cdpu {
namespace trace {
namespace {

constexpr std::array<Phase, 5> kRuntimeChain = {
    Phase::kQueueSubmit, Phase::kQueueEngine, Phase::kDevice, Phase::kCodec,
    Phase::kComplete};

double Us(uint64_t start_ns, uint64_t end_ns) {
  return end_ns >= start_ns ? static_cast<double>(end_ns - start_ns) / 1e3 : 0.0;
}

std::string DeviceSlotName(uint8_t slot, const std::vector<std::string>* names) {
  if (slot == 0) {
    return "";
  }
  size_t idx = static_cast<size_t>(slot) - 1;
  if (names != nullptr && idx < names->size()) {
    return (*names)[idx];
  }
  return "dev" + std::to_string(static_cast<unsigned>(slot));
}

}  // namespace

double Breakdown::phase_mean_sum_us() const {
  double sum = 0;
  for (const PhaseStats& p : phases) {
    if (IsRuntimePhase(p.phase)) {
      sum += p.mean_us();
    }
  }
  return sum;
}

double Breakdown::phase_p50_sum_us() {
  double sum = 0;
  for (PhaseStats& p : phases) {
    if (IsRuntimePhase(p.phase) && !p.latency_us.empty()) {
      sum += p.latency_us.Percentile(50);
    }
  }
  return sum;
}

Breakdown BuildBreakdown(const std::vector<SpanRecord>& spans, const TraceSink* sink,
                         const std::vector<std::string>* device_names) {
  Breakdown b;
  std::array<PhaseStats, kNumPhases> by_phase;
  for (uint32_t i = 0; i < kNumPhases; ++i) {
    by_phase[i].phase = static_cast<Phase>(i);
  }
  // Per-device phase accumulators, keyed by 1-based fleet slot. Only spans
  // tagged with a nonzero device feed these (single-device runs stay empty).
  std::map<uint8_t, std::array<PhaseStats, kNumPhases>> dev_phases;

  // Per-request runtime chain for the end-to-end cross-check. Phases are
  // recorded per id; a chain is complete when every runtime phase appeared
  // exactly once (drops or cancellations leave holes).
  struct Chain {
    std::array<uint8_t, kNumPhases> seen{};
    uint64_t start_ns = 0;  // queue_submit start
    uint64_t end_ns = 0;    // complete end
    uint16_t label = 0;
    uint32_t tenant = 0;
    uint8_t device = 0;  // 1-based fleet slot; 0 = untagged
  };
  std::unordered_map<uint64_t, Chain> chains;

  for (const SpanRecord& r : spans) {
    uint32_t pi = static_cast<uint32_t>(r.phase);
    if (pi >= kNumPhases) {
      continue;  // corrupt record; ignore
    }
    PhaseStats& p = by_phase[pi];
    double us = Us(r.start_ns, r.end_ns);
    ++p.count;
    p.total_us += us;
    p.latency_us.Add(us);

    if (r.device != 0) {
      auto [it, inserted] = dev_phases.try_emplace(r.device);
      if (inserted) {
        for (uint32_t j = 0; j < kNumPhases; ++j) {
          (it->second)[j].phase = static_cast<Phase>(j);
        }
      }
      PhaseStats& dp = (it->second)[pi];
      ++dp.count;
      dp.total_us += us;
      dp.latency_us.Add(us);
    }

    if (IsRuntimePhase(r.phase) && r.request_id != 0) {
      Chain& c = chains[r.request_id];
      ++c.seen[pi];
      if (r.device != 0) {
        c.device = r.device;
      }
      if (r.phase == Phase::kQueueSubmit) {
        c.start_ns = r.start_ns;
        c.tenant = r.tenant;
      }
      if (r.phase == Phase::kCodec) {
        // The codec label is interned on the engine thread, so it rides the
        // codec span (earlier phases carry label 0).
        c.label = r.label;
      }
      if (r.phase == Phase::kComplete) {
        c.end_ns = r.end_ns;
      }
    }
  }

  for (uint32_t i = 0; i < kNumPhases; ++i) {
    Phase ph = static_cast<Phase>(i);
    if (by_phase[i].count == 0) {
      continue;
    }
    if (ph == Phase::kCodecLz77 || ph == Phase::kCodecEntropy) {
      b.codec_phases.push_back(std::move(by_phase[i]));
    } else {
      b.phases.push_back(std::move(by_phase[i]));
    }
  }

  std::unordered_map<uint64_t, size_t> group_index;  // (device<<48|label<<32|tenant) -> idx
  std::map<uint8_t, DeviceBreakdown> dev_e2e;        // complete-chain e2e per slot
  for (auto& [id, c] : chains) {
    bool complete = true;
    for (Phase ph : kRuntimeChain) {
      if (c.seen[static_cast<uint32_t>(ph)] != 1) {
        complete = false;
        break;
      }
    }
    if (!complete || c.end_ns < c.start_ns) {
      ++b.incomplete_requests;
      continue;
    }
    ++b.complete_requests;
    double e2e = Us(c.start_ns, c.end_ns);
    b.e2e_us.Add(e2e);

    uint64_t key = (static_cast<uint64_t>(c.device) << 48) |
                   (static_cast<uint64_t>(c.label) << 32) | c.tenant;
    auto it = group_index.find(key);
    if (it == group_index.end()) {
      GroupStats g;
      g.codec = sink != nullptr ? sink->LabelName(c.label) : "";
      g.tenant = c.tenant;
      g.device_slot = c.device;
      g.device = DeviceSlotName(c.device, device_names);
      it = group_index.emplace(key, b.groups.size()).first;
      b.groups.push_back(std::move(g));
    }
    GroupStats& g = b.groups[it->second];
    ++g.requests;
    g.e2e_us.Add(e2e);

    if (c.device != 0) {
      DeviceBreakdown& d = dev_e2e[c.device];
      d.slot = c.device;
      ++d.requests;
      d.e2e_us.Add(e2e);
    }
  }
  std::sort(b.groups.begin(), b.groups.end(), [](const GroupStats& a, const GroupStats& c) {
    if (a.device_slot != c.device_slot) {
      return a.device_slot < c.device_slot;
    }
    return a.codec != c.codec ? a.codec < c.codec : a.tenant < c.tenant;
  });

  // Merge the per-device phase accumulators with the per-device e2e view
  // (devices that only appear in incomplete chains still get phase rows).
  for (auto& [slot, phases] : dev_phases) {
    DeviceBreakdown& d = dev_e2e[slot];
    d.slot = slot;
    d.phases = std::move(phases);
  }
  for (auto& [slot, d] : dev_e2e) {
    d.name = DeviceSlotName(slot, device_names);
    b.devices.push_back(std::move(d));
  }
  return b;
}

void ExportBreakdown(Breakdown& b, const TraceCounters& counters,
                     const std::string& metric_prefix, obs::Reporter* reporter) {
  double runtime_total_us = 0;
  for (const PhaseStats& p : b.phases) {
    if (IsRuntimePhase(p.phase)) {
      runtime_total_us += p.total_us;
    }
  }

  obs::Table& phases = reporter->AddTable(
      "trace_phases", "Live latency breakdown by phase (from per-request spans)",
      {obs::Column("phase"), obs::Column("count", "spans", 0),
       obs::Column("mean_us", "mean us", 1), obs::Column("p50_us", "p50 us", 1),
       obs::Column("p99_us", "p99 us", 1), obs::Column("total_ms", "total ms", 2),
       obs::Column("share", "share", 1, "%")});
  for (PhaseStats& p : b.phases) {
    double share = IsRuntimePhase(p.phase) && runtime_total_us > 0
                       ? 100.0 * p.total_us / runtime_total_us
                       : 0.0;
    phases.AddRow({PhaseName(p.phase), p.count, p.mean_us(), p.latency_us.Percentile(50),
                   p.latency_us.Percentile(99), p.total_us / 1e3, share});
    const std::string mp = metric_prefix + "phase." + PhaseName(p.phase) + ".";
    reporter->metrics().Gauge(mp + "mean_us", p.mean_us());
    reporter->metrics().Gauge(mp + "p50_us", p.latency_us.Percentile(50));
    reporter->metrics().Gauge(mp + "p99_us", p.latency_us.Percentile(99));
  }
  phases.AddNote("share = fraction of total runtime-phase time "
                 "(queue_submit + queue_engine + device + codec + complete)");

  if (!b.codec_phases.empty()) {
    obs::Table& sub = reporter->AddTable(
        "trace_codec_phases",
        "Codec sub-phases (nested inside `codec`; not part of the contiguous sum)",
        {obs::Column("phase"), obs::Column("count", "spans", 0),
         obs::Column("mean_us", "mean us", 1), obs::Column("p50_us", "p50 us", 1),
         obs::Column("p99_us", "p99 us", 1)});
    for (PhaseStats& p : b.codec_phases) {
      sub.AddRow({PhaseName(p.phase), p.count, p.mean_us(), p.latency_us.Percentile(50),
                  p.latency_us.Percentile(99)});
      const std::string mp = metric_prefix + "phase." + PhaseName(p.phase) + ".";
      reporter->metrics().Gauge(mp + "mean_us", p.mean_us());
      reporter->metrics().Gauge(mp + "p50_us", p.latency_us.Percentile(50));
    }
  }

  if (!b.groups.empty()) {
    bool any_device = false;
    for (const GroupStats& g : b.groups) {
      any_device = any_device || g.device_slot != 0;
    }
    std::vector<obs::Column> cols;
    if (any_device) {
      cols.push_back(obs::Column("device"));
    }
    cols.push_back(obs::Column("codec"));
    cols.push_back(obs::Column("tenant", "tenant", 0));
    cols.push_back(obs::Column("requests", "requests", 0));
    cols.push_back(obs::Column("mean_us", "mean us", 1));
    cols.push_back(obs::Column("p50_us", "p50 us", 1));
    cols.push_back(obs::Column("p99_us", "p99 us", 1));
    obs::Table& groups = reporter->AddTable(
        "trace_by_group",
        any_device ? "End-to-end latency per (device, codec, tenant)"
                   : "End-to-end latency per (codec, tenant)",
        std::move(cols));
    for (GroupStats& g : b.groups) {
      std::vector<obs::Json> row;
      if (any_device) {
        row.push_back(g.device.empty() ? "(none)" : g.device);
      }
      row.push_back(g.codec.empty() ? "(default)" : g.codec);
      row.push_back(g.tenant);
      row.push_back(g.requests);
      row.push_back(g.e2e_us.Mean());
      row.push_back(g.e2e_us.Percentile(50));
      row.push_back(g.e2e_us.Percentile(99));
      groups.AddRow(std::move(row));
    }
  }

  if (!b.devices.empty()) {
    // The per-placement Figure-11 split: one row per fleet device with the
    // contiguous runtime-phase means side by side.
    obs::Table& devices = reporter->AddTable(
        "trace_by_device", "Latency breakdown per device (placement split)",
        {obs::Column("device"), obs::Column("requests", "requests", 0),
         obs::Column("e2e_mean_us", "e2e mean us", 1),
         obs::Column("e2e_p99_us", "e2e p99 us", 1),
         obs::Column("submit_us", "submit us", 1),
         obs::Column("engine_us", "engine us", 1),
         obs::Column("device_us", "device us", 1),
         obs::Column("codec_us", "codec us", 1),
         obs::Column("complete_us", "complete us", 1)});
    for (DeviceBreakdown& d : b.devices) {
      auto mean = [&d](Phase ph) { return d.phases[static_cast<uint32_t>(ph)].mean_us(); };
      devices.AddRow({d.name, d.requests, d.e2e_us.empty() ? 0.0 : d.e2e_us.Mean(),
                      d.e2e_us.empty() ? 0.0 : d.e2e_us.Percentile(99),
                      mean(Phase::kQueueSubmit), mean(Phase::kQueueEngine),
                      mean(Phase::kDevice), mean(Phase::kCodec), mean(Phase::kComplete)});
      const std::string mp = metric_prefix + "device." + d.name + ".";
      reporter->metrics().Gauge(mp + "requests", static_cast<double>(d.requests));
      reporter->metrics().Gauge(mp + "e2e_mean_us", d.e2e_us.empty() ? 0.0 : d.e2e_us.Mean());
      reporter->metrics().Gauge(mp + "device_mean_us", mean(Phase::kDevice));
    }
  }

  double e2e_mean = b.e2e_us.empty() ? 0 : b.e2e_us.Mean();
  double e2e_p50 = b.e2e_us.empty() ? 0 : b.e2e_us.Percentile(50);
  double mean_sum = b.phase_mean_sum_us();
  double p50_sum = b.phase_p50_sum_us();
  obs::Table& consistency = reporter->AddTable(
      "trace_consistency",
      "Cross-check: phase sums vs measured end-to-end latency (submit -> reap)",
      {obs::Column("statistic"), obs::Column("e2e_us", "e2e us", 1),
       obs::Column("phase_sum_us", "phase sum us", 1), obs::Column("ratio", "", 3, "x")});
  consistency.AddRow({"mean", e2e_mean, mean_sum, e2e_mean > 0 ? mean_sum / e2e_mean : 0.0});
  consistency.AddRow({"p50", e2e_p50, p50_sum, e2e_p50 > 0 ? p50_sum / e2e_p50 : 0.0});
  consistency.AddNote(
      "phases are contiguous per request, so the mean sum matches the mean e2e exactly\n"
      "(for complete chains); percentile sums are approximate by construction");

  obs::MetricSet& m = reporter->metrics();
  m.Gauge(metric_prefix + "e2e_mean_us", e2e_mean);
  m.Gauge(metric_prefix + "e2e_p50_us", e2e_p50);
  m.Gauge(metric_prefix + "e2e_p99_us", b.e2e_us.empty() ? 0 : b.e2e_us.Percentile(99));
  m.Gauge(metric_prefix + "phase_mean_sum_us", mean_sum);
  m.Gauge(metric_prefix + "phase_p50_sum_us", p50_sum);
  m.Count(metric_prefix + "requests_complete", b.complete_requests);
  m.Count(metric_prefix + "requests_incomplete", b.incomplete_requests);
  m.Count(metric_prefix + "spans_emitted", counters.emitted);
  m.Count(metric_prefix + "spans_collected", counters.collected);
  m.Count(metric_prefix + "spans_dropped_ring", counters.dropped_ring);
  m.Count(metric_prefix + "spans_dropped_buffer", counters.dropped_buffer);
  m.Count(metric_prefix + "requests_sampled", counters.sampled);
  m.Count(metric_prefix + "requests_unsampled", counters.unsampled);
}

Status WriteChromeTrace(const std::vector<SpanRecord>& spans, const TraceSink* sink,
                        const std::string& path) {
  uint64_t origin = ~uint64_t{0};
  for (const SpanRecord& r : spans) {
    origin = std::min(origin, r.start_ns);
  }
  if (spans.empty()) {
    origin = 0;
  }

  obs::Json doc = obs::Json::Object();
  obs::Json events = obs::Json::Array();
  {
    // Process-name metadata event so trace viewers label the track group.
    obs::Json meta = obs::Json::Object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = uint64_t{1};
    obs::Json args = obs::Json::Object();
    args["name"] = "cdpu";
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const SpanRecord& r : spans) {
    obs::Json ev = obs::Json::Object();
    ev["name"] = PhaseName(r.phase);
    ev["cat"] = IsRuntimePhase(r.phase) ? "runtime" : "service";
    ev["ph"] = "X";
    ev["ts"] = static_cast<double>(r.start_ns - origin) / 1e3;  // microseconds
    ev["dur"] = static_cast<double>(r.end_ns - r.start_ns) / 1e3;
    ev["pid"] = uint64_t{1};
    // One track per request: the viewer shows each request's phase chain as
    // a row, which is the per-request timeline the paper's figure implies.
    ev["tid"] = r.request_id;
    obs::Json args = obs::Json::Object();
    args["request_id"] = r.request_id;
    args["tenant"] = r.tenant;
    if (sink != nullptr && r.label != 0) {
      args["codec"] = sink->LabelName(r.label);
    }
    if (r.device != 0) {
      args["device"] = static_cast<uint64_t>(r.device);
    }
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";

  std::string text = doc.Dump();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace trace
}  // namespace cdpu
