#include "src/trace/trace.h"

#include <algorithm>

namespace cdpu {
namespace trace {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kWireDecode:
      return "wire_decode";
    case Phase::kAdmission:
      return "admission";
    case Phase::kAdaptProfile:
      return "adapt_profile";
    case Phase::kQueueSubmit:
      return "queue_submit";
    case Phase::kQueueEngine:
      return "queue_engine";
    case Phase::kDevice:
      return "device";
    case Phase::kCodec:
      return "codec";
    case Phase::kCodecLz77:
      return "codec.lz77";
    case Phase::kCodecEntropy:
      return "codec.entropy";
    case Phase::kComplete:
      return "complete";
    case Phase::kResponse:
      return "response";
    case Phase::kAllocStall:
      return "alloc_stall";
    case Phase::kNumPhases:
      break;
  }
  return "unknown";
}

bool IsRuntimePhase(Phase phase) {
  switch (phase) {
    case Phase::kQueueSubmit:
    case Phase::kQueueEngine:
    case Phase::kDevice:
    case Phase::kCodec:
    case Phase::kComplete:
      return true;
    default:
      return false;
  }
}

TraceSink::TraceSink(const TraceSinkOptions& options) : options_(options) {
  options_.ring_capacity = std::max<size_t>(2, options_.ring_capacity);
  options_.buffer_capacity = std::max<size_t>(2, options_.buffer_capacity);
  options_.sample_rate = std::clamp(options_.sample_rate, 0.0, 1.0);
  if (options_.start_collector) {
    collector_ = std::thread([this] { CollectorLoop(); });
  }
}

TraceSink::~TraceSink() { Stop(); }

TraceSink::Writer* TraceSink::RegisterWriter(std::string name) {
  std::lock_guard<std::mutex> lock(writers_mu_);
  writers_.push_back(
      std::unique_ptr<Writer>(new Writer(std::move(name), options_.ring_capacity)));
  return writers_.back().get();
}

uint64_t TraceSink::StartRequest() {
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (options_.sample_rate >= 1.0) {
    sampled_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }
  if (options_.sample_rate <= 0.0) {
    unsampled_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  // Deterministic per-id decision (Fibonacci hash): rate r keeps ~r of ids,
  // and a rerun with the same arrival order traces the same requests.
  uint64_t h = id * 0x9e3779b97f4a7c15ULL;
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  if (u < options_.sample_rate) {
    sampled_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }
  unsampled_.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

uint16_t TraceSink::InternLabel(const std::string& label) {
  std::lock_guard<std::mutex> lock(labels_mu_);
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) {
      return static_cast<uint16_t>(i + 1);
    }
  }
  if (labels_.size() >= 0xfffe) {
    return 0;  // label space exhausted; spans fall back to "no label"
  }
  labels_.push_back(label);
  return static_cast<uint16_t>(labels_.size());
}

std::string TraceSink::LabelName(uint16_t id) const {
  std::lock_guard<std::mutex> lock(labels_mu_);
  if (id == 0 || id > labels_.size()) {
    return "";
  }
  return labels_[id - 1];
}

size_t TraceSink::CollectOnce() {
  std::lock_guard<std::mutex> collect_lock(collect_mu_);
  // Snapshot the writer list; writers are append-only and never destroyed
  // before the sink, so raw pointers stay valid outside writers_mu_.
  std::vector<Writer*> writers;
  {
    std::lock_guard<std::mutex> lock(writers_mu_);
    writers.reserve(writers_.size());
    for (const auto& w : writers_) {
      writers.push_back(w.get());
    }
  }
  size_t moved = 0;
  std::lock_guard<std::mutex> lock(buffer_mu_);
  for (Writer* w : writers) {
    SpanRecord r;
    while (w->ring_.TryPop(&r)) {
      if (buffer_.size() < options_.buffer_capacity) {
        buffer_.push_back(r);
        ++collected_;
        ++moved;
      } else {
        ++dropped_buffer_;
      }
    }
  }
  buffer_high_water_ = std::max<uint64_t>(buffer_high_water_, buffer_.size());
  return moved;
}

void TraceSink::CollectorLoop() {
  const auto interval = std::chrono::microseconds(options_.collect_interval_us);
  while (!stopping_.load(std::memory_order_acquire)) {
    CollectOnce();
    std::this_thread::sleep_for(interval);
  }
}

void TraceSink::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (collector_.joinable()) {
    collector_.join();
  }
  CollectOnce();  // final drain; also the only drain when start_collector=false
}

std::vector<SpanRecord> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(buffer_mu_);
  return buffer_;
}

TraceCounters TraceSink::counters() const {
  TraceCounters c;
  {
    std::lock_guard<std::mutex> lock(writers_mu_);
    for (const auto& w : writers_) {
      c.emitted += w->emitted_.load(std::memory_order_relaxed);
      c.dropped_ring += w->dropped_.load(std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    c.dropped_buffer = dropped_buffer_;
    c.collected = collected_;
    c.buffer_high_water = buffer_high_water_;
  }
  c.sampled = sampled_.load(std::memory_order_relaxed);
  c.unsampled = unsampled_.load(std::memory_order_relaxed);
  return c;
}

ThreadTraceContext* CurrentThreadTrace() {
  thread_local ThreadTraceContext ctx;
  return &ctx;
}

}  // namespace trace
}  // namespace cdpu
