// Aggregation pass over raw span records: rebuilds the paper's
// latency-breakdown view (queueing vs transfer vs per-phase service time)
// from live traces, grouped overall, per phase, and per (codec label,
// tenant). Also the Chrome trace_event exporter for timeline inspection and
// the obs::Reporter bridge that renders the breakdown as human tables and
// schema-versioned JSON.

#ifndef SRC_TRACE_BREAKDOWN_H_
#define SRC_TRACE_BREAKDOWN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/obs/report.h"
#include "src/trace/trace.h"

namespace cdpu {
namespace trace {

struct PhaseStats {
  Phase phase = Phase::kQueueSubmit;
  uint64_t count = 0;
  double total_us = 0;
  SampleSet latency_us;  // one sample per span

  double mean_us() const { return count > 0 ? total_us / static_cast<double>(count) : 0; }
};

// Per-(codec label, tenant, device) end-to-end view.
struct GroupStats {
  std::string codec;  // resolved label name; "" when untagged
  uint32_t tenant = 0;
  uint8_t device_slot = 0;  // 1-based fleet slot; 0 = untagged
  std::string device;       // resolved device name; "" when untagged
  uint64_t requests = 0;
  SampleSet e2e_us;
};

// Per-device phase breakdown: the Figure-11 view split by placement. Only
// populated when spans carry a nonzero device slot (fleet runs).
struct DeviceBreakdown {
  uint8_t slot = 0;
  std::string name;  // resolved from the caller's name list; "dev<slot>" fallback
  uint64_t requests = 0;  // complete runtime chains routed to this device
  SampleSet e2e_us;
  std::array<PhaseStats, kNumPhases> phases{};
};

struct Breakdown {
  // Top-level phases in pipeline order (only phases that appeared).
  std::vector<PhaseStats> phases;
  // Codec sub-phases (lz77/entropy), reported separately because they nest
  // inside kCodec and must not be double-counted in the contiguous sum.
  std::vector<PhaseStats> codec_phases;
  std::vector<GroupStats> groups;
  std::vector<DeviceBreakdown> devices;  // sorted by slot; empty when untagged

  // Requests with a full contiguous runtime chain (queue_submit..complete).
  uint64_t complete_requests = 0;
  // Requests skipped because ring/buffer drops left their chain incomplete.
  uint64_t incomplete_requests = 0;

  SampleSet e2e_us;  // per-request queue_submit.start -> complete.end

  // Sum over runtime phases of the per-phase statistic. Because the phases
  // are contiguous, sum_of_means equals mean(e2e) exactly (for complete
  // requests); sum_of_p50s only approximates p50(e2e) — percentiles are not
  // additive — which is exactly the cross-check the consistency table shows.
  double phase_mean_sum_us() const;
  double phase_p50_sum_us();
};

// Builds the breakdown from a span snapshot. `sink` resolves label names;
// may be null (labels render as ""). `device_names`, when non-null, resolves
// 1-based device slots to names (index slot-1), e.g. from
// FleetRuntime::DeviceNames(); unresolvable slots render as "dev<slot>".
Breakdown BuildBreakdown(const std::vector<SpanRecord>& spans, const TraceSink* sink,
                         const std::vector<std::string>* device_names = nullptr);

// Renders the breakdown into the Reporter: a "trace_phases" table, a
// "trace_codec_phases" table (when codec sub-spans exist), a
// "trace_by_group" table (when >1 group), a "trace_by_device" table (when
// spans carry device slots — the per-placement Figure-11 split), a
// consistency table comparing phase sums against measured end-to-end
// latency, and gauges under `metric_prefix` (e.g. "trace.") for machine
// consumers.
void ExportBreakdown(Breakdown& breakdown, const TraceCounters& counters,
                     const std::string& metric_prefix, obs::Reporter* reporter);

// Writes the span snapshot as Chrome trace_event JSON (catapult / Perfetto
// "trace viewer" format): one complete ("ph":"X") event per span, one track
// per request id, timestamps in microseconds.
Status WriteChromeTrace(const std::vector<SpanRecord>& spans, const TraceSink* sink,
                        const std::string& path);

}  // namespace trace
}  // namespace cdpu

#endif  // SRC_TRACE_BREAKDOWN_H_
