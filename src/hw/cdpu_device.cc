#include "src/hw/cdpu_device.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cdpu {

const char* PlacementName(Placement p) {
  switch (p) {
    case Placement::kCpuSoftware:
      return "cpu";
    case Placement::kPeripheral:
      return "peripheral";
    case Placement::kOnChip:
      return "on-chip";
    case Placement::kInStorage:
      return "in-storage";
  }
  return "unknown";
}

CdpuDevice::CdpuDevice(const CdpuConfig& config) : config_(config), link_(config.link) {}

double CdpuDevice::EffectiveEngineGbps(CdpuOp op, double r, uint32_t active_engines) const {
  double nominal =
      op == CdpuOp::kCompress ? config_.compress_gbps : config_.decompress_gbps;
  double penalty = op == CdpuOp::kCompress ? config_.incompressible_compress_penalty
                                           : config_.incompressible_decompress_penalty;
  double rr = std::clamp(r, 0.0, 1.0);
  double speed = nominal * (1.0 - penalty * rr * rr);
  // Shared back-end cap (memory bandwidth, shared compression slices).
  if (config_.aggregate_gbps_cap > 0 && active_engines > 0) {
    double share = config_.aggregate_gbps_cap / static_cast<double>(active_engines);
    speed = std::min(speed, share);
  }
  return std::max(speed, 1e-3);
}

SimNanos CdpuDevice::CompressServiceTime(uint64_t bytes, double r,
                                         uint32_t active_engines) const {
  double ns = config_.compress_setup_ns +
              static_cast<double>(bytes) /
                  EffectiveEngineGbps(CdpuOp::kCompress, r, active_engines);
  if (config_.verify_after_compress) {
    // The verify pass decompresses the freshly compressed output (r * bytes
    // in, bytes out; charge the output side, the engine bottleneck). Its
    // rate inherits the decompression engine's data-pattern penalty, which
    // is how decompression slowdowns propagate into compression throughput
    // (Finding 5 / Figure 12).
    double base = config_.verify_gbps > 0 ? config_.verify_gbps : config_.decompress_gbps;
    double penalty = config_.incompressible_decompress_penalty;
    double rr = std::clamp(r, 0.0, 1.0);
    double rate = std::max(base * (1.0 - penalty * rr * rr), 1e-3);
    ns += static_cast<double>(bytes) / rate;
  }
  return static_cast<SimNanos>(std::llround(ns));
}

SimNanos CdpuDevice::DecompressServiceTime(uint64_t bytes, double r,
                                           uint32_t active_engines) const {
  double ns = config_.decompress_setup_ns +
              static_cast<double>(bytes) /
                  EffectiveEngineGbps(CdpuOp::kDecompress, r, active_engines);
  return static_cast<SimNanos>(std::llround(ns));
}

CdpuDevice::RequestTrace CdpuDevice::TraceRequest(CdpuOp op, uint64_t bytes, double r) const {
  RequestTrace t;
  double rr = std::clamp(r, 0.05, 1.0);
  uint64_t in_bytes = op == CdpuOp::kCompress
                          ? bytes
                          : static_cast<uint64_t>(static_cast<double>(bytes) * rr);
  uint64_t out_bytes = op == CdpuOp::kCompress
                           ? static_cast<uint64_t>(static_cast<double>(bytes) * rr)
                           : bytes;
  t.service = op == CdpuOp::kCompress ? CompressServiceTime(bytes, r)
                                      : DecompressServiceTime(bytes, r);
  // In-storage engines sit on the write/read path: payload movement is the
  // IO itself, charged by the SSD model, not the compression request.
  bool in_storage = config_.placement == Placement::kInStorage;
  t.dma_in = in_storage ? link_.TransferLatency(0) : link_.TransferLatency(in_bytes);
  t.dma_out = in_storage ? link_.TransferLatency(0) : link_.TransferLatency(out_bytes);
  t.submit = static_cast<SimNanos>(std::llround(config_.submit_overhead_ns));
  t.complete = static_cast<SimNanos>(std::llround(
      config_.complete_overhead_ns + (op == CdpuOp::kCompress
                                          ? config_.latency_extra_compress_ns
                                          : config_.latency_extra_decompress_ns)));
  return t;
}

SimNanos CdpuDevice::RequestLatency(CdpuOp op, uint64_t bytes, double r) const {
  return TraceRequest(op, bytes, r).total();
}

ClosedLoopResult CdpuDevice::RunClosedLoop(CdpuOp op, uint64_t requests, uint64_t bytes,
                                           double r, uint32_t threads) const {
  ClosedLoopResult result;
  if (requests == 0 || threads == 0) {
    return result;
  }
  uint32_t active = std::min<uint64_t>(threads, config_.engines);
  double rr = std::clamp(r, 0.05, 1.0);

  // Queue-ceiling contention: once outstanding requests exceed the hardware
  // queue depth, submissions spin on full rings and per-request software
  // cost inflates (Finding 6).
  double submit_ns = config_.submit_overhead_ns;
  if (config_.queue_limit > 0 && threads > config_.queue_limit) {
    double over = static_cast<double>(threads) / static_cast<double>(config_.queue_limit);
    submit_ns *= over;
  }

  SimNanos service = op == CdpuOp::kCompress ? CompressServiceTime(bytes, r, active)
                                             : DecompressServiceTime(bytes, r, active);
  uint64_t in_bytes = op == CdpuOp::kCompress
                          ? bytes
                          : static_cast<uint64_t>(static_cast<double>(bytes) * rr);
  uint64_t out_bytes = op == CdpuOp::kCompress
                           ? static_cast<uint64_t>(static_cast<double>(bytes) * rr)
                           : bytes;
  bool in_storage = config_.placement == Placement::kInStorage;
  SimNanos dma_in = in_storage ? 0 : link_.TransferLatency(in_bytes);
  SimNanos dma_out = in_storage ? 0 : link_.TransferLatency(out_bytes);

  // The link is a shared serial resource for payload movement; model it as
  // a single-server queue in front of the engines. Setup overlaps with
  // engine work, so only payload occupancy serialises.
  // PCIe/CMI are full duplex: occupancy is gated by the heavier direction.
  double link_occupancy_ns =
      in_storage ? 0.0
                 : static_cast<double>(std::max(in_bytes, out_bytes)) / link_.EffectiveGbps();

  MultiServerQueue engines(config_.engines);
  MultiServerQueue link_q(1);
  std::vector<SimNanos> thread_free(threads, 0);
  double total_latency = 0;

  for (uint64_t i = 0; i < requests; ++i) {
    uint32_t tid = static_cast<uint32_t>(i % threads);
    SimNanos submit_done =
        thread_free[tid] + static_cast<SimNanos>(std::llround(submit_ns));
    // Inbound payload crosses the link, then the engine serves it.
    SimNanos link_in_done = submit_done + dma_in;
    if (!in_storage && link_occupancy_ns > 0) {
      ServiceOutcome lo = link_q.Submit(
          submit_done, static_cast<SimNanos>(std::llround(link_occupancy_ns)));
      link_in_done = std::max(link_in_done, lo.completion - dma_out);
    }
    ServiceOutcome eo = engines.Submit(link_in_done, service);
    SimNanos done = eo.completion + dma_out +
                    static_cast<SimNanos>(std::llround(config_.complete_overhead_ns));
    total_latency += static_cast<double>(done - thread_free[tid]);
    thread_free[tid] = done;
  }

  SimNanos makespan = 0;
  for (SimNanos t : thread_free) {
    makespan = std::max(makespan, t);
  }
  result.makespan = makespan;
  result.requests = requests;
  result.gbps = GbPerSec(requests * bytes, makespan);
  result.mean_latency_ns = total_latency / static_cast<double>(requests);
  result.engine_utilization =
      makespan == 0 ? 0.0
                    : static_cast<double>(engines.busy_ns()) /
                          (static_cast<double>(makespan) * config_.engines);
  return result;
}

ClosedLoopResult RunDeviceFleet(const CdpuConfig& config, uint32_t count, CdpuOp op,
                                uint64_t requests, uint64_t bytes, double r,
                                uint32_t threads) {
  ClosedLoopResult total;
  if (count == 0) {
    return total;
  }
  CdpuDevice device(config);
  uint32_t threads_per = std::max<uint32_t>(1, threads / count);
  uint64_t requests_per = requests / count;
  double weighted_latency = 0;
  for (uint32_t d = 0; d < count; ++d) {
    ClosedLoopResult r1 = device.RunClosedLoop(op, requests_per, bytes, r, threads_per);
    total.gbps += r1.gbps;
    total.makespan = std::max(total.makespan, r1.makespan);
    total.requests += r1.requests;
    weighted_latency += r1.mean_latency_ns * static_cast<double>(r1.requests);
    total.engine_utilization += r1.engine_utilization;
  }
  total.mean_latency_ns =
      total.requests == 0 ? 0 : weighted_latency / static_cast<double>(total.requests);
  total.engine_utilization /= count;
  return total;
}

}  // namespace cdpu
