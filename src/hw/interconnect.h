// Interconnect models for the four CDPU attachment points the paper studies
// (Figure 1 / Table 1): PCIe 3.0 x16 (QAT 8970 peripheral card), CMI with
// DDIO (QAT 4xxx on-chip chiplet), PCIe 5.0 x4 + chiplet AXI (DP-CSD), and
// the CSD 2000's internal FPGA AXI.
//
// A transfer is charged setup + payload/bandwidth. DDIO-capable links model
// LLC-hit DMA (Figure 10): descriptor and payload reads bypass DRAM, which
// is where the 4xxx's 448 ns / 64 KB reads come from versus the 8970's
// ~70x-slower PCIe CMB-style reads (Figure 11a).

#ifndef SRC_HW_INTERCONNECT_H_
#define SRC_HW_INTERCONNECT_H_

#include <cstdint>
#include <string>

#include "src/sim/sim_time.h"

namespace cdpu {

struct LinkConfig {
  std::string name;
  double setup_ns = 500;     // per-transfer DMA/doorbell setup
  double gbps = 8.0;         // sustained payload bandwidth (GB/s = B/ns)
  bool ddio = false;         // LLC-direct placement (on-chip only)
  double llc_hit_rate = 0.9; // fraction of DDIO transfers hitting LLC
  double llc_speedup = 4.0;  // bandwidth multiplier on an LLC hit
};

class Link {
 public:
  explicit Link(const LinkConfig& config) : config_(config) {}

  // Latency to move `bytes` across the link, including setup.
  SimNanos TransferLatency(uint64_t bytes) const;

  // Steady-state bandwidth in GB/s (DDIO-weighted).
  double EffectiveGbps() const;

  const LinkConfig& config() const { return config_; }

 private:
  LinkConfig config_;
};

// Table 1 presets.
LinkConfig Pcie3x16Link();    // QAT 8970
LinkConfig Pcie3x4Link();     // CSD 2000 host link
LinkConfig Pcie5x4Link();     // DP-CSD host link
LinkConfig CmiLink();         // QAT 4xxx (cache-coherent mesh + DDIO)
LinkConfig ChipletAxiLink();  // DPZip inside the SSD controller
LinkConfig FpgaAxiLink();     // CSD 2000 internal FPGA attach (~2.5 GB/s)

}  // namespace cdpu

#endif  // SRC_HW_INTERCONNECT_H_
