#include "src/hw/device_configs.h"

namespace cdpu {

CdpuConfig Qat8970Config() {
  CdpuConfig c;
  c.name = "qat-8970";
  c.placement = Placement::kPeripheral;
  c.algorithm = "deflate";
  c.engines = 3;  // the card enumerates as three co-processors (Figure 6)
  c.queue_limit = 64;
  c.compress_gbps = 2.9;       // per-engine streaming rate
  c.compress_setup_ns = 700;   // 4 KB requests pay ~30% setup (Finding 2)
  c.decompress_gbps = 5.0;     // aggregate becomes PCIe-limited (~7.6 GB/s)
  c.decompress_setup_ns = 400;
  c.verify_gbps = 20.0;        // verify path is a fixed-function check
  c.link = Pcie3x16Link();
  c.submit_overhead_ns = 5000;   // legacy driver stack + descriptor DMA
  c.complete_overhead_ns = 3000;
  // Compression runs a two-pass descriptor chain (header + body) that
  // pipelines across requests but serialises within one: single-request
  // compression latency sits ~2x above decompression (Figure 8b: 28/14 us).
  c.latency_extra_compress_ns = 12000;
  c.verify_after_compress = true;
  c.incompressible_compress_penalty = 0.35;   // milder than 4xxx (Figure 12)
  c.incompressible_decompress_penalty = 0.40;
  c.active_power_w = 38.0;  // MSRP-class PCIe accelerator card
  c.idle_power_w = 12.0;
  return c;
}

CdpuConfig Qat4xxxConfig() {
  CdpuConfig c;
  c.name = "qat-4xxx";
  c.placement = Placement::kOnChip;
  c.algorithm = "deflate";
  c.engines = 2;  // shared compression slices per device
  c.queue_limit = 64;
  c.compress_gbps = 4.85;      // raw slice rate; setup drags 4 KB to ~4.3 GB/s
  c.compress_setup_ns = 700;
  c.decompress_gbps = 10.0;    // 20 GB/s spec across two slices
  c.decompress_setup_ns = 760; // 4 KB: ~7 GB/s; 64 KB: ~18 GB/s (Finding 2)
  c.verify_gbps = 20.0;
  c.link = CmiLink();
  c.submit_overhead_ns = 3000;
  c.complete_overhead_ns = 2500;
  c.verify_after_compress = true;
  c.incompressible_compress_penalty = 0.67;   // pronounced drop (Figure 12)
  c.incompressible_decompress_penalty = 0.77;
  c.active_power_w = 17.0;  // chiplet share of package power
  c.idle_power_w = 2.0;
  return c;
}

CdpuConfig DpzipCdpuConfig() {
  CdpuConfig c;
  c.name = "dpzip";
  c.placement = Placement::kInStorage;
  c.algorithm = "zstd-variant";
  c.engines = 2;  // parallel (de)compression pipelines (§3.1)
  c.queue_limit = 0;
  // 8 B/cycle streaming plus per-page overhead: pipeline fill + the 3-stage
  // Huffman canonicalisation (~274 cycles) + NVMe-side handling. 4 KB pages
  // land near the paper's 5.6 GB/s; 64 KB chunks amortise to ~12.5 GB/s
  // before the PCIe 5.0 x4 link caps the drive (Finding 14).
  c.compress_gbps = 16.0;
  c.compress_setup_ns = 1000;
  c.decompress_gbps = 16.0;
  c.decompress_setup_ns = 600;
  c.link = ChipletAxiLink();
  c.submit_overhead_ns = 900;    // NVMe command handling inside the SSD
  c.complete_overhead_ns = 700;
  c.verify_after_compress = true;
  c.verify_gbps = 13.6;  // second pipeline verifies at decompress rate
  c.incompressible_compress_penalty = 0.12;   // Finding 5: within 15%
  c.incompressible_decompress_penalty = 0.10;
  c.active_power_w = 2.5;   // Finding 12
  c.idle_power_w = 0.3;
  return c;
}

CdpuConfig Csd2000CdpuConfig() {
  CdpuConfig c;
  c.name = "csd-2000";
  c.placement = Placement::kInStorage;
  c.algorithm = "gzip";
  c.engines = 1;
  c.queue_limit = 8;         // constrained FPGA processing resources
  c.compress_gbps = 2.5;     // 20 Gbps spec
  c.decompress_gbps = 3.0;   // 24 Gbps spec
  c.link = FpgaAxiLink();
  c.submit_overhead_ns = 2000;
  c.complete_overhead_ns = 2000;
  c.verify_after_compress = false;
  c.incompressible_compress_penalty = 0.30;
  c.incompressible_decompress_penalty = 0.30;
  c.active_power_w = 12.0;
  c.idle_power_w = 4.0;
  return c;
}

CdpuConfig CpuSoftwareConfig(const std::string& algorithm, uint32_t threads) {
  CdpuConfig c;
  c.name = "cpu-" + algorithm;
  c.placement = Placement::kCpuSoftware;
  c.algorithm = algorithm;
  c.engines = threads;
  c.queue_limit = 0;
  // Per-thread speeds from the paper's single-request latencies; aggregate
  // caps from its 88-thread throughputs (memory bandwidth and SMT sharing).
  // Per-thread service = setup + bytes/rate, fitted so 4 KB latency matches
  // the paper's Figure 8b and 64 KB throughput gains ~30% (Finding 2).
  if (algorithm == "deflate") {
    c.compress_setup_ns = 17300;           // 70 us per 4 KB page
    c.compress_gbps = 4096.0 / 52700.0;
    c.decompress_setup_ns = 4900;          // ~20 us per 4 KB page
    c.decompress_gbps = 4096.0 / 15100.0;
    c.aggregate_gbps_cap = 13.6;
  } else if (algorithm == "zstd") {
    c.compress_setup_ns = 3000;            // 20.4 us per 4 KB page
    c.compress_gbps = 4096.0 / 17400.0;
    c.decompress_setup_ns = 1100;          // 7.4 us per 4 KB page
    c.decompress_gbps = 4096.0 / 6300.0;
    c.aggregate_gbps_cap = 15.0;
  } else if (algorithm == "snappy") {
    c.compress_setup_ns = 1300;            // 8.9 us per 4 KB page
    c.compress_gbps = 4096.0 / 7600.0;
    c.decompress_setup_ns = 570;           // 3.8 us per 4 KB page
    c.decompress_gbps = 4096.0 / 3230.0;
    c.aggregate_gbps_cap = 22.8;
  } else {  // lz4 and other lightweight codecs
    c.compress_setup_ns = 1100;
    c.compress_gbps = 4096.0 / 6400.0;
    c.decompress_setup_ns = 450;
    c.decompress_gbps = 4096.0 / 2550.0;
    c.aggregate_gbps_cap = 24.0;
  }
  c.link = LinkConfig{"memory", /*setup_ns=*/0, /*gbps=*/100.0, false, 0.0, 1.0};
  c.submit_overhead_ns = 150;    // function call + scheduling
  c.complete_overhead_ns = 150;
  c.verify_after_compress = false;
  // Software slows down on incompressible data too (deeper searches), but
  // bounded by early-exit heuristics.
  c.incompressible_compress_penalty = 0.25;
  c.incompressible_decompress_penalty = 0.10;
  c.active_power_w = 132.0;  // fully-loaded socket share (Finding 12)
  c.idle_power_w = 30.0;
  return c;
}

}  // namespace cdpu
