// Preset CdpuConfigs for the five compression engines in the paper's
// testbed (Table 1), calibrated so the analytic models reproduce the
// *shape* of Figures 8/9 (throughput/latency ordering and rough
// magnitudes at 4 KB / 64 KB granularity):
//
//   CPU Deflate (88 thr): 4.9 / 13.6 GB/s, ~70 us compress latency
//   QAT 8970 (peripheral): 5.1 / 7.6 GB/s, 28 / 14 us
//   QAT 4xxx (on-chip):    4.3 / 7.0 GB/s,  9 /  6 us
//   DPZip (in-storage):    5.6 / 9.4 GB/s, 4.7 / 2.6 us
//   CSD 2000 (in-storage FPGA): 2.5 / 3.0 GB/s spec, degrades under load

#ifndef SRC_HW_DEVICE_CONFIGS_H_
#define SRC_HW_DEVICE_CONFIGS_H_

#include "src/hw/cdpu_device.h"

namespace cdpu {

// Intel QAT 8970 PCIe card: three co-processor engines behind PCIe 3.0 x16,
// hardware verify pass, 64-entry concurrency ceiling.
CdpuConfig Qat8970Config();

// Intel QAT 4xxx on-CPU chiplet: CMI/DDIO attach, low DMA latency, shared
// back-end slices; steep degradation on incompressible data (Figure 12).
CdpuConfig Qat4xxxConfig();

// DPZip engine inside DP-CSD: in-storage placement (no host DMA on the
// compression path), pipeline-model service rates, robust to data patterns.
CdpuConfig DpzipCdpuConfig();

// ScaleFlux CSD 2000: in-storage FPGA engine on a ~2.5 GB/s internal AXI,
// PCIe 3.0 x4 host link; collapses under high concurrency (Finding 7).
CdpuConfig Csd2000CdpuConfig();

// CPU software compression: `threads` engines, per-thread speed and an
// aggregate memory-bandwidth-style cap taken from the paper's measurements.
// `algorithm` in {"deflate", "zstd", "snappy", "lz4"}.
CdpuConfig CpuSoftwareConfig(const std::string& algorithm, uint32_t threads = 88);

}  // namespace cdpu

#endif  // SRC_HW_DEVICE_CONFIGS_H_
