// Power and energy accounting (paper §5.4).
//
// The paper measures system power out-of-band via the BMC and reports
//   net power = P_runtime - P_idle,   efficiency = throughput / net power.
// We reproduce that arithmetic over modelled device wattages and measured
// simulated throughput: each device contributes idle_w always and
// (active_w - idle_w) scaled by utilisation while a workload runs; the CPU
// contributes per-busy-core power.

#ifndef SRC_HW_POWER_H_
#define SRC_HW_POWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/sim_time.h"

namespace cdpu {

struct ServerPowerConfig {
  double idle_server_w = 350.0;   // 2-socket server floor (fans, DRAM, ...)
  double cpu_core_active_w = 3.0; // incremental watts per busy core
  uint32_t cores = 88;
};

struct PowerSample {
  std::string component;
  double watts;
};

// Accumulates energy over a simulated run.
class EnergyMeter {
 public:
  explicit EnergyMeter(const ServerPowerConfig& server = {}) : server_(server) {}

  // Device with `active_w`/`idle_w` busy for `busy` out of `span`.
  void AddDevice(const std::string& name, double active_w, double idle_w, SimNanos busy,
                 SimNanos span);

  // CPU contribution: `busy_core_seconds` = sum over cores of busy time.
  void AddCpu(double utilization /*0..1 of all cores*/, SimNanos span);

  // Net energy in joules (excludes the idle server floor, matching the
  // paper's P_runtime - P_idle methodology).
  double NetJoules() const { return net_joules_; }

  // Average net power over `span` (watts).
  double NetWatts(SimNanos span) const {
    return span == 0 ? 0.0 : net_joules_ / ToSecondsF(span);
  }

  // Efficiency helpers.
  static double MbPerJoule(uint64_t bytes, double joules) {
    return joules <= 0 ? 0.0 : static_cast<double>(bytes) / 1e6 / joules;
  }
  static double OpsPerJoule(uint64_t ops, double joules) {
    return joules <= 0 ? 0.0 : static_cast<double>(ops) / joules;
  }

  const std::vector<PowerSample>& breakdown() const { return breakdown_; }

 private:
  ServerPowerConfig server_;
  double net_joules_ = 0.0;
  std::vector<PowerSample> breakdown_;
};

}  // namespace cdpu

#endif  // SRC_HW_POWER_H_
