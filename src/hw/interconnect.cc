#include "src/hw/interconnect.h"

#include <cmath>

namespace cdpu {

SimNanos Link::TransferLatency(uint64_t bytes) const {
  double ns = config_.setup_ns + static_cast<double>(bytes) / EffectiveGbps();
  return static_cast<SimNanos>(std::llround(ns));
}

double Link::EffectiveGbps() const {
  if (!config_.ddio) {
    return config_.gbps;
  }
  // DDIO transfers that hit the LLC move at llc_speedup x; misses fall back
  // to DRAM-path bandwidth.
  return config_.gbps *
         (config_.llc_hit_rate * config_.llc_speedup + (1.0 - config_.llc_hit_rate));
}

LinkConfig Pcie3x16Link() {
  // 16 GB/s raw; sustained DMA with descriptor fetches lands far lower, and
  // the paper's CMB experiment shows per-request read latency ~70x the
  // on-chip path.
  return LinkConfig{"pcie3x16", /*setup_ns=*/2500, /*gbps=*/12.5, /*ddio=*/false, 0.0, 1.0};
}

LinkConfig Pcie3x4Link() {
  return LinkConfig{"pcie3x4", /*setup_ns=*/2500, /*gbps=*/3.2, /*ddio=*/false, 0.0, 1.0};
}

LinkConfig Pcie5x4Link() {
  return LinkConfig{"pcie5x4", /*setup_ns=*/900, /*gbps=*/14.0, /*ddio=*/false, 0.0, 1.0};
}

LinkConfig CmiLink() {
  // Cache-coherent mesh interconnect with DDIO: 448 ns for a 64 KB read in
  // the paper's telemetry -> ~150 GB/s effective on LLC hits.
  return LinkConfig{"cmi", /*setup_ns=*/60, /*gbps=*/40.0, /*ddio=*/true, 0.9, 4.0};
}

LinkConfig ChipletAxiLink() {
  // DPZip sits on the SSD controller's main interconnect next to the SBM
  // SRAM (Figure 3); transfers are on-die.
  return LinkConfig{"chiplet-axi", /*setup_ns=*/30, /*gbps=*/16.0, /*ddio=*/false, 0.0, 1.0};
}

LinkConfig FpgaAxiLink() {
  // CSD 2000's FPGA CDPU attach, ~2.5 GB/s (Finding 7).
  return LinkConfig{"fpga-axi", /*setup_ns=*/400, /*gbps=*/2.5, /*ddio=*/false, 0.0, 1.0};
}

}  // namespace cdpu
