// Stateful shared-device wrapper: a CdpuDevice plus a persistent engine
// queue, so independent callers (database flush threads, filesystem
// writeback, YCSB clients) contend for the same hardware like they do on
// the real testbed. Calls must arrive in non-decreasing `arrival` order per
// caller; cross-caller interleaving is handled by the queue.

#ifndef SRC_HW_CDPU_QUEUE_H_
#define SRC_HW_CDPU_QUEUE_H_

#include <algorithm>

#include "src/hw/cdpu_device.h"
#include "src/sim/queueing.h"

namespace cdpu {

class CdpuQueue {
 public:
  explicit CdpuQueue(const CdpuConfig& config)
      : device_(config), engines_(config.engines), link_(1) {}

  // Submits one request; returns host-visible completion time.
  SimNanos Submit(CdpuOp op, uint64_t bytes, double r, SimNanos arrival) {
    const CdpuConfig& cfg = device_.config();
    double rr = std::clamp(r, 0.05, 1.0);
    uint64_t in_bytes =
        op == CdpuOp::kCompress ? bytes : static_cast<uint64_t>(bytes * rr);
    uint64_t out_bytes =
        op == CdpuOp::kCompress ? static_cast<uint64_t>(bytes * rr) : bytes;
    bool in_storage = cfg.placement == Placement::kInStorage;

    SimNanos t = arrival + static_cast<SimNanos>(cfg.submit_overhead_ns);
    if (!in_storage) {
      Link l(cfg.link);
      SimNanos occupancy = static_cast<SimNanos>(
          static_cast<double>(std::max(in_bytes, out_bytes)) / l.EffectiveGbps());
      ServiceOutcome lo = link_.Submit(t, occupancy);
      t = std::max(t + l.TransferLatency(in_bytes), lo.completion - l.TransferLatency(out_bytes));
    }
    uint32_t active = device_.config().engines;
    SimNanos service = op == CdpuOp::kCompress
                           ? device_.CompressServiceTime(bytes, r, active)
                           : device_.DecompressServiceTime(bytes, r, active);
    ServiceOutcome eo = engines_.Submit(t, service);
    t = eo.completion;
    if (!in_storage) {
      Link l(cfg.link);
      t += l.TransferLatency(out_bytes);
    }
    t += static_cast<SimNanos>(cfg.complete_overhead_ns);
    busy_ns_ += service;
    ++requests_;
    return t;
  }

  const CdpuConfig& config() const { return device_.config(); }
  SimNanos busy_ns() const { return busy_ns_; }
  uint64_t requests() const { return requests_; }

 private:
  CdpuDevice device_;
  MultiServerQueue engines_;
  MultiServerQueue link_;
  SimNanos busy_ns_ = 0;
  uint64_t requests_ = 0;
};

}  // namespace cdpu

#endif  // SRC_HW_CDPU_QUEUE_H_
