// Analytic device models for the four (de)compression engines in Table 1:
// QAT 8970 (peripheral), QAT 4xxx (on-chip), DPZip (in-storage ASIC),
// CSD 2000 (in-storage FPGA) — plus the CPU software "device".
//
// A request's end-to-end latency is composed the way Figure 10 draws it:
//   submit (driver/API) -> descriptor+payload DMA in -> engine service
//   [-> verify decompression] -> DMA out -> interrupt/completion.
// Closed-loop throughput runs `threads` outstanding requests against the
// engine pool (MultiServerQueue), reproducing the queue-depth ceilings of
// Finding 6 and the placement-driven latency ordering of Finding 3/4.

#ifndef SRC_HW_CDPU_DEVICE_H_
#define SRC_HW_CDPU_DEVICE_H_

#include <cstdint>
#include <string>

#include "src/hw/interconnect.h"
#include "src/sim/queueing.h"
#include "src/sim/sim_time.h"

namespace cdpu {

enum class Placement : uint8_t {
  kCpuSoftware,
  kPeripheral,
  kOnChip,
  kInStorage,
};

const char* PlacementName(Placement p);

struct CdpuConfig {
  std::string name;
  Placement placement = Placement::kPeripheral;
  std::string algorithm = "deflate";

  uint32_t engines = 1;         // parallel engines (8970: 3 co-processors)
  uint32_t queue_limit = 0;     // concurrency ceiling (QAT: 64); 0 = none
  double compress_gbps = 2.0;   // per-engine streaming rate
  double decompress_gbps = 4.0;
  // Fixed engine time per request (context load, table init). This is what
  // 64 KB chunks amortise better than 4 KB chunks (Finding 2).
  double compress_setup_ns = 0;
  double decompress_setup_ns = 0;

  LinkConfig link;              // payload path to the engine
  double submit_overhead_ns = 2000;    // driver enqueue + descriptor build
  double complete_overhead_ns = 2000;  // interrupt + ISR + callback
  // Extra single-request latency not on the throughput path (e.g. the
  // 8970's two-pass descriptor chain for dynamic Deflate, which pipelines
  // across requests but serialises within one).
  double latency_extra_compress_ns = 0;
  double latency_extra_decompress_ns = 0;
  bool verify_after_compress = false;  // hardware verify pass (Finding 5)
  double verify_gbps = 0.0;            // dedicated verify rate; 0 = use decompress_gbps

  // Compute-throughput loss on incompressible data, in [0,1): the engine
  // runs at (1 - penalty * r^2) of nominal where r is the data's achieved
  // compression ratio (1 = incompressible). Figure 12.
  double incompressible_compress_penalty = 0.0;
  double incompressible_decompress_penalty = 0.0;

  double active_power_w = 15.0;
  double idle_power_w = 3.0;

  // Aggregate compute cap across engines (memory bandwidth / shared
  // back-end), 0 = none. Used by the CPU model and QAT 4xxx shared slices.
  double aggregate_gbps_cap = 0.0;
};

enum class CdpuOp : uint8_t { kCompress, kDecompress };

struct ClosedLoopResult {
  double gbps = 0;                // payload bytes moved / makespan
  SimNanos makespan = 0;
  double mean_latency_ns = 0;     // submit-to-completion per request
  double engine_utilization = 0;  // busy time / (engines * makespan)
  uint64_t requests = 0;
};

class CdpuDevice {
 public:
  explicit CdpuDevice(const CdpuConfig& config);

  const CdpuConfig& config() const { return config_; }

  // Engine-only service time for one block whose data compresses to ratio
  // `r` (compressed/original, 1 = incompressible).
  SimNanos CompressServiceTime(uint64_t bytes, double r, uint32_t active_engines = 1) const;
  SimNanos DecompressServiceTime(uint64_t bytes, double r, uint32_t active_engines = 1) const;

  // Unloaded end-to-end request latency (Figure 8b/9b).
  SimNanos RequestLatency(CdpuOp op, uint64_t bytes, double r) const;

  // Per-stage breakdown of one request, the decomposition Figure 10 draws
  // (and QAT telemetry reports in Figure 11).
  struct RequestTrace {
    SimNanos submit = 0;    // driver enqueue + descriptor build
    SimNanos dma_in = 0;    // payload DMA to the engine
    SimNanos service = 0;   // engine compute (incl. verify pass)
    SimNanos dma_out = 0;   // result DMA back
    SimNanos complete = 0;  // interrupt + ISR + callback (+ extra latency)
    SimNanos total() const { return submit + dma_in + service + dma_out + complete; }
  };
  RequestTrace TraceRequest(CdpuOp op, uint64_t bytes, double r) const;

  // Closed-loop run: `threads` clients each keep one request outstanding,
  // `requests` total. Reproduces throughput plateaus and queue ceilings.
  ClosedLoopResult RunClosedLoop(CdpuOp op, uint64_t requests, uint64_t bytes, double r,
                                 uint32_t threads) const;

 private:
  double EffectiveEngineGbps(CdpuOp op, double r, uint32_t active_engines) const;

  CdpuConfig config_;
  Link link_;
};

// Aggregate throughput of `count` identical devices, clients split evenly
// (Finding 14: multi-device scaling).
ClosedLoopResult RunDeviceFleet(const CdpuConfig& config, uint32_t count, CdpuOp op,
                                uint64_t requests, uint64_t bytes, double r, uint32_t threads);

}  // namespace cdpu

#endif  // SRC_HW_CDPU_DEVICE_H_
