// Thread-safe device timing front end. CdpuQueue (cdpu_queue.h) assumes a
// single caller issuing non-decreasing arrivals — fine for the discrete-event
// replays, unusable once real threads contend for one device. SharedCdpuQueue
// serialises the timing computation under a mutex and relaxes the ordering
// requirement to "arrivals from concurrent threads may interleave": each
// request reserves the earliest-free engine (and the shared link), and the
// hardware concurrency ceiling (QAT's 64 descriptors, Finding 6) is enforced
// by delaying admission until the in-flight population drops below the limit.
//
// An optional FaultInjector threads the timeline-visible failure modes into
// the model: a transient engine stall stretches one request's service time,
// and a queue-pair reset quiesces admission and drops the in-flight
// descriptor window (the submitter must resubmit — OffloadRuntime does).

#ifndef SRC_HW_SHARED_QUEUE_H_
#define SRC_HW_SHARED_QUEUE_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/hw/cdpu_device.h"

namespace cdpu {

class SharedCdpuQueue {
 public:
  explicit SharedCdpuQueue(const CdpuConfig& config);

  struct Completion {
    SimNanos admitted = 0;    // arrival, possibly delayed by the full ring
    SimNanos start = 0;       // engine service start
    SimNanos completion = 0;  // host-visible completion (DMA out + interrupt)
    bool ceiling_delayed = false;
    bool stall_injected = false;  // transient engine stall stretched service
    bool reset_injected = false;  // queue-pair reset dropped this descriptor
  };

  // Computes the simulated timeline of one request arriving at `arrival`.
  // Safe to call from any thread; arrivals from different threads need not
  // be ordered. When a reset fault fires, `completion` is the time the host
  // observes the reset; the descriptor did not execute and must be
  // resubmitted by the caller.
  Completion Submit(CdpuOp op, uint64_t bytes, double r, SimNanos arrival);

  // Wires a fault injector into the timeline (not owned; may be null).
  // Consulted for kEngineStall and kQueueReset on every Submit.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  const CdpuConfig& config() const { return device_.config(); }

  SimNanos busy_ns() const;
  uint64_t requests() const;
  uint64_t ceiling_delays() const;
  // Latest engine completion seen so far: the simulated makespan.
  SimNanos last_completion() const;

 private:
  CdpuDevice device_;
  FaultInjector* injector_ = nullptr;  // optional, not owned

  mutable std::mutex mu_;
  std::vector<SimNanos> engine_free_;       // per-engine next-free time
  SimNanos link_free_ = 0;                  // shared full-duplex link
  std::multiset<SimNanos> inflight_done_;   // completions of admitted requests
  SimNanos busy_ns_ = 0;
  SimNanos last_completion_ = 0;
  uint64_t requests_ = 0;
  uint64_t ceiling_delays_ = 0;
};

}  // namespace cdpu

#endif  // SRC_HW_SHARED_QUEUE_H_
