#include "src/hw/shared_queue.h"

#include <algorithm>
#include <cmath>

namespace cdpu {

SharedCdpuQueue::SharedCdpuQueue(const CdpuConfig& config)
    : device_(config), engine_free_(std::max(1u, config.engines), 0) {}

SharedCdpuQueue::Completion SharedCdpuQueue::Submit(CdpuOp op, uint64_t bytes, double r,
                                                    SimNanos arrival) {
  const CdpuConfig& cfg = device_.config();
  double rr = std::clamp(r, 0.05, 1.0);
  uint64_t in_bytes = op == CdpuOp::kCompress
                          ? bytes
                          : static_cast<uint64_t>(static_cast<double>(bytes) * rr);
  uint64_t out_bytes = op == CdpuOp::kCompress
                           ? static_cast<uint64_t>(static_cast<double>(bytes) * rr)
                           : bytes;
  bool in_storage = cfg.placement == Placement::kInStorage;
  Link link(cfg.link);

  // Engine-only service; the whole device is contended, so charge the shared
  // aggregate cap as if all engines are active (same convention as CdpuQueue).
  SimNanos service = op == CdpuOp::kCompress
                         ? device_.CompressServiceTime(bytes, r, cfg.engines)
                         : device_.DecompressServiceTime(bytes, r, cfg.engines);

  std::lock_guard<std::mutex> lock(mu_);

  Completion out;
  out.admitted = arrival;
  if (injector_ != nullptr && injector_->ShouldInject(FaultKind::kQueueReset)) {
    // Queue-pair reset: the descriptor is dropped before execution and every
    // in-flight completion is discarded with it. The host sees the reset
    // after the quiesce period and must resubmit.
    inflight_done_.clear();
    out.reset_injected = true;
    out.completion = arrival + static_cast<SimNanos>(injector_->plan().reset_quiesce_ns);
    last_completion_ = std::max(last_completion_, out.completion);
    return out;
  }
  if (injector_ != nullptr && injector_->ShouldInject(FaultKind::kEngineStall)) {
    service += static_cast<SimNanos>(injector_->plan().stall_ns);
    out.stall_injected = true;
  }
  // Hardware ring admission: with `queue_limit` descriptors in flight at
  // `arrival`, the submitter spins until one completes. Admission is delayed
  // to the k-th earliest in-flight completion such that the population drops
  // below the limit.
  if (cfg.queue_limit > 0) {
    // Drop entries that completed before this arrival.
    while (!inflight_done_.empty() && *inflight_done_.begin() <= out.admitted) {
      inflight_done_.erase(inflight_done_.begin());
    }
    if (inflight_done_.size() >= cfg.queue_limit) {
      auto it = inflight_done_.begin();
      std::advance(it, inflight_done_.size() - cfg.queue_limit);
      out.admitted = std::max(out.admitted, *it);
      out.ceiling_delayed = true;
      ++ceiling_delays_;
      while (!inflight_done_.empty() && *inflight_done_.begin() <= out.admitted) {
        inflight_done_.erase(inflight_done_.begin());
      }
    }
  }

  SimNanos t = out.admitted + static_cast<SimNanos>(std::llround(cfg.submit_overhead_ns));
  if (!in_storage) {
    // Inbound payload crosses the shared full-duplex link; occupancy is gated
    // by the heavier direction, propagation latency by the inbound transfer.
    SimNanos occupancy = static_cast<SimNanos>(std::llround(
        static_cast<double>(std::max(in_bytes, out_bytes)) / link.EffectiveGbps()));
    SimNanos link_start = std::max(t, link_free_);
    link_free_ = link_start + occupancy;
    t = std::max(t + link.TransferLatency(in_bytes),
                 link_free_ - link.TransferLatency(out_bytes));
  }

  auto eng = std::min_element(engine_free_.begin(), engine_free_.end());
  out.start = std::max(t, *eng);
  SimNanos engine_done = out.start + service;
  *eng = engine_done;

  t = engine_done;
  if (!in_storage) {
    t += link.TransferLatency(out_bytes);
  }
  t += static_cast<SimNanos>(std::llround(cfg.complete_overhead_ns));
  out.completion = t;

  if (cfg.queue_limit > 0) {
    inflight_done_.insert(out.completion);
  }
  busy_ns_ += service;
  last_completion_ = std::max(last_completion_, out.completion);
  ++requests_;
  return out;
}

SimNanos SharedCdpuQueue::busy_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_ns_;
}

uint64_t SharedCdpuQueue::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

uint64_t SharedCdpuQueue::ceiling_delays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ceiling_delays_;
}

SimNanos SharedCdpuQueue::last_completion() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_completion_;
}

}  // namespace cdpu
