#include "src/hw/power.h"

#include <algorithm>

namespace cdpu {

void EnergyMeter::AddDevice(const std::string& name, double active_w, double idle_w,
                            SimNanos busy, SimNanos span) {
  if (span == 0) {
    return;
  }
  double util = std::clamp(static_cast<double>(busy) / static_cast<double>(span), 0.0, 1.0);
  // Net contribution over idle: the device's idle draw is part of the
  // server idle floor the methodology subtracts.
  double net_w = (active_w - idle_w) * util;
  double joules = net_w * ToSecondsF(span);
  net_joules_ += joules;
  breakdown_.push_back({name, net_w});
}

void EnergyMeter::AddCpu(double utilization, SimNanos span) {
  double util = std::clamp(utilization, 0.0, 1.0);
  double net_w = util * server_.cpu_core_active_w * server_.cores;
  net_joules_ += net_w * ToSecondsF(span);
  breakdown_.push_back({"cpu", net_w});
}

}  // namespace cdpu
