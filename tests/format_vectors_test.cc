// Wire-format interoperability vectors: hand-assembled byte streams in the
// real LZ4 / Snappy / Deflate / Gzip formats that our decoders must accept,
// and spot checks that our encoders emit structurally valid streams. These
// pin the codecs to the published specifications rather than merely to
// their own round trips.

#include <gtest/gtest.h>

#include "src/codecs/codec.h"
#include "src/common/bitstream.h"
#include "src/common/crc32.h"

namespace cdpu {
namespace {

ByteVec Bytes(std::initializer_list<int> list) {
  ByteVec v;
  for (int b : list) {
    v.push_back(static_cast<uint8_t>(b));
  }
  return v;
}

std::string AsString(const ByteVec& v) { return std::string(v.begin(), v.end()); }

// -------------------------------------------------------------------- lz4

TEST(Lz4FormatTest, DecodesLiteralOnlyBlock) {
  // Token 0x50: literal length 5, no match (end of block). "abcde".
  ByteVec block = Bytes({0x50, 'a', 'b', 'c', 'd', 'e'});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("lz4")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "abcde");
}

TEST(Lz4FormatTest, DecodesOverlappingMatch) {
  // Token 0x13: 1 literal, matchlen 4+3=7; literal 'a'; offset 1 (LE16);
  // final token 0x00 ends the block: "a" + 7 copies = "aaaaaaaa".
  ByteVec block = Bytes({0x13, 'a', 0x01, 0x00, 0x00});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("lz4")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "aaaaaaaa");
}

TEST(Lz4FormatTest, DecodesExtendedLiteralLength) {
  // Token 0xF0 + extension byte 5 -> literal run of 15+5=20 bytes.
  ByteVec block = Bytes({0xF0, 5});
  for (int i = 0; i < 20; ++i) {
    block.push_back(static_cast<uint8_t>('A' + i));
  }
  ByteVec out;
  ASSERT_TRUE(MakeCodec("lz4")->Decompress(block, &out).ok());
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out[19], 'T');
}

TEST(Lz4FormatTest, RejectsZeroOffset) {
  ByteVec block = Bytes({0x13, 'a', 0x00, 0x00, 0x00});  // offset 0: illegal
  ByteVec out;
  EXPECT_FALSE(MakeCodec("lz4")->Decompress(block, &out).ok());
}

// ----------------------------------------------------------------- snappy

TEST(SnappyFormatTest, DecodesLiteralElement) {
  // Preamble varint 5, literal tag (len-1)<<2 = 0x10, "hello".
  ByteVec block = Bytes({0x05, 0x10, 'h', 'e', 'l', 'l', 'o'});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("snappy")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "hello");
}

TEST(SnappyFormatTest, DecodesCopyOneByteOffset) {
  // Preamble 8; literal 'a' (tag 0x00); copy-1: tag 0x01|((7-4)<<2)=0x0D,
  // offset byte 0x01 -> seven more 'a's.
  ByteVec block = Bytes({0x08, 0x00, 'a', 0x0D, 0x01});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("snappy")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "aaaaaaaa");
}

TEST(SnappyFormatTest, DecodesCopyTwoByteOffset) {
  // Preamble 10: "abcde" then copy-2 of 5 bytes at offset 5.
  // copy-2 tag: 0x02 | ((5-1)<<2) = 0x12, offset LE16 = 5.
  ByteVec block = Bytes({0x0A, 0x10, 'a', 'b', 'c', 'd', 'e', 0x12, 0x05, 0x00});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("snappy")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "abcdeabcde");
}

TEST(SnappyFormatTest, RejectsLengthMismatch) {
  ByteVec block = Bytes({0x09, 0x10, 'h', 'e', 'l', 'l', 'o'});  // claims 9, has 5
  ByteVec out;
  EXPECT_FALSE(MakeCodec("snappy")->Decompress(block, &out).ok());
}

// ---------------------------------------------------------------- deflate

TEST(DeflateFormatTest, DecodesStoredBlock) {
  // BFINAL=1, BTYPE=00, align, LEN=3, NLEN=~3, "abc".
  ByteVec block = Bytes({0x01, 0x03, 0x00, 0xFC, 0xFF, 'a', 'b', 'c'});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("deflate-1")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "abc");
}

TEST(DeflateFormatTest, DecodesFixedHuffmanLiterals) {
  // Assemble a fixed-Huffman block for "hi" with our bit writer, following
  // RFC 1951 §3.2.6: 'h' (0x68) -> code 0x98-0x30+... all literals < 144
  // use 8-bit codes 0x30+c; EOB (256) is 7-bit code 0.
  ByteVec block;
  BitWriter bw(&block);
  bw.Write(1, 1);  // BFINAL
  bw.Write(1, 2);  // fixed
  auto put_lit = [&](uint8_t c) {
    uint16_t code = static_cast<uint16_t>(0x30 + c);
    // Codes are transmitted MSB-first -> reverse for the LSB-first stream.
    uint16_t rev = 0;
    for (int i = 0; i < 8; ++i) {
      rev = static_cast<uint16_t>((rev << 1) | ((code >> i) & 1));
    }
    bw.Write(rev, 8);
  };
  put_lit('h');
  put_lit('i');
  bw.Write(0, 7);  // EOB: 7-bit code 0000000
  bw.AlignToByte();

  ByteVec out;
  ASSERT_TRUE(MakeCodec("deflate-1")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "hi");
}

TEST(DeflateFormatTest, MultiBlockStream) {
  // Two stored blocks: "ab" (BFINAL=0) then "cd" (BFINAL=1).
  ByteVec block = Bytes({0x00, 0x02, 0x00, 0xFD, 0xFF, 'a', 'b',
                         0x01, 0x02, 0x00, 0xFD, 0xFF, 'c', 'd'});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("deflate-1")->Decompress(block, &out).ok());
  EXPECT_EQ(AsString(out), "abcd");
}

TEST(DeflateFormatTest, RejectsReservedBlockType) {
  ByteVec block = Bytes({0x07});  // BFINAL=1, BTYPE=11 (reserved)
  ByteVec out;
  EXPECT_FALSE(MakeCodec("deflate-1")->Decompress(block, &out).ok());
}

TEST(DeflateFormatTest, RejectsBadStoredComplement) {
  ByteVec block = Bytes({0x01, 0x03, 0x00, 0x00, 0x00, 'a', 'b', 'c'});
  ByteVec out;
  EXPECT_FALSE(MakeCodec("deflate-1")->Decompress(block, &out).ok());
}

// ------------------------------------------------------------------- gzip

TEST(GzipFormatTest, DecodesHandAssembledMember) {
  // Header + stored-deflate "abc" + CRC32("abc") + ISIZE 3.
  ByteVec stream = Bytes({0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255,
                          0x01, 0x03, 0x00, 0xFC, 0xFF, 'a', 'b', 'c'});
  ByteVec payload = Bytes({'a', 'b', 'c'});
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  stream.insert(stream.end(), {3, 0, 0, 0});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("gzip-1")->Decompress(stream, &out).ok());
  EXPECT_EQ(AsString(out), "abc");
}

TEST(GzipFormatTest, SkipsOptionalNameField) {
  // FLG.FNAME set: a NUL-terminated name between header and body.
  ByteVec stream = Bytes({0x1f, 0x8b, 8, 0x08, 0, 0, 0, 0, 0, 255,
                          'f', '.', 't', 'x', 't', 0,
                          0x01, 0x01, 0x00, 0xFE, 0xFF, 'x'});
  ByteVec payload = Bytes({'x'});
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  stream.insert(stream.end(), {1, 0, 0, 0});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("gzip-1")->Decompress(stream, &out).ok());
  EXPECT_EQ(AsString(out), "x");
}

TEST(GzipFormatTest, EncoderEmitsCanonicalHeader) {
  ByteVec data = Bytes({'t', 'e', 's', 't'});
  ByteVec out;
  ASSERT_TRUE(MakeCodec("gzip-1")->Compress(data, &out).ok());
  ASSERT_GE(out.size(), 18u);
  EXPECT_EQ(out[0], 0x1f);
  EXPECT_EQ(out[1], 0x8b);
  EXPECT_EQ(out[2], 8);  // deflate method
  // ISIZE trailer == 4.
  EXPECT_EQ(out[out.size() - 4], 4);
  EXPECT_EQ(out[out.size() - 3], 0);
}

}  // namespace
}  // namespace cdpu
