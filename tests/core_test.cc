// Tests for the DPZip core: hardware-model LZ77, the 3-stage 11-bit Huffman
// canonicalisation, the frame codec, and the pipeline timing model.

#include <gtest/gtest.h>

#include "src/codecs/entropy.h"
#include "src/core/dpzip_codec.h"
#include "src/core/dpzip_huffman.h"
#include "src/core/dpzip_lz77.h"
#include "src/core/pipeline_model.h"
#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> d(n);
  for (auto& b : d) {
    b = rng.NextByte();
  }
  return d;
}

// ------------------------------------------------------------------- lz77

TEST(DpzipLz77Test, RoundTripText) {
  DpzipLz77Encoder enc;
  DpzipLz77Decoder dec;
  std::vector<uint8_t> data = GenerateTextLike(4096, 1);

  std::vector<Lz77Token> tokens;
  std::vector<uint8_t> literals;
  Lz77EncodeStats es;
  enc.Encode(data, &tokens, &literals, &es);
  EXPECT_GT(es.matches_emitted, 0u);

  std::vector<uint8_t> out;
  Lz77DecodeStats ds;
  ASSERT_TRUE(dec.Decode(tokens, literals, &out, &ds).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(ds.literal_bytes + ds.match_bytes, data.size());
}

TEST(DpzipLz77Test, RoundTripAllPatterns) {
  DpzipLz77Encoder enc;
  DpzipLz77Decoder dec;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    for (auto gen : {GenerateTextLike, GenerateDbTableLike, GenerateBinaryLike,
                     GenerateXmlLike, GenerateImageLike}) {
      std::vector<uint8_t> data = gen(4096, seed + 10);
      std::vector<Lz77Token> tokens;
      std::vector<uint8_t> literals;
      enc.Encode(data, &tokens, &literals, nullptr);
      std::vector<uint8_t> out;
      ASSERT_TRUE(dec.Decode(tokens, literals, &out, nullptr).ok());
      ASSERT_EQ(out, data);
    }
  }
}

TEST(DpzipLz77Test, RoundTripEdgeSizes) {
  DpzipLz77Encoder enc;
  DpzipLz77Decoder dec;
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{16}}) {
    std::vector<uint8_t> data = RandomBytes(n, n + 1);
    std::vector<Lz77Token> tokens;
    std::vector<uint8_t> literals;
    enc.Encode(data, &tokens, &literals, nullptr);
    std::vector<uint8_t> out;
    ASSERT_TRUE(dec.Decode(tokens, literals, &out, nullptr).ok());
    ASSERT_EQ(out, data) << "size " << n;
  }
}

TEST(DpzipLz77Test, OverlappingShortOffsetMatches) {
  // "aaaa..." forces offset-1 overlapping copies, the §3.2.4 corner case.
  DpzipLz77Encoder enc;
  DpzipLz77Decoder dec;
  std::vector<uint8_t> data(4096, 'a');
  std::vector<Lz77Token> tokens;
  std::vector<uint8_t> literals;
  enc.Encode(data, &tokens, &literals, nullptr);
  std::vector<uint8_t> out;
  Lz77DecodeStats ds;
  ASSERT_TRUE(dec.Decode(tokens, literals, &out, &ds).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(ds.register_hits, 0u);  // offset 1 served by recent-data buffer
  EXPECT_EQ(ds.sram_reads, 0u);
}

TEST(DpzipLz77Test, LongOffsetsUseSram) {
  // Two copies of a block 8 KB apart: offsets beyond the 256 B register
  // buffer must be charged as SRAM reads.
  std::vector<uint8_t> unique = RandomBytes(1024, 3);
  std::vector<uint8_t> data;
  data.insert(data.end(), unique.begin(), unique.end());
  data.resize(8192, '.');
  data.insert(data.end(), unique.begin(), unique.end());

  DpzipLz77Encoder enc;
  DpzipLz77Decoder dec;
  std::vector<Lz77Token> tokens;
  std::vector<uint8_t> literals;
  enc.Encode(data, &tokens, &literals, nullptr);
  std::vector<uint8_t> out;
  Lz77DecodeStats ds;
  ASSERT_TRUE(dec.Decode(tokens, literals, &out, &ds).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(ds.sram_reads, 0u);
}

TEST(DpzipLz77Test, IncompressibleEmitsFewCompares) {
  // Finding 5: the two-level scheme avoids unrewarded matching attempts.
  DpzipLz77Encoder enc;
  std::vector<uint8_t> data = RandomBytes(64 * 1024, 4);
  std::vector<Lz77Token> tokens;
  std::vector<uint8_t> literals;
  Lz77EncodeStats es;
  enc.Encode(data, &tokens, &literals, &es);
  // Stage-1 hash checks filter almost everything; stage-2 compares are rare.
  EXPECT_LT(static_cast<double>(es.candidate_compares),
            0.05 * static_cast<double>(es.positions_processed));
  EXPECT_GT(es.skips, 0u);
}

TEST(DpzipLz77Test, FirstFitTradesRatioForSimplicity) {
  std::vector<uint8_t> data = GenerateTextLike(64 * 1024, 5);
  DpzipLz77Config first_fit;
  first_fit.first_fit = true;
  DpzipLz77Config best_fit;
  best_fit.first_fit = false;

  auto coverage = [&](const DpzipLz77Config& cfg) {
    DpzipLz77Encoder enc(cfg);
    std::vector<Lz77Token> tokens;
    std::vector<uint8_t> literals;
    Lz77EncodeStats es;
    enc.Encode(data, &tokens, &literals, &es);
    return es.MatchCoverage();
  };
  EXPECT_LE(coverage(first_fit), coverage(best_fit) + 0.02);
}

TEST(DpzipLz77Test, DualHashWidensCandidateSelection) {
  // §3.2.3: Hash0+Hash1 two-level candidate selection should match at least
  // as much input as a single hash function over the same table.
  std::vector<uint8_t> data = GenerateTextLike(64 * 1024, 6);
  auto coverage = [&](bool dual) {
    DpzipLz77Config cfg;
    cfg.dual_hash = dual;
    DpzipLz77Encoder enc(cfg);
    double total = 0;
    for (size_t off = 0; off + 4096 <= data.size(); off += 4096) {
      std::vector<Lz77Token> tokens;
      std::vector<uint8_t> literals;
      Lz77EncodeStats es;
      enc.Encode(std::span<const uint8_t>(data.data() + off, 4096), &tokens, &literals, &es);
      total += es.MatchCoverage();
    }
    return total;
  };
  EXPECT_GE(coverage(true), coverage(false) * 0.99);
}

TEST(DpzipLz77Test, DecoderRejectsBadOffset) {
  DpzipLz77Decoder dec;
  std::vector<Lz77Token> tokens = {{0, 8, 100}};  // offset into nothing
  std::vector<uint8_t> out;
  EXPECT_FALSE(dec.Decode(tokens, {}, &out, nullptr).ok());
}

TEST(DpzipLz77Test, DecoderRejectsLiteralOverrun) {
  DpzipLz77Decoder dec;
  std::vector<Lz77Token> tokens = {{10, 0, 0}};
  std::vector<uint8_t> literals = {1, 2, 3};
  std::vector<uint8_t> out;
  EXPECT_FALSE(dec.Decode(tokens, literals, &out, nullptr).ok());
}

// ---------------------------------------------------------------- huffman

TEST(DpzipHuffmanTest, LengthsRespectElevenBitCap) {
  // Exponentially skewed frequencies would need >11 bits unbounded.
  std::vector<uint32_t> freqs(256, 0);
  uint32_t f = 1;
  for (size_t i = 0; i < 30; ++i) {
    freqs[i] = f;
    f = f < (1u << 26) ? f * 2 : f;
  }
  CanonicalizeStats stats;
  std::vector<uint8_t> lengths = DpzipBuildLengths(freqs, 11, &stats);
  uint64_t kraft = 0;
  for (size_t i = 0; i < 256; ++i) {
    if (freqs[i] > 0) {
      ASSERT_GT(lengths[i], 0u);
      ASSERT_LE(lengths[i], 11u);
      kraft += uint64_t{1} << (11 - lengths[i]);
    } else {
      ASSERT_EQ(lengths[i], 0u);
    }
  }
  EXPECT_EQ(kraft, uint64_t{1} << 11);
  EXPECT_GT(stats.clipped_leaves, 0u);
}

TEST(DpzipHuffmanTest, ScheduleBoundedBy274) {
  // T_max = 256 + 10 + 8 (§3.3). Sweep many distributions.
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> freqs(256, 0);
    size_t present = 2 + rng.Uniform(254);
    for (size_t i = 0; i < present; ++i) {
      freqs[rng.Uniform(256)] = 1 + static_cast<uint32_t>(rng.Next() % 100000);
    }
    CanonicalizeStats stats;
    DpzipBuildLengths(freqs, 11, &stats);
    EXPECT_LE(stats.schedule_cycles, 274u) << "trial " << trial;
  }
}

TEST(DpzipHuffmanTest, EncodeDecodeRoundTrip) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    std::vector<uint8_t> data = GenerateTextLike(4096, seed + 20);
    std::vector<uint8_t> blob;
    ASSERT_TRUE(DpzipHuffmanEncode(data, &blob, nullptr).ok());
    std::vector<uint8_t> decoded;
    size_t consumed = 0;
    ASSERT_TRUE(DpzipHuffmanDecode(blob, data.size(), &consumed, &decoded).ok());
    EXPECT_EQ(decoded, data);
    EXPECT_EQ(consumed, blob.size());
  }
}

TEST(DpzipHuffmanTest, CompressesSkewedText) {
  std::vector<uint8_t> data = GenerateTextLike(16 * 1024, 21);
  std::vector<uint8_t> blob;
  ASSERT_TRUE(DpzipHuffmanEncode(data, &blob, nullptr).ok());
  EXPECT_LT(blob.size(), data.size() * 0.8);
}

TEST(DpzipHuffmanTest, CapCostsLittleRatio) {
  // The 11-bit ceiling should cost only a small ratio penalty vs 15-bit.
  std::vector<uint8_t> data = GenerateTextLike(64 * 1024, 22);
  std::array<uint32_t, 256> freqs{};
  for (uint8_t b : data) {
    ++freqs[b];
  }
  auto cost = [&](uint32_t max_bits) {
    std::vector<uint8_t> lengths = DpzipBuildLengths(freqs, max_bits, nullptr);
    uint64_t bits = 0;
    for (size_t i = 0; i < 256; ++i) {
      bits += static_cast<uint64_t>(freqs[i]) * lengths[i];
    }
    return bits;
  };
  uint64_t capped = cost(11);
  uint64_t wide = cost(15);
  EXPECT_LE(capped, wide + wide / 50);  // within 2%
}

// ------------------------------------------------------------------ codec

class DpzipCodecRoundTrip : public ::testing::TestWithParam<std::pair<const char*, size_t>> {};

TEST_P(DpzipCodecRoundTrip, RoundTrips) {
  auto [pattern, size] = GetParam();
  std::vector<uint8_t> data;
  std::string p = pattern;
  if (p == "text") {
    data = GenerateTextLike(size, 30);
  } else if (p == "db") {
    data = GenerateDbTableLike(size, 31);
  } else if (p == "binary") {
    data = GenerateBinaryLike(size, 32);
  } else if (p == "image") {
    data = GenerateImageLike(size, 33);
  } else if (p == "random") {
    data = RandomBytes(size, 34);
  } else if (p == "zeros") {
    data = std::vector<uint8_t>(size, 0);
  }

  DpzipCodec codec;
  ByteVec compressed;
  Result<size_t> cr = codec.Compress(data, &compressed);
  ASSERT_TRUE(cr.ok()) << cr.status().ToString();
  ByteVec decompressed;
  Result<size_t> dr = codec.Decompress(compressed, &decompressed);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  EXPECT_EQ(decompressed, data);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DpzipCodecRoundTrip,
    ::testing::Values(std::make_pair("text", size_t{4096}), std::make_pair("db", size_t{4096}),
                      std::make_pair("binary", size_t{4096}),
                      std::make_pair("image", size_t{4096}),
                      std::make_pair("random", size_t{4096}),
                      std::make_pair("zeros", size_t{4096}),
                      std::make_pair("text", size_t{65536}),
                      std::make_pair("db", size_t{65536}),
                      std::make_pair("random", size_t{1}),
                      std::make_pair("text", size_t{0})),
    [](const auto& info) {
      return std::string(info.param.first) + "_" + std::to_string(info.param.second);
    });

TEST(DpzipCodecTest, IncompressibleStoredRaw) {
  DpzipCodec codec;
  std::vector<uint8_t> data = RandomBytes(4096, 40);
  ByteVec out;
  ASSERT_TRUE(codec.Compress(data, &out).ok());
  EXPECT_TRUE(codec.last_stats().stored_raw);
  EXPECT_LE(out.size(), data.size() + 16);  // bounded expansion
}

TEST(DpzipCodecTest, RatioTracksDeflateOn4K) {
  // Finding 1: DPZip ~tracks Deflate at 4 KB granularity, slightly worse,
  // and clearly beats the lightweight codecs.
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(64 * 1024, 77);
  DpzipCodec dpzip;
  auto deflate = MakeCodec("deflate-1");
  auto lz4 = MakeCodec("lz4");

  double dpzip_sum = 0;
  double deflate_sum = 0;
  double lz4_sum = 0;
  int pages = 0;
  for (const CorpusFile& f : corpus) {
    for (size_t off = 0; off + 4096 <= f.data.size(); off += 4096) {
      ByteSpan page(f.data.data() + off, 4096);
      dpzip_sum += dpzip.MeasureRatio(page);
      deflate_sum += deflate->MeasureRatio(page);
      lz4_sum += lz4->MeasureRatio(page);
      ++pages;
      if (pages >= 64) {
        break;
      }
    }
    if (pages >= 64) {
      break;
    }
  }
  double dpzip_avg = dpzip_sum / pages;
  double deflate_avg = deflate_sum / pages;
  double lz4_avg = lz4_sum / pages;
  EXPECT_LT(dpzip_avg, lz4_avg);                  // beats lightweight
  EXPECT_LT(dpzip_avg, deflate_avg + 0.08);       // close to Deflate
}

TEST(DpzipCodecTest, WorksThroughFactory) {
  DpzipCodec::RegisterWithFactory();
  std::unique_ptr<Codec> codec = MakeCodec("dpzip");
  ASSERT_NE(codec, nullptr);
  std::vector<uint8_t> data = GenerateTextLike(4096, 41);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  ByteVec decompressed;
  ASSERT_TRUE(codec->Decompress(compressed, &decompressed).ok());
  EXPECT_EQ(decompressed, data);
}

TEST(DpzipCodecTest, RejectsCorruptFrame) {
  DpzipCodec codec;
  std::vector<uint8_t> data = GenerateTextLike(4096, 42);
  ByteVec compressed;
  ASSERT_TRUE(codec.Compress(data, &compressed).ok());
  compressed[0] = 0x77;  // bad flags
  ByteVec out;
  EXPECT_FALSE(codec.Decompress(compressed, &out).ok());
}

// --------------------------------------------------------- pipeline model

TEST(PipelineModelTest, FourKbLatencyNearTwoMicroseconds) {
  // §3.1: ~2 us 4 KB transfer latency; our compress path charges the
  // canonicalisation and stalls on top of 512 streaming cycles.
  DpzipCodec codec;
  DpzipPipelineModel model;
  std::vector<uint8_t> data = GenerateTextLike(4096, 50);
  ByteVec out;
  ASSERT_TRUE(codec.Compress(data, &out).ok());
  DpzipTiming t = model.CompressLatency(codec.last_stats());
  EXPECT_GT(t.nanos, 500u);
  EXPECT_LT(t.nanos, 6000u);
}

TEST(PipelineModelTest, PeakThroughputIs16GBps) {
  DpzipPipelineModel model;
  EXPECT_DOUBLE_EQ(model.PeakThroughputGBps(), 8.0);  // 8B/cycle @ 1GHz
  DpzipPipelineConfig wide;
  wide.bytes_per_cycle = 16;
  DpzipPipelineModel wide_model(wide);
  EXPECT_DOUBLE_EQ(wide_model.PeakThroughputGBps(), 16.0);
}

TEST(PipelineModelTest, DecompressFasterThanCompress) {
  DpzipCodec codec;
  DpzipPipelineModel model;
  std::vector<uint8_t> data = GenerateTextLike(4096, 51);
  ByteVec compressed;
  ASSERT_TRUE(codec.Compress(data, &compressed).ok());
  DpzipTiming tc = model.CompressLatency(codec.last_stats());
  ByteVec decompressed;
  ASSERT_TRUE(codec.Decompress(compressed, &decompressed).ok());
  DpzipTiming td = model.DecompressLatency(codec.last_stats());
  EXPECT_LT(td.nanos, tc.nanos);
}

TEST(PipelineModelTest, RobustAcrossCompressibility) {
  // Finding 5: DPZip throughput varies < ~15% across compressibility.
  DpzipCodec codec;
  DpzipPipelineModel model;
  double best = 0;
  double worst = 1e18;
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    std::vector<uint8_t> data = GenerateWithRatio(ratio, 4096, 52);
    ByteVec out;
    ASSERT_TRUE(codec.Compress(data, &out).ok());
    DpzipTiming t = model.CompressLatency(codec.last_stats());
    double gbps = static_cast<double>(data.size()) / static_cast<double>(t.nanos);
    best = std::max(best, gbps);
    worst = std::min(worst, gbps);
  }
  EXPECT_GT(worst, best * 0.75);
}

TEST(PipelineModelTest, RecentBufferAblationSlowsShortOffsets) {
  DpzipCodec codec;
  std::vector<uint8_t> data(4096, 'x');  // offset-1 matches everywhere
  ByteVec compressed;
  ASSERT_TRUE(codec.Compress(data, &compressed).ok());
  ByteVec decompressed;
  ASSERT_TRUE(codec.Decompress(compressed, &decompressed).ok());

  DpzipPipelineModel with_buffer;
  DpzipPipelineConfig no_buf_cfg;
  no_buf_cfg.model_recent_buffer = false;
  DpzipPipelineModel without_buffer(no_buf_cfg);
  EXPECT_LT(with_buffer.DecompressLatency(codec.last_stats()).nanos,
            without_buffer.DecompressLatency(codec.last_stats()).nanos);
}

}  // namespace
}  // namespace cdpu
