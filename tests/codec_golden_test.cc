// Bit-exact stability of the lz4 and snappy bitstreams against committed
// golden vectors, mirroring the dpzip discipline (dpzip_golden_test.cc).
// These two formats are produced by this repo's own encoders and consumed by
// stored frames written years apart, so an accidental encoder change would
// silently orphan old data. For each (codec, corpus case) pair the freshly
// compressed output must equal the committed vector, and the committed
// vector must decompress back to the generated input.
//
// If a test here fails because you changed an encoder ON PURPOSE, regenerate
// the vectors and commit them with the encoder change:
//   build/tools/codec_golden_gen tests/golden

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/codecs/codec.h"
#include "tests/golden/codec_corpus.h"

namespace cdpu {
namespace {

std::string GoldenPath(const std::string& codec, const std::string& name) {
  return std::string(CDPU_GOLDEN_DIR) + "/" + codec + "/" + name + ".bin";
}

bool ReadVector(const std::string& path, ByteVec* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

using CaseParam = std::tuple<std::string, golden::CodecGoldenCase>;

class CodecGoldenTest : public ::testing::TestWithParam<CaseParam> {};

TEST_P(CodecGoldenTest, CompressedOutputIsBitExact) {
  const auto& [codec_name, c] = GetParam();
  ByteVec want;
  ASSERT_TRUE(ReadVector(GoldenPath(codec_name, c.name), &want))
      << "missing golden vector " << GoldenPath(codec_name, c.name)
      << " — regenerate with: build/tools/codec_golden_gen tests/golden";

  std::vector<uint8_t> input = golden::GenerateCodecInput(c);
  std::unique_ptr<Codec> codec = MakeCodec(codec_name);
  ASSERT_NE(codec, nullptr);
  ByteVec got;
  Result<size_t> r = codec->Compress(input, &got);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(got, want) << codec_name << " bitstream changed for corpus case \"" << c.name
                       << "\" (" << got.size() << " vs " << want.size()
                       << " golden bytes). If this is an intentional format change, "
                       << "regenerate the vectors and commit them: "
                       << "build/tools/codec_golden_gen tests/golden";
}

TEST_P(CodecGoldenTest, CommittedVectorDecompressesToInput) {
  const auto& [codec_name, c] = GetParam();
  ByteVec vector;
  ASSERT_TRUE(ReadVector(GoldenPath(codec_name, c.name), &vector))
      << "missing golden vector " << GoldenPath(codec_name, c.name);

  std::vector<uint8_t> input = golden::GenerateCodecInput(c);
  std::unique_ptr<Codec> codec = MakeCodec(codec_name);
  ASSERT_NE(codec, nullptr);
  ByteVec out;
  Result<size_t> r = codec->Decompress(vector, &out);
  ASSERT_TRUE(r.ok()) << codec_name << "/" << c.name
                      << ": committed vector no longer decodes: " << r.status().ToString();
  EXPECT_EQ(out.size(), input.size());
  EXPECT_EQ(out, ByteVec(input.begin(), input.end()));
}

std::vector<CaseParam> AllCases() {
  std::vector<CaseParam> cases;
  for (const std::string& codec : golden::GoldenCodecs()) {
    for (const golden::CodecGoldenCase& c : golden::CodecCorpus()) {
      cases.emplace_back(codec, c);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecGoldenTest, ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<CaseParam>& info) {
                           return std::get<0>(info.param) + "_" +
                                  std::get<1>(info.param).name;
                         });

}  // namespace
}  // namespace cdpu
