// Multi-device soak (ISSUE 7 satellite, ctest label "soak"): drive a
// heterogeneous fleet under combined fault injection — all four fault kinds
// at once — through every placement policy, and assert the only acceptable
// outcome: no job lost, none duplicated, none corrupted, no failure leaking
// past the retry + CPU-fallback recovery path.
//
// Wall-clock budget comes from CDPU_SOAK_SECONDS (total across policies);
// the default is a few seconds so the tier-1 suite stays fast, and the
// nightly CI job sets CDPU_SOAK_SECONDS=60 for the real soak.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/crc32.h"
#include "src/runtime/fleet.h"
#include "src/runtime/placement.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

double SoakSeconds() {
  const char* env = std::getenv("CDPU_SOAK_SECONDS");
  if (env == nullptr) {
    return 2.0;
  }
  double s = std::atof(env);
  return s > 0 ? s : 2.0;
}

struct SoakOutcome {
  uint64_t jobs_submitted = 0;  // compress + decompress jobs we issued
  uint64_t failures = 0;
  uint64_t corruptions = 0;
  uint64_t callbacks = 0;  // user completions observed (loss/dup detector)
  FleetStats stats;
};

SoakOutcome SoakPolicy(PlacementPolicy policy, double seconds, uint64_t seed) {
  FleetOptions opts;
  opts.base.codec = "lz4";
  opts.base.queue_pairs = 2;
  opts.base.batch_size = 4;
  Status s = ParseDeviceList("qat8970,qat4xxx,dpzip,cpu", &opts.devices);
  EXPECT_TRUE(s.ok());
  // Combined fault injection on every member: verify mismatches, completion
  // timeouts, engine stalls and queue resets all at once. Rates sized so
  // recovery is constantly exercised without every job degrading to the
  // fallback path.
  for (FleetDeviceSpec& spec : opts.devices) {
    spec.fault_plan.seed = seed;
    spec.fault_plan.SetAllRates(0.05);
  }
  opts.placement.policy = policy;
  opts.placement.static_device = "qat4xxx";
  opts.placement.seed = seed;
  FleetRuntime runtime(opts);

  constexpr int kClients = 4;
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> corruptions{0};
  std::atomic<uint64_t> callbacks{0};
  std::atomic<uint64_t> jobs{0};
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      uint64_t i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        ++i;
        // Mixed payload sizes so size-threshold exercises both classes.
        size_t size = (i % 3 == 0) ? 1024 + 256 * (i % 5) : 16384 + 4096 * (i % 4);
        ByteVec original = GenerateWithRatio(0.3 + 0.05 * (i % 8), size,
                                             seed + t * 7919 + i);
        uint32_t want_crc = Crc32(original);
        OffloadRequest creq;
        creq.op = CdpuOp::kCompress;
        creq.input = original;
        creq.queue_pair = static_cast<uint32_t>(t % 2);
        creq.callback = [&callbacks](const OffloadResult&) { ++callbacks; };
        jobs.fetch_add(1, std::memory_order_relaxed);
        OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++failures;
          continue;
        }
        OffloadRequest dreq;
        dreq.op = CdpuOp::kDecompress;
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = static_cast<uint32_t>(t % 2);
        dreq.callback = [&callbacks](const OffloadResult&) { ++callbacks; };
        jobs.fetch_add(1, std::memory_order_relaxed);
        OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (!dres.status.ok()) {
          ++failures;
        } else if (Crc32(dres.output) != want_crc) {
          ++corruptions;
        }
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Shutdown();

  SoakOutcome out;
  out.jobs_submitted = jobs.load();
  out.failures = failures.load();
  out.corruptions = corruptions.load();
  out.callbacks = callbacks.load();
  out.stats = runtime.Snapshot();
  return out;
}

class SoakTest : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(SoakTest, FaultedFleetLosesNothing) {
  PlacementPolicy policy = GetParam();
  // Split the total budget over the four per-policy soaks.
  double seconds = SoakSeconds() / 4.0;
  SoakOutcome out = SoakPolicy(policy, seconds, 0x50a7 + static_cast<uint64_t>(policy));
  ASSERT_GT(out.jobs_submitted, 0u) << "soak window too short to submit anything";
  EXPECT_EQ(out.failures, 0u) << "jobs failed past the recovery path";
  EXPECT_EQ(out.corruptions, 0u) << "round trip returned corrupt data";
  // No loss, no duplication: exactly one user completion per submitted job,
  // and the merged fleet counters agree.
  EXPECT_EQ(out.callbacks, out.jobs_submitted);
  EXPECT_EQ(out.stats.merged.jobs_submitted, out.jobs_submitted);
  EXPECT_EQ(out.stats.merged.jobs_completed, out.jobs_submitted);
  EXPECT_EQ(out.stats.merged.jobs_failed, 0u);
  // The fault plan really fired (otherwise this soak proves nothing).
  EXPECT_GT(out.stats.merged.faults_injected, 0u);
  uint64_t routed = 0;
  for (const FleetDeviceStats& d : out.stats.devices) {
    routed += d.router.routed;
    EXPECT_EQ(d.router.outstanding, 0u) << d.name;
  }
  EXPECT_EQ(routed, out.jobs_submitted);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SoakTest,
    ::testing::Values(PlacementPolicy::kStatic, PlacementPolicy::kSizeThreshold,
                      PlacementPolicy::kLeastOutstanding,
                      PlacementPolicy::kEwmaServiceRate),
    [](const ::testing::TestParamInfo<PlacementPolicy>& info) {
      std::string name = PlacementPolicyName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace cdpu
