// Property tests for AdmissionController weighted fairness (ISSUE 7
// satellite): under randomized tenant weights and adversarial arrival
// patterns, (1) the global in-flight ceiling is never exceeded, (2) no
// tenant ever holds more than its weighted cap, and (3) under saturation
// each tenant's admitted throughput converges to its weight share. All
// randomness is seeded and every assertion carries the reproducing seed;
// CDPU_FUZZ_ROUNDS multiplies the randomized rounds (nightly CI sets 50).

#include "src/svc/admission.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

#include "src/common/rng.h"

namespace cdpu {
namespace svc {
namespace {

int FuzzRounds() {
  const char* env = std::getenv("CDPU_FUZZ_ROUNDS");
  if (env == nullptr) {
    return 1;
  }
  int rounds = std::atoi(env);
  return rounds > 0 ? rounds : 1;
}

// One admitted slot we still owe a Complete() for.
struct Held {
  uint32_t tenant;
};

TEST(AdmissionPropertyTest, WeightedLimitsMatchProportionalFormula) {
  for (int round = 0; round < 20 * FuzzRounds(); ++round) {
    uint64_t seed = 0xadA1 + round;
    Rng rng(seed);
    AdmissionOptions opts;
    opts.max_inflight = 8 + static_cast<uint32_t>(rng.Uniform(120));
    uint32_t tenants = 2 + static_cast<uint32_t>(rng.Uniform(6));
    double sum = 0;
    for (uint32_t t = 0; t < tenants; ++t) {
      double w = 0.25 + rng.NextDouble() * 8.0;
      opts.tenant_weights[t] = w;
      sum += w;
    }
    AdmissionController ctl(opts);
    for (uint32_t t = 0; t < tenants; ++t) {
      uint32_t want = std::max(
          1u, static_cast<uint32_t>(opts.tenant_weights[t] / sum * opts.max_inflight + 0.5));
      EXPECT_EQ(ctl.LimitFor(t), want) << "seed=" << seed << " tenant=" << t;
    }
    // Unlisted tenants fall back to the equal-share cap.
    EXPECT_EQ(ctl.LimitFor(999), ctl.per_tenant_limit()) << "seed=" << seed;
  }
}

TEST(AdmissionPropertyTest, CeilingAndCapsHoldUnderAdversarialArrivals) {
  for (int round = 0; round < 10 * FuzzRounds(); ++round) {
    uint64_t seed = 0xcafe + round;
    Rng rng(seed);
    AdmissionOptions opts;
    opts.max_inflight = 4 + static_cast<uint32_t>(rng.Uniform(60));
    opts.expected_tenants = 4;
    uint32_t tenants = 1 + static_cast<uint32_t>(rng.Uniform(8));
    for (uint32_t t = 0; t < tenants; ++t) {
      if (rng.Uniform(2) == 0) {  // leave some tenants unlisted
        opts.tenant_weights[t] = 0.5 + rng.NextDouble() * 4.0;
      }
    }
    AdmissionController ctl(opts);

    std::vector<Held> held;
    std::map<uint32_t, uint32_t> held_by_tenant;
    for (int step = 0; step < 2000; ++step) {
      if (rng.Uniform(3) != 0 || held.empty()) {
        // Arrival burst from a random tenant (sometimes one nobody listed).
        uint32_t tenant = static_cast<uint32_t>(rng.Uniform(tenants + 2));
        uint64_t burst = 1 + rng.Uniform(8);
        for (uint64_t i = 0; i < burst; ++i) {
          if (ctl.TryAdmit(tenant, 512).ok()) {
            held.push_back({tenant});
            ++held_by_tenant[tenant];
          }
        }
      } else {
        // Random completion order, random outcome.
        size_t idx = rng.Uniform(held.size());
        std::swap(held[idx], held.back());
        uint32_t tenant = held.back().tenant;
        held.pop_back();
        --held_by_tenant[tenant];
        ctl.Complete(tenant, 256, 1000, rng.Uniform(10) != 0);
      }
      // Invariants after every step.
      ASSERT_LE(ctl.inflight(), opts.max_inflight) << "seed=" << seed << " step=" << step;
      ASSERT_EQ(ctl.inflight(), held.size()) << "seed=" << seed << " step=" << step;
      for (const auto& [tenant, count] : held_by_tenant) {
        uint32_t cap = ctl.LimitFor(tenant);
        if (cap > 0) {
          ASSERT_LE(count, cap) << "seed=" << seed << " step=" << step
                                << " tenant=" << tenant;
        }
      }
    }
    // Drain and confirm the accounting returns to zero.
    for (const Held& h : held) {
      ctl.Complete(h.tenant, 0, 1000, true);
    }
    EXPECT_EQ(ctl.inflight(), 0u) << "seed=" << seed;
  }
}

TEST(AdmissionPropertyTest, AdmittedShareConvergesToWeights) {
  for (int round = 0; round < 5 * FuzzRounds(); ++round) {
    uint64_t seed = 0xfa1e + round;
    Rng rng(seed);
    AdmissionOptions opts;
    opts.max_inflight = 64;
    constexpr uint32_t kTenants = 3;
    double sum = 0;
    for (uint32_t t = 0; t < kTenants; ++t) {
      double w = 1.0 + rng.NextDouble() * 7.0;
      opts.tenant_weights[t] = w;
      sum += w;
    }
    AdmissionController ctl(opts);

    // Closed-loop saturation: every tenant greedily refills to its cap,
    // completions retire in random order at a uniform service rate. Under
    // this load each tenant's admitted throughput is proportional to the
    // slots it may hold, i.e. to its weight.
    std::vector<Held> held;
    for (int step = 0; step < 4000; ++step) {
      for (uint32_t t = 0; t < kTenants; ++t) {
        while (ctl.TryAdmit(t, 128).ok()) {
          held.push_back({t});
        }
      }
      // Retire a random quarter of the in-flight set.
      size_t to_retire = std::max<size_t>(1, held.size() / 4);
      for (size_t i = 0; i < to_retire && !held.empty(); ++i) {
        size_t idx = rng.Uniform(held.size());
        std::swap(held[idx], held.back());
        ctl.Complete(held.back().tenant, 64, 1000, true);
        held.pop_back();
      }
    }

    std::vector<TenantSnapshot> snap = ctl.Snapshot();
    ASSERT_EQ(snap.size(), kTenants);
    uint64_t total_admitted = 0;
    for (const TenantSnapshot& t : snap) {
      total_admitted += t.admitted;
    }
    ASSERT_GT(total_admitted, 0u);
    for (const TenantSnapshot& t : snap) {
      // The cap rounds to an integer slot count, so compare against the
      // achievable share (cap / sum-of-caps), not the raw weight ratio.
      double cap_sum = 0;
      for (uint32_t u = 0; u < kTenants; ++u) {
        cap_sum += ctl.LimitFor(u);
      }
      double want = static_cast<double>(ctl.LimitFor(t.tenant)) / cap_sum;
      double got = static_cast<double>(t.admitted) / static_cast<double>(total_admitted);
      EXPECT_NEAR(got, want, 0.08) << "seed=" << seed << " tenant=" << t.tenant
                                   << " weight=" << opts.tenant_weights[t.tenant];
    }
  }
}

TEST(AdmissionPropertyTest, UnarbitratedModeIgnoresWeights) {
  AdmissionOptions opts;
  opts.max_inflight = 16;
  opts.arbitration = VfArbitration::kUnarbitrated;
  opts.tenant_weights[0] = 1.0;
  opts.tenant_weights[1] = 100.0;
  AdmissionController ctl(opts);
  EXPECT_EQ(ctl.LimitFor(0), 0u);  // uncapped
  EXPECT_EQ(ctl.LimitFor(1), 0u);
  // One greedy tenant can take the whole ceiling.
  uint32_t admitted = 0;
  while (ctl.TryAdmit(0, 64).ok()) {
    ++admitted;
  }
  EXPECT_EQ(admitted, opts.max_inflight);
  EXPECT_FALSE(ctl.TryAdmit(1, 64).ok());
}

}  // namespace
}  // namespace svc
}  // namespace cdpu
