// Wire-protocol robustness for the compression service. The framing layer
// is the service's attack surface: it must decode exactly what AppendFrame
// encodes (through any fragmentation the kernel chooses), reject every
// structural violation deterministically, and survive seeded fuzzing with
// malformed, truncated, oversized and CRC-corrupted frames. The final suite
// points the fuzzer at a live server and proves a poisoned session never
// disturbs its well-behaved neighbours.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/iobuf.h"

#include "src/common/rng.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace svc {
namespace {

// Round multiplier for the nightly fuzz CI job (CDPU_FUZZ_ROUNDS=50).
int FuzzRounds() {
  const char* env = std::getenv("CDPU_FUZZ_ROUNDS");
  if (env == nullptr) {
    return 1;
  }
  int rounds = std::atoi(env);
  return rounds > 0 ? rounds : 1;
}

Frame MakeRequest(uint64_t request_id, size_t payload_bytes, uint64_t seed) {
  Frame f;
  f.type = FrameType::kRequest;
  f.codec = static_cast<uint8_t>(WireCodec::kZstd);
  f.level = 3;
  f.request_id = request_id;
  f.tenant_id = static_cast<uint32_t>(seed % 7);
  ByteVec data = GenerateWithRatio(0.5, payload_bytes, seed);
  f.payload = IoBuf::Copy(data);
  return f;
}

// IoBuf has no operator== (it is a view handle); compare contents.
void ExpectPayloadsEqual(const IoBuf& a, const IoBuf& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

void ExpectFramesEqual(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.tenant_id, b.tenant_id);
  ExpectPayloadsEqual(a.payload, b.payload);
}

// ---------------------------------------------------------- encode/decode

TEST(SvcWireTest, RoundTripSingleFrame) {
  for (size_t payload : {size_t{0}, size_t{1}, size_t{4096}, size_t{100000}}) {
    Frame in = MakeRequest(0xABCDEF0123456789ull, payload, payload + 1);
    in.flags = kFlagDecompress;
    FrameParser parser;
    parser.Feed(EncodeFrame(in));
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame) << payload;
    ExpectFramesEqual(in, out);
    EXPECT_EQ(parser.Next(&out), FrameParser::Event::kNeedMore);
    EXPECT_EQ(parser.buffered(), 0u);
  }
}

TEST(SvcWireTest, RoundTripResponseStatus) {
  Frame in = MakeRequest(7, 64, 1);
  in.type = FrameType::kResponse;
  in.status = static_cast<uint8_t>(StatusCode::kResourceExhausted);
  FrameParser parser;
  parser.Feed(EncodeFrame(in));
  Frame out;
  ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
  ExpectFramesEqual(in, out);
}

TEST(SvcWireTest, ByteAtATimeFeed) {
  Frame in = MakeRequest(42, 777, 3);
  ByteVec encoded = EncodeFrame(in);
  FrameParser parser;
  Frame out;
  for (size_t i = 0; i + 1 < encoded.size(); ++i) {
    parser.Feed(ByteSpan(encoded.data() + i, 1));
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kNeedMore) << "byte " << i;
  }
  parser.Feed(ByteSpan(encoded.data() + encoded.size() - 1, 1));
  ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
  ExpectFramesEqual(in, out);
}

TEST(SvcWireTest, ManyFramesOneBuffer) {
  ByteVec stream;
  std::vector<Frame> frames;
  for (uint64_t i = 0; i < 16; ++i) {
    frames.push_back(MakeRequest(i, 100 + i * 37, i));
    AppendFrame(frames.back(), &stream);
  }
  FrameParser parser;
  parser.Feed(stream);
  for (const Frame& expected : frames) {
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
    ExpectFramesEqual(expected, out);
  }
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kNeedMore);
}

// Regression for the old front-erase compaction: draining a pipelined burst
// used to erase the consumed prefix on every frame, moving the remaining
// bytes each time — O(n^2) bytes copied for n buffered frames. The cursor
// parser must decode an already-buffered burst with zero additional copies
// (payloads are views), so the whole burst costs at most the bytes fed.
TEST(SvcWireTest, PipelinedBurstParsesInLinearBytes) {
  ByteVec stream;
  std::vector<Frame> frames;
  const size_t kFrames = 512;
  for (uint64_t i = 0; i < kFrames; ++i) {
    frames.push_back(MakeRequest(i, 512 + (i % 7) * 64, i));
    AppendFrame(frames.back(), &stream);
  }

  FrameParser parser;
  MemPathCounters before = MemPathSnapshot();
  parser.Feed(stream);  // one staging copy of the whole burst
  for (const Frame& expected : frames) {
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
    ExpectPayloadsEqual(expected.payload, out.payload);
    out.payload.Reset();  // consumers release promptly; the parser may not rely on it
  }
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
  MemPathCounters after = MemPathSnapshot();

  // The erase-based parser copied ~kFrames^2/2 * frame_bytes here (hundreds
  // of MB); the cursor parser's data-path copies are bounded by the single
  // Feed staging of the stream itself.
  EXPECT_LE(after.payload_copy_bytes - before.payload_copy_bytes, stream.size());
}

// The same burst arriving in socket-sized chunks with frames drained between
// chunks (the event loop's recv -> drain cadence): copies stay bounded by the
// bytes received, not by frames buffered.
TEST(SvcWireTest, ChunkedBurstWithInterleavedDrainStaysLinear) {
  ByteVec stream;
  const size_t kFrames = 256;
  std::vector<Frame> frames;
  for (uint64_t i = 0; i < kFrames; ++i) {
    frames.push_back(MakeRequest(i, 1024, i));
    AppendFrame(frames.back(), &stream);
  }

  FrameParser parser;
  MemPathCounters before = MemPathSnapshot();
  size_t fed = 0;
  size_t decoded = 0;
  const size_t kChunk = 16 * 1024;
  while (fed < stream.size()) {
    size_t n = std::min(kChunk, stream.size() - fed);
    uint8_t* tail = parser.WritableTail(n);
    ASSERT_GE(parser.writable(), n);
    std::memcpy(tail, stream.data() + fed, n);
    parser.Commit(n);
    fed += n;
    Frame out;
    while (parser.Next(&out) == FrameParser::Event::kFrame) {
      ExpectPayloadsEqual(frames[decoded].payload, out.payload);
      ++decoded;
      out.payload.Reset();
    }
  }
  EXPECT_EQ(decoded, kFrames);
  MemPathCounters after = MemPathSnapshot();
  // Only partial-frame re-homes copy; each is under one frame, and there are
  // at most as many as chunks.
  EXPECT_LE(after.payload_copy_bytes - before.payload_copy_bytes,
            (stream.size() / kChunk + 1) * (kHeaderBytes + 1024));
}

TEST(SvcWireTest, CodecNamesRoundTrip) {
  for (const char* name : {"deflate", "deflate-1", "deflate-9", "gzip", "gzip-6", "zstd",
                           "zstd-1", "zstd-12", "lz4", "snappy", "dpzip", "auto"}) {
    uint8_t codec = 0;
    uint8_t level = 0;
    ASSERT_TRUE(WireCodecFromName(name, &codec, &level)) << name;
    std::string back = WireCodecToName(codec, level);
    uint8_t codec2 = 0;
    uint8_t level2 = 0;
    ASSERT_TRUE(WireCodecFromName(back, &codec2, &level2)) << back;
    EXPECT_EQ(codec, codec2);
    EXPECT_EQ(level, level2);
  }
  uint8_t codec = 0;
  uint8_t level = 0;
  EXPECT_FALSE(WireCodecFromName("lzma", &codec, &level));
  EXPECT_FALSE(WireCodecFromName("zstd-99", &codec, &level));
  EXPECT_FALSE(WireCodecFromName("", &codec, &level));
  EXPECT_EQ(WireCodecToName(kNumWireCodecs, 0), "");
}

// ------------------------------------------------------- structural errors

// Flips one header byte and expects a poisoned parser.
void ExpectHeaderRejected(size_t offset, uint8_t xor_mask) {
  Frame in = MakeRequest(1, 256, 9);
  ByteVec encoded = EncodeFrame(in);
  encoded[offset] ^= xor_mask;
  FrameParser parser;
  parser.Feed(encoded);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kError) << "offset " << offset;
  EXPECT_FALSE(parser.error().ok());
  // Poisoned: even a valid follow-up frame is refused.
  parser.Feed(EncodeFrame(in));
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kError);
}

TEST(SvcWireTest, RejectsBadMagic) { ExpectHeaderRejected(0, 0xFF); }
TEST(SvcWireTest, RejectsBadVersion) { ExpectHeaderRejected(4, 0x10); }
TEST(SvcWireTest, RejectsBadType) { ExpectHeaderRejected(5, 0x40); }
TEST(SvcWireTest, RejectsReservedByte) { ExpectHeaderRejected(9, 0x01); }
TEST(SvcWireTest, RejectsReservedTail) { ExpectHeaderRejected(36, 0x01); }
TEST(SvcWireTest, RejectsUnknownFlagBitsLow) { ExpectHeaderRejected(10, 0x08); }
TEST(SvcWireTest, RejectsUnknownFlagBitsHigh) { ExpectHeaderRejected(11, 0x80); }

TEST(SvcWireTest, RejectsV1Frames) {
  // The version floor is kMinWireVersion = 2 (the adaptive-policy flag
  // bits); a v1 client must be refused at the version check, before any
  // CRC math.
  ExpectHeaderRejected(4, kWireVersion ^ 1);
}

// Patches the version byte of an encoded frame and re-seals the header CRC,
// producing a structurally valid frame claiming that version.
ByteVec WithVersion(ByteVec encoded, uint8_t version) {
  encoded[4] = version;
  const uint32_t crc = Crc32(ByteSpan(encoded.data(), 32));
  encoded[32] = static_cast<uint8_t>(crc);
  encoded[33] = static_cast<uint8_t>(crc >> 8);
  encoded[34] = static_cast<uint8_t>(crc >> 16);
  encoded[35] = static_cast<uint8_t>(crc >> 24);
  return encoded;
}

TEST(SvcWireTest, AcceptsWholeSupportedVersionRange) {
  // v3 added the stats frames without touching the header layout, so every
  // version in [kMinWireVersion, kWireVersion] must parse — an un-upgraded
  // v2 client keeps working against a v3 server.
  Frame in = MakeRequest(11, 256, 5);
  for (uint8_t v = kMinWireVersion; v <= kWireVersion; ++v) {
    FrameParser parser;
    parser.Feed(WithVersion(EncodeFrame(in), v));
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame) << "version " << int{v};
    ExpectFramesEqual(in, out);
  }
}

TEST(SvcWireTest, RejectsVersionsOutsideRange) {
  Frame in = MakeRequest(12, 256, 6);
  for (uint8_t v : {uint8_t{0}, uint8_t{1}, static_cast<uint8_t>(kWireVersion + 1),
                    uint8_t{0xFF}}) {
    FrameParser parser;
    parser.Feed(WithVersion(EncodeFrame(in), v));
    Frame out;
    EXPECT_EQ(parser.Next(&out), FrameParser::Event::kError) << "version " << int{v};
  }
}

TEST(SvcWireTest, StatsFrameTypesAreStructurallyValid) {
  // The v3 stats pair must clear the parser's structural checks: an empty
  // stats request and a JSON-bearing stats response both round-trip.
  Frame req;
  req.type = FrameType::kStatsRequest;
  req.request_id = 77;
  req.tenant_id = 3;
  FrameParser parser;
  parser.Feed(EncodeFrame(req));
  Frame out;
  ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
  EXPECT_EQ(out.type, FrameType::kStatsRequest);
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.payload.size(), 0u);

  Frame resp;
  resp.type = FrameType::kStatsResponse;
  resp.request_id = 77;
  const char kDoc[] = "{\"schema\":\"cdpu.svc.stats.v1\"}";
  resp.payload = IoBuf::Copy(ByteSpan(reinterpret_cast<const uint8_t*>(kDoc),
                                      sizeof(kDoc) - 1));
  parser.Feed(EncodeFrame(resp));
  ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
  EXPECT_EQ(out.type, FrameType::kStatsResponse);
  ExpectPayloadsEqual(resp.payload, out.payload);
}

TEST(SvcWireTest, RejectsTypePastStatsResponse) {
  // Type 5 is the first unassigned id after the v3 additions.
  Frame in = MakeRequest(13, 64, 7);
  ByteVec encoded = EncodeFrame(in);
  encoded[5] = 5;
  const uint32_t crc = Crc32(ByteSpan(encoded.data(), 32));
  encoded[32] = static_cast<uint8_t>(crc);
  encoded[33] = static_cast<uint8_t>(crc >> 8);
  encoded[34] = static_cast<uint8_t>(crc >> 16);
  encoded[35] = static_cast<uint8_t>(crc >> 24);
  FrameParser parser;
  parser.Feed(encoded);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kError);
}

TEST(SvcWireTest, AcceptsKnownFlagCombinations) {
  for (uint16_t flags : {uint16_t{0}, kFlagDecompress, kFlagStored, kFlagProfileSkipped,
                         static_cast<uint16_t>(kFlagDecompress | kFlagStored),
                         kKnownFlagsMask}) {
    Frame in = MakeRequest(1, 128, 21);
    in.flags = flags;
    FrameParser parser;
    parser.Feed(EncodeFrame(in));
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame) << "flags " << flags;
    EXPECT_EQ(out.flags, flags);
  }
}
TEST(SvcWireTest, RejectsHeaderCrcMismatch) {
  // Flip a payload_len bit without fixing the header CRC.
  ExpectHeaderRejected(24, 0x01);
}

TEST(SvcWireTest, RejectsPayloadCrcMismatch) {
  Frame in = MakeRequest(1, 256, 10);
  ByteVec encoded = EncodeFrame(in);
  encoded[kHeaderBytes + 100] ^= 0x20;  // corrupt the payload, CRCs intact
  FrameParser parser;
  parser.Feed(encoded);
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kError);
  EXPECT_EQ(parser.error().code(), StatusCode::kCorruptData);
}

TEST(SvcWireTest, RejectsOversizedPayloadBeforeBuffering) {
  // A length field past the ceiling must be rejected from the header alone —
  // the parser never waits for (or allocates) the claimed payload.
  Frame in = MakeRequest(1, 16, 11);
  FrameParser parser(/*max_payload=*/1024);
  ByteVec big = EncodeFrame(MakeRequest(2, 4096, 12));
  parser.Feed(ByteSpan(big.data(), kHeaderBytes));  // header only, len = 4096
  Frame out;
  EXPECT_EQ(parser.Next(&out), FrameParser::Event::kError);
  EXPECT_FALSE(parser.error().ok());
}

TEST(SvcWireTest, TruncationIsNeedMoreNotError) {
  Frame in = MakeRequest(5, 512, 13);
  ByteVec encoded = EncodeFrame(in);
  for (size_t len : {size_t{0}, size_t{1}, kHeaderBytes - 1, kHeaderBytes,
                     kHeaderBytes + 100, encoded.size() - 1}) {
    FrameParser parser;
    parser.Feed(ByteSpan(encoded.data(), len));
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kNeedMore) << "len " << len;
    // The remainder completes the frame.
    parser.Feed(ByteSpan(encoded.data() + len, encoded.size() - len));
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame) << "len " << len;
    ExpectFramesEqual(in, out);
  }
}

// ------------------------------------------------------------------- fuzz

// Mutated frames: flip random bytes in a valid encoding. The parser must
// either surface kError or decode frames whose CRCs genuinely re-validate —
// never crash, never hand back a frame with a corrupted payload.
TEST(SvcWireFuzzTest, MutatedFramesNeverCrashOrMisparse) {
  const int rounds = 200 * FuzzRounds();
  Rng rng(0x31BE5EEDull);
  for (int round = 0; round < rounds; ++round) {
    Frame in = MakeRequest(round, 64 + rng.Uniform(2048), round);
    ByteVec encoded = EncodeFrame(in);
    uint64_t flips = 1 + rng.Uniform(4);
    for (uint64_t f = 0; f < flips; ++f) {
      encoded[rng.Uniform(encoded.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    FrameParser parser;
    parser.Feed(encoded);
    Frame out;
    FrameParser::Event ev = parser.Next(&out);
    if (ev == FrameParser::Event::kFrame) {
      // Both CRCs re-validated, so the flips cancelled out; the decoded
      // payload must be byte-identical to what was sent.
      ExpectPayloadsEqual(out.payload, in.payload);
    } else {
      // kNeedMore is legal too: a flip inside payload_len can make the
      // header claim more bytes than were fed (CRC then rejects it later
      // or the stream just stalls — either way nothing is misparsed).
      EXPECT_TRUE(ev == FrameParser::Event::kError || ev == FrameParser::Event::kNeedMore);
    }
  }
}

// Truncated frames at every fuzzer-chosen cut point: never an error before
// the missing bytes arrive, always the exact frame after.
TEST(SvcWireFuzzTest, TruncatedFramesAlwaysRecoverable) {
  const int rounds = 100 * FuzzRounds();
  Rng rng(0x7A11ull);
  for (int round = 0; round < rounds; ++round) {
    Frame in = MakeRequest(round, 1 + rng.Uniform(4096), round * 31 + 7);
    ByteVec encoded = EncodeFrame(in);
    size_t cut = rng.Uniform(encoded.size());
    FrameParser parser;
    parser.Feed(ByteSpan(encoded.data(), cut));
    Frame out;
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kNeedMore) << "cut " << cut;
    parser.Feed(ByteSpan(encoded.data() + cut, encoded.size() - cut));
    ASSERT_EQ(parser.Next(&out), FrameParser::Event::kFrame);
    ExpectFramesEqual(in, out);
  }
}

// Pure garbage: random byte soup must terminate in kError or kNeedMore
// without unbounded buffering (nothing past one max-size frame).
TEST(SvcWireFuzzTest, RandomGarbageIsContained) {
  const int rounds = 100 * FuzzRounds();
  Rng rng(0x6A5BA6Eull);
  for (int round = 0; round < rounds; ++round) {
    ByteVec garbage(1 + rng.Uniform(512));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.Uniform(256));
    }
    FrameParser parser(/*max_payload=*/1 << 16);
    parser.Feed(garbage);
    Frame out;
    FrameParser::Event ev;
    int frames = 0;
    while ((ev = parser.Next(&out)) == FrameParser::Event::kFrame) {
      ++frames;  // astronomically unlikely (both CRCs must hold), but legal
    }
    EXPECT_LE(parser.buffered(), (1u << 16) + kHeaderBytes);
    EXPECT_LE(frames, 16);
  }
}

// --------------------------------------------- live-server session isolation

// Raw TCP socket for speaking deliberate garbage at the server.
class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ >= 0) {
      timeval tv{};
      tv.tv_sec = 5;  // flips that cancel out leave the session open: bound recv
      setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
  }
  ~RawSocket() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const ByteVec& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // True once the peer tore the session down: a clean FIN or an RST (the
  // server closes erroring sessions with bytes still unread, which the
  // kernel turns into a reset). False only on the recv timeout, i.e. the
  // session is still alive — the fuzzed bytes happened to form a valid
  // frame and the server answered instead of dropping.
  bool WaitForDrop() {
    uint8_t buf[256];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) {
        return true;  // FIN
      }
      if (n < 0) {
        return errno != EAGAIN && errno != EWOULDBLOCK;  // RST vs timeout
      }
    }
  }

 private:
  int fd_ = -1;
};

// A fuzzer hammers the server with malformed frames on its own sessions
// while a well-behaved client keeps issuing verified round trips on
// another. Every malformed session must be dropped (counted as a protocol
// error) and every well-formed request must still complete.
TEST(SvcWireFuzzTest, MalformedSessionsNeverDisturbNeighbours) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.port = server.port();
  ServiceClient good(copts);
  ByteVec payload = GenerateWithRatio(0.4, 32 * 1024, /*seed=*/1);

  Rng rng(0xBADF00Dull);
  const int rounds = 20 * FuzzRounds();
  uint64_t dropped_sessions = 0;
  for (int round = 0; round < rounds; ++round) {
    RawSocket evil(server.port());
    ASSERT_TRUE(evil.connected());
    // A valid frame with 1-4 byte flips, or raw garbage every 4th round.
    ByteVec attack;
    if (round % 4 == 3) {
      attack.resize(kHeaderBytes + rng.Uniform(256));
      for (uint8_t& b : attack) {
        b = static_cast<uint8_t>(rng.Uniform(256));
      }
    } else {
      attack = EncodeFrame(MakeRequest(round, 512, round));
      uint64_t flips = 1 + rng.Uniform(4);
      for (uint64_t f = 0; f < flips; ++f) {
        attack[rng.Uniform(attack.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
      }
    }
    evil.Send(attack);

    // Interleave a verified round trip from the good client.
    CallResult c = good.Compress("zstd-1", payload);
    ASSERT_TRUE(c.status.ok()) << "round " << round << ": " << c.status.ToString();
    CallResult d = good.Decompress("zstd-1", c.output);
    ASSERT_TRUE(d.status.ok()) << "round " << round;
    ASSERT_EQ(d.output.size(), payload.size()) << "round " << round;
    ASSERT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin()))
        << "round " << round;

    // Flips that cancel out (or garbage that happens to parse) are legal;
    // everything else must close the evil session server-side.
    if (evil.WaitForDrop()) {
      ++dropped_sessions;
    }
  }

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.protocol_errors, dropped_sessions);
  EXPECT_GT(dropped_sessions, 0u);  // the fuzzer can't be this unlucky
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_GE(stats.requests_ok, static_cast<uint64_t>(2 * rounds));
}

}  // namespace
}  // namespace svc
}  // namespace cdpu
