// Tests for the SSD substrate: NAND timing, the compression-aware FTL
// (packing, splits, GC, write amplification), and the DP-CSD controller
// (functional round trips through inline compression + timing shape).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ssd/ftl.h"
#include "src/ssd/nand.h"
#include "src/ssd/ssd.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

NandConfig SmallNand() {
  NandConfig n;
  n.channels = 2;
  n.dies_per_channel = 2;
  n.blocks_per_die = 16;
  n.pages_per_block = 32;
  return n;  // 2*2*16*32 = 2048 pages, 8 MiB
}

FtlConfig SmallFtl() {
  FtlConfig f;
  f.nand = SmallNand();
  f.logical_pages = 1400;
  return f;
}

SsdConfig SmallSsd(SsdCompressionMode mode) {
  SsdConfig c;
  c.compression = mode;
  c.ftl = SmallFtl();
  return c;
}


// -------------------------------------------------------------------- nand

TEST(NandTest, ReadFasterThanProgram) {
  NandArray nand(SmallNand());
  SimNanos r = nand.Read(0, 0);
  NandArray nand2(SmallNand());
  SimNanos p = nand2.Program(0, 0);
  EXPECT_LT(r, p);
}

TEST(NandTest, SameDieSerializes) {
  NandConfig cfg = SmallNand();
  NandArray nand(cfg);
  uint64_t total_dies = static_cast<uint64_t>(cfg.channels) * cfg.dies_per_channel;
  SimNanos first = nand.Read(0, 0);
  SimNanos second = nand.Read(total_dies, 0);  // stripes back to die 0
  EXPECT_GE(second, first + Micros(40));
}

TEST(NandTest, DifferentDiesOverlap) {
  NandConfig cfg = SmallNand();
  NandArray nand(cfg);
  SimNanos a = nand.Read(0, 0);
  SimNanos b = nand.Read(1, 0);  // consecutive pages stripe across dies
  // Cell reads overlap; only the shared-channel transfer can serialise.
  EXPECT_LT(b, a + Micros(30));
}

TEST(NandTest, CountsOps) {
  NandArray nand(SmallNand());
  nand.Read(0, 0);
  nand.Program(5, 0);
  nand.EraseBlock(0, 0);
  EXPECT_EQ(nand.reads(), 1u);
  EXPECT_EQ(nand.programs(), 1u);
  EXPECT_EQ(nand.erases(), 1u);
}

// --------------------------------------------------------------------- ftl

TEST(FtlTest, PacksCompressedSegments) {
  CompressionFtl ftl(SmallFtl());
  // Three 1 KB segments share one flash page.
  for (uint64_t lpn = 0; lpn < 3; ++lpn) {
    Result<FtlWriteResult> r = ftl.Write(lpn, 1024);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->segments.size(), 1u);
    EXPECT_FALSE(r->split);
  }
  EXPECT_EQ(ftl.flash_pages_programmed(), 0u);  // page not yet full
  Result<FtlWriteResult> r = ftl.Write(3, 1024);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ftl.flash_pages_programmed(), 1u);  // 4 KB filled -> programmed
}

TEST(FtlTest, SplitsAcrossPageBoundary) {
  CompressionFtl ftl(SmallFtl());
  ASSERT_TRUE(ftl.Write(0, 3000).ok());
  Result<FtlWriteResult> r = ftl.Write(1, 3000);  // 3000+3000 > 4096
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->split);
  ASSERT_EQ(r->segments.size(), 2u);
  EXPECT_EQ(r->segments[0].len + r->segments[1].len, 3000u);
  // Sequential mapping: continuation starts at offset 0 of the next page.
  EXPECT_EQ(r->segments[1].offset, 0u);
  EXPECT_EQ(r->segments[1].ppa, r->segments[0].ppa + 1);
}

TEST(FtlTest, IncompressiblePageAligned) {
  CompressionFtl ftl(SmallFtl());
  ASSERT_TRUE(ftl.Write(0, 1000).ok());  // partial page open
  Result<FtlWriteResult> r = ftl.Write(1, 4096);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->segments.size(), 1u);
  EXPECT_EQ(r->segments[0].offset, 0u);  // aligned to a fresh page
  EXPECT_EQ(r->segments[0].len, 4096u);
}

TEST(FtlTest, ReadFindsCurrentLocation) {
  CompressionFtl ftl(SmallFtl());
  ASSERT_TRUE(ftl.Write(7, 2222).ok());
  Result<FtlReadResult> r = ftl.Read(7);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->segments.size(), 1u);
  EXPECT_EQ(r->segments[0].len, 2222u);
}

TEST(FtlTest, OverwriteInvalidatesOldLocation) {
  CompressionFtl ftl(SmallFtl());
  ASSERT_TRUE(ftl.Write(7, 2000).ok());
  Result<FtlReadResult> first = ftl.Read(7);
  ASSERT_TRUE(ftl.Write(7, 2000).ok());
  Result<FtlReadResult> second = ftl.Read(7);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->segments[0].offset, second->segments[0].offset);
}

TEST(FtlTest, UnwrittenPageUnavailable) {
  CompressionFtl ftl(SmallFtl());
  Result<FtlReadResult> r = ftl.Read(42);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(FtlTest, OutOfRangeRejected) {
  CompressionFtl ftl(SmallFtl());
  EXPECT_FALSE(ftl.Write(999999, 1000).ok());
  EXPECT_FALSE(ftl.Write(0, 0).ok());
  EXPECT_FALSE(ftl.Write(0, 5000).ok());
}

TEST(FtlTest, CompressionReducesFlashWrites) {
  // 2 KB stored segments: two logical pages per flash page -> WA ~0.5.
  CompressionFtl ftl(SmallFtl());
  for (uint64_t lpn = 0; lpn < 512; ++lpn) {
    ASSERT_TRUE(ftl.Write(lpn, 2048).ok());
  }
  ftl.Flush();
  EXPECT_NEAR(ftl.WriteAmplification(), 0.5, 0.05);
  EXPECT_NEAR(ftl.PhysicalSpaceRatio(), 0.5, 0.01);
}

TEST(FtlTest, GcReclaimsSpaceUnderOverwrites) {
  CompressionFtl ftl(SmallFtl());
  Rng rng(5);
  // Repeatedly overwrite a small working set until GC must run.
  for (int round = 0; round < 30; ++round) {
    for (uint64_t lpn = 0; lpn < 200; ++lpn) {
      Result<FtlWriteResult> r = ftl.Write(lpn, 2048 + static_cast<uint32_t>(rng.Uniform(512)));
      ASSERT_TRUE(r.ok()) << r.status().ToString() << " round " << round << " lpn " << lpn;
    }
  }
  // Hot uniform overwrites leave victim blocks mostly invalid, so GC may
  // erase without relocating; the reclaim itself must have happened.
  EXPECT_GT(ftl.gc_erased_blocks(), 0u);
  EXPECT_GE(ftl.free_blocks(), 1u);
  // All 200 logical pages still readable.
  for (uint64_t lpn = 0; lpn < 200; ++lpn) {
    EXPECT_TRUE(ftl.Read(lpn).ok());
  }
}

TEST(FtlTest, GcPreservesMappingsExactly) {
  CompressionFtl ftl(SmallFtl());
  std::vector<uint32_t> lens(100);
  Rng rng(6);
  for (uint64_t lpn = 0; lpn < 100; ++lpn) {
    lens[lpn] = 1000 + static_cast<uint32_t>(rng.Uniform(3000));
    ASSERT_TRUE(ftl.Write(lpn, lens[lpn]).ok());
  }
  for (int round = 0; round < 40; ++round) {
    for (uint64_t lpn = 100; lpn < 300; ++lpn) {
      ASSERT_TRUE(ftl.Write(lpn, 3500).ok());
    }
  }
  for (uint64_t lpn = 0; lpn < 100; ++lpn) {
    Result<FtlReadResult> r = ftl.Read(lpn);
    ASSERT_TRUE(r.ok());
    uint32_t total = 0;
    for (const SegmentLocation& s : r->segments) {
      total += s.len;
    }
    EXPECT_EQ(total, lens[lpn]) << "lpn " << lpn;
  }
}

// --------------------------------------------------------------------- ssd

TEST(SimSsdTest, WriteReadRoundTripCompressible) {
  SimSsd ssd(SmallSsd(SsdCompressionMode::kDpzip));
  std::vector<uint8_t> page = GenerateTextLike(4096, 9);
  Result<SsdIoResult> w = ssd.Write(5, page, 0);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_LT(w->ratio, 0.8);

  ByteVec out;
  Result<SsdIoResult> r = ssd.Read(5, &out, w->completion);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(out, page);
}

TEST(SimSsdTest, RoundTripAllModesAllPatterns) {
  for (SsdCompressionMode mode : {SsdCompressionMode::kNone, SsdCompressionMode::kDpzip,
                                  SsdCompressionMode::kFpgaGzip}) {
    SimSsd ssd(SmallSsd(mode));
    SimNanos t = 0;
    for (uint64_t lpn = 0; lpn < 8; ++lpn) {
      std::vector<uint8_t> page =
          lpn % 2 == 0 ? GenerateTextLike(4096, lpn) : GenerateWithRatio(1.0, 4096, lpn);
      Result<SsdIoResult> w = ssd.Write(lpn, page, t);
      ASSERT_TRUE(w.ok());
      t = w->completion;
      ByteVec out;
      Result<SsdIoResult> r = ssd.Read(lpn, &out, t);
      ASSERT_TRUE(r.ok());
      t = r->completion;
      ASSERT_EQ(out, page) << "mode " << static_cast<int>(mode) << " lpn " << lpn;
    }
  }
}

TEST(SimSsdTest, UnwrittenReadsZeros) {
  SimSsd ssd(SmallSsd(SsdCompressionMode::kDpzip));
  ByteVec out;
  Result<SsdIoResult> r = ssd.Read(99, &out, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(4096, 0));
}

TEST(SimSsdTest, IncompressibleBypassStoredRaw) {
  SimSsd ssd(SmallSsd(SsdCompressionMode::kDpzip));
  std::vector<uint8_t> page = GenerateWithRatio(1.0, 4096, 10);
  Result<SsdIoResult> w = ssd.Write(0, page, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w->ratio, 1.0);
  EXPECT_EQ(ssd.bypass_pages(), 1u);
  ByteVec out;
  ASSERT_TRUE(ssd.Read(0, &out, w->completion).ok());
  EXPECT_EQ(out, page);
}

TEST(SimSsdTest, EffectiveCapacityGainFromCompression) {
  SimSsd ssd(SmallSsd(SsdCompressionMode::kDpzip));
  SimNanos t = 0;
  for (uint64_t lpn = 0; lpn < 64; ++lpn) {
    std::vector<uint8_t> page = GenerateDbTableLike(4096, lpn);
    Result<SsdIoResult> w = ssd.Write(lpn, page, t);
    ASSERT_TRUE(w.ok());
    t = w->completion;
  }
  EXPECT_GT(ssd.EffectiveCapacityGain(), 1.5);  // ~2x at 50% ratio
}

TEST(SimSsdTest, WriteLatencySubTenMicroseconds) {
  // Paper §5.2.3: buffered SSD writes complete in sub-10 us.
  SimSsd ssd(SmallSsd(SsdCompressionMode::kDpzip));
  std::vector<uint8_t> page = GenerateTextLike(4096, 11);
  Result<SsdIoResult> w = ssd.Write(0, page, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_LT(w->completion, Micros(10));
}

TEST(SimSsdTest, CompressionModeTransparentToContent) {
  // DP-CSD is application-transparent: same data in, same data out,
  // regardless of compression mode (Finding: plug-and-play).
  std::vector<uint8_t> page = GenerateXmlLike(4096, 12);
  for (SsdCompressionMode mode : {SsdCompressionMode::kNone, SsdCompressionMode::kDpzip}) {
    SimSsd ssd(SmallSsd(mode));
    Result<SsdIoResult> w = ssd.Write(3, page, 0);
    ASSERT_TRUE(w.ok());
    ByteVec out;
    ASSERT_TRUE(ssd.Read(3, &out, w->completion).ok());
    EXPECT_EQ(out, page);
  }
}

TEST(SimSsdTest, SplitPagesCauseReadAmplification) {
  // Figure 12 (DP-CSD vs DPZip): poorly-compressible segments span pages,
  // so some reads fetch two flash pages.
  SsdConfig cfg = SmallSsd(SsdCompressionMode::kDpzip);
  SimSsd ssd(cfg);
  SimNanos t = 0;
  uint32_t split_reads = 0;
  for (uint64_t lpn = 0; lpn < 32; ++lpn) {
    std::vector<uint8_t> page = GenerateWithRatio(0.8, 4096, 100 + lpn);
    Result<SsdIoResult> w = ssd.Write(lpn, page, t);
    ASSERT_TRUE(w.ok());
    t = w->completion;
  }
  for (uint64_t lpn = 0; lpn < 32; ++lpn) {
    ByteVec out;
    Result<SsdIoResult> r = ssd.Read(lpn, &out, t);
    ASSERT_TRUE(r.ok());
    t = r->completion;
    if (r->flash_reads > 1) {
      ++split_reads;
    }
  }
  EXPECT_GT(split_reads, 0u);
}

TEST(SimSsdTest, MultiPageIo) {
  SimSsd ssd(SmallSsd(SsdCompressionMode::kDpzip));
  std::vector<uint8_t> data = GenerateTextLike(65536, 13);
  Result<SsdIoResult> w = ssd.WriteMulti(0, data, 0);
  ASSERT_TRUE(w.ok());
  ByteVec out;
  Result<SsdIoResult> r = ssd.ReadMulti(0, 16, &out, w->completion);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, data);
}

TEST(SimSsdTest, SustainedOverwriteExercisesGc) {
  SsdConfig cfg = SmallSsd(SsdCompressionMode::kDpzip);
  cfg.ftl.logical_pages = 600;
  SimSsd ssd(cfg);
  SimNanos t = 0;
  Rng rng(14);
  for (int round = 0; round < 25; ++round) {
    for (uint64_t lpn = 0; lpn < 300; ++lpn) {
      std::vector<uint8_t> page = GenerateDbTableLike(4096, rng.Next());
      Result<SsdIoResult> w = ssd.Write(lpn, page, t);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      t = w->completion;
    }
  }
  EXPECT_GT(ssd.ftl().gc_erased_blocks(), 0u);
  // Data integrity after GC.
  for (uint64_t lpn = 0; lpn < 10; ++lpn) {
    ByteVec out;
    ASSERT_TRUE(ssd.Read(lpn, &out, t).ok());
    EXPECT_EQ(out.size(), 4096u);
  }
}

}  // namespace
}  // namespace cdpu
