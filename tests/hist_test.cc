// Always-on log-linear latency histograms (ISSUE 10): bucket geometry
// exactness at every boundary, merge/delta algebra, the percentile error
// bound against a sorted-sample oracle, and concurrent recorders racing a
// snapshotter (the TSan configuration runs this test too).

#include "src/obs/hist.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cdpu {
namespace obs {
namespace {

using B = HistBucketing;

TEST(HistBucketing, ValuesBelowSubBucketsAreExact) {
  for (uint64_t v = 0; v < B::kSubBuckets; ++v) {
    const size_t idx = B::BucketIndex(v);
    EXPECT_EQ(idx, static_cast<size_t>(v));
    EXPECT_EQ(B::BucketLow(idx), v);
    EXPECT_EQ(B::BucketHigh(idx), v);
  }
}

TEST(HistBucketing, BoundariesRoundTripForEveryBucket) {
  for (size_t idx = 0; idx < B::kNumBuckets; ++idx) {
    const uint64_t low = B::BucketLow(idx);
    const uint64_t high = B::BucketHigh(idx);
    ASSERT_LE(low, high) << idx;
    EXPECT_EQ(B::BucketIndex(low), idx) << "low of bucket " << idx;
    EXPECT_EQ(B::BucketIndex(high), idx) << "high of bucket " << idx;
    if (idx + 1 < B::kNumBuckets && high != ~uint64_t{0}) {
      // The first value past this bucket's top belongs to the next bucket:
      // the geometry has no gaps and no overlaps.
      EXPECT_EQ(B::BucketIndex(high + 1), idx + 1) << "bucket " << idx;
      EXPECT_EQ(B::BucketLow(idx + 1), high + 1) << "bucket " << idx;
    }
  }
}

TEST(HistBucketing, ExtremesStayInRange) {
  EXPECT_EQ(B::BucketIndex(0), 0u);
  EXPECT_EQ(B::BucketIndex(~uint64_t{0}), B::kNumBuckets - 1);
  // The top bucket's upper bound saturates instead of wrapping.
  EXPECT_EQ(B::BucketHigh(B::kNumBuckets - 1), ~uint64_t{0});
}

TEST(HistBucketing, IndexIsMonotone) {
  // Order preservation sampled across the whole range, including the
  // power-of-two boundaries where the group changes.
  std::mt19937_64 rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t a = rng() >> (rng() % 64);
    const uint64_t b = rng() >> (rng() % 64);
    if (a <= b) {
      EXPECT_LE(B::BucketIndex(a), B::BucketIndex(b)) << a << " vs " << b;
    } else {
      EXPECT_GE(B::BucketIndex(a), B::BucketIndex(b)) << a << " vs " << b;
    }
  }
  for (uint32_t shift = B::kSubBucketBits; shift < 63; ++shift) {
    const uint64_t edge = 1ull << shift;
    EXPECT_EQ(B::BucketIndex(edge - 1) + 1, B::BucketIndex(edge)) << shift;
  }
}

TEST(HistogramSnapshot, EmptyIsAllZero) {
  LatencyHistogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.nonzero_buckets(), 0u);
  EXPECT_EQ(s.min_value(), 0u);
  EXPECT_EQ(s.max_value(), 0u);
  EXPECT_EQ(s.Percentile(50), 0u);
}

TEST(HistogramSnapshot, BasicStats) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.sum(), 60u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_EQ(s.nonzero_buckets(), 3u);
  EXPECT_EQ(s.min_value(), 10u);
  EXPECT_EQ(s.max_value(), 30u);
  // Sub-bucket values are exact, so percentiles are too.
  EXPECT_EQ(s.Percentile(0), 10u);
  EXPECT_EQ(s.Percentile(50), 20u);
  EXPECT_EQ(s.Percentile(100), 30u);
}

TEST(HistogramSnapshot, PercentileMatchesSortedOracleWithinBound) {
  // A skewed latency-like distribution spanning several powers of two —
  // exactly where the log-linear quantization is coarsest.
  std::mt19937_64 rng(0x1517);
  std::lognormal_distribution<double> dist(10.0, 1.5);
  LatencyHistogram h;
  std::vector<uint64_t> samples;
  samples.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t v = static_cast<uint64_t>(dist(rng)) + 1;
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  HistogramSnapshot s = h.Snapshot();
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    // Same rank definition as the histogram: the ceil(p% * n)-th recording.
    size_t rank = static_cast<size_t>(
        std::max<double>(1.0, std::ceil(p / 100.0 * static_cast<double>(samples.size()))));
    rank = std::min(rank, samples.size());
    const double oracle = static_cast<double>(samples[rank - 1]);
    const double got = static_cast<double>(s.Percentile(p));
    EXPECT_NEAR(got, oracle, oracle * B::kMaxRelativeError + 1.0)
        << "p" << p << ": oracle " << oracle << " got " << got;
  }
}

HistogramSnapshot Fill(uint64_t seed, int n) {
  LatencyHistogram h;
  std::mt19937_64 rng(seed);
  for (int i = 0; i < n; ++i) {
    h.Record(rng() >> (rng() % 50));
  }
  return h.Snapshot();
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  const HistogramSnapshot a = Fill(1, 500);
  const HistogramSnapshot b = Fill(2, 700);
  const HistogramSnapshot c = Fill(3, 900);

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;  // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  HistogramSnapshot cba = c;  // c + b + a
  cba.Merge(b);
  cba.Merge(a);

  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_EQ(ab_c.sum(), a_bc.sum());
  EXPECT_EQ(ab_c.counts(), a_bc.counts());
  EXPECT_EQ(ab_c.counts(), cba.counts());
  EXPECT_EQ(ab_c.sum(), cba.sum());
}

TEST(HistogramSnapshot, DeltaSinceInvertsMerge) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 37);
  }
  const HistogramSnapshot before = h.Snapshot();
  for (uint64_t v = 1; v <= 50; ++v) {
    h.Record(v * 9001);
  }
  const HistogramSnapshot after = h.Snapshot();

  const HistogramSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.count(), 50u);
  HistogramSnapshot rebuilt = before;
  rebuilt.Merge(delta);
  EXPECT_EQ(rebuilt.count(), after.count());
  EXPECT_EQ(rebuilt.sum(), after.sum());
  EXPECT_EQ(rebuilt.counts(), after.counts());
}

TEST(HistogramSnapshot, ToJsonShapeAndScaling) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(2000);  // e.g. 2000 ns = 2 us
  }
  const Json j = h.Snapshot().ToJson(1e3);
  ASSERT_TRUE(j.is_object());
  for (const char* key :
       {"count", "sum", "mean", "p50", "p90", "p99", "p999", "max", "nonzero_buckets"}) {
    EXPECT_NE(j.Find(key), nullptr) << key;
  }
  EXPECT_EQ(j.Find("count")->AsUint(), 1000u);
  EXPECT_NEAR(j.Find("p50")->AsDouble(), 2.0, 2.0 * B::kMaxRelativeError);
  EXPECT_NEAR(j.Find("mean")->AsDouble(), 2.0, 2.0 * B::kMaxRelativeError);
}

TEST(LatencyHistogram, ConcurrentRecordersAndSnapshotter) {
  // 4 recorder threads race a snapshotter taking rolling snapshots. Under
  // TSan this is the data-race check for the relaxed-atomic design; under
  // any build it checks no recording is lost and snapshots stay monotone.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  LatencyHistogram h;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      HistogramSnapshot s = h.Snapshot();
      EXPECT_GE(s.count(), last);  // bucket totals never go backwards
      last = s.count();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(rng() >> (rng() % 40));
      }
    });
  }
  for (std::thread& r : recorders) {
    r.join();
  }
  done.store(true, std::memory_order_release);
  snapshotter.join();

  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : s.counts()) {
    bucket_total += c;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace cdpu
