// Property-based round-trip testing: for every registered codec, and for
// adversarially chosen sizes (empty, single byte, around the 4 KiB block
// boundary the device models use, and a full 1 MiB buffer), Compress then
// Decompress must reproduce the input exactly. All randomness is seeded and
// every assertion carries the reproducing (codec, pattern, size, seed)
// tuple, so a failure in CI is a one-line local repro.
//
// CDPU_FUZZ_ROUNDS multiplies the number of extra randomized rounds; the
// nightly fuzz CI job sets it to 50.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/codecs/codec.h"
#include "src/common/rng.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

int FuzzRounds() {
  const char* env = std::getenv("CDPU_FUZZ_ROUNDS");
  if (env == nullptr) {
    return 1;
  }
  int rounds = std::atoi(env);
  return rounds > 0 ? rounds : 1;
}

// Run-length data: long runs of a single byte with occasional breaks, the
// best case for LZ match finding and a classic encoder edge case (maximum
// match lengths, distance-1 copies).
std::vector<uint8_t> GenerateRunLength(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  data.reserve(size);
  while (data.size() < size) {
    uint8_t value = rng.NextByte();
    size_t run = 1 + rng.Uniform(512);
    for (size_t i = 0; i < run && data.size() < size; ++i) {
      data.push_back(value);
    }
  }
  return data;
}

std::vector<uint8_t> GenerateRandom(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(size);
  for (auto& b : data) {
    b = rng.NextByte();
  }
  return data;
}

struct InputPattern {
  const char* name;
  std::vector<uint8_t> (*generate)(size_t, uint64_t);
};

constexpr InputPattern kPatterns[] = {
    {"random", GenerateRandom},
    {"run-length", GenerateRunLength},
    {"text", GenerateTextLike},
};

const char* const kCodecs[] = {"deflate-1", "deflate-6", "deflate-9", "gzip-1", "gzip-6",
                               "lz4",       "snappy",    "zstd-1",    "dpzip"};

class PropertyRoundTripTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { DpzipCodec::RegisterWithFactory(); }
};

void CheckRoundTrip(Codec* codec, const InputPattern& pattern, size_t size, uint64_t seed) {
  SCOPED_TRACE("repro: codec=" + codec->name() + " pattern=" + pattern.name +
               " size=" + std::to_string(size) + " seed=" + std::to_string(seed));
  std::vector<uint8_t> original = pattern.generate(size, seed);
  ByteVec compressed;
  Result<size_t> c = codec->Compress(original, &compressed);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c.value(), compressed.size());

  ByteVec restored;
  Result<size_t> d = codec->Decompress(compressed, &restored);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ(d.value(), restored.size());
  ASSERT_EQ(restored.size(), original.size());
  ASSERT_EQ(restored, ByteVec(original.begin(), original.end()));
}

TEST_P(PropertyRoundTripTest, BoundarySizesRoundTripExactly) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr) << GetParam();
  constexpr size_t kSizes[] = {0, 1, 4095, 4096, 4097, 1 << 20};
  for (const InputPattern& pattern : kPatterns) {
    for (size_t size : kSizes) {
      CheckRoundTrip(codec.get(), pattern, size, 0xc0ffee ^ size);
    }
  }
}

TEST_P(PropertyRoundTripTest, RandomizedSizesRoundTripExactly) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr) << GetParam();
  const int rounds = 4 * FuzzRounds();
  Rng meta_rng(0x9e3779b97f4a7c15ULL);
  for (int round = 0; round < rounds; ++round) {
    for (const InputPattern& pattern : kPatterns) {
      size_t size = meta_rng.Uniform(128 * 1024);
      uint64_t seed = meta_rng.Next();
      CheckRoundTrip(codec.get(), pattern, size, seed);
    }
  }
}

TEST_P(PropertyRoundTripTest, CompressIsDeterministic) {
  // Device offload retries and CPU fallback both re-run Compress on the same
  // input; the recovery path's CRC comparison relies on identical bytes in.
  // Determinism of bytes *out* makes failures diagnosable too.
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr) << GetParam();
  std::vector<uint8_t> original = GenerateTextLike(32 * 1024, 0xabcd);
  ByteVec first, second;
  ASSERT_TRUE(codec->Compress(original, &first).ok());
  ASSERT_TRUE(codec->Compress(original, &second).ok());
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, PropertyRoundTripTest, ::testing::ValuesIn(kCodecs),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace cdpu
