// Tests for the SR-IOV multi-tenant model (Figure 20 / Finding 15).

#include <gtest/gtest.h>

#include "src/virt/sriov.h"

namespace cdpu {
namespace {

SriovConfig QatLike() {
  SriovConfig c;
  c.name = "qat";
  c.arbitration = VfArbitration::kUnarbitrated;
  c.device_gbps = 5.0;
  return c;
}

SriovConfig DpCsdLike() {
  SriovConfig c;
  c.name = "dp-csd";
  c.arbitration = VfArbitration::kWeightedFair;
  c.device_gbps = 5.6;
  return c;
}

TEST(SriovTest, FairSchedulingYieldsTinyCv) {
  MultiTenantResult r = RunMultiTenant(DpCsdLike());
  EXPECT_LT(r.cv_percent, 0.5);  // Finding 15: CV < 0.5%
  EXPECT_EQ(r.tenants.size(), 24u);
}

TEST(SriovTest, UnarbitratedYieldsSevereOscillation) {
  MultiTenantResult r = RunMultiTenant(QatLike());
  EXPECT_GT(r.cv_percent, 30.0);  // paper: 51-89%
}

TEST(SriovTest, FairAndUnfairDeliverSimilarAggregate) {
  // Isolation does not cost aggregate throughput.
  MultiTenantResult fair = RunMultiTenant(DpCsdLike());
  MultiTenantResult unfair = RunMultiTenant(QatLike());
  double fair_norm = fair.total_gbps / 5.6;
  double unfair_norm = unfair.total_gbps / 5.0;
  EXPECT_NEAR(fair_norm, unfair_norm, 0.15);
}

TEST(SriovTest, EveryTenantServedUnderFairness) {
  MultiTenantResult r = RunMultiTenant(DpCsdLike());
  for (const TenantOutcome& t : r.tenants) {
    EXPECT_GT(t.requests_served, 0u) << "vm " << t.vm;
  }
}

TEST(SriovTest, StarvationUnderUnarbitrated) {
  MultiTenantResult r = RunMultiTenant(QatLike());
  double min_gbps = 1e18;
  double max_gbps = 0;
  for (const TenantOutcome& t : r.tenants) {
    min_gbps = std::min(min_gbps, t.gbps);
    max_gbps = std::max(max_gbps, t.gbps);
  }
  EXPECT_GT(max_gbps, min_gbps * 2.0);  // winners vs starved VMs
}

TEST(SriovTest, DeterministicForSeed) {
  MultiTenantResult a = RunMultiTenant(QatLike());
  MultiTenantResult b = RunMultiTenant(QatLike());
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].requests_served, b.tenants[i].requests_served);
  }
}

TEST(SriovTest, ReadsOscillateMoreThanWrites) {
  // Figure 20: read CVs (80-89%) exceed write CVs (~51-54%). Reads drain in
  // larger batches (faster engine service), amplifying capture.
  SriovConfig writes = QatLike();
  writes.drain_batch = 8;
  SriovConfig reads = QatLike();
  reads.drain_batch = 16;
  reads.device_gbps = 7.0;
  MultiTenantResult w = RunMultiTenant(writes);
  MultiTenantResult r = RunMultiTenant(reads);
  EXPECT_GT(r.cv_percent, w.cv_percent);
}

TEST(SriovTest, WeightedSharesHonoured) {
  // Gold tenants (weight 3) should see ~3x the throughput of weight-1
  // tenants under saturation.
  SriovConfig c = DpCsdLike();
  c.weights.assign(24, 1);
  for (int i = 0; i < 4; ++i) {
    c.weights[i] = 3;  // four gold tenants
  }
  MultiTenantResult r = RunMultiTenant(c);
  double gold = 0;
  double silver = 0;
  for (const TenantOutcome& t : r.tenants) {
    (t.vm < 4 ? gold : silver) += t.gbps;
  }
  gold /= 4;
  silver /= 20;
  EXPECT_NEAR(gold / silver, 3.0, 0.4);
}

TEST(SriovTest, WeightedSharesKeepAggregate) {
  SriovConfig flat = DpCsdLike();
  SriovConfig weighted = DpCsdLike();
  weighted.weights.assign(24, 1);
  weighted.weights[0] = 8;
  MultiTenantResult a = RunMultiTenant(flat);
  MultiTenantResult b = RunMultiTenant(weighted);
  EXPECT_NEAR(a.total_gbps, b.total_gbps, a.total_gbps * 0.05);
}

}  // namespace
}  // namespace cdpu
