// Differential interop: every stream our from-scratch Deflate/gzip encoders
// emit must decode bit-exactly through an independently derived RFC 1951
// reference decoder (tests/reference_inflate.*). This is the software
// analogue of the LZ4 accelerator study's hardware-vs-software bit-exactness
// validation: two unrelated implementations of the spec agreeing on every
// payload is strong evidence both follow the RFC rather than each other's
// bugs.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/codecs/codec.h"
#include "src/common/crc32.h"
#include "src/workload/datagen.h"
#include "tests/reference_inflate.h"

namespace cdpu {
namespace {

struct Pattern {
  const char* name;
  std::function<std::vector<uint8_t>(size_t, uint64_t)> generate;
};

const std::vector<Pattern>& AllPatterns() {
  static const std::vector<Pattern> patterns = {
      {"text", GenerateTextLike},
      {"db-table", GenerateDbTableLike},
      {"binary", GenerateBinaryLike},
      {"xml", GenerateXmlLike},
      {"image", GenerateImageLike},
      {"source", GenerateSourceLike},
      {"incompressible", [](size_t size, uint64_t seed) { return GenerateWithRatio(1.0, size, seed); }},
      {"high-redundancy", [](size_t size, uint64_t seed) { return GenerateWithRatio(0.1, size, seed); }},
  };
  return patterns;
}

class DeflateDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DeflateDifferentialTest, ReferenceDecoderReproducesAllPatterns) {
  const int level = GetParam();
  auto codec = MakeCodec("deflate-" + std::to_string(level));
  ASSERT_NE(codec, nullptr);
  for (const Pattern& pattern : AllPatterns()) {
    for (size_t size : {size_t{0}, size_t{1}, size_t{137}, size_t{4096}, size_t{65536}}) {
      SCOPED_TRACE(std::string("pattern=") + pattern.name + " size=" + std::to_string(size) +
                   " level=" + std::to_string(level));
      std::vector<uint8_t> original = pattern.generate(size, 0x1951 + size);
      ByteVec compressed;
      ASSERT_TRUE(codec->Compress(original, &compressed).ok());

      ByteVec reference_out;
      Status st = testref::ReferenceInflate(compressed, &reference_out);
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(reference_out, ByteVec(original.begin(), original.end()))
          << "reference decoder disagrees with our encoder";

      // Cross-check: our own decoder must agree with the reference, too.
      ByteVec own_out;
      ASSERT_TRUE(codec->Decompress(compressed, &own_out).ok());
      EXPECT_EQ(own_out, reference_out);
    }
  }
}

TEST_P(DeflateDifferentialTest, GzipFramingVerifiesThroughReference) {
  const int level = GetParam();
  auto codec = MakeCodec("gzip-" + std::to_string(level));
  ASSERT_NE(codec, nullptr);
  for (const Pattern& pattern : AllPatterns()) {
    SCOPED_TRACE(std::string("pattern=") + pattern.name + " level=" + std::to_string(level));
    std::vector<uint8_t> original = pattern.generate(16384, 0x1952);
    ByteVec compressed;
    ASSERT_TRUE(codec->Compress(original, &compressed).ok());

    ByteVec reference_out;
    Status st = testref::ReferenceGunzip(compressed, &reference_out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(reference_out, ByteVec(original.begin(), original.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, DeflateDifferentialTest, ::testing::Values(1, 6, 9),
                         [](const auto& info) { return "level" + std::to_string(info.param); });

TEST(ReferenceInflateSelfTest, DecodesHandBuiltStoredBlock) {
  // BFINAL=1, BTYPE=00, align, LEN=5, NLEN=~5, "hello" — assembled by hand
  // from the RFC, no encoder involved.
  ByteVec stream = {0x01, 0x05, 0x00, 0xfa, 0xff, 'h', 'e', 'l', 'l', 'o'};
  ByteVec out;
  ASSERT_TRUE(testref::ReferenceInflate(stream, &out).ok());
  EXPECT_EQ(out, ByteVec({'h', 'e', 'l', 'l', 'o'}));
}

TEST(ReferenceInflateSelfTest, RejectsCorruptStreams) {
  auto codec = MakeCodec("deflate-6");
  std::vector<uint8_t> original = GenerateTextLike(4096, 7);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(original, &compressed).ok());

  // Truncation must never be accepted as a complete stream.
  for (size_t keep : {size_t{0}, size_t{1}, compressed.size() / 2, compressed.size() - 1}) {
    ByteVec out;
    EXPECT_FALSE(
        testref::ReferenceInflate(ByteSpan(compressed.data(), keep), &out).ok())
        << "accepted a stream truncated to " << keep << " bytes";
  }
  // A reserved block type must be rejected immediately.
  ByteVec reserved = {0x07};  // BFINAL=1, BTYPE=11
  ByteVec out;
  EXPECT_FALSE(testref::ReferenceInflate(reserved, &out).ok());
}

TEST(ReferenceGunzipSelfTest, CatchesTrailerCorruption) {
  auto codec = MakeCodec("gzip-6");
  std::vector<uint8_t> original = GenerateDbTableLike(8192, 11);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(original, &compressed).ok());

  ByteVec bad_crc = compressed;
  bad_crc[bad_crc.size() - 8] ^= 0xff;  // CRC-32 trailer byte
  ByteVec out;
  EXPECT_FALSE(testref::ReferenceGunzip(bad_crc, &out).ok());

  ByteVec bad_size = compressed;
  bad_size[bad_size.size() - 1] ^= 0xff;  // ISIZE trailer byte
  out.clear();
  EXPECT_FALSE(testref::ReferenceGunzip(bad_size, &out).ok());
}

}  // namespace
}  // namespace cdpu
