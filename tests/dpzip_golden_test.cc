// Bit-exact stability of the dpzip bitstream against committed golden
// vectors (ISSUE 7 satellite). The dpzip format is this repo's own wire
// format — nothing external cross-checks it — so an accidental encoder
// change would silently orphan every previously written frame. These tests
// pin the exact bytes: for each corpus case the freshly compressed output
// must equal the committed vector, and the committed vector must decompress
// back to the generated input.
//
// If a test here fails because you changed the bitstream ON PURPOSE,
// regenerate the vectors and commit them with the encoder change:
//   build/tools/dpzip_golden_gen tests/golden/dpzip

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "tests/golden/dpzip_corpus.h"

namespace cdpu {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(CDPU_GOLDEN_DIR) + "/dpzip/" + name + ".bin";
}

bool ReadVector(const std::string& path, ByteVec* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

class DpzipGoldenTest : public ::testing::TestWithParam<golden::GoldenCase> {};

TEST_P(DpzipGoldenTest, CompressedOutputIsBitExact) {
  const golden::GoldenCase& c = GetParam();
  ByteVec want;
  ASSERT_TRUE(ReadVector(GoldenPath(c.name), &want))
      << "missing golden vector " << GoldenPath(c.name)
      << " — regenerate with: build/tools/dpzip_golden_gen tests/golden/dpzip";

  std::vector<uint8_t> input = golden::GenerateInput(c);
  DpzipCodec codec = golden::MakeCaseCodec(c);
  ByteVec got;
  Result<size_t> r = codec.Compress(input, &got);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(got, want)
      << "dpzip bitstream changed for corpus case \"" << c.name << "\" ("
      << got.size() << " vs " << want.size() << " golden bytes). If this is an "
      << "intentional format change, regenerate the vectors and commit them: "
      << "build/tools/dpzip_golden_gen tests/golden/dpzip";
}

TEST_P(DpzipGoldenTest, CommittedVectorDecompressesToInput) {
  const golden::GoldenCase& c = GetParam();
  ByteVec vector;
  ASSERT_TRUE(ReadVector(GoldenPath(c.name), &vector))
      << "missing golden vector " << GoldenPath(c.name)
      << " — regenerate with: build/tools/dpzip_golden_gen tests/golden/dpzip";

  std::vector<uint8_t> input = golden::GenerateInput(c);
  DpzipCodec codec = golden::MakeCaseCodec(c);
  ByteVec out;
  Result<size_t> r = codec.Decompress(vector, &out);
  ASSERT_TRUE(r.ok()) << "committed vector for \"" << c.name
                      << "\" no longer decodes: " << r.status().ToString()
                      << " — the decoder broke compatibility with shipped frames";
  EXPECT_EQ(out, ByteVec(input.begin(), input.end()))
      << "decoder output diverged for corpus case \"" << c.name << "\"";
}

INSTANTIATE_TEST_SUITE_P(Corpus, DpzipGoldenTest, ::testing::ValuesIn(golden::Corpus()),
                         [](const ::testing::TestParamInfo<golden::GoldenCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace cdpu
