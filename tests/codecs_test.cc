// Tests for the software codec suite: round-trip correctness across data
// patterns and sizes (parameterised), corruption handling, entropy tools,
// Huffman construction invariants, and FSE round trips.

#include <gtest/gtest.h>

#include "src/codecs/codec.h"
#include "src/codecs/deflate_codec.h"
#include "src/codecs/entropy.h"
#include "src/codecs/fse.h"
#include "src/codecs/huffman_coder.h"
#include "src/codecs/lz4_codec.h"
#include "src/codecs/mini_zstd.h"
#include "src/codecs/snappy_codec.h"
#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

// ---------------------------------------------------------------- entropy

TEST(EntropyTest, UniformRandomNearEight) {
  std::vector<uint8_t> data(64 * 1024);
  Rng rng(1);
  for (auto& b : data) {
    b = rng.NextByte();
  }
  EXPECT_GT(ShannonEntropy(data), 7.9);
}

TEST(EntropyTest, ConstantIsZero) {
  std::vector<uint8_t> data(4096, 0x7f);
  EXPECT_DOUBLE_EQ(ShannonEntropy(data), 0.0);
}

TEST(EntropyTest, TwoSymbolFairCoinIsOne) {
  std::vector<uint8_t> data(8192);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i % 2;
  }
  EXPECT_NEAR(ShannonEntropy(data), 1.0, 1e-9);
}

TEST(EntropyTest, GeneratorHitsTarget) {
  for (double target : {1.0, 2.0, 4.0, 6.0, 7.5}) {
    std::vector<uint8_t> data = GenerateWithEntropy(target, 256 * 1024, 7);
    EXPECT_NEAR(ShannonEntropy(data), target, 0.35) << "target " << target;
  }
}

// ---------------------------------------------------------------- huffman

TEST(HuffmanTest, LengthsSatisfyKraftEquality) {
  std::vector<uint32_t> freqs(256);
  Rng rng(2);
  for (auto& f : freqs) {
    f = static_cast<uint32_t>(rng.Uniform(1000));
  }
  freqs[0] = 100000;  // force skew
  std::vector<uint8_t> lengths = BuildHuffmanLengths(freqs, 15);
  uint64_t kraft = 0;
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (freqs[i] > 0) {
      ASSERT_GT(lengths[i], 0u);
      ASSERT_LE(lengths[i], 15u);
      kraft += uint64_t{1} << (15 - lengths[i]);
    }
  }
  EXPECT_EQ(kraft, uint64_t{1} << 15);
}

TEST(HuffmanTest, DepthLimitEnforced) {
  // Fibonacci-like frequencies force deep trees without a limit.
  std::vector<uint32_t> freqs;
  uint32_t a = 1;
  uint32_t b = 1;
  for (int i = 0; i < 32; ++i) {
    freqs.push_back(a);
    uint32_t next = a + b;
    a = b;
    b = next;
  }
  std::vector<uint8_t> lengths = BuildHuffmanLengths(freqs, 11);
  uint64_t kraft = 0;
  for (uint8_t l : lengths) {
    ASSERT_LE(l, 11u);
    ASSERT_GT(l, 0u);
    kraft += uint64_t{1} << (11 - l);
  }
  EXPECT_EQ(kraft, uint64_t{1} << 11);
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<uint32_t> freqs(256, 0);
  freqs[65] = 10;
  std::vector<uint8_t> lengths = BuildHuffmanLengths(freqs, 15);
  EXPECT_EQ(lengths[65], 1);
}

TEST(HuffmanTest, CanonicalCodesArePrefixFree) {
  std::vector<uint32_t> freqs = {50, 30, 10, 5, 3, 2};
  std::vector<uint8_t> lengths = BuildHuffmanLengths(freqs, 15);
  std::vector<uint16_t> codes;
  ASSERT_TRUE(AssignCanonicalCodes(lengths, &codes).ok());
  for (size_t i = 0; i < codes.size(); ++i) {
    for (size_t j = 0; j < codes.size(); ++j) {
      if (i == j || lengths[i] == 0 || lengths[j] == 0 || lengths[i] > lengths[j]) {
        continue;
      }
      // code i must not be a prefix of code j.
      uint16_t prefix = static_cast<uint16_t>(codes[j] >> (lengths[j] - lengths[i]));
      EXPECT_FALSE(prefix == codes[i] && i != j) << i << " prefixes " << j;
    }
  }
}

TEST(HuffmanTest, DecoderRejectsOversubscribed) {
  std::vector<uint8_t> lengths = {1, 1, 1};  // 3 codes of length 1
  HuffmanDecoder dec;
  EXPECT_FALSE(dec.Init(lengths).ok());
}

TEST(HuffmanTest, DecoderRoundTrip) {
  std::vector<uint32_t> freqs(256, 1);
  freqs['e'] = 500;
  freqs[' '] = 300;
  std::vector<uint8_t> lengths = BuildHuffmanLengths(freqs, 15);
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.Init(lengths).ok());
  std::vector<uint16_t> codes;
  ASSERT_TRUE(AssignCanonicalCodes(lengths, &codes).ok());
  for (int sym : {0, static_cast<int>('e'), static_cast<int>(' '), 255}) {
    uint32_t peeked = ReverseBits(codes[sym], lengths[sym]);
    uint32_t len = 0;
    EXPECT_EQ(dec.Decode(peeked, &len), sym);
    EXPECT_EQ(len, lengths[sym]);
  }
}

// -------------------------------------------------------------------- fse

TEST(FseTest, NormalizeSumsToTableSize) {
  std::vector<uint32_t> freqs = {1000, 500, 250, 125, 60, 30, 3, 1};
  std::vector<uint32_t> norm = FseNormalize(freqs, 9);
  uint64_t sum = 0;
  for (size_t i = 0; i < norm.size(); ++i) {
    if (freqs[i] > 0) {
      EXPECT_GE(norm[i], 1u);
    }
    sum += norm[i];
  }
  EXPECT_EQ(sum, 512u);
}

TEST(FseTest, EncodeDecodeRoundTrip) {
  Rng rng(11);
  std::vector<uint8_t> symbols(5000);
  for (auto& s : symbols) {
    // Skewed small alphabet, typical of LZ bucket codes.
    s = static_cast<uint8_t>(rng.Uniform(3) == 0 ? rng.Uniform(16) : rng.Uniform(4));
  }
  std::vector<uint8_t> blob;
  ASSERT_TRUE(FseCompressBlock(symbols, 9, &blob).ok());
  size_t consumed = 0;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(FseDecompressBlock(blob, &consumed, &decoded).ok());
  EXPECT_EQ(consumed, blob.size());
  EXPECT_EQ(decoded, symbols);
}

TEST(FseTest, SingleSymbolStream) {
  std::vector<uint8_t> symbols(100, 7);
  std::vector<uint8_t> blob;
  ASSERT_TRUE(FseCompressBlock(symbols, 9, &blob).ok());
  size_t consumed = 0;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(FseDecompressBlock(blob, &consumed, &decoded).ok());
  EXPECT_EQ(decoded, symbols);
}

TEST(FseTest, EmptyStream) {
  std::vector<uint8_t> blob;
  ASSERT_TRUE(FseCompressBlock({}, 9, &blob).ok());
  size_t consumed = 0;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(FseDecompressBlock(blob, &consumed, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(FseTest, CompressesSkewedData) {
  std::vector<uint8_t> symbols(8000);
  Rng rng(13);
  for (auto& s : symbols) {
    s = rng.Uniform(10) == 0 ? 1 : 0;  // ~0.47 bits/symbol ideal
  }
  std::vector<uint8_t> blob;
  ASSERT_TRUE(FseCompressBlock(symbols, 9, &blob).ok());
  EXPECT_LT(blob.size(), symbols.size() / 4);
}

TEST(FseTest, EmbeddedBlockConsumedExactly) {
  std::vector<uint8_t> symbols(300, 2);
  symbols[5] = 9;
  std::vector<uint8_t> blob;
  ASSERT_TRUE(FseCompressBlock(symbols, 9, &blob).ok());
  size_t block_len = blob.size();
  blob.push_back(0xde);  // trailing foreign bytes
  blob.push_back(0xad);
  size_t consumed = 0;
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(FseDecompressBlock(blob, &consumed, &decoded).ok());
  EXPECT_EQ(consumed, block_len);
  EXPECT_EQ(decoded, symbols);
}

// ----------------------------------------------------- codec round trips

struct RoundTripCase {
  std::string codec;
  std::string pattern;
  size_t size;
};

class CodecRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

std::vector<uint8_t> MakePattern(const std::string& pattern, size_t size) {
  if (pattern == "text") {
    return GenerateTextLike(size, 101);
  }
  if (pattern == "db") {
    return GenerateDbTableLike(size, 102);
  }
  if (pattern == "binary") {
    return GenerateBinaryLike(size, 103);
  }
  if (pattern == "xml") {
    return GenerateXmlLike(size, 104);
  }
  if (pattern == "image") {
    return GenerateImageLike(size, 105);
  }
  if (pattern == "random") {
    Rng rng(106);
    std::vector<uint8_t> d(size);
    for (auto& b : d) {
      b = rng.NextByte();
    }
    return d;
  }
  if (pattern == "zeros") {
    return std::vector<uint8_t>(size, 0);
  }
  if (pattern == "repeat3") {
    std::vector<uint8_t> d(size);
    for (size_t i = 0; i < size; ++i) {
      d[i] = "abc"[i % 3];
    }
    return d;
  }
  return {};
}

TEST_P(CodecRoundTripTest, RoundTrips) {
  const RoundTripCase& c = GetParam();
  std::unique_ptr<Codec> codec = MakeCodec(c.codec);
  ASSERT_NE(codec, nullptr) << c.codec;
  std::vector<uint8_t> data = MakePattern(c.pattern, c.size);

  ByteVec compressed;
  Result<size_t> cr = codec->Compress(data, &compressed);
  ASSERT_TRUE(cr.ok()) << cr.status().ToString();

  ByteVec decompressed;
  Result<size_t> dr = codec->Decompress(compressed, &decompressed);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  ASSERT_EQ(decompressed.size(), data.size());
  EXPECT_EQ(decompressed, data);
}

std::vector<RoundTripCase> AllRoundTripCases() {
  std::vector<RoundTripCase> cases;
  for (const char* codec : {"deflate-1", "deflate-6", "lz4", "snappy", "zstd-1", "zstd-6"}) {
    for (const char* pattern :
         {"text", "db", "binary", "xml", "image", "random", "zeros", "repeat3"}) {
      for (size_t size : {size_t{0}, size_t{1}, size_t{100}, size_t{4096}, size_t{65536}}) {
        cases.push_back({codec, pattern, size});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTripTest, ::testing::ValuesIn(AllRoundTripCases()),
                         [](const ::testing::TestParamInfo<RoundTripCase>& info) {
                           std::string name = info.param.codec + "_" + info.param.pattern + "_" +
                                              std::to_string(info.param.size);
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// ------------------------------------------------------ ratio expectations

TEST(CodecRatioTest, StrongCodecsBeatLightweightOnText) {
  std::vector<uint8_t> text = GenerateTextLike(64 * 1024, 55);
  double deflate = MakeCodec("deflate-1")->MeasureRatio(text);
  double zstd = MakeCodec("zstd-1")->MeasureRatio(text);
  double lz4 = MakeCodec("lz4")->MeasureRatio(text);
  double snappy = MakeCodec("snappy")->MeasureRatio(text);
  EXPECT_LT(deflate, lz4);
  EXPECT_LT(deflate, snappy);
  EXPECT_LT(zstd, lz4);
  EXPECT_LT(deflate, 0.6);
  EXPECT_LT(lz4, 1.0);
}

TEST(CodecRatioTest, HigherLevelsCompressBetter) {
  std::vector<uint8_t> text = GenerateTextLike(64 * 1024, 56);
  double l1 = MakeCodec("deflate-1")->MeasureRatio(text);
  double l9 = MakeCodec("deflate-9")->MeasureRatio(text);
  EXPECT_LE(l9, l1 + 0.005);
}

TEST(CodecRatioTest, RandomDataDoesNotExplode) {
  Rng rng(57);
  std::vector<uint8_t> data(16 * 1024);
  for (auto& b : data) {
    b = rng.NextByte();
  }
  for (const char* name : {"deflate-1", "lz4", "snappy", "zstd-1"}) {
    double ratio = MakeCodec(name)->MeasureRatio(data);
    EXPECT_LT(ratio, 1.10) << name;  // bounded expansion
    EXPECT_GT(ratio, 0.95) << name;  // can't compress noise
  }
}

TEST(CodecRatioTest, LargerChunksCompressBetter) {
  // Figure 7/9: 64K chunks beat 4K chunks for windowed codecs.
  std::vector<uint8_t> text = GenerateTextLike(64 * 1024, 58);
  auto deflate = MakeCodec("deflate-1");
  ByteVec out4k;
  for (size_t off = 0; off < text.size(); off += 4096) {
    ByteSpan chunk(text.data() + off, 4096);
    ASSERT_TRUE(deflate->Compress(chunk, &out4k).ok());
  }
  double ratio_4k = static_cast<double>(out4k.size()) / text.size();
  double ratio_64k = deflate->MeasureRatio(text);
  EXPECT_LT(ratio_64k, ratio_4k);
}

// --------------------------------------------------------- error handling

TEST(CodecErrorTest, DecodersRejectGarbage) {
  Rng rng(59);
  std::vector<uint8_t> garbage(1024);
  for (auto& b : garbage) {
    b = rng.NextByte();
  }
  for (const char* name : {"lz4", "snappy", "zstd-1"}) {
    std::unique_ptr<Codec> codec = MakeCodec(name);
    ByteVec out;
    Result<size_t> r = codec->Decompress(garbage, &out);
    // Either a clean error or (for formats without checksums) some output —
    // never a crash. LZ4/snappy/zstd all validate structure.
    if (r.ok()) {
      SUCCEED();
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kCorruptData) << name;
    }
  }
}

TEST(CodecErrorTest, TruncatedStreamRejected) {
  std::vector<uint8_t> data = GenerateTextLike(8192, 60);
  for (const char* name : {"deflate-1", "lz4", "snappy", "zstd-1"}) {
    std::unique_ptr<Codec> codec = MakeCodec(name);
    ByteVec compressed;
    ASSERT_TRUE(codec->Compress(data, &compressed).ok());
    compressed.resize(compressed.size() / 2);
    ByteVec out;
    Result<size_t> r = codec->Decompress(compressed, &out);
    if (r.ok()) {
      // Without framing checksums a truncation may decode a prefix, but
      // must not produce the full original.
      EXPECT_NE(out, data) << name;
    }
  }
}

// ---------------------------------------------------------- zstd staging

TEST(MiniZstdTest, StageTimingsPopulated) {
  MiniZstdCodec codec(3);
  std::vector<uint8_t> data = GenerateTextLike(128 * 1024, 61);
  ByteVec out;
  ASSERT_TRUE(codec.Compress(data, &out).ok());
  const ZstdStageTimings& t = codec.last_timings();
  EXPECT_GT(t.lz77_ns, 0u);
  EXPECT_GT(t.total_ns(), t.lz77_ns);
}

TEST(MiniZstdTest, Lz77DominatesAtHighLevels) {
  // Figure 2: LZ77 share grows with level.
  std::vector<uint8_t> data = GenerateTextLike(128 * 1024, 62);
  MiniZstdCodec fast(1);
  MiniZstdCodec slow(9);
  ByteVec out;
  ASSERT_TRUE(fast.Compress(data, &out).ok());
  double fast_share = static_cast<double>(fast.last_timings().lz77_ns) /
                      static_cast<double>(fast.last_timings().total_ns());
  out.clear();
  ASSERT_TRUE(slow.Compress(data, &out).ok());
  double slow_share = static_cast<double>(slow.last_timings().lz77_ns) /
                      static_cast<double>(slow.last_timings().total_ns());
  EXPECT_GT(slow_share, fast_share * 0.9);
}

TEST(CodecFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeCodec("no-such-codec"), nullptr);
}

}  // namespace
}  // namespace cdpu
