// Tests for the bench harness: registry semantics (duplicate / unknown
// names) and a smoke pass that runs every registered experiment at the
// quick preset and validates the JSON document each one produces.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bench/harness/driver.h"
#include "bench/harness/experiment.h"
#include "src/core/dpzip_codec.h"
#include "src/obs/report.h"

namespace cdpu {
namespace bench {
namespace {

void NopExperiment(ExperimentContext&) {}

ExperimentInfo MakeInfo(const std::string& name) {
  ExperimentInfo info;
  info.name = name;
  info.title = "Title " + name;
  info.description = "Description " + name;
  info.fn = NopExperiment;
  return info;
}

TEST(ExperimentRegistryTest, RegisterAndFind) {
  ExperimentRegistry registry;
  ASSERT_TRUE(registry.Register(MakeInfo("fig08")).ok());
  ASSERT_TRUE(registry.Register(MakeInfo("fig09")).ok());
  EXPECT_EQ(registry.size(), 2u);

  auto found = registry.Find("fig08");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->title, "Title fig08");
}

TEST(ExperimentRegistryTest, RejectsDuplicateName) {
  ExperimentRegistry registry;
  ASSERT_TRUE(registry.Register(MakeInfo("fig08")).ok());
  Status dup = registry.Register(MakeInfo("fig08"));
  EXPECT_FALSE(dup.ok());
  EXPECT_NE(dup.message().find("fig08"), std::string::npos);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ExperimentRegistryTest, RejectsIncompleteInfo) {
  ExperimentRegistry registry;
  ExperimentInfo no_name = MakeInfo("");
  EXPECT_FALSE(registry.Register(no_name).ok());

  ExperimentInfo no_fn = MakeInfo("fig08");
  no_fn.fn = nullptr;
  EXPECT_FALSE(registry.Register(no_fn).ok());
}

TEST(ExperimentRegistryTest, UnknownNameNamesNearestCandidate) {
  ExperimentRegistry registry;
  ASSERT_TRUE(registry.Register(MakeInfo("fig08")).ok());
  ASSERT_TRUE(registry.Register(MakeInfo("fig14b")).ok());

  auto missing = registry.Find("fig8");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("fig8"), std::string::npos);
  // The error should steer the user towards a close registered name.
  EXPECT_NE(missing.status().message().find("fig08"), std::string::npos);
}

TEST(ExperimentRegistryTest, AllIsSortedByName) {
  ExperimentRegistry registry;
  ASSERT_TRUE(registry.Register(MakeInfo("zeta")).ok());
  ASSERT_TRUE(registry.Register(MakeInfo("alpha")).ok());
  ASSERT_TRUE(registry.Register(MakeInfo("mid")).ok());

  auto all = registry.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "alpha");
  EXPECT_EQ(all[1]->name, "mid");
  EXPECT_EQ(all[2]->name, "zeta");
}

TEST(GlobalRegistryTest, HoldsEveryFigureExperiment) {
  const auto all = ExperimentRegistry::Global().All();
  std::set<std::string> names;
  for (const auto* info : all) {
    names.insert(info->name);
  }
  // Spot-check the full figure sweep rather than pinning an exact count so
  // new experiments can land without touching this test.
  for (const char* expected :
       {"table01", "table02", "fig02", "fig07", "fig08", "fig09", "fig11", "fig12", "fig14",
        "fig14b", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fault_degradation",
        "ablation_dictionary", "ablation_hash_table", "ablation_huffman", "codecs_wallclock"}) {
    EXPECT_TRUE(names.count(expected)) << "missing experiment: " << expected;
  }
}

TEST(ValidateBenchDocumentTest, RejectsStructurallyBrokenDocuments) {
  obs::Reporter reporter;
  reporter.SetRun("fig08", "Figure 8", "4 KiB microbenchmark", "quick");
  auto& table = reporter.AddTable("throughput", "Throughput",
                                  {obs::Column("device"), obs::Column("gbps", "GB/s", 2)});
  table.AddRow({obs::Json("dpzip"), obs::Json(7.25)});
  obs::Json good = reporter.ToJson();
  EXPECT_TRUE(ValidateBenchDocument(good).ok());
  EXPECT_FALSE(ValidateBenchDocument(obs::Json(42)).ok());

  obs::Json wrong_version = good;
  wrong_version["schema_version"] = obs::Json(99);
  EXPECT_FALSE(ValidateBenchDocument(wrong_version).ok());

  obs::Json empty_name = good;
  empty_name["experiment"] = obs::Json("");
  EXPECT_FALSE(ValidateBenchDocument(empty_name).ok());

  // A reporter that never emitted a table must fail validation.
  obs::Reporter empty_reporter;
  empty_reporter.SetRun("fig08", "Figure 8", "4 KiB microbenchmark", "quick");
  EXPECT_FALSE(ValidateBenchDocument(empty_reporter.ToJson()).ok());

  // A row that does not carry exactly the declared columns must fail.
  obs::Json ragged = good;
  obs::Json bad_table = obs::Json::Object();
  bad_table["name"] = obs::Json("ragged");
  obs::Json columns = obs::Json::Array();
  columns.push_back(obs::Json("a"));
  columns.push_back(obs::Json("b"));
  bad_table["columns"] = std::move(columns);
  obs::Json row = obs::Json::Object();
  row["a"] = obs::Json(1);
  obs::Json rows = obs::Json::Array();
  rows.push_back(std::move(row));
  bad_table["rows"] = std::move(rows);
  obs::Json tables = obs::Json::Array();
  tables.push_back(std::move(bad_table));
  ragged["tables"] = std::move(tables);
  EXPECT_FALSE(ValidateBenchDocument(ragged).ok());
}

// Every registered experiment must complete at the quick preset and emit a
// schema-valid document with at least one table. This is the same gate the
// CI bench-smoke job applies to the emitted BENCH_*.json files.
TEST(ExperimentSmokeTest, EveryExperimentProducesValidJsonAtQuickPreset) {
  DpzipCodec::RegisterWithFactory();
  const auto all = ExperimentRegistry::Global().All();
  ASSERT_GE(all.size(), 21u);
  for (const auto* info : all) {
    SCOPED_TRACE(info->name);
    obs::Reporter reporter;
    reporter.SetRun(info->name, info->title, info->description, "quick");
    ExperimentContext ctx(Preset::kQuick, &reporter);
    info->fn(ctx);

    obs::Json doc = reporter.ToJson();
    Status valid = ValidateBenchDocument(doc);
    EXPECT_TRUE(valid.ok()) << valid.message();

    // The document must survive a serialise/parse round trip unchanged.
    auto reparsed = obs::Json::Parse(doc.Dump(2));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
    EXPECT_EQ(reparsed->Dump(), doc.Dump());
  }
}

// The live-trace breakdown must be self-consistent: the runtime phases are
// contiguous per request, so the sum of per-phase means equals the measured
// end-to-end mean (up to float error), and the p50 sum lands near the e2e
// p50 (percentiles are not additive, hence the looser bound).
TEST(Fig11LiveBreakdownTest, PhaseSumsMatchEndToEndLatency) {
  DpzipCodec::RegisterWithFactory();
  auto found = ExperimentRegistry::Global().Find("fig11_live_breakdown");
  ASSERT_TRUE(found.ok());

  obs::Reporter reporter;
  reporter.SetRun((*found)->name, (*found)->title, (*found)->description, "quick");
  ExperimentContext ctx(Preset::kQuick, &reporter);
  (*found)->fn(ctx);

  obs::Json metrics = reporter.metrics().ToJson();
  const obs::Json* gauges = metrics.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  auto gauge = [&](const char* name) {
    const obs::Json* g = gauges->Find(name);
    EXPECT_NE(g, nullptr) << "missing gauge " << name;
    return g != nullptr ? g->AsDouble() : 0.0;
  };

  double e2e_mean = gauge("trace.e2e_mean_us");
  double mean_sum = gauge("trace.phase_mean_sum_us");
  ASSERT_GT(e2e_mean, 0);
  EXPECT_NEAR(mean_sum / e2e_mean, 1.0, 0.02);

  double e2e_p50 = gauge("trace.e2e_p50_us");
  double p50_sum = gauge("trace.phase_p50_sum_us");
  ASSERT_GT(e2e_p50, 0);
  EXPECT_NEAR(p50_sum / e2e_p50, 1.0, 0.10);

  const obs::Json* counters = metrics.Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::Json* complete = counters->Find("trace.requests_complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_GT(complete->AsUint(), 0u);
}

}  // namespace
}  // namespace bench
}  // namespace cdpu
