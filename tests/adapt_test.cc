// Unit tests for the adaptive compression policy engine (ISSUE 9): the
// payload profiler's signal quality, the STORE bypass gate, profile-skip
// thresholds, EWMA adaptation from completion telemetry, and the bias knobs
// (global and per-tenant). Everything here is deterministic: payloads come
// from the seeded datagen dial, and with ewma_alpha = 1.0 the cost model is
// exactly the last fed sample.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/adapt/policy.h"
#include "src/adapt/profile.h"
#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace adapt {
namespace {

ByteSpan Span(const std::vector<uint8_t>& v) { return ByteSpan(v.data(), v.size()); }

std::vector<uint8_t> RandomBytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(size);
  for (uint8_t& b : data) {
    b = rng.NextByte();
  }
  return data;
}

// ---------------------------------------------------------------- profiler

TEST(AdaptProfileTest, RandomDataProfilesIncompressible) {
  std::vector<uint8_t> data = RandomBytes(32 * 1024, 11);
  PayloadProfile p = ProfilePayload(Span(data), 8 * 1024);
  EXPECT_GT(p.entropy_bits, 7.8);
  EXPECT_LT(p.match_rate, 0.05);
  EXPECT_GE(p.sampled_bytes, kMinProbeBytes);
  EXPECT_LE(p.sampled_bytes, kMaxProbeBytes);
}

TEST(AdaptProfileTest, TextLikeDataProfilesCompressible) {
  std::vector<uint8_t> data = GenerateTextLike(32 * 1024, 12);
  PayloadProfile p = ProfilePayload(Span(data), 8 * 1024);
  EXPECT_LT(p.entropy_bits, 6.5);
  EXPECT_GT(p.match_rate, 0.2);
}

TEST(AdaptProfileTest, EntropyDialTracksThroughProbe) {
  for (double target : {1.0, 3.5, 6.0}) {
    std::vector<uint8_t> data = GenerateWithEntropy(target, 32 * 1024, 13);
    PayloadProfile p = ProfilePayload(Span(data), 16 * 1024);
    EXPECT_NEAR(p.entropy_bits, target, 0.5) << "dial " << target;
  }
}

TEST(AdaptProfileTest, ProbeWindowIsClampedToPaperBand) {
  std::vector<uint8_t> data = RandomBytes(64 * 1024, 14);
  EXPECT_EQ(ProfilePayload(Span(data), 1).sampled_bytes, kMinProbeBytes);
  EXPECT_EQ(ProfilePayload(Span(data), 1 << 20).sampled_bytes, kMaxProbeBytes);
  // Payloads shorter than the window are probed in full.
  std::vector<uint8_t> tiny = RandomBytes(1000, 15);
  EXPECT_EQ(ProfilePayload(Span(tiny), 8 * 1024).sampled_bytes, tiny.size());
}

TEST(AdaptProfileTest, EmptyPayloadIsAllZero) {
  PayloadProfile p = ProfilePayload(ByteSpan(), 8 * 1024);
  EXPECT_EQ(p.entropy_bits, 0.0);
  EXPECT_EQ(p.match_rate, 0.0);
  EXPECT_EQ(p.sampled_bytes, 0u);
}

// ------------------------------------------------------------ class / bias

TEST(AdaptPolicyTest, EntropyClassBoundaries) {
  EXPECT_EQ(EntropyClassOf(0.0), 0);
  EXPECT_EQ(EntropyClassOf(2.99), 0);
  EXPECT_EQ(EntropyClassOf(3.0), 1);
  EXPECT_EQ(EntropyClassOf(6.49), 1);
  EXPECT_EQ(EntropyClassOf(6.5), 2);
  EXPECT_EQ(EntropyClassOf(8.0), 2);
}

TEST(AdaptPolicyTest, BiasNamesRoundTrip) {
  for (AdaptBias bias : {AdaptBias::kThroughput, AdaptBias::kBalanced, AdaptBias::kRatio}) {
    AdaptBias parsed = AdaptBias::kBalanced;
    ASSERT_TRUE(ParseAdaptBias(AdaptBiasName(bias), &parsed)) << AdaptBiasName(bias);
    EXPECT_EQ(parsed, bias);
  }
  AdaptBias parsed;
  EXPECT_FALSE(ParseAdaptBias("speed", &parsed));
}

// ------------------------------------------------------------- decisions

TEST(AdaptPolicyTest, IncompressibleDataIsBypassed) {
  AdaptivePolicyEngine engine(AdaptOptions{});
  std::vector<uint8_t> data = RandomBytes(64 * 1024, 21);
  AdaptDecision d = engine.Decide(Span(data));
  EXPECT_EQ(d.action, AdaptAction::kStore);
  EXPECT_TRUE(d.codec.empty());
  EXPECT_EQ(d.entropy_class, 2);
  EXPECT_FALSE(d.profile_skipped);

  AdaptStats s = engine.Snapshot();
  EXPECT_EQ(s.decisions, 1u);
  EXPECT_EQ(s.profiled, 1u);
  EXPECT_EQ(s.bypassed, 1u);
  EXPECT_EQ(s.bypass_bytes, data.size());
}

TEST(AdaptPolicyTest, CompressibleDataGetsACandidateCodec) {
  AdaptOptions opts;
  AdaptivePolicyEngine engine(opts);
  std::vector<uint8_t> data = GenerateTextLike(64 * 1024, 22);
  AdaptDecision d = engine.Decide(Span(data));
  EXPECT_EQ(d.action, AdaptAction::kCompress);
  EXPECT_FALSE(d.codec.empty());
  bool in_pool = false;
  for (const std::string& c : opts.candidates) {
    in_pool |= c == d.codec;
  }
  EXPECT_TRUE(in_pool) << d.codec;
  EXPECT_GT(d.ratio_estimate, 0.0);
  EXPECT_LT(d.ratio_estimate, 1.5);
  EXPECT_EQ(engine.Snapshot().bypassed, 0u);
}

TEST(AdaptPolicyTest, SmallPayloadsSkipProfiling) {
  AdaptivePolicyEngine engine(AdaptOptions{});
  std::vector<uint8_t> data = RandomBytes(256, 23);  // below min_profile_bytes
  AdaptDecision d = engine.Decide(Span(data));
  EXPECT_EQ(d.action, AdaptAction::kCompress);
  EXPECT_TRUE(d.profile_skipped);
  EXPECT_EQ(d.codec, AdaptOptions{}.default_codec);

  AdaptStats s = engine.Snapshot();
  EXPECT_EQ(s.profiled, 0u);
  EXPECT_EQ(s.profile_skipped, 1u);
}

TEST(AdaptPolicyTest, DisabledEngineDegradesToDefaultCodec) {
  AdaptOptions opts;
  opts.enabled = false;
  AdaptivePolicyEngine engine(opts);
  std::vector<uint8_t> data = RandomBytes(64 * 1024, 24);  // would bypass if enabled
  AdaptDecision d = engine.Decide(Span(data));
  EXPECT_EQ(d.action, AdaptAction::kCompress);
  EXPECT_TRUE(d.profile_skipped);
  EXPECT_EQ(d.codec, opts.default_codec);
  EXPECT_EQ(engine.Snapshot().profiled, 0u);
}

TEST(AdaptPolicyTest, BypassOnlyModeStillStoresRandomData) {
  AdaptOptions opts;
  opts.mode = AdaptMode::kBypassOnly;
  AdaptivePolicyEngine engine(opts);

  std::vector<uint8_t> random = RandomBytes(64 * 1024, 25);
  EXPECT_EQ(engine.Decide(Span(random)).action, AdaptAction::kStore);

  std::vector<uint8_t> text = GenerateTextLike(64 * 1024, 26);
  AdaptDecision d = engine.Decide(Span(text));
  EXPECT_EQ(d.action, AdaptAction::kCompress);
  EXPECT_EQ(d.codec, opts.default_codec);  // no model-driven selection
}

TEST(AdaptPolicyTest, BogusCandidatesAreDroppedAtConstruction) {
  AdaptOptions opts;
  opts.candidates = {"nosuchcodec", "lz4"};
  AdaptivePolicyEngine engine(opts);
  std::vector<uint8_t> text = GenerateTextLike(64 * 1024, 27);
  for (int i = 0; i < 8; ++i) {
    AdaptDecision d = engine.Decide(Span(text));
    EXPECT_NE(d.codec, "nosuchcodec");
  }
}

// ----------------------------------------------------- telemetry feedback

// With ewma_alpha = 1.0 the model state is exactly the last OnCompletion
// sample, so routing outcomes are fully determined by what we feed.
AdaptOptions TwoCandidateOptions() {
  AdaptOptions opts;
  opts.candidates = {"lz4", "snappy"};
  opts.default_codec = "lz4";
  opts.ewma_alpha = 1.0;
  return opts;
}

// Low-entropy payload: class 0, never bypassed.
std::vector<uint8_t> LowEntropyPayload() { return GenerateWithEntropy(1.0, 32 * 1024, 31); }

TEST(AdaptPolicyTest, FeedbackRedirectsRouting) {
  AdaptOptions opts = TwoCandidateOptions();
  opts.bias = AdaptBias::kThroughput;
  AdaptivePolicyEngine engine(opts);
  std::vector<uint8_t> payload = LowEntropyPayload();
  const uint8_t klass = 0;

  // lz4 measures fast, snappy measures slow; both compress equally well.
  engine.OnCompletion("lz4", klass, 1'000'000, 500'000, 1'000'000);     // 1000 B/us
  engine.OnCompletion("snappy", klass, 1'000'000, 500'000, 100'000'000);  // 10 B/us
  EXPECT_EQ(engine.Decide(Span(payload)).codec, "lz4");

  // The live workload flips: lz4 collapses, snappy speeds up.
  engine.OnCompletion("lz4", klass, 1'000'000, 500'000, 100'000'000);   // 10 B/us
  engine.OnCompletion("snappy", klass, 1'000'000, 500'000, 1'000'000);  // 1000 B/us
  EXPECT_EQ(engine.Decide(Span(payload)).codec, "snappy");

  AdaptStats s = engine.Snapshot();
  EXPECT_EQ(s.feedback, 4u);
}

TEST(AdaptPolicyTest, RatioBiasPrefersTheDenserCodec) {
  AdaptOptions opts = TwoCandidateOptions();
  opts.bias = AdaptBias::kRatio;
  AdaptivePolicyEngine engine(opts);
  std::vector<uint8_t> payload = LowEntropyPayload();

  // Equal throughput; snappy compresses 0.2, lz4 only 0.9.
  engine.OnCompletion("lz4", 0, 1'000'000, 900'000, 10'000'000);
  engine.OnCompletion("snappy", 0, 1'000'000, 200'000, 10'000'000);
  EXPECT_EQ(engine.Decide(Span(payload)).codec, "snappy");
}

TEST(AdaptPolicyTest, TenantBiasHintOverridesGlobalBias) {
  AdaptOptions opts = TwoCandidateOptions();
  opts.bias = AdaptBias::kThroughput;
  opts.tenant_bias = {{/*tenant=*/7, AdaptBias::kRatio}};
  AdaptivePolicyEngine engine(opts);
  std::vector<uint8_t> payload = LowEntropyPayload();

  // lz4: much faster, poor ratio. snappy: slow, excellent ratio.
  engine.OnCompletion("lz4", 0, 1'000'000, 900'000, 1'000'000);      // 1000 B/us, 0.9
  engine.OnCompletion("snappy", 0, 1'000'000, 200'000, 100'000'000);  // 10 B/us, 0.2

  EXPECT_EQ(engine.Decide(Span(payload), /*tenant=*/0).codec, "lz4");
  EXPECT_EQ(engine.Decide(Span(payload), /*tenant=*/7).codec, "snappy");
}

TEST(AdaptPolicyTest, FixedTrafficFeedsThroughputButNotRatio) {
  AdaptOptions opts = TwoCandidateOptions();
  AdaptivePolicyEngine engine(opts);
  AdaptStats before = engine.Snapshot();
  // Class kEntropyClassNone = fixed-codec traffic: no decision produced it,
  // so the achieved ratio is not attributable to any entropy class.
  engine.OnCompletion("lz4", kEntropyClassNone, 1'000'000, 500'000, 1'000'000);
  AdaptStats after = engine.Snapshot();
  ASSERT_EQ(after.codecs.size(), before.codecs.size());
  for (size_t i = 0; i < after.codecs.size(); ++i) {
    if (after.codecs[i].codec != "lz4") {
      continue;
    }
    for (uint8_t k = 0; k < kNumEntropyClasses; ++k) {
      EXPECT_NE(after.codecs[i].throughput_bytes_per_us[k],
                before.codecs[i].throughput_bytes_per_us[k])
          << "class " << int{k} << " throughput should absorb fixed-traffic samples";
      EXPECT_EQ(after.codecs[i].ratio[k], before.codecs[i].ratio[k])
          << "class " << int{k} << " ratio must not absorb fixed-traffic samples";
    }
  }
}

TEST(AdaptPolicyTest, UnknownCodecFeedbackIsIgnored) {
  AdaptivePolicyEngine engine(AdaptOptions{});
  engine.OnCompletion("store", 2, 1'000'000, 1'000'000, 1'000);
  engine.OnCompletion("nosuchcodec", 0, 1'000'000, 500'000, 1'000);
  EXPECT_EQ(engine.Snapshot().feedback, 0u);
}

// ------------------------------------------------------------ probe cost

TEST(AdaptPolicyTest, ProfilingCostIsRecordedAndBounded) {
  AdaptivePolicyEngine engine(AdaptOptions{});
  std::vector<uint8_t> data = GenerateTextLike(256 * 1024, 41);
  for (int i = 0; i < 16; ++i) {
    engine.Decide(Span(data));
  }
  AdaptStats s = engine.Snapshot();
  ASSERT_EQ(s.profiled, 16u);
  // The probe touches at most 16 KiB; even a slow CI box does that in well
  // under a millisecond. This guards against the probe accidentally scanning
  // the whole payload.
  EXPECT_LT(s.profile_ns_total / s.profiled, 1'000'000u);
}

}  // namespace
}  // namespace adapt
}  // namespace cdpu
