#include "tests/reference_inflate.h"

#include <cstring>
#include <vector>

#include "src/common/crc32.h"

namespace cdpu {
namespace testref {
namespace {

constexpr int kMaxBits = 15;       // longest Huffman code the format allows
constexpr int kMaxLitSyms = 288;   // literal/length alphabet size
constexpr int kMaxDistSyms = 30;   // distance alphabet size
constexpr size_t kOutputCap = size_t{1} << 31;  // runaway-expansion guard

// LSB-first bit reader over the compressed stream (RFC 1951 §3.1.1).
class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  bool GetBits(int n, uint32_t* out) {
    while (bitcnt_ < n) {
      if (pos_ >= data_.size()) {
        return false;
      }
      bitbuf_ |= static_cast<uint64_t>(data_[pos_++]) << bitcnt_;
      bitcnt_ += 8;
    }
    *out = static_cast<uint32_t>(bitbuf_ & ((uint64_t{1} << n) - 1));
    bitbuf_ >>= n;
    bitcnt_ -= n;
    return true;
  }

  // Discards bits up to the next byte boundary (stored-block alignment).
  void AlignToByte() {
    int drop = bitcnt_ & 7;
    bitbuf_ >>= drop;
    bitcnt_ -= drop;
  }

  // Byte-granular read; only valid when byte-aligned.
  bool GetBytes(uint8_t* dst, size_t n) {
    while (n > 0 && bitcnt_ > 0) {
      *dst++ = static_cast<uint8_t>(bitbuf_ & 0xff);
      bitbuf_ >>= 8;
      bitcnt_ -= 8;
      --n;
    }
    if (data_.size() - pos_ < n) {
      return false;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
  uint64_t bitbuf_ = 0;
  int bitcnt_ = 0;
};

// Canonical Huffman decoding table: codes-per-length counts plus the symbols
// sorted by (code length, symbol value) — the count/symbol representation.
struct HuffTable {
  int count[kMaxBits + 1] = {0};
  std::vector<uint16_t> symbol;
  bool complete = false;  // code space exactly filled
};

Status BuildTable(const uint8_t* lengths, int n, HuffTable* table) {
  table->symbol.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i <= kMaxBits; ++i) {
    table->count[i] = 0;
  }
  for (int i = 0; i < n; ++i) {
    if (lengths[i] > kMaxBits) {
      return Status::CorruptData("inflate: code length exceeds 15 bits");
    }
    ++table->count[lengths[i]];
  }
  if (table->count[0] == n) {
    table->complete = false;  // empty code: legal until a symbol is needed
    return Status::Ok();
  }
  // Over-subscription check: each length-l code consumes 2^(15-l) slots of
  // the code space.
  int left = 1;
  for (int len = 1; len <= kMaxBits; ++len) {
    left <<= 1;
    left -= table->count[len];
    if (left < 0) {
      return Status::CorruptData("inflate: over-subscribed Huffman code");
    }
  }
  table->complete = left == 0;
  // Sort symbols into canonical order via per-length offsets.
  int offsets[kMaxBits + 2] = {0};
  for (int len = 1; len <= kMaxBits; ++len) {
    offsets[len + 1] = offsets[len] + table->count[len];
  }
  for (int i = 0; i < n; ++i) {
    if (lengths[i] != 0) {
      table->symbol[static_cast<size_t>(offsets[lengths[i]]++)] = static_cast<uint16_t>(i);
    }
  }
  return Status::Ok();
}

// Bit-by-bit canonical decode: walk the lengths, tracking the first code and
// symbol index of each length. Returns the symbol, or -1 on invalid code /
// truncated input.
int Decode(BitReader& br, const HuffTable& table) {
  int code = 0;
  int first = 0;
  int index = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    uint32_t bit = 0;
    if (!br.GetBits(1, &bit)) {
      return -1;
    }
    code |= static_cast<int>(bit);
    int cnt = table.count[len];
    if (code - cnt < first) {
      return table.symbol[static_cast<size_t>(index + (code - first))];
    }
    index += cnt;
    first += cnt;
    first <<= 1;
    code <<= 1;
  }
  return -1;
}

// Length/distance symbol expansion tables (RFC 1951 §3.2.5).
constexpr uint16_t kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19, 23,
                                      27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195,
                                      227, 258};
constexpr uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                      2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr uint16_t kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,     13,   17,   25,
                                    33,   49,   65,   97,   129,  193,   257,   385,  513,  769,
                                    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385,
                                    24577};
constexpr uint8_t kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
                                    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

Status InflateBlock(BitReader& br, const HuffTable& lit_table, const HuffTable& dist_table,
                    ByteVec* out) {
  for (;;) {
    int sym = Decode(br, lit_table);
    if (sym < 0 || sym > 285) {
      return Status::CorruptData("inflate: invalid literal/length code");
    }
    if (sym < 256) {
      if (out->size() >= kOutputCap) {
        return Status::ResourceExhausted("inflate: output too large");
      }
      out->push_back(static_cast<uint8_t>(sym));
      continue;
    }
    if (sym == 256) {
      return Status::Ok();  // end of block
    }
    // Length code 257..285, then a distance code.
    int li = sym - 257;
    if (li >= 29) {
      return Status::CorruptData("inflate: reserved length code");
    }
    uint32_t extra = 0;
    if (!br.GetBits(kLengthExtra[li], &extra) && kLengthExtra[li] > 0) {
      return Status::CorruptData("inflate: truncated length extra bits");
    }
    size_t length = kLengthBase[li] + extra;

    int dsym = Decode(br, dist_table);
    if (dsym < 0 || dsym >= 30) {
      return Status::CorruptData("inflate: invalid distance code");
    }
    extra = 0;
    if (!br.GetBits(kDistExtra[dsym], &extra) && kDistExtra[dsym] > 0) {
      return Status::CorruptData("inflate: truncated distance extra bits");
    }
    size_t distance = kDistBase[dsym] + extra;
    if (distance > out->size()) {
      return Status::CorruptData("inflate: distance past start of output");
    }
    if (out->size() + length > kOutputCap) {
      return Status::ResourceExhausted("inflate: output too large");
    }
    // Byte-at-a-time copy: overlapping matches (distance < length) replicate.
    size_t src = out->size() - distance;
    for (size_t i = 0; i < length; ++i) {
      out->push_back((*out)[src + i]);
    }
  }
}

Status InflateStored(BitReader& br, ByteVec* out) {
  br.AlignToByte();
  uint8_t hdr[4];
  if (!br.GetBytes(hdr, 4)) {
    return Status::CorruptData("inflate: truncated stored-block header");
  }
  uint16_t len = static_cast<uint16_t>(hdr[0] | (hdr[1] << 8));
  uint16_t nlen = static_cast<uint16_t>(hdr[2] | (hdr[3] << 8));
  if (static_cast<uint16_t>(~len) != nlen) {
    return Status::CorruptData("inflate: stored-block LEN/NLEN mismatch");
  }
  size_t old = out->size();
  if (old + len > kOutputCap) {
    return Status::ResourceExhausted("inflate: output too large");
  }
  out->resize(old + len);
  if (!br.GetBytes(out->data() + old, len)) {
    return Status::CorruptData("inflate: truncated stored block");
  }
  return Status::Ok();
}

const HuffTable& FixedLitTable() {
  static const HuffTable table = [] {
    uint8_t lengths[kMaxLitSyms];
    int i = 0;
    while (i < 144) lengths[i++] = 8;
    while (i < 256) lengths[i++] = 9;
    while (i < 280) lengths[i++] = 7;
    while (i < kMaxLitSyms) lengths[i++] = 8;
    HuffTable t;
    BuildTable(lengths, kMaxLitSyms, &t);
    return t;
  }();
  return table;
}

const HuffTable& FixedDistTable() {
  static const HuffTable table = [] {
    uint8_t lengths[30];
    for (uint8_t& l : lengths) l = 5;
    HuffTable t;
    BuildTable(lengths, 30, &t);
    return t;
  }();
  return table;
}

Status ReadDynamicTables(BitReader& br, HuffTable* lit_table, HuffTable* dist_table) {
  uint32_t hlit = 0;
  uint32_t hdist = 0;
  uint32_t hclen = 0;
  if (!br.GetBits(5, &hlit) || !br.GetBits(5, &hdist) || !br.GetBits(4, &hclen)) {
    return Status::CorruptData("inflate: truncated dynamic-block header");
  }
  int nlit = static_cast<int>(hlit) + 257;
  int ndist = static_cast<int>(hdist) + 1;
  int ncode = static_cast<int>(hclen) + 4;
  if (nlit > kMaxLitSyms || ndist > kMaxDistSyms + 2) {
    return Status::CorruptData("inflate: dynamic header counts out of range");
  }
  // Code-length code lengths arrive in the fixed permuted order.
  static constexpr uint8_t kOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                         11, 4,  12, 3, 13, 2, 14, 1, 15};
  uint8_t cl_lengths[19] = {0};
  for (int i = 0; i < ncode; ++i) {
    uint32_t v = 0;
    if (!br.GetBits(3, &v)) {
      return Status::CorruptData("inflate: truncated code-length lengths");
    }
    cl_lengths[kOrder[i]] = static_cast<uint8_t>(v);
  }
  HuffTable cl_table;
  CDPU_RETURN_IF_ERROR(BuildTable(cl_lengths, 19, &cl_table));

  // Run-length-decode the literal + distance code lengths as one sequence.
  std::vector<uint8_t> lengths(static_cast<size_t>(nlit + ndist), 0);
  int i = 0;
  while (i < nlit + ndist) {
    int sym = Decode(br, cl_table);
    if (sym < 0 || sym > 18) {
      return Status::CorruptData("inflate: invalid code-length symbol");
    }
    if (sym <= 15) {
      lengths[static_cast<size_t>(i++)] = static_cast<uint8_t>(sym);
      continue;
    }
    uint8_t value = 0;
    int repeat = 0;
    uint32_t extra = 0;
    if (sym == 16) {
      if (i == 0) {
        return Status::CorruptData("inflate: repeat with no previous length");
      }
      value = lengths[static_cast<size_t>(i - 1)];
      if (!br.GetBits(2, &extra)) {
        return Status::CorruptData("inflate: truncated repeat count");
      }
      repeat = 3 + static_cast<int>(extra);
    } else if (sym == 17) {
      if (!br.GetBits(3, &extra)) {
        return Status::CorruptData("inflate: truncated repeat count");
      }
      repeat = 3 + static_cast<int>(extra);
    } else {
      if (!br.GetBits(7, &extra)) {
        return Status::CorruptData("inflate: truncated repeat count");
      }
      repeat = 11 + static_cast<int>(extra);
    }
    if (i + repeat > nlit + ndist) {
      return Status::CorruptData("inflate: code-length repeat overruns alphabet");
    }
    while (repeat-- > 0) {
      lengths[static_cast<size_t>(i++)] = value;
    }
  }
  if (lengths[256] == 0) {
    return Status::CorruptData("inflate: dynamic block missing end-of-block code");
  }
  CDPU_RETURN_IF_ERROR(BuildTable(lengths.data(), nlit, lit_table));
  CDPU_RETURN_IF_ERROR(BuildTable(lengths.data() + nlit, ndist, dist_table));
  return Status::Ok();
}

}  // namespace

Status ReferenceInflate(ByteSpan input, ByteVec* out) {
  BitReader br(input);
  for (;;) {
    uint32_t bfinal = 0;
    uint32_t btype = 0;
    if (!br.GetBits(1, &bfinal) || !br.GetBits(2, &btype)) {
      return Status::CorruptData("inflate: truncated block header");
    }
    switch (btype) {
      case 0:
        CDPU_RETURN_IF_ERROR(InflateStored(br, out));
        break;
      case 1:
        CDPU_RETURN_IF_ERROR(InflateBlock(br, FixedLitTable(), FixedDistTable(), out));
        break;
      case 2: {
        HuffTable lit_table;
        HuffTable dist_table;
        CDPU_RETURN_IF_ERROR(ReadDynamicTables(br, &lit_table, &dist_table));
        CDPU_RETURN_IF_ERROR(InflateBlock(br, lit_table, dist_table, out));
        break;
      }
      default:
        return Status::CorruptData("inflate: reserved block type");
    }
    if (bfinal) {
      return Status::Ok();
    }
  }
}

Status ReferenceGunzip(ByteSpan input, ByteVec* out) {
  if (input.size() < 18 || input[0] != 0x1f || input[1] != 0x8b) {
    return Status::CorruptData("gunzip: bad magic or truncated member");
  }
  if (input[2] != 8) {
    return Status::CorruptData("gunzip: unsupported compression method");
  }
  uint8_t flg = input[3];
  size_t pos = 10;
  if (flg & 0x04) {  // FEXTRA
    if (input.size() < pos + 2) {
      return Status::CorruptData("gunzip: truncated FEXTRA");
    }
    size_t xlen = input[pos] | (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2 + xlen;
  }
  for (uint8_t bit : {uint8_t{0x08}, uint8_t{0x10}}) {  // FNAME, FCOMMENT
    if (flg & bit) {
      while (pos < input.size() && input[pos] != 0) {
        ++pos;
      }
      ++pos;  // the terminator
    }
  }
  if (flg & 0x02) {  // FHCRC
    pos += 2;
  }
  if (input.size() < pos + 8) {
    return Status::CorruptData("gunzip: truncated member");
  }

  size_t produced_before = out->size();
  CDPU_RETURN_IF_ERROR(
      ReferenceInflate(ByteSpan(input.data() + pos, input.size() - pos - 8), out));
  ByteSpan produced(out->data() + produced_before, out->size() - produced_before);

  const uint8_t* trailer = input.data() + input.size() - 8;
  uint32_t want_crc = static_cast<uint32_t>(trailer[0]) | (static_cast<uint32_t>(trailer[1]) << 8) |
                      (static_cast<uint32_t>(trailer[2]) << 16) |
                      (static_cast<uint32_t>(trailer[3]) << 24);
  uint32_t want_size = static_cast<uint32_t>(trailer[4]) |
                       (static_cast<uint32_t>(trailer[5]) << 8) |
                       (static_cast<uint32_t>(trailer[6]) << 16) |
                       (static_cast<uint32_t>(trailer[7]) << 24);
  if (Crc32(produced) != want_crc) {
    return Status::CorruptData("gunzip: CRC-32 mismatch");
  }
  if (static_cast<uint32_t>(produced.size()) != want_size) {
    return Status::CorruptData("gunzip: ISIZE mismatch");
  }
  return Status::Ok();
}

}  // namespace testref
}  // namespace cdpu
