// End-to-end loopback tests for the compression service: server and clients
// in one process over real TCP sockets. Covers every codec the wire protocol
// names, concurrent multi-tenant sessions, admission backpressure (the BUSY
// path), semantic error responses, and — the critical one — a fault-injected
// run where the offload runtime's retry/CPU-fallback machinery is active and
// the closed-loop verifier proves no request was lost, duplicated or
// corrupted on its way through sockets, rings and recovery.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/crc32.h"
#include "src/core/dpzip_codec.h"
#include "src/fault/fault_plan.h"
#include "src/hw/device_configs.h"
#include "src/obs/json.h"
#include "src/svc/client.h"
#include "src/svc/loadgen.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace svc {
namespace {

int FuzzRounds() {
  const char* env = std::getenv("CDPU_FUZZ_ROUNDS");
  if (env == nullptr) {
    return 1;
  }
  int rounds = std::atoi(env);
  return rounds > 0 ? rounds : 1;
}

TEST(SvcLoopbackTest, EveryCodecRoundTripsBitExact) {
  DpzipCodec::RegisterWithFactory();  // dpzip is opt-in, exactly as in the CLI
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  ByteVec payload = GenerateWithRatio(0.45, 96 * 1024, /*seed=*/3);
  for (const char* codec : {"deflate-1", "deflate-9", "gzip", "zstd-1", "zstd-9", "lz4",
                            "snappy", "dpzip"}) {
    CallResult c = client.Compress(codec, payload);
    ASSERT_TRUE(c.status.ok()) << codec << ": " << c.status.ToString();
    EXPECT_FALSE(c.output.empty()) << codec;
    CallResult d = client.Decompress(codec, c.output);
    ASSERT_TRUE(d.status.ok()) << codec << ": " << d.status.ToString();
    ASSERT_EQ(d.output.size(), payload.size()) << codec;
    EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin()))
        << codec << " corrupted the payload";
  }
  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(SvcLoopbackTest, EmptyAndTinyPayloads) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  for (size_t size : {size_t{0}, size_t{1}, size_t{2}, size_t{100}}) {
    ByteVec payload = GenerateWithRatio(0.5, size, size + 1);
    payload.resize(size);
    CallResult c = client.Compress("zstd-1", payload);
    ASSERT_TRUE(c.status.ok()) << size << ": " << c.status.ToString();
    CallResult d = client.Decompress("zstd-1", c.output);
    ASSERT_TRUE(d.status.ok()) << size;
    ASSERT_EQ(d.output.size(), payload.size()) << size;
    EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin())) << size;
  }
  server.Stop();
}

TEST(SvcLoopbackTest, UnknownCodecIsAnErrorResponseNotADrop) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  // Speak the frame protocol directly: a well-formed request naming a codec
  // id past the table must earn a kInvalidArgument *response* — the session
  // survives and carries a good request afterwards.
  Result<std::unique_ptr<ServiceConnection>> conn =
      ServiceConnection::Dial("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok());

  Frame bad;
  bad.type = FrameType::kRequest;
  bad.codec = kNumWireCodecs + 3;
  bad.request_id = 11;
  Frame response;
  ASSERT_TRUE((*conn)->Call(bad, ByteSpan(), &response).ok());
  EXPECT_EQ(response.status, static_cast<uint8_t>(StatusCode::kInvalidArgument));
  EXPECT_EQ(response.request_id, 11u);

  ByteVec payload = GenerateWithRatio(0.5, 4096, 5);
  Frame good;
  good.type = FrameType::kRequest;
  uint8_t codec = 0;
  uint8_t level = 0;
  ASSERT_TRUE(WireCodecFromName("lz4", &codec, &level));
  good.codec = codec;
  good.level = level;
  good.request_id = 12;
  ASSERT_TRUE((*conn)->Call(good, payload, &response).ok());
  EXPECT_EQ(response.status, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_EQ(response.request_id, 12u);

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.requests_failed, 1u);
  EXPECT_EQ(stats.requests_ok, 1u);
}

TEST(SvcLoopbackTest, BackpressureEngagesAndIsRetryable) {
  ServerOptions sopts;
  sopts.admission.max_inflight = 1;  // everything beyond one request is BUSY
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 6;
  lopts.requests_per_client = 8;
  lopts.payload_bytes = 32 * 1024;
  // With a ceiling of 1 every client spends most of the run waiting out
  // BUSY; under TSan a 32K round trip stretches past 100 ms, so the default
  // retry budget (~1 s of capped backoff) is too tight for the tail.
  lopts.busy_retries = 256;
  Result<LoadGenReport> run = RunClosedLoop(lopts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  server.Stop();
  ServiceStats stats = server.Snapshot();
  // With 6 eager clients against a ceiling of 1 the server must have pushed
  // back — and every rejection must have been absorbed by retries, not
  // surfaced as a failure or queued unboundedly.
  EXPECT_GT(stats.requests_busy, 0u);
  EXPECT_EQ(run->busy_rejections, stats.requests_busy);
  EXPECT_EQ(run->requests_ok, 6u * 8u);
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);
}

TEST(SvcLoopbackTest, ConcurrentTenantsAllVerify) {
  ServerOptions sopts;
  sopts.admission.expected_tenants = 4;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 8;
  lopts.tenants = 4;
  lopts.requests_per_client = 8 * FuzzRounds();
  lopts.payload_bytes = 16 * 1024;
  Result<LoadGenReport> run = RunClosedLoop(lopts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run->requests_ok, 8u * lopts.requests_per_client);
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);
  ASSERT_EQ(run->tenants.size(), 4u);

  server.Stop();
  ServiceStats stats = server.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 4u);
  uint64_t completed = 0;
  for (const TenantSnapshot& t : stats.tenants) {
    EXPECT_EQ(t.failed, 0u);
    EXPECT_EQ(t.inflight, 0u);  // every admission slot was released
    completed += t.completed;
  }
  // compress + decompress per verified round trip, all accounted per-tenant.
  EXPECT_EQ(completed, 2u * run->requests_ok);
}

// The tentpole guarantee: with the fault injector firing inside the offload
// runtime (verify mismatches, timeouts, stalls, resets) the service must
// still verify every round trip — recovery (retry + CPU fallback) is
// invisible at the wire, and nothing is lost, duplicated or corrupted.
TEST(SvcLoopbackTest, FaultInjectedRunLosesNothing) {
  ServerOptions sopts;
  sopts.runtime.device = Qat8970Config();
  sopts.runtime.fault_plan.seed = 0xFA17ull;
  for (uint32_t kind = 0; kind < kNumFaultKinds; ++kind) {
    sopts.runtime.fault_plan.rate[kind] = 0.05;
  }
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 6;
  lopts.tenants = 3;
  lopts.requests_per_client = 12 * FuzzRounds();
  lopts.payload_bytes = 24 * 1024;
  lopts.codec = "zstd-1";
  Result<LoadGenReport> run = RunClosedLoop(lopts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  server.Stop();
  ServiceStats stats = server.Snapshot();
  // Faults actually fired...
  EXPECT_GT(stats.runtime.faults_injected, 0u);
  // ...and recovery hid every one of them from the wire.
  EXPECT_EQ(run->requests_ok, 6u * lopts.requests_per_client);
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);
  EXPECT_EQ(stats.responses_dropped, 0u);
  // Request conservation: every admitted request completed exactly once.
  uint64_t admitted = 0;
  uint64_t completed = 0;
  for (const TenantSnapshot& t : stats.tenants) {
    admitted += t.admitted;
    completed += t.completed;
    EXPECT_EQ(t.inflight, 0u);
  }
  EXPECT_EQ(admitted, completed);
  EXPECT_EQ(stats.requests_ok + stats.requests_failed, completed);
}

// The pooled data path at steady state: once freelists are warm (pool
// segments, runtime jobs, request contexts, codec scratch), a measured
// window of requests must not touch the allocator more than once per
// request — the acceptance bar the bench-smoke gate also holds.
TEST(SvcLoopbackTest, SteadyStateDataPathIsAllocationFree) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 2;
  lopts.requests_per_client = 32;
  lopts.warmup_requests_per_client = 16;
  lopts.payload_bytes = 4096;
  lopts.codec = "lz4";
  Result<LoadGenReport> run = RunClosedLoop(lopts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);
  EXPECT_GT(run->measured_calls, 0u);
  EXPECT_LE(run->allocs_per_request(), 1.0)
      << run->mem_path.buffer_allocs << " allocs over " << run->measured_calls << " calls";

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_TRUE(stats.pool.touched());
  EXPECT_GT(stats.pool.hits, 0u);  // recycling happened, not just slab growth
  // Every session is closed and every completion drained: nothing still
  // holds a server-pool segment.
  EXPECT_EQ(stats.pool.outstanding_buffers, 0u);
}

// The legacy arm (pooling off) keeps the identical code path but sends every
// buffer to the heap — it must still verify bit-exact round trips. This is
// the baseline side of the mem_path experiment.
TEST(SvcLoopbackTest, LegacyHeapArmStillRoundTrips) {
  ServerOptions sopts;
  sopts.pool.pooling = false;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 2;
  lopts.requests_per_client = 16;
  lopts.payload_bytes = 8192;
  Result<LoadGenReport> run = RunClosedLoop(lopts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->requests_ok, 2u * 16u);
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.pool.hits, 0u);  // nothing recycles when pooling is off
}

// ------------------------------------------------ in-band stats (ISSUE 10)

// Digs a named counter out of a parsed stats document; 0 when absent.
uint64_t DocCounter(const obs::Json& doc, const std::string& name) {
  const obs::Json* metrics = doc.Find("metrics");
  if (metrics == nullptr) {
    return 0;
  }
  const obs::Json* counters = metrics->Find("counters");
  if (counters == nullptr) {
    return 0;
  }
  const obs::Json* v = counters->Find(name);
  return v == nullptr ? 0 : v->AsUint();
}

// A stats scrape taken while the closed loop is running must parse, carry
// the per-tenant and runtime series, and — because counters are monotone —
// never exceed the authoritative exit-time snapshot.
TEST(SvcLoopbackTest, StatsScrapeUnderLoadReconcilesWithExitDump) {
  ServerOptions sopts;
  sopts.admission.expected_tenants = 2;
  sopts.stats_window_ms = 50;  // fast ring turnover so the test sees windows
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 4;
  lopts.tenants = 2;
  lopts.requests_per_client = 24 * FuzzRounds();
  lopts.payload_bytes = 16 * 1024;
  Result<LoadGenReport> run = Status::Internal("loadgen thread never ran");
  std::thread load([&] { run = RunClosedLoop(lopts); });

  // Scrape mid-run: must be parseable JSON with the advertised schema.
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient scraper(copts);
  obs::Json mid;
  bool got_mid = false;
  for (int attempt = 0; attempt < 50 && !got_mid; ++attempt) {
    Result<std::string> fetched = scraper.FetchStats();
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    Result<obs::Json> parsed = obs::Json::Parse(fetched.value());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    mid = std::move(parsed).value();
    // Keep scraping until the load is actually visible in the snapshot.
    got_mid = DocCounter(mid, "svc.requests_ok") > 0;
    if (!got_mid) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(got_mid) << "no load ever showed up in a scrape";
  const obs::Json* schema = mid.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), "cdpu.svc.stats.v1");
  const obs::Json* windows = mid.Find("windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_TRUE(windows->is_array());

  load.join();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);

  server.Stop();
  ServiceStats exit_stats = server.Snapshot();
  // Monotone counters: the mid-run scrape can never be ahead of the exit
  // dump, and the exit dump must account for every wire call the loadgen
  // made (compress + verify decompress per round trip).
  EXPECT_LE(DocCounter(mid, "svc.requests_ok"), exit_stats.requests_ok);
  EXPECT_LE(DocCounter(mid, "svc.bytes_rx"), exit_stats.bytes_rx);
  EXPECT_LE(DocCounter(mid, "svc.requests_received"), exit_stats.requests_received);
  EXPECT_EQ(exit_stats.requests_ok, 2u * run->requests_ok);
  EXPECT_GE(exit_stats.stats_requests, 1u);
  // The always-on e2e histogram saw every completion the admission plane
  // accounted for.
  uint64_t completed = 0;
  for (const TenantSnapshot& t : exit_stats.tenants) {
    completed += t.completed;
  }
  EXPECT_EQ(exit_stats.e2e_hist.count(), completed);
  // stats traffic is accounted separately from the data path.
  EXPECT_EQ(exit_stats.requests_received, exit_stats.requests_ok + exit_stats.requests_failed +
                                              exit_stats.requests_busy);
}

// A stats request violating the frame contract (payload bytes, stray codec
// or flag bits) earns an error kStatsResponse — the session survives and
// serves both a clean scrape and a compress afterwards.
TEST(SvcLoopbackTest, MalformedStatsFrameIsAnErrorResponseNotADrop) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  Result<std::unique_ptr<ServiceConnection>> conn =
      ServiceConnection::Dial("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok());

  // Semantically malformed: a stats request carrying payload bytes.
  ByteVec junk = GenerateWithRatio(0.5, 64, 23);
  Frame bad;
  bad.type = FrameType::kStatsRequest;
  bad.request_id = 31;
  Frame response;
  ASSERT_TRUE((*conn)->Call(bad, junk, &response).ok());
  EXPECT_EQ(response.type, FrameType::kStatsResponse);
  EXPECT_EQ(response.status, static_cast<uint8_t>(StatusCode::kInvalidArgument));
  EXPECT_EQ(response.request_id, 31u);

  // Same for stray codec/flag bytes.
  Frame bad2;
  bad2.type = FrameType::kStatsRequest;
  bad2.codec = 2;
  bad2.flags = kFlagDecompress;
  bad2.request_id = 32;
  ASSERT_TRUE((*conn)->Call(bad2, ByteSpan(), &response).ok());
  EXPECT_EQ(response.status, static_cast<uint8_t>(StatusCode::kInvalidArgument));

  // The session is intact: a clean stats request returns the JSON document.
  Frame good;
  good.type = FrameType::kStatsRequest;
  good.request_id = 33;
  ASSERT_TRUE((*conn)->Call(good, ByteSpan(), &response).ok());
  EXPECT_EQ(response.status, static_cast<uint8_t>(StatusCode::kOk));
  std::string json(reinterpret_cast<const char*>(response.payload.data()),
                   response.payload.size());
  Result<obs::Json> parsed = obs::Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  response.payload.Reset();

  // ...and still compresses.
  ByteVec payload = GenerateWithRatio(0.5, 4096, 29);
  Frame req;
  req.type = FrameType::kRequest;
  uint8_t codec = 0;
  uint8_t level = 0;
  ASSERT_TRUE(WireCodecFromName("lz4", &codec, &level));
  req.codec = codec;
  req.level = level;
  req.request_id = 34;
  ASSERT_TRUE((*conn)->Call(req, payload, &response).ok());
  EXPECT_EQ(response.status, static_cast<uint8_t>(StatusCode::kOk));

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.protocol_errors, 0u);  // semantic errors, not session drops
  EXPECT_EQ(stats.stats_requests, 1u);   // only the clean scrape counted
}

// An old v1 client is refused at the structural layer — its session drops
// cleanly (counted as a protocol error) while a current client on another
// session keeps round-tripping.
TEST(SvcLoopbackTest, OldVersionClientIsDroppedCleanly) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  // Hand-roll a v1 frame: stamp the version byte and re-seal the header CRC
  // so only the version check can reject it.
  Frame f;
  f.type = FrameType::kRequest;
  f.codec = 2;
  f.request_id = 41;
  ByteVec encoded = EncodeFrame(f);
  encoded[4] = 1;
  const uint32_t crc = Crc32(ByteSpan(encoded.data(), 32));
  std::memcpy(encoded.data() + 32, &crc, sizeof(crc));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::send(fd, encoded.data(), encoded.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(encoded.size()));
  // The server must close the session without answering.
  uint8_t buf[64];
  ssize_t n;
  do {
    n = ::recv(fd, buf, sizeof(buf), 0);
  } while (n > 0);
  EXPECT_LE(n, 0);
  ::close(fd);

  // A neighbouring v-current client is untouched.
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);
  ByteVec payload = GenerateWithRatio(0.5, 8192, 43);
  CallResult c = client.Compress("zstd-1", payload);
  ASSERT_TRUE(c.status.ok()) << c.status.ToString();
  CallResult d = client.Decompress("zstd-1", c.output);
  ASSERT_TRUE(d.status.ok());
  EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin()));

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.requests_ok, 2u);
}

// Stop() with sessions still connected must not lose accounting: admission
// slots all return and the runtime drains.
TEST(SvcLoopbackTest, StopWithLiveSessionsIsClean) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);
  ByteVec payload = GenerateWithRatio(0.5, 8192, 17);
  CallResult c = client.Compress("lz4", payload);
  ASSERT_TRUE(c.status.ok());

  // Leave the connection open (client keeps it pooled) and stop the server.
  server.Stop();
  server.Stop();  // idempotent
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests_ok, 1u);
  for (const TenantSnapshot& t : stats.tenants) {
    EXPECT_EQ(t.inflight, 0u);
  }
}

}  // namespace
}  // namespace svc
}  // namespace cdpu
