// Independently derived RFC 1951 decoder used as a differential oracle.
//
// This is a deliberately separate implementation from src/codecs: a
// table-driven canonical-Huffman inflate in the style of the classic
// count/symbol decoders (zlib's contrib puff, mras0/deflate), sharing no
// code with DeflateCodec. If our from-scratch Deflate encoder emits
// anything a by-the-RFC decoder cannot reproduce bit-exactly, these entry
// points catch it.

#ifndef TESTS_REFERENCE_INFLATE_H_
#define TESTS_REFERENCE_INFLATE_H_

#include "src/codecs/codec.h"
#include "src/common/status.h"

namespace cdpu {
namespace testref {

// Decodes one complete raw Deflate stream (RFC 1951), appending to `*out`.
// Rejects malformed streams: bad block types, over-subscribed Huffman codes,
// invalid symbols, out-of-window distances, or truncated input.
Status ReferenceInflate(ByteSpan input, ByteVec* out);

// Decodes one gzip member (RFC 1952): parses the header (including the
// optional EXTRA/NAME/COMMENT/HCRC fields), inflates the Deflate body, and
// verifies the CRC-32 + ISIZE trailer.
Status ReferenceGunzip(ByteSpan input, ByteVec* out);

}  // namespace testref
}  // namespace cdpu

#endif  // TESTS_REFERENCE_INFLATE_H_
