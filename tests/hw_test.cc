// Tests for the hardware models: interconnects, CDPU device models,
// closed-loop queueing, fleet scaling, and the power meter. Assertions
// target the paper's orderings and rough magnitudes (Findings 3, 4, 5, 6,
// 14), not exact testbed numbers.

#include <gtest/gtest.h>

#include "src/hw/cdpu_device.h"
#include "src/hw/device_configs.h"
#include "src/hw/interconnect.h"
#include "src/hw/power.h"
#include "src/sim/event_queue.h"
#include "src/sim/queueing.h"

namespace cdpu {
namespace {

constexpr uint64_t k4K = 4096;
constexpr uint64_t k64K = 65536;

// ---------------------------------------------------------------- sim/queue

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueueTest, TiesDispatchInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) {
      q.ScheduleAfter(10, tick);
    }
  };
  q.ScheduleAt(0, tick);
  q.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(MultiServerQueueTest, ParallelServersOverlap) {
  MultiServerQueue q(2);
  ServiceOutcome a = q.Submit(0, 100);
  ServiceOutcome b = q.Submit(0, 100);
  ServiceOutcome c = q.Submit(0, 100);
  EXPECT_EQ(a.completion, 100u);
  EXPECT_EQ(b.completion, 100u);
  EXPECT_EQ(c.start, 100u);  // third waits for a free server
  EXPECT_EQ(c.completion, 200u);
}

TEST(MultiServerQueueTest, UtilizationAccounting) {
  MultiServerQueue q(1);
  q.Submit(0, 50);
  q.Submit(100, 50);
  EXPECT_EQ(q.busy_ns(), 100u);
  EXPECT_EQ(q.last_completion(), 150u);
}

// ------------------------------------------------------------ interconnect

TEST(InterconnectTest, OnChipBeatsPeripheralLatency) {
  // Finding 3: memory proximity. 64 KB over CMI ~ hundreds of ns; over
  // PCIe 3 with descriptor overheads ~ tens of us (Figure 11a: up to 70x).
  Link cmi(CmiLink());
  Link pcie(Pcie3x16Link());
  SimNanos cmi_64k = cmi.TransferLatency(k64K);
  SimNanos pcie_64k = pcie.TransferLatency(k64K);
  EXPECT_LT(cmi_64k, 1000u);
  EXPECT_GT(static_cast<double>(pcie_64k) / static_cast<double>(cmi_64k), 10.0);
}

TEST(InterconnectTest, DdioBoostsEffectiveBandwidth) {
  LinkConfig base = CmiLink();
  Link with_ddio(base);
  base.ddio = false;
  Link without(base);
  EXPECT_GT(with_ddio.EffectiveGbps(), without.EffectiveGbps());
}

TEST(InterconnectTest, TransferScalesWithSize) {
  Link link(Pcie5x4Link());
  EXPECT_LT(link.TransferLatency(k4K), link.TransferLatency(k64K));
}

// ------------------------------------------------------------- device model

TEST(CdpuDeviceTest, LatencyOrderingMatchesFinding3And4) {
  // CPU (70us) > QAT 8970 (28us) > QAT 4xxx (9us) > DPZip (4.7us) compress.
  CdpuDevice cpu(CpuSoftwareConfig("deflate"));
  CdpuDevice qat8970(Qat8970Config());
  CdpuDevice qat4xxx(Qat4xxxConfig());
  CdpuDevice dpzip(DpzipCdpuConfig());
  double r = 0.45;

  SimNanos l_cpu = cpu.RequestLatency(CdpuOp::kCompress, k4K, r);
  SimNanos l_8970 = qat8970.RequestLatency(CdpuOp::kCompress, k4K, r);
  SimNanos l_4xxx = qat4xxx.RequestLatency(CdpuOp::kCompress, k4K, r);
  SimNanos l_dpzip = dpzip.RequestLatency(CdpuOp::kCompress, k4K, r);

  EXPECT_GT(l_cpu, l_8970);
  EXPECT_GT(l_8970, l_4xxx);
  EXPECT_GT(l_4xxx, l_dpzip);
  // Magnitudes within ~2x of the paper's Figure 8b.
  EXPECT_NEAR(static_cast<double>(l_cpu), 70000.0, 35000.0);
  EXPECT_NEAR(static_cast<double>(l_4xxx), 9000.0, 5000.0);
  EXPECT_LT(l_dpzip, 8000u);
}

TEST(CdpuDeviceTest, TraceStagesSumToRequestLatency) {
  for (const CdpuConfig& cfg : {Qat8970Config(), Qat4xxxConfig(), DpzipCdpuConfig()}) {
    CdpuDevice dev(cfg);
    for (CdpuOp op : {CdpuOp::kCompress, CdpuOp::kDecompress}) {
      CdpuDevice::RequestTrace t = dev.TraceRequest(op, k4K, 0.45);
      EXPECT_EQ(t.total(), dev.RequestLatency(op, k4K, 0.45)) << cfg.name;
      EXPECT_GT(t.service, 0u) << cfg.name;
    }
  }
}

TEST(CdpuDeviceTest, TraceShowsPlacementInDmaStage) {
  // Figure 10/11: the placement difference is the DMA stage, not the engine.
  CdpuDevice peripheral(Qat8970Config());
  CdpuDevice onchip(Qat4xxxConfig());
  CdpuDevice::RequestTrace p = peripheral.TraceRequest(CdpuOp::kCompress, 65536, 0.42);
  CdpuDevice::RequestTrace o = onchip.TraceRequest(CdpuOp::kCompress, 65536, 0.42);
  EXPECT_GT(p.dma_in, o.dma_in * 5);
  EXPECT_GT(p.dma_out, o.dma_out * 5);
}

TEST(CdpuDeviceTest, DecompressionFasterThanCompression) {
  for (const CdpuConfig& cfg : {Qat8970Config(), Qat4xxxConfig(), DpzipCdpuConfig()}) {
    CdpuDevice dev(cfg);
    EXPECT_LT(dev.RequestLatency(CdpuOp::kDecompress, k4K, 0.45),
              dev.RequestLatency(CdpuOp::kCompress, k4K, 0.45))
        << cfg.name;
  }
}

TEST(CdpuDeviceTest, ThroughputMagnitudes4K) {
  // Figure 8a: CPU 4.9, 8970 5.1, 4xxx 4.3, DPZip 5.6 GB/s compress.
  struct Case {
    CdpuConfig cfg;
    double target;
    uint32_t threads;
  };
  std::vector<Case> cases = {
      {CpuSoftwareConfig("deflate"), 4.9, 88},
      {Qat8970Config(), 5.1, 64},
      {Qat4xxxConfig(), 4.3, 64},
      {DpzipCdpuConfig(), 5.6, 16},
  };
  for (const Case& c : cases) {
    CdpuDevice dev(c.cfg);
    ClosedLoopResult r = dev.RunClosedLoop(CdpuOp::kCompress, 4000, k4K, 0.45, c.threads);
    EXPECT_NEAR(r.gbps, c.target, c.target * 0.5) << c.cfg.name;
  }
}

TEST(CdpuDeviceTest, LargerChunksRaiseThroughput) {
  // Finding 2: 64 KB chunks lift hardware CDPU throughput substantially.
  for (const CdpuConfig& cfg : {Qat8970Config(), Qat4xxxConfig()}) {
    CdpuDevice dev(cfg);
    ClosedLoopResult small = dev.RunClosedLoop(CdpuOp::kCompress, 2000, k4K, 0.45, 8);
    ClosedLoopResult big = dev.RunClosedLoop(CdpuOp::kCompress, 500, k64K, 0.40, 8);
    EXPECT_GT(big.gbps, small.gbps * 1.3) << cfg.name;
  }
}

TEST(CdpuDeviceTest, QatThroughputPlateausBeyondQueueLimit) {
  // Finding 6: concurrency ceiling.
  CdpuDevice qat(Qat4xxxConfig());
  ClosedLoopResult at64 = qat.RunClosedLoop(CdpuOp::kCompress, 4000, k4K, 0.45, 64);
  ClosedLoopResult at128 = qat.RunClosedLoop(CdpuOp::kCompress, 4000, k4K, 0.45, 128);
  EXPECT_LT(at128.gbps, at64.gbps * 1.1);  // no scaling past the ceiling
  EXPECT_GT(at128.mean_latency_ns, at64.mean_latency_ns);  // latency inflates
}

TEST(CdpuDeviceTest, IncompressibleDataDegradesQatMoreThanDpzip) {
  // Figure 12 / Finding 5.
  CdpuDevice qat(Qat4xxxConfig());
  CdpuDevice dpzip(DpzipCdpuConfig());
  auto degradation = [&](CdpuDevice& dev) {
    ClosedLoopResult good = dev.RunClosedLoop(CdpuOp::kCompress, 2000, k4K, 0.1, 32);
    ClosedLoopResult bad = dev.RunClosedLoop(CdpuOp::kCompress, 2000, k4K, 1.0, 32);
    return 1.0 - bad.gbps / good.gbps;
  };
  double qat_drop = degradation(qat);
  double dpzip_drop = degradation(dpzip);
  EXPECT_GT(qat_drop, 0.4);    // paper: 67%
  EXPECT_LT(dpzip_drop, 0.2);  // paper: <15%
  EXPECT_GT(qat_drop, dpzip_drop * 2);
}

TEST(CdpuDeviceTest, FleetScalesNearLinearlyForDpzip) {
  // Finding 14: DP-CSD scales with device count; QAT 4xxx capped at sockets.
  ClosedLoopResult one = RunDeviceFleet(DpzipCdpuConfig(), 1, CdpuOp::kCompress, 4000, k64K,
                                        0.45, 16);
  ClosedLoopResult eight = RunDeviceFleet(DpzipCdpuConfig(), 8, CdpuOp::kCompress, 4000, k64K,
                                          0.45, 128);
  EXPECT_GT(eight.gbps, one.gbps * 6.0);
}

TEST(CdpuDeviceTest, CpuDecompressBeatsQatAggregate) {
  // Figure 8a: 88-thread CPU decompress (13.6) beats QAT (~7).
  CdpuDevice cpu(CpuSoftwareConfig("deflate"));
  CdpuDevice qat(Qat8970Config());
  ClosedLoopResult c = cpu.RunClosedLoop(CdpuOp::kDecompress, 8000, k4K, 0.45, 88);
  ClosedLoopResult q = qat.RunClosedLoop(CdpuOp::kDecompress, 8000, k4K, 0.45, 64);
  EXPECT_GT(c.gbps, q.gbps);
}

// ------------------------------------------------------------------- power

TEST(PowerTest, NetEnergyScalesWithUtilization) {
  EnergyMeter busy;
  busy.AddDevice("dpzip", 2.5, 0.3, Seconds(10), Seconds(10));
  EnergyMeter half;
  half.AddDevice("dpzip", 2.5, 0.3, Seconds(5), Seconds(10));
  EXPECT_NEAR(busy.NetJoules(), 22.0, 0.1);  // (2.5-0.3)*10
  EXPECT_NEAR(half.NetJoules(), 11.0, 0.1);
}

TEST(PowerTest, DpzipEfficiencyDwarfsCpu) {
  // Finding 12: ~50x standalone module efficiency gap (2.5 W vs 132 W).
  uint64_t bytes = 5600ull * 1000 * 1000;  // 1s at 5.6 GB/s
  EnergyMeter dpzip;
  dpzip.AddDevice("dpzip", 2.5, 0.0, Seconds(1), Seconds(1));
  EnergyMeter cpu;
  cpu.AddDevice("cpu", 132.0, 0.0, Seconds(1), Seconds(1));
  double dpzip_eff = EnergyMeter::MbPerJoule(bytes, dpzip.NetJoules());
  // CPU moves 4.9 GB in that second.
  double cpu_eff = EnergyMeter::MbPerJoule(4900ull * 1000 * 1000, cpu.NetJoules());
  EXPECT_GT(dpzip_eff / cpu_eff, 30.0);
}

TEST(PowerTest, OpsPerJoule) {
  EXPECT_DOUBLE_EQ(EnergyMeter::OpsPerJoule(5000, 2.0), 2500.0);
  EXPECT_DOUBLE_EQ(EnergyMeter::OpsPerJoule(5000, 0.0), 0.0);
}

TEST(PowerTest, CpuContribution) {
  EnergyMeter m;
  m.AddCpu(0.5, Seconds(2));  // half of 88 cores at 3 W/core
  EXPECT_NEAR(m.NetJoules(), 0.5 * 3.0 * 88 * 2, 1.0);
}

}  // namespace
}  // namespace cdpu
