// Decoder-robustness fuzzing: every decoder must survive arbitrary byte
// corruption of valid compressed streams — returning an error or producing
// wrong bytes, never crashing or reading out of bounds. Hardware CDPUs face
// this on every flash read (bit rot past ECC, firmware bugs), which is why
// the real devices verify after compression. The runtime fault-fuzz suite at
// the bottom drives the whole offload stack (rings, dispatcher, engines,
// retry/fallback) under every injected fault kind and proves no job is ever
// lost, duplicated or corrupted.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "src/codecs/codec.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/core/dpzip_codec.h"
#include "src/runtime/offload_runtime.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

// Round multiplier for the nightly fuzz CI job (CDPU_FUZZ_ROUNDS=50).
int FuzzRounds() {
  const char* env = std::getenv("CDPU_FUZZ_ROUNDS");
  if (env == nullptr) {
    return 1;
  }
  int rounds = std::atoi(env);
  return rounds > 0 ? rounds : 1;
}

void FuzzCodec(Codec* codec, uint64_t seed, int rounds) {
  Rng rng(seed);
  std::vector<uint8_t> data = GenerateTextLike(4096, seed);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());

  for (int round = 0; round < rounds; ++round) {
    ByteVec mutated = compressed;
    // 1-4 random byte flips.
    uint64_t flips = 1 + rng.Uniform(4);
    for (uint64_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    ByteVec out;
    Result<size_t> r = codec->Decompress(mutated, &out);
    // Either a clean error or some output; never a crash (checked by
    // running), and bounded output (no runaway expansion). A format that
    // carries a payload checksum must go further: if it claims ok(), the
    // bytes must be the original ones — anything else means its integrity
    // check is broken.
    if (r.ok()) {
      EXPECT_LT(out.size(), 1u << 24);
      if (codec->checks_integrity()) {
        EXPECT_EQ(out, ByteVec(data.begin(), data.end()))
            << codec->name() << " returned ok() with corrupted payload in round " << round;
      }
    }
  }
}

void FuzzTruncation(Codec* codec, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data = GenerateDbTableLike(4096, seed);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, compressed.size() / 4,
                     compressed.size() / 2, compressed.size() - 1}) {
    ByteVec out;
    Result<size_t> r = codec->Decompress(ByteSpan(compressed.data(), len), &out);
    if (r.ok()) {
      EXPECT_NE(out, ByteVec(data.begin(), data.end()));
    }
  }
}

void FuzzGarbage(Codec* codec, uint64_t seed) {
  Rng rng(seed);
  for (int round = 0; round < 50; ++round) {
    size_t len = rng.Uniform(2048);
    ByteVec garbage(len);
    for (auto& b : garbage) {
      b = rng.NextByte();
    }
    ByteVec out;
    Result<size_t> r = codec->Decompress(garbage, &out);
    if (r.ok()) {
      EXPECT_LT(out.size(), 1u << 24);
    }
  }
}

class CodecRobustnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecRobustnessTest, SurvivesBitFlips) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  FuzzCodec(codec.get(), 0xf00d, 300 * FuzzRounds());
}

TEST_P(CodecRobustnessTest, SurvivesTruncation) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  FuzzTruncation(codec.get(), 0xfeed);
}

TEST_P(CodecRobustnessTest, SurvivesGarbageInput) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  FuzzGarbage(codec.get(), 0xbeef);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRobustnessTest,
                         ::testing::Values("deflate-1", "gzip-1", "lz4", "snappy", "zstd-1"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(DpzipRobustnessTest, SurvivesBitFlips) {
  DpzipCodec codec;
  FuzzCodec(&codec, 0xd00d, 300 * FuzzRounds());
}

TEST(DpzipRobustnessTest, SurvivesTruncationAndGarbage) {
  DpzipCodec codec;
  FuzzTruncation(&codec, 0xdead);
  FuzzGarbage(&codec, 0xcafe);
}

TEST(GzipRobustnessTest, CrcCatchesPayloadCorruption) {
  // Corrupting the stored-block payload of an incompressible gzip stream
  // still parses as valid Deflate with wrong bytes — the CRC trailer must
  // catch it.
  auto codec = MakeCodec("gzip-1");
  Rng rng(123);
  std::vector<uint8_t> data(1024);
  for (auto& b : data) {
    b = rng.NextByte();  // incompressible -> stored deflate blocks
  }
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  // Flip a byte in the middle of the payload (not header/trailer).
  compressed[compressed.size() / 2] ^= 0xff;
  ByteVec out;
  Result<size_t> r = codec->Decompress(compressed, &out);
  EXPECT_FALSE(r.ok());
}

TEST(GzipRoundTripTest, RoundTripsAndMeasuresRatio) {
  auto codec = MakeCodec("gzip-6");
  std::vector<uint8_t> data = GenerateTextLike(64 * 1024, 9);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  EXPECT_LT(compressed.size(), data.size() / 2 + 18);
  ByteVec restored;
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, ByteVec(data.begin(), data.end()));
}

TEST(GzipRoundTripTest, RejectsBadMagic) {
  auto codec = MakeCodec("gzip-1");
  ByteVec not_gzip(64, 0x42);
  ByteVec out;
  EXPECT_FALSE(codec->Decompress(not_gzip, &out).ok());
}

TEST_P(CodecRobustnessTest, TruncationToZeroAndHeaderOnly) {
  // The two degenerate prefixes every storage stack eventually feeds a
  // decoder: a zero-byte read, and a stream cut off right after its framing
  // header. Neither may be reported as a successful decode of real payload.
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  std::vector<uint8_t> data = GenerateTextLike(4096, 0x720);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());

  // Truncation to zero bytes: ok() is only acceptable as an empty result.
  ByteVec out;
  Result<size_t> zero = codec->Decompress(ByteSpan(compressed.data(), 0), &out);
  if (zero.ok()) {
    EXPECT_TRUE(out.empty());
  }

  // Header-only: keep just the first few framing bytes, no payload.
  for (size_t header : {size_t{1}, size_t{2}, size_t{4}, size_t{10}}) {
    if (header >= compressed.size()) {
      continue;
    }
    ByteVec header_out;
    Result<size_t> r = codec->Decompress(ByteSpan(compressed.data(), header), &header_out);
    if (r.ok()) {
      EXPECT_NE(header_out, ByteVec(data.begin(), data.end()))
          << codec->name() << " reproduced the payload from a " << header << "-byte prefix";
      if (codec->checks_integrity()) {
        ADD_FAILURE() << codec->name() << " accepted a " << header
                      << "-byte header-only stream despite integrity checking";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime fault fuzzing: drive the full offload path (rings -> dispatcher ->
// engines -> retry/fallback -> reaper) with faults injected, under
// concurrent clients. Invariants, per fault kind and with all kinds at once:
// every submitted job completes exactly once, every future resolves ok()
// (recovery must mask the fault), and every round-trip is bit-exact
// (CRC-32-verified). Fast recovery constants keep the suite quick.
// ---------------------------------------------------------------------------

RuntimeOptions FaultFuzzOptions() {
  RuntimeOptions opts;
  opts.device.name = "fuzz-device";
  opts.device.placement = Placement::kPeripheral;
  opts.device.engines = 4;
  opts.device.queue_limit = 32;
  opts.device.compress_gbps = 2.0;
  opts.device.decompress_gbps = 4.0;
  opts.device.link.name = "fuzz-link";
  opts.codec = "lz4";
  opts.queue_pairs = 4;
  opts.batch_size = 4;
  opts.engine_threads = 4;
  opts.max_retries = 2;
  opts.retry_backoff_ns = 5 * 1000;         // 5 us: keep retries cheap in-test
  opts.retry_backoff_cap_ns = 40 * 1000;
  opts.completion_timeout_ns = 20 * 1000;   // 20 us simulated descriptor death
  opts.unhealthy_threshold = 3;
  opts.reprobe_backoff_ns = 200 * 1000;     // re-probe fast so tests see recovery
  return opts;
}

// Runs kThreads concurrent clients, each doing compress->decompress round
// trips through the runtime, and checks the no-loss/no-corruption
// invariants. Returns the final stats snapshot.
RuntimeStats RunFaultFuzz(const RuntimeOptions& opts, uint64_t seed) {
  OffloadRuntime runtime(opts);
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 12;
  std::atomic<int> failures{0};
  std::atomic<int> corruptions{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        ByteVec original = GenerateWithRatio(0.3 + 0.05 * (i % 8), 2048 + 512 * (i % 5),
                                             seed ^ static_cast<uint64_t>(t * 1000 + i));
        uint32_t original_crc = Crc32(original);
        OffloadRequest creq;
        creq.op = CdpuOp::kCompress;
        creq.input = original;
        creq.queue_pair = static_cast<uint32_t>(t % 4);
        OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++failures;
          continue;
        }
        OffloadRequest dreq;
        dreq.op = CdpuOp::kDecompress;
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = static_cast<uint32_t>(t % 4);
        OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (!dres.status.ok()) {
          ++failures;
          continue;
        }
        if (Crc32(dres.output) != original_crc ||
            dres.output != original) {
          ++corruptions;
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);

  EXPECT_EQ(failures.load(), 0) << "recovery failed to mask an injected fault";
  EXPECT_EQ(corruptions.load(), 0) << "fault injection corrupted a round trip";
  RuntimeStats stats = runtime.Snapshot();
  // No job lost or duplicated: completions exactly match submissions.
  EXPECT_EQ(stats.jobs_submitted, static_cast<uint64_t>(kThreads * kJobsPerThread * 2));
  EXPECT_EQ(stats.jobs_completed, stats.jobs_submitted);
  EXPECT_EQ(stats.jobs_canceled, 0u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  return stats;
}

class RuntimeFaultFuzzTest : public ::testing::TestWithParam<FaultKind> {};

TEST_P(RuntimeFaultFuzzTest, SingleKindMaskedByRecovery) {
  const FaultKind kind = GetParam();
  RuntimeOptions opts = FaultFuzzOptions();
  opts.fault_plan.seed = 0xfa157 + static_cast<uint64_t>(kind);
  opts.fault_plan.rate[static_cast<int>(kind)] = 0.3;
  opts.fault_plan.stall_ns = 50 * 1000;
  opts.fault_plan.reset_quiesce_ns = 100 * 1000;

  RuntimeStats stats = RunFaultFuzz(opts, 0x5eed0 + static_cast<uint64_t>(kind));
  EXPECT_GT(stats.faults_injected, 0u) << "rate 0.3 over 192 jobs injected nothing";
  EXPECT_EQ(stats.faults_injected, stats.faults_by_kind[static_cast<int>(kind)]);
  // Stalls only stretch the simulated timeline; every other kind forces a
  // device resubmission.
  if (kind != FaultKind::kEngineStall) {
    EXPECT_GT(stats.retries, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFaultKinds, RuntimeFaultFuzzTest,
                         ::testing::Values(FaultKind::kVerifyMismatch,
                                           FaultKind::kCompletionTimeout,
                                           FaultKind::kEngineStall, FaultKind::kQueueReset),
                         [](const auto& info) { return std::string(FaultKindName(info.param)); });

TEST(RuntimeFaultFuzzTest, AllKindsTogetherMaskedByRecovery) {
  RuntimeOptions opts = FaultFuzzOptions();
  opts.fault_plan.seed = 0xa11;
  opts.fault_plan.SetAllRates(0.15);
  RuntimeStats stats = RunFaultFuzz(opts, 0xa11f00d);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(RuntimeFaultFuzzTest, DeterministicScheduleCountsExactly) {
  // Period mode is exact: every 4th verify draw fails. One draw per device
  // attempt, so injected counts are reproducible run to run.
  RuntimeOptions opts = FaultFuzzOptions();
  opts.fault_plan.period[static_cast<int>(FaultKind::kVerifyMismatch)] = 4;
  RuntimeStats stats = RunFaultFuzz(opts, 0xdef);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_EQ(stats.faults_injected,
            stats.faults_by_kind[static_cast<int>(FaultKind::kVerifyMismatch)]);
  EXPECT_GT(stats.retries, 0u);
}

TEST(RuntimeFaultFuzzTest, TotalDeviceFailureDegradesGracefully) {
  // Rate 1.0 verify mismatch: the device never produces a good completion.
  // Every job must still succeed via the CPU fallback, and the health
  // machine must mark the device unhealthy and start re-probing.
  RuntimeOptions opts = FaultFuzzOptions();
  opts.fault_plan.seed = 0xdead;
  opts.fault_plan.rate[static_cast<int>(FaultKind::kVerifyMismatch)] = 1.0;
  RuntimeStats stats = RunFaultFuzz(opts, 0xdeadbeef);
  EXPECT_GT(stats.fallbacks, 0u);
  EXPECT_GE(stats.unhealthy_transitions, 1u);
  EXPECT_FALSE(stats.device_healthy);
  EXPECT_GT(stats.reprobes, 0u);
}

TEST(RuntimeFaultFuzzTest, DisabledPlanKeepsFaultPathSilent) {
  // The acceptance bar for the fast path: with no fault plan, every
  // fault/recovery counter is exactly zero — not merely small.
  RuntimeStats stats = RunFaultFuzz(FaultFuzzOptions(), 0xc1ea);
  EXPECT_EQ(stats.faults_injected, 0u);
  for (uint64_t by_kind : stats.faults_by_kind) {
    EXPECT_EQ(by_kind, 0u);
  }
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_EQ(stats.unhealthy_transitions, 0u);
  EXPECT_EQ(stats.reprobes, 0u);
  EXPECT_TRUE(stats.device_healthy);
}

}  // namespace
}  // namespace cdpu
