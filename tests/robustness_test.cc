// Decoder-robustness fuzzing: every decoder must survive arbitrary byte
// corruption of valid compressed streams — returning an error or producing
// wrong bytes, never crashing or reading out of bounds. Hardware CDPUs face
// this on every flash read (bit rot past ECC, firmware bugs), which is why
// the real devices verify after compression.

#include <gtest/gtest.h>

#include "src/codecs/codec.h"
#include "src/core/dpzip_codec.h"
#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

void FuzzCodec(Codec* codec, uint64_t seed, int rounds) {
  Rng rng(seed);
  std::vector<uint8_t> data = GenerateTextLike(4096, seed);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());

  for (int round = 0; round < rounds; ++round) {
    ByteVec mutated = compressed;
    // 1-4 random byte flips.
    uint64_t flips = 1 + rng.Uniform(4);
    for (uint64_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    ByteVec out;
    Result<size_t> r = codec->Decompress(mutated, &out);
    // Either a clean error or some output; never a crash (checked by
    // running), and bounded output (no runaway expansion).
    if (r.ok()) {
      EXPECT_LT(out.size(), 1u << 24);
    }
  }
}

void FuzzTruncation(Codec* codec, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data = GenerateDbTableLike(4096, seed);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  for (size_t len : {size_t{0}, size_t{1}, size_t{2}, compressed.size() / 4,
                     compressed.size() / 2, compressed.size() - 1}) {
    ByteVec out;
    Result<size_t> r = codec->Decompress(ByteSpan(compressed.data(), len), &out);
    if (r.ok()) {
      EXPECT_NE(out, ByteVec(data.begin(), data.end()));
    }
  }
}

void FuzzGarbage(Codec* codec, uint64_t seed) {
  Rng rng(seed);
  for (int round = 0; round < 50; ++round) {
    size_t len = rng.Uniform(2048);
    ByteVec garbage(len);
    for (auto& b : garbage) {
      b = rng.NextByte();
    }
    ByteVec out;
    Result<size_t> r = codec->Decompress(garbage, &out);
    if (r.ok()) {
      EXPECT_LT(out.size(), 1u << 24);
    }
  }
}

class CodecRobustnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecRobustnessTest, SurvivesBitFlips) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  FuzzCodec(codec.get(), 0xf00d, 300);
}

TEST_P(CodecRobustnessTest, SurvivesTruncation) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  FuzzTruncation(codec.get(), 0xfeed);
}

TEST_P(CodecRobustnessTest, SurvivesGarbageInput) {
  std::unique_ptr<Codec> codec = MakeCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  FuzzGarbage(codec.get(), 0xbeef);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRobustnessTest,
                         ::testing::Values("deflate-1", "gzip-1", "lz4", "snappy", "zstd-1"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(DpzipRobustnessTest, SurvivesBitFlips) {
  DpzipCodec codec;
  FuzzCodec(&codec, 0xd00d, 300);
}

TEST(DpzipRobustnessTest, SurvivesTruncationAndGarbage) {
  DpzipCodec codec;
  FuzzTruncation(&codec, 0xdead);
  FuzzGarbage(&codec, 0xcafe);
}

TEST(GzipRobustnessTest, CrcCatchesPayloadCorruption) {
  // Corrupting the stored-block payload of an incompressible gzip stream
  // still parses as valid Deflate with wrong bytes — the CRC trailer must
  // catch it.
  auto codec = MakeCodec("gzip-1");
  Rng rng(123);
  std::vector<uint8_t> data(1024);
  for (auto& b : data) {
    b = rng.NextByte();  // incompressible -> stored deflate blocks
  }
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  // Flip a byte in the middle of the payload (not header/trailer).
  compressed[compressed.size() / 2] ^= 0xff;
  ByteVec out;
  Result<size_t> r = codec->Decompress(compressed, &out);
  EXPECT_FALSE(r.ok());
}

TEST(GzipRoundTripTest, RoundTripsAndMeasuresRatio) {
  auto codec = MakeCodec("gzip-6");
  std::vector<uint8_t> data = GenerateTextLike(64 * 1024, 9);
  ByteVec compressed;
  ASSERT_TRUE(codec->Compress(data, &compressed).ok());
  EXPECT_LT(compressed.size(), data.size() / 2 + 18);
  ByteVec restored;
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, ByteVec(data.begin(), data.end()));
}

TEST(GzipRoundTripTest, RejectsBadMagic) {
  auto codec = MakeCodec("gzip-1");
  ByteVec not_gzip(64, 0x42);
  ByteVec out;
  EXPECT_FALSE(codec->Decompress(not_gzip, &out).ok());
}

}  // namespace
}  // namespace cdpu
