// Placement-aware multi-device scheduling (ISSUE 7): device-list parsing,
// the four PlacementRouter policies, FleetRuntime end-to-end round trips
// over a heterogeneous fleet, and — the acceptance bar — ewma-service-rate
// rerouting >= 90% of traffic away from a fault-injected dead device with
// no job lost, duplicated, or corrupted. The TSan CI job gates this binary.

#include "src/runtime/placement.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/crc32.h"
#include "src/hw/device_configs.h"
#include "src/runtime/fleet.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

// ---------------------------------------------------------------------------
// ParseDeviceList / policy names

TEST(ParseDeviceListTest, SingleDeviceKeepsBareName) {
  std::vector<FleetDeviceSpec> specs;
  ASSERT_TRUE(ParseDeviceList("qat8970", &specs).ok());
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "qat8970");
  EXPECT_EQ(specs[0].config.placement, Placement::kPeripheral);
}

TEST(ParseDeviceListTest, CountsExpandWithIndexedNames) {
  std::vector<FleetDeviceSpec> specs;
  ASSERT_TRUE(ParseDeviceList("dpzip:3,cpu", &specs).ok());
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "dpzip.0");
  EXPECT_EQ(specs[1].name, "dpzip.1");
  EXPECT_EQ(specs[2].name, "dpzip.2");
  EXPECT_EQ(specs[3].name, "cpu");
}

TEST(ParseDeviceListTest, MixedFleetPreservesOrderAndConfigs) {
  std::vector<FleetDeviceSpec> specs;
  ASSERT_TRUE(ParseDeviceList("qat8970,qat4xxx,csd2000,cpu-zstd", &specs).ok());
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[1].config.placement, Placement::kOnChip);
  EXPECT_EQ(specs[2].config.placement, Placement::kInStorage);
  EXPECT_EQ(specs[3].config.placement, Placement::kCpuSoftware);
}

TEST(ParseDeviceListTest, RejectsMalformedLists) {
  std::vector<FleetDeviceSpec> specs;
  EXPECT_FALSE(ParseDeviceList("", &specs).ok());
  EXPECT_FALSE(ParseDeviceList("nosuchdev", &specs).ok());
  EXPECT_FALSE(ParseDeviceList("qat8970:0", &specs).ok());
  EXPECT_FALSE(ParseDeviceList("qat8970:abc", &specs).ok());
  EXPECT_FALSE(ParseDeviceList("qat8970,,cpu", &specs).ok());
  EXPECT_FALSE(ParseDeviceList("dpzip:100", &specs).ok());  // over kMaxFleetDevices
}

TEST(PlacementPolicyTest, NamesRoundTrip) {
  for (PlacementPolicy p :
       {PlacementPolicy::kStatic, PlacementPolicy::kSizeThreshold,
        PlacementPolicy::kLeastOutstanding, PlacementPolicy::kEwmaServiceRate}) {
    PlacementPolicy parsed;
    ASSERT_TRUE(ParsePlacementPolicy(PlacementPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  PlacementPolicy parsed;
  EXPECT_FALSE(ParsePlacementPolicy("round-robin", &parsed));
  EXPECT_FALSE(ParsePlacementPolicy("", &parsed));
}

// ---------------------------------------------------------------------------
// PlacementRouter unit tests (no runtime behind it)

std::vector<FleetDeviceSpec> TestFleet() {
  std::vector<FleetDeviceSpec> specs;
  Status s = ParseDeviceList("qat8970,qat4xxx,cpu", &specs);
  EXPECT_TRUE(s.ok());
  return specs;
}

TEST(PlacementRouterTest, StaticPinsEverythingToNamedDevice) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kStatic;
  opts.static_device = "qat4xxx";
  PlacementRouter router(opts, TestFleet());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(router.Route(4096 + 1000 * i), 1u);
  }
  std::vector<PlacementDeviceView> views = router.SnapshotViews();
  EXPECT_EQ(views[1].routed, 32u);
  EXPECT_EQ(views[0].routed + views[2].routed, 0u);
}

TEST(PlacementRouterTest, StaticFailsOverWhenPinnedDeviceUnhealthy) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kStatic;
  opts.static_device = "qat8970";
  PlacementRouter router(opts, TestFleet());
  router.SetHealthy(0, false);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(router.Route(4096), 0u);
  }
}

TEST(PlacementRouterTest, SizeThresholdSplitsByClass) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kSizeThreshold;
  opts.size_threshold_bytes = 16 * 1024;
  PlacementRouter router(opts, TestFleet());
  // Small payloads land on the low-latency class (qat4xxx on-chip or cpu),
  // large ones on the peripheral ASIC.
  for (int i = 0; i < 32; ++i) {
    size_t slot = router.Route(4096);
    EXPECT_TRUE(slot == 1 || slot == 2) << slot;
    router.OnComplete(slot, 4096, 1000, true);
  }
  for (int i = 0; i < 32; ++i) {
    size_t slot = router.Route(64 * 1024);
    EXPECT_EQ(slot, 0u);
    router.OnComplete(slot, 64 * 1024, 1000, true);
  }
  // Exactly at the threshold counts as large.
  EXPECT_EQ(router.Route(16 * 1024), 0u);
}

TEST(PlacementRouterTest, SizeThresholdFallsThroughWhenClassUnhealthy) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kSizeThreshold;
  PlacementRouter router(opts, TestFleet());
  router.SetHealthy(1, false);
  router.SetHealthy(2, false);
  // Low-latency class dead: small payloads spill to the ASIC.
  EXPECT_EQ(router.Route(1024), 0u);
}

TEST(PlacementRouterTest, LeastOutstandingTracksQueueDepth) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kLeastOutstanding;
  PlacementRouter router(opts, TestFleet());
  // Load slot 0 and 1 with outstanding work; the next job must go to 2.
  router.NotePinned(0);
  router.NotePinned(0);
  router.NotePinned(1);
  EXPECT_EQ(router.Route(4096), 2u);
  // Now 2 and 1 are tied at 1 outstanding; complete 0 fully and it wins.
  router.OnComplete(0, 4096, 1000, true);
  router.OnComplete(0, 4096, 1000, true);
  EXPECT_EQ(router.Route(4096), 0u);
}

TEST(PlacementRouterTest, EwmaPrefersMeasuredFasterDevice) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kEwmaServiceRate;
  opts.seed = 7;
  PlacementRouter router(opts, TestFleet());
  // Feed completions: slot 2 is 100x faster than slots 0/1.
  for (int i = 0; i < 50; ++i) {
    router.OnComplete(0, 4096, 4096 * 1000, true);  // 0.001 bytes/us
    router.OnComplete(1, 4096, 4096 * 1000, true);
    router.OnComplete(2, 4096, 4096 * 10, true);    // 0.1 bytes/us
  }
  std::map<size_t, int> routed;
  for (int i = 0; i < 1000; ++i) {
    size_t slot = router.Route(4096);
    ++routed[slot];
    router.OnComplete(slot, 4096, slot == 2 ? 4096 * 10 : 4096 * 1000, true);
  }
  // Weighted draw: the fast device carries the overwhelming majority but the
  // slow ones keep a probe trickle (min_weight_fraction).
  EXPECT_GT(routed[2], 900);
  EXPECT_GT(routed[0] + routed[1], 0);
}

TEST(PlacementRouterTest, EwmaCollapsesUnhealthyDeviceToProbeTraffic) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kEwmaServiceRate;
  opts.seed = 3;
  PlacementRouter router(opts, TestFleet());
  router.SetHealthy(0, false);
  int to_dead = 0;
  for (int i = 0; i < 1000; ++i) {
    size_t slot = router.Route(4096);
    if (slot == 0) {
      ++to_dead;
      router.OnComplete(slot, 4096, 1000, false);  // still degraded
    } else {
      router.OnComplete(slot, 4096, 1000, true);
    }
  }
  // An unhealthy member keeps only the min_weight_fraction probe trickle,
  // never a real share.
  EXPECT_LT(to_dead, 100);
}

TEST(PlacementRouterTest, RouteIsThreadSafeAndConserving) {
  PlacementOptions opts;
  opts.policy = PlacementPolicy::kLeastOutstanding;
  PlacementRouter router(opts, TestFleet());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&router] {
      for (int i = 0; i < kPerThread; ++i) {
        size_t slot = router.Route(4096);
        router.OnComplete(slot, 4096, 1000, true);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  uint64_t routed = 0;
  for (const PlacementDeviceView& v : router.SnapshotViews()) {
    routed += v.routed;
    EXPECT_EQ(v.outstanding, 0u);
  }
  EXPECT_EQ(routed, static_cast<uint64_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// FleetRuntime end-to-end

TEST(FleetRuntimeTest, SingleDeviceFleetBehavesLikeRuntime) {
  FleetOptions opts;
  opts.base.codec = "lz4";
  opts.base.queue_pairs = 2;
  opts.base.batch_size = 2;
  ASSERT_TRUE(ParseDeviceList("qat8970", &opts.devices).ok());
  FleetRuntime runtime(opts);
  EXPECT_EQ(runtime.device_count(), 1u);

  ByteVec original = GenerateWithRatio(0.4, 8192, 42);
  OffloadRequest req;
  req.op = CdpuOp::kCompress;
  req.input = original;
  OffloadResult res = runtime.Submit(std::move(req)).get();
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.device_slot, 1u);  // 1-based slot echo

  runtime.Shutdown();
  FleetStats stats = runtime.Snapshot();
  ASSERT_EQ(stats.devices.size(), 1u);
  EXPECT_EQ(stats.merged.jobs_submitted, 1u);
  EXPECT_EQ(stats.merged.jobs_completed, 1u);
  EXPECT_EQ(stats.devices[0].router.routed, 1u);
}

TEST(FleetRuntimeTest, MultiDeviceRoundTripsNoLossNoDupNoCorruption) {
  FleetOptions opts;
  opts.base.codec = "zstd";
  opts.base.queue_pairs = 2;
  opts.base.batch_size = 4;
  ASSERT_TRUE(ParseDeviceList("qat8970,qat4xxx,cpu", &opts.devices).ok());
  opts.placement.policy = PlacementPolicy::kLeastOutstanding;
  FleetRuntime runtime(opts);

  constexpr int kThreads = 6;
  constexpr int kJobsPerThread = 20;
  std::atomic<int> corrupt{0};
  std::atomic<int> failed{0};
  std::atomic<uint64_t> completions{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        ByteVec original = GenerateWithRatio(0.3 + 0.02 * (i % 10), 4096 + 997 * (i % 7),
                                             static_cast<uint64_t>(t * 101 + i));
        uint32_t want_crc = Crc32(original);
        OffloadRequest creq;
        creq.op = CdpuOp::kCompress;
        creq.input = original;
        creq.queue_pair = static_cast<uint32_t>(t % 2);
        creq.callback = [&completions](const OffloadResult&) { ++completions; };
        OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++failed;
          continue;
        }
        EXPECT_GE(cres.device_slot, 1u);
        EXPECT_LE(cres.device_slot, 3u);
        OffloadRequest dreq;
        dreq.op = CdpuOp::kDecompress;
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = static_cast<uint32_t>(t % 2);
        dreq.callback = [&completions](const OffloadResult&) { ++completions; };
        OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (!dres.status.ok()) {
          ++failed;
        } else if (Crc32(dres.output) != want_crc) {
          ++corrupt;
        }
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Shutdown();

  constexpr uint64_t kTotalJobs = static_cast<uint64_t>(kThreads) * kJobsPerThread * 2;
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(corrupt.load(), 0);
  // No loss and no duplication: every job's user callback fired exactly
  // once, and the merged counters account for every submission.
  EXPECT_EQ(completions.load(), kTotalJobs);
  FleetStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.merged.jobs_submitted, kTotalJobs);
  EXPECT_EQ(stats.merged.jobs_completed, kTotalJobs);
  EXPECT_EQ(stats.merged.jobs_failed, 0u);
  uint64_t routed = 0;
  for (const FleetDeviceStats& d : stats.devices) {
    routed += d.router.routed;
    EXPECT_EQ(d.router.outstanding, 0u);
  }
  EXPECT_EQ(routed, kTotalJobs);
}

TEST(FleetRuntimeTest, ExplicitSlotPinBypassesRouter) {
  FleetOptions opts;
  opts.base.codec = "lz4";
  ASSERT_TRUE(ParseDeviceList("qat8970,cpu", &opts.devices).ok());
  opts.placement.policy = PlacementPolicy::kStatic;
  opts.placement.static_device = "qat8970";
  FleetRuntime runtime(opts);

  ByteVec payload = GenerateWithRatio(0.4, 4096, 7);
  OffloadRequest req;
  req.op = CdpuOp::kCompress;
  req.input = payload;
  req.device_slot = 2;  // pin to cpu although the policy pins to qat8970
  OffloadResult res = runtime.Submit(std::move(req)).get();
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.device_slot, 2u);
  runtime.Shutdown();
  FleetStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.devices[1].router.routed, 1u);
  EXPECT_EQ(stats.devices[0].router.routed, 0u);
}

TEST(FleetRuntimeTest, SlotByNameResolvesFleetMembers) {
  FleetOptions opts;
  opts.base.codec = "lz4";
  ASSERT_TRUE(ParseDeviceList("dpzip:2,cpu", &opts.devices).ok());
  FleetRuntime runtime(opts);
  size_t slot = 0;
  ASSERT_TRUE(runtime.SlotByName("dpzip.1", &slot));
  EXPECT_EQ(slot, 1u);
  ASSERT_TRUE(runtime.SlotByName("cpu", &slot));
  EXPECT_EQ(slot, 2u);
  EXPECT_FALSE(runtime.SlotByName("nosuch", &slot));
  runtime.Shutdown();
}

// The ISSUE 7 acceptance bar: kill one fleet member with injected faults and
// ewma-service-rate must shed >= 90% of traffic onto the healthy member —
// while every job still completes exactly once with bit-exact output.
TEST(FleetRuntimeTest, EwmaReroutesAwayFromFaultedDevice) {
  FleetOptions opts;
  opts.base.codec = "lz4";
  opts.base.queue_pairs = 2;
  opts.base.batch_size = 2;
  opts.base.max_retries = 1;
  opts.base.unhealthy_threshold = 2;
  opts.base.reprobe_backoff_ns = 50ull * 1000 * 1000;  // stay degraded
  ASSERT_TRUE(ParseDeviceList("qat8970,cpu", &opts.devices).ok());
  // Every descriptor the qat8970 member accepts times out: the device is
  // dead, jobs survive via retry + CPU fallback, and the member's health
  // machine reports unhealthy to the router through the completion feedback.
  opts.devices[0].fault_plan.period[static_cast<uint32_t>(FaultKind::kCompletionTimeout)] =
      1;
  opts.placement.policy = PlacementPolicy::kEwmaServiceRate;
  opts.placement.seed = 11;
  FleetRuntime runtime(opts);

  ByteVec original = GenerateWithRatio(0.4, 16384, 99);
  uint32_t want_crc = Crc32(original);
  auto run_jobs = [&](int count) {
    int failures = 0, corrupt = 0;
    for (int i = 0; i < count; ++i) {
      OffloadRequest creq;
      creq.op = CdpuOp::kCompress;
      creq.input = original;
      creq.queue_pair = static_cast<uint32_t>(i % 2);
      OffloadResult cres = runtime.Submit(std::move(creq)).get();
      if (!cres.status.ok()) {
        ++failures;
        continue;
      }
      OffloadRequest dreq;
      dreq.op = CdpuOp::kDecompress;
      dreq.input = cres.output;
      dreq.ratio_hint = cres.ratio;
      dreq.queue_pair = static_cast<uint32_t>(i % 2);
      OffloadResult dres = runtime.Submit(std::move(dreq)).get();
      if (!dres.status.ok()) {
        ++failures;
      } else if (Crc32(dres.output) != want_crc) {
        ++corrupt;
      }
    }
    EXPECT_EQ(failures, 0);
    EXPECT_EQ(corrupt, 0);
  };

  // Warm-up: let the router observe the dead member's (fallback-inflated)
  // completions and its unhealthy flag.
  run_jobs(20);
  std::vector<PlacementDeviceView> warm = runtime.router().SnapshotViews();

  constexpr int kMeasureJobs = 100;
  run_jobs(kMeasureJobs);

  std::vector<PlacementDeviceView> views = runtime.router().SnapshotViews();
  uint64_t to_dead = views[0].routed - warm[0].routed;
  uint64_t to_live = views[1].routed - warm[1].routed;
  ASSERT_EQ(to_dead + to_live, static_cast<uint64_t>(kMeasureJobs) * 2);
  EXPECT_GE(static_cast<double>(to_live) / static_cast<double>(to_dead + to_live), 0.9)
      << "dead=" << to_dead << " live=" << to_live;

  runtime.Shutdown();
  FleetStats stats = runtime.Snapshot();
  // Nothing lost or duplicated across the whole run, faults included.
  EXPECT_EQ(stats.merged.jobs_submitted, stats.merged.jobs_completed);
  EXPECT_EQ(stats.merged.jobs_failed, 0u);
  EXPECT_FALSE(stats.devices[0].router.healthy);
  EXPECT_TRUE(stats.devices[1].router.healthy);
}

TEST(MergeRuntimeStatsTest, SumsCountersAndMergesDistributions) {
  RuntimeStats a;
  a.jobs_submitted = 10;
  a.jobs_completed = 10;
  a.bytes_in = 1000;
  a.wall_latency_us.Add(5.0);
  a.device_healthy = true;
  RuntimeStats b;
  b.jobs_submitted = 4;
  b.jobs_completed = 4;
  b.bytes_in = 400;
  b.wall_latency_us.Add(9.0);
  b.device_healthy = false;
  RuntimeStats merged = MergeRuntimeStats({a, b});
  EXPECT_EQ(merged.jobs_submitted, 14u);
  EXPECT_EQ(merged.bytes_in, 1400u);
  EXPECT_EQ(merged.wall_latency_us.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.wall_latency_us.mean(), 7.0);
  EXPECT_FALSE(merged.device_healthy);
}

}  // namespace
}  // namespace cdpu
