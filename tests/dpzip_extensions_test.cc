// Tests for the DPZip §6 extension features: FSE literal coding, preset
// dictionaries (the paper's earmarked future work), and multi-level
// operation within the single algorithm.

#include <gtest/gtest.h>

#include "src/core/dpzip_codec.h"
#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

std::vector<uint8_t> Page(uint64_t seed) { return GenerateDbTableLike(4096, seed); }

// ------------------------------------------------------------- fse literals

TEST(DpzipFseModeTest, RoundTripsAllPatterns) {
  DpzipCodecConfig cfg;
  cfg.entropy = DpzipEntropyMode::kFse;
  DpzipCodec codec(cfg);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    for (auto gen : {GenerateTextLike, GenerateDbTableLike, GenerateBinaryLike,
                     GenerateImageLike}) {
      std::vector<uint8_t> data = gen(4096, seed + 300);
      ByteVec compressed;
      ASSERT_TRUE(codec.Compress(data, &compressed).ok());
      ByteVec restored;
      ASSERT_TRUE(codec.Decompress(compressed, &restored).ok());
      ASSERT_EQ(restored, data);
    }
  }
}

TEST(DpzipFseModeTest, ComparableRatioToHuffman) {
  DpzipCodecConfig fse_cfg;
  fse_cfg.entropy = DpzipEntropyMode::kFse;
  DpzipCodec fse(fse_cfg);
  DpzipCodec huffman;
  std::vector<uint8_t> data = GenerateTextLike(4096, 301);
  double r_fse = fse.MeasureRatio(data);
  double r_huff = huffman.MeasureRatio(data);
  EXPECT_NEAR(r_fse, r_huff, 0.06);  // both entropy-code the same literals
}

TEST(DpzipFseModeTest, ModesAreNotCrossCompatibleButSelfDescribing) {
  // A frame records its literal coding; either codec instance decodes it.
  DpzipCodecConfig fse_cfg;
  fse_cfg.entropy = DpzipEntropyMode::kFse;
  DpzipCodec fse(fse_cfg);
  DpzipCodec huffman;
  std::vector<uint8_t> data = Page(302);
  ByteVec blob;
  ASSERT_TRUE(fse.Compress(data, &blob).ok());
  ByteVec restored;
  ASSERT_TRUE(huffman.Decompress(blob, &restored).ok());  // flags say FSE
  EXPECT_EQ(restored, data);
}

// -------------------------------------------------------------- dictionary

DpzipCodecConfig DictConfig(uint64_t seed) {
  DpzipCodecConfig cfg;
  cfg.dictionary = GenerateDbTableLike(8192, seed);
  return cfg;
}

TEST(DpzipDictionaryTest, RoundTripWithSharedDictionary) {
  DpzipCodecConfig cfg = DictConfig(500);
  DpzipCodec codec(cfg);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    std::vector<uint8_t> data = Page(500 + seed);  // same generator family
    ByteVec compressed;
    ASSERT_TRUE(codec.Compress(data, &compressed).ok());
    ByteVec restored;
    ASSERT_TRUE(codec.Decompress(compressed, &restored).ok());
    ASSERT_EQ(restored, data);
  }
}

TEST(DpzipDictionaryTest, ImprovesSmallPageRatio) {
  // §6: preset dictionaries recover cross-page redundancy that the 4 KB
  // granularity loses. Same-domain dictionary should improve the ratio.
  DpzipCodecConfig cfg = DictConfig(510);
  DpzipCodec with_dict(cfg);
  DpzipCodec without;
  double sum_with = 0;
  double sum_without = 0;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    std::vector<uint8_t> data = Page(600 + seed);
    sum_with += with_dict.MeasureRatio(data);
    sum_without += without.MeasureRatio(data);
  }
  EXPECT_LT(sum_with, sum_without * 0.97);  // >= 3% better on average
}

TEST(DpzipDictionaryTest, WrongDictionaryRejected) {
  DpzipCodec a(DictConfig(520));
  DpzipCodec b(DictConfig(521));  // different dictionary
  DpzipCodec none;
  std::vector<uint8_t> data = Page(522);
  ByteVec blob;
  ASSERT_TRUE(a.Compress(data, &blob).ok());
  ByteVec restored;
  EXPECT_FALSE(b.Decompress(blob, &restored).ok());
  EXPECT_FALSE(none.Decompress(blob, &restored).ok());
}

TEST(DpzipDictionaryTest, MatchesReachIntoDictionary) {
  // A page that is a verbatim chunk of the dictionary should collapse.
  DpzipCodecConfig cfg;
  cfg.dictionary = GenerateTextLike(8192, 530);
  DpzipCodec codec(cfg);
  std::vector<uint8_t> data(cfg.dictionary.begin() + 1024, cfg.dictionary.begin() + 5120);
  ByteVec compressed;
  Result<size_t> r = codec.Compress(data, &compressed);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(*r, data.size() / 8);  // nearly pure back-references
  ByteVec restored;
  ASSERT_TRUE(codec.Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, data);
}

TEST(DpzipDictionaryTest, IncompressiblePagesStillBypass) {
  DpzipCodec codec(DictConfig(540));
  Rng rng(541);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) {
    b = rng.NextByte();
  }
  ByteVec compressed;
  ASSERT_TRUE(codec.Compress(data, &compressed).ok());
  EXPECT_TRUE(codec.last_stats().stored_raw);
  ByteVec restored;
  ASSERT_TRUE(codec.Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, data);
}

// ------------------------------------------------------------------ levels

TEST(DpzipLevelsTest, HigherLevelsNeverMuchWorse) {
  std::vector<uint8_t> data = GenerateTextLike(65536, 550);
  double prev = 1.0;
  for (int level = 1; level <= 3; ++level) {
    DpzipCodec codec(DpzipLz77ConfigForLevel(level));
    double ratio = 0;
    for (size_t off = 0; off + 4096 <= data.size(); off += 4096) {
      ratio += codec.MeasureRatio(ByteSpan(data.data() + off, 4096));
    }
    ratio /= static_cast<double>(data.size() / 4096);
    EXPECT_LE(ratio, prev + 0.01) << "level " << level;
    prev = ratio;
  }
}

TEST(DpzipLevelsTest, Level3BeatsLevel1Ratio) {
  std::vector<uint8_t> data = GenerateTextLike(65536, 551);
  DpzipCodec l1(DpzipLz77ConfigForLevel(1));
  DpzipCodec l3(DpzipLz77ConfigForLevel(3));
  double r1 = 0;
  double r3 = 0;
  for (size_t off = 0; off + 4096 <= data.size(); off += 4096) {
    ByteSpan page(data.data() + off, 4096);
    r1 += l1.MeasureRatio(page);
    r3 += l3.MeasureRatio(page);
  }
  EXPECT_LT(r3, r1);
}

TEST(DpzipLevelsTest, AllLevelsRoundTrip) {
  for (int level = 1; level <= 3; ++level) {
    DpzipCodec codec(DpzipLz77ConfigForLevel(level));
    std::vector<uint8_t> data = GenerateXmlLike(4096, 560 + level);
    ByteVec compressed;
    ASSERT_TRUE(codec.Compress(data, &compressed).ok());
    ByteVec restored;
    ASSERT_TRUE(codec.Decompress(compressed, &restored).ok());
    EXPECT_EQ(restored, data) << "level " << level;
  }
}

// Combined: dictionary + FSE + level 3.
TEST(DpzipExtensionsTest, AllFeaturesTogether) {
  DpzipCodecConfig cfg;
  cfg.lz77 = DpzipLz77ConfigForLevel(3);
  cfg.entropy = DpzipEntropyMode::kFse;
  cfg.dictionary = GenerateDbTableLike(8192, 570);
  DpzipCodec codec(cfg);
  std::vector<uint8_t> data = Page(571);
  ByteVec compressed;
  ASSERT_TRUE(codec.Compress(data, &compressed).ok());
  ByteVec restored;
  ASSERT_TRUE(codec.Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, data);
}

}  // namespace
}  // namespace cdpu
