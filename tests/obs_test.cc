// Tests for the observability layer: the JSON document model (round-trip,
// key ordering, NaN/inf policy), the content-sized table renderer that
// replaced the fixed-width PrintRow, the shared format helpers, and the
// metric model feeding the Reporter's machine sink.

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/format.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/table.h"

namespace cdpu {
namespace obs {
namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(-17).Dump(), "-17");
  EXPECT_EQ(Json(uint64_t{18446744073709551615ull}).Dump(), "18446744073709551615");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json doc = Json::Object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mu"] = 3;
  EXPECT_EQ(doc.Dump(), "{\"zebra\":1,\"alpha\":2,\"mu\":3}");
  // Re-assignment updates in place without reordering.
  doc["alpha"] = 9;
  EXPECT_EQ(doc.Dump(), "{\"zebra\":1,\"alpha\":9,\"mu\":3}");
}

TEST(JsonTest, DumpIsDeterministic) {
  auto build = [] {
    Json doc = Json::Object();
    doc["a"] = 1;
    Json arr = Json::Array();
    arr.push_back("x");
    arr.push_back(2.25);
    doc["b"] = std::move(arr);
    return doc;
  };
  EXPECT_EQ(build().Dump(), build().Dump());
  EXPECT_EQ(build().Dump(2), build().Dump(2));
}

TEST(JsonTest, RoundTripThroughParser) {
  Json doc = Json::Object();
  doc["schema_version"] = 1;
  doc["name"] = "fig08 \"quoted\" \\ / \n\t";
  doc["pi"] = 3.141592653589793;
  doc["neg"] = -12345;
  doc["big"] = uint64_t{9007199254740993ull};  // not representable as double
  Json rows = Json::Array();
  Json row = Json::Object();
  row["x"] = 0.1;
  row["y"] = Json();
  rows.push_back(std::move(row));
  doc["rows"] = std::move(rows);

  Result<Json> parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), doc.Dump());
  EXPECT_EQ(parsed->Find("big")->AsUint(), 9007199254740993ull);
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsDouble(), 3.141592653589793);
  EXPECT_TRUE(parsed->Find("rows")->at(0).Find("y")->is_null());
}

TEST(JsonTest, PrettyPrintRoundTrips) {
  Json doc = Json::Object();
  doc["a"] = 1;
  Json inner = Json::Object();
  inner["b"] = "two";
  doc["nested"] = std::move(inner);
  Result<Json> parsed = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), doc.Dump());
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  Json doc = Json::Object();
  doc["nan"] = std::nan("");
  doc["inf"] = std::numeric_limits<double>::infinity();
  doc["ninf"] = -std::numeric_limits<double>::infinity();
  doc["ok"] = 1.0;
  EXPECT_EQ(doc.Dump(), "{\"nan\":null,\"inf\":null,\"ninf\":null,\"ok\":1}");
  // The emitted document must stay parseable.
  Result<Json> parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("nan")->is_null());
}

TEST(JsonTest, EscapesControlCharactersAndUnicodePassthrough) {
  Json doc = Json::Object();
  doc["s"] = std::string("tab\there \x01 and µ");
  Result<Json> parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("s")->AsString(), "tab\there \x01 and µ");
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("[1,2] trailing").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":nul}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  // NaN/inf are not JSON.
  EXPECT_FALSE(Json::Parse("NaN").ok());
  EXPECT_FALSE(Json::Parse("[Infinity]").ok());
}

TEST(JsonTest, ParserRejectsDuplicateKeys) {
  EXPECT_FALSE(Json::Parse("{\"a\":1,\"a\":2}").ok());
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(FmtSigned(1.5, 1), "+1.5");
  EXPECT_EQ(FmtSigned(-1.5, 1), "-1.5");
  EXPECT_EQ(FmtPercent(0.45), "45%");
  EXPECT_EQ(FmtPercent(0.4567, 1), "45.7%");
  EXPECT_EQ(FmtMbps(2e6, 2.0), "1.0");
  EXPECT_EQ(FmtMbps(2e6, 0.0), "0.0");
  EXPECT_EQ(FmtBytes(512), "512 B");
  EXPECT_EQ(FmtBytes(4096), "4 KB");
  EXPECT_EQ(FmtBytes(2 * 1024 * 1024), "2 MB");
}

TEST(TableTest, ColumnsSizeToContent) {
  // The old bench_util PrintRow used fixed 14-char columns: a cell of 14+
  // characters collided with its neighbour. The renderer must keep at least
  // two spaces between the widest cell and the next column.
  Table t("wide", "", {Column("scheme"), Column("value", "", 0)});
  t.AddRow({"a-very-long-scheme-name-over-14-chars", 42});
  t.AddRow({"short", 7});
  std::string out = t.Render();
  EXPECT_NE(out.find("a-very-long-scheme-name-over-14-chars  "), std::string::npos) << out;
  // Every data line must be at least as wide as the longest cell + gutter.
  EXPECT_NE(out.find("short"), std::string::npos);
}

TEST(TableTest, RenderCellHonorsHints) {
  Table t("hints", "",
          {Column("plain"), Column("pct", "", 1, "%"), Column("gain", "", 0, "%", true)});
  const std::vector<Column>& cols = t.columns();
  EXPECT_EQ(t.RenderCell(Json(3.14159), cols[0]), "3.14");
  EXPECT_EQ(t.RenderCell(Json(12.34), cols[1]), "12.3%");
  EXPECT_EQ(t.RenderCell(Json(74.0), cols[2]), "+74%");
  EXPECT_EQ(t.RenderCell(Json(), cols[0]), "-");
  EXPECT_EQ(t.RenderCell(Json("n/a (sockets)"), cols[1]), "n/a (sockets)");
  EXPECT_EQ(t.RenderCell(Json(true), cols[0]), "yes");
  EXPECT_EQ(t.RenderCell(Json(false), cols[0]), "no");
}

TEST(TableTest, ToJsonKeysRowsByColumn) {
  Table t("tp", "Throughput", {Column("scheme"), Column("gbps", "GB/s")});
  t.AddRow({"qat-8970", 5.1});
  t.AddNote("a note");
  Json j = t.ToJson();
  EXPECT_EQ(j.Find("name")->AsString(), "tp");
  EXPECT_EQ(j.Find("columns")->at(0).AsString(), "scheme");
  const Json& row = j.Find("rows")->at(0);
  EXPECT_EQ(row.Find("scheme")->AsString(), "qat-8970");
  EXPECT_DOUBLE_EQ(row.Find("gbps")->AsDouble(), 5.1);
  EXPECT_EQ(j.Find("notes")->at(0).AsString(), "a note");
}

TEST(MetricsTest, SectionsAndOrdering) {
  MetricSet m;
  EXPECT_TRUE(m.empty());
  m.Count("jobs", 2);
  m.Count("jobs", 3);
  m.Gauge("gbps", 5.5);
  m.Gauge("gbps", 6.5);  // overwrite
  m.AddTimerNs("run", 1500);
  m.Observe("lat", 1.0);
  m.Observe("lat", 3.0);
  EXPECT_FALSE(m.empty());

  Json j = m.ToJson();
  EXPECT_EQ(j.Find("counters")->Find("jobs")->AsUint(), 5u);
  EXPECT_DOUBLE_EQ(j.Find("gauges")->Find("gbps")->AsDouble(), 6.5);
  EXPECT_DOUBLE_EQ(j.Find("timers_us")->Find("run")->AsDouble(), 1.5);
  const Json* lat = j.Find("series")->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->AsUint(), 2u);
  EXPECT_DOUBLE_EQ(lat->Find("mean")->AsDouble(), 2.0);
}

TEST(MetricsTest, EmptySectionsOmitted) {
  MetricSet m;
  m.Count("only_counter");
  Json j = m.ToJson();
  EXPECT_NE(j.Find("counters"), nullptr);
  EXPECT_EQ(j.Find("gauges"), nullptr);
  EXPECT_EQ(j.Find("timers_us"), nullptr);
  EXPECT_EQ(j.Find("series"), nullptr);
}

TEST(MetricsTest, SummarizeRunningStats) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  Json j = SummarizeRunningStats(s);
  EXPECT_EQ(j.Find("count")->AsUint(), 3u);
  EXPECT_DOUBLE_EQ(j.Find("mean")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(j.Find("min")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(j.Find("max")->AsDouble(), 3.0);
}

TEST(ReporterTest, JsonDocumentShape) {
  Reporter r;
  r.SetRun("figXX", "Figure XX", "a test experiment", "quick");
  r.Meta("generator", "obs_test");
  Table& t = r.AddTable("tp", "", {Column("scheme"), Column("gbps")});
  t.AddRow({"dev", 1.25});
  r.Note("note text");
  r.metrics().Count("jobs", 7);

  Json doc = r.ToJson();
  EXPECT_EQ(doc.Find("schema_version")->AsInt(), kSchemaVersion);
  EXPECT_EQ(doc.Find("experiment")->AsString(), "figXX");
  EXPECT_EQ(doc.Find("preset")->AsString(), "quick");
  EXPECT_EQ(doc.Find("meta")->Find("generator")->AsString(), "obs_test");
  EXPECT_EQ(doc.Find("tables")->size(), 1u);
  EXPECT_EQ(doc.Find("notes")->at(0).AsString(), "note text");
  EXPECT_EQ(doc.Find("metrics")->Find("counters")->Find("jobs")->AsUint(), 7u);

  // The header keys come first and in schema order.
  const auto& members = doc.members();
  ASSERT_GE(members.size(), 5u);
  EXPECT_EQ(members[0].first, "schema_version");
  EXPECT_EQ(members[1].first, "experiment");
  EXPECT_EQ(members[2].first, "title");
  EXPECT_EQ(members[3].first, "description");
  EXPECT_EQ(members[4].first, "preset");
}

TEST(ReporterTest, WriteJsonFileRoundTrips) {
  Reporter r;
  r.SetRun("figwrite", "Figure W", "writes a file", "paper");
  Table& t = r.AddTable("only", "", {Column("k"), Column("v", "", 3)});
  t.AddRow({"a", 0.125});

  std::string path = testing::TempDir() + "/BENCH_figwrite.json";
  ASSERT_TRUE(r.WriteJsonFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), r.ToJson().Dump());
}

}  // namespace
}  // namespace obs
}  // namespace cdpu
