// Unit tests for src/common: status, bit streams, varints, stats, RNG, CRC.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/bitstream.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/varint.h"

namespace cdpu {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::CorruptData("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_EQ(s.ToString(), "CORRUPT_DATA: bad magic");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(BitstreamTest, RoundTripMixedWidths) {
  std::vector<uint8_t> buf;
  BitWriter bw(&buf);
  bw.Write(0b101, 3);
  bw.Write(0xbeef, 16);
  bw.Write(1, 1);
  bw.Write(0x1234567, 28);
  bw.AlignToByte();

  BitReader br(buf);
  EXPECT_EQ(br.Read(3), 0b101u);
  EXPECT_EQ(br.Read(16), 0xbeefu);
  EXPECT_EQ(br.Read(1), 1u);
  EXPECT_EQ(br.Read(28), 0x1234567u);
  EXPECT_FALSE(br.overflowed());
}

TEST(BitstreamTest, PeekDoesNotConsume) {
  std::vector<uint8_t> buf;
  BitWriter bw(&buf);
  bw.Write(0xab, 8);
  bw.AlignToByte();

  BitReader br(buf);
  EXPECT_EQ(br.Peek(8), 0xabu);
  EXPECT_EQ(br.Peek(8), 0xabu);
  EXPECT_EQ(br.Read(8), 0xabu);
}

TEST(BitstreamTest, OverflowDetected) {
  std::vector<uint8_t> buf = {0xff};
  BitReader br(buf);
  br.Read(8);
  br.Read(8);
  EXPECT_TRUE(br.overflowed());
}

TEST(BitstreamTest, BackwardReaderReadsReverseOrder) {
  std::vector<uint8_t> buf;
  MarkedBitWriter bw(&buf);
  bw.Write(0b110, 3);   // written first
  bw.Write(0b01, 2);    // written second
  bw.Finish();

  BackwardBitReader br(buf);
  EXPECT_EQ(br.Read(2), 0b01u);  // most recently written comes out first
  EXPECT_EQ(br.Read(3), 0b110u);
  EXPECT_FALSE(br.overflowed());
}

TEST(BitstreamTest, BackwardReaderLongStream) {
  std::vector<uint8_t> buf;
  MarkedBitWriter bw(&buf);
  Rng rng(3);
  std::vector<std::pair<uint64_t, uint32_t>> writes;
  for (int i = 0; i < 500; ++i) {
    uint32_t width = 1 + static_cast<uint32_t>(rng.Uniform(24));
    uint64_t v = rng.Next() & ((uint64_t{1} << width) - 1);
    writes.push_back({v, width});
    bw.Write(v, width);
  }
  bw.Finish();

  BackwardBitReader br(buf);
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
    EXPECT_EQ(br.Read(it->second), it->first);
  }
  EXPECT_FALSE(br.overflowed());
}

TEST(VarintTest, RoundTrip32) {
  std::vector<uint8_t> buf;
  for (uint32_t v : {0u, 1u, 127u, 128u, 300u, 1u << 20, 0xffffffffu}) {
    buf.clear();
    PutVarint32(&buf, v);
    size_t pos = 0;
    auto got = GetVarint32(buf, &pos);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RoundTrip64) {
  std::vector<uint8_t> buf;
  for (uint64_t v : {uint64_t{0}, uint64_t{1} << 40, ~uint64_t{0}}) {
    buf.clear();
    PutVarint64(&buf, v);
    size_t pos = 0;
    auto got = GetVarint64(buf, &pos);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

TEST(VarintTest, TruncatedReturnsNullopt) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // continuation without end
  size_t pos = 0;
  EXPECT_FALSE(GetVarint32(buf, &pos).has_value());
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StatsTest, SampleSetPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Median(), 50.5);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.1);
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 100.0);
}

TEST(StatsTest, CvOfConstantIsZero) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) {
    s.Add(3.5);
  }
  EXPECT_DOUBLE_EQ(s.CvPercent(), 0.0);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (standard check value).
  const char* s = "123456789";
  std::span<const uint8_t> data(reinterpret_cast<const uint8_t*>(s), 9);
  EXPECT_EQ(Crc32(data), 0xcbf43926u);
}

TEST(RunningStatsTest, MergeMatchesSingleAccumulator) {
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    double x = static_cast<double>(rng.NextByte()) + 0.25 * i;
    whole.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());

  RunningStats empty;
  a.Merge(empty);  // merging an empty accumulator is a no-op
  EXPECT_EQ(a.count(), whole.count());
  empty.Merge(a);  // merging into an empty accumulator copies
  EXPECT_NEAR(empty.mean(), whole.mean(), 1e-9);
}

TEST(AtomicStatsTest, CountersAccumulateAcrossThreads) {
  AtomicThroughput tp;
  AtomicHighWater hw;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        tp.Record(100, 40);
        hw.Observe(static_cast<uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(tp.ops(), 4000u);
  EXPECT_EQ(tp.bytes_in(), 400000u);
  EXPECT_EQ(tp.bytes_out(), 160000u);
  EXPECT_EQ(hw.max(), 3999u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  Rng rng(9);
  for (auto& b : data) {
    b = rng.NextByte();
  }
  uint32_t whole = Crc32(data);
  uint32_t part = Crc32(std::span<const uint8_t>(data).subspan(0, 400));
  part = Crc32(std::span<const uint8_t>(data).subspan(400), part);
  EXPECT_EQ(whole, part);
}

}  // namespace
}  // namespace cdpu
