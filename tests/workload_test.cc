// Tests for the workload generators: corpus structure, the compressibility
// and entropy dials, YCSB runner behaviour, and the block cache.

#include <gtest/gtest.h>

#include <set>

#include "src/codecs/codec.h"
#include "src/codecs/entropy.h"
#include "src/kv/block_cache.h"
#include "src/kv/sstable.h"
#include "src/kv/ycsb_runner.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

// ----------------------------------------------------------------- corpus

TEST(CorpusTest, TwelveFilesWithCategories) {
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(16 * 1024, 1);
  EXPECT_EQ(corpus.size(), 12u);
  int text = 0;
  int image = 0;
  for (const CorpusFile& f : corpus) {
    EXPECT_EQ(f.data.size(), 16 * 1024u);
    EXPECT_FALSE(f.name.empty());
    text += f.category == "text" ? 1 : 0;
    image += f.category == "image" ? 1 : 0;
  }
  EXPECT_GE(text, 2);
  EXPECT_GE(image, 2);
}

TEST(CorpusTest, Deterministic) {
  std::vector<CorpusFile> a = SilesiaLikeCorpus(8192, 7);
  std::vector<CorpusFile> b = SilesiaLikeCorpus(8192, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].data, b[i].data);
  }
}

TEST(CorpusTest, CategoriesDifferInCompressibility) {
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(64 * 1024, 2);
  auto codec = MakeCodec("deflate-1");
  double text_ratio = 0;
  double image_ratio = 0;
  int text_n = 0;
  int image_n = 0;
  for (const CorpusFile& f : corpus) {
    double r = codec->MeasureRatio(f.data);
    if (f.category == "text") {
      text_ratio += r;
      ++text_n;
    } else if (f.category == "image") {
      image_ratio += r;
      ++image_n;
    }
  }
  EXPECT_LT(text_ratio / text_n, 0.6);
  // x-ray/mr-like files are much harder than text for byte-level LZ.
  EXPECT_GT(image_ratio / image_n, (text_ratio / text_n) * 1.5);
}

// ------------------------------------------------------------- ratio dial

TEST(RatioDialTest, SweepIsMonotoneAndCoversRange) {
  auto codec = MakeCodec("deflate-6");
  double prev = 0;
  for (double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<uint8_t> data = GenerateWithRatio(target, 64 * 1024, 3);
    double achieved = codec->MeasureRatio(data);
    EXPECT_GT(achieved, prev) << "target " << target;
    EXPECT_NEAR(achieved, target, 0.18) << "target " << target;
    prev = achieved;
  }
}

TEST(RatioDialTest, IncompressibleIsIncompressible) {
  std::vector<uint8_t> data = GenerateWithRatio(1.0, 16 * 1024, 4);
  EXPECT_GT(MakeCodec("deflate-6")->MeasureRatio(data), 0.95);
  EXPECT_GT(ShannonEntropy(data), 7.9);
}

// ------------------------------------------------------------ ycsb runner

TEST(YcsbRunnerTest, LoadThenRunProducesThroughput) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 128 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 32 * 1024;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kOff));

  YcsbConfig ycfg;
  ycfg.record_count = 200;
  ycfg.value_size = 200;
  YcsbWorkload wl(ycfg);
  SimNanos clock = 0;
  ASSERT_TRUE(YcsbLoad(&db, wl, &clock).ok());

  Result<YcsbRunResult> r = YcsbRun(&db, &wl, 4, 800, clock);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ops, 800u);
  EXPECT_GT(r->kops, 0.0);
  EXPECT_GT(r->reads, 200u);
  EXPECT_GT(r->read_hits, r->reads / 2);  // loaded keys mostly found
  EXPECT_GT(r->mean_read_latency_us, 0.0);
  EXPECT_GE(r->p99_read_latency_us, r->mean_read_latency_us);
}

TEST(YcsbRunnerTest, MoreThreadsMoreThroughputUntilSaturation) {
  auto run = [](uint32_t threads) {
    SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 128 * 1024));
    LsmConfig cfg;
    cfg.memtable_bytes = 32 * 1024;
    LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kOff));
    YcsbConfig ycfg;
    ycfg.record_count = 200;
    ycfg.value_size = 200;
    YcsbWorkload wl(ycfg);
    SimNanos clock = 0;
    EXPECT_TRUE(YcsbLoad(&db, wl, &clock).ok());
    Result<YcsbRunResult> r = YcsbRun(&db, &wl, threads, 800, clock);
    EXPECT_TRUE(r.ok());
    return r->kops;
  };
  EXPECT_GT(run(8), run(1) * 1.5);
}

TEST(YcsbRunnerTest, ZeroOpsIsEmptyResult) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 64 * 1024));
  LsmDb db(LsmConfig{}, &ssd, MakeSchemeBackend(CompressionScheme::kOff));
  YcsbWorkload wl(YcsbConfig{});
  Result<YcsbRunResult> r = YcsbRun(&db, &wl, 4, 0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ops, 0u);
}

TEST(YcsbWorkloadsTest, MixRatiosPerWorkload) {
  auto update_fraction = [](char wl) {
    YcsbConfig cfg;
    cfg.workload = wl;
    YcsbWorkload w(cfg);
    int writes = 0;
    for (int i = 0; i < 10000; ++i) {
      YcsbOp op = w.NextRequest().op;
      writes += (op == YcsbOp::kUpdate || op == YcsbOp::kInsert ||
                 op == YcsbOp::kReadModifyWrite)
                    ? 1
                    : 0;
    }
    return writes / 10000.0;
  };
  EXPECT_NEAR(update_fraction('A'), 0.50, 0.03);
  EXPECT_NEAR(update_fraction('B'), 0.05, 0.01);
  EXPECT_DOUBLE_EQ(update_fraction('C'), 0.0);
  EXPECT_NEAR(update_fraction('D'), 0.05, 0.01);
  EXPECT_NEAR(update_fraction('F'), 0.50, 0.03);
}

TEST(YcsbWorkloadsTest, WorkloadDReadsSkewToLatest) {
  YcsbConfig cfg;
  cfg.workload = 'D';
  cfg.record_count = 1000;
  YcsbWorkload w(cfg);
  uint64_t latest_decile_reads = 0;
  uint64_t reads = 0;
  for (int i = 0; i < 20000; ++i) {
    YcsbRequest r = w.NextRequest();
    if (r.op == YcsbOp::kRead) {
      ++reads;
      if (r.key + 100 >= w.current_record_count()) {
        ++latest_decile_reads;
      }
    }
  }
  EXPECT_GT(w.current_record_count(), cfg.record_count);  // inserts happened
  EXPECT_GT(static_cast<double>(latest_decile_reads) / reads, 0.5);
}

TEST(YcsbWorkloadsTest, WorkloadDRunsThroughDatabase) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 128 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 32 * 1024;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kDpCsd));
  YcsbConfig ycfg;
  ycfg.workload = 'D';
  ycfg.record_count = 200;
  ycfg.value_size = 200;
  YcsbWorkload wl(ycfg);
  SimNanos clock = 0;
  ASSERT_TRUE(YcsbLoad(&db, wl, &clock).ok());
  Result<YcsbRunResult> r = YcsbRun(&db, &wl, 4, 1000, clock);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->read_hits, r->reads / 2);  // inserted keys become readable
}

// ------------------------------------------------------------ block cache

TEST(BlockCacheTest, HitAfterInsert) {
  BlockCache cache(1 << 20);
  BlockCache::Key key = BlockCache::MakeKey(7, 3);
  EXPECT_EQ(cache.Get(key), nullptr);
  cache.Insert(key, {{"k", "v", false}}, 100);
  const auto* hit = cache.Get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0].key, "k");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(300);
  for (size_t i = 0; i < 4; ++i) {
    cache.Insert(BlockCache::MakeKey(1, i), {}, 100);  // capacity 3
  }
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(1, 0)), nullptr);  // evicted
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 3)), nullptr);
}

TEST(BlockCacheTest, TouchKeepsEntryAlive) {
  BlockCache cache(300);
  cache.Insert(BlockCache::MakeKey(1, 0), {}, 100);
  cache.Insert(BlockCache::MakeKey(1, 1), {}, 100);
  cache.Insert(BlockCache::MakeKey(1, 2), {}, 100);
  cache.Get(BlockCache::MakeKey(1, 0));                      // touch 0
  cache.Insert(BlockCache::MakeKey(1, 3), {}, 100);          // evicts 1
  EXPECT_NE(cache.Get(BlockCache::MakeKey(1, 0)), nullptr);
  EXPECT_EQ(cache.Get(BlockCache::MakeKey(1, 1)), nullptr);
}

TEST(BlockCacheTest, EraseTableDropsAllBlocks) {
  BlockCache cache(1 << 20);
  for (size_t i = 0; i < 5; ++i) {
    cache.Insert(BlockCache::MakeKey(1, i), {}, 10);
    cache.Insert(BlockCache::MakeKey(2, i), {}, 10);
  }
  cache.EraseTable(1, 5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.Get(BlockCache::MakeKey(1, i)), nullptr);
    EXPECT_NE(cache.Get(BlockCache::MakeKey(2, i)), nullptr);
  }
  EXPECT_EQ(cache.used_bytes(), 50u);
}

// Regression: the key was once derived from the table's heap address
// ((ptr << 16) ^ index), which collides across tables — the shift discards
// the address's high bits and XOR lets (table, index) pairs alias — and
// breaks outright when the allocator recycles a freed table's address.
// Monotonic ids must produce distinct keys across a dense (table, block)
// cross product.
TEST(BlockCacheTest, KeysAreUniqueAcrossTablesAndBlocks) {
  std::set<BlockCache::Key> keys;
  for (uint64_t table = 1; table <= 64; ++table) {
    for (size_t block = 0; block < 64; ++block) {
      EXPECT_TRUE(keys.insert(BlockCache::MakeKey(table, block)).second)
          << "collision at table " << table << " block " << block;
    }
  }
}

// Regression: tables must carry distinct cache identities even when one is
// destroyed and another is built at the same heap address. With id-based
// keys a fresh table can never observe a dead table's cached blocks.
TEST(BlockCacheTest, RecycledTablesGetFreshIdentities) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 64 * 1024));
  LpnAllocator lpns;
  KvCompressionBackend backend = MakeSchemeBackend(CompressionScheme::kOff);
  BlockCache cache(1 << 20);
  SsTable::BuildContext ctx{&ssd, &lpns, &backend, &cache};

  std::vector<Skiplist::Entry> entries{{"a", "old-value", false}};
  std::set<uint64_t> ids;
  for (int round = 0; round < 8; ++round) {
    Result<SsTable::BuildOutcome> built = SsTable::Build(entries, ctx, 0);
    ASSERT_TRUE(built.ok());
    // Populate the cache with this table's block, then release the table;
    // the next build may land on the same heap address.
    Result<SsTable::GetOutcome> got = built->table->Get("a", built->completion);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(ids.insert(built->table->table_id()).second);
    built->table->Release();
  }
}

TEST(BlockCacheTest, CacheSpeedsUpHotReads) {
  // End-to-end: with a cache, repeated reads of the same key get faster.
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 64 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 16 * 1024;
  cfg.block_cache_bytes = 1 << 20;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kOff));
  SimNanos t = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> v = GenerateTextLike(200, i);
    Result<SimNanos> w = db.Put(YcsbWorkload::KeyString(i), std::string(v.begin(), v.end()), t);
    ASSERT_TRUE(w.ok());
    t = *w;
  }
  ASSERT_TRUE(db.FlushMemtable(t).ok());

  Result<LsmDb::GetOutcome> cold = db.Get(YcsbWorkload::KeyString(5), t);
  ASSERT_TRUE(cold.ok());
  Result<LsmDb::GetOutcome> warm = db.Get(YcsbWorkload::KeyString(5), cold->completion);
  ASSERT_TRUE(warm.ok());
  SimNanos cold_lat = cold->completion - t;
  SimNanos warm_lat = warm->completion - cold->completion;
  EXPECT_LT(warm_lat, cold_lat / 2);
  EXPECT_GT(db.block_cache()->hits(), 0u);
}

}  // namespace
}  // namespace cdpu
