// Tests for the shared-device queue (CdpuQueue), the bounded MultiServerQueue
// rejection path, and the scheme factory wiring.

#include <gtest/gtest.h>

#include "src/hw/cdpu_queue.h"
#include "src/hw/device_configs.h"
#include "src/sim/queueing.h"
#include "src/ssd/scheme.h"

namespace cdpu {
namespace {

TEST(CdpuQueueTest, SequentialRequestsSerializeOnOneEngine) {
  CdpuConfig cfg = Qat4xxxConfig();
  cfg.engines = 1;
  CdpuQueue q(cfg);
  SimNanos c1 = q.Submit(CdpuOp::kCompress, 65536, 0.45, 0);
  SimNanos c2 = q.Submit(CdpuOp::kCompress, 65536, 0.45, 0);
  // Second request waits for the single engine.
  EXPECT_GT(c2, c1);
  EXPECT_EQ(q.requests(), 2u);
  EXPECT_GT(q.busy_ns(), 0u);
}

TEST(CdpuQueueTest, ParallelEnginesOverlap) {
  CdpuConfig cfg = Qat4xxxConfig();
  CdpuQueue q(cfg);  // 2 engines
  SimNanos c1 = q.Submit(CdpuOp::kCompress, 65536, 0.45, 0);
  SimNanos c2 = q.Submit(CdpuOp::kCompress, 65536, 0.45, 0);
  EXPECT_NEAR(static_cast<double>(c2), static_cast<double>(c1),
              static_cast<double>(c1) * 0.2);
}

TEST(CdpuQueueTest, ContentionRaisesLatency) {
  CdpuQueue q(Qat8970Config());
  SimNanos base = q.Submit(CdpuOp::kCompress, 4096, 0.45, 0);
  SimNanos last = 0;
  for (int i = 0; i < 100; ++i) {
    last = q.Submit(CdpuOp::kCompress, 4096, 0.45, 0);  // all arrive at t=0
  }
  EXPECT_GT(last - 0, (base - 0) * 4);  // deep backlog
}

TEST(CdpuQueueTest, InStorageSkipsHostLink) {
  CdpuQueue dpzip(DpzipCdpuConfig());
  CdpuQueue qat(Qat8970Config());
  SimNanos d = dpzip.Submit(CdpuOp::kCompress, 4096, 0.45, 0);
  SimNanos q = qat.Submit(CdpuOp::kCompress, 4096, 0.45, 0);
  EXPECT_LT(d, q);  // no PCIe DMA, no heavy driver stack
}

TEST(MultiServerQueueTest, BoundedQueueRejects) {
  MultiServerQueue q(1, /*queue_limit=*/2);
  // One in service, two queued; the fourth concurrent arrival is rejected.
  EXPECT_FALSE(q.Submit(0, 1000).rejected);
  EXPECT_FALSE(q.Submit(0, 1000).rejected);
  EXPECT_FALSE(q.Submit(0, 1000).rejected);
  ServiceOutcome fourth = q.Submit(0, 1000);
  EXPECT_TRUE(fourth.rejected);
  EXPECT_EQ(q.rejected(), 1u);
  // After the backlog drains, new arrivals are admitted again.
  EXPECT_FALSE(q.Submit(10000, 1000).rejected);
}

TEST(MultiServerQueueTest, ResetClearsState) {
  MultiServerQueue q(2);
  q.Submit(0, 500);
  q.Reset();
  EXPECT_EQ(q.completed(), 0u);
  EXPECT_EQ(q.busy_ns(), 0u);
  ServiceOutcome o = q.Submit(0, 500);
  EXPECT_EQ(o.start, 0u);
}

TEST(SchemeTest, NamesAndBackendsConsistent) {
  EXPECT_STREQ(SchemeName(CompressionScheme::kOff), "OFF");
  EXPECT_STREQ(SchemeName(CompressionScheme::kDpCsd), "DP-CSD");

  CompressionBackend off = MakeSchemeBackend(CompressionScheme::kOff);
  EXPECT_EQ(off.codec, nullptr);
  EXPECT_EQ(off.device, nullptr);

  CompressionBackend qat = MakeSchemeBackend(CompressionScheme::kQat4xxx);
  ASSERT_NE(qat.codec, nullptr);
  ASSERT_NE(qat.device, nullptr);
  EXPECT_EQ(qat.device->config().placement, Placement::kOnChip);

  CompressionBackend dpcsd = MakeSchemeBackend(CompressionScheme::kDpCsd);
  EXPECT_EQ(dpcsd.codec, nullptr);  // app-transparent
}

TEST(SchemeTest, SsdPersonalities) {
  EXPECT_EQ(MakeSchemeSsdConfig(CompressionScheme::kOff).compression,
            SsdCompressionMode::kNone);
  EXPECT_EQ(MakeSchemeSsdConfig(CompressionScheme::kDpCsd).compression,
            SsdCompressionMode::kDpzip);
  SsdConfig csd = MakeSchemeSsdConfig(CompressionScheme::kCsd2000);
  EXPECT_EQ(csd.compression, SsdCompressionMode::kFpgaGzip);
  EXPECT_EQ(csd.cdpu_engines, 1u);  // single FPGA engine (Finding 7)
  EXPECT_EQ(csd.host_link.name, "pcie3x4");
}

TEST(SchemeTest, NandSizedForLogicalSpace) {
  SsdConfig c = MakeSchemeSsdConfig(CompressionScheme::kOff, 1 << 20);
  EXPECT_GE(c.ftl.nand.TotalPages(), (1u << 20) + (1u << 18));  // 25% OP
}

}  // namespace
}  // namespace cdpu
