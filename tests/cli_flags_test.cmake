# Regression test for strict CLI flag parsing: every malformed invocation
# must exit 2 (usage), never 0. Run via
#   cmake -DCLI=<path-to-cdpu_cli> -P cli_flags_test.cmake

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to cdpu_cli>")
endif()

set(failures 0)

function(expect_exit code)
  # ARGN = the cdpu_cli argument list.
  execute_process(COMMAND "${CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${code})
    message(SEND_ERROR "cdpu_cli ${ARGN}: expected exit ${code}, got ${rc}")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
  endif()
endfunction()

# Historically these exited 0 despite junk input.
expect_exit(2 bench lz4 /dev/null not-a-number)
expect_exit(2 bench lz4 /dev/null --bogus-flag)
expect_exit(2 bench lz4 /dev/null 65536 --bogus-flag)
expect_exit(2 entropy /dev/null junk-chunk)
expect_exit(2 list extra-arg)

# Unknown/malformed flags on the runtime subcommands.
expect_exit(2 offload lz4 /dev/null --bogus-flag)
expect_exit(2 offload lz4 /dev/null --threads=abc)
expect_exit(2 offload lz4 /dev/null --trace-sample=1.5)
expect_exit(2 offload lz4 /dev/null --trace-sample=abc)
expect_exit(2 serve --bogus-flag)
expect_exit(2 client --port=notaport)

# No subcommand / unknown subcommand.
expect_exit(2)
expect_exit(2 frobnicate)

# Sanity: a valid invocation still succeeds.
expect_exit(0 list)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI flag-parsing check(s) failed")
endif()
