# Regression test for strict CLI flag parsing: every malformed invocation
# must exit 2 (usage), never 0. Covers both front ends of the shared
# driver — cdpu_cli and the cdpu_bench experiment driver. Run via
#   cmake -DCLI=<path-to-cdpu_cli> -DBENCH=<path-to-cdpu_bench> \
#         -P cli_flags_test.cmake

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to cdpu_cli>")
endif()
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "pass -DBENCH=<path to cdpu_bench>")
endif()

set(failures 0)

function(expect_exit code)
  # ARGN = the cdpu_cli argument list.
  execute_process(COMMAND "${CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${code})
    message(SEND_ERROR "cdpu_cli ${ARGN}: expected exit ${code}, got ${rc}")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
  endif()
endfunction()

function(expect_bench_exit code)
  # ARGN = the cdpu_bench argument list.
  execute_process(COMMAND "${BENCH}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${code})
    message(SEND_ERROR "cdpu_bench ${ARGN}: expected exit ${code}, got ${rc}")
    math(EXPR failures "${failures}+1")
    set(failures ${failures} PARENT_SCOPE)
  endif()
endfunction()

# Historically these exited 0 despite junk input.
expect_exit(2 bench lz4 /dev/null not-a-number)
expect_exit(2 bench lz4 /dev/null --bogus-flag)
expect_exit(2 bench lz4 /dev/null 65536 --bogus-flag)
expect_exit(2 entropy /dev/null junk-chunk)
expect_exit(2 list extra-arg)

# Unknown/malformed flags on the runtime subcommands.
expect_exit(2 offload lz4 /dev/null --bogus-flag)
expect_exit(2 offload lz4 /dev/null --threads=abc)
expect_exit(2 offload lz4 /dev/null --trace-sample=1.5)
expect_exit(2 offload lz4 /dev/null --trace-sample=abc)
expect_exit(2 serve --bogus-flag)
expect_exit(2 client --port=notaport)

# The telemetry scrape commands (ISSUE 10): missing host, missing port,
# malformed numeric flags and unknown flags all exit 2.
expect_exit(2 stats)
expect_exit(2 stats 127.0.0.1)
expect_exit(2 stats 127.0.0.1 --bogus-flag)
expect_exit(2 stats 127.0.0.1 --port=notaport)
expect_exit(2 stats --port=1)
expect_exit(2 top)
expect_exit(2 top 127.0.0.1)
expect_exit(2 top --port=notaport)
expect_exit(2 top 127.0.0.1 --port=1 --interval-ms=abc)
expect_exit(2 top 127.0.0.1 --port=1 --interval-ms=0)
expect_exit(2 top 127.0.0.1 --port=1 --bogus-flag)

# Unknown codec names must exit 2 with usage on every front end that names
# one, including the serve/adapt knobs ("auto" is a request-side pseudo-codec
# and is NOT valid as a server default or model candidate).
expect_exit(2 offload nosuchcodec /dev/null)
expect_exit(2 client compress nosuchcodec /dev/null /dev/null --port=1)
expect_exit(2 serve --codec=nosuchcodec)
expect_exit(2 serve --codec=auto)
expect_exit(2 serve --adapt-candidates=lz4,nosuchcodec)
expect_exit(2 serve --adapt-candidates=)
expect_exit(2 serve --adapt-mode=bogus)
expect_exit(2 serve --adapt-bias=speed)
expect_exit(2 serve --adapt-probe=abc)

# Fleet flags: malformed device lists / unknown policies.
expect_exit(2 offload lz4 /dev/null --devices=)
expect_exit(2 offload lz4 /dev/null --devices=nosuchdev)
expect_exit(2 offload lz4 /dev/null --devices=qat8970:0)
expect_exit(2 offload lz4 /dev/null --devices=qat8970:abc)
expect_exit(2 offload lz4 /dev/null --devices=qat8970,,cpu)
expect_exit(2 offload lz4 /dev/null --placement=round-robin)
expect_exit(2 serve --devices=nosuchdev)
expect_exit(2 serve --placement=bogus)

# No subcommand / unknown subcommand.
expect_exit(2)
expect_exit(2 frobnicate)

# Sanity: a valid invocation still succeeds.
expect_exit(0 list)

# The cdpu_bench driver (also reachable as `cdpu_cli bench run|...`) had the
# same class of bug: `list` swallowed stray args, `validate` tried to open
# flag-shaped args as files.
expect_bench_exit(2)
expect_bench_exit(2 frobnicate)
expect_bench_exit(2 list --all)
expect_bench_exit(2 list extra-arg)
expect_bench_exit(2 run)
expect_bench_exit(2 run nosuchexperiment)
expect_bench_exit(2 run table01 --bogus-flag)
expect_bench_exit(2 run table01 --preset=fast)
expect_bench_exit(2 run table01 --devices=nosuchdev)
expect_bench_exit(2 run table01 --placement=bogus)
expect_bench_exit(2 run --all table01)
expect_bench_exit(2 validate)
expect_bench_exit(2 validate --quiet)
expect_bench_exit(2 validate --no-such-flag some.json)

# Sanity: the bench driver still lists cleanly, and the same matrix holds
# through the cdpu_cli passthrough.
expect_bench_exit(0 list)
expect_exit(2 bench list --all)
expect_exit(2 bench run table01 --bogus-flag)
expect_exit(2 bench validate --quiet)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI flag-parsing check(s) failed")
endif()
