// Tests for the per-request tracing layer (src/trace): ring/buffer drop
// accounting, per-writer ordering, deterministic sampling, the thread-local
// codec-phase hooks, the breakdown aggregation pass (contiguous phase sums
// vs end-to-end), the Chrome trace exporter, and a multi-threaded
// writers-vs-collector run that the CI TSan job executes under
// ThreadSanitizer.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "src/obs/report.h"
#include "src/trace/breakdown.h"
#include "src/trace/trace.h"

namespace cdpu {
namespace trace {
namespace {

TraceSinkOptions ManualOptions() {
  TraceSinkOptions o;
  o.start_collector = false;  // tests drive CollectOnce by hand
  return o;
}

SpanRecord MakeSpan(uint64_t id, Phase phase, uint64_t start, uint64_t end,
                    uint32_t tenant = 0, uint16_t label = 0) {
  SpanRecord r;
  r.request_id = id;
  r.start_ns = start;
  r.end_ns = end;
  r.tenant = tenant;
  r.label = label;
  r.phase = phase;
  return r;
}

TEST(TraceSinkTest, RingOverflowCountsDrops) {
  TraceSinkOptions o = ManualOptions();
  o.ring_capacity = 4;  // SpscRing rounds to a power of two and holds exactly that
  TraceSink sink(o);
  TraceSink::Writer* w = sink.RegisterWriter("t");
  for (uint64_t i = 0; i < 10; ++i) {
    w->Emit(MakeSpan(i + 1, Phase::kCodec, i, i + 1));
  }
  TraceCounters c = sink.counters();
  EXPECT_EQ(c.emitted, 4u);
  EXPECT_EQ(c.dropped_ring, 6u);

  // Draining frees the ring; new emits land again.
  EXPECT_EQ(sink.CollectOnce(), 4u);
  w->Emit(MakeSpan(99, Phase::kCodec, 0, 1));
  c = sink.counters();
  EXPECT_EQ(c.emitted, 5u);
  EXPECT_EQ(c.dropped_ring, 6u);
}

TEST(TraceSinkTest, BufferOverflowCountsDrops) {
  TraceSinkOptions o = ManualOptions();
  o.ring_capacity = 64;
  o.buffer_capacity = 8;
  TraceSink sink(o);
  TraceSink::Writer* w = sink.RegisterWriter("t");
  for (uint64_t i = 0; i < 20; ++i) {
    w->Emit(MakeSpan(i + 1, Phase::kCodec, i, i + 1));
  }
  sink.CollectOnce();
  TraceCounters c = sink.counters();
  EXPECT_EQ(c.collected, 8u);
  EXPECT_EQ(c.dropped_buffer, 12u);
  EXPECT_EQ(sink.Snapshot().size(), 8u);
}

TEST(TraceSinkTest, PerWriterEmitOrderPreserved) {
  TraceSink sink(ManualOptions());
  TraceSink::Writer* w = sink.RegisterWriter("t");
  for (uint64_t i = 0; i < 100; ++i) {
    w->Emit(MakeSpan(i + 1, Phase::kCodec, i, i + 1));
  }
  sink.CollectOnce();
  std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 100u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, i + 1);
  }
}

TEST(TraceSinkTest, SamplingIsDeterministicAndCounted) {
  TraceSinkOptions all = ManualOptions();
  all.sample_rate = 1.0;
  TraceSink every(all);
  uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    uint64_t id = every.StartRequest();
    EXPECT_GT(id, prev);  // nonzero and monotonic
    prev = id;
  }
  EXPECT_EQ(every.counters().sampled, 50u);
  EXPECT_EQ(every.counters().unsampled, 0u);

  TraceSinkOptions none = ManualOptions();
  none.sample_rate = 0.0;
  TraceSink never(none);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(never.StartRequest(), 0u);
  }
  EXPECT_EQ(never.counters().unsampled, 50u);

  // The decision is a pure function of the drawn id: two sinks at the same
  // rate sample the same subset.
  TraceSinkOptions half = ManualOptions();
  half.sample_rate = 0.5;
  TraceSink a(half);
  TraceSink b(half);
  uint64_t sampled = 0;
  for (int i = 0; i < 200; ++i) {
    uint64_t ia = a.StartRequest();
    uint64_t ib = b.StartRequest();
    EXPECT_EQ(ia, ib);
    sampled += ia != 0 ? 1 : 0;
  }
  EXPECT_GT(sampled, 50u);
  EXPECT_LT(sampled, 150u);
}

TEST(TraceSinkTest, LabelInterningRoundTrips) {
  TraceSink sink(ManualOptions());
  uint16_t a = sink.InternLabel("lz4");
  uint16_t b = sink.InternLabel("dpzip");
  EXPECT_NE(a, 0);
  EXPECT_NE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.InternLabel("lz4"), a);  // idempotent
  EXPECT_EQ(sink.LabelName(a), "lz4");
  EXPECT_EQ(sink.LabelName(b), "dpzip");
  EXPECT_EQ(sink.LabelName(0), "");
}

TEST(TraceContextTest, CodecPhaseSpanIsNoOpWithoutContext) {
  TraceSink sink(ManualOptions());
  {
    CodecPhaseSpan span(Phase::kCodecLz77);  // no context installed
  }
  sink.CollectOnce();
  EXPECT_TRUE(sink.Snapshot().empty());
  EXPECT_EQ(sink.counters().emitted, 0u);
}

TEST(TraceContextTest, CodecPhaseSpanEmitsUnderScopedContext) {
  TraceSink sink(ManualOptions());
  TraceSink::Writer* w = sink.RegisterWriter("t");
  uint16_t label = sink.InternLabel("dpzip");
  {
    ScopedTraceContext ctx(w, 7, 3, label);
    CodecPhaseSpan span(Phase::kCodecEntropy);
  }
  {
    CodecPhaseSpan span(Phase::kCodecLz77);  // context restored: no-op again
  }
  sink.CollectOnce();
  std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].request_id, 7u);
  EXPECT_EQ(spans[0].tenant, 3u);
  EXPECT_EQ(spans[0].label, label);
  EXPECT_EQ(spans[0].phase, Phase::kCodecEntropy);
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

// The TSan target: concurrent writer threads + the background collector +
// StartRequest callers, all racing against Stop(). Any missing ordering in
// the ring or counter paths shows up under ThreadSanitizer here.
TEST(TraceSinkTest, ConcurrentWritersAndCollectorAccountExactly) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  TraceSinkOptions o;
  o.ring_capacity = 256;  // small enough to force collector/ring overlap
  o.collect_interval_us = 50;
  TraceSink sink(o);

  std::vector<TraceSink::Writer*> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.push_back(sink.RegisterWriter("w" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        uint64_t id = sink.StartRequest();
        writers[t]->Emit(
            MakeSpan(id, Phase::kCodec, i, i + 1, static_cast<uint32_t>(t)));
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  sink.Stop();

  TraceCounters c = sink.counters();
  EXPECT_EQ(c.sampled, static_cast<uint64_t>(kWriters) * kPerWriter);
  // Every accepted record is either in the buffer or drop-counted; nothing
  // vanishes.
  EXPECT_EQ(c.emitted, c.collected + c.dropped_buffer);
  EXPECT_EQ(c.emitted + c.dropped_ring,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(sink.Snapshot().size(), c.collected);

  // Per-writer order survives interleaved collection: for each tenant the
  // start_ns sequence (the emit index) must be strictly increasing.
  std::vector<SpanRecord> spans = sink.Snapshot();
  uint64_t last_start[kWriters];
  bool seen[kWriters] = {false};
  for (const SpanRecord& r : spans) {
    ASSERT_LT(r.tenant, static_cast<uint32_t>(kWriters));
    if (seen[r.tenant]) {
      EXPECT_GT(r.start_ns, last_start[r.tenant]);
    }
    last_start[r.tenant] = r.start_ns;
    seen[r.tenant] = true;
  }
}

TEST(BreakdownTest, ContiguousChainSumsToEndToEnd) {
  TraceSink sink(ManualOptions());
  uint16_t lz4 = sink.InternLabel("lz4");
  std::vector<SpanRecord> spans;
  // Two complete chains with known boundaries (ns).
  for (uint64_t id : {1, 2}) {
    uint64_t base = id * 1000;
    spans.push_back(MakeSpan(id, Phase::kQueueSubmit, base, base + 10));
    spans.push_back(MakeSpan(id, Phase::kQueueEngine, base + 10, base + 30));
    spans.push_back(MakeSpan(id, Phase::kDevice, base + 30, base + 70));
    spans.push_back(MakeSpan(id, Phase::kCodec, base + 70, base + 170, 0, lz4));
    spans.push_back(MakeSpan(id, Phase::kComplete, base + 170, base + 200));
    spans.push_back(MakeSpan(id, Phase::kCodecLz77, base + 80, base + 120, 0, lz4));
  }
  // One incomplete chain (kCodec missing: dropped record).
  spans.push_back(MakeSpan(3, Phase::kQueueSubmit, 5000, 5010));
  spans.push_back(MakeSpan(3, Phase::kComplete, 5170, 5200));

  Breakdown b = BuildBreakdown(spans, &sink);
  EXPECT_EQ(b.complete_requests, 2u);
  EXPECT_EQ(b.incomplete_requests, 1u);
  ASSERT_EQ(b.e2e_us.count(), 2u);
  EXPECT_DOUBLE_EQ(b.e2e_us.Mean(), 0.2);  // 200 ns
  // Contiguous phases: the mean phase sum equals mean(e2e) exactly.
  EXPECT_DOUBLE_EQ(b.phase_mean_sum_us(), 0.2);
  ASSERT_EQ(b.phases.size(), 5u);
  EXPECT_EQ(b.phases[0].phase, Phase::kQueueSubmit);
  EXPECT_DOUBLE_EQ(b.phases[0].mean_us(), 0.01);
  // Codec sub-phases are reported separately, not in the contiguous sum.
  ASSERT_EQ(b.codec_phases.size(), 1u);
  EXPECT_EQ(b.codec_phases[0].phase, Phase::kCodecLz77);
  // The group view resolves the interned codec label.
  ASSERT_EQ(b.groups.size(), 1u);
  EXPECT_EQ(b.groups[0].codec, "lz4");
  EXPECT_EQ(b.groups[0].requests, 2u);
}

TEST(BreakdownTest, ExportPublishesConsistencyGauges) {
  TraceSink sink(ManualOptions());
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, Phase::kQueueSubmit, 0, 100));
  spans.push_back(MakeSpan(1, Phase::kQueueEngine, 100, 200));
  spans.push_back(MakeSpan(1, Phase::kDevice, 200, 300));
  spans.push_back(MakeSpan(1, Phase::kCodec, 300, 400));
  spans.push_back(MakeSpan(1, Phase::kComplete, 400, 500));
  Breakdown b = BuildBreakdown(spans, &sink);

  obs::Reporter reporter;
  reporter.SetRun("trace_test", "t", "d", "test");
  ExportBreakdown(b, sink.counters(), "trace.", &reporter);
  obs::Json metrics = reporter.metrics().ToJson();
  const obs::Json* gauges = metrics.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const obs::Json* e2e = gauges->Find("trace.e2e_mean_us");
  const obs::Json* sum = gauges->Find("trace.phase_mean_sum_us");
  ASSERT_NE(e2e, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(e2e->AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(sum->AsDouble(), e2e->AsDouble());
}

TEST(ChromeTraceTest, WritesParseableEvents) {
  TraceSink sink(ManualOptions());
  uint16_t label = sink.InternLabel("lz4");
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, Phase::kQueueSubmit, 1000, 2000));
  spans.push_back(MakeSpan(1, Phase::kCodec, 2000, 5000, 0, label));
  std::string path = ::testing::TempDir() + "/trace_test_chrome.json";
  ASSERT_TRUE(WriteChromeTrace(spans, &sink, path).ok());

  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  Result<obs::Json> doc = obs::Json::Parse(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::Json* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t complete_events = 0;
  for (const obs::Json& e : events->items()) {
    const obs::Json* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->AsString() == "X") {
      ++complete_events;
      EXPECT_NE(e.Find("ts"), nullptr);
      EXPECT_NE(e.Find("dur"), nullptr);
      EXPECT_NE(e.Find("name"), nullptr);
    }
  }
  EXPECT_EQ(complete_events, spans.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trace
}  // namespace cdpu
