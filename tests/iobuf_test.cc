// Lifetime and recycling tests for the pooled buffer layer (ISSUE 8). These
// run under ASan and TSan in CI: the cross-thread tests are the proof that a
// segment allocated on one thread and released on another (the epoll ->
// engine -> reaper relay the service performs per request) neither races nor
// recycles memory early.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/iobuf.h"

namespace cdpu {
namespace {

TEST(IoBufTest, AllocateRoundsUpToSizeClass) {
  PoolOptions opts;
  opts.min_segment_bytes = 4096;
  opts.max_segment_bytes = 64 * 1024;
  BufferPool pool(opts);

  IoBuf a = pool.Allocate(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.capacity(), 4096u);  // rounded up to the smallest class
  IoBuf b = pool.Allocate(4097);
  EXPECT_EQ(b.capacity(), 8192u);

  IoBuf empty = pool.Allocate(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
  a.Reset();
  b.Reset();
}

TEST(IoBufTest, RecycleReturnsSegmentToFreelist) {
  BufferPool pool;
  IoBuf a = pool.Allocate(1000);
  const uint8_t* backing = a.data();
  a.Reset();
  // LIFO freelist: the very next same-class allocation reuses the segment.
  IoBuf b = pool.Allocate(2000);
  EXPECT_EQ(b.data(), backing);
  PoolStats s = pool.Snapshot();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  b.Reset();
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);
}

TEST(IoBufTest, RefcountKeepsSegmentAliveThroughViews) {
  BufferPool pool;
  IoBuf view;
  {
    IoBuf whole = pool.Allocate(512);
    std::memset(whole.data(), 0xAB, whole.size());
    view = whole.View(100, 50);
    EXPECT_FALSE(whole.unique());
  }  // whole released; the view must still pin the segment
  ASSERT_EQ(view.size(), 50u);
  EXPECT_TRUE(view.unique());
  for (uint8_t byte : view) {
    ASSERT_EQ(byte, 0xAB);
  }
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 1u);
  view.Reset();
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);
}

TEST(IoBufTest, DoubleResetIsSafe) {
  BufferPool pool;
  IoBuf a = pool.Allocate(64);
  a.Reset();
  a.Reset();  // second release on an empty handle must be a no-op
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);

  // Copy + reset both: one segment, two handles, exactly one recycle.
  IoBuf b = pool.Allocate(64);
  IoBuf c = b;
  b.Reset();
  b.Reset();
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 1u);
  c.Reset();
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);
}

TEST(IoBufTest, SlabGrowthBanksWholeSlab) {
  PoolOptions opts;
  opts.segments_per_slab = 4;
  BufferPool pool(opts);

  MemPathCounters before = MemPathSnapshot();
  std::vector<IoBuf> held;
  for (int i = 0; i < 5; ++i) {  // 5th allocation forces a second slab
    held.push_back(pool.Allocate(1024));
  }
  MemPathCounters after = MemPathSnapshot();
  PoolStats s = pool.Snapshot();
  EXPECT_EQ(s.slabs, 2u);
  EXPECT_EQ(s.misses, 2u);  // one per slab growth — not one per allocation
  EXPECT_EQ(s.hits, 3u);    // the banked segments of slab one
  // The alloc counter moves per slab, not per buffer: 5 buffers, 2 allocs.
  EXPECT_EQ(after.buffer_allocs - before.buffer_allocs, 2u);
  held.clear();
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);
  EXPECT_GT(pool.Snapshot().slab_bytes, 0u);  // backing memory is retained
}

TEST(IoBufTest, OversizeFallsThroughToHeapAndFrees) {
  PoolOptions opts;
  opts.max_segment_bytes = 64 * 1024;
  BufferPool pool(opts);

  bool missed = false;
  IoBuf big = pool.Allocate(256 * 1024, &missed);
  EXPECT_TRUE(missed);
  EXPECT_EQ(big.size(), 256u * 1024u);
  PoolStats s = pool.Snapshot();
  EXPECT_EQ(s.oversize, 1u);
  EXPECT_EQ(s.outstanding_buffers, 1u);
  big.Reset();
  s = pool.Snapshot();
  EXPECT_EQ(s.outstanding_buffers, 0u);
  EXPECT_EQ(s.slabs, 0u);  // never entered a freelist
}

TEST(IoBufTest, PoolingDisabledNeverRecycles) {
  PoolOptions opts;
  opts.pooling = false;
  BufferPool pool(opts);

  IoBuf a = pool.Allocate(4096);
  const uint8_t* backing = a.data();
  a.Reset();
  IoBuf b = pool.Allocate(4096);
  // The heap may or may not hand back the same address; the pool's own
  // counters must show it never served a freelist hit.
  (void)backing;
  PoolStats s = pool.Snapshot();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.slabs, 0u);
  b.Reset();
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);
}

TEST(IoBufTest, CopyStagesBytesAndCountsTheCopy) {
  BufferPool pool;
  std::vector<uint8_t> src(1000);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(i * 7);
  }
  MemPathCounters before = MemPathSnapshot();
  IoBuf copy = IoBuf::Copy(src, &pool);
  MemPathCounters after = MemPathSnapshot();
  ASSERT_EQ(copy.size(), src.size());
  EXPECT_TRUE(std::equal(copy.begin(), copy.end(), src.begin()));
  EXPECT_EQ(after.payload_copies - before.payload_copies, 1u);
  EXPECT_EQ(after.payload_copy_bytes - before.payload_copy_bytes, src.size());
  copy.Reset();
}

TEST(IoBufTest, ViewAndResizeClampToTheHandle) {
  BufferPool pool;
  IoBuf buf = pool.Allocate(100);
  IoBuf past = buf.View(90, 50);
  EXPECT_EQ(past.size(), 10u);  // clamped to the parent's view
  IoBuf beyond = buf.View(200, 10);
  EXPECT_EQ(beyond.size(), 0u);

  buf.Resize(buf.capacity() + 1000);
  EXPECT_EQ(buf.size(), buf.capacity());  // clamped, never past the segment
  past.Reset();
  beyond.Reset();
  buf.Reset();
}

// Allocate on one thread, release on others — the service's actual relay
// (epoll thread allocates the receive segment, an engine thread drops the
// request view, the event loop drops the response view). TSan must see the
// acq_rel handoff; ASan must see no early recycle. Each buffer carries a
// per-iteration pattern that is verified just before the final release.
TEST(IoBufTest, CrossThreadReleaseStress) {
  BufferPool pool;
  constexpr int kProducers = 2;
  constexpr int kBuffersPerProducer = 2000;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<IoBuf> queue;
  bool done = false;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kBuffersPerProducer; ++i) {
        IoBuf buf = pool.Allocate(1024 + (i % 3) * 4096);
        std::memset(buf.data(), static_cast<int>((p * 31 + i) & 0xFF), buf.size());
        // A second handle released producer-side after the consumer may
        // already hold the first: exercises concurrent non-final releases.
        IoBuf extra = buf;
        {
          std::lock_guard<std::mutex> lock(mu);
          queue.push_back(std::move(buf));
        }
        cv.notify_one();
        extra.Reset();
      }
    });
  }

  std::thread consumer([&] {
    int seen = 0;
    while (seen < kProducers * kBuffersPerProducer) {
      IoBuf buf;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || done; });
        if (queue.empty()) {
          break;
        }
        buf = std::move(queue.front());
        queue.pop_front();
      }
      ASSERT_FALSE(buf.empty());
      const uint8_t expect = buf.data()[0];
      for (size_t i = 1; i < buf.size(); i += 97) {
        ASSERT_EQ(buf.data()[i], expect);
      }
      buf.Reset();
      ++seen;
    }
  });

  for (std::thread& t : producers) {
    t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  consumer.join();

  PoolStats s = pool.Snapshot();
  EXPECT_EQ(s.outstanding_buffers, 0u);
  EXPECT_GT(s.hits, 0u);  // recycling across threads actually happened
}

}  // namespace
}  // namespace cdpu
