// Cross-module integration tests: the full stack exercised end-to-end —
// data integrity from YCSB values through the LSM, SSTable blocks,
// app-layer codecs, the FTL's packing/GC and the NAND model, plus the
// consistency properties the paper's system depends on.

#include <gtest/gtest.h>

#include <map>

#include "src/fs/btrfs_sim.h"
#include "src/fs/zfs_sim.h"
#include "src/kv/ycsb_runner.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

TEST(IntegrationTest, LsmSurvivesHeavyChurnOnEveryScheme) {
  // Mixed puts/overwrites/deletes across flushes and compactions; final
  // state must match an in-memory model exactly.
  for (CompressionScheme scheme :
       {CompressionScheme::kCpu, CompressionScheme::kDpCsd}) {
    SimSsd ssd(MakeSchemeSsdConfig(scheme, 256 * 1024));
    LsmConfig cfg;
    cfg.memtable_bytes = 24 * 1024;
    cfg.sstable_data_bytes = 24 * 1024;
    cfg.level1_bytes = 96 * 1024;
    LsmDb db(cfg, &ssd, MakeSchemeBackend(scheme));

    std::map<std::string, std::string> model;
    Rng rng(77);
    SimNanos t = 0;
    for (int op = 0; op < 2500; ++op) {
      std::string key = YcsbWorkload::KeyString(rng.Uniform(400));
      if (rng.Uniform(10) < 2 && model.count(key)) {
        Result<SimNanos> d = db.Delete(key, t);
        ASSERT_TRUE(d.ok());
        t = *d;
        model.erase(key);
      } else {
        std::vector<uint8_t> v = GenerateTextLike(120 + rng.Uniform(200), op);
        std::string value(v.begin(), v.end());
        Result<SimNanos> w = db.Put(key, value, t);
        ASSERT_TRUE(w.ok());
        t = *w;
        model[key] = value;
      }
    }
    ASSERT_TRUE(db.FlushMemtable(t).ok());
    EXPECT_GT(db.stats().compactions, 0u);

    // Verify both presence and absence.
    for (uint64_t k = 0; k < 400; ++k) {
      std::string key = YcsbWorkload::KeyString(k);
      Result<LsmDb::GetOutcome> g = db.Get(key, t);
      ASSERT_TRUE(g.ok());
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(g->found) << SchemeName(scheme) << " " << key;
      } else {
        ASSERT_TRUE(g->found) << SchemeName(scheme) << " " << key;
        EXPECT_EQ(g->value, it->second) << SchemeName(scheme) << " " << key;
      }
    }
  }
}

TEST(IntegrationTest, DpCsdSpaceAccountingConsistent) {
  // The bytes the FTL says it stored must match the sum of per-write
  // stored_len, and effective capacity must be the reciprocal of the ratio.
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 64 * 1024));
  SimNanos t = 0;
  uint64_t stored_sum = 0;
  for (uint64_t lpn = 0; lpn < 128; ++lpn) {
    std::vector<uint8_t> page = GenerateXmlLike(4096, lpn);
    Result<SsdIoResult> w = ssd.Write(lpn, page, t);
    ASSERT_TRUE(w.ok());
    stored_sum += w->stored_len;
    t = w->completion;
  }
  double ratio = ssd.ftl().PhysicalSpaceRatio();
  EXPECT_NEAR(ratio, static_cast<double>(stored_sum) / (128.0 * 4096.0), 1e-9);
  EXPECT_NEAR(ssd.EffectiveCapacityGain(), 1.0 / ratio, 1e-9);
  EXPECT_EQ(ssd.compressed_pages() + ssd.bypass_pages(), 128u);
}

TEST(IntegrationTest, TimeNeverRunsBackwards) {
  // Completions must be monotone along each dependency chain in every layer.
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 64 * 1024));
  SimNanos t = 0;
  for (uint64_t lpn = 0; lpn < 64; ++lpn) {
    std::vector<uint8_t> page = GenerateTextLike(4096, lpn);
    Result<SsdIoResult> w = ssd.Write(lpn, page, t);
    ASSERT_TRUE(w.ok());
    EXPECT_GT(w->completion, t);
    t = w->completion;
    ByteVec out;
    Result<SsdIoResult> r = ssd.Read(lpn, &out, t);
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->completion, t);
    t = r->completion;
  }
}

TEST(IntegrationTest, FilesystemAndSsdAgreeOnFootprint) {
  // Btrfs stored_bytes (app view) vs the SSD's physical ratio (device view)
  // must compose: with app compression the SSD sees already-compressed
  // bytes; with DP-CSD the SSD does the shrinking.
  std::vector<uint8_t> data = GenerateDbTableLike(512 * 1024, 9);

  SimSsd ssd_cpu(MakeSchemeSsdConfig(CompressionScheme::kCpu, 256 * 1024));
  BtrfsSim fs_cpu(BtrfsConfig{}, &ssd_cpu, MakeSchemeBackend(CompressionScheme::kCpu));
  SimSsd ssd_csd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 256 * 1024));
  BtrfsSim fs_csd(BtrfsConfig{}, &ssd_csd, MakeSchemeBackend(CompressionScheme::kDpCsd));

  SimNanos t1 = 0;
  SimNanos t2 = 0;
  for (size_t o = 0; o < data.size(); o += 131072) {
    t1 = *fs_cpu.Write(o, ByteSpan(data.data() + o, 131072), t1);
    t2 = *fs_csd.Write(o, ByteSpan(data.data() + o, 131072), t2);
  }
  ASSERT_TRUE(fs_cpu.Sync(t1).ok());
  ASSERT_TRUE(fs_csd.Sync(t2).ok());

  // App view: CPU scheme shrank the file; DP-CSD did not.
  EXPECT_LT(fs_cpu.stored_bytes(), data.size() / 2);
  EXPECT_EQ(fs_csd.stored_bytes(), data.size());
  // Device view: the DP-CSD shrank it internally instead.
  EXPECT_LT(ssd_csd.ftl().PhysicalSpaceRatio(), 0.6);
  // Double compression doesn't pay: CPU-compressed extents stay ~raw inside.
  EXPECT_GT(ssd_cpu.ftl().PhysicalSpaceRatio(), 0.9);
}

TEST(IntegrationTest, ZfsOverDpCsdRoundTrips) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 128 * 1024));
  ZfsConfig cfg;
  cfg.record_bytes = 16384;
  ZfsSim fs(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kDpCsd));
  std::vector<uint8_t> data = GenerateSourceLike(cfg.record_bytes * 8, 10);
  SimNanos t = 0;
  for (size_t o = 0; o < data.size(); o += cfg.record_bytes) {
    Result<SimNanos> w = fs.WriteRecord(o, ByteSpan(data.data() + o, cfg.record_bytes), t);
    ASSERT_TRUE(w.ok());
    t = *w;
  }
  for (size_t o = 512; o + 4096 < data.size(); o += cfg.record_bytes) {
    Result<ZfsSim::ReadOutcome> r = fs.Read(o, 4096, t);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(std::equal(r->data.begin(), r->data.end(), data.begin() + o));
    t = r->completion;
  }
  EXPECT_LT(ssd.ftl().PhysicalSpaceRatio(), 0.7);  // source code compresses well
}

TEST(IntegrationTest, SsdGcPreservesLsmData) {
  // Shrink the drive so the LSM churn forces FTL garbage collection, then
  // verify every surviving key.
  // Thin-provisioned: 4 MiB of flash under a larger logical address space,
  // so SSTable churn must be reclaimed by GC to keep fitting.
  SsdConfig ssd_cfg = MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 16384);
  NandConfig n;
  n.channels = 2;
  n.dies_per_channel = 2;
  n.blocks_per_die = 4;
  n.pages_per_block = 32;  // 512 physical pages, 2 MiB
  ssd_cfg.ftl.nand = n;
  ssd_cfg.ftl.gc_low_watermark = 3;
  ssd_cfg.ftl.gc_high_watermark = 6;
  SimSsd ssd(ssd_cfg);

  LsmConfig cfg;
  cfg.memtable_bytes = 24 * 1024;
  cfg.sstable_data_bytes = 24 * 1024;
  cfg.level1_bytes = 96 * 1024;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kDpCsd));

  std::map<std::string, std::string> model;
  SimNanos t = 0;
  Rng rng(11);
  for (int op = 0; op < 30000; ++op) {
    std::string key = YcsbWorkload::KeyString(rng.Uniform(250));
    std::vector<uint8_t> v = GenerateTextLike(150, op);
    std::string value(v.begin(), v.end());
    Result<SimNanos> w = db.Put(key, value, t);
    ASSERT_TRUE(w.ok()) << w.status().ToString() << " at op " << op;
    t = *w;
    model[key] = value;
  }
  EXPECT_GT(ssd.ftl().gc_erased_blocks() + ssd.ftl().gc_relocated_segments(), 0u);
  int checked = 0;
  for (const auto& [key, value] : model) {
    Result<LsmDb::GetOutcome> g = db.Get(key, t);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->found) << key;
    EXPECT_EQ(g->value, value) << key;
    if (++checked > 100) {
      break;
    }
  }
}

}  // namespace
}  // namespace cdpu
