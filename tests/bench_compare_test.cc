// Tests for the CI perf-regression gate (tools/bench_compare_lib):
// name-driven metric classification, tolerance directions, missing-metric
// handling, schema-version guard, and the rendered outputs.

#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "tools/bench_compare_lib.h"

namespace cdpu {
namespace tools {
namespace {

obs::Json MakeDoc(std::vector<std::pair<std::string, double>> gauges,
                  int64_t schema_version = 1) {
  obs::Json doc = obs::Json::Object();
  doc["schema_version"] = schema_version;
  doc["experiment"] = "unit";
  obs::Json g = obs::Json::Object();
  for (auto& [name, value] : gauges) {
    g[name] = value;
  }
  obs::Json metrics = obs::Json::Object();
  metrics["gauges"] = std::move(g);
  doc["metrics"] = std::move(metrics);
  return doc;
}

const MetricComparison* FindMetric(const CompareReport& r, const std::string& name) {
  for (const MetricComparison& m : r.metrics) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

TEST(ClassifyMetricTest, NameDrivenPolicies) {
  EXPECT_EQ(ClassifyMetric("tenant0.mbps").direction, MetricDirection::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("svc.runtime.sim_gbps").direction,
            MetricDirection::kHigherBetter);
  EXPECT_EQ(ClassifyMetric("tenant0.p99_us").direction, MetricDirection::kLowerBetter);
  EXPECT_EQ(ClassifyMetric("trace.e2e_p99_us").direction, MetricDirection::kLowerBetter);
  // Sub-span percentiles are breakdown diagnostics, not SLOs — too noisy on
  // the quick preset to gate.
  EXPECT_EQ(ClassifyMetric("trace.phase.codec.p99_us").direction,
            MetricDirection::kInformational);
  EXPECT_EQ(ClassifyMetric("trace.phase.codec.mean_us").direction,
            MetricDirection::kInformational);
  EXPECT_EQ(ClassifyMetric("svc.runtime.max_inflight").direction,
            MetricDirection::kInformational);
}

TEST(BenchCompareTest, IdenticalDocsPass) {
  obs::Json doc = MakeDoc({{"a.mbps", 100.0}, {"a.p99_us", 500.0}});
  Result<CompareReport> r = CompareBenchDocs(doc, doc);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->pass);
  EXPECT_EQ(r->regressions(), 0u);
  EXPECT_EQ(r->experiment, "unit");
}

TEST(BenchCompareTest, ThroughputDropBeyondToleranceFails) {
  obs::Json base = MakeDoc({{"a.mbps", 100.0}});
  Result<CompareReport> ok = CompareBenchDocs(base, MakeDoc({{"a.mbps", 90.0}}));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->pass);  // -10% is inside the 15% tolerance

  Result<CompareReport> bad = CompareBenchDocs(base, MakeDoc({{"a.mbps", 80.0}}));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->pass);  // -20% is not
  EXPECT_EQ(FindMetric(*bad, "a.mbps")->verdict, Verdict::kRegressed);

  // Throughput gains never fail.
  Result<CompareReport> faster = CompareBenchDocs(base, MakeDoc({{"a.mbps", 200.0}}));
  ASSERT_TRUE(faster.ok());
  EXPECT_TRUE(faster->pass);
}

TEST(BenchCompareTest, TailLatencyInflationBeyondToleranceFails) {
  obs::Json base = MakeDoc({{"a.p99_us", 1000.0}});
  Result<CompareReport> ok = CompareBenchDocs(base, MakeDoc({{"a.p99_us", 1150.0}}));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->pass);  // +15% is inside the 20% tolerance

  Result<CompareReport> bad = CompareBenchDocs(base, MakeDoc({{"a.p99_us", 1300.0}}));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->pass);  // +30% is not

  // Latency improvements never fail.
  Result<CompareReport> faster = CompareBenchDocs(base, MakeDoc({{"a.p99_us", 100.0}}));
  ASSERT_TRUE(faster.ok());
  EXPECT_TRUE(faster->pass);
}

TEST(BenchCompareTest, MissingGatedMetricFails) {
  obs::Json base = MakeDoc({{"a.mbps", 100.0}, {"note.mean_us", 5.0}});
  Result<CompareReport> r = CompareBenchDocs(base, MakeDoc({{"note.mean_us", 5.0}}));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->pass);
  EXPECT_EQ(FindMetric(*r, "a.mbps")->verdict, Verdict::kMissing);
}

TEST(BenchCompareTest, MissingInformationalMetricDoesNotGate) {
  obs::Json base = MakeDoc({{"a.mbps", 100.0}, {"note.mean_us", 5.0}});
  Result<CompareReport> r = CompareBenchDocs(base, MakeDoc({{"a.mbps", 100.0}}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->pass);
  EXPECT_EQ(FindMetric(*r, "note.mean_us")->verdict, Verdict::kMissing);
}

TEST(BenchCompareTest, CandidateOnlyMetricsAreInformational) {
  obs::Json base = MakeDoc({{"a.mbps", 100.0}});
  // Even a terrible-looking new gated metric cannot fail: there is no
  // baseline to regress from.
  Result<CompareReport> r =
      CompareBenchDocs(base, MakeDoc({{"a.mbps", 100.0}, {"b.mbps", 0.001}}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->pass);
  EXPECT_EQ(FindMetric(*r, "b.mbps")->verdict, Verdict::kNew);
}

TEST(BenchCompareTest, SchemaVersionMismatchIsAnError) {
  obs::Json base = MakeDoc({{"a.mbps", 100.0}}, 1);
  obs::Json cand = MakeDoc({{"a.mbps", 100.0}}, 2);
  Result<CompareReport> r = CompareBenchDocs(base, cand);
  EXPECT_FALSE(r.ok());
}

TEST(BenchCompareTest, RenderedOutputsNameRegressions) {
  obs::Json base = MakeDoc({{"a.mbps", 100.0}, {"a.p99_us", 1000.0}});
  Result<CompareReport> r =
      CompareBenchDocs(base, MakeDoc({{"a.mbps", 50.0}, {"a.p99_us", 1000.0}}));
  ASSERT_TRUE(r.ok());
  std::string human = RenderHuman(*r);
  EXPECT_NE(human.find("FAIL"), std::string::npos);
  EXPECT_NE(human.find("REGRESSED"), std::string::npos);
  std::string md = RenderMarkdown(*r);
  EXPECT_NE(md.find("| `a.mbps` |"), std::string::npos);
  EXPECT_NE(md.find("**REGRESSED**"), std::string::npos);
}

}  // namespace
}  // namespace tools
}  // namespace cdpu
