// Threaded offload-runtime coverage: round-trip correctness under
// contention, concurrency-ceiling enforcement (in-flight never exceeds the
// device queue depth), doorbell batching, and graceful shutdown with jobs
// still queued. These are the tests the TSan CI job gates.

#include "src/runtime/offload_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/common/iobuf.h"

#include "src/hw/device_configs.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

CdpuConfig SmallTestDevice(uint32_t engines, uint32_t queue_limit) {
  CdpuConfig c;
  c.name = "test-device";
  c.placement = Placement::kPeripheral;
  c.engines = engines;
  c.queue_limit = queue_limit;
  c.compress_gbps = 2.0;
  c.decompress_gbps = 4.0;
  c.link.name = "test-link";
  return c;
}

TEST(SharedCdpuQueueTest, SerialArrivalsMatchEngineCount) {
  // In-storage placement: no shared host link, so engine contention is the
  // only queueing effect. Two engines: two simultaneous arrivals run in
  // parallel, the third queues.
  CdpuConfig cfg = SmallTestDevice(2, 0);
  cfg.placement = Placement::kInStorage;
  SharedCdpuQueue q(cfg);
  auto a = q.Submit(CdpuOp::kCompress, 65536, 0.5, 0);
  auto b = q.Submit(CdpuOp::kCompress, 65536, 0.5, 0);
  auto c = q.Submit(CdpuOp::kCompress, 65536, 0.5, 0);
  EXPECT_EQ(a.start, b.start);
  EXPECT_GT(c.start, a.start);
  EXPECT_EQ(q.requests(), 3u);
  EXPECT_GT(q.busy_ns(), 0u);
}

TEST(SharedCdpuQueueTest, ConcurrencyCeilingDelaysAdmission) {
  constexpr uint32_t kLimit = 64;
  SharedCdpuQueue q(SmallTestDevice(3, kLimit));
  uint64_t delayed = 0;
  for (int i = 0; i < 100; ++i) {
    auto c = q.Submit(CdpuOp::kCompress, 4096, 0.5, 0);
    if (c.ceiling_delayed) {
      ++delayed;
      EXPECT_GT(c.admitted, 0u);
    }
  }
  // The first 64 simultaneous arrivals are admitted at t=0; later ones wait
  // for an in-flight descriptor to retire.
  EXPECT_GT(delayed, 0u);
  EXPECT_EQ(delayed, q.ceiling_delays());
  EXPECT_LE(delayed, 100u - kLimit);
}

TEST(SharedCdpuQueueTest, ThreadedSubmissionsAreAccounted) {
  SharedCdpuQueue q(SmallTestDevice(2, 16));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&q, t] {
      SimNanos now = static_cast<SimNanos>(t) * 100;
      for (int i = 0; i < kPerThread; ++i) {
        auto c = q.Submit(CdpuOp::kCompress, 4096, 0.5, now);
        now = c.completion;  // closed loop in simulated time
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(q.requests(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(q.last_completion(), 0u);
}

TEST(OffloadRuntimeTest, RoundTripUnderContention) {
  RuntimeOptions opts;
  opts.device = SmallTestDevice(4, 64);
  opts.codec = "lz4";
  opts.queue_pairs = 4;
  opts.batch_size = 4;
  opts.engine_threads = 4;
  OffloadRuntime runtime(opts);

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 24;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        ByteVec original =
            GenerateWithRatio(0.3 + 0.05 * (i % 8), 2048 + 512 * (i % 5),
                              static_cast<uint64_t>(t * 1000 + i));
        OffloadRequest creq;
        creq.op = CdpuOp::kCompress;
        creq.input = original;
        creq.queue_pair = static_cast<uint32_t>(t % 4);
        OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++failures;
          continue;
        }
        OffloadRequest dreq;
        dreq.op = CdpuOp::kDecompress;
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = static_cast<uint32_t>(t % 4);
        OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (!dres.status.ok()) {
          ++failures;
          continue;
        }
        if (dres.output != original) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  runtime.Drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Engine threads fold their thread-local service stats on exit; shut down
  // before asserting on the merged view.
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.jobs_submitted, static_cast<uint64_t>(kThreads * kJobsPerThread * 2));
  EXPECT_EQ(stats.jobs_completed, stats.jobs_submitted);
  EXPECT_EQ(stats.jobs_failed, 0u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.wall_latency_us.count(), 0u);
  EXPECT_GT(stats.engine_service_us.count(), 0u);
  EXPECT_GT(stats.sim_makespan, 0u);
}

TEST(OffloadRuntimeTest, InflightNeverExceedsQueueLimit) {
  constexpr uint32_t kLimit = 8;
  RuntimeOptions opts;
  opts.device = SmallTestDevice(4, kLimit);
  opts.codec = "zstd";  // real work keeps descriptors in flight
  opts.queue_pairs = 2;
  opts.batch_size = 4;
  opts.engine_threads = 4;
  OffloadRuntime runtime(opts);

  std::vector<ByteVec> payloads;
  for (int i = 0; i < 48; ++i) {
    payloads.push_back(GenerateWithRatio(0.4, 32768, static_cast<uint64_t>(i)));
  }
  std::vector<std::future<OffloadResult>> futures;
  for (int i = 0; i < 48; ++i) {
    OffloadRequest req;
    req.op = CdpuOp::kCompress;
    req.input = payloads[static_cast<size_t>(i)];
    req.queue_pair = static_cast<uint32_t>(i % 2);
    futures.push_back(runtime.Submit(std::move(req)));
  }
  runtime.Flush(0);
  runtime.Flush(1);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  runtime.Drain();
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_LE(stats.max_inflight, kLimit);
  EXPECT_GE(stats.max_inflight, 1u);
}

TEST(OffloadRuntimeTest, DoorbellCoalescingBatchesDescriptors) {
  RuntimeOptions opts;
  opts.device = SmallTestDevice(2, 0);
  opts.codec = "";  // model-only
  opts.queue_pairs = 1;
  opts.batch_size = 8;
  opts.doorbell_window_ns = Seconds(100);  // never expires during the test
  OffloadRuntime runtime(opts);

  std::vector<std::future<OffloadResult>> futures;
  for (int i = 0; i < 32; ++i) {
    OffloadRequest req;
    req.model_bytes = 4096;
    futures.push_back(runtime.Submit(std::move(req)));
  }
  runtime.Drain();
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.jobs_completed, 32u);
  // 32 descriptors with an un-expiring window and batch_size 8: exactly one
  // doorbell per full batch.
  EXPECT_EQ(stats.doorbells, 4u);
}

TEST(OffloadRuntimeTest, DrainShutdownCompletesQueuedJobs) {
  RuntimeOptions opts;
  opts.device = SmallTestDevice(2, 16);
  opts.codec = "";
  opts.queue_pairs = 2;
  opts.batch_size = 64;                    // jobs stay below the batch threshold
  opts.doorbell_window_ns = Seconds(100);  // and the window never fires
  OffloadRuntime runtime(opts);

  std::vector<std::future<OffloadResult>> futures;
  for (int i = 0; i < 40; ++i) {
    OffloadRequest req;
    req.model_bytes = 8192;
    req.queue_pair = static_cast<uint32_t>(i % 2);
    futures.push_back(runtime.Submit(std::move(req)));
  }
  // Jobs are sitting unflushed in the rings; a drain shutdown must force the
  // doorbells and finish everything.
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.jobs_completed, 40u);
  EXPECT_EQ(stats.jobs_canceled, 0u);
}

TEST(OffloadRuntimeTest, AbortShutdownCancelsQueuedJobs) {
  RuntimeOptions opts;
  opts.device = SmallTestDevice(2, 16);
  opts.codec = "";
  opts.queue_pairs = 1;
  opts.batch_size = 128;                   // nothing reaches the batch threshold
  opts.doorbell_window_ns = Seconds(100);  // window never fires
  OffloadRuntime runtime(opts);

  std::vector<std::future<OffloadResult>> futures;
  for (int i = 0; i < 30; ++i) {
    OffloadRequest req;
    req.model_bytes = 4096;
    futures.push_back(runtime.Submit(std::move(req)));
  }
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kAbort);
  uint64_t canceled = 0;
  for (auto& f : futures) {
    OffloadResult r = f.get();
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
      ++canceled;
    }
  }
  // Every job was still queued (no doorbell ever rang), so all are canceled.
  EXPECT_EQ(canceled, 30u);
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.jobs_canceled, 30u);
  EXPECT_EQ(stats.jobs_completed, 30u);

  // Submissions after shutdown fail fast instead of hanging.
  OffloadRequest late;
  late.model_bytes = 4096;
  OffloadResult late_result = runtime.Submit(std::move(late)).get();
  EXPECT_EQ(late_result.status.code(), StatusCode::kUnavailable);
}

TEST(OffloadRuntimeTest, ClosedLoopSimArrivalsSaturateDevice) {
  RuntimeOptions opts;
  opts.device = Qat8970Config();
  opts.codec = "";
  opts.queue_pairs = 4;
  opts.batch_size = 1;
  OffloadRuntime runtime(opts);

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 32;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      SimNanos now = 0;
      for (int i = 0; i < kJobsPerThread; ++i) {
        OffloadRequest req;
        req.model_bytes = 65536;
        req.ratio_hint = 0.4;
        req.arrival = now;
        req.queue_pair = static_cast<uint32_t>(t % 4);
        now = runtime.Submit(std::move(req)).get().sim_completion;
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  runtime.Drain();
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_EQ(stats.jobs_completed, static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_GT(stats.sim_gbps(), 0.0);
  EXPECT_GT(stats.device_latency_us.mean(), 0.0);
}

// ---------------------------------------------------- pooled buffers (ISSUE 8)

// The buffer-lifetime guarantee behind the refactor: a request whose bytes
// live ONLY in the pooled input_buf (no caller-side copy, ByteSpan left
// empty) must survive aggressive fault injection — every verify-mismatch
// retry and the terminal CPU fallback re-read the same segment, so a
// premature release would corrupt or crash (ASan catches the use-after-free,
// the decompress check catches silent corruption).
TEST(OffloadRuntimeTest, PooledInputSurvivesRetriesAndFallback) {
  BufferPool pool;
  RuntimeOptions opts;
  opts.device = SmallTestDevice(2, 16);
  opts.codec = "lz4";
  opts.engine_threads = 2;
  opts.output_pool = &pool;
  // Every device attempt reports a verify mismatch: each job burns all
  // max_retries resubmissions and completes on the CPU fallback.
  opts.fault_plan.seed = 0x5EEDull;
  opts.fault_plan.rate[static_cast<uint32_t>(FaultKind::kVerifyMismatch)] = 1.0;
  opts.max_retries = 2;
  OffloadRuntime runtime(opts);

  constexpr int kJobs = 32;
  std::vector<ByteVec> originals;
  std::vector<std::future<OffloadResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    originals.push_back(GenerateWithRatio(0.4, 4096 + 256 * (i % 5), 1000 + i));
    OffloadRequest req;
    req.op = CdpuOp::kCompress;
    req.input_buf = IoBuf::Copy(originals.back(), &pool);
    // No req.input span and no caller-held handle: the IoBuf moved into the
    // request is the only reference. The runtime must keep it alive through
    // two retries and the fallback.
    futures.push_back(runtime.Submit(std::move(req)));
  }
  for (int i = 0; i < kJobs; ++i) {
    OffloadResult cres = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(cres.status.ok()) << i << ": " << cres.status.ToString();
    OffloadRequest dreq;
    dreq.op = CdpuOp::kDecompress;
    dreq.input_buf = cres.output_buf;  // refcount bump, still zero-copy
    OffloadResult dres = runtime.Submit(std::move(dreq)).get();
    ASSERT_TRUE(dres.status.ok()) << i;
    ByteSpan out = dres.output_view();
    ASSERT_EQ(out.size(), originals[static_cast<size_t>(i)].size()) << i;
    EXPECT_TRUE(std::equal(out.begin(), out.end(), originals[static_cast<size_t>(i)].begin()))
        << "job " << i << " corrupted across retries + fallback";
  }

  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);
  RuntimeStats stats = runtime.Snapshot();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.fallbacks, 0u);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

// SubmitCallback: the promise-free path the service uses. Completion runs on
// the reaper thread through a raw function pointer; output arrives as a
// pooled buffer when output_pool is set.
TEST(OffloadRuntimeTest, SubmitCallbackDeliversPooledOutput) {
  BufferPool pool;
  RuntimeOptions opts;
  opts.device = SmallTestDevice(2, 16);
  opts.codec = "lz4";
  opts.engine_threads = 2;
  opts.output_pool = &pool;
  OffloadRuntime runtime(opts);

  struct Ctx {
    std::atomic<int> completed{0};
    std::atomic<int> pooled{0};
    std::atomic<int> failed{0};
  } ctx;

  constexpr int kJobs = 64;
  ByteVec payload = GenerateWithRatio(0.5, 8192, 7);
  for (int i = 0; i < kJobs; ++i) {
    OffloadRequest req;
    req.op = CdpuOp::kCompress;
    req.input_buf = IoBuf::Copy(payload, &pool);
    req.on_complete = [](const OffloadResult& r, void* vctx) {
      auto* c = static_cast<Ctx*>(vctx);
      if (!r.status.ok()) {
        c->failed.fetch_add(1);
      }
      if (!r.output_buf.empty()) {
        c->pooled.fetch_add(1);
      }
      c->completed.fetch_add(1);
    };
    req.on_complete_ctx = &ctx;
    runtime.SubmitCallback(std::move(req));
  }
  runtime.Flush(0);
  runtime.Drain();
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);

  EXPECT_EQ(ctx.completed.load(), kJobs);
  EXPECT_EQ(ctx.failed.load(), 0);
  EXPECT_EQ(ctx.pooled.load(), kJobs);
  // Jobs recycled their buffers on completion: nothing still holds the pool.
  EXPECT_EQ(pool.Snapshot().outstanding_buffers, 0u);
}

}  // namespace
}  // namespace cdpu
