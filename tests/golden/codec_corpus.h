// The fixed corpus behind the committed lz4/snappy golden vectors
// (tests/golden/lz4/*.bin, tests/golden/snappy/*.bin). Shared by the
// regeneration tool (tools/codec_golden_gen.cc) and the stability test
// (tests/codec_golden_test.cc) so the two can never drift apart — the same
// discipline tests/golden/dpzip_corpus.h applies to the dpzip bitstream.
//
// Every case is a pure function of its (pattern, size, seed) triple, so the
// corpus is reproducible on any host. If you change an encoder's output
// ON PURPOSE, regenerate with
//   build/tools/codec_golden_gen tests/golden
// and commit the new .bin files alongside the encoder change.

#ifndef TESTS_GOLDEN_CODEC_CORPUS_H_
#define TESTS_GOLDEN_CODEC_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace golden {

// The byte-stable codecs covered by committed vectors. dpzip has its own
// corpus (dpzip_corpus.h); zstd/deflate levels are deliberately excluded —
// their output is an implementation detail we only pin via round-trip and
// differential tests.
inline std::vector<std::string> GoldenCodecs() { return {"lz4", "snappy"}; }

enum class CodecPattern : uint8_t {
  kRatio,       // GenerateWithRatio(ratio, size, seed)
  kRandom,      // incompressible: seeded uniform bytes (literal-run path)
  kRunLength,   // long single-byte runs (max match lengths, distance 1)
  kText,        // GenerateTextLike: realistic literal/match interleaving
};

struct CodecGoldenCase {
  const char* name;  // vector file is <codec>/<name>.bin
  CodecPattern pattern;
  size_t size;
  uint64_t seed;
  double ratio;  // kRatio only
};

inline std::vector<CodecGoldenCase> CodecCorpus() {
  return {
      {"empty", CodecPattern::kRatio, 0, 1, 0.5},
      {"tiny_1b", CodecPattern::kRandom, 1, 2, 0},
      {"ratio20_4k", CodecPattern::kRatio, 4096, 101, 0.20},
      {"ratio45_16k", CodecPattern::kRatio, 16384, 102, 0.45},
      {"ratio80_64k", CodecPattern::kRatio, 65536, 103, 0.80},
      {"random_4k", CodecPattern::kRandom, 4096, 104, 0},
      {"runlength_8k", CodecPattern::kRunLength, 8192, 105, 0},
      {"text_16k", CodecPattern::kText, 16384, 106, 0},
  };
}

inline std::vector<uint8_t> GenerateCodecInput(const CodecGoldenCase& c) {
  switch (c.pattern) {
    case CodecPattern::kRatio:
      return GenerateWithRatio(c.ratio, c.size, c.seed);
    case CodecPattern::kRandom: {
      Rng rng(c.seed);
      std::vector<uint8_t> data(c.size);
      for (uint8_t& b : data) {
        b = rng.NextByte();
      }
      return data;
    }
    case CodecPattern::kRunLength: {
      Rng rng(c.seed);
      std::vector<uint8_t> data;
      data.reserve(c.size);
      while (data.size() < c.size) {
        uint8_t value = rng.NextByte();
        size_t run = 1 + rng.Uniform(300);
        for (size_t i = 0; i < run && data.size() < c.size; ++i) {
          data.push_back(value);
        }
      }
      return data;
    }
    case CodecPattern::kText:
      return GenerateTextLike(c.size, c.seed);
  }
  return {};
}

}  // namespace golden
}  // namespace cdpu

#endif  // TESTS_GOLDEN_CODEC_CORPUS_H_
